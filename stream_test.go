package smartvlc

import (
	"bytes"
	"io"
	"math/rand/v2"
	"testing"
)

func TestStreamRoundTrip(t *testing.T) {
	sys := newSystem(t)
	st, err := sys.OpenStream(Aligned(3, 0), 8000, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(4, 4))
	data := make([]byte, 8192)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	n, err := st.Write(data)
	if err != nil || n != len(data) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	got, err := io.ReadAll(st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("stream corrupted data")
	}
	stats := st.Stats()
	if stats.FramesSent < 65 || stats.DeliveredBytes != int64(len(data)) {
		t.Fatalf("stats: frames=%d delivered=%d", stats.FramesSent, stats.DeliveredBytes)
	}
	if stats.AirtimeSlots <= 0 || st.AirtimeSeconds() <= 0 {
		t.Fatal("no air time accounted")
	}
	var chunks int64
	for _, n := range stats.ChunkAttempts {
		chunks += n
	}
	if want := int64(len(data)) / int64(st.ChunkBytes); chunks < want {
		t.Fatalf("attempt histogram covers %d chunks, want ≥%d", chunks, want)
	}
	lf, lr, ld := st.LegacyStats()
	if lf != stats.FramesSent || lr != stats.Retries || ld != stats.DeliveredBytes {
		t.Fatal("LegacyStats disagrees with Stats")
	}
}

func TestStreamIoCopy(t *testing.T) {
	sys := newSystem(t)
	st, err := sys.OpenStream(Aligned(2.5, 0), 5000, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("visible light networking "), 100)
	if _, err := io.Copy(st, bytes.NewReader(msg)); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := io.Copy(&out, st); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), msg) {
		t.Fatal("io.Copy round trip failed")
	}
}

func TestStreamMidStreamDimmingChange(t *testing.T) {
	sys := newSystem(t)
	st, err := sys.OpenStream(Aligned(3, 0), 8000, 0.9, 2)
	if err != nil {
		t.Fatal(err)
	}
	part1 := bytes.Repeat([]byte{0x11}, 500)
	part2 := bytes.Repeat([]byte{0x22}, 500)
	if _, err := st.Write(part1); err != nil {
		t.Fatal(err)
	}
	if err := st.SetLevel(0.1); err != nil {
		t.Fatal(err)
	}
	if st.Level() != 0.1 {
		t.Fatal("level not applied")
	}
	if _, err := st.Write(part2); err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(st)
	if !bytes.Equal(got, append(append([]byte{}, part1...), part2...)) {
		t.Fatal("mid-stream dimming change corrupted data")
	}
}

func TestStreamValidation(t *testing.T) {
	sys := newSystem(t)
	if _, err := sys.OpenStream(Geometry{}, 100, 0.5, 1); err == nil {
		t.Fatal("bad geometry accepted")
	}
	if _, err := sys.OpenStream(Aligned(1, 0), 100, 5.0, 1); err == nil {
		t.Fatal("bad level accepted")
	}
	st, _ := sys.OpenStream(Aligned(1, 0), 100, 0.5, 1)
	if err := st.SetLevel(-3); err == nil {
		t.Fatal("bad SetLevel accepted")
	}
}

func TestStreamFailsBeyondRange(t *testing.T) {
	sys := newSystem(t)
	st, err := sys.OpenStream(Aligned(7, 0), 9000, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	st.MaxAttempts = 3
	if _, err := st.Write([]byte("doomed")); err == nil {
		t.Fatal("write over an impossible link should fail")
	}
}

func TestStreamEmptyRead(t *testing.T) {
	sys := newSystem(t)
	st, _ := sys.OpenStream(Aligned(1, 0), 100, 0.5, 1)
	buf := make([]byte, 4)
	if n, err := st.Read(buf); n != 0 || err != io.EOF {
		t.Fatalf("empty read: %d, %v", n, err)
	}
	if st.Buffered() != 0 {
		t.Fatal("buffered should be 0")
	}
}

func TestStreamHealth(t *testing.T) {
	run := func() []byte {
		sys := newSystem(t)
		st, err := sys.OpenStream(Aligned(3, 0), 8000, 0.5, 7)
		if err != nil {
			t.Fatal(err)
		}
		st.SetHealth(&HealthConfig{
			BucketSlots: 2500,
			Objectives:  DefaultHealthObjectives(),
		})
		data := bytes.Repeat([]byte("link health over light "), 400)
		if _, err := st.Write(data); err != nil {
			t.Fatal(err)
		}
		snap := st.Health()
		if snap == nil {
			t.Fatal("no health snapshot")
		}
		if len(snap.Series) == 0 || len(snap.Series[0].Points) == 0 {
			t.Fatal("empty health series")
		}
		var delivered int64
		for _, p := range snap.Series[0].Points {
			delivered += p.DeliveredBits
		}
		if delivered == 0 {
			t.Fatal("health series saw no delivered bits")
		}
		final := st.FinishHealth()
		if final == nil {
			t.Fatal("no final health snapshot")
		}
		b, err := final.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("identical streams produced different health snapshots")
	}
}

func TestStreamHealthNilIsNoOp(t *testing.T) {
	sys := newSystem(t)
	st, err := sys.OpenStream(Aligned(3, 0), 8000, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if st.Health() != nil || st.FinishHealth() != nil {
		t.Fatal("health without a monitor")
	}
	if _, err := st.Write([]byte("no monitor attached")); err != nil {
		t.Fatal(err)
	}
}
