package smartvlc_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"smartvlc"
)

// TestConcurrentSystemUse exercises the System facade — and through it the
// planning-table, codec, threshold and sampler caches — from many
// goroutines at once. It is only meaningful under `go test -race`, which
// CI runs: the caches must be populated and shared without data races, and
// every goroutine must still observe correct frames.
func TestConcurrentSystemUse(t *testing.T) {
	sys, err := smartvlc.New(smartvlc.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := sys.LevelRange()

	const workers = 8
	const iters = 40
	levels := make([]float64, workers)
	for i := range levels {
		levels[i] = lo + (hi-lo)*(0.15+0.7*float64(i)/float64(workers-1))
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers+2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			level := levels[w]
			for i := 0; i < iters; i++ {
				if _, err := sys.PlanFor(level); err != nil {
					errs <- fmt.Errorf("worker %d: PlanFor: %w", w, err)
					return
				}
				if r := sys.EnvelopeRateAt(level); r <= 0 {
					errs <- fmt.Errorf("worker %d: EnvelopeRateAt(%v) = %v", w, level, r)
					return
				}
				payload := []byte(fmt.Sprintf("worker %d frame %d payload", w, i))
				slots, err := sys.BuildFrame(level, payload)
				if err != nil {
					errs <- fmt.Errorf("worker %d: BuildFrame: %w", w, err)
					return
				}
				got, err := sys.ParseFrame(slots)
				if err != nil {
					errs <- fmt.Errorf("worker %d: ParseFrame: %w", w, err)
					return
				}
				if !bytes.Equal(got, payload) {
					errs <- fmt.Errorf("worker %d iter %d: payload corrupted", w, i)
					return
				}
			}
		}(w)
	}
	// A couple of goroutines drive the full physical path concurrently,
	// covering the sampler, threshold and pool paths under contention.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := []byte("over the air")
			for i := 0; i < 6; i++ {
				slots, err := sys.BuildFrame(0.5, payload)
				if err != nil {
					errs <- fmt.Errorf("deliver %d: BuildFrame: %w", w, err)
					return
				}
				got, err := sys.Deliver(smartvlc.Aligned(1.5, 0), 800, uint64(w*100+i+1), slots)
				if err != nil {
					errs <- fmt.Errorf("deliver %d: %w", w, err)
					return
				}
				if len(got) != 1 || !bytes.Equal(got[0], payload) {
					errs <- fmt.Errorf("deliver %d iter %d: got %d frames", w, i, len(got))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
