package smartvlc_test

import (
	"fmt"

	"smartvlc"
)

// errlog renders example failures in the house structured-log console
// format (stderr only, so Example outputs are unaffected).
var errlog = smartvlc.NewLogConsole(nil, smartvlc.LogError)

// Example shows the minimal plan → frame → channel → parse path.
func Example() {
	sys, err := smartvlc.New(smartvlc.DefaultConstraints())
	if err != nil {
		errlog.Fatalf("example", "%v", err)
	}
	slots, err := sys.BuildFrame(0.37, []byte("hello, visible light"))
	if err != nil {
		errlog.Fatalf("example", "%v", err)
	}
	payloads, err := sys.Deliver(smartvlc.Aligned(3.0, 0), 8000, 42, slots)
	if err != nil {
		errlog.Fatalf("example", "%v", err)
	}
	fmt.Printf("%s\n", payloads[0])
	// Output: hello, visible light
}

// ExampleSystem_PlanFor shows how AMPPM plans a super-symbol for a
// dimming level. The selected composition multiplexes two envelope-vertex
// patterns so the achieved level lands within the dimming resolution.
func ExampleSystem_PlanFor() {
	sys, err := smartvlc.New(smartvlc.DefaultConstraints())
	if err != nil {
		errlog.Fatalf("example/planfor", "%v", err)
	}
	plan, err := sys.PlanFor(0.15)
	if err != nil {
		errlog.Fatalf("example/planfor", "%v", err)
	}
	fmt.Printf("level %.4f, %d slots, %d bits\n", plan.Level(), plan.Slots(), plan.Bits())
	// Output: level 0.1503, 386 slots, 215 bits
}

// ExampleSystem_OpenStream streams bytes over the link with io.Writer
// semantics and a mid-stream dimming change.
func ExampleSystem_OpenStream() {
	sys, err := smartvlc.New(smartvlc.DefaultConstraints())
	if err != nil {
		errlog.Fatalf("example/stream", "%v", err)
	}
	st, err := sys.OpenStream(smartvlc.Aligned(2.5, 0), 5000, 0.8, 7)
	if err != nil {
		errlog.Fatalf("example/stream", "%v", err)
	}
	if _, err := st.Write([]byte("dim the lights, ")); err != nil {
		errlog.Fatalf("example/stream", "%v", err)
	}
	if err := st.SetLevel(0.2); err != nil {
		errlog.Fatalf("example/stream", "%v", err)
	}
	if _, err := st.Write([]byte("keep the bits")); err != nil {
		errlog.Fatalf("example/stream", "%v", err)
	}
	buf := make([]byte, 64)
	n, _ := st.Read(buf)
	fmt.Printf("%s\n", buf[:n])
	// Output: dim the lights, keep the bits
}
