// Smart-lighting demo: the paper's dynamic scenario. A motorized window
// blind opens over 30 seconds while the luminaire adapts its brightness to
// keep the room's total illumination constant — and keeps streaming data
// with AMPPM the whole time. The demo runs the adaptation twice, with
// SmartVLC's perception-domain stepper and with the fixed measured-domain
// baseline, and compares the number of brightness adjustments (paper
// Fig. 19).
package main

import (
	"fmt"

	"smartvlc"
	"smartvlc/internal/stats"
)

// errlog renders fatal errors in the house structured-log console format.
var errlog = smartvlc.NewLogConsole(nil, smartvlc.LogError)

func main() {
	sys, err := smartvlc.New(smartvlc.DefaultConstraints())
	if err != nil {
		errlog.Fatalf("example/smartlighting", "%v", err)
	}

	const duration = 30.0
	base := smartvlc.DefaultSessionConfig(sys.Scheme())
	base.Trace = smartvlc.BlindPull(50, 450, duration) // lux ramp at the desk
	base.FullLEDLux = 500                              // LED contributes 500 lux at full power
	base.TargetSum = 1.0                               // hold 500 lux total

	run := func(name string, st smartvlc.Stepper) smartvlc.SessionResult {
		cfg := base
		cfg.Stepper = st
		res, err := smartvlc.RunSession(cfg, duration)
		if err != nil {
			errlog.Fatalf("example/smartlighting", "%v", err)
		}
		fmt.Printf("%-22s: %.1f kbps goodput, %4d brightness adjustments\n",
			name, res.GoodputBps/1000, res.Adjustments)
		return res
	}

	fmt.Println("blind pull over", duration, "seconds; LED sweeps bright → dim")
	smart := run("smartvlc (perceived)", smartvlc.PerceivedStepper)
	existing := run("existing (measured)", smartvlc.MeasuredStepper)

	fmt.Println()
	fmt.Println("throughput :", stats.Sparkline(smart.Throughput.Values()))
	fmt.Println("ambient    :", stats.Sparkline(smart.Ambient.Values()))
	fmt.Println("led        :", stats.Sparkline(smart.LED.Values()))
	fmt.Println("sum        :", stats.Sparkline(smart.Sum.Values()))

	sum := stats.Summarize(smart.Sum.Values())
	fmt.Printf("\nconstant illumination: mean %.3f, std %.3f (target 1.000)\n", sum.Mean, sum.Std)
	fmt.Printf("adjustment reduction : %.0f%% (paper reports ≈50%%)\n",
		100*(1-float64(smart.Adjustments)/float64(existing.Adjustments)))
}
