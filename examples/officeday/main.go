// Office day: a time-compressed working day (dawn → dusk with passing
// clouds) over a SmartVLC luminaire. The smart-lighting controller holds
// the desk illumination constant, which saves LED energy whenever the sun
// contributes, while AMPPM keeps adapting its super-symbols so the
// downlink stays as fast as each dimming level allows — the paper's
// motivating scenario ("in the Netherlands the weather changes super
// fast, with heavy and moving clouds").
package main

import (
	"fmt"

	"smartvlc"
	"smartvlc/internal/stats"
)

// errlog renders fatal errors in the house structured-log console format.
var errlog = smartvlc.NewLogConsole(nil, smartvlc.LogError)

func main() {
	sys, err := smartvlc.New(smartvlc.DefaultConstraints())
	if err != nil {
		errlog.Fatalf("example/officeday", "%v", err)
	}

	// One simulated minute stands in for the whole day.
	const day = 60.0
	cfg := smartvlc.DefaultSessionConfig(sys.Scheme())
	cfg.Trace = smartvlc.DayCycleAmbient(430, day, 0.5, 11) // cloudy day peaking near 430 lux at the desk
	cfg.FullLEDLux = 500
	cfg.TargetSum = 1.0
	cfg.Stepper = smartvlc.PerceivedStepper

	res, err := smartvlc.RunSession(cfg, day)
	if err != nil {
		errlog.Fatalf("example/officeday", "%v", err)
	}

	led := stats.Summarize(res.LED.Values())
	sum := stats.Summarize(res.Sum.Values())
	tp := stats.Summarize(res.Throughput.Values())

	fmt.Println("ambient   :", stats.Sparkline(res.Ambient.Values()))
	fmt.Println("led       :", stats.Sparkline(res.LED.Values()))
	fmt.Println("sum       :", stats.Sparkline(res.Sum.Values()))
	fmt.Println("throughput:", stats.Sparkline(res.Throughput.Values()))
	fmt.Println()
	fmt.Printf("desk illumination : mean %.3f (target 1.000), std %.3f\n", sum.Mean, sum.Std)
	fmt.Printf("mean LED level    : %.3f → %.0f%% energy saved vs always-on\n", led.Mean, (1-led.Mean)*100)
	fmt.Printf("goodput           : %.1f kbps average (%.1f–%.1f kbps per second)\n",
		res.GoodputBps/1000, tp.Min/1000, tp.Max/1000)
	fmt.Printf("adaptations       : %d flicker-free brightness steps\n", res.Adjustments)
	fmt.Printf("frames            : %d delivered, %d retransmitted\n", res.FramesOK, res.Retransmits)
}
