// File transfer over visible light: chunk a payload into frames, stream
// them over the simulated optical channel, and reassemble at the receiver
// with a simple selective-repeat loop — all through the public API. The
// transfer is repeated at three dimming levels to show that AMPPM keeps
// the link usable from a dim 10 % all the way to a bright 90 %.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand/v2"

	"smartvlc"
)

const (
	chunkSize = 126 // + 2-byte chunk id = 128-byte frames, as in the paper
	fileSize  = 16 * 1024
)

// errlog renders fatal errors in the house structured-log console format.
var errlog = smartvlc.NewLogConsole(nil, smartvlc.LogError)

func main() {
	sys, err := smartvlc.New(smartvlc.DefaultConstraints())
	if err != nil {
		errlog.Fatalf("example/filetransfer", "%v", err)
	}

	// A deterministic pseudo-random "file".
	rng := rand.New(rand.NewPCG(2024, 7))
	file := make([]byte, fileSize)
	for i := range file {
		file[i] = byte(rng.Uint64())
	}
	sum := sha256.Sum256(file)
	fmt.Printf("transferring %d KiB (sha256 %x…) over a 3.3 m link\n\n", fileSize/1024, sum[:6])

	for _, level := range []float64{0.1, 0.5, 0.9} {
		transfer(sys, file, level)
	}
}

func transfer(sys *smartvlc.System, file []byte, level float64) {
	nChunks := (len(file) + chunkSize - 1) / chunkSize
	received := make([][]byte, nChunks)
	missing := nChunks
	geometry := smartvlc.Aligned(3.3, 0)

	slotsSent := 0
	rounds := 0
	for missing > 0 && rounds < 50 {
		rounds++
		// Send every still-missing chunk in one burst.
		var burst []bool
		for id := 0; id < nChunks; id++ {
			if received[id] != nil {
				continue
			}
			lo := id * chunkSize
			hi := min(lo+chunkSize, len(file))
			body := make([]byte, 2+hi-lo)
			binary.BigEndian.PutUint16(body, uint16(id))
			copy(body[2:], file[lo:hi])
			fs, err := sys.BuildFrame(level, body)
			if err != nil {
				errlog.Fatalf("example/filetransfer", "%v", err)
			}
			burst = append(burst, fs...)
		}
		slotsSent += len(burst)

		payloads, err := sys.Deliver(geometry, 8000, uint64(rounds)*7919, burst)
		if err != nil {
			errlog.Fatalf("example/filetransfer", "%v", err)
		}
		for _, p := range payloads {
			if len(p) < 2 {
				continue
			}
			id := int(binary.BigEndian.Uint16(p))
			if id < nChunks && received[id] == nil {
				received[id] = append([]byte(nil), p[2:]...)
				missing--
			}
		}
	}

	if missing > 0 {
		errlog.Fatalf("example/filetransfer", "level %.1f: transfer failed, %d chunks missing", level, missing)
	}
	got := bytes.Join(received, nil)
	okStr := "corrupted!"
	if bytes.Equal(got, file) {
		okStr = "sha256 verified"
	}
	airtime := float64(slotsSent) * 8e-6
	fmt.Printf("level %.1f: %2d round(s), %6.0f ms air time, %6.1f kbps effective — %s\n",
		level, rounds, airtime*1000, float64(len(file)*8)/airtime/1000, okStr)
}
