// Quickstart: build an AMPPM system, plan a super-symbol for a dimming
// level, send one frame over the simulated optical channel, and run a
// short end-to-end session.
package main

import (
	"fmt"

	"smartvlc"
)

// errlog renders fatal errors in the house structured-log console format.
var errlog = smartvlc.NewLogConsole(nil, smartvlc.LogError)

func main() {
	// 1. Derive the AMPPM planning table from the paper's link constants.
	sys, err := smartvlc.New(smartvlc.DefaultConstraints())
	if err != nil {
		errlog.Fatalf("example/quickstart", "%v", err)
	}

	// 2. Ask the planner what it would transmit at 37 % brightness.
	plan, err := sys.PlanFor(0.37)
	if err != nil {
		errlog.Fatalf("example/quickstart", "%v", err)
	}
	fmt.Printf("plan for l=0.37: %v → %.3f bits/slot, %.1f kbps raw\n",
		plan, plan.NormalizedRate(), sys.Throughput(0.37)/1000)

	// 3. Frame a message and push it through the optical channel at 3 m
	//    under office ambient light.
	msg := []byte("hello, visible light!")
	slots, err := sys.BuildFrame(0.37, msg)
	if err != nil {
		errlog.Fatalf("example/quickstart", "%v", err)
	}
	fmt.Printf("frame: %d slots (%.2f ms on air)\n", len(slots), float64(len(slots))*8e-6*1000)

	payloads, err := sys.Deliver(smartvlc.Aligned(3.0, 0), 8000, 42, slots)
	if err != nil {
		errlog.Fatalf("example/quickstart", "%v", err)
	}
	for _, p := range payloads {
		fmt.Printf("received: %q\n", p)
	}

	// 4. Run a half-second saturated session with ARQ and ACKs over the
	//    Wi-Fi side channel.
	cfg := smartvlc.DefaultSessionConfig(sys.Scheme())
	cfg.FixedLevel = 0.37
	res, err := smartvlc.RunSession(cfg, 0.5)
	if err != nil {
		errlog.Fatalf("example/quickstart", "%v", err)
	}
	fmt.Printf("session: %.1f kbps goodput, %d/%d frames delivered\n",
		res.GoodputBps/1000, res.FramesOK, res.FramesSent)
}
