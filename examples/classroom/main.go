// Classroom broadcast: one SmartVLC luminaire serves three desks at
// different distances and angles, under one shared (cloudy) sky. The
// dimming controller follows the darkest desk so everyone gets the target
// illumination, and the MAC retransmits until every receiver has each
// frame — reliable multicast over light.
package main

import (
	"fmt"

	"smartvlc"
)

// errlog renders fatal errors in the house structured-log console format.
var errlog = smartvlc.NewLogConsole(nil, smartvlc.LogError)

func main() {
	sys, err := smartvlc.New(smartvlc.DefaultConstraints())
	if err != nil {
		errlog.Fatalf("example/classroom", "%v", err)
	}

	cfg := smartvlc.BroadcastConfig{
		Config: smartvlc.DefaultSessionConfig(sys.Scheme()),
		Receivers: []smartvlc.ReceiverPose{
			{Geometry: smartvlc.Aligned(1.8, 0), AmbientScale: 1.6}, // front row, near the window
			{Geometry: smartvlc.Aligned(2.6, 4), AmbientScale: 1.0}, // middle
			{Geometry: smartvlc.Aligned(3.3, 7), AmbientScale: 0.5}, // back corner, darkest
		},
	}
	const duration = 12.0
	cfg.Trace = smartvlc.CloudyAmbient(260, 0.6, 5) // fast clouds, as in the paper's motivation
	cfg.FullLEDLux = 500
	cfg.TargetSum = 1.0
	cfg.Stepper = smartvlc.PerceivedStepper

	res, err := smartvlc.RunBroadcast(cfg, duration)
	if err != nil {
		errlog.Fatalf("example/classroom", "%v", err)
	}

	fmt.Printf("broadcast over %.0f s of cloudy sky, %d frames on air\n\n", res.Duration, res.FramesSent)
	for i, o := range res.PerReceiver {
		fmt.Printf("desk %d: %6.1f kbps delivered, %4d frames, illumination %.2f of target\n",
			i+1, o.DeliveredBps/1000, o.FramesOK, o.MeanSum)
	}
	fmt.Printf("\nreliable (all desks) : %.1f kbps\n", res.ReliableGoodputBps/1000)
	fmt.Printf("brightness steps     : %d, all imperceptible\n", res.Adjustments)
}
