package sim

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"smartvlc/internal/light"
	"smartvlc/internal/optics"
	"smartvlc/internal/telemetry"
	"smartvlc/internal/telemetry/prof"
	"smartvlc/internal/telemetry/span"
)

// arenaSessionConfig builds a fully instrumented adaptive session —
// telemetry, spans, stage profiler, link health, trace-driven dimming —
// with fresh registries (registries are stateful: one set per run).
func arenaSessionConfig(t testing.TB, seed uint64) Config {
	cfg := DefaultConfig(amppmScheme(t))
	cfg.Seed = seed
	cfg.Trace = light.BlindPull{StartLux: 100, EndLux: 400, Duration: 0.4}
	cfg.Telemetry = telemetry.New()
	cfg.Spans = span.NewCollector()
	cfg.Prof = prof.New()
	cfg.Health = stepHealthConfig()
	return cfg
}

// sessionBytes serializes everything a session can observe — the Result
// struct plus all four snapshots as canonical JSON — and strips the
// snapshot pointers so the caller can DeepEqual the rest.
func sessionBytes(t testing.TB, res *Result) [][]byte {
	t.Helper()
	var out [][]byte
	for i, j := range []interface{ JSON() ([]byte, error) }{
		res.Telemetry, res.Spans, res.Health, res.Prof,
	} {
		if reflect.ValueOf(j).IsNil() {
			t.Fatalf("instrumented run returned no snapshot %d", i)
		}
		b, err := j.JSON()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	res.Telemetry, res.Spans, res.Health, res.Prof = nil, nil, nil, nil
	return out
}

// TestArenaRunByteIdentical is the tentpole contract: sessions rented
// from a warm arena produce byte-identical results, telemetry, spans,
// health and prof snapshots vs fresh-allocated runs — including after
// the arena has been dirtied by sessions with different seeds, payload
// sizes and durations.
func TestArenaRunByteIdentical(t *testing.T) {
	ref, err := Run(arenaSessionConfig(t, 7), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	refSnaps := sessionBytes(t, &ref)

	a := NewArena()
	check := func(round string) {
		got, err := a.Run(arenaSessionConfig(t, 7), 0.4)
		if err != nil {
			t.Fatal(err)
		}
		gotSnaps := sessionBytes(t, &got)
		for i := range refSnaps {
			if !bytes.Equal(refSnaps[i], gotSnaps[i]) {
				t.Fatalf("%s: snapshot %d diverges from fresh run", round, i)
			}
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("%s: result diverges from fresh run:\nfresh: %+v\narena: %+v", round, ref, got)
		}
	}
	check("cold arena")
	check("warm arena")

	// Dirty the arena with sessions of different shapes, then re-check:
	// nothing a prior session leaves behind may leak into the next.
	dirty := arenaSessionConfig(t, 99)
	dirty.PayloadBytes = 64
	dirty.Window = 4
	dirty.FixedLevel = 0.3
	dirty.Trace = nil
	if _, err := a.Run(dirty, 0.2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.RunBroadcast(BroadcastConfig{
		Config: DefaultConfig(amppmScheme(t)),
		Receivers: []ReceiverPose{
			{Geometry: optics.Aligned(1.5, 0)},
			{Geometry: optics.Aligned(3.0, 3)},
		},
	}, 0.2); err != nil {
		t.Fatal(err)
	}
	check("dirtied arena")
}

// TestArenaBroadcastByteIdentical extends the contract to broadcast
// sessions across the worker matrix: one arena serves every
// (GOMAXPROCS, Workers) combination and always matches the fresh run.
func TestArenaBroadcastByteIdentical(t *testing.T) {
	mkCfg := func() BroadcastConfig {
		cfg := broadcastConfig(t,
			ReceiverPose{Geometry: optics.Aligned(1.5, 0)},
			ReceiverPose{Geometry: optics.Aligned(3.0, 3)},
			ReceiverPose{Geometry: optics.Aligned(3.3, 5)},
		)
		cfg.Trace = light.BlindPull{StartLux: 100, EndLux: 400, Duration: 0.3}
		cfg.Telemetry = telemetry.New()
		cfg.Spans = span.NewCollector()
		cfg.Prof = prof.New()
		cfg.Health = stepHealthConfig()
		return cfg
	}
	serialize := func(res *BroadcastResult) [][]byte {
		t.Helper()
		var out [][]byte
		for _, j := range []interface{ JSON() ([]byte, error) }{res.Telemetry, res.Spans, res.Health, res.Prof} {
			b, err := j.JSON()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, b)
		}
		for i := range res.PerReceiver {
			b, err := res.PerReceiver[i].Health.JSON()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, b)
			res.PerReceiver[i].Health = nil
		}
		res.Telemetry, res.Spans, res.Health, res.Prof = nil, nil, nil, nil
		return out
	}

	ref, err := RunBroadcast(mkCfg(), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	refSnaps := serialize(&ref)

	a := NewArena()
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		for _, workers := range []int{1, 3, -1} {
			cfg := mkCfg()
			cfg.Workers = workers
			got, err := a.RunBroadcast(cfg, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			gotSnaps := serialize(&got)
			for i := range refSnaps {
				if !bytes.Equal(refSnaps[i], gotSnaps[i]) {
					t.Fatalf("GOMAXPROCS=%d workers=%d: snapshot %d diverges from fresh run", procs, workers, i)
				}
			}
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("GOMAXPROCS=%d workers=%d: result diverges from fresh run", procs, workers)
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestArenaFleetByteIdentical: a persistent arena pool serving repeated
// fleets matches fresh-allocated fleets byte for byte, per session and
// in the merged snapshot, across the (GOMAXPROCS, workers) matrix.
func TestArenaFleetByteIdentical(t *testing.T) {
	ref, err := RunFleet(fleetConfigs(t, 6), 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	refMerged, err := ref.Telemetry.JSON()
	if err != nil {
		t.Fatal(err)
	}
	refSessions := make([][]byte, len(ref.Results))
	for i := range ref.Results {
		if refSessions[i], err = ref.Results[i].Telemetry.JSON(); err != nil {
			t.Fatal(err)
		}
		ref.Results[i].Telemetry = nil
	}

	arenas := NewFleetArenas()
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		for _, workers := range []int{1, 3, -1} {
			got, err := RunFleetArenas(arenas, fleetConfigs(t, 6), 0.3, workers)
			if err != nil {
				t.Fatal(err)
			}
			gotMerged, err := got.Telemetry.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refMerged, gotMerged) {
				t.Fatalf("GOMAXPROCS=%d workers=%d: merged snapshot diverges", procs, workers)
			}
			for i := range got.Results {
				gotSession, err := got.Results[i].Telemetry.JSON()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(refSessions[i], gotSession) {
					t.Fatalf("GOMAXPROCS=%d workers=%d: session %d snapshot diverges", procs, workers, i)
				}
				got.Results[i].Telemetry = nil
			}
			got.Workers = ref.Workers // resolved counts differ by design
			if !reflect.DeepEqual(ref.Results, got.Results) {
				t.Fatalf("GOMAXPROCS=%d workers=%d: results diverge", procs, workers)
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestWarmSessionAllocs pins the warm-path allocation budget: once an
// arena has served a session of a given shape, repeat sessions allocate
// only the result's own series buffers (which escape to the caller by
// design) — none of the session working state.
func TestWarmSessionAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race-detector instrumentation")
	}
	cfg := DefaultConfig(amppmScheme(t))
	cfg.FixedLevel = 0.5
	a := NewArena()
	if _, err := a.Run(cfg, 0.2); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := a.Run(cfg, 0.2); err != nil {
			t.Fatal(err)
		}
	})
	// The observed warm steady state is 8 allocations (~128 B): the
	// result's own stats.Series buffers and throughput bins, which
	// escape to the caller by design. Gate with a little headroom so
	// unrelated runtime noise doesn't flake the test, while still
	// catching any reintroduced per-frame allocation (which shows up as
	// thousands).
	if allocs > 16 {
		t.Fatalf("warm session allocated %v times, want ≤ 16", allocs)
	}
}
