package sim

import (
	"encoding/hex"
	"fmt"
	"math"
	"strconv"

	"smartvlc/internal/frame"
	"smartvlc/internal/light"
	"smartvlc/internal/mac"
	"smartvlc/internal/optics"
	"smartvlc/internal/parallel"
	"smartvlc/internal/phy"
	"smartvlc/internal/stats"
	"smartvlc/internal/telemetry"
	"smartvlc/internal/telemetry/health"
	"smartvlc/internal/telemetry/prof"
	"smartvlc/internal/telemetry/span"
	"smartvlc/internal/telemetry/vlog"
)

// ReceiverPose places one receiver of a broadcast session.
type ReceiverPose struct {
	// Geometry is this receiver's pose relative to the luminaire.
	Geometry optics.Geometry
	// AmbientScale scales the session's ambient trace at this desk (a
	// receiver near the window sees more sunlight than one in a corner).
	// Zero means 1.
	AmbientScale float64
}

func (p ReceiverPose) scale() float64 {
	if p.AmbientScale <= 0 {
		return 1
	}
	return p.AmbientScale
}

// BroadcastConfig extends Config to several receivers under one
// luminaire — the paper's architecture (Fig. 2) has receivers plural:
// each senses ambient light and acknowledges frames over the Wi-Fi
// uplink. The embedded Config's Geometry is ignored.
type BroadcastConfig struct {
	Config
	// Receivers lists the receiver poses; at least one is required.
	Receivers []ReceiverPose
	// Workers bounds the goroutines used for the per-receiver PHY work of
	// each frame window. Zero or one keeps the session single-threaded; a
	// negative value selects GOMAXPROCS. Results and telemetry are
	// byte-identical for every value — see the fan-out below.
	Workers int
}

// ReceiverOutcome summarizes one receiver's session.
type ReceiverOutcome struct {
	// FramesOK counts frames this receiver decoded.
	FramesOK int
	// DeliveredBps is this receiver's unique-payload rate.
	DeliveredBps float64
	// MeanSum is the mean of ambient+LED at this desk, in LED units.
	MeanSum float64
	// Health is this receiver's link-health snapshot (link label "rx<i>")
	// when Config.Health was set; nil otherwise.
	Health *health.Snapshot
}

// BroadcastResult aggregates a broadcast session.
type BroadcastResult struct {
	// Duration is the simulated air time.
	Duration float64
	// ReliableGoodputBps counts only frames acknowledged by EVERY
	// receiver (reliable multicast semantics).
	ReliableGoodputBps float64
	// PerReceiver holds each receiver's outcome.
	PerReceiver []ReceiverOutcome
	// Adjustments is the cumulative LED step count.
	Adjustments int
	// FramesSent includes retransmissions.
	FramesSent int
	// LED is the luminaire level over time.
	LED stats.Series
	// Telemetry is the session's metrics snapshot when Config.Telemetry
	// was set; nil otherwise.
	Telemetry *telemetry.Snapshot
	// Spans is the session's span snapshot when Config.Spans was set; nil
	// otherwise. Per-receiver decode spans carry an "rx" attribute and are
	// byte-identical for every Workers value: each receiver's spans are
	// buffered on its shard and spliced in receiver order, exactly like
	// the side-channel outbox replay.
	Spans *span.Snapshot
	// Health merges the per-receiver health series (counts summed, rates
	// recomputed, SLOs re-evaluated over the merged series) when
	// Config.Health was set; nil otherwise. Per-receiver snapshots stay on
	// PerReceiver[i].Health. All health observations happen in the
	// sequential merge phase, so the series are byte-identical for every
	// Workers value.
	Health *health.Snapshot
	// Prof is the session's stage-cost snapshot when Config.Prof was set;
	// nil otherwise. Receiver-side stages carry shard "rx<i>", so the
	// profile attributes PHY cost per receiver; the commuting atomic adds
	// keep it byte-identical for every Workers value.
	Prof *prof.Snapshot
	// Logs is the session's structured log snapshot when Config.Logs was
	// set; nil otherwise. Receiver-side records carry shard "rx<i>" and
	// are byte-identical for every Workers value: each receiver's records
	// buffer on its shard (vlog.Buffer) and are spliced in receiver order,
	// exactly like the span shards and the side-channel outbox replay.
	Logs *vlog.Snapshot
}

// RunBroadcast simulates a multi-receiver session. The dimming controller
// follows the *minimum* ambient reported across receivers, so every desk
// reaches at least the target illumination; frames are retransmitted
// until all receivers acknowledge them. When the stage profiler is armed
// the session body executes under pprof goroutine labels, like Run.
// RunBroadcast allocates the session's working state fresh; Arena.
// RunBroadcast rents it from a warm arena instead, byte-identically.
func RunBroadcast(cfg BroadcastConfig, duration float64) (BroadcastResult, error) {
	return NewArena().RunBroadcast(cfg, duration)
}

func runBroadcast(cfg BroadcastConfig, duration float64, a *Arena) (BroadcastResult, error) {
	if len(cfg.Receivers) == 0 {
		return BroadcastResult{}, fmt.Errorf("sim: broadcast needs at least one receiver")
	}
	if cfg.Scheme == nil || duration <= 0 || cfg.PayloadBytes <= 0 {
		return BroadcastResult{}, fmt.Errorf("sim: invalid broadcast config")
	}
	for _, p := range cfg.Receivers {
		if err := p.Geometry.Validate(); err != nil {
			return BroadcastResult{}, err
		}
	}

	nRx := len(cfg.Receivers)
	a.reseed(cfg.Seed, 0xC0FFEE, 0x51DE2, 0xACED2)
	sender, err := a.rentSender(cfg.Window, cfg.PayloadBytes, cfg.AckTimeoutSeconds)
	if err != nil {
		return BroadcastResult{}, err
	}
	side := a.rentSideChannel(cfg.SideLatencySeconds, cfg.SideJitterSeconds, cfg.SideLossProb)

	// Span collection. The flight recorder is a single-receiver facility
	// (Config.Flight is ignored here); spans cover the broadcast fan-out
	// fully, one decode subtree per receiver.
	col := cfg.Spans
	side.Spans = col

	// Instrumentation: with a nil registry every handle below is nil and
	// every recording call is a no-op (see internal/telemetry). All
	// receivers share one set of PHY instruments; per-receiver splits ride
	// on the event trace's sequence field instead of label cardinality.
	reg := cfg.Telemetry
	txm := phy.NewTxMetrics(reg)
	rxm := phy.NewRxMetrics(reg)
	macm := mac.NewMetrics(reg)
	sender.Metrics = macm
	side.Metrics = macm

	// Structured log handle: the sender and the sequential phases of the
	// loop write the logger directly (program order is deterministic);
	// receiver-side records buffer on each shard and splice in receiver
	// order below.
	lg := cfg.Logs
	sender.Log = lg
	reg.Help("sim_frame_airtime_slots", "Per-frame on-air length in slots, idle gap included.")
	reg.Help("sim_reliable_goodput_bps", "Payload rate acknowledged by every receiver.")
	framesTx := reg.Counter("sim_frames_tx_total")
	airtimeH := reg.Histogram("sim_frame_airtime_slots")
	levelG := reg.Gauge("sim_dimming_level")

	var controller *light.Controller
	if cfg.Trace != nil {
		stepper := cfg.Stepper
		if stepper == nil {
			stepper = light.PerceivedStepper{TauP: light.DefaultTauP}
		}
		controller, err = light.NewController(cfg.TargetSum, stepper)
		if err != nil {
			return BroadcastResult{}, err
		}
		controller.Metrics = light.NewMetrics(reg)
	}

	// Per-receiver shards (see bcRxState): each owns its rng, link,
	// receiver and outbox, rented warm from the arena.
	rxs := a.rentBcReceivers(nRx, cfg.Seed, cfg.PayloadBytes)
	if lg != nil {
		for _, st := range rxs {
			st.logBuf.Arm(lg.Min())
		}
	}
	ensure := func(i int, lux float64) error {
		st := rxs[i]
		if st.lastLux > 0 && math.Abs(lux-st.lastLux) <= 0.02*st.lastLux {
			return nil
		}
		ch, err := cfg.Budget.ChannelAt(cfg.Receivers[i].Geometry, lux)
		if err != nil {
			return err
		}
		st.link = phy.DefaultLink(ch)
		st.link.Metrics = txm
		st.rx.Reset(ch, cfg.Scheme.Factory())
		st.rx.Metrics = rxm
		rxm.OnChannel(st.rx.Threshold())
		st.lastLux = lux
		return nil
	}

	// Reliable multicast bookkeeping: which receivers acked each frame,
	// which frames every receiver has acked, and each sequence number's
	// first transmission time — ring/bitmap-backed over the 16-bit
	// sequence space instead of the maps they replace, so steady-state
	// sessions stop growing the heap with traffic.
	acked, complete, firstTx := a.rentBcBookkeeping(nRx)
	reliableBytes := int64(0)

	level := cfg.FixedLevel
	a.codecs.reset(cfg.Scheme)
	smoothed, smoothedSet := 0.0, false
	lastT := 0.0

	// Stage-profiler handles, cached per dimming level. The frame/mac
	// stages carry shard "" (they run once per frame on the sequential
	// path); the PHY stages carry shard "rx<i>" so the profile attributes
	// receiver-side cost per desk. The pprof label context is pre-built per
	// level and switched with SetLabels, which allocates nothing per frame.
	schemeName := cfg.Scheme.Name()
	seedStr := strconv.FormatUint(cfg.Seed, 10)
	if lg.Enabled(vlog.Info) {
		lg.Record(vlog.Record{
			At: 0, Level: vlog.Info, Stage: "sim/session", Msg: "session start", Seq: -1,
			Scheme: schemeName, Dim: fmtAttr(level),
			Attrs: []vlog.Attr{
				{Key: "seed", Value: seedStr},
				{Key: "window", Value: strconv.Itoa(cfg.Window)},
				{Key: "payload_bytes", Value: strconv.Itoa(cfg.PayloadBytes)},
				{Key: "receivers", Value: strconv.Itoa(nRx)},
			},
		})
	}
	// Keyed by the raw float level, like the codec cache: rendering the
	// level label per frame would allocate in the armed hot loop.
	bcProfCache := a.rentBcProfCache()
	var curProf *bcLevelProf
	var profSymbols int64 // read by processRx; written only between fan-outs

	// One persistent pool per session when parallel receivers are asked
	// for: Workers 0 and 1 stay on the caller's goroutine, negative picks
	// GOMAXPROCS, and the count never exceeds the receiver fan-out.
	workers := cfg.Workers
	if workers < 0 {
		workers = parallel.Workers(0)
	}
	if workers > nRx {
		workers = nRx
	}
	var pool *parallel.Pool
	if workers > 1 {
		if cfg.Prof != nil {
			// Label the pooled workers once at spawn so wall-clock CPU
			// profiles attribute broadcast PHY shards to this session.
			pool = parallel.NewPoolLabeled(workers,
				"session", seedStr, "scheme", schemeName, "stage", "phy.rx")
		} else {
			pool = parallel.NewPool(workers)
		}
		defer pool.Close()
	}

	var res BroadcastResult
	slotBuf := a.slotBuf // frame slot waveform, reused across frames
	a.vSlotLen = 0
	now := 0.0
	lastRecord := -1.0

	// Span state (see Config.Spans): per-sequence roots for retransmit
	// chaining and the sample duration for receiver-side span times.
	tsamp := 8e-6 / float64(phy.Oversample)
	roots := a.rentRoots(col != nil)
	prevRetx := 0

	// Per-receiver health monitors (nil entries are no-ops). Every
	// observation happens in the sequential phases of the loop — never
	// inside processRx — which is what keeps the series worker-count
	// invariant. firstTx records each sequence number's first transmission
	// so a receiver's ACK latency spans retransmissions.
	mons := make([]*health.Monitor, nRx)
	if cfg.Health != nil {
		for i := range mons {
			hc := *cfg.Health
			if hc.TSlotSeconds <= 0 {
				hc.TSlotSeconds = 8e-6
			}
			if hc.Registry == nil {
				hc.Registry = reg
			}
			hc.Link = "rx" + strconv.Itoa(i)
			if lg != nil {
				userAlert := hc.OnAlert
				hc.OnAlert = func(t health.Transition) {
					if userAlert != nil {
						userAlert(t)
					}
					// All health observations run on the sequential phases of
					// the loop, so these records land in deterministic order
					// like the single-receiver path's.
					if lv := sloLogLevel(t.To); lg.Enabled(lv) {
						lg.Record(vlog.Record{
							At: t.At, Level: lv, Stage: "sim/slo",
							Msg: "slo " + t.Objective + ": " + t.From.String() + " -> " + t.To.String(),
							Seq: -1, Shard: t.Link, Scheme: schemeName, Dim: fmtAttr(level),
							Attrs: []vlog.Attr{
								{Key: "burn_fast", Value: fmtAttr(t.BurnFast)},
								{Key: "burn_slow", Value: fmtAttr(t.BurnSlow)},
								{Key: "value", Value: fmtAttr(t.Value)},
								{Key: "target", Value: fmtAttr(t.Target)},
							},
						})
					}
				}
			}
			mons[i] = health.NewMonitor(hc)
		}
	}

	for now < duration {
		for _, m := range mons {
			m.Tick(now)
		}
		baseLux := cfg.AmbientLux
		if cfg.Trace != nil {
			baseLux = cfg.Trace.LuxAt(now)
		}
		// The controller follows the minimum ambient across desks, using
		// remote reports where available.
		minAmb := math.Inf(1)
		for i, p := range cfg.Receivers {
			lux := baseLux * p.scale()
			if err := ensure(i, lux); err != nil {
				return BroadcastResult{}, err
			}
			amb := light.Normalize(lux, cfg.FullLEDLux)
			if rxs[i].reported {
				amb = light.Normalize(rxs[i].remote, cfg.FullLEDLux)
			}
			minAmb = math.Min(minAmb, amb)
		}
		if !smoothedSet {
			smoothed, smoothedSet = minAmb, true
		} else {
			alpha := 1 - math.Exp(-(now-lastT)/0.2)
			smoothed += alpha * (minAmb - smoothed)
		}
		lastT = now
		if controller != nil {
			prevLevel := level
			level, _ = controller.StepToward(smoothed)
			if level != prevLevel && lg.Enabled(vlog.Debug) {
				lg.Record(vlog.Record{
					At: now, Level: vlog.Debug, Stage: "sim/dim",
					Msg: "dimming level adjusted", Seq: -1,
					Scheme: schemeName, Dim: fmtAttr(level),
					Attrs: []vlog.Attr{{Key: "from", Value: fmtAttr(prevLevel)}},
				})
			}
		}
		levelG.Set(level)
		for _, m := range mons {
			m.ObserveLevel(now, level)
		}

		if now-lastRecord >= 0.25 {
			lastRecord = now
			res.LED.Add(now, level)
			for i, p := range cfg.Receivers {
				amb := light.Normalize(baseLux*p.scale(), cfg.FullLEDLux)
				rxs[i].sumAcc += amb + level
				rxs[i].sumN++
			}
		}

		for _, m := range side.Receive(now) {
			switch m.Kind {
			case mac.KindAck:
				if complete.has(m.Seq) {
					continue
				}
				if acked.add(m.Seq, m.From) == nRx {
					complete.set(m.Seq)
					acked.drop(m.Seq)
					reliableBytes += int64(cfg.PayloadBytes)
					if lat, known := sender.OnAckAt(m.Seq, m.At); known && macm != nil {
						macm.AckLatency.AttachExemplar(lat, telemetry.Exemplar{
							At: m.At, Seq: int64(m.Seq), Span: int64(roots.get(m.Seq)),
						})
					}
					// Every receiver has delivered (and been observed) by
					// the time the last ACK lands; the latency origin can go.
					firstTx.drop(m.Seq)
					reg.Emit(m.At, "frame/ack", int64(m.Seq))
					if col != nil {
						col.Record(span.Span{
							Name: "mac/ack", Parent: roots.get(m.Seq), Seq: int64(m.Seq),
							Start: m.At, End: m.At,
						})
					}
				}
			case mac.KindAmbientReport:
				rxs[m.From].remote, rxs[m.From].reported = m.Lux, true
			}
		}

		seq, body, ok := sender.NextFrame(now)
		if !ok {
			now += cfg.AckTimeoutSeconds / 8
			continue
		}
		reg.Emit(now, "frame/build", int64(seq))
		codec, err := a.codecs.codecFor(level)
		if err != nil {
			return BroadcastResult{}, err
		}
		if cfg.Prof != nil {
			lp := bcProfCache[level]
			if lp == nil {
				ll := prof.LevelLabel(level)
				lp = &bcLevelProf{
					frame: cfg.Prof.Stage("sim.frame", schemeName, ll, ""),
					mac:   cfg.Prof.Stage("mac.frame", schemeName, ll, ""),
					rx:    make([]bcRxProf, nRx),
					labels: parallel.LabelContext("session", seedStr,
						"scheme", schemeName, "level", ll, "stage", "sim.frame"),
				}
				for i := range lp.rx {
					shard := "rx" + strconv.Itoa(i)
					lp.rx[i] = bcRxProf{
						tx:     cfg.Prof.Stage("phy.tx", schemeName, ll, shard),
						hunt:   cfg.Prof.Stage("phy.hunt", schemeName, ll, shard),
						decode: cfg.Prof.Stage("phy.decode", schemeName, ll, shard),
					}
				}
				if ps, okS := codec.(interface{ PayloadSymbols(int) int }); okS {
					lp.symbols = int64(ps.PayloadSymbols(mac.SeqBytes + cfg.PayloadBytes))
				}
				bcProfCache[level] = lp
			}
			if lp != curProf {
				curProf = lp
				parallel.SetLabels(lp.labels)
				sender.Prof = lp.mac
				profSymbols = lp.symbols
				for i, st := range rxs {
					st.profTx, st.profHunt, st.profDecode = lp.rx[i].tx, lp.rx[i].hunt, lp.rx[i].decode
				}
			}
		}
		slots, err := frame.BuildAppend(slotBuf[:0], codec, body)
		if err != nil {
			return BroadcastResult{}, err
		}
		slots = frame.AppendIdle(slots, codec.Level(), cfg.IdleGapSlots)
		slotBuf = slots
		grew := a.frameAlloc(len(slots))
		if grew && lg.Enabled(vlog.Debug) {
			// Keyed on the virtual high-water mark, so warm arena runs log
			// the same growth events a fresh run would.
			lg.Record(vlog.Record{
				At: now, Level: vlog.Debug, Stage: "sim/arena",
				Msg: "frame slot scratch grew", Seq: int64(seq),
				Attrs: []vlog.Attr{{Key: "slots", Value: strconv.Itoa(len(slots))}},
			})
		}
		if curProf != nil {
			curProf.frame.Ops(1)
			curProf.frame.Slots(int64(len(slots)))
			curProf.frame.Bytes(int64(len(body)))
			curProf.frame.Symbols(curProf.symbols)
			if grew {
				curProf.frame.Allocs(1)
			}
		}
		airtime := float64(len(slots)) * 8e-6
		framesTx.Inc()
		airtimeH.Observe(float64(len(slots)))
		reg.Emit(now, "frame/tx", int64(seq))

		retx := sender.Retransmits() > prevRetx
		prevRetx = sender.Retransmits()
		if !retx {
			// A fresh sequence number supersedes any prior incarnation
			// (post-wrap reuse): forget its completed/acked state so late
			// bookkeeping from the old incarnation can't leak into the new
			// one. Before the seq space wraps these are no-ops.
			complete.clear(seq)
			acked.drop(seq)
			firstTx.set(seq, now)
		}
		for _, m := range mons {
			m.ObserveTx(now, len(slots), retx)
		}
		var root span.ID
		if col != nil {
			parent := span.ID(0)
			if retx {
				parent = roots.get(seq)
			}
			desc := codec.Descriptor()
			root = col.Record(span.Span{
				Name: "frame", Parent: parent, Seq: int64(seq),
				Start: now, End: now + airtime,
				Attrs: []span.Attr{
					{Key: "level", Value: strconv.FormatFloat(level, 'g', -1, 64)},
					{Key: "scheme", Value: cfg.Scheme.Name()},
					{Key: "pattern", Value: hex.EncodeToString(desc[:])},
					{Key: "slots", Value: strconv.Itoa(len(slots))},
				},
			})
			roots.set(seq, root)
			col.Record(span.Span{Name: "frame/build", Parent: root, Seq: int64(seq), Start: now, End: now})
			if retx {
				col.Record(span.Span{Name: "mac/retx", Parent: root, Seq: int64(seq), Start: now, End: now})
			}
			col.Record(span.Span{Name: "frame/tx", Parent: root, Seq: int64(seq), Start: now, End: now + airtime})
		}
		airtimeH.AttachExemplar(float64(len(slots)),
			telemetry.Exemplar{At: now, Seq: int64(seq), Span: int64(root)})

		// Per-receiver PHY + decode: each receiver owns its rng, link,
		// receiver state and outbox, so the bodies are independent. The
		// only shared state they touch is the PHY metrics counters, whose
		// atomic adds commute — a snapshot cannot tell in which order they
		// landed. Everything order-sensitive (side-channel sends drawing on
		// sideRng, trace emits) goes through the outbox replay below.
		processRx := func(i int) {
			st := rxs[i]
			st.out = rxOutbox{ackSeqs: st.out.ackSeqs[:0], newSeqs: st.out.newSeqs[:0]}
			// Stage-cost attribution: all prof adds are commuting atomics, so
			// they may run inside the concurrent fan-out without affecting
			// snapshot bytes. ensure() rebuilds link/rx on lux moves, so the
			// handles are (re)attached per frame. Nil handles no-op.
			st.link.Prof = st.profTx
			st.rx.SetProf(st.profHunt, st.profDecode)
			st.link.StartPhase = st.rng.Float64()
			samples := st.link.TransmitPCG(st.pcg, slots)
			if col != nil {
				// Shard-local span sequence: channel first, then whatever
				// hunt/decode spans the receiver emits. Parent 0 and Seq -1
				// resolve to this frame's root at splice time.
				st.spanBuf.Reset()
				st.spanBuf.Record(span.Span{
					Name: "frame/channel", Seq: -1,
					Start: now, End: now + float64(len(samples))*tsamp,
				})
				st.rx.SetSpanWindow(&st.spanBuf, now, tsamp)
			}
			if lg != nil {
				// Shard-local log records: Span 0, Seq -1 and Shard ""
				// resolve to this frame's root / seq / "rx<i>" at splice
				// time, in the sequential merge below.
				st.logBuf.Reset()
				st.rx.SetLogWindow(&st.logBuf, now, tsamp)
			}
			results, st2 := st.rx.Process(samples)
			st.out.stats = st2
			if n := int64(len(results)); n > 0 {
				st.profDecode.Symbols(profSymbols * n)
			}
			phy.RecycleSamples(samples)
			for _, r := range results {
				before := st.macRx.DeliveredPayload()
				if gotSeq, ackIt := st.macRx.OnFrame(r.Payload); ackIt {
					st.out.ackSeqs = append(st.out.ackSeqs, gotSeq)
					if st.macRx.DeliveredPayload() > before {
						st.out.newSeqs = append(st.out.newSeqs, gotSeq)
					}
				}
			}
			if counts, okA := st.rx.AmbientWindowCounts(); okA {
				amb := counts/phy.AmbientWindowFraction - cfg.Budget.DarkCounts
				if amb < 0 {
					amb = 0
				}
				st.out.ambient = amb / cfg.Budget.AmbientCountsPerLux
				st.out.hasAmbient = true
			}
		}
		if pool != nil {
			pool.Run(nRx, processRx)
		} else {
			for i := 0; i < nRx; i++ {
				processRx(i)
			}
		}
		// Deterministic merge: replay the buffered sends in receiver order,
		// reproducing the serial loop's event and sideRng sequence exactly.
		for i := range rxs {
			out := &rxs[i].out
			if col != nil {
				col.Splice(&rxs[i].spanBuf, root, int64(seq), span.Attr{Key: "rx", Value: strconv.Itoa(i)})
			}
			if lg != nil {
				lg.Splice(&rxs[i].logBuf, int64(root), int64(seq), "rx"+strconv.Itoa(i))
			}
			mons[i].ObserveRx(now+airtime, out.stats.FramesOK, out.stats.FramesBad,
				out.stats.SymbolErrors, out.stats.FramesOK*cfg.PayloadBytes)
			for _, newSeq := range out.newSeqs {
				mons[i].ObserveDelivered(now+airtime, int64(cfg.PayloadBytes)*8)
				if ft, known := firstTx.get(newSeq); known {
					// Latency to this receiver's acknowledgment, from the
					// sequence number's first transmission.
					mons[i].ObserveAck(now+airtime, now+airtime-ft)
				}
			}
			for _, seq := range out.ackSeqs {
				reg.Emit(now+airtime, "frame/decode", int64(seq))
				side.Send(now+airtime, mac.Message{Kind: mac.KindAck, From: i, Seq: seq})
			}
			if out.hasAmbient {
				side.Send(now+airtime, mac.Message{
					Kind: mac.KindAmbientReport,
					From: i,
					Lux:  out.ambient,
				})
			}
		}
		now += airtime
	}
	for _, m := range side.Receive(now + 1) {
		if m.Kind != mac.KindAck || complete.has(m.Seq) {
			continue
		}
		if acked.add(m.Seq, m.From) == nRx {
			complete.set(m.Seq)
			reliableBytes += int64(cfg.PayloadBytes)
		}
	}

	// Hand the grown slot scratch back to the arena for the next session.
	a.slotBuf = slotBuf

	res.Duration = now
	res.FramesSent = sender.FramesSent()
	res.ReliableGoodputBps = float64(reliableBytes) * 8 / now
	if controller != nil {
		res.Adjustments = controller.Adjustments()
	}
	for i := range rxs {
		o := ReceiverOutcome{
			DeliveredBps: float64(rxs[i].macRx.DeliveredPayload()) * 8 / now,
		}
		if rxs[i].sumN > 0 {
			o.MeanSum = rxs[i].sumAcc / float64(rxs[i].sumN)
		}
		o.FramesOK = int(rxs[i].macRx.DeliveredPayload()) / cfg.PayloadBytes
		o.Health = mons[i].Finish(now)
		res.PerReceiver = append(res.PerReceiver, o)
	}
	if cfg.Health != nil {
		perRx := make([]*health.Snapshot, 0, nRx)
		for _, o := range res.PerReceiver {
			perRx = append(perRx, o.Health)
		}
		res.Health = health.Merge(perRx...)
	}
	if cfg.Prof != nil {
		// Mirror stage totals into the registry before the snapshot, so
		// telemetry.Merge carries the profile fleet-wide.
		cfg.Prof.Publish(reg)
		res.Prof = cfg.Prof.Snapshot()
	}
	if reg != nil {
		reg.Gauge("sim_reliable_goodput_bps").Set(res.ReliableGoodputBps)
		reg.Gauge("sim_duration_seconds").Set(res.Duration)
		res.Telemetry = reg.Snapshot()
	}
	if col != nil {
		res.Spans = col.Snapshot()
	}
	if lg != nil {
		if lg.Enabled(vlog.Info) {
			lg.Record(vlog.Record{
				At: now, Level: vlog.Info, Stage: "sim/session", Msg: "session end", Seq: -1,
				Scheme: schemeName, Dim: fmtAttr(level),
				Attrs: []vlog.Attr{
					{Key: "reliable_goodput_bps", Value: fmtAttr(res.ReliableGoodputBps)},
					{Key: "frames_sent", Value: strconv.Itoa(res.FramesSent)},
					{Key: "receivers", Value: strconv.Itoa(nRx)},
				},
			})
		}
		res.Logs = lg.Snapshot()
	}
	return res, nil
}
