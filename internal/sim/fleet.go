package sim

import (
	"fmt"
	"os"
	"path/filepath"

	"smartvlc/internal/parallel"
	"smartvlc/internal/telemetry"
	"smartvlc/internal/telemetry/agg"
	"smartvlc/internal/telemetry/health"
	"smartvlc/internal/telemetry/prof"
	"smartvlc/internal/telemetry/span"
	"smartvlc/internal/telemetry/vlog"
)

// FleetResult aggregates a fleet of independent sessions.
type FleetResult struct {
	// Results holds each session's outcome, in config order.
	Results []Result
	// Workers is the resolved worker count the fleet ran on.
	Workers int
	// Telemetry merges the per-session snapshots (counters and histogram
	// occupancies summed, gauges averaged, event traces elided) for the
	// sessions that carried a registry; nil when none did. Per-session
	// event traces and span trees are NOT merged — see telemetry.Merge for
	// the elision contract — but they are not lost either: each session's
	// Result retains its own Telemetry and Spans snapshots, and
	// WriteSessionTraces exports the span trees per session.
	Telemetry *telemetry.Snapshot
	// Health merges the per-session link-health series (counts summed,
	// rates recomputed, SLOs re-evaluated over the merged series) for the
	// sessions that carried a health config; nil when none did. Each
	// session's Result keeps its own Health snapshot. The merge folds in
	// config order, so the fleet health snapshot is byte-identical for
	// every worker count.
	Health *health.Snapshot
	// Prof merges the per-session stage-cost snapshots (counts summed per
	// series key) for the sessions that carried a profiler; nil when none
	// did. Each session's Result keeps its own Prof snapshot. The merge
	// folds in config order, so the fleet profile is byte-identical for
	// every worker count. Stage totals also ride the Telemetry merge as
	// prof_*_total counters — this field keeps the structured view.
	Prof *prof.Snapshot
	// Logs concatenates the per-session log snapshots in config order,
	// reassigning record IDs fleet-wide, for the sessions that carried a
	// logger; nil when none did. The elision contract (see vlog.Merge):
	// the merge does NOT re-apply any ring capacity — per-session drops
	// already happened — and the session boundary is elided from the
	// records themselves; recover it from the "sim/session" start/end
	// records or from each Result's own Logs snapshot, which is retained.
	// The fold runs in config order, so the fleet log is byte-identical
	// for every worker count.
	Logs *vlog.Snapshot
	// Agg is the final streaming-aggregator snapshot (fleet window rollup
	// pyramid plus worst-sessions tables) when the configs carried Watch
	// feeds; nil when none did. The feeds fold deltas in config order at
	// sim-clock window boundaries, so this too is byte-identical for every
	// worker count — and unlike the merges above, the same state was
	// observable live via Aggregator.Snapshot while the fleet ran.
	Agg *agg.Snapshot
}

// WriteSessionTraces exports each session's span snapshot into dir
// (created if absent) as session-NNN.spans.json (canonical snapshot) and
// session-NNN.trace.json (Chrome trace_event, Perfetto-loadable), indexed
// by config order. Sessions without a span collector are skipped. This is
// the fleet-mode counterpart to the merge elision: aggregates merge,
// traces export per session.
func (f FleetResult) WriteSessionTraces(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	for i, r := range f.Results {
		if r.Spans == nil {
			continue
		}
		b, err := r.Spans.JSON()
		if err != nil {
			return fmt.Errorf("sim: session %d spans: %w", i, err)
		}
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("session-%03d.spans.json", i)), b, 0o644); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		tf, err := os.Create(filepath.Join(dir, fmt.Sprintf("session-%03d.trace.json", i)))
		if err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		if err := r.Spans.WriteChromeTrace(tf); err != nil {
			tf.Close()
			return fmt.Errorf("sim: session %d trace: %w", i, err)
		}
		if err := tf.Close(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	return nil
}

// RunFleet runs one session per config concurrently across at most
// workers goroutines (workers < 1 selects GOMAXPROCS) and returns the
// results in config order. Sessions are fully independent — each draws
// from RNG streams derived from its own Seed and records into its own
// registry — so the fleet result is byte-identical for every worker
// count: Results[i] and its snapshot match a serial Run of cfgs[i], and
// the merged snapshot is a sequential fold in config order.
//
// Configs that share a telemetry registry are rejected: concurrent
// sessions writing one registry would interleave event traces
// nondeterministically. Give each session its own registry (or none) and
// read the merged snapshot.
func RunFleet(cfgs []Config, duration float64, workers int) (FleetResult, error) {
	return RunFleetArenas(NewFleetArenas(), cfgs, duration, workers)
}

// RunFleetArenas is RunFleet renting one session arena per worker from
// the given pool: each worker claims an arena once, runs its share of the
// sessions out of it, and returns it when the fleet drains. Passing a
// persistent pool keeps the arenas warm across calls, which is what makes
// repeated fleets approach zero per-session allocation; results are
// byte-identical to RunFleet either way (rented state only amortizes
// cost, it never influences results).
func RunFleetArenas(arenas *FleetArenas, cfgs []Config, duration float64, workers int) (FleetResult, error) {
	if arenas == nil {
		arenas = NewFleetArenas()
	}
	if len(cfgs) == 0 {
		return FleetResult{}, fmt.Errorf("sim: fleet needs at least one config")
	}
	seen := make(map[*telemetry.Registry]int, len(cfgs))
	seenSpans := make(map[*span.Collector]int, len(cfgs))
	seenProf := make(map[*prof.Profiler]int, len(cfgs))
	seenLogs := make(map[*vlog.Logger]int, len(cfgs))
	seenFeeds := make(map[*agg.Feed]int, len(cfgs))
	var fleetAgg *agg.Aggregator
	for i, cfg := range cfgs {
		if cfg.Watch != nil {
			// A shared feed would interleave two sessions' deltas into one
			// window cursor; feeds across different aggregators would leave
			// no single fleet rollup to report.
			if j, dup := seenFeeds[cfg.Watch]; dup {
				return FleetResult{}, fmt.Errorf("sim: fleet configs %d and %d share a watch feed", j, i)
			}
			seenFeeds[cfg.Watch] = i
			if a := cfg.Watch.Aggregator(); fleetAgg == nil {
				fleetAgg = a
			} else if a != fleetAgg {
				return FleetResult{}, fmt.Errorf("sim: fleet config %d's watch feed belongs to a different aggregator", i)
			}
		}
		if cfg.Spans != nil {
			if j, dup := seenSpans[cfg.Spans]; dup {
				return FleetResult{}, fmt.Errorf("sim: fleet configs %d and %d share a span collector", j, i)
			}
			seenSpans[cfg.Spans] = i
		}
		if cfg.Prof != nil {
			// A shared profiler would double-count concurrent sessions and
			// make the per-session snapshots depend on completion order.
			if j, dup := seenProf[cfg.Prof]; dup {
				return FleetResult{}, fmt.Errorf("sim: fleet configs %d and %d share a stage profiler", j, i)
			}
			seenProf[cfg.Prof] = i
		}
		if cfg.Logs != nil {
			// A shared logger would interleave concurrent sessions' records
			// nondeterministically in one ring.
			if j, dup := seenLogs[cfg.Logs]; dup {
				return FleetResult{}, fmt.Errorf("sim: fleet configs %d and %d share a structured logger", j, i)
			}
			seenLogs[cfg.Logs] = i
		}
		if cfg.Telemetry == nil {
			continue
		}
		if j, dup := seen[cfg.Telemetry]; dup {
			return FleetResult{}, fmt.Errorf("sim: fleet configs %d and %d share a telemetry registry", j, i)
		}
		seen[cfg.Telemetry] = i
	}

	w := parallel.Workers(workers)
	if w > len(cfgs) {
		w = len(cfgs)
	}
	results, err := parallel.MapWorker(w, len(cfgs), arenas.rent, arenas.release,
		func(i int, a *Arena) (Result, error) {
			return a.Run(cfgs[i], duration)
		})
	if err != nil {
		return FleetResult{}, err
	}

	out := FleetResult{Results: results, Workers: w}
	snaps := make([]*telemetry.Snapshot, 0, len(results))
	for _, r := range results {
		if r.Telemetry != nil {
			snaps = append(snaps, r.Telemetry)
		}
	}
	if len(snaps) > 0 {
		out.Telemetry = telemetry.Merge(snaps...)
	}
	healths := make([]*health.Snapshot, 0, len(results))
	for _, r := range results {
		if r.Health != nil {
			healths = append(healths, r.Health)
		}
	}
	if len(healths) > 0 {
		out.Health = health.Merge(healths...)
	}
	profs := make([]*prof.Snapshot, 0, len(results))
	for _, r := range results {
		if r.Prof != nil {
			profs = append(profs, r.Prof)
		}
	}
	if len(profs) > 0 {
		out.Prof = prof.Merge(profs...)
	}
	logs := make([]*vlog.Snapshot, 0, len(results))
	for _, r := range results {
		if r.Logs != nil {
			logs = append(logs, r.Logs)
		}
	}
	if len(logs) > 0 {
		out.Logs = vlog.Merge(logs...)
	}
	if fleetAgg != nil {
		out.Agg = fleetAgg.Snapshot()
	}
	return out, nil
}
