package sim

import (
	"smartvlc/internal/frame"
	"smartvlc/internal/scheme"
	"smartvlc/internal/telemetry"
)

// codecCache is the session's level-keyed codec cache, shared by the
// single-receiver and broadcast loops (which previously each carried a
// copy of this logic). The dimming controller quantizes onto a small set
// of levels it revisits constantly, so after the first frame at a level
// every later frame at it is a map hit; scheme.CodecFor stays the single
// constructor, the cache only pins its results per level for the session.
//
// An arena retains the cache across sessions: reset clears the entries
// (codec identity is only meaningful per scheme instance, and renting
// sessions may switch schemes) but keeps the map's buckets, so warm
// sessions repopulate it without allocating.
type codecCache struct {
	scheme  scheme.Scheme
	byLevel map[float64]frame.PayloadCodec
}

// reset prepares the cache for a session running the given scheme.
func (c *codecCache) reset(s scheme.Scheme) {
	if c.byLevel == nil {
		c.byLevel = make(map[float64]frame.PayloadCodec, 8)
	} else {
		clear(c.byLevel)
	}
	c.scheme = s
}

// codecFor returns the scheme's codec for a dimming level, cached per
// level for the session.
func (c *codecCache) codecFor(level float64) (frame.PayloadCodec, error) {
	if codec, ok := c.byLevel[level]; ok {
		codecCacheHits.Inc()
		return codec, nil
	}
	codecCacheMisses.Inc()
	codec, err := c.scheme.CodecFor(level)
	if err != nil {
		return nil, err
	}
	c.byLevel[level] = codec
	return codec, nil
}

// Codec-cache efficiency counters live on the process-global registry,
// like the PHY threshold cache's: the hit rate is a property of the
// process's workload mix, not of any one deterministic session.
var (
	codecCacheHits   = telemetry.Global().Counter("sim_codec_cache_total", "result", "hit")
	codecCacheMisses = telemetry.Global().Counter("sim_codec_cache_total", "result", "miss")
)

// CodecCacheStats reports cumulative hit/miss counts of the per-level
// session codec cache.
func CodecCacheStats() (hits, misses int64) {
	return codecCacheHits.Value(), codecCacheMisses.Value()
}
