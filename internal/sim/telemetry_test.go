package sim

import (
	"bytes"
	"testing"

	"smartvlc/internal/light"
	"smartvlc/internal/optics"
	"smartvlc/internal/telemetry"
)

// TestRunTelemetryDeterministic is the ISSUE acceptance criterion: two
// Run calls with identical config and seed must produce byte-identical
// JSON telemetry exports. Per-session registries only record sim-time
// quantities, so nothing about wall time, map order or process warm-up
// may leak into the snapshot.
func TestRunTelemetryDeterministic(t *testing.T) {
	s := amppmScheme(t)
	run := func() []byte {
		cfg := DefaultConfig(s)
		cfg.FixedLevel = 0.5
		cfg.Telemetry = telemetry.New()
		res, err := Run(cfg, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		if res.Telemetry == nil {
			t.Fatal("Run left Result.Telemetry nil despite a registry")
		}
		j, err := res.Telemetry.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("telemetry snapshots differ across identically-seeded runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestRunTelemetryContent checks the instrumented pipeline actually
// records: frames transmitted, PHY outcomes, MAC acks and the frame
// lifecycle trace all present and consistent with Result.
func TestRunTelemetryContent(t *testing.T) {
	s := amppmScheme(t)
	cfg := DefaultConfig(s)
	cfg.FixedLevel = 0.5
	cfg.Telemetry = telemetry.New()
	res, err := Run(cfg, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Telemetry

	counter := func(name string, labels ...string) int64 {
		t.Helper()
		for _, c := range snap.Counters {
			if c.Name != name {
				continue
			}
			if len(labels) == 0 && len(c.Labels) == 0 {
				return c.Value
			}
			if len(labels) == 2 && len(c.Labels) == 1 &&
				c.Labels[0].Key == labels[0] && c.Labels[0].Value == labels[1] {
				return c.Value
			}
		}
		return 0
	}

	if got := counter("sim_frames_tx_total"); got != int64(res.FramesSent) {
		t.Errorf("sim_frames_tx_total=%d, Result.FramesSent=%d", got, res.FramesSent)
	}
	if got := counter("phy_rx_frames_total", "outcome", "ok"); got != int64(res.FramesOK) {
		t.Errorf("phy_rx_frames_total{outcome=ok}=%d, Result.FramesOK=%d", got, res.FramesOK)
	}
	if counter("phy_tx_frames_total") == 0 {
		t.Error("phy_tx_frames_total never incremented")
	}
	if counter("mac_acks_received_total") == 0 {
		t.Error("mac_acks_received_total never incremented")
	}
	if len(snap.Events) == 0 {
		t.Fatal("no lifecycle events traced")
	}
	kinds := map[string]int{}
	for _, e := range snap.Events {
		kinds[e.Kind]++
		if e.At < 0 || e.At > res.Duration+1 {
			t.Fatalf("event %q at %v outside sim time [0,%v]", e.Kind, e.At, res.Duration)
		}
	}
	for _, k := range []string{"frame/build", "frame/tx", "frame/decode", "frame/ack"} {
		if kinds[k] == 0 {
			t.Errorf("no %q events traced (got %v)", k, kinds)
		}
	}
}

// TestRunBroadcastTelemetry covers the multi-receiver path: snapshot
// present, deterministic, and shared PHY instruments see every receiver.
func TestRunBroadcastTelemetry(t *testing.T) {
	s := amppmScheme(t)
	run := func() (BroadcastResult, []byte) {
		cfg := BroadcastConfig{Config: DefaultConfig(s)}
		cfg.FixedLevel = 0.5
		cfg.Telemetry = telemetry.New()
		cfg.Receivers = []ReceiverPose{
			{Geometry: cfg.Geometry},
			{Geometry: optics.Aligned(2.5, 10), AmbientScale: 1.5},
		}
		res, err := RunBroadcast(cfg, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if res.Telemetry == nil {
			t.Fatal("RunBroadcast left Telemetry nil despite a registry")
		}
		j, err := res.Telemetry.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return res, j
	}
	res, a := run()
	_, b := run()
	if !bytes.Equal(a, b) {
		t.Fatal("broadcast telemetry snapshots differ across identically-seeded runs")
	}
	var framesTx, txFrames int64
	for _, c := range res.Telemetry.Counters {
		switch c.Name {
		case "sim_frames_tx_total":
			framesTx = c.Value
		case "phy_tx_frames_total":
			txFrames = c.Value
		}
	}
	if framesTx == 0 {
		t.Fatal("no frames transmitted")
	}
	// Each scheduled frame is pushed through every receiver's link, so
	// the shared PHY transmit counter sees nRx× the MAC frame count.
	if txFrames != 2*framesTx {
		t.Errorf("phy_tx_frames_total=%d, want 2×sim_frames_tx_total=%d", txFrames, 2*framesTx)
	}
}

// TestRunWithoutTelemetry keeps the nil-registry default truly zero
// impact: no snapshot, identical results to an instrumented run.
func TestRunWithoutTelemetry(t *testing.T) {
	s := amppmScheme(t)
	cfg := DefaultConfig(s)
	cfg.FixedLevel = 0.5
	plain, err := Run(cfg, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Telemetry != nil {
		t.Fatal("Telemetry non-nil without a registry")
	}
	cfg2 := DefaultConfig(s)
	cfg2.FixedLevel = 0.5
	cfg2.Telemetry = telemetry.New()
	inst, err := Run(cfg2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if plain.GoodputBps != inst.GoodputBps || plain.FramesOK != inst.FramesOK ||
		plain.FramesSent != inst.FramesSent {
		t.Fatalf("instrumentation changed results: %+v vs %+v", plain, inst)
	}
}

// TestControllerMetricsAgree pins the telemetry view of the dimming
// controller to its own counters during a dynamic-ambient session.
func TestControllerMetricsAgree(t *testing.T) {
	s := amppmScheme(t)
	cfg := DefaultConfig(s)
	cfg.Trace = light.BlindPull{StartLux: 50, EndLux: 4000, Duration: 0.5}
	cfg.Telemetry = telemetry.New()
	res, err := Run(cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var steps int64
	for _, c := range res.Telemetry.Counters {
		if c.Name == "light_adjustments_total" {
			steps = c.Value
		}
	}
	if steps != int64(res.Adjustments) {
		t.Fatalf("light_adjustments_total=%d, Result.Adjustments=%d", steps, res.Adjustments)
	}
}
