package sim

import (
	"testing"

	"smartvlc/internal/light"
	"smartvlc/internal/optics"
)

// Failure-injection scenarios: the session must degrade the way the real
// system would, never panic or wedge.

func TestSideChannelTotalOutage(t *testing.T) {
	// With the Wi-Fi uplink dead, no ACK ever arrives: the sender stalls
	// at its window and retransmits; acknowledged goodput is zero even
	// though the optical downlink still delivers frames.
	cfg := DefaultConfig(amppmScheme(t))
	cfg.SideLossProb = 1.0
	res, err := Run(cfg, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if res.GoodputBps != 0 {
		t.Fatalf("goodput %v with a dead uplink", res.GoodputBps)
	}
	if res.FramesOK == 0 {
		t.Fatal("downlink should still deliver frames")
	}
	if res.Retransmits == 0 {
		t.Fatal("expected retransmissions")
	}
}

func TestSideChannelHeavyLossRecovers(t *testing.T) {
	// 40% ACK loss: ARQ retransmissions keep goodput within a factor ~2
	// of the clean link.
	clean := DefaultConfig(amppmScheme(t))
	clean.FixedLevel = 0.5
	rc, err := Run(clean, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	lossy := clean
	lossy.SideLossProb = 0.4
	// Tune the ARQ for the lossy regime (shorter retransmission timeout),
	// as any deployment facing a bad WLAN would.
	lossy.AckTimeoutSeconds = 0.08
	rl, err := Run(lossy, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if rl.GoodputBps < rc.GoodputBps/3 {
		t.Fatalf("lossy %v vs clean %v", rl.GoodputBps, rc.GoodputBps)
	}
	if rl.Retransmits == 0 {
		t.Fatal("expected retransmissions under ack loss")
	}
}

func TestExtremeClockDriftStillDecodes(t *testing.T) {
	// The BBB PRU spec allows ±25 ppm; per-frame preamble relock must
	// keep the link alive even at the worst relative drift. The drift
	// knobs live in phy.DefaultLink, so exercise them indirectly with
	// long frames (larger payloads accumulate more intra-frame drift).
	cfg := DefaultConfig(amppmScheme(t))
	cfg.PayloadBytes = 1024
	cfg.FixedLevel = 0.1 // longest frames
	res, err := Run(cfg, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesOK < res.FramesSent*7/10 {
		t.Fatalf("long-frame delivery too low: %d/%d", res.FramesOK, res.FramesSent)
	}
}

func TestAmbientSpikesDoNotFlicker(t *testing.T) {
	// A pathological ambient trace (hard steps every 500 ms) must still
	// produce only imperceptible LED steps.
	cfg := DefaultConfig(amppmScheme(t))
	cfg.Trace = light.Steps{
		Levels:      []float64{50, 400, 100, 350, 60, 420},
		StepSeconds: 0.5,
	}
	cfg.FullLEDLux = 500
	res, err := Run(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	led := res.LED.Values()
	for i := 1; i < len(led); i++ {
		// Between two recordings (250 ms) the level may take many steps,
		// but each individual one was a stepper step; verify the recorded
		// trajectory stays within the valid range and is finite.
		if led[i] < 0.1-1e-9 || led[i] > 0.9+1e-9 {
			t.Fatalf("LED left operating range: %v", led[i])
		}
	}
	if res.Adjustments == 0 {
		t.Fatal("controller never adapted")
	}
}

func TestBrokenLinkSessionTerminates(t *testing.T) {
	// A receiver far beyond range: the session must still terminate and
	// report zeros rather than loop forever on retransmissions.
	cfg := DefaultConfig(amppmScheme(t))
	cfg.Geometry = optics.Aligned(8, 0)
	res, err := Run(cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.GoodputBps != 0 || res.FramesOK != 0 {
		t.Fatalf("impossible link delivered: %+v", res)
	}
}

func TestZeroAmbientDarkRoom(t *testing.T) {
	// Pitch-dark room: only dark counts as noise; the link is at its
	// cleanest.
	cfg := DefaultConfig(amppmScheme(t))
	cfg.AmbientLux = 0
	res, err := Run(cfg, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// FramesBad counts pseudo-locks during preamble hunting as well as
	// real corruption, so assert on deliveries: everything sent arrives.
	if res.FramesOK < res.FramesSent || res.FramesOK == 0 {
		t.Fatalf("dark room link: ok=%d sent=%d", res.FramesOK, res.FramesSent)
	}
	if res.Retransmits > 0 {
		t.Fatalf("dark room should need no retransmissions, got %d", res.Retransmits)
	}
}

// TestVLCUplinkSession runs the paper's future-work configuration: ACKs
// over a low-rate VLC return link instead of Wi-Fi.
func TestVLCUplinkSession(t *testing.T) {
	wifi := DefaultConfig(amppmScheme(t))
	wifi.Geometry = optics.Aligned(2.0, 0)
	rw, err := Run(wifi, 0.5)
	if err != nil {
		t.Fatal(err)
	}

	vlc := wifi
	vlc.UplinkVLCBitRate = 10e3 // 10 kbps micro-LED uplink, ~10 ms per ACK
	rv, err := Run(vlc, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// The serialized slow uplink must still sustain most of the goodput
	// (ACKs are short; the window keeps the downlink busy).
	if rv.GoodputBps < rw.GoodputBps*0.6 {
		t.Fatalf("VLC uplink %v vs Wi-Fi %v", rv.GoodputBps, rw.GoodputBps)
	}

	// Beyond the uplink's reach the downlink still delivers but nothing
	// is acknowledged.
	far := vlc
	far.Geometry = optics.Aligned(3.0, 0)
	far.UplinkVLCRangeM = 2.5
	rf, err := Run(far, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if rf.GoodputBps != 0 || rf.FramesOK == 0 {
		t.Fatalf("out-of-range uplink: goodput=%v ok=%d", rf.GoodputBps, rf.FramesOK)
	}
}
