package sim

import (
	"context"
	"math"
	"math/rand/v2"
	"strconv"
	"sync"

	"smartvlc/internal/hw"
	"smartvlc/internal/mac"
	"smartvlc/internal/parallel"
	"smartvlc/internal/phy"
	"smartvlc/internal/telemetry/prof"
	"smartvlc/internal/telemetry/span"
	"smartvlc/internal/telemetry/vlog"
)

// This file holds the session arena: a reusable bundle of everything a
// session allocates, plus the ring/bitmap structures that replace the
// seq-keyed maps of the session loops. Byte-identity with fresh runs is
// the design invariant throughout — an arena may only change WHERE state
// lives, never what any session observes. The reset discipline that
// guarantees it (DESIGN.md §14):
//
//   - Every rented component is reset to its just-constructed state at
//     session start: RNG streams reseeded onto the exact (seed, salt)
//     streams a fresh run derives, MAC/PHY state cleared via the
//     components' own Reset methods, caches cleared (buckets kept).
//   - Scratch capacity is the ONLY thing that survives: retained buffers
//     make warm sessions allocation-free, and the sim/phy prof alloc
//     counters run on virtual high-water marks (reset per session) so
//     even the profiler's scratch-growth accounting matches a fresh run
//     bit for bit.
//   - Ring entries are validated by (generation, seq) tags instead of
//     being cleared: reset is O(1), and a stale entry can never be read
//     because the sequence window guarantees seq and seq±seqRingSize are
//     never live at once (the ARQ window blocks issue of seq+k until
//     seq's fate is settled, k ≤ Window « seqRingSize).

// seqRingSize is the span of the seq-keyed rings. It needs only to
// exceed the maximum number of sequence numbers that can be "live"
// (unacked, or awaiting a trailing duplicate ACK) at once — bounded by
// the ARQ window plus the ACK round trip (timeout + side-channel
// latency, a few dozen frames), two orders of magnitude below 1024.
const seqRingSize = 1 << 10

// rootRing replaces the per-session map[uint16]span.ID of frame root
// spans. Entries are tagged with (generation, seq); a lookup that misses
// returns the zero span ID, exactly like the map it replaces.
type rootRing struct {
	gen uint32
	ent [seqRingSize]struct {
		gen uint32
		seq uint16
		id  span.ID
	}
}

func (r *rootRing) reset() { r.gen++ }

func (r *rootRing) set(seq uint16, id span.ID) {
	e := &r.ent[seq&(seqRingSize-1)]
	e.gen, e.seq, e.id = r.gen, seq, id
}

// get returns seq's root span, or zero — matching the empty-map read of
// unarmed sessions, for which the ring is nil.
func (r *rootRing) get(seq uint16) span.ID {
	if r == nil {
		return 0
	}
	e := &r.ent[seq&(seqRingSize-1)]
	if e.gen == r.gen && e.seq == seq {
		return e.id
	}
	return 0
}

// timeRing replaces the broadcast loop's map[uint16]float64 of first
// transmission times.
type timeRing struct {
	gen uint32
	ent [seqRingSize]struct {
		gen uint32
		seq uint16
		at  float64
	}
}

func (r *timeRing) reset() { r.gen++ }

func (r *timeRing) set(seq uint16, at float64) {
	e := &r.ent[seq&(seqRingSize-1)]
	e.gen, e.seq, e.at = r.gen, seq, at
}

func (r *timeRing) get(seq uint16) (float64, bool) {
	e := &r.ent[seq&(seqRingSize-1)]
	if e.gen == r.gen && e.seq == seq {
		return e.at, true
	}
	return 0, false
}

func (r *timeRing) drop(seq uint16) {
	e := &r.ent[seq&(seqRingSize-1)]
	if e.gen == r.gen && e.seq == seq {
		e.gen = 0
	}
}

// ackRing replaces the broadcast loop's map[uint16]map[int]bool of
// per-frame receiver acknowledgment sets: one per-receiver bitmask per
// in-window sequence number.
type ackRing struct {
	gen    uint32
	nWords int
	ent    [seqRingSize]struct {
		gen   uint32
		seq   uint16
		count int
		words []uint64
	}
}

func (r *ackRing) reset(nRx int) {
	r.gen++
	r.nWords = (nRx + 63) / 64
}

// add marks receiver i as having acked seq and returns the number of
// distinct receivers recorded for it so far.
func (r *ackRing) add(seq uint16, i int) int {
	e := &r.ent[seq&(seqRingSize-1)]
	if e.gen != r.gen || e.seq != seq {
		e.gen, e.seq, e.count = r.gen, seq, 0
		if cap(e.words) < r.nWords {
			e.words = make([]uint64, r.nWords)
		} else {
			e.words = e.words[:r.nWords]
			clear(e.words)
		}
	}
	w, b := i>>6, uint64(1)<<(i&63)
	if e.words[w]&b == 0 {
		e.words[w] |= b
		e.count++
	}
	return e.count
}

// drop forgets seq's acknowledgment set (the map's delete).
func (r *ackRing) drop(seq uint16) {
	e := &r.ent[seq&(seqRingSize-1)]
	if e.gen == r.gen && e.seq == seq {
		e.gen = 0
	}
}

// seqBits is a set over the full 16-bit sequence space (8 KB), replacing
// the broadcast loop's completed-frame map. Unlike the rings it is
// cleared wholesale per session — one 8 KB memclr.
type seqBits [1 << 16 / 64]uint64

func (b *seqBits) has(seq uint16) bool { return b[seq>>6]&(1<<(seq&63)) != 0 }
func (b *seqBits) set(seq uint16)      { b[seq>>6] |= 1 << (seq & 63) }
func (b *seqBits) clear(seq uint16)    { b[seq>>6] &^= 1 << (seq & 63) }
func (b *seqBits) resetAll()           { *b = seqBits{} }

// rxOutbox buffers one frame window's side-channel traffic for one
// broadcast receiver. The PHY work of a window runs concurrently per
// receiver, but side.Send consumes the shared sideRng (loss and jitter
// draws), so the sends are recorded here and replayed sequentially in
// receiver order — exactly the sequence the serial loop produces.
type rxOutbox struct {
	ackSeqs []uint16
	// newSeqs are the sequences newly delivered this window (ackSeqs
	// minus re-acked duplicates) — what the health monitor counts as
	// delivered payload and an ACK latency sample.
	newSeqs    []uint16
	stats      phy.Stats
	ambient    float64
	hasAmbient bool
}

// bcRxState is one broadcast receiver's session state; the arena retains
// these across sessions and resets them per run.
type bcRxState struct {
	rng      *rand.Rand
	pcg      *rand.PCG // rng's generator, for the PHY fast path
	link     phy.Link
	rx       *phy.Receiver
	macRx    *mac.Receiver
	lastLux  float64
	remote   float64 // last reported ambient lux
	reported bool
	sumAcc   float64
	sumN     int
	out      rxOutbox
	// Per-receiver stage-profiler handles (shard "rx<i>"), switched in
	// the sequential phase on dimming-level changes. Nil when the
	// profiler is unarmed; all adders no-op on nil.
	profTx, profHunt, profDecode *prof.Stage
	// spanBuf accumulates this shard's channel/hunt/decode spans for
	// one frame; the merge loop splices it in receiver order.
	spanBuf span.Buffer
	// logBuf accumulates this shard's log records for one frame, spliced
	// in receiver order like spanBuf so log snapshots stay byte-identical
	// for any worker count.
	logBuf vlog.Buffer
}

// bcRxProf is one receiver shard's stage-profiler handle set at one
// dimming level.
type bcRxProf struct{ tx, hunt, decode *prof.Stage }

// bcLevelProf is the broadcast loop's per-dimming-level profiler state:
// shared frame/mac handles, per-receiver shard handles, and the pre-built
// pprof label context for the level.
type bcLevelProf struct {
	frame, mac *prof.Stage
	rx         []bcRxProf
	symbols    int64 // modulation symbols per frame body at this level
	labels     context.Context
}

// Arena owns everything a session allocates — PHY link/receiver pairs,
// MAC sender/receiver/side-channel state, codec and prof-handle caches,
// span and slot buffers, broadcast receiver shards and their outboxes —
// so repeated sessions rent warm state instead of reallocating it.
// Results, telemetry, spans, health and prof snapshots are byte-identical
// to fresh-allocated runs for the same (config, duration).
//
// An Arena serves one session at a time and is not safe for concurrent
// use; fleets thread one arena per worker (see RunFleet). The zero value
// is ready to use.
type Arena struct {
	chanPCG, sidePCG, macPCG *rand.PCG
	chanRng, sideRng, macRng *rand.Rand

	sender *mac.Sender
	rxSide *mac.Receiver
	sideCh *mac.SideChannel
	vlcUp  *mac.VLCUplink
	sensor *hw.Filter
	rx     *phy.Receiver

	codecs    codecCache
	profCache map[float64]*profStages

	slotBuf     []bool
	vSlotLen    int // virtual slot-buffer high-water; drives the frame-stage alloc counter
	deliveredAt []float64
	rxSpanBuf   span.Buffer
	rxLogBuf    vlog.Buffer
	roots       *rootRing // lazily built: only span-armed sessions write it

	// Broadcast-session state, lazily built on the first broadcast rent.
	bcRxs    []*bcRxState
	acked    *ackRing
	complete *seqBits
	firstTx  *timeRing
	bcProf   map[float64]*bcLevelProf
}

// NewArena returns an empty arena. Allocation happens lazily as the
// first session rents components; every later session with compatible
// shapes reuses them.
func NewArena() *Arena { return &Arena{} }

// Run is sim.Run executing out of the arena: identical results and
// snapshots, with the session's working state rented from a instead of
// freshly allocated. See Run for the profiling-label behavior.
func (a *Arena) Run(cfg Config, duration float64) (Result, error) {
	if cfg.Prof == nil || cfg.Scheme == nil {
		return run(cfg, duration, a)
	}
	var res Result
	var err error
	parallel.Do(func() { res, err = run(cfg, duration, a) },
		"session", strconv.FormatUint(cfg.Seed, 10),
		"scheme", cfg.Scheme.Name())
	return res, err
}

// RunBroadcast is sim.RunBroadcast executing out of the arena.
func (a *Arena) RunBroadcast(cfg BroadcastConfig, duration float64) (BroadcastResult, error) {
	if cfg.Prof == nil || cfg.Scheme == nil {
		return runBroadcast(cfg, duration, a)
	}
	var res BroadcastResult
	var err error
	parallel.Do(func() { res, err = runBroadcast(cfg, duration, a) },
		"session", strconv.FormatUint(cfg.Seed, 10),
		"scheme", cfg.Scheme.Name())
	return res, err
}

// reseed rewinds the arena's three generator pairs onto the session's
// streams, creating them on first use. The salts match the fresh-run
// derivations exactly, so rented and fresh sessions consume identical
// randomness.
func (a *Arena) reseed(seed, chanSalt, sideSalt, macSalt uint64) {
	if a.chanPCG == nil {
		a.chanPCG = rand.NewPCG(seed, chanSalt)
		a.chanRng = rand.New(a.chanPCG)
		a.sidePCG = rand.NewPCG(seed, sideSalt)
		a.sideRng = rand.New(a.sidePCG)
		a.macPCG = rand.NewPCG(seed, macSalt)
		a.macRng = rand.New(a.macPCG)
		return
	}
	a.chanPCG.Seed(seed, chanSalt)
	a.sidePCG.Seed(seed, sideSalt)
	a.macPCG.Seed(seed, macSalt)
}

// rentSender resets the arena's ARQ sender for the session (building it
// on first use), on the arena's MAC stream.
func (a *Arena) rentSender(window, payloadBytes int, timeout float64) (*mac.Sender, error) {
	if a.sender == nil {
		s, err := mac.NewSender(window, payloadBytes, timeout, a.macRng)
		if err != nil {
			return nil, err
		}
		a.sender = s
		return s, nil
	}
	if err := a.sender.Reset(window, payloadBytes, timeout, a.macRng); err != nil {
		return nil, err
	}
	return a.sender, nil
}

// rentReceiverSide resets the arena's ARQ receiver for the session.
func (a *Arena) rentReceiverSide(payloadBytes int) *mac.Receiver {
	if a.rxSide == nil {
		a.rxSide = mac.NewReceiverSide(payloadBytes)
		return a.rxSide
	}
	a.rxSide.Reset(payloadBytes)
	return a.rxSide
}

// rentSideChannel resets the arena's Wi-Fi side channel on the arena's
// side stream.
func (a *Arena) rentSideChannel(latency, jitter, loss float64) *mac.SideChannel {
	if a.sideCh == nil {
		a.sideCh = mac.NewSideChannel(latency, jitter, loss, a.sideRng)
		return a.sideCh
	}
	a.sideCh.Reset(latency, jitter, loss, a.sideRng)
	return a.sideCh
}

// rentVLCUplink resets the arena's VLC return link.
func (a *Arena) rentVLCUplink(bitRate float64, messageBits int, rangeM, distanceM float64) *mac.VLCUplink {
	if a.vlcUp == nil {
		a.vlcUp = mac.NewVLCUplink(bitRate, messageBits, rangeM, distanceM)
		return a.vlcUp
	}
	a.vlcUp.Reset(bitRate, messageBits, rangeM, distanceM)
	return a.vlcUp
}

// rentSensor resets the arena's ambient-light filter.
func (a *Arena) rentSensor(pd hw.Photodiode) *hw.Filter {
	if a.sensor == nil {
		a.sensor = hw.NewFilter(pd)
		return a.sensor
	}
	a.sensor.Reset(pd)
	return a.sensor
}

// rentReceiver returns the arena's PHY receiver shell; the session's
// channel-rebuild path configures it via Reset, which also rewinds the
// virtual alloc counters so prof snapshots match a receiver-per-rebuild
// fresh run.
func (a *Arena) rentReceiver() *phy.Receiver {
	if a.rx == nil {
		a.rx = new(phy.Receiver)
	}
	return a.rx
}

// rentProfCache clears and returns the per-level stage-handle cache.
// Cleared per session (not reused across them) because the handles
// belong to the session's profiler and the label contexts embed its
// seed; the map's buckets survive, so steady-state sessions insert
// without allocating.
func (a *Arena) rentProfCache() map[float64]*profStages {
	if a.profCache == nil {
		a.profCache = make(map[float64]*profStages, 4)
	} else {
		clear(a.profCache)
	}
	return a.profCache
}

// rentBcProfCache is rentProfCache for the broadcast stage handles.
func (a *Arena) rentBcProfCache() map[float64]*bcLevelProf {
	if a.bcProf == nil {
		a.bcProf = make(map[float64]*bcLevelProf, 4)
	} else {
		clear(a.bcProf)
	}
	return a.bcProf
}

// rentBcReceivers resets the first n broadcast receiver shards for the
// session, growing the shard list on first use. Each shard's RNG is
// reseeded onto the stream parallel.PCG derives for its index, so shard
// i's draws are identical to a fresh run's.
func (a *Arena) rentBcReceivers(n int, seed uint64, payloadBytes int) []*bcRxState {
	for len(a.bcRxs) < n {
		a.bcRxs = append(a.bcRxs, &bcRxState{})
	}
	rxs := a.bcRxs[:n]
	for i, st := range rxs {
		if st.pcg == nil {
			st.pcg = parallel.PCG(seed, 0xBEEF00, i)
			st.rng = rand.New(st.pcg)
		} else {
			parallel.ReseedPCG(st.pcg, seed, 0xBEEF00, i)
		}
		if st.macRx == nil {
			st.macRx = mac.NewReceiverSide(payloadBytes)
		} else {
			st.macRx.Reset(payloadBytes)
		}
		if st.rx == nil {
			st.rx = new(phy.Receiver)
		}
		st.link = phy.Link{}
		st.lastLux = math.Inf(-1)
		st.remote, st.reported = 0, false
		st.sumAcc, st.sumN = 0, 0
		st.out.ackSeqs = st.out.ackSeqs[:0]
		st.out.newSeqs = st.out.newSeqs[:0]
		st.out.stats = phy.Stats{}
		st.out.ambient, st.out.hasAmbient = 0, false
		st.profTx, st.profHunt, st.profDecode = nil, nil, nil
		st.spanBuf.Reset()
		st.logBuf.Reset()
	}
	return rxs
}

// rentRoots returns the reset frame-root ring when spans are armed, and
// nil otherwise — rootRing.get is nil-safe and returns the zero span ID,
// exactly like the empty map unarmed sessions used to read.
func (a *Arena) rentRoots(armed bool) *rootRing {
	if !armed {
		return nil
	}
	if a.roots == nil {
		a.roots = new(rootRing)
	}
	a.roots.reset()
	return a.roots
}

// rentBcBookkeeping resets the broadcast loop's reliable-delivery
// structures: the per-seq receiver-ack sets, the completed-seq bitmap and
// the first-transmission time ring.
func (a *Arena) rentBcBookkeeping(nRx int) (*ackRing, *seqBits, *timeRing) {
	if a.acked == nil {
		a.acked = new(ackRing)
		a.complete = new(seqBits)
		a.firstTx = new(timeRing)
	}
	a.acked.reset(nRx)
	a.complete.resetAll()
	a.firstTx.reset()
	return a.acked, a.complete, a.firstTx
}

// frameAlloc applies the frame-stage scratch-growth rule: one virtual
// allocation whenever a frame's slot waveform exceeds the session's
// high-water length. The rule is a pure function of the (deterministic)
// waveform lengths, so warm and fresh sessions account identically —
// unlike the retained buffer's real reallocations, which warm sessions
// skip.
func (a *Arena) frameAlloc(slotLen int) bool {
	if slotLen > a.vSlotLen {
		a.vSlotLen = slotLen
		return true
	}
	return false
}

// FleetArenas is a concurrency-safe pool of session arenas for fleet
// runs: RunFleet rents one arena per worker per call, and a persistent
// FleetArenas keeps those arenas warm across calls — the steady-state
// regime of a long-lived session service, where per-session allocation
// approaches zero.
type FleetArenas struct {
	mu   sync.Mutex
	free []*Arena
}

// NewFleetArenas returns an empty arena pool.
func NewFleetArenas() *FleetArenas { return &FleetArenas{} }

// rent pops a warm arena or builds a fresh one.
func (f *FleetArenas) rent() *Arena {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n := len(f.free); n > 0 {
		a := f.free[n-1]
		f.free = f.free[:n-1]
		return a
	}
	return NewArena()
}

// release returns an arena to the pool.
func (f *FleetArenas) release(a *Arena) {
	f.mu.Lock()
	f.free = append(f.free, a)
	f.mu.Unlock()
}
