package sim

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"smartvlc/internal/telemetry"
	"smartvlc/internal/telemetry/prof"
)

// TestRunProfDeterministic: two armed runs of the same seed produce
// byte-identical stage profiles, and the profile covers every pipeline
// stage the session exercises.
func TestRunProfDeterministic(t *testing.T) {
	s := amppmScheme(t)
	run := func() []byte {
		cfg := DefaultConfig(s)
		cfg.FixedLevel = 0.5
		cfg.Prof = prof.New()
		res, err := Run(cfg, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if res.Prof == nil {
			t.Fatal("armed run returned no profile")
		}
		j, err := res.Prof.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("profiles diverge across identical runs:\n%s\nvs\n%s", a, b)
	}
	for _, stage := range []string{"sim.frame", "phy.tx", "phy.hunt", "phy.decode", "mac.frame"} {
		if !strings.Contains(string(a), `"stage": "`+stage+`"`) {
			t.Fatalf("profile missing stage %q:\n%s", stage, a)
		}
	}
	// Stage totals must also ride the telemetry registry as prof_*_total
	// counters so telemetry.Merge carries them fleet-wide.
	cfg := DefaultConfig(s)
	cfg.FixedLevel = 0.5
	cfg.Prof = prof.New()
	cfg.Telemetry = telemetry.New()
	res, err := Run(cfg, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	tj, err := res.Telemetry.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tj), "prof_slots_total") {
		t.Fatalf("telemetry snapshot missing mirrored prof counters:\n%s", tj)
	}
}

// TestRunExemplarsRecorded: an instrumented run attaches deterministic
// exemplars to the airtime and ACK-latency histograms, and repeat runs
// produce byte-identical snapshots including those exemplars.
func TestRunExemplarsRecorded(t *testing.T) {
	run := func(t *testing.T) []byte {
		cfg := DefaultConfig(amppmScheme(t))
		cfg.FixedLevel = 0.5
		cfg.Telemetry = telemetry.New()
		res, err := Run(cfg, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		j, err := res.Telemetry.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	a, b := run(t), run(t)
	if !bytes.Equal(a, b) {
		t.Fatal("telemetry with exemplars diverges across identical runs")
	}
	if !strings.Contains(string(a), `"exemplars"`) {
		t.Fatalf("snapshot carries no exemplars:\n%s", a)
	}
}

// TestBroadcastProfWorkerInvariance: the per-receiver fan-out records
// stage costs from concurrent goroutines, yet the profile and the
// exemplar-bearing telemetry snapshot must stay byte-identical for every
// worker count, at GOMAXPROCS 1 and 4 alike. Receiver-side stages carry
// "rx<i>" shards.
func TestBroadcastProfWorkerInvariance(t *testing.T) {
	s := amppmScheme(t)
	run := func(workers int) (profJSON, telJSON []byte) {
		cfg := BroadcastConfig{Config: DefaultConfig(s), Workers: workers}
		cfg.FixedLevel = 0.5
		cfg.Prof = prof.New()
		cfg.Telemetry = telemetry.New()
		base := cfg.Geometry
		cfg.Receivers = []ReceiverPose{
			{Geometry: base},
			{Geometry: base, AmbientScale: 1.3},
			{Geometry: base, AmbientScale: 0.8},
		}
		res, err := RunBroadcast(cfg, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if res.Prof == nil {
			t.Fatal("armed broadcast returned no profile")
		}
		pj, err := res.Prof.JSON()
		if err != nil {
			t.Fatal(err)
		}
		tj, err := res.Telemetry.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return pj, tj
	}
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		refProf, refTel := run(1)
		for _, workers := range []int{3, -1} {
			gotProf, gotTel := run(workers)
			if !bytes.Equal(refProf, gotProf) {
				t.Fatalf("GOMAXPROCS=%d workers=%d: profile diverges:\n--- serial ---\n%s\n--- parallel ---\n%s",
					procs, workers, refProf, gotProf)
			}
			if !bytes.Equal(refTel, gotTel) {
				t.Fatalf("GOMAXPROCS=%d workers=%d: telemetry diverges", procs, workers)
			}
		}
		runtime.GOMAXPROCS(prev)
		for _, shard := range []string{"rx0", "rx1", "rx2"} {
			if !strings.Contains(string(refProf), `"shard": "`+shard+`"`) {
				t.Fatalf("profile missing receiver shard %q:\n%s", shard, refProf)
			}
		}
	}
}

// benchSession is the nil/armed benchmark pair behind phybench's
// session_frames / end_to_end_frame_prof twins, kept here so the
// profiler's hot-path price can be measured with plain `go test -bench`.
func benchSession(b *testing.B, armed bool) {
	s := amppmScheme(b)
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(s)
		cfg.FixedLevel = 0.5
		cfg.Seed = uint64(i + 1)
		if armed {
			cfg.Prof = prof.New()
		}
		res, err := Run(cfg, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		if res.FramesOK == 0 {
			b.Fatal("no frames delivered")
		}
	}
}

func BenchmarkSessionFrames(b *testing.B)     { benchSession(b, false) }
func BenchmarkSessionFramesProf(b *testing.B) { benchSession(b, true) }

// TestFleetProfMerge: per-session profilers merge in config order into
// FleetResult.Prof, and a profiler shared between configs is rejected
// like a shared registry.
func TestFleetProfMerge(t *testing.T) {
	cfgs := fleetConfigs(t, 3)
	for i := range cfgs {
		cfgs[i].Prof = prof.New()
	}
	fl, err := RunFleet(cfgs, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Prof == nil {
		t.Fatal("fleet with armed sessions produced no merged profile")
	}
	var total int64
	for _, r := range fl.Results {
		if r.Prof == nil {
			t.Fatal("armed session lost its profile")
		}
		for _, s := range r.Prof.Series {
			total += s.Counts.Ops
		}
	}
	var merged int64
	for _, s := range fl.Prof.Series {
		merged += s.Counts.Ops
	}
	if total == 0 || merged != total {
		t.Fatalf("merged ops %d != sum of per-session ops %d", merged, total)
	}

	cfgs = fleetConfigs(t, 2)
	shared := prof.New()
	cfgs[0].Prof, cfgs[1].Prof = shared, shared
	if _, err := RunFleet(cfgs, 0.3, 1); err == nil {
		t.Fatal("shared profiler accepted")
	}
}
