//go:build race

package sim

// raceEnabled reports whether the race detector instruments this build;
// allocation-count pins skip under it (instrumentation allocates).
const raceEnabled = true
