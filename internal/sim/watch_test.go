package sim

import (
	"bytes"
	"runtime"
	"testing"

	"smartvlc/internal/telemetry/agg"
)

// watchFleet builds n instrumented sessions wired into a fresh streaming
// aggregator with the given window, returning the configs and the
// aggregator they feed.
func watchFleet(t *testing.T, n int, window float64) ([]Config, *agg.Aggregator) {
	t.Helper()
	cfgs := fleetConfigs(t, n)
	a, err := agg.New(agg.Config{WindowSeconds: window, Factor: 2, K: 4}, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		f, err := a.Feed(agg.SessionMeta{
			Index:        i,
			Seed:         cfgs[i].Seed,
			Scheme:       cfgs[i].Scheme.Name(),
			PayloadBytes: cfgs[i].PayloadBytes,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfgs[i].Watch = f
	}
	return cfgs, a
}

// TestFleetWatchWorkerInvariant is the tentpole acceptance criterion:
// the live aggregate and top-K snapshot must be byte-identical across
// GOMAXPROCS {1,4} × workers {1,3,-1}, including warm (dirtied-arena)
// repeat runs.
func TestFleetWatchWorkerInvariant(t *testing.T) {
	arenas := NewFleetArenas()
	run := func(workers int) []byte {
		cfgs, _ := watchFleet(t, 5, 0.05)
		fl, err := RunFleetArenas(arenas, cfgs, 0.3, workers)
		if err != nil {
			t.Fatal(err)
		}
		if fl.Agg == nil {
			t.Fatal("fleet carried watch feeds but Agg snapshot is nil")
		}
		b, err := fl.Agg.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	// First run dirties the arenas so every compared run is warm.
	ref := run(1)
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		for _, workers := range []int{1, 3, -1} {
			if got := run(workers); !bytes.Equal(ref, got) {
				t.Fatalf("GOMAXPROCS=%d workers=%d: agg snapshot diverges:\n--- ref ---\n%s\n--- got ---\n%s",
					procs, workers, ref, got)
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestFleetWatchSnapshotContents sanity-checks the live view reflects
// the run: sealed windows cover the duration, every session contributed,
// and the top tables are populated and ranked.
func TestFleetWatchSnapshotContents(t *testing.T) {
	cfgs, a := watchFleet(t, 3, 0.05)
	fl, err := RunFleet(cfgs, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := fl.Agg
	if s.Sessions != 3 || s.Done != 3 {
		t.Fatalf("sessions %d done %d, want 3/3", s.Sessions, s.Done)
	}
	if s.SealedWindows < 5 {
		t.Fatalf("only %d sealed windows over a 0.3 s run with 0.05 s windows", s.SealedWindows)
	}
	var framesTx int64
	for _, p := range s.Series[0].Points {
		framesTx += p.FramesTx
	}
	var fleetTx int64
	for _, r := range fl.Results {
		fleetTx += int64(r.FramesSent)
	}
	if framesTx != fleetTx {
		t.Fatalf("aggregated frames_tx %d != fleet total %d", framesTx, fleetTx)
	}
	if len(s.TopSER) == 0 || len(s.TopBurn) == 0 {
		t.Fatalf("worst-sessions tables empty: ser=%d burn=%d", len(s.TopSER), len(s.TopBurn))
	}
	for i := 1; i < len(s.TopSER); i++ {
		a, b := s.TopSER[i-1], s.TopSER[i]
		if a.SER < b.SER || (a.SER == b.SER && a.Session > b.Session) {
			t.Fatalf("top-SER not ranked worst-first: %+v before %+v", a, b)
		}
	}
	// The final live snapshot matches the FleetResult one byte for byte.
	live, err := a.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, final) {
		t.Fatal("post-run live snapshot differs from FleetResult.Agg")
	}
}

// TestWatchValidation covers the wiring error paths: Watch without
// Telemetry, a shared feed, and feeds from different aggregators.
func TestWatchValidation(t *testing.T) {
	cfgs, _ := watchFleet(t, 2, 0.05)
	cfgs[0].Telemetry = nil
	if _, err := RunFleet(cfgs, 0.1, 1); err == nil {
		t.Fatal("Watch without Telemetry accepted")
	}

	cfgs, _ = watchFleet(t, 2, 0.05)
	cfgs[1].Watch = cfgs[0].Watch
	if _, err := RunFleet(cfgs, 0.1, 1); err == nil {
		t.Fatal("shared watch feed accepted")
	}

	cfgs, _ = watchFleet(t, 2, 0.05)
	other, _ := watchFleet(t, 2, 0.05)
	cfgs[1].Watch = other[1].Watch
	if _, err := RunFleet(cfgs, 0.1, 1); err == nil {
		t.Fatal("feeds from different aggregators accepted")
	}

	// A single watched session through the serial Run path works too.
	cfgs, _ = watchFleet(t, 1, 0.05)
	res, err := Run(cfgs[0], 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil {
		t.Fatal("watched session lost its telemetry snapshot")
	}
}

// TestWatchDoesNotPerturbSession pins that arming Watch changes nothing
// about the session physics or its telemetry snapshot.
func TestWatchDoesNotPerturbSession(t *testing.T) {
	plain := fleetConfigs(t, 1)[0]
	want, err := Run(plain, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	watched, _ := watchFleet(t, 1, 0.05)
	got, err := Run(watched[0], 0.3)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := want.Telemetry.JSON()
	b, _ := got.Telemetry.JSON()
	if !bytes.Equal(a, b) {
		t.Fatal("arming Watch changed the session telemetry snapshot")
	}
	if want.GoodputBps != got.GoodputBps || want.FramesSent != got.FramesSent {
		t.Fatalf("arming Watch changed session results: %+v vs %+v", got, want)
	}
}
