package sim

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"smartvlc/internal/telemetry"
)

// fleetConfigs builds n independent instrumented sessions with distinct
// seeds. Fresh registries every call: registries are stateful, so each
// fleet run needs its own.
func fleetConfigs(t *testing.T, n int) []Config {
	t.Helper()
	s := amppmScheme(t)
	cfgs := make([]Config, n)
	for i := range cfgs {
		cfg := DefaultConfig(s)
		cfg.FixedLevel = 0.5
		cfg.Seed = uint64(i + 1)
		cfg.Telemetry = telemetry.New()
		cfgs[i] = cfg
	}
	return cfgs
}

// TestRunFleetWorkerInvariant is the ISSUE's key invariant: every
// per-session result and the merged telemetry snapshot must be
// byte-identical between workers=1 and workers=NumCPU, at GOMAXPROCS 1
// and 4 alike.
func TestRunFleetWorkerInvariant(t *testing.T) {
	type capture struct {
		results []Result
		session [][]byte
		merged  []byte
	}
	run := func(workers int) capture {
		fl, err := RunFleet(fleetConfigs(t, 5), 0.3, workers)
		if err != nil {
			t.Fatal(err)
		}
		c := capture{results: fl.Results}
		for i := range fl.Results {
			j, err := fl.Results[i].Telemetry.JSON()
			if err != nil {
				t.Fatal(err)
			}
			c.session = append(c.session, j)
			// Telemetry pointers differ per run; compare them as JSON and
			// the rest of the Result structurally.
			c.results[i].Telemetry = nil
		}
		c.merged, err = fl.Telemetry.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		ref := run(1)
		for _, workers := range []int{2, runtime.NumCPU()} {
			got := run(workers)
			if !reflect.DeepEqual(ref.results, got.results) {
				t.Fatalf("GOMAXPROCS=%d workers=%d: results diverge from serial", procs, workers)
			}
			for i := range ref.session {
				if !bytes.Equal(ref.session[i], got.session[i]) {
					t.Fatalf("GOMAXPROCS=%d workers=%d: session %d snapshot diverges", procs, workers, i)
				}
			}
			if !bytes.Equal(ref.merged, got.merged) {
				t.Fatalf("GOMAXPROCS=%d workers=%d: merged snapshot diverges:\n--- serial ---\n%s\n--- parallel ---\n%s",
					procs, workers, ref.merged, got.merged)
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestRunFleetMatchesSerialRun pins each fleet slot to a standalone Run
// of the same config — the fleet adds scheduling, never physics.
func TestRunFleetMatchesSerialRun(t *testing.T) {
	cfgs := fleetConfigs(t, 3)
	fl, err := RunFleet(cfgs, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	solo := fleetConfigs(t, 3)
	for i := range solo {
		want, err := Run(solo[i], 0.3)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := want.Telemetry.JSON()
		b, _ := fl.Results[i].Telemetry.JSON()
		if !bytes.Equal(a, b) {
			t.Fatalf("session %d: fleet snapshot differs from standalone Run", i)
		}
		want.Telemetry, fl.Results[i].Telemetry = nil, nil
		if !reflect.DeepEqual(want, fl.Results[i]) {
			t.Fatalf("session %d: fleet result %+v differs from standalone %+v", i, fl.Results[i], want)
		}
	}
	if fl.Telemetry == nil {
		t.Fatal("merged telemetry missing despite per-session registries")
	}
}

// TestRunFleetValidation covers the error paths: empty fleet, shared
// registry, and a session config error surfacing as the fleet error.
func TestRunFleetValidation(t *testing.T) {
	if _, err := RunFleet(nil, 0.3, 1); err == nil {
		t.Fatal("empty fleet accepted")
	}
	cfgs := fleetConfigs(t, 2)
	cfgs[1].Telemetry = cfgs[0].Telemetry
	if _, err := RunFleet(cfgs, 0.3, 1); err == nil {
		t.Fatal("shared registry accepted")
	}
	cfgs = fleetConfigs(t, 2)
	cfgs[1].PayloadBytes = 0
	if _, err := RunFleet(cfgs, 0.3, 2); err == nil {
		t.Fatal("invalid session config accepted")
	}
}

// TestRunBroadcastWorkersInvariant: the parallel per-receiver fan-out
// must be invisible in the output — results and telemetry byte-identical
// for Workers 1, 4, and GOMAXPROCS (-1), across GOMAXPROCS settings.
func TestRunBroadcastWorkersInvariant(t *testing.T) {
	s := amppmScheme(t)
	run := func(workers int) (BroadcastResult, []byte) {
		cfg := BroadcastConfig{Config: DefaultConfig(s), Workers: workers}
		cfg.FixedLevel = 0.5
		cfg.Telemetry = telemetry.New()
		base := cfg.Geometry
		cfg.Receivers = []ReceiverPose{
			{Geometry: base},
			{Geometry: base, AmbientScale: 1.4},
			{Geometry: base, AmbientScale: 0.7},
			{Geometry: base, AmbientScale: 1.1},
		}
		res, err := RunBroadcast(cfg, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		j, err := res.Telemetry.JSON()
		if err != nil {
			t.Fatal(err)
		}
		res.Telemetry = nil
		return res, j
	}
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		refRes, refSnap := run(1)
		for _, workers := range []int{4, -1} {
			gotRes, gotSnap := run(workers)
			if !reflect.DeepEqual(refRes, gotRes) {
				t.Fatalf("GOMAXPROCS=%d workers=%d: broadcast result diverges: %+v vs %+v",
					procs, workers, gotRes, refRes)
			}
			if !bytes.Equal(refSnap, gotSnap) {
				t.Fatalf("GOMAXPROCS=%d workers=%d: broadcast telemetry diverges", procs, workers)
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}
