package sim

import (
	"math"
	"testing"

	"smartvlc/internal/amppm"
	"smartvlc/internal/light"
	"smartvlc/internal/optics"
	"smartvlc/internal/scheme"
	"smartvlc/internal/stats"
)

func amppmScheme(t testing.TB) scheme.Scheme {
	t.Helper()
	s, err := scheme.NewAMPPM(amppm.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunValidation(t *testing.T) {
	s := amppmScheme(t)
	if _, err := Run(Config{}, 1); err == nil {
		t.Fatal("nil scheme accepted")
	}
	cfg := DefaultConfig(s)
	if _, err := Run(cfg, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
	cfg.PayloadBytes = 0
	if _, err := Run(cfg, 1); err == nil {
		t.Fatal("zero payload accepted")
	}
	cfg = DefaultConfig(s)
	cfg.Geometry = optics.Geometry{}
	if _, err := Run(cfg, 1); err == nil {
		t.Fatal("bad geometry accepted")
	}
}

func TestStaticThroughputNearTheory(t *testing.T) {
	// At 3 m / l=0.5 the link is clean; goodput must land near the
	// analytic expectation (envelope rate × slot rate × frame efficiency):
	// roughly 100-115 kbps for AMPPM.
	s := amppmScheme(t)
	cfg := DefaultConfig(s)
	cfg.FixedLevel = 0.5
	res, err := Run(cfg, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if res.GoodputBps < 90e3 || res.GoodputBps > 120e3 {
		t.Fatalf("goodput %v bps, expected ≈107 kbps", res.GoodputBps)
	}
	if res.FramesOK == 0 || res.FramesBad > res.FramesOK/4 {
		t.Fatalf("frames ok=%d bad=%d", res.FramesOK, res.FramesBad)
	}
}

func TestStaticThroughputLowDimming(t *testing.T) {
	// At l=0.1 AMPPM should deliver ≈40 kbps (see DESIGN.md §6 — the
	// paper's 55.6 kbps neglects some frame overhead; shape is what
	// matters: far above OOK-CT's ≈22 kbps).
	s := amppmScheme(t)
	cfg := DefaultConfig(s)
	cfg.FixedLevel = 0.1
	res, err := Run(cfg, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.GoodputBps < 30e3 || res.GoodputBps > 60e3 {
		t.Fatalf("goodput %v", res.GoodputBps)
	}

	o := scheme.NewOOKCT()
	cfgO := DefaultConfig(o)
	cfgO.FixedLevel = 0.1
	resO, err := Run(cfgO, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if resO.GoodputBps > res.GoodputBps*0.75 {
		t.Fatalf("OOK-CT %v vs AMPPM %v: AMPPM should win big at l=0.1", resO.GoodputBps, res.GoodputBps)
	}
}

func TestThroughputCollapsesBeyondRange(t *testing.T) {
	s := amppmScheme(t)
	cfg := DefaultConfig(s)
	cfg.Geometry = optics.Aligned(4.8, 0)
	cfg.AmbientLux = 9000
	res, err := Run(cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.GoodputBps > 5e3 {
		t.Fatalf("goodput %v at 4.8 m, expected collapse", res.GoodputBps)
	}
}

func TestDynamicAdaptationHoldsSum(t *testing.T) {
	s := amppmScheme(t)
	cfg := DefaultConfig(s)
	cfg.Trace = light.BlindPull{StartLux: 50, EndLux: 450, Duration: 10}
	cfg.FullLEDLux = 500
	cfg.TargetSum = 1.0
	res, err := Run(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	// After the initial settle, ambient+LED stays near the target. This
	// test ramps the full brightness range in 10 s — 6.7× faster than the
	// paper's blind pull — so the closed loop (receiver ambient estimate →
	// Wi-Fi report → smoothing → stepper) shows its ~0.5 s tracking lag;
	// at the paper's pace the error stays within ±0.02 (experiments test).
	vals := res.Sum.Values()
	if len(vals) < 10 {
		t.Fatalf("sum series too short: %d", len(vals))
	}
	for i, v := range vals {
		if i < 2 {
			continue
		}
		if math.Abs(v-1.0) > 0.07 {
			t.Fatalf("sum at sample %d = %v", i, v)
		}
	}
	// The LED must have moved from ~0.9 to ~0.1 through many small steps.
	if res.Adjustments < 100 {
		t.Fatalf("adjustments %d, expected hundreds", res.Adjustments)
	}
	led := res.LED.Values()
	if led[0] < 0.8 || led[len(led)-1] > 0.2 {
		t.Fatalf("LED did not track ambient: start %v end %v", led[0], led[len(led)-1])
	}
	// Throughput stayed nonzero throughout.
	if res.GoodputBps < 20e3 {
		t.Fatalf("dynamic goodput %v", res.GoodputBps)
	}
}

func TestPerceivedStepperHalvesAdjustments(t *testing.T) {
	// The Fig. 19(c) comparison at system level: same trace, two steppers.
	s := amppmScheme(t)
	base := DefaultConfig(s)
	base.Trace = light.BlindPull{StartLux: 50, EndLux: 450, Duration: 8}
	base.FullLEDLux = 500

	perceived := base
	perceived.Stepper = light.PerceivedStepper{TauP: light.DefaultTauP}
	measured := base
	measured.Stepper = light.SafeMeasuredStepper(light.DefaultTauP, 0.1)

	rp, err := Run(perceived, 8)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Run(measured, 8)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(rp.Adjustments) / float64(rm.Adjustments)
	if ratio < 0.35 || ratio > 0.65 {
		t.Fatalf("adjustment ratio %v (perceived %d, measured %d), paper ≈ 0.5",
			ratio, rp.Adjustments, rm.Adjustments)
	}
}

func TestThroughputSeriesBinning(t *testing.T) {
	s := throughputSeries([]float64{0.1, 0.2, 1.5, 2.9, 2.95}, 100, 3)
	if len(s.Points) != 3 {
		t.Fatalf("bins %d", len(s.Points))
	}
	if s.Points[0].V != 1600 || s.Points[1].V != 800 || s.Points[2].V != 1600 {
		t.Fatalf("bins %+v", s.Points)
	}
	empty := throughputSeries(nil, 100, 0)
	if len(empty.Points) != 0 {
		t.Fatal("empty duration should have no bins")
	}
	_ = stats.Series{}
}
