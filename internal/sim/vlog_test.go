package sim

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"smartvlc/internal/light"
	"smartvlc/internal/optics"
	"smartvlc/internal/telemetry/flight"
	"smartvlc/internal/telemetry/vlog"
)

// logNDJSON renders a result's log snapshot as canonical NDJSON — the
// byte stream the determinism contract pins.
func logNDJSON(t testing.TB, snap *vlog.Snapshot) []byte {
	t.Helper()
	if snap == nil {
		t.Fatal("instrumented run returned no log snapshot")
	}
	b, err := snap.NDJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunLogByteIdentical extends the arena byte-identity contract to the
// structured log: sessions rented from a warm arena produce log snapshots
// byte-identical to fresh-allocated runs, including after the arena has
// been dirtied by sessions of different shapes (whose own log records —
// arena growth included — must not leak into the next session).
func TestRunLogByteIdentical(t *testing.T) {
	mkCfg := func(seed uint64) Config {
		cfg := arenaSessionConfig(t, seed)
		cfg.Logs = vlog.New(vlog.Debug)
		return cfg
	}
	run, err := Run(mkCfg(7), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	ref := logNDJSON(t, run.Logs)
	if !bytes.Contains(ref, []byte(`"stage":"sim/session"`)) {
		t.Fatalf("log snapshot carries no session records:\n%s", ref)
	}
	if !bytes.Contains(ref, []byte(`"stage":"phy/`)) {
		t.Fatalf("log snapshot carries no phy records:\n%s", ref)
	}

	a := NewArena()
	check := func(round string) {
		got, err := a.Run(mkCfg(7), 0.4)
		if err != nil {
			t.Fatal(err)
		}
		if g := logNDJSON(t, got.Logs); !bytes.Equal(ref, g) {
			t.Fatalf("%s: log snapshot diverges from fresh run:\n--- fresh ---\n%s--- arena ---\n%s", round, ref, g)
		}
	}
	check("cold arena")
	check("warm arena")

	dirty := mkCfg(99)
	dirty.PayloadBytes = 64
	dirty.Window = 4
	dirty.FixedLevel = 0.3
	dirty.Trace = nil
	if _, err := a.Run(dirty, 0.2); err != nil {
		t.Fatal(err)
	}
	check("dirtied arena")
}

// TestBroadcastLogWorkerInvariance pins the tentpole acceptance matrix:
// broadcast log snapshots are byte-identical across GOMAXPROCS {1, 4} ×
// Workers {1, 3, -1}, arena-warm runs included. Per-receiver records are
// buffered in shard buffers and spliced in receiver order during the
// sequential merge, so the parallel fan-out must be invisible in the
// NDJSON bytes.
func TestBroadcastLogWorkerInvariance(t *testing.T) {
	mkCfg := func() BroadcastConfig {
		cfg := broadcastConfig(t,
			ReceiverPose{Geometry: optics.Aligned(1.5, 0)},
			ReceiverPose{Geometry: optics.Aligned(3.0, 3)},
			ReceiverPose{Geometry: optics.Aligned(3.3, 5)},
		)
		cfg.Trace = light.BlindPull{StartLux: 100, EndLux: 400, Duration: 0.3}
		cfg.Health = stepHealthConfig()
		cfg.Logs = vlog.New(vlog.Debug)
		return cfg
	}
	run, err := RunBroadcast(mkCfg(), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	ref := logNDJSON(t, run.Logs)
	for _, shard := range []string{"rx0", "rx1", "rx2"} {
		if !bytes.Contains(ref, []byte(`"shard":"`+shard+`"`)) {
			t.Fatalf("broadcast log carries no %s shard records:\n%s", shard, ref)
		}
	}

	a := NewArena()
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		for _, workers := range []int{1, 3, -1} {
			cfg := mkCfg()
			cfg.Workers = workers
			got, err := a.RunBroadcast(cfg, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			if g := logNDJSON(t, got.Logs); !bytes.Equal(ref, g) {
				t.Fatalf("GOMAXPROCS=%d workers=%d: log snapshot diverges from fresh run", procs, workers)
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestFleetLogMergeAndSharedLoggerRejected covers the fleet contract:
// configs sharing one logger are rejected up front (a shared ring would
// interleave sessions non-deterministically), and distinct loggers merge
// into a config-ordered fleet snapshot whose session records keep their
// per-session seeds in order.
func TestFleetLogMergeAndSharedLoggerRejected(t *testing.T) {
	cfgs := fleetConfigs(t, 2)
	shared := vlog.New(vlog.Info)
	cfgs[0].Logs, cfgs[1].Logs = shared, shared
	if _, err := RunFleet(cfgs, 0.3, 1); err == nil {
		t.Fatal("shared logger accepted")
	} else if !strings.Contains(err.Error(), "share a structured logger") {
		t.Fatalf("shared-logger error %q lacks the diagnostic", err)
	}

	cfgs = fleetConfigs(t, 3)
	for i := range cfgs {
		cfgs[i].Logs = vlog.New(vlog.Info)
	}
	fl, err := RunFleet(cfgs, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Logs == nil {
		t.Fatal("fleet with per-session loggers produced no merged log snapshot")
	}
	var seeds []string
	for _, r := range fl.Logs.Records {
		if r.Stage == "sim/session" && r.Msg == "session start" {
			if a, ok := r.Attr("seed"); ok {
				seeds = append(seeds, a)
			}
		}
	}
	if want := []string{"1", "2", "3"}; !equalStrings(seeds, want) {
		t.Fatalf("merged session-start seeds %v, want %v (config order)", seeds, want)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFlightBundleLogTailIntact replays the SLO-escalation scenario with
// the structured log armed and asserts the triggered bundle ships a log
// tail whose final record is the sim/flight trigger record — the record
// is logged before the snapshot is taken, so the tail always ends with
// the line explaining why the bundle exists.
func TestFlightBundleLogTailIntact(t *testing.T) {
	rec, err := flight.New(flight.Config{Dir: t.TempDir(), MaxBundles: 256, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(amppmScheme(t))
	cfg.Geometry = optics.Aligned(4.0, 0)
	cfg.Trace = light.Steps{Levels: []float64{400, 6000, 12000}, StepSeconds: 0.6}
	cfg.Flight = rec
	cfg.Health = stepHealthConfig()
	cfg.Logs = vlog.New(vlog.Debug)
	if _, err := Run(cfg, 1.8); err != nil {
		t.Fatal(err)
	}
	if len(rec.Bundles()) == 0 {
		t.Fatal("scenario triggered no flight bundle")
	}
	for _, bdir := range rec.Bundles() {
		b, err := flight.ReadBundle(bdir)
		if err != nil {
			t.Fatal(err)
		}
		if b.Logs == nil || len(b.Logs.Records) == 0 {
			t.Fatalf("bundle %s shipped no log tail", bdir)
		}
		if n := len(b.Logs.Records); n > flight.DefaultLogTail {
			t.Fatalf("bundle %s log tail has %d records, cap %d", bdir, n, flight.DefaultLogTail)
		}
		last := b.Logs.Records[len(b.Logs.Records)-1]
		if last.Stage != "sim/flight" {
			t.Fatalf("bundle %s log tail ends with %q/%q, want the sim/flight trigger record",
				bdir, last.Stage, last.Msg)
		}
		if !strings.Contains(last.Msg, "flight bundle triggered") {
			t.Fatalf("bundle %s trigger record message %q", bdir, last.Msg)
		}
	}
}
