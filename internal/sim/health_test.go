package sim

import (
	"bytes"
	"runtime"
	"strconv"
	"testing"

	"smartvlc/internal/light"
	"smartvlc/internal/optics"
	"smartvlc/internal/telemetry/flight"
	"smartvlc/internal/telemetry/health"
)

// stepHealthConfig is the health configuration the ambient-step scenarios
// run under: 40 ms buckets and short burn windows so a 1.8 s session sees
// many evaluations, with a single frame-loss objective whose warning line
// (10% loss) sits under the moderate-ambient regime and whose critical
// line (80% loss) only the severe regime crosses.
func stepHealthConfig() *health.Config {
	return &health.Config{
		BucketSlots: 5000,
		Levels:      2,
		Factor:      5,
		Objectives: []health.Objective{{
			Name: "loss", Metric: health.MetricFrameLoss, Kind: health.UpperBound,
			Target: 0.1, FastWindow: 3, SlowWindow: 6, WarnBurn: 1, CritBurn: 8,
		}},
	}
}

// TestHealthAmbientStepEscalatesAndArmsFlight pins the tentpole acceptance
// scenario: an ambient-light staircase (dim room → sunny → sunny with the
// blind up) at 4 m degrades the link from clean through moderate loss to
// near-total loss, the SLO engine walks ok → warning → critical, and the
// critical transition ships a flight-recorder bundle tagged with the
// breached objective.
func TestHealthAmbientStepEscalatesAndArmsFlight(t *testing.T) {
	rec, err := flight.New(flight.Config{Dir: t.TempDir(), MaxBundles: 256, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(amppmScheme(t))
	cfg.Geometry = optics.Aligned(4.0, 0)
	cfg.Trace = light.Steps{Levels: []float64{400, 6000, 12000}, StepSeconds: 0.6}
	cfg.Flight = rec
	cfg.Health = stepHealthConfig()
	res, err := Run(cfg, 1.8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Health == nil {
		t.Fatal("no health snapshot")
	}
	if res.Health.State != health.StateCritical {
		t.Fatalf("final state %v, want critical", res.Health.State)
	}
	trs := res.Health.Transitions
	if len(trs) < 2 {
		t.Fatalf("transitions: %d, want ≥ 2", len(trs))
	}
	if trs[0].From != health.StateOK || trs[0].To != health.StateWarning {
		t.Fatalf("first transition %v -> %v, want ok -> warning", trs[0].From, trs[0].To)
	}
	sawCritical := false
	for i, tr := range trs {
		if tr.Objective != "loss" {
			t.Fatalf("transition %d objective %q", i, tr.Objective)
		}
		if i > 0 && tr.At <= trs[i-1].At {
			t.Fatalf("transition times not increasing: %v after %v", tr.At, trs[i-1].At)
		}
		if tr.To == health.StateCritical {
			sawCritical = true
			if tr.From != health.StateWarning {
				t.Fatalf("critical reached from %v, want warning", tr.From)
			}
		}
	}
	if !sawCritical {
		t.Fatal("never went critical")
	}

	sawSLO := false
	for _, bdir := range rec.Bundles() {
		b, err := flight.ReadBundle(bdir)
		if err != nil {
			t.Fatal(err)
		}
		if b.Meta.Reason == "slo_loss" {
			sawSLO = true
			if len(b.Captures) == 0 {
				t.Fatalf("SLO bundle %s carries no captures", bdir)
			}
		}
	}
	if !sawSLO {
		t.Fatal("critical SLO transition shipped no flight bundle")
	}
}

// TestHealthDefaultObjectivesHealthyBaseline: the paper's evaluation
// operating point under the default SLO set never leaves ok — the
// objectives' targets are calibrated so a healthy link does not alert.
func TestHealthDefaultObjectivesHealthyBaseline(t *testing.T) {
	cfg := DefaultConfig(amppmScheme(t))
	cfg.Health = &health.Config{Objectives: health.DefaultObjectives()}
	res, err := Run(cfg, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Health == nil {
		t.Fatal("no health snapshot")
	}
	if res.Health.State != health.StateOK {
		t.Fatalf("healthy baseline state %v, transitions %+v", res.Health.State, res.Health.Transitions)
	}
	if len(res.Health.Transitions) != 0 {
		t.Fatalf("healthy baseline alerted: %+v", res.Health.Transitions)
	}
	// The finest series carries real traffic.
	if len(res.Health.Series) == 0 || len(res.Health.Series[0].Points) == 0 {
		t.Fatal("empty health series")
	}
	var tx int64
	for _, p := range res.Health.Series[0].Points {
		tx += p.FramesTx
	}
	if tx == 0 {
		t.Fatal("health series saw no transmissions")
	}
}

// TestHealthRunDeterminism: two identical sessions produce byte-identical
// health snapshots.
func TestHealthRunDeterminism(t *testing.T) {
	run := func() []byte {
		cfg := DefaultConfig(amppmScheme(t))
		cfg.Geometry = optics.Aligned(4.0, 0)
		cfg.Trace = light.Steps{Levels: []float64{400, 6000, 12000}, StepSeconds: 0.3}
		cfg.Health = stepHealthConfig()
		res, err := Run(cfg, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		b, err := res.Health.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("identical sessions produced different health snapshots")
	}
}

// TestFleetHealthWorkerInvariance: the merged fleet health snapshot (and
// every per-session snapshot) is byte-identical for workers=1 and
// workers=NumCPU. The sessions deliberately share one *health.Config to
// pin that Run copies it rather than mutating shared state.
func TestFleetHealthWorkerInvariance(t *testing.T) {
	shared := stepHealthConfig()
	mkCfgs := func() []Config {
		cfgs := make([]Config, 4)
		for i := range cfgs {
			cfgs[i] = DefaultConfig(amppmScheme(t))
			cfgs[i].Seed = uint64(100 + i)
			cfgs[i].Geometry = optics.Aligned(3.5+0.2*float64(i), 0)
			cfgs[i].AmbientLux = 8000
			cfgs[i].Health = shared
		}
		return cfgs
	}
	serial, err := RunFleet(mkCfgs(), 0.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFleet(mkCfgs(), 0.4, runtime.NumCPU())
	if err != nil {
		t.Fatal(err)
	}
	if serial.Health == nil || par.Health == nil {
		t.Fatal("fleet health missing")
	}
	if serial.Health.Sessions != 4 {
		t.Fatalf("merged sessions %d", serial.Health.Sessions)
	}
	sj, err := serial.Health.JSON()
	if err != nil {
		t.Fatal(err)
	}
	pj, err := par.Health.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Fatal("fleet health differs across worker counts")
	}
	for i := range serial.Results {
		a, err := serial.Results[i].Health.JSON()
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Results[i].Health.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("session %d health differs across worker counts", i)
		}
	}
}

// TestBroadcastHealthWorkerInvariance: per-receiver and merged broadcast
// health are byte-identical for Workers=1 and Workers=GOMAXPROCS — all
// health observations happen in the sequential merge phase.
func TestBroadcastHealthWorkerInvariance(t *testing.T) {
	mkCfg := func(workers int) BroadcastConfig {
		cfg := broadcastConfig(t,
			ReceiverPose{Geometry: optics.Aligned(1.5, 0)},
			ReceiverPose{Geometry: optics.Aligned(3.0, 3)},
			ReceiverPose{Geometry: optics.Aligned(3.8, 0)},
		)
		cfg.FixedLevel = 0.4
		cfg.Health = stepHealthConfig()
		cfg.Workers = workers
		return cfg
	}
	serial, err := RunBroadcast(mkCfg(1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunBroadcast(mkCfg(-1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Health == nil || par.Health == nil {
		t.Fatal("broadcast health missing")
	}
	sj, err := serial.Health.JSON()
	if err != nil {
		t.Fatal(err)
	}
	pj, err := par.Health.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Fatal("broadcast health differs across worker counts")
	}
	for i := range serial.PerReceiver {
		ah := serial.PerReceiver[i].Health
		bh := par.PerReceiver[i].Health
		if ah == nil || bh == nil {
			t.Fatalf("receiver %d health missing", i)
		}
		if want := "rx" + strconv.Itoa(i); ah.Link != want {
			t.Fatalf("receiver %d link %q", i, ah.Link)
		}
		a, err := ah.JSON()
		if err != nil {
			t.Fatal(err)
		}
		b, err := bh.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("receiver %d health differs across worker counts", i)
		}
	}
}
