// Package sim runs complete SmartVLC sessions: it wires the ambient-light
// trace, the smart-lighting controller, the modulation scheme, the framer,
// the sample-level PHY and the ARQ MAC with its Wi-Fi side channel into a
// single deterministic time-driven simulation, and reports the metrics the
// paper's evaluation plots (per-second throughput, light intensity traces,
// cumulative adaptation counts).
package sim

import (
	"context"
	"encoding/hex"
	"fmt"
	"math"
	"strconv"

	"smartvlc/internal/frame"
	"smartvlc/internal/hw"
	"smartvlc/internal/light"
	"smartvlc/internal/mac"
	"smartvlc/internal/optics"
	"smartvlc/internal/parallel"
	"smartvlc/internal/photon"
	"smartvlc/internal/phy"
	"smartvlc/internal/scheme"
	"smartvlc/internal/stats"
	"smartvlc/internal/telemetry"
	"smartvlc/internal/telemetry/agg"
	"smartvlc/internal/telemetry/flight"
	"smartvlc/internal/telemetry/health"
	"smartvlc/internal/telemetry/prof"
	"smartvlc/internal/telemetry/span"
	"smartvlc/internal/telemetry/vlog"
)

// Config describes one session.
type Config struct {
	// Scheme is the modulation under test.
	Scheme scheme.Scheme
	// Geometry is the TX→RX pose.
	Geometry optics.Geometry
	// Budget converts geometry and ambient into a detection channel.
	Budget photon.LinkBudget

	// FixedLevel runs the link at a constant dimming level (static
	// experiments). Used when Trace is nil.
	FixedLevel float64
	// AmbientLux is the constant ambient level for fixed-level runs.
	AmbientLux float64

	// Trace, when non-nil, drives smart-lighting adaptation: the LED level
	// follows TargetSum − ambient.
	Trace light.Trace
	// TargetSum is the desired total illumination in LED units.
	TargetSum float64
	// FullLEDLux converts the trace's lux to LED units.
	FullLEDLux float64
	// Stepper plans flicker-free level changes (default: perception-domain
	// τ_p = 0.003).
	Stepper light.Stepper

	// PayloadBytes is the application payload per frame (paper: 128).
	PayloadBytes int
	// Window is the ARQ window (frames in flight).
	Window int
	// AckTimeoutSeconds triggers retransmission.
	AckTimeoutSeconds float64
	// Side-channel (Wi-Fi uplink) parameters.
	SideLatencySeconds, SideJitterSeconds float64
	SideLossProb                          float64
	// UplinkVLCBitRate, when positive, replaces the Wi-Fi side channel
	// with a serialized VLC return link at this bit rate — the paper's
	// future-work configuration (§5 footnote 2) once mobile nodes carry
	// capable LEDs.
	UplinkVLCBitRate float64
	// UplinkVLCRangeM is the VLC uplink's reach (0 selects 2.5 m); the
	// weak mobile-node LED is the reason the prototype used Wi-Fi.
	UplinkVLCRangeM float64
	// IdleGapSlots separates consecutive frames on air.
	IdleGapSlots int
	// Seed makes the session reproducible.
	Seed uint64

	// Telemetry, when non-nil, receives the session's metrics and frame-
	// lifecycle events; Run leaves a Snapshot in Result.Telemetry. All
	// timestamps are simulation time, so two runs with identical config
	// and seed produce byte-identical snapshots. Nil (the default)
	// disables instrumentation at zero allocation cost on the hot paths.
	Telemetry *telemetry.Registry

	// Spans, when non-nil, collects the session's causal frame spans
	// (frame/build → tx → channel → hunt → decode → mac/ack, with
	// retransmissions chained parent→child); Run leaves a snapshot in
	// Result.Spans. Like Telemetry, all span times are simulation time
	// and nil is the zero-cost default.
	Spans *span.Collector
	// Flight, when non-nil, arms the anomaly flight recorder: recent
	// frames (slot waveform + receive window) are ringed and dumped as a
	// diagnostic bundle on a decode failure, a hunt miss, a symbol-error
	// burst or an ACK timeout. Arming Flight without Spans uses an
	// internal span collector so bundles still carry the frame trees.
	Flight *flight.Recorder

	// Prof, when non-nil, arms the deterministic stage profiler: sim-domain
	// cost counters (frames, samples, slots, symbols, bytes, scratch
	// growth) accumulate per stage×scheme×level, Run leaves a snapshot in
	// Result.Prof, and the totals are mirrored into Config.Telemetry as
	// prof_*_total counters just before the registry snapshot, so fleet
	// aggregation inherits stage costs through telemetry.Merge. When armed,
	// the session loop also runs under pprof goroutine labels
	// (session/scheme/level) so wall-clock CPU profiles attribute to the
	// same dimensions. All costs are commuting integer adds, so snapshots
	// are byte-identical per (seed, config) for any worker count. Nil (the
	// default) costs one nil check per instrumentation point and zero
	// allocations.
	Prof *prof.Profiler

	// Logs, when non-nil, collects the session's structured log records —
	// the narrative of what the link decided: phy hunt/decode outcomes,
	// mac ACK/retransmit/window events, dimming adjustments, SLO
	// transitions with burn-rate context, flight-recorder triggers and
	// arena scratch growth. Run leaves a snapshot in Result.Logs. Like
	// every other pillar, all record times are simulation time, receiver-
	// side records are shard-buffered and spliced in deterministic order,
	// and nil is the zero-cost default (one branch per call site, zero
	// allocations).
	Logs *vlog.Logger

	// Health, when non-nil, attaches a link-health monitor: windowed
	// time-series buckets on the simulation clock plus SLO burn-rate
	// alerting; Run leaves the final snapshot in Result.Health. The config
	// is copied per session (safe to share across a fleet); its
	// TSlotSeconds and Registry default to the session's slot clock and
	// Config.Telemetry. When Flight is also armed, every SLO transition to
	// critical triggers a flight-recorder bundle with reason
	// "slo_<objective>". Nil (the default) costs nothing.
	Health *health.Config

	// Watch, when non-nil, streams the session's telemetry deltas into a
	// fleet aggregator while the session runs: the run loop flushes
	// Registry.Delta at every sim-clock window boundary and delivers the
	// final partial window at session end. Requires Telemetry (Run errors
	// otherwise). Flush times are pure functions of the sim clock, so the
	// aggregator's sealed windows are byte-identical per (seed, config)
	// for any worker count. Nil (the default) costs one nil check per
	// frame boundary.
	Watch *agg.Feed
}

// DefaultConfig returns the paper's evaluation settings for a scheme:
// 3 m on-axis link, 128-byte payloads, static office ambient.
func DefaultConfig(s scheme.Scheme) Config {
	return Config{
		Scheme:             s,
		Geometry:           optics.Aligned(3.0, 0),
		Budget:             photon.DefaultLinkBudget(),
		FixedLevel:         0.5,
		AmbientLux:         8000,
		TargetSum:          1.0,
		FullLEDLux:         500,
		Stepper:            light.PerceivedStepper{TauP: light.DefaultTauP},
		PayloadBytes:       128,
		Window:             8,
		AckTimeoutSeconds:  0.25,
		SideLatencySeconds: 0.003,
		SideJitterSeconds:  0.002,
		SideLossProb:       0.01,
		IdleGapSlots:       24,
		Seed:               1,
	}
}

// Result aggregates a session's outcome.
type Result struct {
	// Duration is the simulated air time in seconds.
	Duration float64
	// GoodputBps is acknowledged unique payload bits per second — the
	// throughput the paper reports.
	GoodputBps float64
	// FramesSent, FramesOK, FramesBad count transmissions and receiver
	// outcomes; Retransmits counts ARQ repeats.
	FramesSent, FramesOK, FramesBad, Retransmits int
	// SymbolErrors sums abnormal constituent symbols in accepted frames.
	SymbolErrors int
	// Adjustments is the cumulative count of LED brightness steps.
	Adjustments int

	// Throughput is the per-second goodput series (paper Fig. 19a).
	Throughput stats.Series
	// Ambient, LED and Sum are normalized intensity series (Fig. 19b).
	Ambient, LED, Sum stats.Series
	// AdjustCum is the cumulative adjustment count over time (Fig. 19c).
	AdjustCum stats.Series

	// Telemetry is the session's metric snapshot when Config.Telemetry was
	// set, nil otherwise.
	Telemetry *telemetry.Snapshot
	// Spans is the session's span snapshot when Config.Spans was set, nil
	// otherwise.
	Spans *span.Snapshot
	// Health is the session's health snapshot (windowed series, SLO
	// attainment, alert transitions) when Config.Health was set, nil
	// otherwise.
	Health *health.Snapshot
	// Prof is the session's stage-cost snapshot when Config.Prof was set,
	// nil otherwise.
	Prof *prof.Snapshot
	// Logs is the session's structured log snapshot when Config.Logs was
	// set, nil otherwise.
	Logs *vlog.Snapshot
}

// Run simulates a session for the given air-time duration. When the
// stage profiler is armed the session body executes under pprof
// goroutine labels (session = seed, scheme) so wall-clock CPU profiles
// line up with the deterministic stage profile; the profiling-off path
// adds nothing.
//
// Run allocates the session's working state fresh; Arena.Run rents it
// from a warm arena instead, with byte-identical results. Both paths
// share one implementation — a fresh run is simply a run out of an empty
// arena.
func Run(cfg Config, duration float64) (Result, error) {
	return NewArena().Run(cfg, duration)
}

// profStages caches the per-level stage handles and pprof label context
// of one quantized dimming level, so the frame loop switches attribution
// with field reads instead of map lookups and label allocations.
type profStages struct {
	frame, tx, hunt, decode, mac *prof.Stage
	symbolsPerFrame              int64
	labels                       context.Context
}

// noProf is the all-nil stage set the profiling-off path shares: every
// handle no-ops, so the frame loop reads fields unconditionally.
var noProf profStages

func run(cfg Config, duration float64, a *Arena) (Result, error) {
	if cfg.Scheme == nil {
		return Result{}, fmt.Errorf("sim: nil scheme")
	}
	if duration <= 0 {
		return Result{}, fmt.Errorf("sim: duration %v must be positive", duration)
	}
	if cfg.PayloadBytes <= 0 {
		return Result{}, fmt.Errorf("sim: payload %d bytes", cfg.PayloadBytes)
	}
	if err := cfg.Geometry.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Watch != nil && cfg.Telemetry == nil {
		return Result{}, fmt.Errorf("sim: Watch requires Telemetry (the feed streams registry deltas)")
	}

	a.reseed(cfg.Seed, 0xC0FFEE, 0x51DE, 0xACED)
	chanPCG, chanRng := a.chanPCG, a.chanRng

	// Instrument handles: every constructor returns nil on a nil registry
	// and every nil handle is a no-op, so the loop below carries them
	// unconditionally at zero cost when telemetry is off.
	reg := cfg.Telemetry
	txm := phy.NewTxMetrics(reg)
	rxm := phy.NewRxMetrics(reg)
	macm := mac.NewMetrics(reg)
	reg.Help("sim_frame_airtime_slots", "On-air length of each transmitted frame, in slots (including the idle gap).")
	reg.Help("sim_goodput_bps", "Acknowledged unique payload bits per second over the whole session.")
	framesTx := reg.Counter("sim_frames_tx_total")
	airtimeH := reg.Histogram("sim_frame_airtime_slots")
	deliveredC := reg.Counter("sim_delivered_bytes_total")
	levelG := reg.Gauge("sim_dimming_level")

	// Span collector: the caller's, or an internal one when only the
	// flight recorder is armed (bundles embed the frame trees either way).
	col := cfg.Spans
	if cfg.Flight != nil && col == nil {
		col = span.NewCollector()
	}

	// Structured log handle: nil-safe like every other pillar. The
	// receiver's records go through the arena's shard buffer (spliced per
	// frame); the sender and the session loop write the logger directly —
	// everything runs on this goroutine, so record order is program order.
	lg := cfg.Logs

	sender, err := a.rentSender(cfg.Window, cfg.PayloadBytes, cfg.AckTimeoutSeconds)
	if err != nil {
		return Result{}, err
	}
	sender.Metrics = macm
	sender.Log = lg
	rxSide := a.rentReceiverSide(cfg.PayloadBytes)
	sideCh := a.rentSideChannel(cfg.SideLatencySeconds, cfg.SideJitterSeconds, cfg.SideLossProb)
	sideCh.Metrics = macm
	sideCh.Spans = col
	var side mac.Uplink = sideCh
	if cfg.UplinkVLCBitRate > 0 {
		rangeM := cfg.UplinkVLCRangeM
		if rangeM <= 0 {
			rangeM = 2.5
		}
		vlc := a.rentVLCUplink(cfg.UplinkVLCBitRate, 96, rangeM, cfg.Geometry.DistanceM)
		vlc.Metrics = macm
		side = vlc
	}

	var controller *light.Controller
	if cfg.Trace != nil {
		stepper := cfg.Stepper
		if stepper == nil {
			stepper = light.PerceivedStepper{TauP: light.DefaultTauP}
		}
		controller, err = light.NewController(cfg.TargetSum, stepper)
		if err != nil {
			return Result{}, err
		}
		controller.Metrics = light.NewMetrics(reg)
	}
	sensor := a.rentSensor(hw.OPT101())

	tslot := 8e-6
	level := cfg.FixedLevel
	a.codecs.reset(cfg.Scheme)

	// Stage profiler handles, cached per quantized level like the codecs,
	// so the frame loop attributes cost with field reads. Symbol counts
	// come from codec metadata (codecs are shared and cached across
	// sessions, so no per-session state may live on them).
	// The cache keys by the raw float level (like the codecs map), not the
	// rendered label: prof.LevelLabel allocates a string, which would cost
	// the armed hot loop an allocation per frame.
	schemeName := cfg.Scheme.Name()
	if lg.Enabled(vlog.Info) {
		lg.Record(vlog.Record{
			At: 0, Level: vlog.Info, Stage: "sim/session", Msg: "session start", Seq: -1,
			Scheme: schemeName, Dim: fmtAttr(level),
			Attrs: []vlog.Attr{
				{Key: "seed", Value: strconv.FormatUint(cfg.Seed, 10)},
				{Key: "window", Value: strconv.Itoa(cfg.Window)},
				{Key: "payload_bytes", Value: strconv.Itoa(cfg.PayloadBytes)},
			},
		})
	}
	profCache := a.rentProfCache()
	stagesFor := func(l float64, codec frame.PayloadCodec) *profStages {
		if cfg.Prof == nil {
			return &noProf
		}
		if st, ok := profCache[l]; ok {
			return st
		}
		ll := prof.LevelLabel(l)
		st := &profStages{
			frame:  cfg.Prof.Stage("sim.frame", schemeName, ll, ""),
			tx:     cfg.Prof.Stage("phy.tx", schemeName, ll, ""),
			hunt:   cfg.Prof.Stage("phy.hunt", schemeName, ll, ""),
			decode: cfg.Prof.Stage("phy.decode", schemeName, ll, ""),
			mac:    cfg.Prof.Stage("mac.frame", schemeName, ll, ""),
			labels: parallel.LabelContext(
				"session", strconv.FormatUint(cfg.Seed, 10),
				"scheme", schemeName, "level", ll, "stage", "sim.frame"),
		}
		if ps, ok := codec.(interface{ PayloadSymbols(int) int }); ok {
			st.symbolsPerFrame = int64(ps.PayloadSymbols(mac.SeqBytes + cfg.PayloadBytes))
		}
		profCache[l] = st
		return st
	}
	var curStages *profStages

	// Channel state, rebuilt when ambient moves by >2 %. The arena's
	// receiver shell is reconfigured via Reset on each rebuild — exactly
	// NewReceiver's state, with the scratch columns retained.
	var link phy.Link
	rx := a.rentReceiver()
	lastLux := math.Inf(-1)
	ensureChannel := func(lux float64) error {
		if lastLux > 0 && math.Abs(lux-lastLux) <= 0.02*lastLux {
			return nil
		}
		ch, err := cfg.Budget.ChannelAt(cfg.Geometry, lux)
		if err != nil {
			return err
		}
		link = phy.DefaultLink(ch)
		link.Metrics = txm
		rx.Reset(ch, cfg.Scheme.Factory())
		rx.Metrics = rxm
		rxm.OnChannel(rx.Threshold())
		lastLux = lux
		return nil
	}

	var res Result
	deliveredAt := a.deliveredAt[:0] // ack times for the per-second series
	slotBuf := a.slotBuf             // frame slot waveform, reused across frames
	a.vSlotLen = 0

	// Span state: per-sequence root IDs (retransmit chains link onto
	// them), the receiver-side shard buffer, and the sample duration for
	// converting receiver sample indices to simulation time.
	tsamp := tslot / float64(phy.Oversample)
	roots := a.rentRoots(col != nil)
	rxSpanBuf := &a.rxSpanBuf
	rxLogBuf := &a.rxLogBuf
	if lg != nil {
		rxLogBuf.Arm(lg.Min())
	}
	prevRetx := 0

	// Link-health monitor. The config is copied so a fleet can share one
	// *health.Config; clock and registry default to the session's.
	// Critical SLO transitions are parked in pendingSLO and consumed by
	// the flight-recorder block below, so every breach ships a replayable
	// bundle.
	var mon *health.Monitor
	var pendingSLO []health.Transition
	if cfg.Health != nil {
		hc := *cfg.Health
		if hc.TSlotSeconds <= 0 {
			hc.TSlotSeconds = tslot
		}
		if hc.Registry == nil {
			hc.Registry = reg
		}
		if cfg.Flight != nil || lg != nil {
			userAlert := hc.OnAlert
			hc.OnAlert = func(t health.Transition) {
				if userAlert != nil {
					userAlert(t)
				}
				// Every state change logs at the severity of the state it
				// enters, carrying the burn-rate context that justified it.
				if lv := sloLogLevel(t.To); lg.Enabled(lv) {
					lg.Record(vlog.Record{
						At: t.At, Level: lv, Stage: "sim/slo",
						Msg: "slo " + t.Objective + ": " + t.From.String() + " -> " + t.To.String(),
						Seq: -1, Shard: t.Link, Scheme: schemeName, Dim: fmtAttr(level),
						Attrs: []vlog.Attr{
							{Key: "burn_fast", Value: fmtAttr(t.BurnFast)},
							{Key: "burn_slow", Value: fmtAttr(t.BurnSlow)},
							{Key: "value", Value: fmtAttr(t.Value)},
							{Key: "target", Value: fmtAttr(t.Target)},
						},
					})
				}
				if cfg.Flight != nil && t.To == health.StateCritical {
					pendingSLO = append(pendingSLO, t)
				}
			}
		}
		mon = health.NewMonitor(hc)
	}

	now := 0.0
	lastRecord := -1.0
	const recordEvery = 0.25

	// Latest ambient report received from the receiver over the Wi-Fi
	// side channel (paper Fig. 2). The transmitter prefers it over its
	// own (OPT101) reading because the receiver sits in the area of
	// interest; it falls back to local sensing when reports go stale.
	// Reports carry photon noise, so the firmware averages them over
	// ~0.3 s before they drive the dimming controller — the controller's
	// step is only ~0.005, far below the raw report jitter.
	remoteLux, remoteAt := 0.0, -1.0
	smoothed, smoothedSet := 0.0, false
	lastStep := 0.0

	for now < duration {
		mon.Tick(now)
		cfg.Watch.Tick(now, reg)
		// Ambient and adaptation at this frame boundary.
		lux := cfg.AmbientLux
		if cfg.Trace != nil {
			lux = cfg.Trace.LuxAt(now)
		}
		if err := ensureChannel(lux); err != nil {
			return Result{}, err
		}
		ambientNorm := light.Normalize(lux, cfg.FullLEDLux)
		src := sensor.Step(ambientNorm, 0.01)
		if remoteAt >= 0 && now-remoteAt < 0.5 {
			src = light.Normalize(remoteLux, cfg.FullLEDLux)
		}
		if !smoothedSet {
			smoothed, smoothedSet = src, true
		} else {
			alpha := 1 - math.Exp(-(now-lastStep)/0.3)
			smoothed += alpha * (src - smoothed)
		}
		lastStep = now
		if controller != nil {
			prevLevel := level
			level, _ = controller.StepToward(smoothed)
			if level != prevLevel && lg.Enabled(vlog.Debug) {
				lg.Record(vlog.Record{
					At: now, Level: vlog.Debug, Stage: "sim/dim",
					Msg: "dimming level adjusted", Seq: -1,
					Scheme: schemeName, Dim: fmtAttr(level),
					Attrs: []vlog.Attr{{Key: "from", Value: fmtAttr(prevLevel)}},
				})
			}
		}
		levelG.Set(level)
		mon.ObserveLevel(now, level)

		// Record series.
		if now-lastRecord >= recordEvery {
			lastRecord = now
			res.Ambient.Add(now, ambientNorm)
			res.LED.Add(now, level)
			res.Sum.Add(now, ambientNorm+level)
			adj := 0
			if controller != nil {
				adj = controller.Adjustments()
			}
			res.AdjustCum.Add(now, float64(adj))
		}

		// Side-channel deliveries.
		for _, m := range side.Receive(now) {
			switch m.Kind {
			case mac.KindAck:
				if lat, known := sender.OnAckAt(m.Seq, m.At); known {
					mon.ObserveAck(m.At, lat)
					// Exemplar: the tail of the ack-latency histogram links
					// back to the frame that caused it (root span when spans
					// are armed, frame seq and sim time always).
					if macm != nil {
						macm.AckLatency.AttachExemplar(lat, telemetry.Exemplar{
							At: m.At, Seq: int64(m.Seq), Span: int64(roots.get(m.Seq)),
						})
					}
				}
				reg.Emit(m.At, "frame/ack", int64(m.Seq))
				if col != nil {
					col.Record(span.Span{
						Name: "mac/ack", Parent: roots.get(m.Seq), Seq: int64(m.Seq),
						Start: m.At, End: m.At,
					})
				}
			case mac.KindAmbientReport:
				remoteLux, remoteAt = m.Lux, m.At
			}
		}

		seq, body, ok := sender.NextFrame(now)
		if !ok {
			// Window full: the LED idles at the dimming level.
			now += cfg.AckTimeoutSeconds / 8
			continue
		}
		retx := sender.Retransmits() > prevRetx
		prevRetx = sender.Retransmits()
		codec, err := a.codecs.codecFor(level)
		if err != nil {
			return Result{}, fmt.Errorf("sim: level %v: %w", level, err)
		}
		// Switch cost attribution (and the wall-clock profile labels) to
		// this frame's quantized level. The handles feed commuting atomic
		// adds, so totals stay worker-count invariant.
		st := stagesFor(level, codec)
		if st != curStages {
			curStages = st
			if cfg.Prof != nil {
				parallel.SetLabels(st.labels)
			}
			sender.Prof = st.mac
		}
		link.Prof = st.tx
		rx.SetProf(st.hunt, st.decode)
		reg.Emit(now, "frame/build", int64(seq))
		slots, err := frame.BuildAppend(slotBuf[:0], codec, body)
		if err != nil {
			return Result{}, err
		}
		slots = frame.AppendIdle(slots, codec.Level(), cfg.IdleGapSlots)
		slotBuf = slots
		st.frame.Ops(1)
		st.frame.Slots(int64(len(slots)))
		st.frame.Bytes(int64(len(body)))
		st.frame.Symbols(st.symbolsPerFrame)
		if a.frameAlloc(len(slots)) {
			st.frame.Allocs(1)
			// Scratch growth keys on the virtual high-water mark, so warm
			// arena runs log the same growth events a fresh run would.
			if lg.Enabled(vlog.Debug) {
				lg.Record(vlog.Record{
					At: now, Level: vlog.Debug, Stage: "sim/arena",
					Msg: "frame slot scratch grew", Seq: int64(seq),
					Attrs: []vlog.Attr{{Key: "slots", Value: strconv.Itoa(len(slots))}},
				})
			}
		}
		airtime := float64(len(slots)) * tslot
		framesTx.Inc()
		airtimeH.Observe(float64(len(slots)))
		reg.Emit(now, "frame/tx", int64(seq))
		mon.ObserveTx(now, len(slots), retx)

		// Root span for this transmission; a retransmission chains onto
		// the previous transmission's root.
		var root span.ID
		if col != nil {
			parent := span.ID(0)
			if retx {
				parent = roots.get(seq)
			}
			desc := codec.Descriptor()
			root = col.Record(span.Span{
				Name: "frame", Parent: parent, Seq: int64(seq),
				Start: now, End: now + airtime,
				Attrs: []span.Attr{
					{Key: "level", Value: strconv.FormatFloat(level, 'g', -1, 64)},
					{Key: "scheme", Value: cfg.Scheme.Name()},
					{Key: "pattern", Value: hex.EncodeToString(desc[:])},
					{Key: "slots", Value: strconv.Itoa(len(slots))},
				},
			})
			roots.set(seq, root)
			col.Record(span.Span{Name: "frame/build", Parent: root, Seq: int64(seq), Start: now, End: now})
			if retx {
				col.Record(span.Span{Name: "mac/retx", Parent: root, Seq: int64(seq), Start: now, End: now})
			}
			col.Record(span.Span{Name: "frame/tx", Parent: root, Seq: int64(seq), Start: now, End: now + airtime})
		}
		// Exemplar: an airtime outlier bucket jumps to the frame's root span.
		airtimeH.AttachExemplar(float64(len(slots)), telemetry.Exemplar{
			At: now, Seq: int64(seq), Span: int64(root),
		})

		link.StartPhase = chanRng.Float64()
		samples := link.TransmitPCG(chanPCG, slots)
		if col != nil {
			col.Record(span.Span{
				Name: "frame/channel", Parent: root, Seq: int64(seq),
				Start: now, End: now + float64(len(samples))*tsamp,
			})
			rxSpanBuf.Reset()
			rx.SetSpanWindow(rxSpanBuf, now, tsamp)
		}
		if lg != nil {
			rxLogBuf.Reset()
			rx.SetLogWindow(rxLogBuf, now, tsamp)
		}
		results, rxStats := rx.Process(samples)
		if n := int64(len(results)); n > 0 {
			st.decode.Symbols(st.symbolsPerFrame * n)
		}
		decodeClass := ""
		if col != nil {
			// Extract the decode outcome before Splice consumes the buffer;
			// the flight recorder keys its trigger on it.
			decodeClass = flight.DecodeClass(rxSpanBuf.Spans())
			col.Splice(rxSpanBuf, root, int64(seq))
		}
		if lg != nil {
			lg.Splice(rxLogBuf, int64(root), int64(seq), "")
		}
		if cfg.Flight != nil {
			cfg.Flight.Observe(flight.Capture{
				Seq: int64(seq), Start: now, Level: level,
				Threshold: rx.Threshold(), Slots: slots, Samples: samples,
			})
			reason := ""
			switch {
			case len(pendingSLO) > 0:
				// An SLO breach outranks the per-frame reasons: it is the
				// rarer event and names the objective that burned.
				reason = "slo_" + pendingSLO[0].Objective
				pendingSLO = pendingSLO[:0]
			case rxStats.FramesBad > 0:
				reason = "decode"
			case len(results) == 0:
				reason = "hunt"
			case cfg.Flight.Config().SERThreshold > 0 && rxStats.SymbolErrors >= cfg.Flight.Config().SERThreshold:
				reason = "ser"
			case retx:
				reason = "ack_timeout"
			}
			if reason != "" {
				// Log the trigger BEFORE taking the snapshot, so the bundle's
				// own logs.ndjson tail ends with the record explaining it.
				if lg.Enabled(vlog.Warn) {
					lg.Record(vlog.Record{
						At: now + airtime, Level: vlog.Warn, Stage: "sim/flight",
						Msg: "flight bundle triggered: " + reason, Seq: int64(seq),
						Span: int64(root), Scheme: schemeName, Dim: fmtAttr(level),
						Attrs: []vlog.Attr{{Key: "class", Value: decodeClass}},
					})
				}
				var msnap *telemetry.Snapshot
				if reg != nil {
					msnap = reg.Snapshot()
				}
				meta := flight.Meta{
					Reason: reason, Class: decodeClass, Seq: int64(seq),
					At: now + airtime, Seed: cfg.Seed, Scheme: cfg.Scheme.Name(),
					Level: level, Threshold: rx.Threshold(),
					TSlotSeconds: tslot, PayloadBytes: cfg.PayloadBytes,
				}
				if _, err := cfg.Flight.Trigger(meta, col.Snapshot(), msnap, logSnap(lg)); err != nil {
					return Result{}, err
				}
			}
		}
		phy.RecycleSamples(samples)
		res.FramesOK += rxStats.FramesOK
		res.FramesBad += rxStats.FramesBad
		res.SymbolErrors += rxStats.SymbolErrors
		// Symbol count proxy: decoded payload bytes of accepted frames —
		// the denominator the paper's Eq. 3 SER bound is stated against.
		mon.ObserveRx(now+airtime, rxStats.FramesOK, rxStats.FramesBad, rxStats.SymbolErrors, rxStats.FramesOK*cfg.PayloadBytes)
		for i := 0; i < rxStats.FramesBad; i++ {
			reg.Emit(now+airtime, "frame/bad", -1)
		}
		for _, r := range results {
			before := rxSide.DeliveredPayload()
			gotSeq, ackIt := rxSide.OnFrame(r.Payload)
			if !ackIt {
				continue
			}
			reg.Emit(now+airtime, "frame/decode", int64(gotSeq))
			side.Send(now+airtime, mac.Message{Kind: mac.KindAck, Seq: gotSeq})
			if d := rxSide.DeliveredPayload() - before; d > 0 {
				deliveredAt = append(deliveredAt, now+airtime)
				deliveredC.Add(d)
				mon.ObserveDelivered(now+airtime, d*8)
			}
		}
		// The receiver reports its sensed ambient level (estimated from
		// OFF detection windows) back over the Wi-Fi uplink.
		if counts, ok := rx.AmbientWindowCounts(); ok {
			amb := counts/phy.AmbientWindowFraction - cfg.Budget.DarkCounts
			if amb < 0 {
				amb = 0
			}
			estLux := amb / cfg.Budget.AmbientCountsPerLux
			side.Send(now+airtime, mac.Message{Kind: mac.KindAmbientReport, Lux: estLux})
		}
		now += airtime
	}

	// Drain trailing acks so goodput reflects everything delivered.
	for _, m := range side.Receive(now + 1) {
		if m.Kind == mac.KindAck {
			if lat, known := sender.OnAckAt(m.Seq, m.At); known {
				mon.ObserveAck(m.At, lat)
				if macm != nil {
					macm.AckLatency.AttachExemplar(lat, telemetry.Exemplar{
						At: m.At, Seq: int64(m.Seq), Span: int64(roots.get(m.Seq)),
					})
				}
			}
			reg.Emit(m.At, "frame/ack", int64(m.Seq))
			if col != nil {
				col.Record(span.Span{
					Name: "mac/ack", Parent: roots.get(m.Seq), Seq: int64(m.Seq),
					Start: m.At, End: m.At,
				})
			}
		}
	}

	// Hand the grown scratch back to the arena for the next session.
	a.slotBuf = slotBuf
	a.deliveredAt = deliveredAt

	res.Duration = now
	res.FramesSent = sender.FramesSent()
	res.Retransmits = sender.Retransmits()
	res.GoodputBps = float64(sender.AckedPayload()) * 8 / now
	if controller != nil {
		res.Adjustments = controller.Adjustments()
	}
	res.Throughput = throughputSeries(deliveredAt, cfg.PayloadBytes, now)
	if mon != nil {
		res.Health = mon.Finish(now)
		// A critical transition in the run's last instants may not have met
		// a later frame to consume it; it still ships a bundle.
		if cfg.Flight != nil && len(pendingSLO) > 0 {
			var msnap *telemetry.Snapshot
			if reg != nil {
				msnap = reg.Snapshot()
			}
			meta := flight.Meta{
				Reason: "slo_" + pendingSLO[0].Objective, Seq: -1,
				At: now, Seed: cfg.Seed, Scheme: cfg.Scheme.Name(),
				Level: level, Threshold: rx.Threshold(),
				TSlotSeconds: tslot, PayloadBytes: cfg.PayloadBytes,
			}
			if lg.Enabled(vlog.Warn) {
				lg.Record(vlog.Record{
					At: now, Level: vlog.Warn, Stage: "sim/flight",
					Msg: "flight bundle triggered: " + meta.Reason, Seq: -1,
					Scheme: schemeName, Dim: fmtAttr(level),
				})
			}
			if _, err := cfg.Flight.Trigger(meta, col.Snapshot(), msnap, logSnap(lg)); err != nil {
				return Result{}, err
			}
		}
	}
	if cfg.Prof != nil {
		// Mirror stage costs into the registry before its snapshot so fleet
		// aggregation carries them through telemetry.Merge.
		cfg.Prof.Publish(reg)
		res.Prof = cfg.Prof.Snapshot()
	}
	if reg != nil {
		reg.Gauge("sim_goodput_bps").Set(res.GoodputBps)
		reg.Gauge("sim_duration_seconds").Set(res.Duration)
		// Final partial window after the session gauges, so the fleet
		// aggregator's last delta carries the end-of-run levels.
		cfg.Watch.Finish(now, reg)
		res.Telemetry = reg.Snapshot()
	}
	if cfg.Spans != nil {
		res.Spans = cfg.Spans.Snapshot()
	}
	if lg != nil {
		if lg.Enabled(vlog.Info) {
			lg.Record(vlog.Record{
				At: now, Level: vlog.Info, Stage: "sim/session", Msg: "session end", Seq: -1,
				Scheme: schemeName, Dim: fmtAttr(level),
				Attrs: []vlog.Attr{
					{Key: "goodput_bps", Value: fmtAttr(res.GoodputBps)},
					{Key: "frames_ok", Value: strconv.Itoa(res.FramesOK)},
					{Key: "frames_bad", Value: strconv.Itoa(res.FramesBad)},
					{Key: "retransmits", Value: strconv.Itoa(res.Retransmits)},
				},
			})
		}
		res.Logs = lg.Snapshot()
	}
	return res, nil
}

// fmtAttr formats a float attribute value deterministically (shortest
// form that round-trips, like the trace exports).
func fmtAttr(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// sloLogLevel maps the SLO state a transition enters to the severity its
// log record carries.
func sloLogLevel(s health.State) vlog.Level {
	switch s {
	case health.StateCritical:
		return vlog.Error
	case health.StateWarning:
		return vlog.Warn
	}
	return vlog.Info
}

// logSnap snapshots a logger for a flight bundle, keeping the nil-omits-
// the-file contract (a nil logger yields a nil snapshot, not an empty
// one).
func logSnap(lg *vlog.Logger) *vlog.Snapshot {
	if lg == nil {
		return nil
	}
	return lg.Snapshot()
}

// throughputSeries buckets delivery events into one-second bins, the way
// the paper's prototype "reports the average throughput every second".
func throughputSeries(deliveredAt []float64, payloadBytes int, duration float64) stats.Series {
	s := stats.Series{Name: "throughput_bps"}
	nBins := int(math.Ceil(duration))
	if nBins == 0 {
		return s
	}
	bins := make([]float64, nBins)
	for _, t := range deliveredAt {
		b := int(t)
		if b >= nBins {
			b = nBins - 1
		}
		bins[b] += float64(payloadBytes) * 8
	}
	for i, v := range bins {
		s.Add(float64(i), v)
	}
	return s
}
