// Package sim runs complete SmartVLC sessions: it wires the ambient-light
// trace, the smart-lighting controller, the modulation scheme, the framer,
// the sample-level PHY and the ARQ MAC with its Wi-Fi side channel into a
// single deterministic time-driven simulation, and reports the metrics the
// paper's evaluation plots (per-second throughput, light intensity traces,
// cumulative adaptation counts).
package sim

import (
	"fmt"
	"math"
	"math/rand/v2"

	"smartvlc/internal/frame"
	"smartvlc/internal/hw"
	"smartvlc/internal/light"
	"smartvlc/internal/mac"
	"smartvlc/internal/optics"
	"smartvlc/internal/photon"
	"smartvlc/internal/phy"
	"smartvlc/internal/scheme"
	"smartvlc/internal/stats"
)

// Config describes one session.
type Config struct {
	// Scheme is the modulation under test.
	Scheme scheme.Scheme
	// Geometry is the TX→RX pose.
	Geometry optics.Geometry
	// Budget converts geometry and ambient into a detection channel.
	Budget photon.LinkBudget

	// FixedLevel runs the link at a constant dimming level (static
	// experiments). Used when Trace is nil.
	FixedLevel float64
	// AmbientLux is the constant ambient level for fixed-level runs.
	AmbientLux float64

	// Trace, when non-nil, drives smart-lighting adaptation: the LED level
	// follows TargetSum − ambient.
	Trace light.Trace
	// TargetSum is the desired total illumination in LED units.
	TargetSum float64
	// FullLEDLux converts the trace's lux to LED units.
	FullLEDLux float64
	// Stepper plans flicker-free level changes (default: perception-domain
	// τ_p = 0.003).
	Stepper light.Stepper

	// PayloadBytes is the application payload per frame (paper: 128).
	PayloadBytes int
	// Window is the ARQ window (frames in flight).
	Window int
	// AckTimeoutSeconds triggers retransmission.
	AckTimeoutSeconds float64
	// Side-channel (Wi-Fi uplink) parameters.
	SideLatencySeconds, SideJitterSeconds float64
	SideLossProb                          float64
	// UplinkVLCBitRate, when positive, replaces the Wi-Fi side channel
	// with a serialized VLC return link at this bit rate — the paper's
	// future-work configuration (§5 footnote 2) once mobile nodes carry
	// capable LEDs.
	UplinkVLCBitRate float64
	// UplinkVLCRangeM is the VLC uplink's reach (0 selects 2.5 m); the
	// weak mobile-node LED is the reason the prototype used Wi-Fi.
	UplinkVLCRangeM float64
	// IdleGapSlots separates consecutive frames on air.
	IdleGapSlots int
	// Seed makes the session reproducible.
	Seed uint64
}

// DefaultConfig returns the paper's evaluation settings for a scheme:
// 3 m on-axis link, 128-byte payloads, static office ambient.
func DefaultConfig(s scheme.Scheme) Config {
	return Config{
		Scheme:             s,
		Geometry:           optics.Aligned(3.0, 0),
		Budget:             photon.DefaultLinkBudget(),
		FixedLevel:         0.5,
		AmbientLux:         8000,
		TargetSum:          1.0,
		FullLEDLux:         500,
		Stepper:            light.PerceivedStepper{TauP: light.DefaultTauP},
		PayloadBytes:       128,
		Window:             8,
		AckTimeoutSeconds:  0.25,
		SideLatencySeconds: 0.003,
		SideJitterSeconds:  0.002,
		SideLossProb:       0.01,
		IdleGapSlots:       24,
		Seed:               1,
	}
}

// Result aggregates a session's outcome.
type Result struct {
	// Duration is the simulated air time in seconds.
	Duration float64
	// GoodputBps is acknowledged unique payload bits per second — the
	// throughput the paper reports.
	GoodputBps float64
	// FramesSent, FramesOK, FramesBad count transmissions and receiver
	// outcomes; Retransmits counts ARQ repeats.
	FramesSent, FramesOK, FramesBad, Retransmits int
	// SymbolErrors sums abnormal constituent symbols in accepted frames.
	SymbolErrors int
	// Adjustments is the cumulative count of LED brightness steps.
	Adjustments int

	// Throughput is the per-second goodput series (paper Fig. 19a).
	Throughput stats.Series
	// Ambient, LED and Sum are normalized intensity series (Fig. 19b).
	Ambient, LED, Sum stats.Series
	// AdjustCum is the cumulative adjustment count over time (Fig. 19c).
	AdjustCum stats.Series
}

// Run simulates a session for the given air-time duration.
func Run(cfg Config, duration float64) (Result, error) {
	if cfg.Scheme == nil {
		return Result{}, fmt.Errorf("sim: nil scheme")
	}
	if duration <= 0 {
		return Result{}, fmt.Errorf("sim: duration %v must be positive", duration)
	}
	if cfg.PayloadBytes <= 0 {
		return Result{}, fmt.Errorf("sim: payload %d bytes", cfg.PayloadBytes)
	}
	if err := cfg.Geometry.Validate(); err != nil {
		return Result{}, err
	}

	chanRng := rand.New(rand.NewPCG(cfg.Seed, 0xC0FFEE))
	sideRng := rand.New(rand.NewPCG(cfg.Seed, 0x51DE))
	macRng := rand.New(rand.NewPCG(cfg.Seed, 0xACED))

	sender, err := mac.NewSender(cfg.Window, cfg.PayloadBytes, cfg.AckTimeoutSeconds, macRng)
	if err != nil {
		return Result{}, err
	}
	rxSide := mac.NewReceiverSide(cfg.PayloadBytes)
	var side mac.Uplink = mac.NewSideChannel(cfg.SideLatencySeconds, cfg.SideJitterSeconds, cfg.SideLossProb, sideRng)
	if cfg.UplinkVLCBitRate > 0 {
		rangeM := cfg.UplinkVLCRangeM
		if rangeM <= 0 {
			rangeM = 2.5
		}
		side = mac.NewVLCUplink(cfg.UplinkVLCBitRate, 96, rangeM, cfg.Geometry.DistanceM)
	}

	var controller *light.Controller
	if cfg.Trace != nil {
		stepper := cfg.Stepper
		if stepper == nil {
			stepper = light.PerceivedStepper{TauP: light.DefaultTauP}
		}
		controller, err = light.NewController(cfg.TargetSum, stepper)
		if err != nil {
			return Result{}, err
		}
	}
	sensor := hw.NewFilter(hw.OPT101())

	tslot := 8e-6
	level := cfg.FixedLevel
	codecs := map[float64]frame.PayloadCodec{}
	codecFor := func(l float64) (frame.PayloadCodec, error) {
		if c, ok := codecs[l]; ok {
			return c, nil
		}
		c, err := cfg.Scheme.CodecFor(l)
		if err != nil {
			return nil, err
		}
		codecs[l] = c
		return c, nil
	}

	// Channel state, rebuilt when ambient moves by >2 %.
	var link phy.Link
	var rx *phy.Receiver
	lastLux := math.Inf(-1)
	ensureChannel := func(lux float64) error {
		if lastLux > 0 && math.Abs(lux-lastLux) <= 0.02*lastLux {
			return nil
		}
		ch, err := cfg.Budget.ChannelAt(cfg.Geometry, lux)
		if err != nil {
			return err
		}
		link = phy.DefaultLink(ch)
		rx = phy.NewReceiver(ch, cfg.Scheme.Factory())
		lastLux = lux
		return nil
	}

	var res Result
	deliveredAt := []float64{} // ack times for the per-second series
	var slotBuf []bool         // frame slot waveform, reused across frames

	now := 0.0
	lastRecord := -1.0
	const recordEvery = 0.25

	// Latest ambient report received from the receiver over the Wi-Fi
	// side channel (paper Fig. 2). The transmitter prefers it over its
	// own (OPT101) reading because the receiver sits in the area of
	// interest; it falls back to local sensing when reports go stale.
	// Reports carry photon noise, so the firmware averages them over
	// ~0.3 s before they drive the dimming controller — the controller's
	// step is only ~0.005, far below the raw report jitter.
	remoteLux, remoteAt := 0.0, -1.0
	smoothed, smoothedSet := 0.0, false
	lastStep := 0.0

	for now < duration {
		// Ambient and adaptation at this frame boundary.
		lux := cfg.AmbientLux
		if cfg.Trace != nil {
			lux = cfg.Trace.LuxAt(now)
		}
		if err := ensureChannel(lux); err != nil {
			return Result{}, err
		}
		ambientNorm := light.Normalize(lux, cfg.FullLEDLux)
		src := sensor.Step(ambientNorm, 0.01)
		if remoteAt >= 0 && now-remoteAt < 0.5 {
			src = light.Normalize(remoteLux, cfg.FullLEDLux)
		}
		if !smoothedSet {
			smoothed, smoothedSet = src, true
		} else {
			alpha := 1 - math.Exp(-(now-lastStep)/0.3)
			smoothed += alpha * (src - smoothed)
		}
		lastStep = now
		if controller != nil {
			level, _ = controller.StepToward(smoothed)
		}

		// Record series.
		if now-lastRecord >= recordEvery {
			lastRecord = now
			res.Ambient.Add(now, ambientNorm)
			res.LED.Add(now, level)
			res.Sum.Add(now, ambientNorm+level)
			adj := 0
			if controller != nil {
				adj = controller.Adjustments()
			}
			res.AdjustCum.Add(now, float64(adj))
		}

		// Side-channel deliveries.
		for _, m := range side.Receive(now) {
			switch m.Kind {
			case mac.KindAck:
				sender.OnAck(m.Seq)
			case mac.KindAmbientReport:
				remoteLux, remoteAt = m.Lux, m.At
			}
		}

		seq, body, ok := sender.NextFrame(now)
		if !ok {
			// Window full: the LED idles at the dimming level.
			now += cfg.AckTimeoutSeconds / 8
			continue
		}
		codec, err := codecFor(level)
		if err != nil {
			return Result{}, fmt.Errorf("sim: level %v: %w", level, err)
		}
		slots, err := frame.BuildAppend(slotBuf[:0], codec, body)
		if err != nil {
			return Result{}, err
		}
		slots = frame.AppendIdle(slots, codec.Level(), cfg.IdleGapSlots)
		slotBuf = slots
		airtime := float64(len(slots)) * tslot

		link.StartPhase = chanRng.Float64()
		samples := link.Transmit(chanRng, slots)
		results, st := rx.Process(samples)
		phy.RecycleSamples(samples)
		res.FramesOK += st.FramesOK
		res.FramesBad += st.FramesBad
		res.SymbolErrors += st.SymbolErrors
		for _, r := range results {
			before := rxSide.DeliveredPayload()
			gotSeq, ackIt := rxSide.OnFrame(r.Payload)
			if !ackIt {
				continue
			}
			side.Send(now+airtime, mac.Message{Kind: mac.KindAck, Seq: gotSeq})
			if d := rxSide.DeliveredPayload() - before; d > 0 {
				deliveredAt = append(deliveredAt, now+airtime)
			}
		}
		_ = seq
		// The receiver reports its sensed ambient level (estimated from
		// OFF detection windows) back over the Wi-Fi uplink.
		if counts, ok := rx.AmbientWindowCounts(); ok {
			amb := counts/phy.AmbientWindowFraction - cfg.Budget.DarkCounts
			if amb < 0 {
				amb = 0
			}
			estLux := amb / cfg.Budget.AmbientCountsPerLux
			side.Send(now+airtime, mac.Message{Kind: mac.KindAmbientReport, Lux: estLux})
		}
		now += airtime
	}

	// Drain trailing acks so goodput reflects everything delivered.
	for _, m := range side.Receive(now + 1) {
		if m.Kind == mac.KindAck {
			sender.OnAck(m.Seq)
		}
	}

	res.Duration = now
	res.FramesSent = sender.FramesSent()
	res.Retransmits = sender.Retransmits()
	res.GoodputBps = float64(sender.AckedPayload()) * 8 / now
	if controller != nil {
		res.Adjustments = controller.Adjustments()
	}
	res.Throughput = throughputSeries(deliveredAt, cfg.PayloadBytes, now)
	return res, nil
}

// throughputSeries buckets delivery events into one-second bins, the way
// the paper's prototype "reports the average throughput every second".
func throughputSeries(deliveredAt []float64, payloadBytes int, duration float64) stats.Series {
	s := stats.Series{Name: "throughput_bps"}
	nBins := int(math.Ceil(duration))
	if nBins == 0 {
		return s
	}
	bins := make([]float64, nBins)
	for _, t := range deliveredAt {
		b := int(t)
		if b >= nBins {
			b = nBins - 1
		}
		bins[b] += float64(payloadBytes) * 8
	}
	for i, v := range bins {
		s.Add(float64(i), v)
	}
	return s
}
