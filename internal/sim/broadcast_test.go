package sim

import (
	"math"
	"testing"

	"smartvlc/internal/light"
	"smartvlc/internal/optics"
)

func broadcastConfig(t *testing.T, poses ...ReceiverPose) BroadcastConfig {
	t.Helper()
	return BroadcastConfig{
		Config:    DefaultConfig(amppmScheme(t)),
		Receivers: poses,
	}
}

func TestBroadcastValidation(t *testing.T) {
	if _, err := RunBroadcast(BroadcastConfig{Config: DefaultConfig(amppmScheme(t))}, 1); err == nil {
		t.Fatal("no receivers accepted")
	}
	cfg := broadcastConfig(t, ReceiverPose{Geometry: optics.Geometry{}})
	if _, err := RunBroadcast(cfg, 1); err == nil {
		t.Fatal("bad geometry accepted")
	}
	cfg = broadcastConfig(t, ReceiverPose{Geometry: optics.Aligned(2, 0)})
	if _, err := RunBroadcast(cfg, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestBroadcastAllReceiversDeliver(t *testing.T) {
	cfg := broadcastConfig(t,
		ReceiverPose{Geometry: optics.Aligned(1.5, 0)},
		ReceiverPose{Geometry: optics.Aligned(3.0, 3)},
		ReceiverPose{Geometry: optics.Aligned(3.3, 5)},
	)
	cfg.FixedLevel = 0.4
	res, err := RunBroadcast(cfg, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerReceiver) != 3 {
		t.Fatalf("outcomes: %d", len(res.PerReceiver))
	}
	// The reliable rate is bounded by the slowest receiver.
	slowest := math.Inf(1)
	for i, o := range res.PerReceiver {
		if o.DeliveredBps < 30e3 {
			t.Fatalf("receiver %d delivered only %v bps", i, o.DeliveredBps)
		}
		slowest = math.Min(slowest, o.DeliveredBps)
	}
	if res.ReliableGoodputBps > slowest+1e-9 {
		t.Fatalf("reliable %v above slowest receiver %v", res.ReliableGoodputBps, slowest)
	}
	if res.ReliableGoodputBps < 30e3 {
		t.Fatalf("reliable goodput %v", res.ReliableGoodputBps)
	}
}

func TestBroadcastRetransmitsForWeakReceiver(t *testing.T) {
	// One receiver sits near the range cliff: the sender must retransmit
	// until it too acknowledges, costing reliable throughput.
	strong := broadcastConfig(t, ReceiverPose{Geometry: optics.Aligned(1.5, 0)})
	strong.FixedLevel = 0.5
	rs, err := RunBroadcast(strong, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mixed := broadcastConfig(t,
		ReceiverPose{Geometry: optics.Aligned(1.5, 0)},
		ReceiverPose{Geometry: optics.Aligned(3.7, 0)},
	)
	mixed.FixedLevel = 0.5
	rm, err := RunBroadcast(mixed, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rm.ReliableGoodputBps >= rs.ReliableGoodputBps {
		t.Fatalf("weak receiver should cost reliable throughput: %v vs %v",
			rm.ReliableGoodputBps, rs.ReliableGoodputBps)
	}
}

func TestBroadcastDimmingFollowsDarkestDesk(t *testing.T) {
	// Two desks, one near the window (2x ambient): the controller must
	// satisfy the darker desk, so the sunnier one ends up brighter than
	// the target while the darker one stays at it.
	cfg := broadcastConfig(t,
		ReceiverPose{Geometry: optics.Aligned(2.0, 0), AmbientScale: 0.5},
		ReceiverPose{Geometry: optics.Aligned(2.5, 0), AmbientScale: 2.0},
	)
	cfg.Trace = light.Static{Lux: 150}
	cfg.FullLEDLux = 500
	cfg.TargetSum = 1.0
	res, err := RunBroadcast(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	dark, sunny := res.PerReceiver[0], res.PerReceiver[1]
	if math.Abs(dark.MeanSum-1.0) > 0.08 {
		t.Fatalf("dark desk sum %v, want ≈1.0", dark.MeanSum)
	}
	if sunny.MeanSum < dark.MeanSum+0.2 {
		t.Fatalf("sunny desk %v should exceed dark desk %v", sunny.MeanSum, dark.MeanSum)
	}
}
