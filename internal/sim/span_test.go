package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"smartvlc/internal/optics"
	"smartvlc/internal/telemetry/flight"
	"smartvlc/internal/telemetry/span"
)

// spanExports runs one session with a fresh collector and returns the
// canonical JSON and Chrome-trace bytes of its span snapshot.
func spanExports(t *testing.T, mutate func(*Config)) ([]byte, []byte, *span.Snapshot) {
	t.Helper()
	cfg := DefaultConfig(amppmScheme(t))
	cfg.Spans = span.NewCollector()
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := Run(cfg, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spans == nil || len(res.Spans.Spans) == 0 {
		t.Fatal("no spans collected")
	}
	j, err := res.Spans.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var chrome bytes.Buffer
	if err := res.Spans.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	return j, chrome.Bytes(), res.Spans
}

// TestSessionSpanDeterminism pins the tentpole contract: identically
// seeded sessions export byte-identical span snapshots and Chrome
// traces, and the trace covers the whole frame pipeline.
func TestSessionSpanDeterminism(t *testing.T) {
	j1, c1, snap := spanExports(t, nil)
	j2, c2, _ := spanExports(t, nil)
	if !bytes.Equal(j1, j2) {
		t.Fatal("identically seeded sessions exported different span JSON")
	}
	if !bytes.Equal(c1, c2) {
		t.Fatal("identically seeded sessions exported different Chrome traces")
	}

	stages := map[string]bool{}
	for _, s := range snap.Spans {
		stages[s.Name] = true
	}
	for _, want := range []string{"frame", "frame/build", "frame/tx", "frame/channel", "phy/hunt", "phy/decode", "mac/ack", "mac/side"} {
		if !stages[want] {
			t.Errorf("stage %q missing from trace (have %v)", want, stages)
		}
	}

	tree := span.NewTree(snap.Spans)
	frames := tree.FrameRoots("frame")
	if len(frames) == 0 {
		t.Fatal("no frame roots")
	}
	if lvl, ok := frames[0].Attr("level"); !ok || lvl == "" {
		t.Error("frame root missing level attribute")
	}
	if sch, _ := frames[0].Attr("scheme"); sch != "AMPPM" {
		t.Errorf("frame root scheme %q", sch)
	}
	path := tree.CriticalPath(frames[0].ID)
	if len(path) < 2 {
		t.Fatalf("degenerate critical path: %+v", path)
	}

	// The Chrome export parses back to the same span identities.
	rt, err := span.ReadChromeTrace(bytes.NewReader(c1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Spans) != len(snap.Spans) {
		t.Fatalf("round trip kept %d of %d spans", len(rt.Spans), len(snap.Spans))
	}
}

// lossyMutate puts the link at the operating point where decodes fail
// and retransmissions happen (4.5 m under heavy ambient).
func lossyMutate(cfg *Config) {
	cfg.Geometry = optics.Aligned(4.5, 0)
	cfg.AmbientLux = 12000
}

// TestSessionSpanRetxChains pins retransmit chaining on a lossy link:
// the chain links retransmissions parent→child and marks them mac/retx.
func TestSessionSpanRetxChains(t *testing.T) {
	_, _, snap := spanExports(t, lossyMutate)
	tree := span.NewTree(snap.Spans)
	chains := tree.RetxChains("frame")
	if len(chains) == 0 {
		t.Fatal("lossy link produced no retransmit chains")
	}
	for _, c := range chains {
		for i := 1; i < len(c.Roots); i++ {
			if c.Roots[i].Parent != c.Roots[i-1].ID {
				t.Fatalf("chain seq %d not parent-linked: %+v", c.Seq, c.Roots)
			}
			if c.Roots[i].Start < c.Roots[i-1].End {
				t.Fatalf("chain seq %d roots out of order", c.Seq)
			}
		}
	}
	marks := 0
	for _, s := range snap.Spans {
		if s.Name == "mac/retx" {
			marks++
		}
	}
	if marks == 0 {
		t.Fatal("no mac/retx markers despite retransmit chains")
	}
}

// TestBroadcastSpanWorkerInvariance pins the acceptance criterion:
// identically seeded broadcast runs export byte-identical span JSON and
// Chrome traces for workers=1 and workers=NumCPU, with per-receiver rx
// attribution intact.
func TestBroadcastSpanWorkerInvariance(t *testing.T) {
	run := func(workers int) ([]byte, []byte, *span.Snapshot) {
		var cfg BroadcastConfig
		cfg.Config = DefaultConfig(amppmScheme(t))
		cfg.Spans = span.NewCollector()
		cfg.Workers = workers
		base := cfg.Geometry
		cfg.Receivers = []ReceiverPose{
			{Geometry: base},
			{Geometry: base, AmbientScale: 1.4},
			{Geometry: base, AmbientScale: 0.7},
		}
		res, err := RunBroadcast(cfg, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if res.Spans == nil || len(res.Spans.Spans) == 0 {
			t.Fatal("no broadcast spans collected")
		}
		j, err := res.Spans.JSON()
		if err != nil {
			t.Fatal(err)
		}
		var chrome bytes.Buffer
		if err := res.Spans.WriteChromeTrace(&chrome); err != nil {
			t.Fatal(err)
		}
		return j, chrome.Bytes(), res.Spans
	}

	j1, c1, snap := run(1)
	jN, cN, _ := run(runtime.NumCPU())
	if !bytes.Equal(j1, jN) {
		t.Fatal("span JSON differs between workers=1 and workers=NumCPU")
	}
	if !bytes.Equal(c1, cN) {
		t.Fatal("Chrome trace differs between workers=1 and workers=NumCPU")
	}

	rxSeen := map[string]bool{}
	for _, s := range snap.Spans {
		if rx, ok := s.Attr("rx"); ok {
			rxSeen[rx] = true
		}
	}
	for _, want := range []string{"0", "1", "2"} {
		if !rxSeen[want] {
			t.Errorf("no spans attributed to receiver %s (have %v)", want, rxSeen)
		}
	}
}

// TestFlightRecorderBundleReplay pins the flight-recorder acceptance
// criterion end to end: a lossy session triggers bundles, and replaying a
// bundle's captured samples through the real receiver reproduces the
// recorded decode error class.
func TestFlightRecorderBundleReplay(t *testing.T) {
	dir := t.TempDir()
	rec, err := flight.New(flight.Config{Dir: dir, MaxBundles: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(amppmScheme(t))
	lossyMutate(&cfg)
	cfg.Flight = rec
	if _, err := Run(cfg, 0.5); err != nil {
		t.Fatal(err)
	}
	bundles := rec.Bundles()
	if len(bundles) == 0 {
		t.Fatal("lossy session triggered no flight bundles")
	}
	if rec.Triggers() < int64(len(bundles)) {
		t.Fatalf("trigger count %d below bundle count %d", rec.Triggers(), len(bundles))
	}

	sawDecode := false
	for _, bdir := range bundles {
		b, err := flight.ReadBundle(bdir)
		if err != nil {
			t.Fatal(err)
		}
		if b.Meta.Reason == "decode" {
			sawDecode = true
		}
		if b.Spans == nil || len(b.Spans.Spans) == 0 {
			t.Fatalf("bundle %s carries no span tree", bdir)
		}
		if len(b.Captures) == 0 {
			t.Fatalf("bundle %s carries no captures", bdir)
		}
		class, err := b.Replay()
		if err != nil {
			t.Fatalf("replay %s: %v", bdir, err)
		}
		if class != b.Meta.Class {
			t.Errorf("bundle %s replayed to class %q, recorded %q", filepath.Base(bdir), class, b.Meta.Class)
		}
	}
	if !sawDecode {
		t.Error("no decode-triggered bundle at the lossy operating point")
	}
}

// TestFleetSessionTraces pins the fleet-mode export: per-session span
// snapshots and Chrome traces land on disk by session index, byte-
// identical for any worker count, and shared collectors are rejected.
func TestFleetSessionTraces(t *testing.T) {
	mkCfgs := func() []Config {
		cfgs := make([]Config, 3)
		for i := range cfgs {
			cfg := DefaultConfig(amppmScheme(t))
			cfg.Seed = uint64(i + 1)
			if i != 1 { // session 1 runs untraced: its files must be skipped
				cfg.Spans = span.NewCollector()
			}
			cfgs[i] = cfg
		}
		return cfgs
	}
	export := func(workers int) map[string][]byte {
		fl, err := RunFleet(mkCfgs(), 0.3, workers)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if err := fl.WriteSessionTraces(dir); err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		files := map[string][]byte{}
		for _, e := range entries {
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = b
		}
		return files
	}

	serial := export(1)
	parallel := export(runtime.NumCPU())
	want := []string{
		"session-000.spans.json", "session-000.trace.json",
		"session-002.spans.json", "session-002.trace.json",
	}
	if len(serial) != len(want) {
		names := make([]string, 0, len(serial))
		for n := range serial {
			names = append(names, n)
		}
		t.Fatalf("exported %v, want %v", names, want)
	}
	for _, name := range want {
		if len(serial[name]) == 0 {
			t.Fatalf("%s missing or empty", name)
		}
		if !bytes.Equal(serial[name], parallel[name]) {
			t.Fatalf("%s differs between worker counts", name)
		}
	}
	if !strings.Contains(string(serial["session-000.trace.json"]), `"ph":"X"`) {
		t.Fatal("trace export has no complete events")
	}

	// One collector across two sessions would interleave spans
	// nondeterministically; RunFleet must reject it.
	cfgs := mkCfgs()
	cfgs[1].Spans = cfgs[0].Spans
	if _, err := RunFleet(cfgs, 0.1, 1); err == nil {
		t.Fatal("shared span collector accepted")
	}
}
