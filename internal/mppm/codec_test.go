package mppm

import (
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestCodecRoundTripExhaustiveSmall(t *testing.T) {
	// For small patterns, check the full encodable range is a bijection.
	for _, p := range []Pattern{{5, 2}, {8, 4}, {10, 3}, {10, 5}, {12, 6}} {
		c := NewCodec(p)
		seen := map[string]bool{}
		for v := uint64(0); v < 1<<uint(c.Bits()); v++ {
			cw, err := c.Encode(v, nil)
			if err != nil {
				t.Fatalf("%v Encode(%d): %v", p, v, err)
			}
			key := cwKey(cw)
			if seen[key] {
				t.Fatalf("%v: codeword for %d already used", p, v)
			}
			seen[key] = true
			ons := 0
			for _, s := range cw {
				if s {
					ons++
				}
			}
			if ons != p.K {
				t.Fatalf("%v Encode(%d): %d ONs, want %d", p, v, ons, p.K)
			}
			got, err := c.Decode(cw)
			if err != nil || got != v {
				t.Fatalf("%v Decode(Encode(%d)) = %d, %v", p, v, got, err)
			}
		}
	}
}

func cwKey(cw []bool) string {
	b := make([]byte, len(cw))
	for i, s := range cw {
		if s {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(nRaw, kRaw uint8, vRaw uint64) bool {
		n := int(nRaw%50) + 2
		k := int(kRaw)%(n-1) + 1
		c := NewCodec(Pattern{n, k})
		if c.Bits() == 0 {
			return true
		}
		v := vRaw % (1 << uint(c.Bits()))
		cw, err := c.Encode(v, nil)
		if err != nil {
			return false
		}
		got, err := c.Decode(cw)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCodecOrderPreserving(t *testing.T) {
	// The combinadic mapping is order-preserving over codewords compared
	// lexicographically with ON < OFF at each slot; simply check that
	// decoding is strictly monotone over sequentially encoded values.
	c := NewCodec(Pattern{12, 5})
	var prev []bool
	for v := uint64(0); v < 1<<uint(c.Bits()); v++ {
		cw, _ := c.Encode(v, nil)
		if prev != nil && !lexLess(prev, cw) {
			t.Fatalf("codewords not in lexicographic order at v=%d", v)
		}
		prev = append(prev[:0], cw...)
	}
}

func lexLess(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] && !b[i] // ON sorts before OFF
		}
	}
	return false
}

func TestCodecRejectsBadValues(t *testing.T) {
	c := NewCodec(Pattern{10, 5})
	if _, err := c.Encode(1<<uint(c.Bits()), nil); err != ErrValueRange {
		t.Fatalf("want ErrValueRange, got %v", err)
	}
	zero := NewCodec(Pattern{10, 0})
	if _, err := zero.Encode(1, nil); err != ErrValueRange {
		t.Fatalf("zero-bit pattern must only encode 0, got %v", err)
	}
	if cw, err := zero.Encode(0, nil); err != nil || len(cw) != 10 {
		t.Fatalf("zero-bit pattern encode: %v %v", cw, err)
	}
}

func TestCodecDetectsCorruption(t *testing.T) {
	c := NewCodec(Pattern{10, 5})
	cw, _ := c.Encode(37, nil)

	short := cw[:9]
	if _, err := c.Decode(short); err != ErrWrongLength {
		t.Fatalf("want ErrWrongLength, got %v", err)
	}

	flipped := append([]bool(nil), cw...)
	flipped[0] = !flipped[0]
	if _, err := c.Decode(flipped); err != ErrWrongWeight {
		t.Fatalf("want ErrWrongWeight, got %v", err)
	}
}

func TestCodecRankOverflowDetected(t *testing.T) {
	// C(10,5)=252, bits=7 so ranks 128..251 are never produced by Encode.
	// The lexicographically largest codeword (all ONs at the end) has rank
	// 251 and must be rejected.
	c := NewCodec(Pattern{10, 5})
	cw := make([]bool, 10)
	for i := 5; i < 10; i++ {
		cw[i] = true
	}
	if _, err := c.Decode(cw); err != ErrRankOverflow {
		t.Fatalf("want ErrRankOverflow, got %v", err)
	}
}

func TestCodecEncodeIntoProvidedBuffer(t *testing.T) {
	c := NewCodec(Pattern{10, 5})
	buf := make([]bool, 10)
	out, err := c.Encode(3, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &buf[0] {
		t.Fatal("Encode should reuse the provided buffer")
	}
	if _, err := c.Encode(3, make([]bool, 9)); err != ErrWrongLength {
		t.Fatalf("want ErrWrongLength, got %v", err)
	}
}

func TestCodecBigRoundTrip(t *testing.T) {
	// N=120 exceeds the uint64 fast path: C(120,60) has ~115 bits.
	p := Pattern{120, 60}
	c := NewCodec(p)
	if c.Fast() {
		t.Fatal("pattern should not be fast")
	}
	if c.Bits() <= 64 {
		t.Fatalf("expected >64 bits, got %d", c.Bits())
	}
	rng := rand.New(rand.NewPCG(1, 2))
	limit := new(big.Int).Lsh(big.NewInt(1), uint(c.Bits()))
	raw := make([]byte, (c.Bits()+15)/8)
	for i := 0; i < 50; i++ {
		for j := range raw {
			raw[j] = byte(rng.Uint64())
		}
		v := new(big.Int).SetBytes(raw)
		v.Mod(v, limit)
		cw, err := c.EncodeBig(v, nil)
		if err != nil {
			t.Fatalf("EncodeBig: %v", err)
		}
		got, err := c.DecodeBig(cw)
		if err != nil || got.Cmp(v) != 0 {
			t.Fatalf("DecodeBig = %v, %v; want %v", got, err, v)
		}
	}
}

func TestCodecBigMatchesFastPath(t *testing.T) {
	// For a fast-capable pattern, the big path must agree with the fast one.
	p := Pattern{18, 9}
	c := NewCodec(p)
	for v := uint64(0); v < 1000; v++ {
		fast, err := c.Encode(v, nil)
		if err != nil {
			t.Fatal(err)
		}
		big1, err := c.EncodeBig(new(big.Int).SetUint64(v), nil)
		if err != nil {
			t.Fatal(err)
		}
		if cwKey(fast) != cwKey(big1) {
			t.Fatalf("fast and big encode differ at %d", v)
		}
		gv, err := c.DecodeBig(big1)
		if err != nil || gv.Uint64() != v {
			t.Fatalf("DecodeBig = %v, %v", gv, err)
		}
	}
}

func TestNewCodecPanicsOnInvalidPattern(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCodec(Pattern{0, 0})
}

func BenchmarkCodecEncodeN20(b *testing.B) {
	c := NewCodec(Pattern{20, 10})
	buf := make([]bool, 20)
	mask := uint64(1)<<uint(c.Bits()) - 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(uint64(i)&mask, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecDecodeN20(b *testing.B) {
	c := NewCodec(Pattern{20, 10})
	cw, _ := c.Encode(12345, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(cw); err != nil {
			b.Fatal(err)
		}
	}
}
