package mppm

import (
	"fmt"
	"math"
)

// Pattern is a symbol pattern S(N, l) as defined in the paper: N time slots
// of which K = l·N are ON. A Pattern identifies the (N, K) pair only; it
// does not fix the positions of the ONs (those carry the data).
type Pattern struct {
	N int // number of time slots in the symbol
	K int // number of ON slots in the symbol
}

// S returns the pattern S(N, l) with K rounded to the nearest slot count.
// It panics if l is outside [0, 1] or N is not positive, as those indicate
// programmer error.
func S(n int, l float64) Pattern {
	if n <= 0 {
		panic(fmt.Sprintf("mppm: invalid symbol length N=%d", n))
	}
	if l < 0 || l > 1 {
		panic(fmt.Sprintf("mppm: dimming level %v outside [0,1]", l))
	}
	k := int(math.Round(l * float64(n)))
	return Pattern{N: n, K: k}
}

// Valid reports whether the pattern is well-formed: N ≥ 1 and 0 ≤ K ≤ N.
func (p Pattern) Valid() bool {
	return p.N >= 1 && p.K >= 0 && p.K <= p.N
}

// DimmingLevel returns l = K/N, the fraction of ON slots (paper Eq. 1).
func (p Pattern) DimmingLevel() float64 {
	return float64(p.K) / float64(p.N)
}

// Bits returns the number of data bits one symbol of this pattern carries,
// floor(log2 C(N,K)) per paper Eq. 2.
func (p Pattern) Bits() int {
	return SymbolBits(p.N, p.K)
}

// NormalizedRate returns bits per slot, Bits()/N. This is the quantity the
// paper plots on the y-axis of Figs. 6 and 9.
func (p Pattern) NormalizedRate() float64 {
	return float64(p.Bits()) / float64(p.N)
}

// Rate returns the achievable data rate in bit/s for the given slot duration
// and symbol error rate, per paper Eq. 2:
//
//	R = floor(log2 C(N,K)) / (N · tslot) · (1 − P_SER)
func (p Pattern) Rate(tslotSeconds, ser float64) float64 {
	if tslotSeconds <= 0 {
		return 0
	}
	return float64(p.Bits()) / (float64(p.N) * tslotSeconds) * (1 - ser)
}

// SER returns the symbol error rate per paper Eq. 3, where p1 is the
// probability of decoding an OFF slot incorrectly and p2 the probability of
// decoding an ON slot incorrectly:
//
//	P_SER = 1 − (1−p1)^(N−K) · (1−p2)^K
func (p Pattern) SER(p1, p2 float64) float64 {
	return SER(p.N, p.K, p1, p2)
}

// SER computes paper Eq. 3 for a symbol with n slots of which k are ON.
func SER(n, k int, p1, p2 float64) float64 {
	if n <= 0 || k < 0 || k > n {
		return 1
	}
	// Compute in log space for numerical robustness at large N.
	logOK := float64(n-k)*math.Log1p(-p1) + float64(k)*math.Log1p(-p2)
	return -math.Expm1(logOK) // 1 - exp(logOK)
}

// String implements fmt.Stringer, e.g. "S(20, 0.50)".
func (p Pattern) String() string {
	return fmt.Sprintf("S(%d, %.3f)", p.N, p.DimmingLevel())
}
