package mppm

import "testing"

// FuzzDecode feeds arbitrary codewords to the combinadic decoder: every
// outcome must be either a clean error or a value that re-encodes to the
// identical codeword (the bijection property under adversarial input).
func FuzzDecode(f *testing.F) {
	f.Add(uint8(10), uint8(5), []byte{0b10101_010, 0b10000000})
	f.Add(uint8(20), uint8(2), []byte{0xFF, 0xFF, 0x00})
	f.Fuzz(func(t *testing.T, nRaw, kRaw uint8, bits []byte) {
		n := int(nRaw)%59 + 2
		k := int(kRaw) % (n + 1)
		c := NewCodec(Pattern{N: n, K: k})
		cw := make([]bool, n)
		for i := 0; i < n && i < len(bits)*8; i++ {
			cw[i] = bits[i/8]>>(7-uint(i%8))&1 == 1
		}
		v, err := c.Decode(cw)
		if err != nil {
			return // rejected input is fine; it must just not panic
		}
		back, err := c.Encode(v, nil)
		if err != nil {
			t.Fatalf("re-encode of decoded value %d failed: %v", v, err)
		}
		for i := range cw {
			if back[i] != cw[i] {
				t.Fatalf("decode/encode not a bijection at slot %d", i)
			}
		}
	})
}

// FuzzEncodeDecodeValue checks the full value range mapping for fuzzed
// patterns.
func FuzzEncodeDecodeValue(f *testing.F) {
	f.Add(uint8(20), uint8(10), uint64(12345))
	f.Fuzz(func(t *testing.T, nRaw, kRaw uint8, vRaw uint64) {
		n := int(nRaw)%59 + 2
		k := int(kRaw)%(n-1) + 1
		c := NewCodec(Pattern{N: n, K: k})
		if c.Bits() == 0 {
			return
		}
		v := vRaw & (1<<uint(c.Bits()) - 1)
		cw, err := c.Encode(v, nil)
		if err != nil {
			t.Fatalf("Encode(%d): %v", v, err)
		}
		got, err := c.Decode(cw)
		if err != nil || got != v {
			t.Fatalf("Decode = %d, %v; want %d", got, err, v)
		}
	})
}
