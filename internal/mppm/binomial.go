// Package mppm implements Multiple Pulse Position Modulation: symbol
// patterns S(N, l), the data-rate and symbol-error-rate models of the
// SmartVLC paper (Eq. 2 and Eq. 3), and the exhaustion-free combinadic
// encoder/decoder of paper Algorithms 1 and 2.
//
// In MPPM a symbol occupies N time slots of which exactly K carry an ON
// pulse; the information is in the positions of the ONs, so one symbol
// carries floor(log2 C(N,K)) bits. The dimming level of the symbol is
// l = K/N.
package mppm

import (
	"math"
	"math/big"
	"math/bits"
	"sync"
)

// maxFastN is the largest N for which every C(N,K) fits in a uint64.
// C(61,30) < 2^63 < C(62,31), and C(62..66, K) overflow only near K=N/2;
// we keep the fast path conservative and exact.
const maxFastN = 61

// MaxStreamN is the largest symbol length N for which Codec.Fast is
// guaranteed, i.e. for which the streaming (uint64) encode/decode path
// works for every K. Larger patterns require the big.Int codec.
const MaxStreamN = maxFastN

var (
	binomOnce sync.Once
	binomMu   sync.Mutex              // guards binomBig only
	binomBig  = map[uint64]*big.Int{} // key: N<<32 | K
	binomFast [maxFastN + 1][]uint64  // Pascal triangle rows 0..maxFastN
)

func buildFast() {
	// One flat backing for the whole triangle keeps the build to two
	// allocations and the rows cache-adjacent.
	flat := make([]uint64, (maxFastN+1)*(maxFastN+2)/2)
	off := 0
	for n := 0; n <= maxFastN; n++ {
		row := flat[off : off+n+1]
		off += n + 1
		row[0], row[n] = 1, 1
		for k := 1; k < n; k++ {
			row[k] = binomFast[n-1][k-1] + binomFast[n-1][k]
		}
		binomFast[n] = row
	}
}

// Binomial returns C(n, k) as a big.Int. The result is shared and must not
// be mutated by the caller. It returns zero for k < 0 or k > n.
func Binomial(n, k int) *big.Int {
	if k < 0 || k > n || n < 0 {
		return big.NewInt(0)
	}
	binomOnce.Do(buildFast)
	if n <= maxFastN {
		return new(big.Int).SetUint64(binomFast[n][k])
	}
	binomMu.Lock()
	defer binomMu.Unlock()
	key := uint64(n)<<32 | uint64(k)
	if v, ok := binomBig[key]; ok {
		return v
	}
	v := new(big.Int).Binomial(int64(n), int64(k))
	binomBig[key] = v
	return v
}

// BinomialU64 returns C(n, k) as a uint64 and true when it fits exactly;
// otherwise it returns 0 and false. This is the hot path used by the codec:
// within the fast triangle it is one slice index, lock-free and alloc-free.
func BinomialU64(n, k int) (uint64, bool) {
	if k < 0 || k > n || n < 0 {
		return 0, true // C = 0 fits
	}
	binomOnce.Do(buildFast)
	if n <= maxFastN {
		return binomFast[n][k], true
	}
	v := Binomial(n, k)
	if v.BitLen() <= 64 {
		return v.Uint64(), true
	}
	return 0, false
}

// Log2Binomial returns log2(C(n,k)) as a float64, accurate enough for rate
// plotting and envelope construction at any N. It returns -Inf for C = 0.
func Log2Binomial(n, k int) float64 {
	if k < 0 || k > n || n < 0 {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	if n <= maxFastN {
		c, _ := BinomialU64(n, k)
		if c < 1<<53 {
			return math.Log2(float64(c))
		}
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x) + 1)
		return v
	}
	return (lg(n) - lg(k) - lg(n-k)) / math.Ln2
}

// SymbolBits returns the exact number of data bits one S(N, K-of-N) symbol
// carries: floor(log2 C(N,K)). It is 0 when the symbol carries no data
// (K = 0 or K = N).
func SymbolBits(n, k int) int {
	if k <= 0 || k >= n {
		return 0
	}
	if n <= maxFastN {
		// Alloc-free fast path: the receiver computes symbol widths on
		// every frame parse, so this must not touch big.Int.
		c, _ := BinomialU64(n, k)
		return bits.Len64(c) - 1 // floor(log2 c) since c >= 1
	}
	c := Binomial(n, k)
	return c.BitLen() - 1
}
