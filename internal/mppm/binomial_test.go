package mppm

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestBinomialSmallValues(t *testing.T) {
	cases := []struct {
		n, k int
		want uint64
	}{
		{0, 0, 1},
		{1, 0, 1},
		{1, 1, 1},
		{5, 2, 10},
		{10, 3, 120},
		{20, 10, 184756},
		{50, 25, 126410606437752},
		{61, 30, 232714176627630544},
	}
	for _, c := range cases {
		got, ok := BinomialU64(c.n, c.k)
		if !ok || got != c.want {
			t.Errorf("BinomialU64(%d,%d) = %d,%v want %d", c.n, c.k, got, ok, c.want)
		}
		if b := Binomial(c.n, c.k); b.Uint64() != c.want {
			t.Errorf("Binomial(%d,%d) = %v want %d", c.n, c.k, b, c.want)
		}
	}
}

func TestBinomialOutOfRange(t *testing.T) {
	for _, c := range [][2]int{{5, -1}, {5, 6}, {-1, 0}} {
		if Binomial(c[0], c[1]).Sign() != 0 {
			t.Errorf("Binomial(%d,%d) should be 0", c[0], c[1])
		}
		if v, ok := BinomialU64(c[0], c[1]); !ok || v != 0 {
			t.Errorf("BinomialU64(%d,%d) = %d,%v want 0,true", c[0], c[1], v, ok)
		}
	}
}

func TestBinomialLargeN(t *testing.T) {
	// C(500, 250) must match math/big's own computation and exceed uint64.
	want := new(big.Int).Binomial(500, 250)
	if got := Binomial(500, 250); got.Cmp(want) != 0 {
		t.Fatalf("Binomial(500,250) mismatch")
	}
	if _, ok := BinomialU64(500, 250); ok {
		t.Fatalf("BinomialU64(500,250) should overflow")
	}
}

func TestBinomialPascalIdentityProperty(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%80) + 2
		k := int(kRaw) % n
		lhs := Binomial(n, k)
		rhs := new(big.Int).Add(Binomial(n-1, k-1), Binomial(n-1, k))
		return lhs.Cmp(rhs) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialSymmetryProperty(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw % 120)
		k := 0
		if n > 0 {
			k = int(kRaw) % (n + 1)
		}
		return Binomial(n, k).Cmp(Binomial(n, n-k)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLog2Binomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{10, 5, math.Log2(252)},
		{20, 10, math.Log2(184756)},
		{20, 2, math.Log2(190)},
	}
	for _, c := range cases {
		got := Log2Binomial(c.n, c.k)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Log2Binomial(%d,%d) = %v want %v", c.n, c.k, got, c.want)
		}
	}
	if got := Log2Binomial(200, 100); math.Abs(got-float64(Binomial(200, 100).BitLen())) > 1.0 {
		t.Errorf("Log2Binomial(200,100) = %v far from BitLen %d", got, Binomial(200, 100).BitLen())
	}
	if !math.IsInf(Log2Binomial(5, 9), -1) {
		t.Errorf("Log2Binomial out of range should be -Inf")
	}
}

func TestSymbolBits(t *testing.T) {
	cases := []struct {
		n, k, want int
	}{
		{20, 10, 17}, // floor(log2 184756) = 17
		{20, 2, 7},   // floor(log2 190) = 7
		{10, 5, 7},   // floor(log2 252) = 7
		{10, 0, 0},
		{10, 10, 0},
		{8, 4, 6}, // C(8,4)=70 -> 6 bits
	}
	for _, c := range cases {
		if got := SymbolBits(c.n, c.k); got != c.want {
			t.Errorf("SymbolBits(%d,%d) = %d want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestSymbolBitsNeverExceedsLog2(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%100) + 1
		k := int(kRaw) % (n + 1)
		bits := SymbolBits(n, k)
		// 2^bits must be <= C(N,K), and 2^(bits+1) > C(N,K).
		c := Binomial(n, k)
		lo := new(big.Int).Lsh(big.NewInt(1), uint(bits))
		hi := new(big.Int).Lsh(big.NewInt(1), uint(bits+1))
		if k <= 0 || k >= n {
			return bits == 0
		}
		return lo.Cmp(c) <= 0 && hi.Cmp(c) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
