package mppm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSConstructor(t *testing.T) {
	p := S(10, 0.2)
	if p.N != 10 || p.K != 2 {
		t.Fatalf("S(10,0.2) = %+v", p)
	}
	if got := p.DimmingLevel(); got != 0.2 {
		t.Fatalf("DimmingLevel = %v", got)
	}
	if s := p.String(); s != "S(10, 0.200)" {
		t.Fatalf("String = %q", s)
	}
}

func TestSPanicsOnBadInput(t *testing.T) {
	for _, f := range []func(){
		func() { S(0, 0.5) },
		func() { S(-3, 0.5) },
		func() { S(10, -0.1) },
		func() { S(10, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPatternValid(t *testing.T) {
	cases := []struct {
		p    Pattern
		want bool
	}{
		{Pattern{10, 5}, true},
		{Pattern{1, 0}, true},
		{Pattern{1, 1}, true},
		{Pattern{0, 0}, false},
		{Pattern{10, 11}, false},
		{Pattern{10, -1}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.want {
			t.Errorf("%+v.Valid() = %v want %v", c.p, got, c.want)
		}
	}
}

// TestSERMatchesPaperFig4 pins Eq. 3 to the paper's parameters: P1=9e-5,
// P2=8e-5 (measured in the paper's experiments). Fig. 4 shows SER growing
// with N, reaching ~1e-2 region at N=120 and ~8.5e-4 at N=10, l=0.5.
func TestSERMatchesPaperFig4(t *testing.T) {
	const p1, p2 = 9e-5, 8e-5
	got := SER(10, 5, p1, p2)
	want := 1 - math.Pow(1-p1, 5)*math.Pow(1-p2, 5)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("SER(10,5) = %v want %v", got, want)
	}
	if math.Abs(got-8.5e-4) > 2e-5 {
		t.Fatalf("SER(10,5) = %v, expected about 8.5e-4", got)
	}
	// Monotone in N at fixed l.
	prev := 0.0
	for _, n := range []int{10, 30, 50, 80, 120} {
		s := SER(n, n/2, p1, p2)
		if s <= prev {
			t.Fatalf("SER not increasing with N: N=%d SER=%v prev=%v", n, s, prev)
		}
		prev = s
	}
}

func TestSERSlopeWithDimming(t *testing.T) {
	// With P1 > P2, symbols with more OFF slots (lower l) have higher SER.
	const p1, p2 = 9e-5, 8e-5
	if SER(30, 3, p1, p2) <= SER(30, 27, p1, p2) {
		t.Fatalf("expected low-l symbol to have higher SER when P1 > P2")
	}
}

func TestSERBounds(t *testing.T) {
	f := func(nRaw, kRaw uint8, p1Raw, p2Raw uint16) bool {
		n := int(nRaw%200) + 1
		k := int(kRaw) % (n + 1)
		p1 := float64(p1Raw) / float64(math.MaxUint16) * 0.01
		p2 := float64(p2Raw) / float64(math.MaxUint16) * 0.01
		s := SER(n, k, p1, p2)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if SER(-1, 0, 1e-4, 1e-4) != 1 || SER(5, 9, 1e-4, 1e-4) != 1 {
		t.Error("invalid shapes should have SER 1")
	}
}

func TestRateEq2(t *testing.T) {
	// Paper's MPPM baseline: N=20, l=0.5, tslot=8µs -> 17 bits / 160µs
	// = 106.25 kbps before SER penalty.
	p := S(20, 0.5)
	got := p.Rate(8e-6, 0)
	if math.Abs(got-106250) > 1e-6 {
		t.Fatalf("Rate = %v want 106250", got)
	}
	// l=0.1: 7 bits / 160µs = 43.75 kbps (paper measures 44.3 incl. their
	// frame accounting).
	p = S(20, 0.1)
	if got := p.Rate(8e-6, 0); math.Abs(got-43750) > 1e-6 {
		t.Fatalf("Rate = %v want 43750", got)
	}
	// SER penalty scales linearly.
	if got := p.Rate(8e-6, 0.5); math.Abs(got-43750*0.5) > 1e-6 {
		t.Fatalf("Rate with SER = %v", got)
	}
	if got := p.Rate(0, 0); got != 0 {
		t.Fatalf("Rate with zero tslot = %v", got)
	}
}

func TestNormalizedRatePeaksAtHalf(t *testing.T) {
	// For fixed N the normalized rate is maximal at K = floor(N/2)
	// (footnote 1 in the paper).
	for _, n := range []int{8, 10, 15, 20, 33, 61} {
		best := -1.0
		for k := 0; k <= n; k++ {
			if r := (Pattern{n, k}).NormalizedRate(); r > best {
				best = r
			}
		}
		// floor(log2) creates ties, so assert K=floor(N/2) attains the max
		// value rather than being the unique argmax.
		if r := (Pattern{n, n / 2}).NormalizedRate(); r != best {
			t.Errorf("N=%d: rate at K=N/2 is %v, max is %v", n, r, best)
		}
	}
}
