package mppm

import (
	"errors"
	"fmt"
	"math/big"
	"sync"
)

// Codec maps data values to MPPM codewords and back for one symbol pattern,
// using the combinatorial-dichotomy method of paper Algorithms 1 and 2.
// Unlike tabulation- or constellation-based mappings it needs no table of
// all C(N,K) codewords: each slot decision costs one binomial lookup, so
// memory stays O(N·K) (the cached binomial rows) instead of O(C(N,K)).
//
// A Codec is safe for concurrent use after construction.
type Codec struct {
	pattern Pattern
	bits    int

	// choose[i][j] = C(i, j) for i ≤ N, j ≤ K.
	fast   [][]uint64 // valid when fastOK
	fastOK bool
	big    [][]*big.Int
}

// Codeword decoding errors.
var (
	// ErrWrongLength reports a codeword whose slot count differs from N.
	ErrWrongLength = errors.New("mppm: codeword length differs from pattern N")
	// ErrWrongWeight reports a codeword whose ON count differs from K; this
	// is how a slot-level detection error usually surfaces.
	ErrWrongWeight = errors.New("mppm: codeword ON count differs from pattern K")
	// ErrRankOverflow reports a codeword that is a valid K-of-N combination
	// but whose rank exceeds the encodable range 2^Bits − 1. Such codewords
	// are never transmitted, so receiving one indicates slot errors.
	ErrRankOverflow = errors.New("mppm: codeword rank outside encodable range")
	// ErrValueRange reports an encode value outside [0, 2^Bits).
	ErrValueRange = errors.New("mppm: value outside encodable range")
)

// codecCache memoizes CodecFor: codecs are immutable after construction
// and the binomial-row tables they precompute are the expensive part of
// building one. Patterns that reach CodecFor come from planning tables,
// so the key space is small.
var codecCache sync.Map // Pattern → *Codec

// CodecFor returns a shared codec for the pattern, building one on first
// use. Like NewCodec it panics on invalid patterns. Safe for concurrent
// use; the returned codec is immutable.
func CodecFor(p Pattern) *Codec {
	if v, ok := codecCache.Load(p); ok {
		return v.(*Codec)
	}
	v, _ := codecCache.LoadOrStore(p, NewCodec(p))
	return v.(*Codec)
}

// NewCodec builds a codec for the pattern. It panics on invalid patterns.
func NewCodec(p Pattern) *Codec {
	if !p.Valid() {
		panic(fmt.Sprintf("mppm: invalid pattern %+v", p))
	}
	c := &Codec{pattern: p, bits: p.Bits()}
	if p.N <= maxFastN {
		// The choose table is (N+1)×(K+1); counting the cells up front
		// lets one flat backing serve every row.
		c.fastOK = true
		c.fast = make([][]uint64, p.N+1)
		flat := make([]uint64, (p.N+1)*(p.K+1))
		for i := 0; i <= p.N; i++ {
			row := flat[i*(p.K+1) : (i+1)*(p.K+1)]
			for j := 0; j <= p.K && j <= i; j++ {
				row[j], _ = BinomialU64(i, j)
			}
			c.fast[i] = row
		}
		return c
	}
	c.big = make([][]*big.Int, p.N+1)
	flat := make([]*big.Int, (p.N+1)*(p.K+1))
	for i := 0; i <= p.N; i++ {
		row := flat[i*(p.K+1) : (i+1)*(p.K+1)]
		for j := 0; j <= p.K; j++ {
			row[j] = Binomial(i, j)
		}
		c.big[i] = row
	}
	return c
}

// Pattern returns the symbol pattern the codec was built for.
func (c *Codec) Pattern() Pattern { return c.pattern }

// Bits returns the number of data bits carried per symbol.
func (c *Codec) Bits() int { return c.bits }

// Fast reports whether the codec can use the uint64 path, i.e. whether
// Encode/Decode (as opposed to EncodeBig/DecodeBig) are usable.
func (c *Codec) Fast() bool { return c.fastOK && c.bits < 64 }

// Encode writes the codeword for value into dst (true = ON slot) and
// returns dst. dst must have length N; if it is nil a fresh slice is
// allocated. Only values in [0, 2^Bits) are encodable.
//
// This is paper Algorithm 1: walking slots from the first, the number of
// completions that put an ON in the current slot is C(remaining−1, onsLeft−1);
// values below that threshold take the ON branch, others subtract it and
// take the OFF branch.
func (c *Codec) Encode(value uint64, dst []bool) ([]bool, error) {
	if !c.Fast() {
		return nil, fmt.Errorf("mppm: pattern %v requires EncodeBig", c.pattern)
	}
	if c.bits == 0 && value != 0 || c.bits > 0 && value >= 1<<uint(c.bits) {
		return nil, ErrValueRange
	}
	n, k := c.pattern.N, c.pattern.K
	if dst == nil {
		dst = make([]bool, n)
	}
	if len(dst) != n {
		return nil, ErrWrongLength
	}
	v := value
	onsLeft := k
	for i := 0; i < n; i++ {
		remaining := n - i - 1
		if onsLeft == 0 {
			dst[i] = false
			continue
		}
		if remaining < onsLeft { // all remaining slots must be ON
			dst[i] = true
			onsLeft--
			continue
		}
		withOn := c.fast[remaining][onsLeft-1]
		if v < withOn {
			dst[i] = true
			onsLeft--
		} else {
			dst[i] = false
			v -= withOn
		}
	}
	return dst, nil
}

// Decode recovers the value from a codeword. It reverses Algorithm 1
// (paper Algorithm 2) and validates the codeword shape, reporting
// ErrWrongLength, ErrWrongWeight or ErrRankOverflow on corruption.
func (c *Codec) Decode(codeword []bool) (uint64, error) {
	if !c.Fast() {
		return 0, fmt.Errorf("mppm: pattern %v requires DecodeBig", c.pattern)
	}
	n, k := c.pattern.N, c.pattern.K
	if len(codeword) != n {
		return 0, ErrWrongLength
	}
	ons := 0
	for _, s := range codeword {
		if s {
			ons++
		}
	}
	if ons != k {
		return 0, ErrWrongWeight
	}
	var v uint64
	onsLeft := k
	for i := 0; i < n && onsLeft > 0; i++ {
		remaining := n - i - 1
		if codeword[i] {
			onsLeft--
			continue
		}
		if remaining >= onsLeft {
			v += c.fast[remaining][onsLeft-1]
		}
	}
	if c.bits < 64 && v >= 1<<uint(c.bits) {
		return 0, ErrRankOverflow
	}
	return v, nil
}

// EncodeBig is Encode for patterns whose rank space exceeds uint64.
// value is not modified.
func (c *Codec) EncodeBig(value *big.Int, dst []bool) ([]bool, error) {
	if value.Sign() < 0 || value.BitLen() > c.bits {
		return nil, ErrValueRange
	}
	if c.Fast() {
		return c.Encode(value.Uint64(), dst)
	}
	n, k := c.pattern.N, c.pattern.K
	if dst == nil {
		dst = make([]bool, n)
	}
	if len(dst) != n {
		return nil, ErrWrongLength
	}
	v := new(big.Int).Set(value)
	onsLeft := k
	for i := 0; i < n; i++ {
		remaining := n - i - 1
		if onsLeft == 0 {
			dst[i] = false
			continue
		}
		if remaining < onsLeft {
			dst[i] = true
			onsLeft--
			continue
		}
		withOn := c.big[remaining][onsLeft-1]
		if v.Cmp(withOn) < 0 {
			dst[i] = true
			onsLeft--
		} else {
			dst[i] = false
			v.Sub(v, withOn)
		}
	}
	return dst, nil
}

// DecodeBig is Decode for patterns whose rank space exceeds uint64.
func (c *Codec) DecodeBig(codeword []bool) (*big.Int, error) {
	if c.Fast() {
		v, err := c.Decode(codeword)
		if err != nil {
			return nil, err
		}
		return new(big.Int).SetUint64(v), nil
	}
	n, k := c.pattern.N, c.pattern.K
	if len(codeword) != n {
		return nil, ErrWrongLength
	}
	ons := 0
	for _, s := range codeword {
		if s {
			ons++
		}
	}
	if ons != k {
		return nil, ErrWrongWeight
	}
	v := new(big.Int)
	onsLeft := k
	for i := 0; i < n && onsLeft > 0; i++ {
		remaining := n - i - 1
		if codeword[i] {
			onsLeft--
			continue
		}
		if remaining >= onsLeft {
			v.Add(v, c.big[remaining][onsLeft-1])
		}
	}
	if v.BitLen() > c.bits {
		return nil, ErrRankOverflow
	}
	return v, nil
}
