// Columnar batch scratch of the PHY hot loop (DESIGN.md §12).
//
// Transmit and Process used to walk their streams one sample at a time,
// deciding, sampling, quantizing and summing inside a single scalar loop.
// The batched pipeline splits each direction into column passes over
// reusable scratch:
//
//   - Transmit phase 1 classifies every sample window (settled-on,
//     settled-off, or exact) into run-length-encoded spans and a lambda
//     column, without touching the rng.
//   - Transmit phase 2 fills the sample column run by run — one
//     Sampler.SampleN block fill per settled run — then quantizes the
//     whole column at once.
//   - Process derives a prefix-sum column and the three-sample window
//     column from it, then decodes frames into per-receiver reusable
//     payload buffers.
//
// All columns live in pooled or receiver-owned scratch so the steady
// state allocates nothing.
package phy

import "smartvlc/internal/frame"

// Window classes of the transmit classification pass.
const (
	txSettledOff = int8(iota) // LED settled on the 0 rail
	txSettledOn               // LED settled on the 1 rail
	txExact                   // window touches a transition: per-segment slew integration
)

// txRun is one run of consecutive same-class sample windows.
type txRun struct {
	n     int32
	class int8
}

// txPlan is the output of the transmit classification pass: the window
// classes as run-length-encoded spans, plus the Poisson mean of every
// exact window in stream order. Pooled via acquireTxPlan/releaseTxPlan.
type txPlan struct {
	runs    []txRun
	lambdas []float64
}

// push appends one window of the given class, merging into the previous
// run when the class repeats.
func (p *txPlan) push(class int8) {
	if n := len(p.runs); n > 0 && p.runs[n-1].class == class {
		p.runs[n-1].n++
		return
	}
	p.runs = append(p.runs, txRun{n: 1, class: class})
}

// Batch is the receiver-owned columnar scratch of Process: the sample
// prefix-sum column, the three-sample window column derived from it, the
// reusable results slice and the per-frame payload buffers the decoded
// bodies land in. It belongs to exactly one Receiver and is recycled on
// every Process call — which is why Process results (and their payloads)
// are only valid until the receiver's next Process call.
type Batch struct {
	// win3[i] = samples[i+1]+samples[i+2]+samples[i+3], i.e. the prefix-
	// sum difference pre[i+4]−pre[i+1] computed as one fused rolling pass.
	win3 []int
	// results is the slice Process returns, reused across calls.
	results []frame.Result
	// payloads holds one reusable backing buffer per decoded frame slot;
	// payloads[k] backs results[k].Payload.
	payloads [][]byte
}

// grownInts returns buf resized to length n, reallocating only when the
// capacity is short.
func grownInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}
