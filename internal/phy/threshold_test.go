package phy

import (
	"testing"

	"smartvlc/internal/frame"
	"smartvlc/internal/optics"
	"smartvlc/internal/photon"
)

// TestNewReceiverWithThresholdClamp checks the explicit-threshold
// constructor floors non-positive thresholds at 1: a threshold of 0 would
// classify every window — even an all-zero one — as ON.
func TestNewReceiverWithThresholdClamp(t *testing.T) {
	factory := func(d [frame.PatternBytes]byte) (frame.PayloadCodec, error) { return nil, nil }
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {-5, 1}, {1, 1}, {7, 7}, {5000, 5000},
	} {
		if got := NewReceiverWithThreshold(tc.in, factory).Threshold(); got != tc.want {
			t.Errorf("NewReceiverWithThreshold(%d).Threshold() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestNewReceiverThresholdMemo checks the channel-keyed threshold memo:
// equal operating points must yield the same threshold as an uncached
// computation, and distinct channels must not collide.
func TestNewReceiverThresholdMemo(t *testing.T) {
	factory := func(d [frame.PatternBytes]byte) (frame.PayloadCodec, error) { return nil, nil }
	compute := func(ch photon.Channel) int {
		w := ch.Scaled(DetectionFraction)
		thr := w.OptimalThreshold()
		if floor := int(0.3*(w.SignalPerSlot+w.AmbientPerSlot) + 0.5); thr < floor {
			thr = floor
		}
		return thr
	}
	for _, op := range []struct {
		d   float64
		lux float64
	}{
		{1.5, 800}, {3.0, 8000}, {3.6, 9700}, {1.5, 800}, // repeat hits the memo
	} {
		ch, err := photon.DefaultLinkBudget().ChannelAt(optics.Aligned(op.d, 0), op.lux)
		if err != nil {
			t.Fatal(err)
		}
		want := compute(ch)
		if got := NewReceiver(ch, factory).Threshold(); got != want {
			t.Errorf("%.1fm/%.0flux: Threshold() = %d, want %d", op.d, op.lux, got, want)
		}
	}
}
