//go:build !race

package phy

// raceEnabled gates the AllocsPerRun tests: under the race detector
// sync.Pool intentionally drops items, so steady-state allocation counts
// are not meaningful there.
const raceEnabled = false
