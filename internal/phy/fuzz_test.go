package phy

import (
	"math/rand/v2"
	"reflect"
	"runtime/debug"
	"testing"

	"smartvlc/internal/frame"
	"smartvlc/internal/optics"
	"smartvlc/internal/photon"
	"smartvlc/internal/scheme"
)

// fuzzOperatingPoint is eqOperatingPoint for any testing.TB, so the fuzz
// harness can share the equivalence tests' robust short link.
func fuzzOperatingPoint(tb testing.TB) (Link, photon.Channel, frame.CodecFactory) {
	tb.Helper()
	ch, err := photon.DefaultLinkBudget().ChannelAt(optics.Aligned(1.5, 0), 800)
	if err != nil {
		tb.Fatal(err)
	}
	sch, err := scheme.NewAMPPM(benchConstraints())
	if err != nil {
		tb.Fatal(err)
	}
	return DefaultLink(ch), ch, sch.Factory()
}

// FuzzBatchedReceiverEquivalence throws arbitrary waveforms at the
// batched receiver and demands bit-identical Results, Stats (including
// the per-error-class counters) and ambient state versus the scalar
// reference implementation. Two stream shapes per input: the fuzz bytes
// driven through the batched transmitter as a slot waveform (so the
// samples look like real — if usually corrupt — air), and the raw bytes
// reinterpreted directly as sample values (pure adversarial garbage).
// Both receivers always see the same sample stream; the receiver
// contract is exact, unlike the transmitter's decode-level one.
func FuzzBatchedReceiverEquivalence(f *testing.F) {
	f.Add(uint64(1), uint16(0), []byte{})
	f.Add(uint64(7), uint16(31000), []byte{0xAA, 0xAA, 0xAA, 0xAA, 0xFF, 0x00})
	f.Add(uint64(42), uint16(65535), []byte{1, 2, 3, 250, 249, 248, 0, 0, 0, 0, 9, 9, 9, 9})
	// A genuine frame so the decode path fuzzes from a valid corpus seed.
	{
		sch, err := scheme.NewAMPPM(benchConstraints())
		if err != nil {
			f.Fatal(err)
		}
		codec, err := sch.CodecFor(0.5)
		if err != nil {
			f.Fatal(err)
		}
		fs, err := frame.Build(codec, []byte("fuzz corpus payload: smartvlc"))
		if err != nil {
			f.Fatal(err)
		}
		packed := make([]byte, (len(fs)+7)/8)
		for i, s := range fs {
			if s {
				packed[i/8] |= 1 << (i % 8)
			}
		}
		f.Add(uint64(99), uint16(4096), packed)
	}

	f.Fuzz(func(t *testing.T, seed uint64, phase uint16, raw []byte) {
		if len(raw) > 4096 {
			raw = raw[:4096]
		}
		link, ch, factory := fuzzOperatingPoint(t)

		// Stream A: fuzz bits as a slot waveform through the batched
		// transmitter (phase swept over the full sample period).
		slots := make([]bool, len(raw)*8)
		for i := range slots {
			slots[i] = raw[i/8]&(1<<(i%8)) != 0
		}
		rng := rand.New(rand.NewPCG(seed, 0xFE))
		link.StartPhase = float64(phase) / 65536
		air := link.Transmit(rng, slots)

		// Stream B: raw bytes as sample values.
		direct := make([]int, len(raw))
		for i, b := range raw {
			direct[i] = int(b)
		}

		for _, samples := range [][]int{air, direct} {
			fastRx := NewReceiver(ch, factory)
			refRx := NewReceiver(ch, factory)
			gotRes, gotStats := fastRx.Process(samples)
			wantRes, wantStats := refRx.referenceProcess(samples)
			if !reflect.DeepEqual(gotStats, wantStats) {
				t.Fatalf("stats diverge: fast %+v ref %+v", gotStats, wantStats)
			}
			if len(gotRes) != len(wantRes) {
				t.Fatalf("%d vs %d results", len(gotRes), len(wantRes))
			}
			for i := range gotRes {
				if !reflect.DeepEqual(gotRes[i], wantRes[i]) {
					t.Fatalf("result %d diverges:\nfast %+v\nref  %+v", i, gotRes[i], wantRes[i])
				}
			}
			fa, fok := fastRx.AmbientWindowCounts()
			ra, rok := refRx.AmbientWindowCounts()
			if fa != ra || fok != rok {
				t.Fatalf("ambient diverges: fast (%v,%v) ref (%v,%v)", fa, fok, ra, rok)
			}
		}
		RecycleSamples(air)
	})
}

// TestTransmitSteadyStateZeroAllocs pins the batched transmitter's
// steady state at zero allocations per frame, for both rng flavors. GC
// is disabled around the measurement so a background cycle cannot strip
// the buffer pools mid-run.
func TestTransmitSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	link, _, _ := fuzzOperatingPoint(t)
	slots := benchSlotsT(t, 0.5, 2, 24)
	rng := rand.New(rand.NewPCG(1, 2))
	pcg := rand.NewPCG(3, 4)

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	// Warm the sampler cache, plan pool and sample buffers.
	link.StartPhase = 0.25
	RecycleSamples(link.Transmit(rng, slots))
	RecycleSamples(link.TransmitPCG(pcg, slots))

	if n := testing.AllocsPerRun(20, func() {
		RecycleSamples(link.Transmit(rng, slots))
	}); n != 0 {
		t.Errorf("Transmit steady state: %v allocs/op", n)
	}
	if n := testing.AllocsPerRun(20, func() {
		RecycleSamples(link.TransmitPCG(pcg, slots))
	}); n != 0 {
		t.Errorf("TransmitPCG steady state: %v allocs/op", n)
	}
}

// TestProcessSteadyStateZeroAllocs pins the batched receiver's steady
// state at zero allocations per Process call once its Batch scratch has
// grown to the stream's size.
func TestProcessSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	link, ch, factory := fuzzOperatingPoint(t)
	slots := benchSlotsT(t, 0.5, 2, 200)
	rng := rand.New(rand.NewPCG(5, 6))
	link.StartPhase = rng.Float64()
	samples := link.Transmit(rng, slots)
	rx := NewReceiver(ch, factory)

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if res, stats := rx.Process(samples); len(res) != 2 || stats.FramesOK != 2 {
		t.Fatalf("warmup decode: %d frames (stats %+v)", len(res), stats)
	}
	if n := testing.AllocsPerRun(20, func() {
		rx.Process(samples)
	}); n != 0 {
		t.Errorf("Process steady state: %v allocs/op", n)
	}
}

// benchSlotsT is benchSlots for plain tests.
func benchSlotsT(t *testing.T, level float64, nFrames, idleGap int) []bool {
	t.Helper()
	sch, err := scheme.NewAMPPM(benchConstraints())
	if err != nil {
		t.Fatal(err)
	}
	codec, err := sch.CodecFor(level)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 128)
	for i := range payload {
		payload[i] = byte(i * 37)
	}
	slots := frame.AppendIdle(nil, codec.Level(), idleGap)
	for f := 0; f < nFrames; f++ {
		fs, err := frame.Build(codec, payload)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, fs...)
		slots = frame.AppendIdle(slots, codec.Level(), idleGap)
	}
	return slots
}
