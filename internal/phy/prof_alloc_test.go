package phy

import (
	"math/rand/v2"
	"runtime/debug"
	"testing"

	"smartvlc/internal/telemetry/prof"
)

// TestProfSteadyStateZeroAllocs pins the stage-profiler hooks on the PHY
// hot path at zero allocations per frame — with the profiler ARMED, not
// just nil: the handles are pre-created per level, so the per-frame cost
// is atomic adds only. The nil path is covered by the existing
// TestTransmitSteadyStateZeroAllocs / TestProcessSteadyStateZeroAllocs
// (Prof defaults to nil there) plus the nil-adder pins in
// internal/telemetry/prof.
func TestProfSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	link, ch, factory := fuzzOperatingPoint(t)
	slots := benchSlotsT(t, 0.5, 2, 200)
	rng := rand.New(rand.NewPCG(5, 6))

	p := prof.New()
	link.Prof = p.Stage("phy.tx", "amppm", "0.50", "")
	rx := NewReceiver(ch, factory)
	rx.SetProf(p.Stage("phy.hunt", "amppm", "0.50", ""), p.Stage("phy.decode", "amppm", "0.50", ""))

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	link.StartPhase = rng.Float64()
	samples := link.Transmit(rng, slots)
	if res, stats := rx.Process(samples); len(res) != 2 || stats.FramesOK != 2 {
		t.Fatalf("warmup decode: %d frames (stats %+v)", len(res), stats)
	}
	if n := testing.AllocsPerRun(20, func() {
		RecycleSamples(link.Transmit(rng, slots))
	}); n != 0 {
		t.Errorf("armed Transmit steady state: %v allocs/op", n)
	}
	if n := testing.AllocsPerRun(20, func() {
		rx.Process(samples)
	}); n != 0 {
		t.Errorf("armed Process steady state: %v allocs/op", n)
	}
	if snap := p.Snapshot(); len(snap.Series) == 0 {
		t.Fatal("armed run recorded no series")
	}
}
