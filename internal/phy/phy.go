// Package phy is the physical layer of the simulated SmartVLC link: it
// turns slot waveforms into photon-count sample streams (transmit side:
// LED slew, propagation, Poisson detection, ADC) and sample streams back
// into parsed frames (receive side: threshold slicing, preamble hunting,
// 4× oversampled slot folding).
//
// The receive design mirrors the prototype: the receiver samples at four
// times the slot rate and integrates three of the four samples of each
// slot, which tolerates the sub-sample phase offset and slow drift caused
// by the independent TX/RX PRU oscillators; absolute alignment is
// recovered from the preamble of every frame.
//
// Both directions run on a sample-domain fast path (see DESIGN.md):
// Transmit skips the per-segment slew integration for windows where the
// LED sits settled on a rail, and Process precomputes all three-sample
// window sums once so every preamble probe, lock refinement and slot fold
// is an O(1) lookup. reference.go keeps the original per-sample
// implementations; equivalence tests pin the fast paths to them.
package phy

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strconv"
	"sync"

	"smartvlc/internal/frame"
	"smartvlc/internal/hw"
	"smartvlc/internal/photon"
	"smartvlc/internal/telemetry/prof"
	"smartvlc/internal/telemetry/span"
	"smartvlc/internal/telemetry/vlog"
)

// Oversample is the RX samples per TX slot (500 kHz / 125 kHz).
const Oversample = 4

// Link is the analog path from LED slots to ADC counts at one operating
// point (fixed geometry and ambient).
type Link struct {
	// TxClock ticks once per slot (nominal 125 kHz).
	TxClock hw.Clock
	// RxClock ticks once per sample (nominal 500 kHz).
	RxClock hw.Clock
	// LED is the luminaire slew model.
	LED hw.LED
	// Channel is the Poisson detection channel.
	Channel photon.Channel
	// ADC quantizes the counts.
	ADC hw.ADC
	// StartPhase offsets the transmitter's slot grid relative to the
	// receiver's sample grid, as a fraction of one sample period [0, 1).
	// The two ends are never phase-aligned in reality; the middle-two-
	// sample integration absorbs it.
	StartPhase float64
	// Metrics, when non-nil, counts fast-path vs exact windows per sample
	// and frames/samples per Transmit. Nil (the default) is a no-op.
	Metrics *TxMetrics
	// Prof, when non-nil, attributes transmit cost (frames, samples,
	// slots) to the owning stage profiler series. Nil is a no-op.
	Prof *prof.Stage
}

// DefaultLink assembles the paper's prototype parameters around a channel.
// TX and RX run from independent oscillators with a small relative error.
func DefaultLink(ch photon.Channel) Link {
	return Link{
		TxClock: hw.Clock{NominalHz: 125e3, OffsetPPM: 8},
		RxClock: hw.Clock{NominalHz: 500e3, OffsetPPM: -8},
		LED:     hw.DefaultLED(),
		Channel: ch,
		ADC:     hw.DefaultADC(),
	}
}

// Transmit converts a slot waveform into the RX's photon-count samples.
// It models the LED's finite rise/fall, the clock offset between the two
// ends, and per-sample Poisson detection noise. The returned slice has
// one entry per RX sample covering the waveform's duration; pass it to
// RecycleSamples when done to avoid reallocating it for the next frame.
//
// Transmit runs as a batched columnar pipeline (DESIGN.md §12). Phase 1
// classifies every sample window without touching the rng: windows fully
// inside a run of equal-valued slots with the LED settled on its rail are
// settled (their Poisson mean is a constant of the link), windows that
// touch a value transition take the exact per-segment slew integration,
// which yields their mean deterministically. The classes come out as
// run-length-encoded spans plus a lambda column in pooled scratch.
// Phase 2 fills the sample column run by run — one cached-sampler block
// fill (Sampler.SampleN) per settled run, one Poisson draw per exact
// window — and quantizes each run while it is cache-hot. Exact windows
// draw bit-identically to the scalar reference path; settled runs use
// the samplers' inverse-CDF block fill, which consumes fewer uniforms
// per variate, so the stream differs from the reference while the
// per-window distributions — and therefore every decode — do not
// (reference.go remains the equivalence oracle at decode level).
func (l Link) Transmit(rng *rand.Rand, slots []bool) []int {
	plan, nSamples := l.classify(slots)
	onSampler, offSampler := l.settledSamplers()
	out := newSampleBuf(nSamples)[:nSamples]
	idx, li := 0, 0
	for _, run := range plan.runs {
		chunk := out[idx : idx+int(run.n)]
		switch run.class {
		case txSettledOn:
			onSampler.SampleN(rng, chunk)
		case txSettledOff:
			offSampler.SampleN(rng, chunk)
		default:
			for k := range chunk {
				chunk[k] = photon.Sample(rng, plan.lambdas[li])
				li++
			}
		}
		// Quantize per run while the chunk is still cache-hot.
		l.ADC.QuantizeAll(chunk)
		idx += len(chunk)
	}
	l.finishTransmit(plan, nSamples, len(slots))
	return out
}

// TransmitPCG is Transmit drawing from a concrete PCG stream: the fill
// pass uses the photon package's PCG sampler twins, whose uniforms inline
// instead of passing through the rand.Source interface. The output is
// bit-identical to Transmit over a *rand.Rand wrapping the same
// generator; callers that own their PCG (the session loops, Deliver)
// take this entry point.
func (l Link) TransmitPCG(pcg *rand.PCG, slots []bool) []int {
	plan, nSamples := l.classify(slots)
	onSampler, offSampler := l.settledSamplers()
	out := newSampleBuf(nSamples)[:nSamples]
	idx, li := 0, 0
	for _, run := range plan.runs {
		chunk := out[idx : idx+int(run.n)]
		switch run.class {
		case txSettledOn:
			onSampler.SampleNPCG(pcg, chunk)
		case txSettledOff:
			offSampler.SampleNPCG(pcg, chunk)
		default:
			for k := range chunk {
				chunk[k] = photon.SamplePCG(pcg, plan.lambdas[li])
				li++
			}
		}
		l.ADC.QuantizeAll(chunk)
		idx += len(chunk)
	}
	l.finishTransmit(plan, nSamples, len(slots))
	return out
}

// settledSamplers returns the cached block samplers for the two rail
// means of this operating point.
func (l Link) settledSamplers() (on, off *photon.Sampler) {
	fracWin := l.RxClock.TickSeconds() / l.TxClock.TickSeconds()
	return photon.SamplerFor(l.Channel.MeanFor(1, fracWin)),
		photon.SamplerFor(l.Channel.MeanFor(0, fracWin))
}

// finishTransmit records the per-Transmit metrics and stage costs and
// recycles the plan.
func (l Link) finishTransmit(plan *txPlan, nSamples, nSlots int) {
	l.Metrics.onWindows(nSamples-len(plan.lambdas), len(plan.lambdas))
	l.Metrics.onTransmit(nSamples)
	l.Prof.Ops(1)
	l.Prof.Samples(int64(nSamples))
	l.Prof.Slots(int64(nSlots))
	releaseTxPlan(plan)
}

// classify is transmit phase 1: it walks the sample windows without
// touching the rng and returns the run-length-encoded window classes
// plus the exact-window means (see Transmit's doc comment).
func (l Link) classify(slots []bool) (*txPlan, int) {
	tslot := l.TxClock.TickSeconds()
	tsamp := l.RxClock.TickSeconds()
	t0 := l.StartPhase * tsamp // slot grid shift relative to sample grid
	total := float64(len(slots))*tslot + t0
	// Cover the full waveform plus a short tail during which the LED
	// holds its final state — otherwise the last slot of the last frame
	// loses its integration window to sample-count truncation.
	nSamples := int(math.Ceil(total/tsamp)) + 8

	plan := acquireTxPlan()
	intensity := 0.0 // LED optical output at the time cursor
	if len(slots) > 0 && slots[0] {
		intensity = 1 // assume the stream starts from a settled state
	}
	// Slot cursor: slotIdx is the slot active at the time cursor; its end
	// is slotEnd = t0 + (slotIdx+1)·tslot, advanced monotonically so
	// float rounding can never re-assign a window remainder to a stale
	// slot.
	slotIdx := 0
	slotEnd := t0 + tslot
	cursor := 0.0
	for j := 0; j < nSamples; j++ {
		winEnd := cursor + tsamp
		// Advance the slot cursor to the slot active at the window start
		// (the per-segment path below re-checks this and is then a no-op).
		for slotEnd <= cursor+1e-15 && slotIdx < len(slots) {
			slotIdx++
			slotEnd += tslot
		}
		if on, settled := settledWindow(slots, slotIdx, slotEnd, winEnd, tslot, intensity); settled {
			if on {
				plan.push(txSettledOn)
			} else {
				plan.push(txSettledOff)
			}
			cursor = winEnd
			continue
		}
		lambda := 0.0
		t := cursor
		for t < winEnd-1e-15 {
			for slotEnd <= t+1e-15 && slotIdx < len(slots) {
				slotIdx++
				slotEnd += tslot
			}
			segEnd := slotEnd
			if slotIdx >= len(slots) {
				segEnd = winEnd // past the waveform: LED holds its state
			}
			if segEnd > winEnd {
				segEnd = winEnd
			}
			dt := segEnd - t
			target := 0.0
			idx := slotIdx
			if idx >= len(slots) {
				idx = len(slots) - 1
			}
			if idx >= 0 && slots[idx] {
				target = 1
			}
			next := l.LED.Step(intensity, target, dt)
			avg := (intensity + next) / 2
			lambda += l.Channel.MeanFor(avg, dt/tslot)
			intensity = next
			t = segEnd
		}
		plan.lambdas = append(plan.lambdas, lambda)
		plan.push(txExact)
		cursor = winEnd
	}
	return plan, nSamples
}

// settledWindow reports whether the sample window ending at winEnd can
// take the constant-mean fast path: the LED must sit exactly on a rail
// (intensity 0 or 1) and every slot the window touches — under the same
// epsilon bookkeeping as the per-segment integration — must hold that
// same value. slotIdx/slotEnd identify the slot active at the window
// start; past the waveform the LED holds the last slot's state.
func settledWindow(slots []bool, slotIdx int, slotEnd, winEnd, tslot, intensity float64) (on, settled bool) {
	if intensity != 0 && intensity != 1 {
		return false, false
	}
	on = intensity == 1
	idx, end := slotIdx, slotEnd
	for {
		i := idx
		if i >= len(slots) {
			i = len(slots) - 1
		}
		v := i >= 0 && slots[i]
		if v != on {
			return on, false
		}
		if idx >= len(slots) || end >= winEnd-1e-15 {
			return on, true
		}
		idx++
		end += tslot
	}
}

// DetectionFraction is the share of each slot the receiver integrates:
// samples 1..3 of the 4 per slot. Skipping sample 0 makes the window
// immune to any sub-sample phase offset in [0, 1) between the PRU clocks
// while keeping 75 % of the photons.
const DetectionFraction = 0.75

// Receiver folds sample streams into slots and parses frames. It also
// estimates the ambient light level from the OFF windows it sees — the
// paper's receiver senses ambient light and reports it to the transmitter
// over the Wi-Fi uplink (Fig. 2), and the LED's own emission must be
// excluded from that estimate, which the OFF windows do for free.
//
// A Receiver carries decode state (the ambient EMA and scratch buffers)
// and must not be shared between goroutines; build one per session.
type Receiver struct {
	factory frame.CodecFactory
	// thr is the detection threshold for the three-sample window.
	thr int

	// Metrics, when non-nil, counts locks, frame outcomes and decode
	// error classes. Nil (the default) is a no-op.
	Metrics *RxMetrics

	// spans, when non-nil, receives phy/hunt and phy/decode spans for
	// each Process call, timed on the sample clock set by SetSpanWindow.
	spans  *span.Buffer
	spanAt float64 // sim time of samples[0]
	spanDt float64 // seconds per sample

	// logs, when non-nil, receives structured log records for hunt and
	// decode outcomes, timed on its own sample clock set by SetLogWindow
	// (logs arm independently of spans).
	logs  *vlog.Buffer
	logAt float64 // sim time of samples[0]
	logDt float64 // seconds per sample

	// profHunt/profDecode, when non-nil, attribute receive cost to the
	// owning stage profiler series: hunt counts Process invocations,
	// samples scanned and scratch growth; decode counts parse attempts,
	// slots consumed, payload bytes and decode-scratch growth. Nil (the
	// default) is a no-op. Set via SetProf.
	profHunt   *prof.Stage
	profDecode *prof.Stage

	// ambient estimate state: an EMA over the per-block medians of
	// OFF-classified window sums.
	ambientEMA float64
	ambientSet bool

	// slotScratch is reused across frames by foldSlots; frame.Parse does
	// not retain the slot slice, so one buffer per receiver suffices.
	slotScratch []bool

	// batch holds the columnar Process scratch: prefix-sum and window
	// columns, the reusable results slice and the payload buffers the
	// decoded frames land in. See batch.go for the recycling contract.
	batch Batch

	// vWin3/vSlot/vPayloads are the VIRTUAL scratch high-water marks that
	// drive the prof alloc counters. A fresh receiver allocates exactly
	// when a column outgrows its scratch (grownInts and foldSlots size
	// capacity exactly, the payload spine grows one slot at a time), so
	// "needed size exceeded the high-water" reproduces the fresh alloc
	// pattern bit-for-bit even when the receiver is rented warm from an
	// arena and the real buffers already fit. Reset zeroes them so a
	// rented receiver's prof snapshot stays byte-identical to a
	// NewReceiver-per-rebuild run.
	vWin3     int
	vSlot     int
	vPayloads int
}

// thrCache memoizes the tuned detection threshold per channel operating
// point: NewReceiver is called per frame by System.Deliver and per
// channel rebuild by the session loop, and the Poisson tail scan behind
// OptimalThreshold is far more expensive than a map hit. A plain map
// under RWMutex (not sync.Map) spares the hot path from boxing the
// Channel key into an interface on every lookup.
var (
	thrCacheMu sync.RWMutex
	thrCache   = map[photon.Channel]int{}
)

const thrCacheMax = 1 << 12

// thresholdFor returns the tuned detection threshold for a channel
// operating point, memoized per channel. The Poisson-optimal threshold
// is floored at 30 % of the ON-window mean: in dark rooms the optimal
// value drops so low that LED slew leakage at slot boundaries (up to
// ~17 % of one ON sample) would flip OFF windows.
func thresholdFor(ch photon.Channel) int {
	thrCacheMu.RLock()
	thr, ok := thrCache[ch]
	thrCacheMu.RUnlock()
	if ok {
		thrCacheHits.Inc()
		return thr
	}
	thrCacheMisses.Inc()
	w := ch.Scaled(DetectionFraction)
	thr = w.OptimalThreshold()
	if floor := int(0.3*(w.SignalPerSlot+w.AmbientPerSlot) + 0.5); thr < floor {
		thr = floor
	}
	thrCacheMu.Lock()
	if len(thrCache) < thrCacheMax {
		thrCache[ch] = thr
	}
	thrCacheMu.Unlock()
	return thr
}

// NewReceiver builds a receiver for a channel operating point. The
// detection threshold is tuned to the channel (the prototype calibrates
// it from the measured signal and ambient levels); see thresholdFor.
func NewReceiver(ch photon.Channel, factory frame.CodecFactory) *Receiver {
	return &Receiver{factory: factory, thr: thresholdFor(ch)}
}

// Reset reconfigures the receiver for a channel operating point exactly
// as NewReceiver would, clearing all decode state (ambient estimate,
// metrics, span window) while keeping the scratch columns — the pooled-
// receiver fast path behind AcquireReceiver.
func (r *Receiver) Reset(ch photon.Channel, factory frame.CodecFactory) {
	r.factory = factory
	r.thr = thresholdFor(ch)
	r.Metrics = nil
	r.spans = nil
	r.spanAt, r.spanDt = 0, 0
	r.logs = nil
	r.logAt, r.logDt = 0, 0
	r.profHunt, r.profDecode = nil, nil
	r.ambientEMA, r.ambientSet = 0, false
	r.vWin3, r.vSlot, r.vPayloads = 0, 0, 0
}

// SetProf attaches stage profiler series for subsequent Process calls:
// hunt receives the scan cost, decode the parse cost. Pass nils to
// detach.
func (r *Receiver) SetProf(hunt, decode *prof.Stage) {
	r.profHunt = hunt
	r.profDecode = decode
}

// Threshold returns the three-sample detection threshold in counts.
func (r *Receiver) Threshold() int { return r.thr }

// slotAt looks up the integrated detection window of slot s (frame phase
// given by offset, in samples) and compares with the threshold. win3 is
// the precomputed window-sum array: win3[i] = samples[i+1..i+3].
func slotAt(win3 []int, offset, s, thr int) (bool, bool) {
	base := offset + s*Oversample
	if base < 0 || base >= len(win3) {
		return false, false
	}
	return win3[base] >= thr, true
}

// preambleAt reports whether a frame preamble starts at sample offset.
func (r *Receiver) preambleAt(win3 []int, offset int) bool {
	for s := 0; s < frame.PreambleSlots; s++ {
		v, ok := slotAt(win3, offset, s, r.thr)
		if !ok || v != (s%2 == 0) {
			return false
		}
	}
	return true
}

// preambleScore is the alternating-preamble correlation at a sample
// offset: ON-slot window energy minus OFF-slot window energy. It peaks
// when the integration windows sit fully inside their slots.
func preambleScore(win3 []int, offset int) int {
	score := 0
	for s := 0; s < frame.PreambleSlots; s++ {
		base := offset + s*Oversample
		if base < 0 || base >= len(win3) {
			return math.MinInt
		}
		if s%2 == 0 {
			score += win3[base]
		} else {
			score -= win3[base]
		}
	}
	return score
}

// lockOffset refines a passing preamble position by maximizing the
// correlation over nearby sample offsets. This is the per-frame clock
// recovery: the TX and RX PRU oscillators drift slowly, so each frame's
// preamble re-centers the slot phase before the payload is folded.
func lockOffset(win3 []int, i int) int {
	best, bestScore := i, math.MinInt
	for cand := i - 1; cand <= i+2; cand++ {
		if s := preambleScore(win3, cand); s > bestScore {
			best, bestScore = cand, s
		}
	}
	return best
}

// retrackEvery is the slot interval of the decision-directed phase
// tracker in foldSlots. At the worst PRU drift (±25 ppm each) the phase
// slips one sample every ~5000 slots, so re-tracking every 256 slots sees
// at most ~0.05 samples of movement per evaluation.
const retrackEvery = 256

// phaseScore rates slot alignment at a sample offset over a span of
// slots: well-aligned windows sit confidently far from the threshold,
// misaligned ones collapse toward it. This is a decision-directed
// early-late gate that needs no knowledge of the slot contents.
func (r *Receiver) phaseScore(win3 []int, offset, fromSlot, nSlots int) int {
	score := 0
	for s := fromSlot; s < fromSlot+nSlots; s++ {
		base := offset + s*Oversample
		if base < 0 || base >= len(win3) {
			break
		}
		d := win3[base] - r.thr
		if d < 0 {
			d = -d
		}
		score += d
	}
	return score
}

// foldSlots converts window sums starting at offset into at most maxSlots
// slot decisions, re-tracking the slot phase periodically so the TX/RX
// oscillator drift cannot walk the integration window out of its slot
// within long frames. The returned slice aliases the receiver's scratch
// buffer and is valid until the next foldSlots call.
func (r *Receiver) foldSlots(win3 []int, offset, maxSlots int) []bool {
	if maxSlots > r.vSlot {
		r.profDecode.Allocs(1)
		r.vSlot = maxSlots
	}
	if cap(r.slotScratch) < maxSlots {
		r.slotScratch = make([]bool, 0, maxSlots)
	}
	out := r.slotScratch[:0]
	cur := offset
	for s := 0; s < maxSlots; s++ {
		if s > 0 && s%retrackEvery == 0 {
			// Shift by ±1 sample only on a clear improvement; ties keep
			// the current phase (hysteresis against noise).
			const span = 32
			best, bestScore := 0, r.phaseScore(win3, cur, s, span)
			for _, shift := range []int{-1, 1} {
				if sc := r.phaseScore(win3, cur+shift, s, span); sc > bestScore+bestScore/16 {
					best, bestScore = shift, sc
				}
			}
			cur += best
		}
		v, ok := slotAt(win3, cur, s, r.thr)
		if !ok {
			break
		}
		out = append(out, v)
	}
	r.slotScratch = out
	return out
}

// Stats aggregates receiver-side outcomes.
type Stats struct {
	// FramesOK counts frames that passed all checks.
	FramesOK int
	// FramesBad counts preamble hits that failed header, sync, length or
	// CRC validation (noise hits and genuinely corrupt frames).
	FramesBad int
	// SymbolErrors sums constituent symbol anomalies across good frames.
	SymbolErrors int
	// Errors tallies parse failures by error text.
	Errors map[string]int
}

func (s *Stats) count(err error) {
	if s.Errors == nil {
		s.Errors = map[string]int{}
	}
	s.Errors[err.Error()]++
}

// SetSpanWindow attaches a span buffer for subsequent Process calls and
// sets the clock that maps sample index i to simulation time
// baseSeconds + i·sampleSeconds. Process records one "phy/hunt" span per
// accepted preamble lock (the scan interval that found it) and one
// "phy/decode" span per parse attempt, carrying the decode error class
// (or "ok") as an attribute. Pass nil to detach. The buffer is filled on
// the caller's goroutine; concurrent shards each keep their own and
// splice in shard order for deterministic traces.
func (r *Receiver) SetSpanWindow(b *span.Buffer, baseSeconds, sampleSeconds float64) {
	r.spans = b
	r.spanAt = baseSeconds
	r.spanDt = sampleSeconds
}

// spanTime maps a sample index onto the span clock.
func (r *Receiver) spanTime(sample int) float64 {
	return r.spanAt + float64(sample)*r.spanDt
}

// SetLogWindow attaches a vlog shard buffer for subsequent Process calls
// and sets the clock that maps sample index i to simulation time
// baseSeconds + i·sampleSeconds. Process records a Debug line per
// accepted preamble lock and per clean decode, and a Warn line per
// failed parse carrying the decode error class — the narrative twin of
// the phy/hunt and phy/decode spans, armable independently of them.
// Pass nil to detach. The buffer is filled on the caller's goroutine;
// concurrent shards each keep their own and splice in shard order for
// deterministic logs.
func (r *Receiver) SetLogWindow(b *vlog.Buffer, baseSeconds, sampleSeconds float64) {
	r.logs = b
	r.logAt = baseSeconds
	r.logDt = sampleSeconds
}

// logTime maps a sample index onto the log clock.
func (r *Receiver) logTime(sample int) float64 {
	return r.logAt + float64(sample)*r.logDt
}

// AmbientWindowFraction is the slot share of the ambient-measurement
// window (samples 1 and 2 only). Narrower than the detection window, it
// stays inside its slot for phase errors up to a full sample in either
// direction, so slow intra-frame clock drift cannot leak neighbouring
// slots' light into the ambient estimate.
const AmbientWindowFraction = 0.5

// AmbientWindowCounts returns the receiver's running estimate of the
// ambient contribution to one measurement window (AmbientWindowFraction
// of a slot), in counts. ok is false until enough OFF windows were seen.
func (r *Receiver) AmbientWindowCounts() (counts float64, ok bool) {
	return r.ambientEMA, r.ambientSet
}

// updateAmbientFromFrame refines the ambient estimate using a frame that
// passed its CRC: the decoded slot values identify the OFF slots whose
// predecessor was also OFF, i.e. measurement windows guaranteed free of
// LED slew leakage. Averaging those is an unbiased ambient measurement no
// matter the dimming level.
func (r *Receiver) updateAmbientFromFrame(samples []int, offset int, slots []bool, consumed int) {
	sum, n := 0.0, 0
	for s := 1; s < consumed && s < len(slots); s++ {
		if slots[s] || slots[s-1] {
			continue
		}
		base := offset + s*Oversample
		if base+2 >= len(samples) {
			break
		}
		sum += float64(samples[base+1] + samples[base+2])
		n++
	}
	if n < 4 {
		return
	}
	est := sum / float64(n)
	if !r.ambientSet {
		r.ambientEMA, r.ambientSet = est, true
		return
	}
	// Slow EMA: the estimate feeds the dimming controller, whose step
	// size is small, so photon noise must be averaged well below it.
	r.ambientEMA += 0.05 * (est - r.ambientEMA)
}

// Process scans a sample stream, parses every frame it can find, and
// returns the payloads in order.
//
// It runs column-wise over the receiver's Batch scratch (DESIGN.md §12):
// a prefix-sum column over the samples, then the three-sample window
// column win3[i] = samples[i+1..i+3] = pre[i+4]−pre[i+1], so the preamble
// hunt, the lock refinement, the slot folding and the ambient estimate
// all reduce to O(1) column lookups instead of re-summing samples at
// every one of the ~500k offsets a simulated second contains. Decoded
// frame bodies land in per-receiver reusable payload buffers.
//
// The returned results — including every Payload — alias the receiver's
// Batch and stay valid only until the next Process call on this
// receiver. Callers that keep payloads across calls must copy them.
func (r *Receiver) Process(samples []int) ([]frame.Result, Stats) {
	results := r.batch.results[:0]
	var stats Stats
	r.profHunt.Ops(1)
	r.profHunt.Samples(int64(len(samples)))
	var win3 []int
	if n := len(samples) - 3; n > 0 {
		// win3[i] is the prefix-sum difference pre[i+4]−pre[i+1], computed
		// as one fused rolling pass so the column costs a single sweep
		// over the samples instead of materializing pre separately.
		if n > r.vWin3 {
			r.profHunt.Allocs(1)
			r.vWin3 = n
		}
		r.batch.win3 = grownInts(r.batch.win3, n)
		win3 = r.batch.win3
		w := samples[1] + samples[2] + samples[3]
		win3[0] = w
		for i := 1; i < n; i++ {
			w += samples[i+3] - samples[i]
			win3[i] = w
		}
	}
	i := 0
	limit := len(samples) - frame.PreambleSlots*Oversample
	thr := r.thr
	huntFrom := 0 // sample offset where the current hunt began
	for i < limit {
		// Skip-scan: the preamble starts with an ON slot, so any offset
		// whose slot-0 window sits below threshold cannot match. This tight
		// loop covers the dominant idle stretches at one compare per offset
		// instead of a preambleAt call. (limit <= len(win3) always:
		// PreambleSlots*Oversample > 3.)
		for i < limit && win3[i] < thr {
			i++
		}
		if i >= limit {
			break
		}
		if !r.preambleAt(win3, i) {
			i++
			continue
		}
		locked := lockOffset(win3, i)
		r.Metrics.onLock()
		if r.spans != nil {
			r.spans.Record(span.Span{
				Name: "phy/hunt", Seq: -1,
				Start: r.spanTime(huntFrom), End: r.spanTime(locked),
				Attrs: []span.Attr{{Key: "offset", Value: strconv.Itoa(locked)}},
			})
		}
		if r.logs.Enabled(vlog.Debug) {
			r.logs.Record(vlog.Record{
				At: r.logTime(locked), Level: vlog.Debug, Stage: "phy/hunt",
				Msg: "preamble locked", Seq: -1,
				Attrs: []vlog.Attr{{Key: "offset", Value: strconv.Itoa(locked)}},
			})
		}
		maxSlots := (len(samples) - locked) / Oversample
		slots := r.foldSlots(win3, locked, maxSlots)
		// Decode the frame body into the payload buffer reserved for this
		// result slot, growing the batch when a stream carries more frames
		// than any before it.
		k := len(results)
		if k == r.vPayloads {
			r.profDecode.Allocs(1)
			r.vPayloads++
		}
		if k == len(r.batch.payloads) {
			r.batch.payloads = append(r.batch.payloads, nil)
		}
		r.profDecode.Ops(1)
		res, pbuf, err := frame.ParseInto(slots, r.factory, r.batch.payloads[k])
		r.batch.payloads[k] = pbuf
		if err != nil {
			stats.FramesBad++
			stats.count(err)
			r.Metrics.onFrameBad(err)
			if r.spans != nil {
				r.spans.Record(span.Span{
					Name: "phy/decode", Seq: -1,
					Start: r.spanTime(locked),
					End:   r.spanTime(locked + frame.PreambleSlots*Oversample),
					Attrs: []span.Attr{{Key: "class", Value: ClassifyDecodeError(err)}},
				})
			}
			if r.logs.Enabled(vlog.Warn) {
				r.logs.Record(vlog.Record{
					At: r.logTime(locked), Level: vlog.Warn, Stage: "phy/decode",
					Msg: err.Error(), Seq: -1,
					Attrs: []vlog.Attr{{Key: "class", Value: ClassifyDecodeError(err)}},
				})
			}
			i++ // resume hunting just past this false/failed lock
			huntFrom = i
			continue
		}
		stats.FramesOK++
		stats.SymbolErrors += res.SymbolErrors
		r.Metrics.onFrameOK(res.SymbolErrors)
		r.profDecode.Slots(int64(res.SlotsConsumed))
		r.profDecode.Bytes(int64(len(res.Payload)))
		if r.spans != nil {
			r.spans.Record(span.Span{
				Name: "phy/decode", Seq: -1,
				Start: r.spanTime(locked),
				End:   r.spanTime(locked + res.SlotsConsumed*Oversample),
				Attrs: []span.Attr{
					{Key: "class", Value: "ok"},
					{Key: "slots", Value: strconv.Itoa(res.SlotsConsumed)},
					{Key: "sym_errs", Value: strconv.Itoa(res.SymbolErrors)},
				},
			})
		}
		if r.logs.Enabled(vlog.Debug) {
			r.logs.Record(vlog.Record{
				At: r.logTime(locked), Level: vlog.Debug, Stage: "phy/decode",
				Msg: "frame decoded", Seq: -1,
				Attrs: []vlog.Attr{
					{Key: "slots", Value: strconv.Itoa(res.SlotsConsumed)},
					{Key: "sym_errs", Value: strconv.Itoa(res.SymbolErrors)},
				},
			})
		}
		results = append(results, res)
		r.updateAmbientFromFrame(samples, locked, slots, res.SlotsConsumed)
		// Jump to just before the expected next preamble: one slot of
		// slack lets the next lock absorb accumulated clock drift in
		// either direction.
		next := locked + res.SlotsConsumed*Oversample - Oversample
		if next <= i {
			next = i + 1
		}
		i = next
		huntFrom = i
	}
	r.batch.results = results
	return results, stats
}

// String implements fmt.Stringer for quick experiment logs.
func (s Stats) String() string {
	return fmt.Sprintf("ok=%d bad=%d symErrs=%d", s.FramesOK, s.FramesBad, s.SymbolErrors)
}

// NewReceiverWithThreshold builds a receiver with an explicitly chosen
// detection threshold instead of deriving one from a channel model —
// used by offline tools decoding recorded sample streams whose channel
// parameters are unknown. Thresholds below 1 are clamped to 1 (a zero or
// negative threshold would classify every window, even an all-zero one,
// as ON).
func NewReceiverWithThreshold(threshold int, factory frame.CodecFactory) *Receiver {
	if threshold < 1 {
		threshold = 1
	}
	return &Receiver{factory: factory, thr: threshold}
}
