package phy

import (
	"math"
	"math/rand/v2"

	"smartvlc/internal/frame"
	"smartvlc/internal/photon"
)

// This file preserves the original per-sample implementations of the PHY
// hot path, exactly as they were before the sample-domain fast path was
// introduced. They are not used by production code; the equivalence tests
// run fixed-seed sessions through both pipelines and assert that the fast
// path decodes byte-identical payloads (and, for the receiver, produces
// bit-identical Results and Stats on any stream). Keep them in sync with
// nothing — they are the golden semantics.

// referenceTransmit is the original Link.Transmit: per-segment slew
// integration for every sample window, no settled-slot shortcut, no
// cached samplers, no buffer pooling.
func (l Link) referenceTransmit(rng *rand.Rand, slots []bool) []int {
	tslot := l.TxClock.TickSeconds()
	tsamp := l.RxClock.TickSeconds()
	t0 := l.StartPhase * tsamp // slot grid shift relative to sample grid
	total := float64(len(slots))*tslot + t0
	nSamples := int(math.Ceil(total/tsamp)) + 8
	out := make([]int, 0, nSamples)

	intensity := 0.0
	if len(slots) > 0 && slots[0] {
		intensity = 1
	}
	slotIdx := 0
	slotEnd := t0 + tslot
	cursor := 0.0
	for j := 0; j < nSamples; j++ {
		winEnd := cursor + tsamp
		lambda := 0.0
		t := cursor
		for t < winEnd-1e-15 {
			for slotEnd <= t+1e-15 && slotIdx < len(slots) {
				slotIdx++
				slotEnd += tslot
			}
			segEnd := slotEnd
			if slotIdx >= len(slots) {
				segEnd = winEnd
			}
			if segEnd > winEnd {
				segEnd = winEnd
			}
			dt := segEnd - t
			target := 0.0
			idx := slotIdx
			if idx >= len(slots) {
				idx = len(slots) - 1
			}
			if idx >= 0 && slots[idx] {
				target = 1
			}
			next := l.LED.Step(intensity, target, dt)
			avg := (intensity + next) / 2
			lambda += l.Channel.MeanFor(avg, dt/tslot)
			intensity = next
			t = segEnd
		}
		count := photon.Sample(rng, lambda)
		out = append(out, l.ADC.Quantize(count))
		cursor = winEnd
	}
	return out
}

// refSlotAt is the original slotAt: it re-sums the three detection
// samples on every probe.
func refSlotAt(samples []int, offset, s, thr int) (bool, bool) {
	base := offset + s*Oversample
	if base+3 >= len(samples) {
		return false, false
	}
	return samples[base+1]+samples[base+2]+samples[base+3] >= thr, true
}

func (r *Receiver) refPreambleAt(samples []int, offset int) bool {
	for s := 0; s < frame.PreambleSlots; s++ {
		v, ok := refSlotAt(samples, offset, s, r.thr)
		if !ok || v != (s%2 == 0) {
			return false
		}
	}
	return true
}

func refPreambleScore(samples []int, offset int) int {
	score := 0
	for s := 0; s < frame.PreambleSlots; s++ {
		base := offset + s*Oversample
		if base < 0 || base+3 >= len(samples) {
			return math.MinInt
		}
		w := samples[base+1] + samples[base+2] + samples[base+3]
		if s%2 == 0 {
			score += w
		} else {
			score -= w
		}
	}
	return score
}

func refLockOffset(samples []int, i int) int {
	best, bestScore := i, math.MinInt
	for cand := i - 1; cand <= i+2; cand++ {
		if s := refPreambleScore(samples, cand); s > bestScore {
			best, bestScore = cand, s
		}
	}
	return best
}

func (r *Receiver) refPhaseScore(samples []int, offset, fromSlot, nSlots int) int {
	score := 0
	for s := fromSlot; s < fromSlot+nSlots; s++ {
		base := offset + s*Oversample
		if base < 0 || base+3 >= len(samples) {
			break
		}
		w := samples[base+1] + samples[base+2] + samples[base+3]
		d := w - r.thr
		if d < 0 {
			d = -d
		}
		score += d
	}
	return score
}

func (r *Receiver) refFoldSlots(samples []int, offset, maxSlots int) []bool {
	out := make([]bool, 0, maxSlots)
	cur := offset
	for s := 0; s < maxSlots; s++ {
		if s > 0 && s%retrackEvery == 0 {
			const span = 32
			best, bestScore := 0, r.refPhaseScore(samples, cur, s, span)
			for _, shift := range []int{-1, 1} {
				if sc := r.refPhaseScore(samples, cur+shift, s, span); sc > bestScore+bestScore/16 {
					best, bestScore = shift, sc
				}
			}
			cur += best
		}
		v, ok := refSlotAt(samples, cur, s, r.thr)
		if !ok {
			break
		}
		out = append(out, v)
	}
	return out
}

// referenceProcess is the original Receiver.Process: every probe re-sums
// its detection window from the raw samples.
func (r *Receiver) referenceProcess(samples []int) ([]frame.Result, Stats) {
	var results []frame.Result
	var stats Stats
	i := 0
	for i+frame.PreambleSlots*Oversample < len(samples) {
		if !r.refPreambleAt(samples, i) {
			i++
			continue
		}
		locked := refLockOffset(samples, i)
		maxSlots := (len(samples) - locked) / Oversample
		slots := r.refFoldSlots(samples, locked, maxSlots)
		res, err := frame.Parse(slots, r.factory)
		if err != nil {
			stats.FramesBad++
			stats.count(err)
			i++
			continue
		}
		stats.FramesOK++
		stats.SymbolErrors += res.SymbolErrors
		results = append(results, res)
		r.updateAmbientFromFrame(samples, locked, slots, res.SlotsConsumed)
		next := locked + res.SlotsConsumed*Oversample - Oversample
		if next <= i {
			next = i + 1
		}
		i = next
	}
	return results, stats
}
