package phy

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"

	"smartvlc/internal/amppm"
	"smartvlc/internal/frame"
	"smartvlc/internal/optics"
	"smartvlc/internal/photon"
	"smartvlc/internal/scheme"
)

func channelAt(t testing.TB, d float64, lux float64) photon.Channel {
	t.Helper()
	ch, err := photon.DefaultLinkBudget().ChannelAt(optics.Aligned(d, 0), lux)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func amppmScheme(t testing.TB) *scheme.AMPPM {
	t.Helper()
	s, err := scheme.NewAMPPM(amppm.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTransmitSampleCount(t *testing.T) {
	l := DefaultLink(channelAt(t, 3, 5000))
	rng := rand.New(rand.NewPCG(1, 2))
	slots := make([]bool, 100)
	samples := l.Transmit(rng, slots)
	// 4 samples per slot plus the short hold tail.
	if len(samples) < 400 || len(samples) > 412 {
		t.Fatalf("samples = %d", len(samples))
	}
}

func TestTransmitSignalLevels(t *testing.T) {
	ch := channelAt(t, 3, 5000)
	l := DefaultLink(ch)
	rng := rand.New(rand.NewPCG(3, 4))
	// Long ON run then long OFF run.
	slots := make([]bool, 2000)
	for i := 0; i < 1000; i++ {
		slots[i] = true
	}
	samples := l.Transmit(rng, slots)
	onMean := meanOf(samples[100:3900])
	offMean := meanOf(samples[4100 : len(samples)-10])
	wantOn := (ch.SignalPerSlot + ch.AmbientPerSlot) / 4
	wantOff := ch.AmbientPerSlot / 4
	if math.Abs(onMean-wantOn) > wantOn*0.1 {
		t.Fatalf("ON sample mean %v want %v", onMean, wantOn)
	}
	if math.Abs(offMean-wantOff) > wantOff*0.2+0.5 {
		t.Fatalf("OFF sample mean %v want %v", offMean, wantOff)
	}
}

func meanOf(xs []int) float64 {
	s := 0.0
	for _, x := range xs {
		s += float64(x)
	}
	return s / float64(len(xs))
}

func TestLEDSlewSoftensTransitions(t *testing.T) {
	// With a huge slew the waveform never reaches full intensity on
	// alternating slots; the mean of a 1010 pattern stays near half of an
	// ON run's mean either way, but the peak is reduced.
	ch := photon.Channel{SignalPerSlot: 10000, AmbientPerSlot: 0}
	slow := Link{
		TxClock: DefaultLink(ch).TxClock,
		RxClock: DefaultLink(ch).RxClock,
		LED:     DefaultLink(ch).LED,
		Channel: ch,
	}
	slow.LED.RiseSeconds = 8e-6 // a full slot to rise
	slow.LED.FallSeconds = 8e-6
	rng := rand.New(rand.NewPCG(5, 6))
	slots := make([]bool, 400)
	for i := range slots {
		slots[i] = i%2 == 0
	}
	samples := slow.Transmit(rng, slots)

	instant := slow
	instant.LED.RiseSeconds, instant.LED.FallSeconds = 0, 0
	rng2 := rand.New(rand.NewPCG(5, 6))
	samplesInstant := instant.Transmit(rng2, slots)

	// With alternating slots a slot-long slew turns the square wave into a
	// triangle: the mean stays at 0.5 but the per-slot modulation depth
	// collapses — exactly the signal distortion that made the paper settle
	// on tslot = 8 µs.
	if d := depthOf(samples); d > 0.5 {
		t.Fatalf("slewed modulation depth %v, expected crushed", d)
	}
	if d := depthOf(samplesInstant); d < 0.8 {
		t.Fatalf("instant modulation depth %v, expected near 1", d)
	}
}

// depthOf computes (max−min)/(max+min) over per-slot detection windows,
// skipping the settled first slots and the hold tail.
func depthOf(samples []int) float64 {
	minW, maxW := math.MaxInt32, 0
	for s := 2; s*4+3 < len(samples)-12; s++ {
		w := samples[s*4+1] + samples[s*4+2] + samples[s*4+3]
		if w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	}
	if maxW+minW == 0 {
		return 0
	}
	return float64(maxW-minW) / float64(maxW+minW)
}

func endToEnd(t *testing.T, s scheme.Scheme, level float64, d float64, lux float64, payloads [][]byte) ([]frame.Result, Stats) {
	t.Helper()
	ch := channelAt(t, d, lux)
	link := DefaultLink(ch)
	link.StartPhase = 0.41
	rng := rand.New(rand.NewPCG(77, uint64(level*1e6)))

	codec, err := s.CodecFor(level)
	if err != nil {
		t.Fatal(err)
	}
	var slots []bool
	slots = frame.AppendIdle(slots, codec.Level(), 300)
	for _, p := range payloads {
		fs, err := frame.Build(codec, p)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, fs...)
		slots = frame.AppendIdle(slots, codec.Level(), 137)
	}
	samples := link.Transmit(rng, slots)
	rx := NewReceiver(ch, s.Factory())
	return rx.Process(samples)
}

func TestEndToEndAMPPM(t *testing.T) {
	s := amppmScheme(t)
	rng := rand.New(rand.NewPCG(8, 8))
	var payloads [][]byte
	for i := 0; i < 5; i++ {
		p := make([]byte, 128)
		for j := range p {
			p[j] = byte(rng.Uint64())
		}
		payloads = append(payloads, p)
	}
	for _, level := range []float64{0.1, 0.5, 0.9} {
		results, stats := endToEnd(t, s, level, 3.0, 5000, payloads)
		if len(results) != len(payloads) {
			t.Fatalf("level %v: got %d frames want %d (stats %v)", level, len(results), len(payloads), stats)
		}
		for i, r := range results {
			if !bytes.Equal(r.Payload, payloads[i]) {
				t.Fatalf("level %v frame %d: payload mismatch", level, i)
			}
		}
	}
}

func TestEndToEndAllSchemes(t *testing.T) {
	schemes := []scheme.Scheme{amppmScheme(t), mustMPPM(t), scheme.NewOOKCT(), scheme.NewVPPM()}
	payloads := [][]byte{[]byte("the quick brown fox jumps over the lazy dog 0123456789")}
	for _, s := range schemes {
		results, stats := endToEnd(t, s, 0.3, 2.0, 3000, payloads)
		if len(results) != 1 || !bytes.Equal(results[0].Payload, payloads[0]) {
			t.Fatalf("%s: results %d stats %v", s.Name(), len(results), stats)
		}
	}
}

func mustMPPM(t *testing.T) scheme.Scheme {
	t.Helper()
	m, err := scheme.NewMPPM(20)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEndToEndBeyondRangeFails(t *testing.T) {
	// At 5 m (past the 3.6 m cliff) essentially no frame survives.
	s := amppmScheme(t)
	payloads := [][]byte{make([]byte, 128), make([]byte, 128)}
	results, _ := endToEnd(t, s, 0.5, 5.0, 9700, payloads)
	if len(results) != 0 {
		t.Fatalf("frames decoded at 5 m: %d", len(results))
	}
}

func TestEndToEndWorstCase36m(t *testing.T) {
	// The paper's worst case: 3.6 m, bright ambient. Most frames must
	// still pass (P_SER ≈ 5e-3 per symbol ⇒ ~90% frame success for
	// 128-byte payloads).
	s := amppmScheme(t)
	var payloads [][]byte
	for i := 0; i < 10; i++ {
		payloads = append(payloads, bytes.Repeat([]byte{byte(i)}, 128))
	}
	results, stats := endToEnd(t, s, 0.5, 3.6, 9700, payloads)
	if len(results) < 6 {
		t.Fatalf("only %d/10 frames at 3.6 m (stats %v)", len(results), stats)
	}
}

func TestReceiverIgnoresPureNoise(t *testing.T) {
	ch := channelAt(t, 3, 8000)
	link := DefaultLink(ch)
	rng := rand.New(rand.NewPCG(123, 5))
	// All-idle stream: no frames to find.
	slots := frame.AppendIdle(nil, 0.5, 20000)
	samples := link.Transmit(rng, slots)
	rx := NewReceiver(ch, amppmScheme(t).Factory())
	results, stats := rx.Process(samples)
	if len(results) != 0 {
		t.Fatalf("decoded %d frames from idle filler", len(results))
	}
	if stats.FramesOK != 0 {
		t.Fatalf("stats %v", stats)
	}
}

func TestReceiverThresholdSeparation(t *testing.T) {
	ch := channelAt(t, 3, 5000)
	rx := NewReceiver(ch, amppmScheme(t).Factory())
	thr := rx.Threshold()
	halfSig := (ch.SignalPerSlot + ch.AmbientPerSlot) / 2
	halfAmb := ch.AmbientPerSlot / 2
	if float64(thr) <= halfAmb || float64(thr) >= halfSig {
		t.Fatalf("threshold %d outside (%v, %v)", thr, halfAmb, halfSig)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{FramesOK: 3, FramesBad: 1}
	if s.String() != "ok=3 bad=1 symErrs=0" {
		t.Fatalf("String = %q", s.String())
	}
}

// TestAmbientEstimation verifies the receiver's OFF-window ambient
// estimator (the source of the Wi-Fi ambient reports in the paper's
// architecture) across dimming levels and illuminance ranges.
func TestAmbientEstimation(t *testing.T) {
	s := amppmScheme(t)
	budget := photon.DefaultLinkBudget()
	for _, lux := range []float64{50, 1000, 8000} {
		for _, level := range []float64{0.1, 0.5, 0.9} {
			codec, err := s.CodecFor(level)
			if err != nil {
				t.Fatal(err)
			}
			var burst []bool
			for i := 0; i < 10; i++ {
				fs, err := frame.Build(codec, make([]byte, 128))
				if err != nil {
					t.Fatal(err)
				}
				burst = append(burst, fs...)
				burst = frame.AppendIdle(burst, level, 24)
			}
			ch, err := budget.ChannelAt(optics.Aligned(3, 0), lux)
			if err != nil {
				t.Fatal(err)
			}
			link := DefaultLink(ch)
			rng := rand.New(rand.NewPCG(uint64(lux), uint64(level*100)))
			link.StartPhase = rng.Float64()
			samples := link.Transmit(rng, burst)
			rx := NewReceiver(ch, s.Factory())
			rx.Process(samples)
			counts, ok := rx.AmbientWindowCounts()
			if !ok {
				t.Fatalf("lux %v level %v: no estimate", lux, level)
			}
			amb := counts/AmbientWindowFraction - budget.DarkCounts
			est := amb / budget.AmbientCountsPerLux
			// At very dark ambient the estimator is photon-starved (a
			// fraction of a count per window), so accept a small absolute
			// error floor alongside the relative bound.
			absErr := math.Abs(est - lux)
			if absErr/lux > 0.20 && absErr > 20 {
				t.Errorf("lux %v level %v: estimate %v (err %.0f%%)", lux, level, est, absErr/lux*100)
			}
		}
	}
}
