package phy

import (
	"math/rand/v2"
	"testing"

	"smartvlc/internal/amppm"
	"smartvlc/internal/frame"
	"smartvlc/internal/optics"
	"smartvlc/internal/photon"
	"smartvlc/internal/scheme"
)

func benchConstraints() amppm.Constraints { return amppm.DefaultConstraints() }

// benchLink returns the paper's 3 m / 8000 lux operating point.
func benchLink(b *testing.B) (Link, photon.Channel, frame.CodecFactory) {
	b.Helper()
	ch, err := photon.DefaultLinkBudget().ChannelAt(optics.Aligned(3.0, 0), 8000)
	if err != nil {
		b.Fatal(err)
	}
	sch, err := scheme.NewAMPPM(benchConstraints())
	if err != nil {
		b.Fatal(err)
	}
	return DefaultLink(ch), ch, sch.Factory()
}

// benchSlots builds a realistic air waveform: nFrames 128-byte frames at
// the given dimming level, separated by idle filler, with a leading and
// trailing idle stretch so the receiver benchmark also pays the preamble
// hunt over signal-free air.
func benchSlots(b *testing.B, level float64, nFrames, idleGap int) []bool {
	b.Helper()
	sch, err := scheme.NewAMPPM(benchConstraints())
	if err != nil {
		b.Fatal(err)
	}
	codec, err := sch.CodecFor(level)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 128)
	for i := range payload {
		payload[i] = byte(i * 37)
	}
	slots := frame.AppendIdle(nil, codec.Level(), idleGap)
	for f := 0; f < nFrames; f++ {
		fs, err := frame.Build(codec, payload)
		if err != nil {
			b.Fatal(err)
		}
		slots = append(slots, fs...)
		slots = frame.AppendIdle(slots, codec.Level(), idleGap)
	}
	return slots
}

// BenchmarkPHYTransmit measures the transmit side alone: LED slew, clock
// offset and Poisson detection for a multi-frame waveform.
func BenchmarkPHYTransmit(b *testing.B) {
	link, _, _ := benchLink(b)
	slots := benchSlots(b, 0.5, 4, 24)
	rng := rand.New(rand.NewPCG(1, 2))
	b.SetBytes(int64(len(slots)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		link.StartPhase = rng.Float64()
		out := link.Transmit(rng, slots)
		RecycleSamples(out)
	}
}

// BenchmarkReceiverProcess measures the receive side alone: preamble hunt,
// per-frame clock recovery, slot folding and frame parsing over a stream
// of frames separated by idle air.
func BenchmarkReceiverProcess(b *testing.B) {
	link, ch, factory := benchLink(b)
	slots := benchSlots(b, 0.5, 4, 600)
	rng := rand.New(rand.NewPCG(3, 4))
	link.StartPhase = rng.Float64()
	samples := link.Transmit(rng, slots)
	rx := NewReceiver(ch, factory)
	b.SetBytes(int64(len(samples)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, stats := rx.Process(samples)
		if len(results) != 4 || stats.FramesOK != 4 {
			b.Fatalf("decoded %d frames (stats %v)", len(results), stats)
		}
	}
}

// BenchmarkReceiverHunt measures the preamble hunt over signal-free air:
// the receiver listening to ambient light only, the cost every idle
// listening window pays at each of its ~500k sample offsets per second.
func BenchmarkReceiverHunt(b *testing.B) {
	link, ch, factory := benchLink(b)
	slots := make([]bool, 20000) // dark air: ambient photons only
	rng := rand.New(rand.NewPCG(5, 6))
	samples := link.Transmit(rng, slots)
	rx := NewReceiver(ch, factory)
	b.SetBytes(int64(len(samples)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, _ := rx.Process(samples)
		if len(results) != 0 {
			b.Fatal("found frames in noise")
		}
	}
}
