package phy

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"testing"

	"smartvlc/internal/frame"
	"smartvlc/internal/optics"
	"smartvlc/internal/photon"
	"smartvlc/internal/scheme"
)

// eqOperatingPoint is a robust short link (high SNR) so decode outcomes
// are deterministic per seed and insensitive to platform float quirks.
func eqOperatingPoint(t *testing.T) (Link, photon.Channel, frame.CodecFactory, *scheme.AMPPM) {
	t.Helper()
	ch, err := photon.DefaultLinkBudget().ChannelAt(optics.Aligned(1.5, 0), 800)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := scheme.NewAMPPM(benchConstraints())
	if err != nil {
		t.Fatal(err)
	}
	return DefaultLink(ch), ch, sch.Factory(), sch
}

func eqFrameStream(t *testing.T, sch *scheme.AMPPM, level float64, nFrames, idleGap int, seed uint64) []bool {
	t.Helper()
	codec, err := sch.CodecFor(level)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(seed, 0xF00D))
	slots := frame.AppendIdle(nil, codec.Level(), idleGap)
	for f := 0; f < nFrames; f++ {
		payload := make([]byte, 96)
		for i := range payload {
			payload[i] = byte(rng.Uint64())
		}
		fs, err := frame.Build(codec, payload)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, fs...)
		slots = frame.AppendIdle(slots, codec.Level(), idleGap)
	}
	return slots
}

// TestProcessMatchesReference pins the window-sum receiver to the original
// per-sample implementation: the fast path is pure integer arithmetic over
// the same sums, so Results and Stats must match bit for bit — on clean
// streams, noisy streams and arbitrary sample garbage alike.
func TestProcessMatchesReference(t *testing.T) {
	link, ch, factory, sch := eqOperatingPoint(t)

	type stream struct {
		name    string
		samples []int
	}
	var streams []stream

	for _, level := range []float64{0.3, 0.5, 0.72} {
		slots := eqFrameStream(t, sch, level, 3, 80, uint64(level*1000))
		rng := rand.New(rand.NewPCG(uint64(level*64), 11))
		link.StartPhase = rng.Float64()
		streams = append(streams, stream{"clean-frames", link.referenceTransmit(rng, slots)})
	}
	// Signal-free air: the hunt path only.
	rng := rand.New(rand.NewPCG(77, 78))
	streams = append(streams, stream{"dark-air", link.referenceTransmit(rng, make([]bool, 6000))})
	// Arbitrary garbage, including values that straddle the threshold and
	// tease partial preambles.
	garbage := make([]int, 40000)
	for i := range garbage {
		garbage[i] = int(rng.Uint64() % 64)
	}
	streams = append(streams, stream{"garbage", garbage})
	// Degenerate lengths around the preamble-window bound.
	streams = append(streams, stream{"empty", nil}, stream{"tiny", []int{5, 9, 2}})

	for _, s := range streams {
		fastRx := NewReceiver(ch, factory)
		refRx := NewReceiver(ch, factory)
		gotRes, gotStats := fastRx.Process(s.samples)
		wantRes, wantStats := refRx.referenceProcess(s.samples)
		if !reflect.DeepEqual(gotRes, wantRes) {
			t.Fatalf("%s: results diverge:\nfast %+v\nref  %+v", s.name, gotRes, wantRes)
		}
		if !reflect.DeepEqual(gotStats, wantStats) {
			t.Fatalf("%s: stats diverge: fast %+v ref %+v", s.name, gotStats, wantStats)
		}
		if fa, fok := fastRx.AmbientWindowCounts(); true {
			ra, rok := refRx.AmbientWindowCounts()
			if fa != ra || fok != rok {
				t.Fatalf("%s: ambient estimate diverges: fast (%v,%v) ref (%v,%v)", s.name, fa, fok, ra, rok)
			}
		}
	}
}

// TestTransmitDecodeMatchesReference is the end-to-end equivalence guard:
// a fixed-seed session pushed through the settled-slot transmitter must
// decode byte-identical payloads to the same session pushed through the
// original per-segment transmitter. The fast path's cached lambda can
// differ from the reference's accumulated one by float ulps, so the
// contract is decode-level, at an operating point with SNR headroom.
func TestTransmitDecodeMatchesReference(t *testing.T) {
	link, ch, factory, sch := eqOperatingPoint(t)

	for _, level := range []float64{0.25, 0.5, 0.8} {
		for seed := uint64(1); seed <= 3; seed++ {
			slots := eqFrameStream(t, sch, level, 4, 120, seed*13)

			fastRng := rand.New(rand.NewPCG(seed, 0xAB))
			refRng := rand.New(rand.NewPCG(seed, 0xAB))
			link.StartPhase = fastRng.Float64()
			fastSamples := link.Transmit(fastRng, slots)
			link.StartPhase = refRng.Float64()
			refSamples := link.referenceTransmit(refRng, slots)

			if len(fastSamples) != len(refSamples) {
				t.Fatalf("level %v seed %d: sample count %d vs %d", level, seed, len(fastSamples), len(refSamples))
			}

			fastRx := NewReceiver(ch, factory)
			refRx := NewReceiver(ch, factory)
			fastRes, fastStats := fastRx.Process(fastSamples)
			refRes, refStats := refRx.referenceProcess(refSamples)
			RecycleSamples(fastSamples)

			if fastStats.FramesOK != 4 || refStats.FramesOK != 4 {
				t.Fatalf("level %v seed %d: decode loss (fast %v, ref %v)", level, seed, fastStats, refStats)
			}
			if len(fastRes) != len(refRes) {
				t.Fatalf("level %v seed %d: %d vs %d frames", level, seed, len(fastRes), len(refRes))
			}
			for i := range fastRes {
				if !bytes.Equal(fastRes[i].Payload, refRes[i].Payload) {
					t.Fatalf("level %v seed %d frame %d: payloads differ", level, seed, i)
				}
			}
		}
	}
}

// TestSettledWindow pins the fast-path gate itself: it must fire exactly
// when the LED sits on a rail and every slot the window touches holds that
// rail's value, including the hold-state past the end of the waveform.
func TestSettledWindow(t *testing.T) {
	const tslot = 8e-6
	const winEnd = 3 * tslot // window spanning slots 0..2 from t=0

	cases := []struct {
		name       string
		slots      []bool
		slotIdx    int
		slotEnd    float64
		intensity  float64
		wantOn     bool
		wantSettle bool
	}{
		{"all-on", []bool{true, true, true, true}, 0, tslot, 1, true, true},
		{"all-off", []bool{false, false, false, false}, 0, tslot, 0, false, true},
		{"mid-slew", []bool{true, true, true, true}, 0, tslot, 0.4, false, false},
		{"transition", []bool{true, true, false, true}, 0, tslot, 1, true, false},
		{"wrong-rail", []bool{false, false, false}, 0, tslot, 1, true, false},
		{"hold-past-end", []bool{true, true}, 0, tslot, 1, true, true},
		{"empty-stream", nil, 0, tslot, 0, false, true},
	}
	for _, c := range cases {
		on, settled := settledWindow(c.slots, c.slotIdx, c.slotEnd, winEnd, tslot, c.intensity)
		if settled != c.wantSettle || (settled && on != c.wantOn) {
			t.Errorf("%s: settledWindow = (%v, %v), want (%v, %v)", c.name, on, settled, c.wantOn, c.wantSettle)
		}
	}
}
