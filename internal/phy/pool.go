package phy

import (
	"sync"

	"smartvlc/internal/frame"
	"smartvlc/internal/photon"
)

// The PHY recycles its large per-frame scratch slices — most importantly
// the RX sample stream a Transmit produces — through sync.Pools. One
// 0.25 s simulated point moves ~500k samples through the pipeline, and
// without pooling every frame allocates fresh megabyte-class slices that
// the GC must then chase.
//
// A sync.Pool stores interface values, and putting a raw []int in one
// boxes the three-word slice header on every Put — one small heap
// allocation per recycled buffer, which is exactly what the zero-alloc
// steady state must not pay. The pools therefore store *[]int: storing a
// pointer in an interface is allocation-free, and the spare pointer
// cells themselves ride a second pool so the Get/Put cycle reuses them
// too.

var samplePool sync.Pool // *[]int holding a recycled buffer
var cellPool sync.Pool   // *[]int spare cells with no buffer attached

// newSampleBuf returns a zero-length sample buffer with at least the given
// capacity, reusing a recycled one when available.
func newSampleBuf(capacity int) []int {
	if v := samplePool.Get(); v != nil {
		p := v.(*[]int)
		buf := *p
		*p = nil
		cellPool.Put(p)
		if cap(buf) >= capacity {
			return buf[:0]
		}
	}
	return make([]int, 0, capacity)
}

// RecycleSamples returns a sample stream obtained from Link.Transmit to
// the PHY's buffer pool. Callers that are done with the samples (after
// Receiver.Process) should recycle them so steady-state simulation stops
// allocating; passing a slice not obtained from Transmit is also fine.
// The caller must not touch the slice afterwards.
func RecycleSamples(samples []int) {
	if cap(samples) == 0 {
		return
	}
	p, _ := cellPool.Get().(*[]int)
	if p == nil {
		p = new([]int)
	}
	*p = samples[:0]
	samplePool.Put(p)
}

// txPlanPool recycles the classification columns of the batched Transmit
// (see batch.go); pooled as typed pointers for the same no-boxing reason.
var txPlanPool sync.Pool // *txPlan

func acquireTxPlan() *txPlan {
	p, _ := txPlanPool.Get().(*txPlan)
	if p == nil {
		p = &txPlan{}
	}
	p.runs = p.runs[:0]
	p.lambdas = p.lambdas[:0]
	return p
}

func releaseTxPlan(p *txPlan) { txPlanPool.Put(p) }

// receiverPool recycles Receivers together with their Batch columns, so
// per-call paths like System.Deliver can run a fully warmed receiver
// without allocating. AcquireReceiver resets all decode state; the
// scratch capacity is what survives.
var receiverPool sync.Pool // *Receiver

// AcquireReceiver returns a pooled receiver reset for the channel, as
// NewReceiver would configure it. Release it when done with the receiver
// AND its last Process results (results alias the receiver's batch).
func AcquireReceiver(ch photon.Channel, factory frame.CodecFactory) *Receiver {
	r, _ := receiverPool.Get().(*Receiver)
	if r == nil {
		r = &Receiver{}
	}
	r.Reset(ch, factory)
	return r
}

// Release returns the receiver to the pool. The caller must be done with
// every slice the receiver handed out: Process results, their payloads
// and foldSlots scratch all alias buffers the next acquirer will reuse.
func (r *Receiver) Release() {
	receiverPool.Put(r)
}
