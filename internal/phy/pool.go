package phy

import "sync"

// The PHY recycles its two large per-frame scratch slices — the RX sample
// stream a Transmit produces and the window-sum array Process derives from
// it — through sync.Pools. One 0.25 s simulated point moves ~500k samples
// through each, and without pooling every frame allocates fresh
// megabyte-class slices that the GC must then chase.

var samplePool sync.Pool // of []int, len 0

// newSampleBuf returns a zero-length sample buffer with at least the given
// capacity, reusing a recycled one when available.
func newSampleBuf(capacity int) []int {
	if v := samplePool.Get(); v != nil {
		buf := v.([]int)
		if cap(buf) >= capacity {
			return buf[:0]
		}
	}
	return make([]int, 0, capacity)
}

// RecycleSamples returns a sample stream obtained from Link.Transmit to
// the PHY's buffer pool. Callers that are done with the samples (after
// Receiver.Process) should recycle them so steady-state simulation stops
// allocating; passing a slice not obtained from Transmit is also fine.
// The caller must not touch the slice afterwards.
func RecycleSamples(samples []int) {
	if cap(samples) == 0 {
		return
	}
	samplePool.Put(samples[:0])
}

var win3Pool sync.Pool // of []int, len 0

// newWin3Buf returns a zero-length window-sum buffer with at least the
// given capacity.
func newWin3Buf(capacity int) []int {
	if v := win3Pool.Get(); v != nil {
		buf := v.([]int)
		if cap(buf) >= capacity {
			return buf[:0]
		}
	}
	return make([]int, 0, capacity)
}

func recycleWin3(buf []int) {
	if cap(buf) == 0 {
		return
	}
	win3Pool.Put(buf[:0])
}
