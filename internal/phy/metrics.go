package phy

import (
	"errors"

	"smartvlc/internal/frame"
	"smartvlc/internal/telemetry"
)

// TxMetrics instruments Link.Transmit. A nil *TxMetrics (the default) is a
// no-op, so the per-sample fast-path accounting costs one nil check when
// telemetry is off. Handles are created once per session; the hot path
// performs only atomic adds.
type TxMetrics struct {
	// SettledWindows counts sample windows served by the settled-slot fast
	// path (cached per-state sampler, no slew integration).
	SettledWindows *telemetry.Counter
	// ExactWindows counts sample windows that took the per-segment slew
	// integration (the "ODE path").
	ExactWindows *telemetry.Counter
	// Frames counts Transmit calls; Samples counts emitted RX samples.
	Frames  *telemetry.Counter
	Samples *telemetry.Counter
}

// NewTxMetrics builds the transmit-side instrument handles on a registry.
// Returns nil on a nil registry — the no-op default.
func NewTxMetrics(r *telemetry.Registry) *TxMetrics {
	if r == nil {
		return nil
	}
	r.Help("phy_tx_windows_total", "Sample windows by transmit path (settled fast path vs exact slew integration).")
	return &TxMetrics{
		SettledWindows: r.Counter("phy_tx_windows_total", "path", "settled"),
		ExactWindows:   r.Counter("phy_tx_windows_total", "path", "exact"),
		Frames:         r.Counter("phy_tx_frames_total"),
		Samples:        r.Counter("phy_tx_samples_total"),
	}
}

// onWindows records one Transmit's window classification totals in a
// single pair of atomic adds — the batched pipeline counts per run, not
// per window.
func (m *TxMetrics) onWindows(settled, exact int) {
	if m != nil {
		m.SettledWindows.Add(int64(settled))
		m.ExactWindows.Add(int64(exact))
	}
}

func (m *TxMetrics) onTransmit(samples int) {
	if m != nil {
		m.Frames.Inc()
		m.Samples.Add(int64(samples))
	}
}

// decodeErrorClasses is the fixed label set for decode failures. Every
// frame.Parse error collapses onto one of these, keeping the metric
// cardinality bounded no matter what the channel synthesizes.
var decodeErrorClasses = []struct {
	err   error
	class string
}{
	{frame.ErrNoPreamble, "preamble"},
	{frame.ErrBadManchester, "manchester"},
	{frame.ErrTruncated, "truncated"},
	{frame.ErrBadSync, "sync"},
	{frame.ErrCRC, "crc"},
	{frame.ErrPayloadTooLong, "payload_len"},
}

// ClassifyDecodeError maps a frame.Parse error onto the bounded decode
// error class set shared by metrics, spans and the flight recorder:
// "preamble", "manchester", "truncated", "sync", "crc", "payload_len" or
// "other". The same classification runs at record time and at bundle
// replay time, so a replayed anomaly can be compared class-for-class.
func ClassifyDecodeError(err error) string { return classifyDecodeError(err) }

// classifyDecodeError maps a frame.Parse error to its metric class.
func classifyDecodeError(err error) string {
	for _, c := range decodeErrorClasses {
		if errors.Is(err, c.err) {
			return c.class
		}
	}
	return "other"
}

// RxMetrics instruments Receiver.Process. A nil *RxMetrics is a no-op.
type RxMetrics struct {
	// PreambleLocks counts accepted preamble positions (locked offsets),
	// including false locks that later fail validation.
	PreambleLocks *telemetry.Counter
	// FramesOK and FramesBad mirror Stats.FramesOK/FramesBad.
	FramesOK, FramesBad *telemetry.Counter
	// SymbolErrors accumulates constituent-symbol anomalies in good frames.
	SymbolErrors *telemetry.Counter
	// Threshold tracks the current detection threshold (per channel
	// rebuild) in counts.
	Threshold *telemetry.Gauge

	decodeErrors map[string]*telemetry.Counter
}

// NewRxMetrics builds the receive-side instrument handles on a registry.
// Returns nil on a nil registry — the no-op default. All decode-error
// class counters are pre-created so the failure path allocates nothing.
func NewRxMetrics(r *telemetry.Registry) *RxMetrics {
	if r == nil {
		return nil
	}
	r.Help("phy_rx_frames_total", "Receiver frame outcomes.")
	r.Help("phy_rx_decode_errors_total", "Frame decode failures by error class.")
	r.Help("phy_rx_threshold_counts", "Detection threshold of the current channel, in photon counts per 3-sample window.")
	m := &RxMetrics{
		PreambleLocks: r.Counter("phy_rx_preamble_locks_total"),
		FramesOK:      r.Counter("phy_rx_frames_total", "outcome", "ok"),
		FramesBad:     r.Counter("phy_rx_frames_total", "outcome", "bad"),
		SymbolErrors:  r.Counter("phy_rx_symbol_errors_total"),
		Threshold:     r.Gauge("phy_rx_threshold_counts"),
		decodeErrors:  map[string]*telemetry.Counter{},
	}
	for _, c := range decodeErrorClasses {
		m.decodeErrors[c.class] = r.Counter("phy_rx_decode_errors_total", "class", c.class)
	}
	m.decodeErrors["other"] = r.Counter("phy_rx_decode_errors_total", "class", "other")
	return m
}

func (m *RxMetrics) onLock() {
	if m != nil {
		m.PreambleLocks.Inc()
	}
}

func (m *RxMetrics) onFrameOK(symbolErrors int) {
	if m != nil {
		m.FramesOK.Inc()
		m.SymbolErrors.Add(int64(symbolErrors))
	}
}

func (m *RxMetrics) onFrameBad(err error) {
	if m != nil {
		m.FramesBad.Inc()
		m.decodeErrors[classifyDecodeError(err)].Inc()
	}
}

// OnChannel records the receiver's per-channel calibration outcome; the
// session loop calls it after every channel rebuild.
func (m *RxMetrics) OnChannel(threshold int) {
	if m != nil {
		m.Threshold.Set(float64(threshold))
	}
}

// Threshold-cache efficiency counters live on the process-global registry:
// the cache is shared across sessions, so its hit rate is a property of
// the process, not of any one (deterministic) session.
var (
	thrCacheHits   = telemetry.Global().Counter("phy_threshold_cache_total", "result", "hit")
	thrCacheMisses = telemetry.Global().Counter("phy_threshold_cache_total", "result", "miss")
)

// ThresholdCacheStats reports cumulative hit/miss counts of the
// per-channel detection-threshold cache.
func ThresholdCacheStats() (hits, misses int64) {
	return thrCacheHits.Value(), thrCacheMisses.Value()
}
