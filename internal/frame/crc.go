// Package frame implements the SmartVLC frame format of paper Table 1:
//
//	Preamble | Length | Pattern | Compensation | Sync | Payload | CRC
//	3 bytes  | 2 B    | 4 B     | x slots      | 1 b  | 0–MAX B | 2 B
//
// The preamble is an alternating ON/OFF slot sequence. The header (Length
// and Pattern) is Manchester-coded so its duty cycle is exactly 50 %
// independent of content. The compensation field is a run of consecutive
// ONs or OFFs sized so the frame prefix matches the payload's dimming
// level, avoiding intra-frame (Type-II) flicker; the sync slot provides a
// known edge to re-align slot timing after the unmodulated compensation
// run. Payload and CRC are modulated by a scheme-specific PayloadCodec
// (AMPPM, OOK-CT, MPPM or VPPM).
package frame

// crcTable is the CRC-16/CCITT-FALSE table (polynomial 0x1021).
var crcTable [256]uint16

func init() {
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		crcTable[i] = crc
	}
}

// CRC16 returns the CRC-16/CCITT-FALSE checksum (init 0xFFFF) of data.
// The paper's 2-byte CRC field uses this to reject frames with residual
// symbol errors.
func CRC16(data ...[]byte) uint16 {
	crc := uint16(0xFFFF)
	for _, chunk := range data {
		for _, b := range chunk {
			crc = crc<<8 ^ crcTable[byte(crc>>8)^b]
		}
	}
	return crc
}
