package frame

import (
	"bytes"
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// fakeCodec is a trivial PayloadCodec for frame-layer tests: each data bit
// becomes one slot (OOK), and Level reports a configurable value.
type fakeCodec struct {
	level float64
	desc  [PatternBytes]byte
}

func (f fakeCodec) Level() float64                 { return f.level }
func (f fakeCodec) Descriptor() [PatternBytes]byte { return f.desc }
func (f fakeCodec) PayloadSlots(nbytes int) int    { return nbytes * 8 }
func (f fakeCodec) AppendPayload(dst []bool, data []byte) ([]bool, error) {
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			dst = append(dst, b>>uint(i)&1 == 1)
		}
	}
	return dst, nil
}
func (f fakeCodec) DecodePayload(slots []bool, nbytes int) ([]byte, int, error) {
	out := make([]byte, nbytes)
	for i := 0; i < nbytes*8; i++ {
		if slots[i] {
			out[i/8] |= 1 << uint(7-i%8)
		}
	}
	return out, 0, nil
}

func fakeFactory(level float64) CodecFactory {
	return func(d [PatternBytes]byte) (PayloadCodec, error) {
		return fakeCodec{level: level, desc: d}, nil
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("CRC16 = %#04x want 0x29B1", got)
	}
	// Multi-chunk must equal single-chunk.
	if CRC16([]byte("1234"), []byte("56789")) != 0x29B1 {
		t.Fatal("chunked CRC differs")
	}
}

func TestCRC16DetectsBitFlips(t *testing.T) {
	f := func(data []byte, idx uint16) bool {
		if len(data) == 0 {
			return true
		}
		orig := CRC16(data)
		i := int(idx) % len(data)
		data[i] ^= 1 << (idx % 8)
		return CRC16(data) != orig
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPreambleRoundTrip(t *testing.T) {
	p := AppendPreamble(nil)
	if len(p) != PreambleSlots {
		t.Fatalf("preamble length %d", len(p))
	}
	if !PreambleAt(p) {
		t.Fatal("PreambleAt(own preamble) = false")
	}
	p[3] = !p[3]
	if PreambleAt(p) {
		t.Fatal("corrupted preamble accepted")
	}
	if PreambleAt(p[:10]) {
		t.Fatal("short slice accepted")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Length: 0x1234, Pattern: [4]byte{9, 8, 7, 6}}
	slots, err := h.AppendHeader(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != HeaderSlots {
		t.Fatalf("header slots = %d want %d", len(slots), HeaderSlots)
	}
	got, err := ParseHeader(slots)
	if err != nil || got != h {
		t.Fatalf("ParseHeader = %+v, %v", got, err)
	}
	// Header is exactly 50% duty regardless of content.
	on := 0
	for _, s := range slots {
		if s {
			on++
		}
	}
	if on*2 != len(slots) {
		t.Fatalf("header duty %d/%d", on, len(slots))
	}
}

func TestHeaderManchesterErrorDetection(t *testing.T) {
	h := Header{Length: 5}
	slots, _ := h.AppendHeader(nil)
	slots[0] = slots[1] // make an invalid pair
	if _, err := ParseHeader(slots); !errors.Is(err, ErrBadManchester) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ParseHeader(slots[:5]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short err = %v", err)
	}
}

func TestHeaderRejectsOversizedLength(t *testing.T) {
	h := Header{Length: MaxPayload + 1}
	if _, err := h.AppendHeader(nil); !errors.Is(err, ErrPayloadTooLong) {
		t.Fatalf("err = %v", err)
	}
}

func TestCompSlots(t *testing.T) {
	// At l = 0.5 no compensation is needed.
	if n, _ := CompSlots(0.5); n != 0 {
		t.Fatalf("CompSlots(0.5) = %d", n)
	}
	// Paper-style check: prefix duty 0.5 blended with comp must hit the
	// target level.
	for _, l := range []float64{0.1, 0.2, 0.35, 0.65, 0.9} {
		n, on := CompSlots(l)
		if (l < 0.5) == on {
			t.Fatalf("level %v: polarity on=%v", l, on)
		}
		onSlots := float64(prefixSlots) / 2
		if on {
			onSlots += float64(n)
		}
		got := onSlots / float64(prefixSlots+n)
		if math.Abs(got-l) > 0.01 {
			t.Fatalf("level %v: prefix+comp duty %v", l, got)
		}
	}
	// Degenerate levels yield no compensation rather than panic.
	if n, _ := CompSlots(0); n != 0 {
		t.Fatal("CompSlots(0) != 0")
	}
	if n, _ := CompSlots(1); n != 0 {
		t.Fatal("CompSlots(1) != 0")
	}
}

func TestCompStaysWithinFlickerCap(t *testing.T) {
	// Over the paper's evaluated dimming range [0.1, 0.9] the compensation
	// run must stay within Nmax = 500 slots (2 ms at 125 kHz < 1/250 Hz).
	for l := 0.1; l <= 0.9; l += 0.001 {
		if n, _ := CompSlots(l); n > 500 {
			t.Fatalf("level %v: comp run %d exceeds 500 slots", l, n)
		}
	}
}

func TestBuildParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for _, level := range []float64{0.1, 0.3, 0.5, 0.77, 0.9} {
		codec := fakeCodec{level: level, desc: [4]byte{1, 2, 3, 4}}
		payload := make([]byte, 128)
		for i := range payload {
			payload[i] = byte(rng.Uint64())
		}
		slots, err := Build(codec, payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(slots) != Slots(codec, len(payload)) {
			t.Fatalf("level %v: Slots() = %d, actual %d", level, Slots(codec, len(payload)), len(slots))
		}
		res, err := Parse(slots, fakeFactory(level))
		if err != nil {
			t.Fatalf("level %v: Parse: %v", level, err)
		}
		if !bytes.Equal(res.Payload, payload) {
			t.Fatalf("level %v: payload mismatch", level)
		}
		if res.Header.Pattern != codec.desc {
			t.Fatalf("level %v: pattern %v", level, res.Header.Pattern)
		}
		if res.SlotsConsumed != len(slots) {
			t.Fatalf("level %v: consumed %d of %d", level, res.SlotsConsumed, len(slots))
		}
	}
}

func TestParseEmptyPayload(t *testing.T) {
	codec := fakeCodec{level: 0.5}
	slots, err := Build(codec, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Parse(slots, fakeFactory(0.5))
	if err != nil || len(res.Payload) != 0 {
		t.Fatalf("empty payload: %v, %v", res.Payload, err)
	}
}

func TestParseDetectsCorruption(t *testing.T) {
	codec := fakeCodec{level: 0.3}
	payload := []byte("hello, smartvlc")
	slots, err := Build(codec, payload)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("no preamble", func(t *testing.T) {
		bad := append([]bool(nil), slots...)
		bad[0] = !bad[0]
		if _, err := Parse(bad, fakeFactory(0.3)); !errors.Is(err, ErrNoPreamble) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("payload bit flip fails CRC", func(t *testing.T) {
		bad := append([]bool(nil), slots...)
		bad[len(bad)-20] = !bad[len(bad)-20]
		if _, err := Parse(bad, fakeFactory(0.3)); !errors.Is(err, ErrCRC) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("sync slot flip", func(t *testing.T) {
		bad := append([]bool(nil), slots...)
		comp, _ := CompSlots(0.3)
		syncIdx := PreambleSlots + HeaderSlots + comp
		bad[syncIdx] = !bad[syncIdx]
		if _, err := Parse(bad, fakeFactory(0.3)); !errors.Is(err, ErrBadSync) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := Parse(slots[:len(slots)-4], fakeFactory(0.3)); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("length field corruption fails CRC", func(t *testing.T) {
		// Flip a Manchester PAIR in the length field so the Manchester
		// check passes but the length changes: swap both slots of bit 15.
		bad := append([]bool(nil), slots...)
		bad[PreambleSlots], bad[PreambleSlots+1] = bad[PreambleSlots+1], bad[PreambleSlots]
		_, err := Parse(bad, fakeFactory(0.3))
		if err == nil {
			t.Fatal("corrupted length accepted")
		}
	})
}

func TestHeaderFieldsCoveredByCRC(t *testing.T) {
	// Corrupting the Pattern field (a full Manchester pair, so the pair
	// check passes) must fail the frame even though the payload is intact.
	codec := fakeCodec{level: 0.5, desc: [4]byte{0, 0, 0, 0}}
	slots, err := Build(codec, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	patternBit := PreambleSlots + LengthBytes*16 // first pattern bit pair
	slots[patternBit], slots[patternBit+1] = !slots[patternBit], !slots[patternBit+1]
	if _, err := Parse(slots, fakeFactory(0.5)); err == nil {
		t.Fatal("pattern corruption accepted")
	}
}

func TestBuildRejectsOversizedPayload(t *testing.T) {
	codec := fakeCodec{level: 0.5}
	if _, err := Build(codec, make([]byte, MaxPayload+1)); !errors.Is(err, ErrPayloadTooLong) {
		t.Fatalf("err = %v", err)
	}
}

func TestAppendIdle(t *testing.T) {
	for _, level := range []float64{0.1, 0.5, 0.9} {
		slots := AppendIdle(nil, level, 1000)
		if len(slots) != 1000 {
			t.Fatalf("idle length %d", len(slots))
		}
		on := 0
		for _, s := range slots {
			if s {
				on++
			}
		}
		if math.Abs(float64(on)/1000-level) > 0.01 {
			t.Fatalf("idle duty %v at level %v", float64(on)/1000, level)
		}
		// Idle filler must never contain a preamble.
		for i := 0; i+PreambleSlots <= len(slots); i++ {
			if PreambleAt(slots[i:]) {
				t.Fatalf("level %v: preamble found in idle at %d", level, i)
			}
		}
	}
}

func TestFrameOverheadSmallForBigPayload(t *testing.T) {
	// Sanity check on overhead accounting used in the evaluation: for a
	// 128-byte payload at l=0.5 the prefix+sync overhead is
	// 120+1 slots against 130*8 payload slots (fake codec) ≈ 10 %.
	codec := fakeCodec{level: 0.5}
	total := Slots(codec, 128)
	payloadSlots := codec.PayloadSlots(128 + CRCBytes)
	overhead := float64(total-payloadSlots) / float64(total)
	if overhead > 0.11 {
		t.Fatalf("overhead %v too large", overhead)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, levelRaw uint16, n uint16) bool {
		level := 0.1 + float64(levelRaw)/65535*0.8
		rng := rand.New(rand.NewPCG(seed, 1))
		payload := make([]byte, int(n%512))
		for i := range payload {
			payload[i] = byte(rng.Uint64())
		}
		codec := fakeCodec{level: level}
		slots, err := Build(codec, payload)
		if err != nil {
			return false
		}
		res, err := Parse(slots, fakeFactory(level))
		return err == nil && bytes.Equal(res.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestErrorInjectionNeverFalselyAccepts flips k random slots of a valid
// frame and requires the parser to either reject the frame or return the
// original payload — a CRC collision with few flips would be a bug in the
// slot accounting, not bad luck.
func TestErrorInjectionNeverFalselyAccepts(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 41))
	codec := fakeCodec{level: 0.4}
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(rng.Uint64())
	}
	slots, err := Build(codec, payload)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3000; trial++ {
		bad := append([]bool(nil), slots...)
		k := 1 + int(rng.Uint64()%4)
		for j := 0; j < k; j++ {
			i := int(rng.Uint64() % uint64(len(bad)))
			bad[i] = !bad[i]
		}
		res, err := Parse(bad, fakeFactory(0.4))
		if err != nil {
			continue // rejected: fine
		}
		if !bytes.Equal(res.Payload, payload) {
			t.Fatalf("trial %d: corrupted frame accepted with wrong payload", trial)
		}
	}
}
