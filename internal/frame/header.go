package frame

import (
	"errors"
	"fmt"
)

// Field sizes from paper Table 1.
const (
	PreambleBytes = 3 // alternating ON/OFF slots
	LengthBytes   = 2
	PatternBytes  = 4
	CRCBytes      = 2
	PreambleSlots = PreambleBytes * 8
	headerBytes   = LengthBytes + PatternBytes
	HeaderSlots   = headerBytes * 8 * 2 // Manchester: 2 slots per bit
	prefixSlots   = PreambleSlots + HeaderSlots
	// MaxPayload is the largest payload the 2-byte Length field can name.
	MaxPayload = 1<<16 - 1
)

// Header is the decoded frame header.
type Header struct {
	// Length is the payload size in bytes (CRC excluded).
	Length int
	// Pattern carries the scheme-specific super-symbol descriptor.
	Pattern [PatternBytes]byte
}

// Header/stream parse errors.
var (
	ErrNoPreamble     = errors.New("frame: preamble mismatch")
	ErrBadManchester  = errors.New("frame: invalid Manchester pair in header")
	ErrTruncated      = errors.New("frame: slot stream truncated")
	ErrBadSync        = errors.New("frame: sync slot mismatch")
	ErrCRC            = errors.New("frame: CRC mismatch")
	ErrPayloadTooLong = fmt.Errorf("frame: payload exceeds %d bytes", MaxPayload)
)

// AppendPreamble appends the 24-slot alternating preamble, starting with ON.
func AppendPreamble(dst []bool) []bool {
	for i := 0; i < PreambleSlots; i++ {
		dst = append(dst, i%2 == 0)
	}
	return dst
}

// PreambleAt reports whether the alternating preamble starts at slots[0].
func PreambleAt(slots []bool) bool {
	if len(slots) < PreambleSlots {
		return false
	}
	for i := 0; i < PreambleSlots; i++ {
		if slots[i] != (i%2 == 0) {
			return false
		}
	}
	return true
}

// appendManchester appends one byte as 16 slots: bit 1 → ON,OFF and
// bit 0 → OFF,ON. Both polarities spend one ON slot per bit, so the header
// duty cycle is exactly 50 % for any content.
func appendManchester(dst []bool, b byte) []bool {
	for i := 7; i >= 0; i-- {
		bit := b>>uint(i)&1 == 1
		dst = append(dst, bit, !bit)
	}
	return dst
}

// decodeManchester decodes 16 slots into one byte. Pairs ON,ON and OFF,OFF
// are invalid and reported as ErrBadManchester — this catches most single
// slot errors in the header immediately.
func decodeManchester(slots []bool) (byte, error) {
	var b byte
	for i := 0; i < 8; i++ {
		first, second := slots[2*i], slots[2*i+1]
		if first == second {
			return 0, ErrBadManchester
		}
		if first {
			b |= 1 << uint(7-i)
		}
	}
	return b, nil
}

// AppendHeader appends the Manchester-coded Length and Pattern fields.
func (h Header) AppendHeader(dst []bool) ([]bool, error) {
	if h.Length < 0 || h.Length > MaxPayload {
		return nil, ErrPayloadTooLong
	}
	dst = appendManchester(dst, byte(h.Length>>8))
	dst = appendManchester(dst, byte(h.Length))
	for _, b := range h.Pattern {
		dst = appendManchester(dst, b)
	}
	return dst, nil
}

// ParseHeader decodes the header from HeaderSlots slots.
func ParseHeader(slots []bool) (Header, error) {
	if len(slots) < HeaderSlots {
		return Header{}, ErrTruncated
	}
	var raw [headerBytes]byte
	for i := range raw {
		b, err := decodeManchester(slots[i*16 : (i+1)*16])
		if err != nil {
			return Header{}, err
		}
		raw[i] = b
	}
	h := Header{Length: int(raw[0])<<8 | int(raw[1])}
	copy(h.Pattern[:], raw[LengthBytes:])
	return h, nil
}
