package frame

import (
	"bytes"
	"testing"
)

// bitsToSlots expands fuzz bytes into a slot waveform.
func bitsToSlots(data []byte) []bool {
	slots := make([]bool, len(data)*8)
	for i := range slots {
		slots[i] = data[i/8]>>(7-uint(i%8))&1 == 1
	}
	return slots
}

// FuzzParse feeds arbitrary slot waveforms to the frame parser: it must
// never panic and never return success with an inconsistent result.
func FuzzParse(f *testing.F) {
	codec := fakeCodec{level: 0.4}
	good, _ := Build(codec, []byte("seed payload"))
	packed := make([]byte, (len(good)+7)/8)
	for i, s := range good {
		if s {
			packed[i/8] |= 1 << (7 - uint(i%8))
		}
	}
	f.Add(packed)
	f.Add([]byte{0xAA, 0xAA, 0xAA, 0xFF, 0x00})
	f.Add(bytes.Repeat([]byte{0xAA}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		slots := bitsToSlots(data)
		res, err := Parse(slots, fakeFactory(0.4))
		if err != nil {
			return
		}
		if res.SlotsConsumed <= 0 || res.SlotsConsumed > len(slots) {
			t.Fatalf("consumed %d of %d", res.SlotsConsumed, len(slots))
		}
		if len(res.Payload) != res.Header.Length {
			t.Fatalf("payload %d vs header %d", len(res.Payload), res.Header.Length)
		}
	})
}

// FuzzBuildParseRoundTrip builds a frame from fuzzed payload/level and
// requires an exact round trip.
func FuzzBuildParseRoundTrip(f *testing.F) {
	f.Add([]byte("hello"), uint16(30000))
	f.Add([]byte{}, uint16(0))
	f.Fuzz(func(t *testing.T, payload []byte, levelRaw uint16) {
		if len(payload) > 2048 {
			return
		}
		level := 0.1 + float64(levelRaw)/65535*0.8
		codec := fakeCodec{level: level}
		slots, err := Build(codec, payload)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		res, err := Parse(slots, fakeFactory(level))
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		if !bytes.Equal(res.Payload, payload) {
			t.Fatal("payload mismatch")
		}
	})
}
