package frame

import (
	"fmt"
	"math"
	"sync"
)

// PayloadCodec modulates payload bytes into slots at a fixed dimming level.
// Implementations wrap AMPPM super-symbols or one of the baseline schemes.
type PayloadCodec interface {
	// Level returns the dimming level of the payload waveform; the
	// compensation field is sized from it.
	Level() float64
	// Descriptor returns the 4-byte Pattern field contents that let the
	// receiver reconstruct this codec.
	Descriptor() [PatternBytes]byte
	// PayloadSlots returns the exact number of slots AppendPayload emits
	// for nbytes of data.
	PayloadSlots(nbytes int) int
	// AppendPayload modulates data into slots and appends them to dst.
	AppendPayload(dst []bool, data []byte) ([]bool, error)
	// DecodePayload demodulates nbytes of data from the beginning of
	// slots. symbolErrors counts constituent symbols that decoded
	// abnormally (the CRC makes the final call on frame validity).
	DecodePayload(slots []bool, nbytes int) (data []byte, symbolErrors int, err error)
}

// PayloadAppender is the allocation-free decode extension of
// PayloadCodec: AppendDecodedPayload demodulates nbytes of data from the
// beginning of slots into dst's backing array (dst's length is ignored;
// its capacity is reused) and returns the decoded bytes. Codecs on the
// receiver hot path implement it so ParseInto can recycle one body
// buffer per frame slot; ParseInto falls back to DecodePayload plus a
// copy for codecs that don't.
type PayloadAppender interface {
	AppendDecodedPayload(dst []byte, slots []bool, nbytes int) (data []byte, symbolErrors int, err error)
}

// CodecFactory reconstructs a receiver-side PayloadCodec from the Pattern
// field of a frame header.
type CodecFactory func(descriptor [PatternBytes]byte) (PayloadCodec, error)

// CompSlots returns the length and polarity of the compensation run that
// aligns the frame prefix (preamble + header, 50 % duty) with the payload
// dimming level: ON filler for level > 0.5, OFF filler for level < 0.5.
// Both sides compute it from the level alone, so the receiver knows how
// many slots to skip.
func CompSlots(level float64) (n int, on bool) {
	switch {
	case level <= 0 || level >= 1:
		return 0, false
	case level < 0.5:
		return int(math.Round(prefixSlots * (0.5 - level) / level)), false
	case level > 0.5:
		return int(math.Round(prefixSlots * (level - 0.5) / (1 - level))), true
	default:
		return 0, false
	}
}

// SyncSlot returns the value of the sync slot for a payload level: ON
// (rising edge after OFF compensation) for level ≤ 0.5, OFF (falling edge
// after ON compensation) otherwise.
func SyncSlot(level float64) bool { return level <= 0.5 }

// Build assembles a complete frame as a slot waveform:
// preamble, Manchester header, compensation, sync slot, then the payload
// and CRC-16 modulated by the codec. The CRC covers the Length and Pattern
// fields as well as the payload, so header corruption that survives the
// Manchester check is still caught.
func Build(codec PayloadCodec, payload []byte) ([]bool, error) {
	return BuildAppend(nil, codec, payload)
}

// BuildAppend is Build appending onto dst, letting session loops reuse one
// slot buffer across frames (pass buf[:0] to overwrite in place).
func BuildAppend(dst []bool, codec PayloadCodec, payload []byte) ([]bool, error) {
	if len(payload) > MaxPayload {
		return nil, ErrPayloadTooLong
	}
	h := Header{Length: len(payload), Pattern: codec.Descriptor()}

	dst = AppendPreamble(dst)
	dst, err := h.AppendHeader(dst)
	if err != nil {
		return nil, err
	}
	comp, on := CompSlots(codec.Level())
	for i := 0; i < comp; i++ {
		dst = append(dst, on)
	}
	dst = append(dst, SyncSlot(codec.Level()))

	hf := headerFields(h)
	crc := CRC16(hf[:], payload)
	// The payload+CRC concatenation is transient: AppendPayload reads it
	// into slot symbols and does not retain it, so a pooled scratch makes
	// frame building allocation-free on the per-frame session path.
	bp := bodyPool.Get().(*[]byte)
	body := append((*bp)[:0], payload...)
	body = append(body, byte(crc>>8), byte(crc))
	dst, err = codec.AppendPayload(dst, body)
	*bp = body
	bodyPool.Put(bp)
	return dst, err
}

// bodyPool recycles the payload+CRC scratch BuildAppend hands to the
// codec. Pointer-to-slice elements keep Get/Put themselves from
// allocating.
var bodyPool = sync.Pool{New: func() any { s := make([]byte, 0, 256); return &s }}

// headerFields returns the CRC-covered header bytes as a fixed array so
// the checksum call never heap-allocates.
func headerFields(h Header) [2 + PatternBytes]byte {
	return [2 + PatternBytes]byte{byte(h.Length >> 8), byte(h.Length), h.Pattern[0], h.Pattern[1], h.Pattern[2], h.Pattern[3]}
}

// Slots returns the total slot count of a frame carrying nbytes of payload
// with the given codec — useful for throughput accounting and scheduling.
func Slots(codec PayloadCodec, nbytes int) int {
	comp, _ := CompSlots(codec.Level())
	return prefixSlots + comp + 1 + codec.PayloadSlots(nbytes+CRCBytes)
}

// Result is a successfully parsed frame.
type Result struct {
	Header Header
	// Payload is the validated frame payload.
	Payload []byte
	// SlotsConsumed is the total frame length in slots, measured from the
	// first preamble slot.
	SlotsConsumed int
	// SymbolErrors counts payload symbols that decoded abnormally but were
	// repaired or zeroed before the CRC check (always 0 when the CRC
	// passes, in practice).
	SymbolErrors int
}

// Parse decodes one frame that starts at slots[0] (the caller locates the
// preamble). It returns the parsed frame or a descriptive error; on error
// the caller should resume preamble hunting after the failed position.
func Parse(slots []bool, factory CodecFactory) (Result, error) {
	res, _, err := ParseInto(slots, factory, nil)
	return res, err
}

// ParseInto is Parse decoding the frame body into buf's backing array
// (buf's length is ignored; its capacity is reused and grown as needed).
// It returns the possibly regrown buffer so callers can recycle it for
// the next frame: on success Result.Payload aliases the returned buffer,
// so it stays valid only while the caller keeps the buffer to itself.
// Codecs implementing PayloadAppender decode straight into the buffer;
// others pay one DecodePayload allocation plus a copy.
func ParseInto(slots []bool, factory CodecFactory, buf []byte) (Result, []byte, error) {
	if !PreambleAt(slots) {
		return Result{}, buf, ErrNoPreamble
	}
	pos := PreambleSlots
	if len(slots) < pos+HeaderSlots {
		return Result{}, buf, ErrTruncated
	}
	h, err := ParseHeader(slots[pos : pos+HeaderSlots])
	if err != nil {
		return Result{}, buf, err
	}
	pos += HeaderSlots

	codec, err := factory(h.Pattern)
	if err != nil {
		return Result{}, buf, fmt.Errorf("frame: bad pattern field: %w", err)
	}
	comp, _ := CompSlots(codec.Level())
	pos += comp
	if len(slots) < pos+1 {
		return Result{}, buf, ErrTruncated
	}
	if slots[pos] != SyncSlot(codec.Level()) {
		return Result{}, buf, ErrBadSync
	}
	pos++

	bodyBytes := h.Length + CRCBytes
	need := codec.PayloadSlots(bodyBytes)
	if len(slots) < pos+need {
		return Result{}, buf, ErrTruncated
	}
	var body []byte
	var symErrs int
	if ap, ok := codec.(PayloadAppender); ok {
		body, symErrs, err = ap.AppendDecodedPayload(buf, slots[pos:pos+need], bodyBytes)
		if body != nil {
			buf = body
		}
	} else {
		body, symErrs, err = codec.DecodePayload(slots[pos:pos+need], bodyBytes)
		if err == nil {
			buf = append(buf[:0], body...)
			body = buf
		}
	}
	if err != nil {
		return Result{}, buf, err
	}
	pos += need

	payload := body[:h.Length]
	wantCRC := uint16(body[h.Length])<<8 | uint16(body[h.Length+1])
	hf := headerFields(h)
	if CRC16(hf[:], payload) != wantCRC {
		return Result{}, buf, ErrCRC
	}
	return Result{Header: h, Payload: payload, SlotsConsumed: pos, SymbolErrors: symErrs}, buf, nil
}

// AppendIdle appends n slots of flicker-safe filler at the given dimming
// level: within each block of up to idleBlock slots, the ON run comes
// first. The block length keeps the modulation frequency above the Type-I
// threshold, and the filler never contains a preamble (a 24-slot
// alternating run), so receivers cannot false-lock on it.
func AppendIdle(dst []bool, level float64, n int) []bool {
	const idleBlock = 100
	for n > 0 {
		b := idleBlock
		if n < b {
			b = n
		}
		on := int(math.Round(level * float64(b)))
		for i := 0; i < b; i++ {
			dst = append(dst, i < on)
		}
		n -= b
	}
	return dst
}
