// Package ookct implements the compensation-based baseline of the SmartVLC
// paper: On-Off Keying with Compensation Time (OOK-CT).
//
// Data bits are modulated directly as ON (1) / OFF (0) slots, so the data
// portion of the stream has a duty cycle of ~50 % (the paper assumes equal
// probability of 0s and 1s; a scrambler enforces this in practice). To hit a
// target dimming level l, every encoding unit of data slots is followed by a
// compensation field of consecutive ONs (l > 0.5) or OFFs (l < 0.5) that
// carries no information. The achievable slot efficiency is therefore
// min(2l, 2(1−l)): it collapses toward 0 at both dimming extremes, which is
// exactly the weakness AMPPM removes.
package ookct

import (
	"errors"
	"fmt"
	"math"
)

// Modulator converts data bits to OOK-CT slot streams at a fixed dimming
// level. The zero value is not usable; use NewModulator.
//
// The stream is organised in encoding units: UnitDataSlots data slots
// followed by a compensation run. Compensation lengths are dithered between
// consecutive units (Bresenham-style) so the long-run duty cycle converges
// to the target level exactly, not just to the nearest integer per unit.
type Modulator struct {
	level         float64
	unitDataSlots int

	compPerUnit float64 // exact compensation slots per unit
	compOn      bool    // compensation polarity: true = ON filler
	emittedComp float64 // accumulated fractional compensation debt
	unitsOut    int
}

// DefaultUnitDataSlots is the default number of data slots per encoding
// unit. At tslot = 8 µs a unit plus its compensation stays far shorter than
// the 1/250 Hz Type-I flicker period for all dimming levels in [0.1, 0.9].
const DefaultUnitDataSlots = 100

// ErrLevelOutOfRange reports a dimming level that OOK-CT cannot reach:
// compensation can only darken below the 50 % data duty or brighten above
// it within the unit budget, so l must lie in (0, 1).
var ErrLevelOutOfRange = errors.New("ookct: dimming level must be in (0, 1)")

// NewModulator creates a modulator for the target dimming level.
// unitDataSlots ≤ 0 selects DefaultUnitDataSlots.
func NewModulator(level float64, unitDataSlots int) (*Modulator, error) {
	if level <= 0 || level >= 1 {
		return nil, ErrLevelOutOfRange
	}
	if unitDataSlots <= 0 {
		unitDataSlots = DefaultUnitDataSlots
	}
	m := &Modulator{level: level, unitDataSlots: unitDataSlots}
	d := float64(unitDataSlots)
	if level >= 0.5 {
		m.compOn = true
		m.compPerUnit = d * (level - 0.5) / (1 - level)
	} else {
		m.compOn = false
		m.compPerUnit = d * (0.5 - level) / level
	}
	return m, nil
}

// Level returns the target dimming level.
func (m *Modulator) Level() float64 { return m.level }

// UnitDataSlots returns the number of data slots per encoding unit.
func (m *Modulator) UnitDataSlots() int { return m.unitDataSlots }

// Efficiency returns the fraction of slots that carry data at this level,
// min(2l, 2(1−l)).
func (m *Modulator) Efficiency() float64 {
	return Efficiency(m.level)
}

// Efficiency returns the OOK-CT slot efficiency min(2l, 2(1−l)) for a
// dimming level l, clamped to [0, 1].
func Efficiency(level float64) float64 {
	e := math.Min(2*level, 2*(1-level))
	return math.Max(0, math.Min(1, e))
}

// compFor returns the integer compensation length for the next unit,
// carrying fractional debt across units.
func (m *Modulator) compFor() int {
	target := float64(m.unitsOut+1) * m.compPerUnit
	c := int(math.Round(target - m.emittedComp))
	if c < 0 {
		c = 0
	}
	m.emittedComp += float64(c)
	m.unitsOut++
	return c
}

// AppendBits appends the slot stream for the data bits to dst and returns
// it. Bits are consumed most-significant-first from each byte; nbits may
// end mid-byte. Complete encoding units are emitted; a final partial unit
// is also compensated so the tail preserves the dimming level.
func (m *Modulator) AppendBits(dst []bool, data []byte, nbits int) ([]bool, error) {
	if nbits < 0 || nbits > len(data)*8 {
		return nil, fmt.Errorf("ookct: nbits %d outside data length %d bits", nbits, len(data)*8)
	}
	inUnit := 0
	for i := 0; i < nbits; i++ {
		bit := data[i/8]>>(7-uint(i%8))&1 == 1
		dst = append(dst, bit)
		inUnit++
		if inUnit == m.unitDataSlots {
			dst = m.appendComp(dst, m.compFor())
			inUnit = 0
		}
	}
	if inUnit > 0 {
		// Scale compensation for the partial unit.
		frac := float64(inUnit) / float64(m.unitDataSlots)
		c := int(math.Round(m.compPerUnit * frac))
		dst = m.appendComp(dst, c)
	}
	return dst, nil
}

func (m *Modulator) appendComp(dst []bool, n int) []bool {
	for i := 0; i < n; i++ {
		dst = append(dst, m.compOn)
	}
	return dst
}

// Reset clears the compensation debt so the modulator can start a new
// independent stream.
func (m *Modulator) Reset() {
	m.emittedComp = 0
	m.unitsOut = 0
}

// Demodulator strips compensation and recovers data bits from an OOK-CT
// slot stream produced by a Modulator with identical parameters.
type Demodulator struct {
	m *Modulator
}

// NewDemodulator creates a demodulator matched to the given level and unit
// size.
func NewDemodulator(level float64, unitDataSlots int) (*Demodulator, error) {
	m, err := NewModulator(level, unitDataSlots)
	if err != nil {
		return nil, err
	}
	return &Demodulator{m: m}, nil
}

// DecodeBits recovers nbits data bits from the slot stream, writing them
// MSB-first into a fresh byte slice. It returns an error if the stream is
// shorter than the encoding of nbits.
func (d *Demodulator) DecodeBits(slots []bool, nbits int) ([]byte, error) {
	d.m.Reset()
	out := make([]byte, (nbits+7)/8)
	pos := 0
	inUnit := 0
	for i := 0; i < nbits; i++ {
		if pos >= len(slots) {
			return nil, fmt.Errorf("ookct: slot stream truncated at bit %d of %d", i, nbits)
		}
		if slots[pos] {
			out[i/8] |= 1 << (7 - uint(i%8))
		}
		pos++
		inUnit++
		if inUnit == d.m.unitDataSlots {
			pos += d.m.compFor()
			inUnit = 0
		}
	}
	return out, nil
}

// StreamLength returns the total number of slots AppendBits would emit for
// nbits data bits, including compensation.
func StreamLength(level float64, unitDataSlots, nbits int) (int, error) {
	m, err := NewModulator(level, unitDataSlots)
	if err != nil {
		return 0, err
	}
	out, err := m.AppendBits(nil, make([]byte, (nbits+7)/8), nbits)
	if err != nil {
		return 0, err
	}
	return len(out), nil
}
