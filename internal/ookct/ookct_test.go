package ookct

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestEfficiencyShape(t *testing.T) {
	cases := []struct {
		l, want float64
	}{
		{0.5, 1.0},
		{0.1, 0.2},
		{0.9, 0.2},
		{0.25, 0.5},
		{0.75, 0.5},
	}
	for _, c := range cases {
		if got := Efficiency(c.l); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Efficiency(%v) = %v want %v", c.l, got, c.want)
		}
	}
}

func TestNewModulatorRejectsExtremes(t *testing.T) {
	for _, l := range []float64{0, 1, -0.1, 1.5} {
		if _, err := NewModulator(l, 0); err != ErrLevelOutOfRange {
			t.Errorf("NewModulator(%v) err = %v", l, err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for _, level := range []float64{0.1, 0.3, 0.5, 0.62, 0.9} {
		data := make([]byte, 257)
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		nbits := len(data)*8 - 3 // end mid-byte on purpose
		m, err := NewModulator(level, 0)
		if err != nil {
			t.Fatal(err)
		}
		slots, err := m.AppendBits(nil, data, nbits)
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDemodulator(level, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.DecodeBits(slots, nbits)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]byte(nil), data...)
		want[len(want)-1] &^= 0x07 // the 3 unsent bits decode as zero
		if !bytes.Equal(got, want) {
			t.Fatalf("level %v: round trip mismatch", level)
		}
	}
}

func TestDutyCycleConvergesToLevel(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, level := range []float64{0.1, 0.18, 0.5, 0.7, 0.9} {
		m, err := NewModulator(level, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Use balanced data (alternating bits) so the data duty is exactly
		// 0.5 and the only error source is compensation rounding.
		data := bytes.Repeat([]byte{0xAA}, 4000)
		_ = rng
		slots, err := m.AppendBits(nil, data, len(data)*8)
		if err != nil {
			t.Fatal(err)
		}
		on := 0
		for _, s := range slots {
			if s {
				on++
			}
		}
		duty := float64(on) / float64(len(slots))
		if math.Abs(duty-level) > 0.005 {
			t.Errorf("level %v: long-run duty %v", level, duty)
		}
	}
}

func TestStreamLengthMatchesEfficiency(t *testing.T) {
	for _, level := range []float64{0.1, 0.25, 0.5, 0.8, 0.9} {
		nbits := 80000
		n, err := StreamLength(level, 0, nbits)
		if err != nil {
			t.Fatal(err)
		}
		gotEff := float64(nbits) / float64(n)
		if math.Abs(gotEff-Efficiency(level)) > 0.01 {
			t.Errorf("level %v: stream efficiency %v want %v", level, gotEff, Efficiency(level))
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, levelRaw uint16, n uint8) bool {
		level := 0.05 + float64(levelRaw)/float64(math.MaxUint16)*0.9
		rng := rand.New(rand.NewPCG(seed, 42))
		data := make([]byte, int(n)+1)
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		nbits := len(data) * 8
		m, err := NewModulator(level, 32)
		if err != nil {
			return false
		}
		slots, err := m.AppendBits(nil, data, nbits)
		if err != nil {
			return false
		}
		d, err := NewDemodulator(level, 32)
		if err != nil {
			return false
		}
		got, err := d.DecodeBits(slots, nbits)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeTruncatedStream(t *testing.T) {
	m, _ := NewModulator(0.3, 0)
	slots, _ := m.AppendBits(nil, []byte{0xFF, 0x00}, 16)
	d, _ := NewDemodulator(0.3, 0)
	if _, err := d.DecodeBits(slots[:5], 16); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestAppendBitsRejectsBadNBits(t *testing.T) {
	m, _ := NewModulator(0.5, 0)
	if _, err := m.AppendBits(nil, []byte{1}, 9); err == nil {
		t.Fatal("expected error for nbits > len(data)*8")
	}
	if _, err := m.AppendBits(nil, []byte{1}, -1); err == nil {
		t.Fatal("expected error for negative nbits")
	}
}

func TestCompensationPolarity(t *testing.T) {
	// Below 0.5 the compensation must be OFF runs; above, ON runs.
	mLow, _ := NewModulator(0.2, 10)
	slots, _ := mLow.AppendBits(nil, bytes.Repeat([]byte{0xAA}, 10), 80)
	// Data duty is 0.5; overall duty must be pulled DOWN.
	if duty(slots) >= 0.5 {
		t.Fatalf("low level: duty %v not below 0.5", duty(slots))
	}
	mHigh, _ := NewModulator(0.8, 10)
	slots, _ = mHigh.AppendBits(nil, bytes.Repeat([]byte{0xAA}, 10), 80)
	if duty(slots) <= 0.5 {
		t.Fatalf("high level: duty %v not above 0.5", duty(slots))
	}
}

func duty(slots []bool) float64 {
	on := 0
	for _, s := range slots {
		if s {
			on++
		}
	}
	return float64(on) / float64(len(slots))
}

func BenchmarkModulate128B(b *testing.B) {
	m, _ := NewModulator(0.3, 0)
	data := bytes.Repeat([]byte{0x5C}, 128)
	buf := make([]bool, 0, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Reset()
		var err error
		buf, err = m.AppendBits(buf[:0], data, len(data)*8)
		if err != nil {
			b.Fatal(err)
		}
	}
}
