// Package bench holds the perf-trend record shared by cmd/phybench
// (writer), cmd/benchguard (trend gate) and cmd/vlcprof (regression
// naming): one JSON line per benchmark run, appended to
// results/BENCH_history.jsonl, carrying the commit identity and the
// ns/op of every benchmark body. The history is the denominator of the
// trend gates — a rolling median over prior runs absorbs single noisy
// runs that a fixed baseline file would canonize.
package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Record is one benchmark run in the history log.
type Record struct {
	// SHA is the git commit the run measured (phybench -sha; empty when
	// not provided).
	SHA string `json:"sha,omitempty"`
	// Stamp is the caller-provided run timestamp (phybench -stamp;
	// RFC 3339 by convention). It is a flag, not a clock read, so replayed
	// runs stay reproducible.
	Stamp string `json:"stamp,omitempty"`
	// GoVersion and NumCPU qualify the measurement host.
	GoVersion string `json:"go_version,omitempty"`
	NumCPU    int    `json:"num_cpu,omitempty"`
	// Quick marks smoke runs; trend consumers skip them by default.
	Quick bool `json:"quick,omitempty"`
	// NsPerOp maps benchmark name to its measured ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
	// SessionsPerSec maps each session-loop benchmark to its whole-session
	// throughput — the headline rate the arena work optimizes, trended
	// alongside ns/op so warm-vs-fresh progress survives in the log.
	SessionsPerSec map[string]float64 `json:"sessions_per_sec,omitempty"`
}

// Append writes rec as one JSON line at the end of path, creating the
// file and its directory if absent.
func Append(path string, rec Record) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("bench: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	return nil
}

// ReadHistory loads every record of a history log in append order.
// Blank lines are skipped; a malformed line is an error (the log is
// machine-written).
func ReadHistory(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	defer f.Close()
	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return nil, fmt.Errorf("bench: %s:%d: %w", path, line, err)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return recs, nil
}

// RollingMedian returns the median ns/op of benchmark name over the last
// window full (non-quick) records of recs. ok is false when no full
// record carries the benchmark. A window of 0 or less uses every record.
func RollingMedian(recs []Record, name string, window int) (float64, bool) {
	var vals []float64
	for _, r := range recs {
		if r.Quick {
			continue
		}
		if v, has := r.NsPerOp[name]; has && v > 0 {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0, false
	}
	if window > 0 && len(vals) > window {
		vals = vals[len(vals)-window:]
	}
	sort.Float64s(vals)
	if n := len(vals); n%2 == 1 {
		return vals[n/2], true
	} else {
		return (vals[n/2-1] + vals[n/2]) / 2, true
	}
}

// Names returns the sorted union of benchmark names across recs.
func Names(recs []Record) []string {
	set := map[string]bool{}
	for _, r := range recs {
		for n := range r.NsPerOp {
			set[n] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// StageFor maps a phybench benchmark name to the pipeline stage it
// exercises, in the stage profiler's naming — so trend reports can name
// the regressing stage, not just the benchmark. Unmapped names return "".
func StageFor(bench string) string {
	switch bench {
	case "phy_transmit", "phy_transmit_pcg":
		return "phy.tx"
	case "receiver_hunt":
		return "phy.hunt"
	case "receiver_process":
		return "phy.decode"
	case "end_to_end_frame", "end_to_end_frame_spans", "end_to_end_frame_health", "end_to_end_frame_prof",
		"session_frames", "session_frames_arena",
		"fleet_sessions", "fleet_sessions_parallel",
		"fleet_sessions_arena", "fleet_sessions_arena_parallel",
		"broadcast_fanout", "broadcast_fanout_parallel":
		return "sim.frame"
	case "table_construction":
		return "amppm.plan"
	}
	return ""
}
