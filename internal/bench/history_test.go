package bench

import (
	"path/filepath"
	"reflect"
	"testing"
)

func TestAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist", "BENCH_history.jsonl")
	recs := []Record{
		{SHA: "aaa", Stamp: "2026-08-01T00:00:00Z", NsPerOp: map[string]float64{"phy_transmit": 100}},
		{SHA: "bbb", Quick: true, NsPerOp: map[string]float64{"phy_transmit": 500}},
		{SHA: "ccc", NsPerOp: map[string]float64{"phy_transmit": 120, "receiver_hunt": 80}},
	}
	for _, r := range recs {
		if err := Append(path, r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", got, recs)
	}
}

func TestRollingMedianSkipsQuickAndWindows(t *testing.T) {
	recs := []Record{
		{NsPerOp: map[string]float64{"b": 100}},
		{NsPerOp: map[string]float64{"b": 200}},
		{Quick: true, NsPerOp: map[string]float64{"b": 9999}},
		{NsPerOp: map[string]float64{"b": 300}},
		{NsPerOp: map[string]float64{"b": 400}},
	}
	if m, ok := RollingMedian(recs, "b", 0); !ok || m != 250 {
		t.Fatalf("full-window median = %v, %v; want 250, true", m, ok)
	}
	if m, ok := RollingMedian(recs, "b", 3); !ok || m != 300 {
		t.Fatalf("window-3 median = %v, %v; want 300, true", m, ok)
	}
	if _, ok := RollingMedian(recs, "absent", 0); ok {
		t.Fatal("median of absent benchmark reported ok")
	}
	if _, ok := RollingMedian([]Record{{Quick: true, NsPerOp: map[string]float64{"b": 1}}}, "b", 0); ok {
		t.Fatal("quick-only history reported ok")
	}
}

func TestNamesAndStageFor(t *testing.T) {
	recs := []Record{
		{NsPerOp: map[string]float64{"zz": 1, "aa": 2}},
		{NsPerOp: map[string]float64{"mm": 3}},
	}
	if got := Names(recs); !reflect.DeepEqual(got, []string{"aa", "mm", "zz"}) {
		t.Fatalf("Names = %v", got)
	}
	for bench, want := range map[string]string{
		"phy_transmit":       "phy.tx",
		"receiver_hunt":      "phy.hunt",
		"receiver_process":   "phy.decode",
		"session_frames":     "sim.frame",
		"table_construction": "amppm.plan",
		"unmapped":           "",
	} {
		if got := StageFor(bench); got != want {
			t.Fatalf("StageFor(%q) = %q, want %q", bench, got, want)
		}
	}
}
