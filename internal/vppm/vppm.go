// Package vppm implements Variable Pulse Position Modulation, the IEEE
// 802.15.7 dimming-capable scheme the SmartVLC paper cites as related work
// (reference [1]) and uses as an ablation baseline.
//
// VPPM is binary PPM with dimming encoded in the pulse width: every symbol
// spans N slots and contains a single contiguous ON run of w = round(l·N)
// slots. Bit 0 places the run at the start of the symbol, bit 1 at the end.
// One bit per symbol makes VPPM strictly slower than MPPM at every dimming
// level (the paper's footnote 5), but it supports N−1 dimming steps with a
// trivially simple demodulator.
package vppm

import (
	"errors"
	"fmt"
	"math"
)

// DefaultSymbolSlots is the default VPPM symbol length in slots.
const DefaultSymbolSlots = 10

// ErrLevelOutOfRange reports a dimming level whose pulse width would round
// to an empty or full symbol, leaving the two bit values indistinguishable.
var ErrLevelOutOfRange = errors.New("vppm: dimming level yields indistinguishable symbols")

// Codec modulates and demodulates VPPM symbols at a fixed dimming level.
type Codec struct {
	n int // slots per symbol
	w int // ON slots per symbol (pulse width)
}

// NewCodec creates a VPPM codec with n slots per symbol (n ≤ 0 selects
// DefaultSymbolSlots) at the given dimming level.
func NewCodec(n int, level float64) (*Codec, error) {
	if n <= 0 {
		n = DefaultSymbolSlots
	}
	if n < 2 {
		return nil, fmt.Errorf("vppm: symbol length %d too short", n)
	}
	w := int(math.Round(level * float64(n)))
	if w <= 0 || w >= n {
		return nil, ErrLevelOutOfRange
	}
	return &Codec{n: n, w: w}, nil
}

// SymbolSlots returns the symbol length in slots.
func (c *Codec) SymbolSlots() int { return c.n }

// PulseWidth returns the ON-run length in slots.
func (c *Codec) PulseWidth() int { return c.w }

// DimmingLevel returns the exact dimming level the codec produces, w/n.
func (c *Codec) DimmingLevel() float64 { return float64(c.w) / float64(c.n) }

// NormalizedRate returns bits per slot (always 1/n for VPPM).
func (c *Codec) NormalizedRate() float64 { return 1 / float64(c.n) }

// AppendBits appends the VPPM slot stream for nbits data bits (MSB-first
// per byte) to dst and returns it.
func (c *Codec) AppendBits(dst []bool, data []byte, nbits int) ([]bool, error) {
	if nbits < 0 || nbits > len(data)*8 {
		return nil, fmt.Errorf("vppm: nbits %d outside data length %d bits", nbits, len(data)*8)
	}
	for i := 0; i < nbits; i++ {
		bit := data[i/8]>>(7-uint(i%8))&1 == 1
		for s := 0; s < c.n; s++ {
			if bit {
				dst = append(dst, s >= c.n-c.w) // pulse at the end
			} else {
				dst = append(dst, s < c.w) // pulse at the start
			}
		}
	}
	return dst, nil
}

// DecodeBits recovers nbits bits from the slot stream. Each symbol is
// decided by correlating against the two pulse templates (a maximum-
// likelihood decision under symmetric slot noise), which tolerates
// isolated slot errors.
func (c *Codec) DecodeBits(slots []bool, nbits int) ([]byte, error) {
	if len(slots) < nbits*c.n {
		return nil, fmt.Errorf("vppm: slot stream truncated: have %d slots, need %d", len(slots), nbits*c.n)
	}
	out := make([]byte, (nbits+7)/8)
	for i := 0; i < nbits; i++ {
		sym := slots[i*c.n : (i+1)*c.n]
		score0, score1 := 0, 0
		for s, on := range sym {
			if on == (s < c.w) { // matches bit-0 template (pulse at start)
				score0++
			}
			if on == (s >= c.n-c.w) { // matches bit-1 template (pulse at end)
				score1++
			}
		}
		if score1 > score0 {
			out[i/8] |= 1 << (7 - uint(i%8))
		}
	}
	return out, nil
}
