package vppm

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewCodecValidation(t *testing.T) {
	if _, err := NewCodec(10, 0.01); err != ErrLevelOutOfRange {
		t.Errorf("tiny level: err = %v", err)
	}
	if _, err := NewCodec(10, 0.99); err != ErrLevelOutOfRange {
		t.Errorf("huge level: err = %v", err)
	}
	if _, err := NewCodec(1, 0.5); err == nil {
		t.Error("n=1 should fail")
	}
	c, err := NewCodec(0, 0.5)
	if err != nil || c.SymbolSlots() != DefaultSymbolSlots {
		t.Errorf("default n: %v %v", c, err)
	}
}

func TestSymbolShapes(t *testing.T) {
	c, err := NewCodec(10, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if c.PulseWidth() != 3 {
		t.Fatalf("width = %d", c.PulseWidth())
	}
	slots, err := c.AppendBits(nil, []byte{0x80}, 2) // bits: 1, 0
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{
		false, false, false, false, false, false, false, true, true, true, // bit 1: pulse at end
		true, true, true, false, false, false, false, false, false, false, // bit 0: pulse at start
	}
	if len(slots) != len(want) {
		t.Fatalf("len = %d", len(slots))
	}
	for i := range want {
		if slots[i] != want[i] {
			t.Fatalf("slot %d = %v want %v", i, slots[i], want[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw, levelRaw uint8, nbytes uint8) bool {
		n := int(nRaw%30) + 4
		level := 0.15 + float64(levelRaw)/255*0.7
		c, err := NewCodec(n, level)
		if err != nil {
			return true // level rounded to an edge for this n; skip
		}
		rng := rand.New(rand.NewPCG(seed, 3))
		data := make([]byte, int(nbytes)+1)
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		slots, err := c.AppendBits(nil, data, len(data)*8)
		if err != nil {
			return false
		}
		got, err := c.DecodeBits(slots, len(data)*8)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDutyCycleMatchesLevel(t *testing.T) {
	for _, level := range []float64{0.2, 0.5, 0.8} {
		c, err := NewCodec(10, level)
		if err != nil {
			t.Fatal(err)
		}
		slots, _ := c.AppendBits(nil, bytes.Repeat([]byte{0xC5}, 100), 800)
		on := 0
		for _, s := range slots {
			if s {
				on++
			}
		}
		got := float64(on) / float64(len(slots))
		if math.Abs(got-level) > 1e-9 {
			t.Errorf("level %v: duty %v", level, got)
		}
	}
}

func TestDecodeToleratesSingleSlotError(t *testing.T) {
	c, _ := NewCodec(10, 0.4)
	slots, _ := c.AppendBits(nil, []byte{0xF0}, 8)
	slots[3] = !slots[3] // corrupt one slot of the first symbol (width 4)
	got, err := c.DecodeBits(slots, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xF0 {
		t.Fatalf("decode = %#x want 0xF0", got[0])
	}
}

func TestDecodeTruncated(t *testing.T) {
	c, _ := NewCodec(10, 0.5)
	if _, err := c.DecodeBits(make([]bool, 9), 1); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestRateIsOneBitPerSymbol(t *testing.T) {
	c, _ := NewCodec(10, 0.5)
	if got := c.NormalizedRate(); got != 0.1 {
		t.Fatalf("NormalizedRate = %v", got)
	}
	if got := c.DimmingLevel(); got != 0.5 {
		t.Fatalf("DimmingLevel = %v", got)
	}
}
