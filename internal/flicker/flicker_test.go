package flicker

import (
	"math"
	"testing"
	"testing/quick"

	"smartvlc/internal/light"
)

func TestAnalyzeUniformWaveform(t *testing.T) {
	// A fast 50% square wave (1 slot ON, 1 OFF) has no visible ripple.
	slots := make([]bool, 4000)
	for i := range slots {
		slots[i] = i%2 == 0
	}
	a := AnalyzeSlots(slots, 8e-6, 250)
	if a.WindowSlots != 500 {
		t.Fatalf("window = %d", a.WindowSlots)
	}
	if math.Abs(a.MeanDuty-0.5) > 1e-9 {
		t.Fatalf("mean duty %v", a.MeanDuty)
	}
	if a.Ripple() > 0.003 {
		t.Fatalf("ripple %v on a fast square wave", a.Ripple())
	}
	if a.TypeIVisible(light.DefaultTauP) {
		t.Fatal("fast square wave flagged as flicker")
	}
}

func TestAnalyzeSlowWaveformFlickers(t *testing.T) {
	// 100 Hz square wave at 125 kHz slot rate: 625 slots ON, 625 OFF —
	// below the 250 Hz fusion threshold, clearly visible.
	slots := make([]bool, 12500)
	for i := range slots {
		slots[i] = (i/625)%2 == 0
	}
	a := AnalyzeSlots(slots, 8e-6, 250)
	if a.Ripple() < 0.5 {
		t.Fatalf("ripple %v, expected large", a.Ripple())
	}
	if !a.TypeIVisible(light.DefaultTauP) {
		t.Fatal("slow square wave not flagged")
	}
}

func TestAnalyzeEdgeCases(t *testing.T) {
	a := AnalyzeSlots(nil, 8e-6, 250)
	if a.Ripple() != 0 {
		t.Fatal("empty waveform ripple")
	}
	// Waveform shorter than the window: single window equals the mean.
	short := []bool{true, false, true}
	a = AnalyzeSlots(short, 8e-6, 250)
	if math.Abs(a.MeanDuty-2.0/3) > 1e-9 || a.Ripple() > 1e-9 {
		t.Fatalf("short waveform analysis: %+v", a)
	}
}

func TestStepVisible(t *testing.T) {
	// A 0.003 perceived step at the threshold is invisible; 0.01 is not.
	a := 0.5
	b := light.ToMeasured(light.ToPerceived(a) + 0.0029)
	if StepVisible(a, b, light.DefaultTauP) {
		t.Fatal("sub-threshold step flagged")
	}
	c := light.ToMeasured(light.ToPerceived(a) + 0.01)
	if !StepVisible(a, c, light.DefaultTauP) {
		t.Fatal("large step not flagged")
	}
}

func TestPopulationMonotonicity(t *testing.T) {
	p := NewPopulation(20)
	if p.Size() != 20 {
		t.Fatalf("size %d", p.Size())
	}
	for _, v := range []Viewing{Direct, Indirect} {
		for _, c := range []Condition{L1, L2, L3} {
			prev := -1.0
			for res := 0.001; res <= 0.1; res += 0.001 {
				f := p.PerceivingFraction(res, v, c)
				if f < prev-1e-12 {
					t.Fatalf("fraction not monotone in resolution")
				}
				if f < 0 || f > 1 {
					t.Fatalf("fraction %v out of range", f)
				}
				prev = f
			}
		}
	}
}

// TestTable2Shape pins the qualitative structure of paper Table 2.
func TestTable2Shape(t *testing.T) {
	p := NewPopulation(20)

	// Direct viewing: 0.003 invisible everywhere, 0.007 visible to all.
	for _, c := range []Condition{L1, L2, L3} {
		if f := p.PerceivingFraction(0.003, Direct, c); f != 0 {
			t.Errorf("direct 0.003 under %+v: %v", c, f)
		}
		if f := p.PerceivingFraction(0.0075, Direct, c); f != 1 {
			t.Errorf("direct 0.0075 under %+v: %v", c, f)
		}
	}
	// Indirect viewing: 0.04 invisible everywhere, 0.08 visible to all.
	for _, c := range []Condition{L1, L2, L3} {
		if f := p.PerceivingFraction(0.04, Indirect, c); f != 0 {
			t.Errorf("indirect 0.04 under %+v: %v", c, f)
		}
		if f := p.PerceivingFraction(0.08, Indirect, c); f != 1 {
			t.Errorf("indirect 0.08 under %+v: %v", c, f)
		}
	}
	// Darker ambient makes subjects at least as sensitive, at the
	// mid-scale resolutions where the table differentiates.
	for _, res := range []float64{0.005, 0.006} {
		f1 := p.PerceivingFraction(res, Direct, L1)
		f2 := p.PerceivingFraction(res, Direct, L2)
		f3 := p.PerceivingFraction(res, Direct, L3)
		if !(f1 <= f2 && f2 <= f3) {
			t.Errorf("res %v: sensitivity ordering L1=%v L2=%v L3=%v", res, f1, f2, f3)
		}
	}
	// L3 direct at 0.005 splits the panel roughly in half (paper: 50%).
	if f := p.PerceivingFraction(0.005, Direct, L3); f < 0.2 || f > 0.7 {
		t.Errorf("L3 direct 0.005: %v, paper reports 0.5", f)
	}
	// Indirect viewing needs roughly 10x the step.
	d := p.Threshold(10, Direct, L2)
	i := p.Threshold(10, Indirect, L2)
	if i/d < 8 || i/d > 13 {
		t.Errorf("indirect/direct threshold ratio %v", i/d)
	}
}

// TestSafeResolutionNearPaperTauP verifies the procedure that selects
// τ_p: the largest universally invisible step should land at the paper's
// 0.003.
func TestSafeResolutionNearPaperTauP(t *testing.T) {
	p := NewPopulation(20)
	safe := p.SafeResolution()
	if safe < 0.003-1e-9 || safe > 0.004+1e-9 {
		t.Fatalf("SafeResolution = %v, paper picks 0.003", safe)
	}
	// Nobody perceives it under any condition or viewing manner.
	for _, v := range []Viewing{Direct, Indirect} {
		for _, c := range []Condition{L1, L2, L3} {
			if f := p.PerceivingFraction(safe, v, c); f != 0 {
				t.Fatalf("safe resolution perceived: %v under %+v/%v", f, c, v)
			}
		}
	}
}

func TestNormQuantile(t *testing.T) {
	cases := map[float64]float64{
		0.5:   0,
		0.975: 1.959964,
		0.025: -1.959964,
		0.999: 3.090232,
	}
	for p, want := range cases {
		if got := normQuantile(p); math.Abs(got-want) > 1e-4 {
			t.Errorf("normQuantile(%v) = %v want %v", p, got, want)
		}
	}
	if !math.IsInf(normQuantile(0), -1) || !math.IsInf(normQuantile(1), 1) {
		t.Error("boundary quantiles")
	}
}

func TestAnalyzeRippleProperty(t *testing.T) {
	f := func(seed uint64, duty uint8) bool {
		// Any waveform made of whole AMPPM-style blocks shorter than the
		// window has ripple bounded by block-level variation; just check
		// invariants: 0 ≤ min ≤ mean ≤ max ≤ 1.
		n := 5000
		slots := make([]bool, n)
		s := seed
		for i := range slots {
			s = s*6364136223846793005 + 1442695040888963407
			slots[i] = byte(s>>57) < duty
		}
		a := AnalyzeSlots(slots, 8e-6, 250)
		return a.MinDuty >= 0 && a.MinDuty <= a.MeanDuty+1e-9 &&
			a.MeanDuty <= a.MaxDuty+1e-9 && a.MaxDuty <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
