package flicker

import (
	"math"
)

// Viewing is the manner in which a subject observes the luminaire
// (paper Fig. 18).
type Viewing int

// Viewing manners from the user study.
const (
	// Direct: the subject looks straight at the LED.
	Direct Viewing = iota
	// Indirect: the subject judges from the light reflected off the desk,
	// which dilutes the modulation roughly tenfold.
	Indirect
)

// Condition is one ambient setting of the user study.
type Condition struct {
	// Lux is the ambient illuminance.
	Lux float64
	// CeilingOn marks the paper's L1 condition, where the ceiling lights
	// shine directly into the subjects' field of view and mask small LED
	// steps beyond what the illuminance alone explains.
	CeilingOn bool
}

// The paper's three study conditions.
var (
	L1 = Condition{Lux: 9300, CeilingOn: true}
	L2 = Condition{Lux: 8080}
	L3 = Condition{Lux: 16}
)

// Population is a deterministic panel of simulated subjects. Each subject
// has a base perception threshold for direct viewing under bright ambient;
// viewing manner and ambient darkness scale it. Thresholds are placed at
// normal quantiles, so a Population of a given size is reproducible.
type Population struct {
	base []float64 // per-subject direct-viewing threshold, measured domain
}

// Study-model calibration (fit to paper Table 2; see EXPERIMENTS.md).
const (
	baseMean = 0.0059
	baseSD   = 0.0005
	// indirectFactor is how much larger a step must be to be seen in the
	// desk reflection rather than by looking at the LED.
	indirectFactor = 10.5
	// darkestFactor scales thresholds down in darkness (dilated pupils).
	darkestFactor = 0.86
	// luxSpan and ceilingBonus split the remaining sensitivity between
	// illuminance and direct ceiling-light glare.
	luxGain      = 0.07
	ceilingBonus = 0.07
)

// NewPopulation creates n simulated subjects. The paper's panel is 20
// volunteers (10 male, 10 female, aged 19–41).
func NewPopulation(n int) Population {
	base := make([]float64, n)
	for i := range base {
		q := (float64(i) + 0.5) / float64(n)
		base[i] = baseMean + baseSD*normQuantile(q)
	}
	return Population{base: base}
}

// Size returns the panel size.
func (p Population) Size() int { return len(p.base) }

// ambientFactor maps a condition to a threshold multiplier in
// [darkestFactor, 1]: darker rooms dilate pupils and make steps easier to
// see, ceiling glare masks them.
func ambientFactor(c Condition) float64 {
	x := c.Lux / 9300
	if x > 1 {
		x = 1
	}
	if x < 0 {
		x = 0
	}
	f := darkestFactor + luxGain*x
	if c.CeilingOn {
		f += ceilingBonus
	}
	if f > 1 {
		f = 1
	}
	return f
}

// Threshold returns subject i's perception threshold (measured-domain
// resolution) under the given viewing manner and condition.
func (p Population) Threshold(i int, v Viewing, c Condition) float64 {
	t := p.base[i] * ambientFactor(c)
	if v == Indirect {
		t *= indirectFactor
	}
	return t
}

// PerceivingFraction returns the fraction of the panel that perceives a
// dimming-level resolution (step size, measured domain, max intensity 1)
// as flicker — the cell values of paper Table 2.
func (p Population) PerceivingFraction(resolution float64, v Viewing, c Condition) float64 {
	if len(p.base) == 0 {
		return 0
	}
	n := 0
	for i := range p.base {
		if resolution >= p.Threshold(i, v, c) {
			n++
		}
	}
	return float64(n) / float64(len(p.base))
}

// SafeResolution returns the largest step no panel member perceives under
// the worst condition (direct viewing, darkest ambient) — the paper's
// procedure for choosing τ_p = 0.003.
func (p Population) SafeResolution() float64 {
	worst := math.Inf(1)
	for i := range p.base {
		if t := p.Threshold(i, Direct, L3); t < worst {
			worst = t
		}
	}
	// Step just below the most sensitive subject's threshold, with one
	// significant-digit floor like the paper's reported 0.003.
	return math.Floor(worst*1000*0.999) / 1000
}

// normQuantile is Acklam's rational approximation to the standard normal
// inverse CDF (relative error < 1.2e-9), enough to place panel quantiles.
func normQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		if p <= 0 {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
