// Package flicker models both flicker types of the SmartVLC paper (§2.2)
// and the 20-subject user study of §6.3 (Table 2).
//
// Type-I flicker is a visible brightness fluctuation caused by ON/OFF
// modulation slower than the eye's fusion threshold f_th; AMPPM prevents
// it by bounding super-symbols to Nmax = f_tx/f_th slots. Type-II flicker
// is a perceivable *step* between consecutive dimming levels; SmartVLC
// prevents it by stepping at τ_p in the perceived domain. This package
// provides waveform analyzers for the first and a calibrated human
// population model for the second, replacing the paper's physical
// volunteers (see DESIGN.md §2 for the substitution).
package flicker

import (
	"math"

	"smartvlc/internal/light"
)

// Analysis summarizes the low-frequency brightness content of a slot
// waveform.
type Analysis struct {
	// WindowSlots is the averaging window, one fusion period 1/f_th.
	WindowSlots int
	// MeanDuty is the global duty cycle (the dimming level delivered).
	MeanDuty float64
	// MinDuty and MaxDuty are the extreme window duties.
	MinDuty, MaxDuty float64
}

// Ripple returns the peak-to-peak low-frequency brightness variation,
// the quantity the eye can perceive as Type-I flicker.
func (a Analysis) Ripple() float64 { return a.MaxDuty - a.MinDuty }

// AnalyzeSlots slides a 1/f_th window across the waveform. Fluctuations
// faster than f_th average out inside the window and are invisible; what
// remains in MinDuty..MaxDuty is what the eye sees.
func AnalyzeSlots(slots []bool, slotSeconds, fthHz float64) Analysis {
	w := int(math.Round(1 / (fthHz * slotSeconds)))
	if w < 1 {
		w = 1
	}
	if w > len(slots) {
		w = len(slots)
	}
	a := Analysis{WindowSlots: w, MinDuty: math.Inf(1), MaxDuty: math.Inf(-1)}
	if len(slots) == 0 {
		a.MinDuty, a.MaxDuty = 0, 0
		return a
	}
	on := 0
	total := 0
	for i, s := range slots {
		if s {
			on++
			total++
		}
		if i >= w {
			if slots[i-w] {
				on--
			}
		}
		if i >= w-1 {
			d := float64(on) / float64(w)
			a.MinDuty = math.Min(a.MinDuty, d)
			a.MaxDuty = math.Max(a.MaxDuty, d)
		}
	}
	a.MeanDuty = float64(total) / float64(len(slots))
	return a
}

// TypeIVisible reports whether the waveform's low-frequency ripple around
// level would be perceivable: the excursion from the mean, taken to the
// perceived domain, must stay below the population threshold.
func (a Analysis) TypeIVisible(thresholdP float64) bool {
	hi := math.Abs(light.ToPerceived(a.MaxDuty) - light.ToPerceived(a.MeanDuty))
	lo := math.Abs(light.ToPerceived(a.MeanDuty) - light.ToPerceived(a.MinDuty))
	return math.Max(hi, lo) > thresholdP
}

// StepVisible reports whether a single dimming-level change from a to b
// (measured domain) would be perceived as Type-II flicker by the most
// sensitive viewer, i.e. whether its perceived-domain size exceeds
// thresholdP.
func StepVisible(a, b, thresholdP float64) bool {
	return math.Abs(light.ToPerceived(b)-light.ToPerceived(a)) > thresholdP
}
