package photon

import "smartvlc/internal/telemetry"

// Sampler-cache efficiency counters live on the process-global telemetry
// registry: the cache is shared across sessions, so its hit rate is a
// property of the process (a second identically seeded session finds it
// warm), which is why these never enter deterministic session snapshots.
var (
	samplerCacheHits   = telemetry.Global().Counter("photon_sampler_cache_total", "result", "hit")
	samplerCacheMisses = telemetry.Global().Counter("photon_sampler_cache_total", "result", "miss")
)

// SamplerCacheStats reports cumulative hit/miss counts of the per-mean
// Poisson sampler cache behind SamplerFor.
func SamplerCacheStats() (hits, misses int64) {
	return samplerCacheHits.Value(), samplerCacheMisses.Value()
}
