package photon

import (
	"math"
	"math/rand/v2"
)

// This file is the concrete-source twin of the samplers: the same draw
// algorithms taking a *rand.PCG directly instead of the *rand.Rand
// wrapper. (*rand.Rand).Float64 reaches its generator through the
// rand.Source interface, which costs a non-inlinable dynamic call per
// uniform — two per PTRS attempt, one per RX sample on the transmit hot
// path. Calling the concrete PCG lets the whole uniform inline into the
// rejection loop. The streams are bit-identical: PCGFloat64 reproduces
// (*rand.Rand).Float64's exact construction (top 53 bits of one Uint64
// draw), so a Rand and a PCG view of the same generator stay in lockstep
// and the two sampler families can be mixed freely on one stream.

// PCGFloat64 returns the next uniform in [0, 1) from the PCG stream,
// bit-identical to (*rand.Rand).Float64 over the same generator. The
// sampler loops below repeat this expression literally rather than call
// it: with PCG.Uint64 inlined the combined body exceeds the inliner's
// budget, and a call per uniform is exactly the overhead this file
// exists to remove.
func PCGFloat64(p *rand.PCG) float64 {
	return float64(p.Uint64()<<11>>11) / (1 << 53)
}

// SamplePCG is Sample drawing from a concrete PCG stream.
func SamplePCG(p *rand.PCG, lambda float64) int {
	switch {
	case lambda <= 0:
		return 0
	case lambda < 10:
		return sampleKnuthPCG(p, lambda)
	default:
		return samplePTRSPCG(p, lambda)
	}
}

func sampleKnuthPCG(p *rand.PCG, lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	pr := 1.0
	for {
		pr *= float64(p.Uint64()<<11>>11) / (1 << 53)
		if pr <= l {
			return k
		}
		k++
	}
}

// samplePTRSPCG mirrors samplePTRS draw for draw; see the algorithm notes
// there.
func samplePTRSPCG(p *rand.PCG, lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLambda := 0.0
	haveLog := false
	for {
		u := float64(p.Uint64()<<11>>11)/(1<<53) - 0.5
		v := float64(p.Uint64()<<11>>11) / (1 << 53)
		us := 0.5 - math.Abs(u)
		kf := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(kf)
		}
		if kf < 0 || (us < 0.013 && v > us) {
			continue
		}
		k := int(kf)
		lg := lnFact(kf)
		if !haveLog {
			logLambda, haveLog = math.Log(lambda), true
		}
		if v*invAlpha/(a/(us*us)+b) <= math.Exp(kf*logLambda-lambda-lg) {
			return k
		}
	}
}

// SampleNPCG is SampleN drawing from a concrete PCG stream; the two are
// bit-exact twins over the same generator.
func (s *Sampler) SampleNPCG(p *rand.PCG, dst []int) {
	switch {
	case s.lambda <= 0:
		for i := range dst {
			dst[i] = 0
		}
	case s.cdf != nil:
		cdf, guide, m := s.cdf, s.guide, float64(len(s.guide))
		for i := range dst {
			u := float64(p.Uint64()<<11>>11) / (1 << 53)
			k := int(guide[int(u*m)])
			for u >= cdf[k] {
				k++
				if k == len(cdf) {
					k = s.tailDraw(u)
					break
				}
			}
			dst[i] = k
		}
	default:
		a, b, vr, lambda := s.a, s.b, s.vr, s.lambda
		for i := range dst {
			for {
				u := float64(p.Uint64()<<11>>11)/(1<<53) - 0.5
				v := float64(p.Uint64()<<11>>11) / (1 << 53)
				us := 0.5 - math.Abs(u)
				kf := math.Floor((2*a/us+b)*u + lambda + 0.43)
				if us >= 0.07 && v <= vr {
					dst[i] = int(kf)
					break
				}
				if kf < 0 || (us < 0.013 && v > us) {
					continue
				}
				k := int(kf)
				var bound float64
				if k < len(s.accept) {
					bound = s.accept[k]
				} else {
					bound = s.acceptAt(kf)
				}
				if v*s.invAlpha/(a/(us*us)+b) <= bound {
					dst[i] = k
					break
				}
			}
		}
	}
}
