package photon

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"smartvlc/internal/optics"
)

func TestPMFSumsToOne(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 17, 50, 200} {
		sum := 0.0
		for k := 0; float64(k) < lambda+40*math.Sqrt(lambda)+20; k++ {
			sum += PMF(lambda, k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("lambda %v: PMF sums to %v", lambda, sum)
		}
	}
}

func TestTailIdentities(t *testing.T) {
	f := func(lRaw, kRaw uint16) bool {
		lambda := float64(lRaw)/65535*300 + 0.01
		k := int(kRaw) % 400
		ge := TailGE(lambda, k)
		lt := CDFLT(lambda, k)
		if math.Abs(ge+lt-1) > 1e-9 {
			return false
		}
		return ge >= 0 && ge <= 1 && lt >= 0 && lt <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTailKnownValues(t *testing.T) {
	// P(Pois(1) >= 1) = 1 - e^-1.
	if got := TailGE(1, 1); math.Abs(got-(1-math.Exp(-1))) > 1e-12 {
		t.Fatalf("TailGE(1,1) = %v", got)
	}
	// P(Pois(50) >= 77) ~ 2.6e-4 region, computed independently: compare
	// against direct summation of PMF.
	direct := 0.0
	for k := 77; k < 300; k++ {
		direct += PMF(50, k)
	}
	if got := TailGE(50, 77); math.Abs(got-direct) > 1e-12 {
		t.Fatalf("TailGE(50,77) = %v want %v", got, direct)
	}
	if TailGE(5, 0) != 1 || CDFLT(5, 0) != 0 {
		t.Fatal("boundary k=0 wrong")
	}
	if TailGE(0, 3) != 0 || CDFLT(0, 3) != 1 {
		t.Fatal("lambda=0 wrong")
	}
}

func TestSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 1))
	for _, lambda := range []float64{0.3, 4, 9.9, 10.1, 35, 120, 900} {
		n := 200000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := float64(Sample(rng, lambda))
			sum += x
			sumSq += x * x
		}
		mean := sum / float64(n)
		variance := sumSq/float64(n) - mean*mean
		se := math.Sqrt(lambda / float64(n))
		if math.Abs(mean-lambda) > 5*se {
			t.Errorf("lambda %v: mean %v", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.05*lambda+5*se {
			t.Errorf("lambda %v: variance %v", lambda, variance)
		}
	}
}

func TestSampleTailFrequencyMatchesExact(t *testing.T) {
	// The tail fidelity is what drives simulated P1/P2, so check the
	// sampler reproduces a ~1e-3 tail within sampling error.
	rng := rand.New(rand.NewPCG(7, 7))
	const lambda = 50.0
	k := 73 // P(X >= 73) ≈ 1.25e-3
	want := TailGE(lambda, k)
	n := 2_000_000
	hits := 0
	for i := 0; i < n; i++ {
		if Sample(rng, lambda) >= k {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	sigma := math.Sqrt(want * (1 - want) / float64(n))
	if math.Abs(got-want) > 5*sigma {
		t.Fatalf("tail freq %v want %v (±%v)", got, want, sigma)
	}
}

func TestSampleZeroLambda(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if Sample(rng, 0) != 0 || Sample(rng, -3) != 0 {
		t.Fatal("non-positive lambda should sample 0")
	}
}

func TestOptimalThresholdSeparates(t *testing.T) {
	c := Channel{SignalPerSlot: 62, AmbientPerSlot: 50}
	k := c.OptimalThreshold()
	if k <= 50 || k >= 112 {
		t.Fatalf("threshold %d outside (50, 112)", k)
	}
	p1, p2 := c.ErrorProbs(k)
	if p1 > 5e-4 || p2 > 5e-4 {
		t.Fatalf("error probs %v %v too high", p1, p2)
	}
}

// TestCalibrationMatchesPaper verifies the headline calibration: at the
// paper's worst case (3.6 m, bright ambient ≈ 9700 lux) the slot error
// probabilities are within a factor ~3 of the measured P1 = 9e-5,
// P2 = 8e-5. The Poisson model cannot hit both exactly with one threshold,
// but the order of magnitude is the behaviour that matters.
func TestCalibrationMatchesPaper(t *testing.T) {
	b := DefaultLinkBudget()
	full, err := b.ChannelAt(optics.Aligned(3.6, 0), 9700)
	if err != nil {
		t.Fatal(err)
	}
	// The receiver integrates 3 of 4 samples, so the calibration target
	// lives at the 0.75-scaled window: ≈66 signal and ≈45 ambient counts.
	ch := full.Scaled(0.75)
	if math.Abs(ch.SignalPerSlot-66) > 5 {
		t.Fatalf("window signal at 3.6 m = %v, calibration target 66", ch.SignalPerSlot)
	}
	if math.Abs(ch.AmbientPerSlot-45) > 5 {
		t.Fatalf("window ambient = %v, calibration target 45", ch.AmbientPerSlot)
	}
	k := ch.OptimalThreshold()
	p1, p2 := ch.ErrorProbs(k)
	if p1 < 3e-5 || p1 > 3e-4 {
		t.Fatalf("P1 = %v, want order 9e-5", p1)
	}
	if p2 < 2e-5 || p2 > 3e-4 {
		t.Fatalf("P2 = %v, want order 8e-5", p2)
	}
}

func TestChannelDegradesWithDistance(t *testing.T) {
	b := DefaultLinkBudget()
	prevSig := math.Inf(1)
	for _, d := range []float64{1, 2, 3, 3.6, 4.2, 5} {
		ch, err := b.ChannelAt(optics.Aligned(d, 0), 5000)
		if err != nil {
			t.Fatal(err)
		}
		if ch.SignalPerSlot >= prevSig {
			t.Fatalf("signal not decreasing at %v m", d)
		}
		prevSig = ch.SignalPerSlot
	}
	// Beyond the cliff the slot error rate must be catastrophic at frame
	// scale: a 1000-slot frame with p1+p2 > 0.02 has essentially zero
	// chance of surviving the CRC.
	farFull, _ := b.ChannelAt(optics.Aligned(5, 0), 9700)
	far := farFull.Scaled(0.75)
	p1, p2 := far.ErrorProbs(far.OptimalThreshold())
	if p1+p2 < 0.02 {
		t.Fatalf("5 m link should be broken, p1+p2 = %v", p1+p2)
	}
}

func TestChannelAtValidation(t *testing.T) {
	b := DefaultLinkBudget()
	if _, err := b.ChannelAt(optics.Geometry{}, 100); err == nil {
		t.Fatal("zero distance accepted")
	}
	if _, err := b.ChannelAt(optics.Aligned(1, 0), -5); err == nil {
		t.Fatal("negative lux accepted")
	}
}

func TestMeanForTransitions(t *testing.T) {
	c := Channel{SignalPerSlot: 100, AmbientPerSlot: 10}
	if got := c.MeanFor(1, 1); got != 110 {
		t.Fatalf("full ON slot mean %v", got)
	}
	if got := c.MeanFor(0, 1); got != 10 {
		t.Fatalf("OFF slot mean %v", got)
	}
	if got := c.MeanFor(0.5, 0.25); math.Abs(got-15) > 1e-12 {
		t.Fatalf("quarter window half intensity mean %v", got)
	}
}

func BenchmarkSampleSmallLambda(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < b.N; i++ {
		Sample(rng, 3.5)
	}
}

func BenchmarkSampleLargeLambda(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < b.N; i++ {
		Sample(rng, 120)
	}
}
