package photon

import (
	"fmt"
	"math"
	"math/rand/v2"

	"smartvlc/internal/optics"
)

// Channel is the slot-level detection channel at one operating point:
// fixed link geometry and ambient level.
type Channel struct {
	// SignalPerSlot is the mean photon count contributed by the LED during
	// a full ON slot. Duty-cycle dimming does not change it — ON slots are
	// always at full amplitude, which is why the communication range is
	// independent of the dimming level (paper Fig. 16).
	SignalPerSlot float64
	// AmbientPerSlot is the mean count from ambient light plus dark
	// current, present in every slot.
	AmbientPerSlot float64
}

// MeanFor returns the Poisson mean for an integration window covering
// fraction frac of a slot during which the LED emits at the given relative
// intensity (0..1; fractional values occur during rise/fall transitions).
func (c Channel) MeanFor(intensity, frac float64) float64 {
	return (intensity*c.SignalPerSlot + c.AmbientPerSlot) * frac
}

// SampleCount draws a photon count for such a window.
func (c Channel) SampleCount(rng *rand.Rand, intensity, frac float64) int {
	return Sample(rng, c.MeanFor(intensity, frac))
}

// Scaled returns the channel seen through an integration window covering
// the given fraction of a slot — e.g. the receiver's three-of-four-sample
// window is Scaled(0.75).
func (c Channel) Scaled(frac float64) Channel {
	return Channel{SignalPerSlot: c.SignalPerSlot * frac, AmbientPerSlot: c.AmbientPerSlot * frac}
}

// OptimalThreshold returns the integer count threshold k that minimizes
// P1 + P2, where a slot is decided ON when its count is ≥ k.
func (c Channel) OptimalThreshold() int {
	lo := int(c.AmbientPerSlot)
	hi := int(c.AmbientPerSlot+c.SignalPerSlot) + 2
	bestK, bestErr := hi, math.Inf(1)
	for k := lo; k <= hi; k++ {
		p1, p2 := c.ErrorProbs(k)
		if e := p1 + p2; e < bestErr {
			bestK, bestErr = k, e
		}
	}
	return bestK
}

// ErrorProbs returns the paper's slot error probabilities for a threshold
// k: P1 = P(OFF decoded as ON) = P(Pois(ambient) ≥ k) and
// P2 = P(ON decoded as OFF) = P(Pois(ambient+signal) < k).
func (c Channel) ErrorProbs(k int) (p1, p2 float64) {
	p1 = TailGE(c.AmbientPerSlot, k)
	p2 = CDFLT(c.AmbientPerSlot+c.SignalPerSlot, k)
	return p1, p2
}

// LinkBudget converts link geometry and ambient illuminance into a Channel.
// Its effective constants fold the photodiode responsivity, amplifier and
// ADC noise into an equivalent photon-counting efficiency, calibrated so
// the paper's measured operating point is reproduced: at 3.6 m on-axis
// under bright ambient (≈9700 lux) the slot error probabilities come out
// at the paper's P1 = 9e-5, P2 = 8e-5.
type LinkBudget struct {
	Emitter  optics.Emitter
	Receiver optics.Receiver
	// EtaCountsPerWatt is the effective counts per slot per received watt.
	EtaCountsPerWatt float64
	// AmbientCountsPerLux is the effective ambient counts per slot per lux.
	AmbientCountsPerLux float64
	// DarkCounts is the residual mean count with no light at all.
	DarkCounts float64
}

// DefaultLinkBudget returns the calibrated budget (see package comment and
// DESIGN.md §6 for the calibration). The receiver's detection window
// integrates 3 of the 4 samples per slot (phy.DetectionFraction = 0.75),
// so the per-slot constants are 4/3 of the window-level calibration
// targets: the window then sees ≈66 signal counts and ≈45 ambient counts
// at the paper's 3.6 m / 9700 lux operating point, which puts the optimal-
// threshold slot error probabilities at P1 = 4.6e-5, P2 = 7.9e-5 — the
// paper measures 9e-5 and 8e-5 there.
func DefaultLinkBudget() LinkBudget {
	return LinkBudget{
		Emitter:  optics.DefaultEmitter(),
		Receiver: optics.DefaultReceiver(),
		// Received power at 3.6 m on-axis is ≈ 4.28 µW with the default
		// emitter/receiver; (66/0.75) counts / 4.28 µW ≈ 2.06e7 counts/W.
		EtaCountsPerWatt: 2.06e7,
		// (45/0.75) counts per slot at 9760 lux.
		AmbientCountsPerLux: 45.0 / 0.75 / 9760,
		DarkCounts:          0.07,
	}
}

// ChannelAt builds the detection channel for a geometry and ambient level.
func (b LinkBudget) ChannelAt(g optics.Geometry, ambientLux float64) (Channel, error) {
	if err := g.Validate(); err != nil {
		return Channel{}, err
	}
	if ambientLux < 0 {
		return Channel{}, fmt.Errorf("photon: negative ambient %v lux", ambientLux)
	}
	pr := optics.ReceivedPower(b.Emitter, b.Receiver, g)
	return Channel{
		SignalPerSlot:  pr * b.EtaCountsPerWatt,
		AmbientPerSlot: ambientLux*b.AmbientCountsPerLux + b.DarkCounts,
	}, nil
}
