package photon

import (
	"math"
	"math/rand/v2"
	"sync"
)

// Sampler draws Poisson variates for one fixed mean with all
// lambda-dependent work precomputed. It offers two draw disciplines:
//
//   - Sample mirrors the one-shot Sample(rng, lambda): it consumes the
//     rng identically and returns bit-identical variates, which is what
//     lets a cached sampler substitute for the scalar call inside a
//     seeded session without perturbing it.
//   - SampleN / SampleNPCG are the block fills of the batched transmit
//     pipeline. For means up to maxTableLambda they draw by inverted CDF
//     through a guide table — one uniform and ~two comparisons per
//     variate, the cheapest exact discrete sampling known — and so
//     consume the rng differently from Sample (the distribution is
//     identical; the stream is not). The two block fills are bit-exact
//     twins of each other over the same generator. Beyond
//     maxTableLambda they fall back to the PTRS loop and there they DO
//     match Sample draw for draw.
//
// A Sampler is immutable after construction and safe for concurrent use
// (each call still needs its own rng, as with Sample).
type Sampler struct {
	lambda float64

	// Knuth path (lambda < 10).
	expNegLambda float64

	// PTRS path (lambda >= 10): Hörmann's envelope constants and the
	// pretabulated acceptance bound exp(k·lnλ − λ − ln k!) covering the
	// plausible candidate range (beyond it the bound is recomputed, via
	// the identical expression, so draws stay bit-identical to Sample).
	logLambda, b, a, invAlpha, vr float64
	accept                        []float64 // accept[k] = exp(k·lnλ − λ − ln k!)

	// Inverse-CDF block path (0 < lambda <= maxTableLambda): cdf[k] is
	// P(X ≤ k) over the same support bound as the accept table, guide[j]
	// the smallest k with cdf[k] > j/len(guide) (Chen–Asau indexed
	// search), lastPMF the mass at the table edge so the (astronomically
	// unlikely) far tail can be continued term by term.
	cdf     []float64
	guide   []int32
	lastPMF float64
}

// maxTableLambda bounds the means that get an inverse-CDF table: the
// table holds O(lambda) float64s, and the PTRS fallback is already
// near-optimal for means this large.
const maxTableLambda = 4096

// NewSampler builds a sampler for the mean. Non-positive means always
// sample zero, mirroring Sample.
func NewSampler(lambda float64) *Sampler {
	s := &Sampler{lambda: lambda}
	switch {
	case lambda <= 0:
	case lambda < 10:
		s.expNegLambda = math.Exp(-lambda)
	default:
		s.logLambda = math.Log(lambda)
		s.b = 0.931 + 2.53*math.Sqrt(lambda)
		s.a = -0.059 + 0.02483*s.b
		s.invAlpha = 1.1239 + 1.1328/(s.b-3.4)
		s.vr = 0.9277 - 3.6224/(s.b-2)
		// Rejection candidates concentrate within a few σ of the mean;
		// cover a generous range and fall back to recomputing beyond it.
		n := int(lambda+12*math.Sqrt(lambda)) + 32
		s.accept = make([]float64, n)
		for k := 0; k < n; k++ {
			s.accept[k] = s.acceptAt(float64(k))
		}
	}
	if lambda > 0 && lambda <= maxTableLambda {
		s.buildTable()
	}
	return s
}

// buildTable precomputes the inverse-CDF guide table for the block
// fills. The PMF is grown outward from the mode by the stable two-term
// recurrence, so no intermediate underflows even though P(X=0) does for
// large means; the support bound matches the accept table (tail mass
// beyond it is below 1e-30 and handled by tailDraw).
func (s *Sampler) buildTable() {
	lambda := s.lambda
	n := int(lambda+12*math.Sqrt(lambda)) + 32
	pmf := make([]float64, n)
	mode := int(lambda)
	lg, _ := math.Lgamma(float64(mode) + 1)
	pmf[mode] = math.Exp(float64(mode)*math.Log(lambda) - lambda - lg)
	for k := mode; k+1 < n; k++ {
		pmf[k+1] = pmf[k] * lambda / float64(k+1)
	}
	for k := mode; k > 0; k-- {
		pmf[k-1] = pmf[k] * float64(k) / lambda
	}
	s.cdf = make([]float64, n)
	c := 0.0
	for k, p := range pmf {
		c += p
		s.cdf[k] = c
	}
	s.lastPMF = pmf[n-1]
	// guide[j] = min{k : cdf[k] > j/m}: a draw u in cell j starts its
	// scan at guide[j], which can never overshoot the answer because
	// u ≥ j/m. Two cells per support point keeps the expected scan under
	// two comparisons.
	m := 2 * n
	s.guide = make([]int32, m)
	j := 0
	for k := 0; k < n; k++ {
		for j < m && float64(j)/float64(m) < s.cdf[k] {
			s.guide[j] = int32(k)
			j++
		}
	}
	for ; j < m; j++ {
		s.guide[j] = int32(n - 1)
	}
}

// tableDraw maps one uniform onto the Poisson variate by indexed
// inverse-CDF search: the answer is the smallest k with u < cdf[k].
func (s *Sampler) tableDraw(u float64) int {
	k := int(s.guide[int(u*float64(len(s.guide)))])
	for u >= s.cdf[k] {
		k++
		if k == len(s.cdf) {
			return s.tailDraw(u)
		}
	}
	return k
}

// tailDraw continues the CDF beyond the table term by term. The table
// covers the mean plus twelve standard deviations, so landing here needs
// a uniform within ~1e-30 of 1 — it exists for correctness, not speed.
func (s *Sampler) tailDraw(u float64) int {
	k := len(s.cdf) - 1
	c, p := s.cdf[k], s.lastPMF
	for u >= c {
		k++
		p *= s.lambda / float64(k)
		c += p
		if p < 1e-320 {
			break
		}
	}
	return k
}

// acceptAt computes the PTRS acceptance bound exp(k·lnλ − λ − ln k!) with
// the exact expression Sample uses, keeping the two bit-identical.
func (s *Sampler) acceptAt(kf float64) float64 {
	return math.Exp(kf*s.logLambda - s.lambda - lnFact(kf))
}

// Lambda returns the mean the sampler was built for.
func (s *Sampler) Lambda() float64 { return s.lambda }

// Sample draws one Poisson(lambda) variate, consuming the rng exactly as
// Sample(rng, lambda) would.
func (s *Sampler) Sample(rng *rand.Rand) int {
	switch {
	case s.lambda <= 0:
		return 0
	case s.lambda < 10:
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= s.expNegLambda {
				return k
			}
			k++
		}
	}
	for {
		u := rng.Float64() - 0.5
		v := rng.Float64()
		us := 0.5 - math.Abs(u)
		kf := math.Floor((2*s.a/us+s.b)*u + s.lambda + 0.43)
		if us >= 0.07 && v <= s.vr {
			return int(kf)
		}
		if kf < 0 || (us < 0.013 && v > us) {
			continue
		}
		k := int(kf)
		var bound float64
		if k < len(s.accept) {
			bound = s.accept[k]
		} else {
			bound = s.acceptAt(kf)
		}
		if v*s.invAlpha/(s.a/(us*us)+s.b) <= bound {
			return k
		}
	}
}

// SampleN fills dst with Poisson(lambda) variates. This is the
// settled-run block fill of the batched transmit pipeline: one call
// covers a whole run of windows that share the sampler's mean, so the
// per-call dispatch, constant loads, and (for tabled means) the entire
// rejection machinery are amortized over the run. Means within
// maxTableLambda draw by inverted CDF — one uniform each — and so
// consume the rng differently from Sample; larger means fall back to
// the PTRS loop, which matches Sample draw for draw.
func (s *Sampler) SampleN(rng *rand.Rand, dst []int) {
	switch {
	case s.lambda <= 0:
		for i := range dst {
			dst[i] = 0
		}
	case s.cdf != nil:
		cdf, guide, m := s.cdf, s.guide, float64(len(s.guide))
		for i := range dst {
			u := rng.Float64()
			k := int(guide[int(u*m)])
			for u >= cdf[k] {
				k++
				if k == len(cdf) {
					k = s.tailDraw(u)
					break
				}
			}
			dst[i] = k
		}
	default:
		a, b, vr, lambda := s.a, s.b, s.vr, s.lambda
		for i := range dst {
			for {
				u := rng.Float64() - 0.5
				v := rng.Float64()
				us := 0.5 - math.Abs(u)
				kf := math.Floor((2*a/us+b)*u + lambda + 0.43)
				if us >= 0.07 && v <= vr {
					dst[i] = int(kf)
					break
				}
				if kf < 0 || (us < 0.013 && v > us) {
					continue
				}
				k := int(kf)
				var bound float64
				if k < len(s.accept) {
					bound = s.accept[k]
				} else {
					bound = s.acceptAt(kf)
				}
				if v*s.invAlpha/(a/(us*us)+b) <= bound {
					dst[i] = k
					break
				}
			}
		}
	}
}

// samplerCache memoizes Samplers by mean. A simulated link reuses the
// same handful of means (one per settled LED state per operating point),
// so the cache stays small while the sweeps hit it constantly. A plain
// map under RWMutex (rather than sync.Map) keeps the float64 key from
// being boxed into an interface on every lookup — SamplerFor sits on the
// per-Transmit path and must stay allocation-free once warm.
var (
	samplerCacheMu sync.RWMutex
	samplerCache   = map[float64]*Sampler{}
)

// SamplerFor returns a shared Sampler for the mean, building it on first
// use. Safe for concurrent use.
func SamplerFor(lambda float64) *Sampler {
	samplerCacheMu.RLock()
	s := samplerCache[lambda]
	samplerCacheMu.RUnlock()
	if s != nil {
		samplerCacheHits.Inc()
		return s
	}
	samplerCacheMisses.Inc()
	samplerCacheMu.Lock()
	if s = samplerCache[lambda]; s == nil {
		s = NewSampler(lambda)
		samplerCache[lambda] = s
	}
	samplerCacheMu.Unlock()
	return s
}
