package photon

import (
	"math"
	"math/rand/v2"
	"sync"
)

// Sampler draws Poisson variates for one fixed mean with all
// lambda-dependent constants precomputed. Sample recomputes log(lambda),
// the PTRS envelope constants and (in the rejection branch) a log-
// factorial on every call; at one draw per RX sample that arithmetic
// dominates the transmit path. A Sampler hoists it: the draws consume the
// rng identically and return bit-identical variates to Sample for the
// same mean.
//
// A Sampler is immutable after construction and safe for concurrent use
// (each call still needs its own rng, as with Sample).
type Sampler struct {
	lambda float64

	// Knuth path (lambda < 10).
	expNegLambda float64

	// PTRS path (lambda >= 10): Hörmann's envelope constants and the
	// pretabulated acceptance bound exp(k·lnλ − λ − ln k!) covering the
	// plausible candidate range (beyond it the bound is recomputed, via
	// the identical expression, so draws stay bit-identical to Sample).
	logLambda, b, a, invAlpha, vr float64
	accept                        []float64 // accept[k] = exp(k·lnλ − λ − ln k!)
}

// NewSampler builds a sampler for the mean. Non-positive means always
// sample zero, mirroring Sample.
func NewSampler(lambda float64) *Sampler {
	s := &Sampler{lambda: lambda}
	switch {
	case lambda <= 0:
	case lambda < 10:
		s.expNegLambda = math.Exp(-lambda)
	default:
		s.logLambda = math.Log(lambda)
		s.b = 0.931 + 2.53*math.Sqrt(lambda)
		s.a = -0.059 + 0.02483*s.b
		s.invAlpha = 1.1239 + 1.1328/(s.b-3.4)
		s.vr = 0.9277 - 3.6224/(s.b-2)
		// Rejection candidates concentrate within a few σ of the mean;
		// cover a generous range and fall back to recomputing beyond it.
		n := int(lambda+12*math.Sqrt(lambda)) + 32
		s.accept = make([]float64, n)
		for k := 0; k < n; k++ {
			s.accept[k] = s.acceptAt(float64(k))
		}
	}
	return s
}

// acceptAt computes the PTRS acceptance bound exp(k·lnλ − λ − ln k!) with
// the exact expression Sample uses, keeping the two bit-identical.
func (s *Sampler) acceptAt(kf float64) float64 {
	lg, _ := math.Lgamma(kf + 1)
	return math.Exp(kf*s.logLambda - s.lambda - lg)
}

// Lambda returns the mean the sampler was built for.
func (s *Sampler) Lambda() float64 { return s.lambda }

// Sample draws one Poisson(lambda) variate, consuming the rng exactly as
// Sample(rng, lambda) would.
func (s *Sampler) Sample(rng *rand.Rand) int {
	switch {
	case s.lambda <= 0:
		return 0
	case s.lambda < 10:
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= s.expNegLambda {
				return k
			}
			k++
		}
	}
	for {
		u := rng.Float64() - 0.5
		v := rng.Float64()
		us := 0.5 - math.Abs(u)
		kf := math.Floor((2*s.a/us+s.b)*u + s.lambda + 0.43)
		if us >= 0.07 && v <= s.vr {
			return int(kf)
		}
		if kf < 0 || (us < 0.013 && v > us) {
			continue
		}
		k := int(kf)
		var bound float64
		if k < len(s.accept) {
			bound = s.accept[k]
		} else {
			bound = s.acceptAt(kf)
		}
		if v*s.invAlpha/(s.a/(us*us)+s.b) <= bound {
			return k
		}
	}
}

// samplerCache memoizes Samplers by mean. A simulated link reuses the
// same handful of means (one per settled LED state per operating point),
// so the cache stays small while the sweeps hit it constantly.
var samplerCache sync.Map // float64 → *Sampler

// SamplerFor returns a shared Sampler for the mean, building it on first
// use. Safe for concurrent use.
func SamplerFor(lambda float64) *Sampler {
	if v, ok := samplerCache.Load(lambda); ok {
		samplerCacheHits.Inc()
		return v.(*Sampler)
	}
	samplerCacheMisses.Inc()
	v, _ := samplerCache.LoadOrStore(lambda, NewSampler(lambda))
	return v.(*Sampler)
}
