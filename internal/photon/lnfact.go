package photon

import "math"

// lnFactTableN bounds the precomputed ln k! table. PTRS rejection tests
// evaluate ln k! for k within a few standard deviations of lambda, and
// the session workloads keep lambda well below this bound; larger k fall
// back to math.Lgamma.
const lnFactTableN = 4096

// lnFactTable[k] = ln k! = math.Lgamma(k+1), precomputed once. Each entry
// IS the math.Lgamma result for that integer argument — not a different
// approximation — so replacing the call with a table read leaves every
// sampler's accept/reject decisions, and therefore every drawn stream,
// bit-identical.
var lnFactTable = func() []float64 {
	t := make([]float64, lnFactTableN)
	for k := range t {
		lg, _ := math.Lgamma(float64(k) + 1)
		t[k] = lg
	}
	return t
}()

// lnFact returns ln(kf!) for a non-negative integer-valued kf,
// bit-identical to math.Lgamma(kf+1).
func lnFact(kf float64) float64 {
	if k := int(kf); k >= 0 && k < lnFactTableN {
		return lnFactTable[k]
	}
	lg, _ := math.Lgamma(kf + 1)
	return lg
}
