// Package photon models the receiver's slot detection as a Poisson
// photon-counting process, the model the SmartVLC paper itself adopts for
// Eq. 3 (following Sugiyama & Nosu's MPPM analysis, paper reference [34]).
//
// Each slot the photodiode integrates a Poisson-distributed photon count
// whose mean is the sum of an LED signal term (present in ON slots) and an
// ambient term; a threshold detector decides ON/OFF. The package provides
// exact tail probabilities (used to tune the detection threshold and to
// derive the paper's P1/P2 slot error probabilities) and an exact sampler
// (Knuth for small means, Hörmann's PTRS transformed rejection for large),
// so simulated error rates at the 1e-4..1e-5 level are faithful.
package photon

import (
	"math"
	"math/rand/v2"
)

// LogPMF returns ln P(X = k) for X ~ Poisson(lambda).
func LogPMF(lambda float64, k int) float64 {
	if k < 0 || lambda < 0 {
		return math.Inf(-1)
	}
	if lambda == 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return float64(k)*math.Log(lambda) - lambda - lg
}

// PMF returns P(X = k).
func PMF(lambda float64, k int) float64 { return math.Exp(LogPMF(lambda, k)) }

// TailGE returns P(X ≥ k) for X ~ Poisson(lambda), by direct stable
// summation from the mode outward. Accurate to ~1e-15 relative for the
// means used in this simulator (λ ≲ 1e5).
func TailGE(lambda float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if lambda <= 0 {
		return 0
	}
	// Sum the smaller side for accuracy.
	if float64(k) > lambda {
		// Right tail: sum P(X=k) + P(X=k+1) + ...
		p := PMF(lambda, k)
		sum := p
		for i := k + 1; ; i++ {
			p *= lambda / float64(i)
			sum += p
			if p < sum*1e-17 || p < 1e-320 {
				break
			}
		}
		return sum
	}
	// Left side smaller: 1 − P(X < k).
	return 1 - CDFLT(lambda, k)
}

// CDFLT returns P(X < k) = P(X ≤ k−1).
func CDFLT(lambda float64, k int) float64 {
	if k <= 0 {
		return 0
	}
	if lambda <= 0 {
		return 1
	}
	if float64(k) <= lambda {
		// Left tail: sum downward from k−1.
		p := PMF(lambda, k-1)
		sum := p
		for i := k - 1; i > 0; i-- {
			p *= float64(i) / lambda
			sum += p
			if p < sum*1e-17 || p < 1e-320 {
				break
			}
		}
		return sum
	}
	return 1 - TailGE(lambda, k)
}

// Sample draws one Poisson(lambda) variate. It is exact for all lambda:
// Knuth's product method below 10, Hörmann's PTRS transformed rejection
// above.
func Sample(rng *rand.Rand, lambda float64) int {
	switch {
	case lambda <= 0:
		return 0
	case lambda < 10:
		return sampleKnuth(rng, lambda)
	default:
		return samplePTRS(rng, lambda)
	}
}

func sampleKnuth(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// samplePTRS implements Hörmann (1993), "The transformed rejection method
// for generating Poisson random variables", valid for lambda ≥ 10.
func samplePTRS(rng *rand.Rand, lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	// The squeeze accept below resolves most draws without ever needing
	// log(lambda), so it is computed lazily on the first rejection test.
	// The acceptance inequality is evaluated in its exponentiated form,
	//   v·α/(a/us² + b) ≤ exp(k·lnλ − λ − ln k!),
	// whose right side depends only on k — which is what lets Sampler
	// pretabulate it and skip the log and Lgamma entirely. Sample and
	// Sampler must keep using the identical expression so their draws
	// stay bit-for-bit in lockstep.
	logLambda := 0.0
	haveLog := false
	for {
		u := rng.Float64() - 0.5
		v := rng.Float64()
		us := 0.5 - math.Abs(u)
		kf := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(kf)
		}
		if kf < 0 || (us < 0.013 && v > us) {
			continue
		}
		k := int(kf)
		lg := lnFact(kf)
		if !haveLog {
			logLambda, haveLog = math.Log(lambda), true
		}
		if v*invAlpha/(a/(us*us)+b) <= math.Exp(kf*logLambda-lambda-lg) {
			return k
		}
	}
}
