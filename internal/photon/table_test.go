package photon

import (
	"math"
	"math/rand/v2"
	"testing"
)

// tableLambdas spans the tabled range: sub-unity means (dark air),
// Knuth-range means, the PTRS threshold, realistic RX signal means, and
// the table ceiling.
var tableLambdas = []float64{0.05, 0.5, 3, 9.9, 10, 47.3, 800, 4096}

// TestTableCDFNormalized pins the construction invariants of the
// inverse-CDF table: the CDF reaches 1 within float rounding (the
// mode-outward PMF recurrence must not lose mass), and the guide is
// monotone with every entry a valid scan start (guide[j] ≤ answer for
// any u in cell j).
func TestTableCDFNormalized(t *testing.T) {
	for _, lambda := range tableLambdas {
		s := NewSampler(lambda)
		if s.cdf == nil {
			t.Fatalf("lambda %v: no table", lambda)
		}
		if last := s.cdf[len(s.cdf)-1]; math.Abs(last-1) > 1e-9 {
			t.Errorf("lambda %v: cdf tail %v", lambda, last)
		}
		m := len(s.guide)
		for j, g := range s.guide {
			if j > 0 && g < s.guide[j-1] {
				t.Fatalf("lambda %v: guide not monotone at %d", lambda, j)
			}
			// guide[j] must not overshoot: cdf[guide[j]-1] <= j/m, so a
			// draw u >= j/m can never have its answer below guide[j].
			if g > 0 && s.cdf[g-1] > float64(j)/float64(m)+1e-15 {
				t.Fatalf("lambda %v: guide[%d]=%d overshoots", lambda, j, g)
			}
		}
	}
	if s := NewSampler(maxTableLambda + 1); s.cdf != nil {
		t.Error("table built above maxTableLambda")
	}
	if s := NewSampler(0); s.cdf != nil {
		t.Error("table built for non-positive mean")
	}
}

// TestTableDrawInverts checks tableDraw against the definition of the
// quantile function on a grid of uniforms, including cell boundaries.
func TestTableDrawInverts(t *testing.T) {
	for _, lambda := range tableLambdas {
		s := NewSampler(lambda)
		m := len(s.guide)
		us := []float64{0, 1e-18, 0.25, 0.5, 0.75, 1 - 1e-9, 1 - 1e-16}
		for j := 0; j < m; j += m/17 + 1 {
			us = append(us, float64(j)/float64(m))
		}
		for _, u := range us {
			got := s.tableDraw(u)
			if u >= s.cdf[len(s.cdf)-1] {
				// Beyond the table the draw continues into the tail;
				// TestTailDraw covers that path — here it only must not
				// come back inside the table.
				if got < len(s.cdf)-1 {
					t.Fatalf("lambda %v u=%v: tail draw %d inside table", lambda, u, got)
				}
				continue
			}
			want := 0
			for u >= s.cdf[want] {
				want++
			}
			if got != want {
				t.Fatalf("lambda %v u=%v: got %d want %d", lambda, u, got, want)
			}
		}
	}
}

// TestTailDraw drives the continuation beyond the table edge directly:
// for u above cdf[n-1] (unreachable from real uniforms at these means,
// but the code must still be right) the result extends past the table
// and increases with u.
func TestTailDraw(t *testing.T) {
	s := NewSampler(6)
	n := len(s.cdf)
	prev := 0
	for _, eps := range []float64{1e-12, 1e-14, 1e-16} {
		u := math.Nextafter(s.cdf[n-1], 2) + eps*0 // just past the edge
		u = 1 - eps
		if u < s.cdf[n-1] {
			continue
		}
		k := s.tailDraw(u)
		if k < n-1 {
			t.Fatalf("tail draw %d before table edge %d", k, n-1)
		}
		if k < prev {
			t.Fatalf("tail draw not monotone: %d after %d", k, prev)
		}
		prev = k
	}
}

// TestBlockFillTwinsLockstep pins SampleN ≡ SampleNPCG: over Rand and
// PCG views of identically seeded generators the two block fills must
// produce bit-identical variates, tabled means and PTRS fallback alike.
func TestBlockFillTwinsLockstep(t *testing.T) {
	lambdas := append([]float64{}, tableLambdas...)
	lambdas = append(lambdas, 0, -2, 9000) // zero path and PTRS fallback
	for _, lambda := range lambdas {
		s := NewSampler(lambda)
		rng := rand.New(rand.NewPCG(11, 22))
		pcg := rand.NewPCG(11, 22)
		a := make([]int, 4096)
		b := make([]int, 4096)
		s.SampleN(rng, a)
		s.SampleNPCG(pcg, b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("lambda %v: twins diverge at %d: %d vs %d", lambda, i, a[i], b[i])
			}
		}
	}
}

// TestTableDistribution checks the block fill actually samples the
// Poisson law: empirical mean and variance within sampling error, and a
// chi-squared statistic against the exact PMF below a generous critical
// value. This is the safety net for the stream-changing fill — the
// decode-level equivalence tests upstream assume the distribution is
// exact.
func TestTableDistribution(t *testing.T) {
	const n = 200000
	dst := make([]int, n)
	for _, lambda := range []float64{0.5, 3, 20, 150, 1200} {
		s := NewSampler(lambda)
		rng := rand.New(rand.NewPCG(7, uint64(lambda*1000)))
		s.SampleN(rng, dst)
		var sum, sq float64
		counts := map[int]int{}
		for _, k := range dst {
			sum += float64(k)
			sq += float64(k) * float64(k)
			counts[k]++
		}
		mean := sum / n
		varc := sq/n - mean*mean
		se := math.Sqrt(lambda / n)
		if math.Abs(mean-lambda) > 5*se {
			t.Errorf("lambda %v: mean %v off by more than 5 SE (%v)", lambda, mean, se)
		}
		if math.Abs(varc-lambda)/lambda > 0.05 {
			t.Errorf("lambda %v: variance %v vs %v", lambda, varc, lambda)
		}
		// Chi-squared over bins with expected count >= 10, pooling the
		// tails; dof ≈ bins-1, critical value taken loosely at dof+5√(2·dof).
		var chi2 float64
		bins := 0
		pooledObs, pooledExp := 0.0, 0.0
		lo := int(lambda - 6*math.Sqrt(lambda))
		hi := int(lambda + 6*math.Sqrt(lambda) + 8)
		if lo < 0 {
			lo = 0
		}
		for k := lo; k <= hi; k++ {
			exp := PMF(lambda, k) * n
			obs := float64(counts[k])
			if exp < 10 {
				pooledObs += obs
				pooledExp += exp
				continue
			}
			chi2 += (obs - exp) * (obs - exp) / exp
			bins++
		}
		if pooledExp > 10 {
			chi2 += (pooledObs - pooledExp) * (pooledObs - pooledExp) / pooledExp
			bins++
		}
		dof := float64(bins - 1)
		crit := dof + 5*math.Sqrt(2*dof)
		if chi2 > crit {
			t.Errorf("lambda %v: chi2 %v > %v (dof %v)", lambda, chi2, crit, dof)
		}
	}
}
