package photon

import (
	"math/rand/v2"
	"testing"
)

// TestSamplerMatchesSample locks the Sampler fast path to the reference
// Sample: for any mean, both must consume the rng identically and return
// bit-identical variate sequences. This is what lets the transmitter's
// settled-slot fast path swap one in without perturbing a seeded session.
func TestSamplerMatchesSample(t *testing.T) {
	lambdas := []float64{0, -3, 0.05, 0.7, 3.2, 9.999, 10, 25.5, 120, 4096.25, 85000}
	const draws = 2000
	for _, lambda := range lambdas {
		s := NewSampler(lambda)
		if s.Lambda() != lambda {
			t.Fatalf("Lambda() = %v, want %v", s.Lambda(), lambda)
		}
		rngA := rand.New(rand.NewPCG(42, 7))
		rngB := rand.New(rand.NewPCG(42, 7))
		for i := 0; i < draws; i++ {
			want := Sample(rngA, lambda)
			got := s.Sample(rngB)
			if got != want {
				t.Fatalf("lambda=%v draw %d: Sampler=%d Sample=%d", lambda, i, got, want)
			}
		}
		// The rng streams must stay in lockstep too.
		if a, b := rngA.Uint64(), rngB.Uint64(); a != b {
			t.Fatalf("lambda=%v: rng streams diverged (%d vs %d)", lambda, a, b)
		}
	}
}

// TestSamplerForShares checks the memo returns one shared instance per mean.
func TestSamplerForShares(t *testing.T) {
	a := SamplerFor(37.25)
	b := SamplerFor(37.25)
	if a != b {
		t.Fatal("SamplerFor returned distinct instances for the same mean")
	}
	if c := SamplerFor(37.5); c == a {
		t.Fatal("SamplerFor conflated distinct means")
	}
}

// TestSamplerLogFactFallback exercises candidates beyond the precomputed
// log-factorial table (tiny table via a mean just over the PTRS cutoff,
// forced far tail through many draws).
func TestSamplerLogFactFallback(t *testing.T) {
	const lambda = 10.0
	s := NewSampler(lambda)
	rngA := rand.New(rand.NewPCG(9, 9))
	rngB := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 50000; i++ {
		if got, want := s.Sample(rngB), Sample(rngA, lambda); got != want {
			t.Fatalf("draw %d: Sampler=%d Sample=%d", i, got, want)
		}
	}
}
