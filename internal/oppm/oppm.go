// Package oppm implements Overlapping Pulse Position Modulation, the
// compensation-free dimming scheme of Bai et al. (paper reference [8],
// also cited via [35]) that SmartVLC's related-work section groups with
// MPPM.
//
// An OPPM symbol spans N slots and carries a single contiguous ON run of
// W slots whose starting position encodes the data; runs may start at any
// of the N−W+1 positions (they "overlap" in the sense that consecutive
// codewords share slots, unlike classical PPM's disjoint chips). Dimming
// is set by the run width: l = W/N. One symbol carries
// floor(log2(N−W+1)) bits, always fewer than MPPM's floor(log2 C(N,K)) —
// which is precisely why the paper builds on MPPM instead.
package oppm

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"smartvlc/internal/bitio"
)

// Codec modulates and demodulates OPPM symbols for one (N, W) geometry.
type Codec struct {
	n, w      int
	positions int // N − W + 1
	bitsPer   int
}

// ErrGeometry reports an (N, W) pair with fewer than two codewords.
var ErrGeometry = errors.New("oppm: geometry admits fewer than two codewords")

// NewCodec builds a codec with N slots per symbol and an ON run of W.
func NewCodec(n, w int) (*Codec, error) {
	if n < 2 || w < 1 || w >= n {
		return nil, fmt.Errorf("oppm: invalid geometry N=%d W=%d", n, w)
	}
	positions := n - w + 1
	if positions < 2 {
		return nil, ErrGeometry
	}
	return &Codec{n: n, w: w, positions: positions, bitsPer: bits.Len(uint(positions)) - 1}, nil
}

// ForLevel picks the run width for a dimming level: W = round(l·N).
func ForLevel(n int, level float64) (*Codec, error) {
	return NewCodec(n, int(math.Round(level*float64(n))))
}

// SymbolSlots returns N.
func (c *Codec) SymbolSlots() int { return c.n }

// PulseWidth returns W.
func (c *Codec) PulseWidth() int { return c.w }

// DimmingLevel returns W/N.
func (c *Codec) DimmingLevel() float64 { return float64(c.w) / float64(c.n) }

// Bits returns the data bits per symbol.
func (c *Codec) Bits() int { return c.bitsPer }

// NormalizedRate returns bits per slot.
func (c *Codec) NormalizedRate() float64 { return float64(c.bitsPer) / float64(c.n) }

// AppendStream encodes all bits remaining in r as OPPM symbols.
func (c *Codec) AppendStream(dst []bool, r *bitio.Reader) ([]bool, error) {
	if c.bitsPer == 0 {
		return nil, fmt.Errorf("oppm: geometry N=%d W=%d carries no data", c.n, c.w)
	}
	for r.Remaining() > 0 {
		v, _, err := r.ReadPadded(c.bitsPer)
		if err != nil {
			return nil, err
		}
		start := int(v)
		for s := 0; s < c.n; s++ {
			dst = append(dst, s >= start && s < start+c.w)
		}
	}
	return dst, nil
}

// DecodeBits recovers nbits from the slot stream. Each symbol decodes by
// maximum-correlation run placement, tolerant of isolated slot errors;
// symbols whose ON count deviates from W are counted as symbolErrors
// (the frame CRC arbitrates, as elsewhere in the system).
func (c *Codec) DecodeBits(slots []bool, nbits int, w *bitio.Writer) (symbolErrors int, err error) {
	if c.bitsPer == 0 {
		return 0, fmt.Errorf("oppm: geometry carries no data")
	}
	off, written := 0, 0
	for written < nbits {
		if off+c.n > len(slots) {
			return symbolErrors, fmt.Errorf("oppm: slot stream truncated")
		}
		sym := slots[off : off+c.n]
		off += c.n

		ons := 0
		for _, s := range sym {
			if s {
				ons++
			}
		}
		if ons != c.w {
			symbolErrors++
		}
		// Correlate the W-wide window over all start positions.
		bestStart, bestScore := 0, -1
		score := 0
		for s := 0; s < c.w; s++ {
			if sym[s] {
				score++
			}
		}
		bestScore = score
		for s := 1; s < c.positions; s++ {
			if sym[s-1] {
				score--
			}
			if sym[s+c.w-1] {
				score++
			}
			if score > bestScore {
				bestScore, bestStart = score, s
			}
		}
		v := uint64(bestStart)
		if c.bitsPer < 64 && v >= 1<<uint(c.bitsPer) {
			// Positions beyond the encodable range are never transmitted.
			symbolErrors++
			v = 0
		}
		if err := w.WriteBits(v, c.bitsPer); err != nil {
			return symbolErrors, err
		}
		written += c.bitsPer
	}
	return symbolErrors, nil
}

// SlotsForBits returns the slot cost of nbits.
func (c *Codec) SlotsForBits(nbits int) int {
	if c.bitsPer == 0 || nbits <= 0 {
		return 0
	}
	syms := (nbits + c.bitsPer - 1) / c.bitsPer
	return syms * c.n
}
