package oppm

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"smartvlc/internal/bitio"
	"smartvlc/internal/mppm"
)

func TestNewCodecValidation(t *testing.T) {
	if _, err := NewCodec(1, 1); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := NewCodec(10, 0); err == nil {
		t.Fatal("W=0 accepted")
	}
	if _, err := NewCodec(10, 10); err == nil {
		t.Fatal("W=N accepted")
	}
	if _, err := NewCodec(10, 9); err != nil {
		t.Fatal("W=N-1 has 2 positions and should work")
	}
}

func TestGeometry(t *testing.T) {
	c, err := NewCodec(20, 6)
	if err != nil {
		t.Fatal(err)
	}
	// 15 positions -> 3 bits per symbol.
	if c.Bits() != 3 {
		t.Fatalf("bits = %d", c.Bits())
	}
	if c.DimmingLevel() != 0.3 {
		t.Fatalf("level = %v", c.DimmingLevel())
	}
	if c.NormalizedRate() != 3.0/20 {
		t.Fatalf("rate = %v", c.NormalizedRate())
	}
	if c.SlotsForBits(7) != 60 { // ceil(7/3)=3 symbols
		t.Fatalf("SlotsForBits = %d", c.SlotsForBits(7))
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw, wRaw uint8, nbytes uint8) bool {
		n := int(nRaw)%40 + 4
		w := int(wRaw)%(n-1) + 1
		c, err := NewCodec(n, w)
		if err != nil || c.Bits() == 0 {
			return true
		}
		rng := rand.New(rand.NewPCG(seed, 23))
		data := make([]byte, int(nbytes)+1)
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		slots, err := c.AppendStream(nil, bitio.NewReader(data))
		if err != nil {
			return false
		}
		out := bitio.NewWriter()
		se, err := c.DecodeBits(slots, len(data)*8, out)
		if err != nil || se != 0 {
			return false
		}
		return bytes.Equal(out.Bytes()[:len(data)], data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDutyCycleExact(t *testing.T) {
	c, _ := NewCodec(16, 8)
	data := bytes.Repeat([]byte{0xB7}, 64)
	slots, err := c.AppendStream(nil, bitio.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	on := 0
	for _, s := range slots {
		if s {
			on++
		}
	}
	if got := float64(on) / float64(len(slots)); got != 0.5 {
		t.Fatalf("duty %v", got)
	}
}

func TestDecodeToleratesSlotError(t *testing.T) {
	c, _ := NewCodec(16, 6)
	data := []byte{0x3C, 0x5A}
	slots, _ := c.AppendStream(nil, bitio.NewReader(data))
	slots[2] = !slots[2] // one slot error in the first symbol
	out := bitio.NewWriter()
	se, err := c.DecodeBits(slots, 16, out)
	if err != nil {
		t.Fatal(err)
	}
	if se != 1 {
		t.Fatalf("symbolErrors = %d", se)
	}
	if !bytes.Equal(out.Bytes()[:2], data) {
		t.Fatal("correlation decode failed to absorb one slot error")
	}
}

func TestDecodeTruncated(t *testing.T) {
	c, _ := NewCodec(10, 3)
	if _, err := c.DecodeBits(make([]bool, 5), 8, bitio.NewWriter()); err == nil {
		t.Fatal("expected truncation error")
	}
}

// TestOPPMInferiorToMPPM pins the related-work claim that motivates the
// paper's choice of MPPM as AMPPM's basis: at every dimming level and
// equal symbol length, OPPM carries no more bits than MPPM.
func TestOPPMInferiorToMPPM(t *testing.T) {
	for n := 8; n <= 40; n += 4 {
		for w := 1; w < n; w++ {
			c, err := NewCodec(n, w)
			if err != nil {
				continue
			}
			mp := mppm.Pattern{N: n, K: w}
			if c.Bits() > mp.Bits() {
				t.Fatalf("N=%d W=%d: OPPM %d bits > MPPM %d bits", n, w, c.Bits(), mp.Bits())
			}
		}
	}
	// And strictly fewer near l = 0.5 for nontrivial N.
	c, _ := NewCodec(20, 10)
	if c.Bits() >= (mppm.Pattern{N: 20, K: 10}).Bits() {
		t.Fatal("OPPM should be strictly worse at l=0.5")
	}
}

func TestForLevel(t *testing.T) {
	c, err := ForLevel(20, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.DimmingLevel()-0.3) > 1e-12 {
		t.Fatalf("level %v", c.DimmingLevel())
	}
	if _, err := ForLevel(20, 0.0); err == nil {
		t.Fatal("level 0 accepted")
	}
}
