// Package stats provides the small result-reporting toolkit shared by the
// experiment runners, benchmarks and CLI tools: time series, summaries,
// and ASCII/CSV table rendering.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Point is one time-series sample.
type Point struct {
	T float64 // seconds
	V float64
}

// Series is a named time series.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Values returns the V column.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Last returns the final sample value, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].V
}

// Summary holds basic descriptive statistics.
type Summary struct {
	N                   int
	Mean, Std, Min, Max float64
}

// Summarize computes descriptive statistics of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(xs) == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// Table is a simple rendered result table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row; values are stringified with %v for
// strings and %.4g for floats.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns an aligned ASCII rendering.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV returns the table as comma-separated values (no escaping; cell
// content here is numeric or simple labels).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Sparkline renders values as a unicode mini-chart, handy in experiment
// logs.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	s := Summarize(xs)
	span := s.Max - s.Min
	var b strings.Builder
	for _, x := range xs {
		idx := 0
		if span > 0 {
			idx = int((x - s.Min) / span * float64(len(ticks)-1))
		}
		b.WriteRune(ticks[idx])
	}
	return b.String()
}
