package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("%+v", s)
	}
	if math.Abs(s.Std-1.2909944) > 1e-6 {
		t.Fatalf("std %v", s.Std)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Min != 0 || empty.Max != 0 {
		t.Fatalf("%+v", empty)
	}
	one := Summarize([]float64{7})
	if one.Mean != 7 || one.Std != 0 {
		t.Fatalf("%+v", one)
	}
}

func TestSummarizeBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			// Skip inputs whose sum overflows float64.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		s := Summarize(xs)
		if len(xs) == 0 {
			return s.N == 0
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(0, 1)
	s.Add(1, 2)
	if s.Last() != 2 || len(s.Values()) != 2 {
		t.Fatalf("%+v", s)
	}
	if (&Series{}).Last() != 0 {
		t.Fatal("empty Last")
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Title: "demo", Headers: []string{"a", "bb"}}
	tb.AddRow("x", 1.5)
	tb.AddRow("longer", 22)
	out := tb.Render()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title: %s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("line count %d: %s", len(lines), out)
	}
	// Alignment: all rows equal width.
	if len(lines[2]) != len(lines[3]) && len(lines[3]) != len(lines[4]) {
		t.Fatalf("misaligned: %s", out)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") || !strings.Contains(csv, "x,1.5") {
		t.Fatalf("csv: %s", csv)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline runes: %q", s)
	}
	flat := Sparkline([]float64{5, 5, 5})
	if flat != "▁▁▁" {
		t.Fatalf("flat sparkline: %q", flat)
	}
}

func TestChartSVG(t *testing.T) {
	var s1, s2 Series
	s1.Name = "AMPPM"
	s2.Name = "OOK-CT"
	for i := 0; i <= 10; i++ {
		s1.Add(float64(i)/10, float64(i*i))
		s2.Add(float64(i)/10, float64(100-i*i))
	}
	c := Chart{Title: "demo <chart>", XLabel: "x", YLabel: "y", Series: []Series{s1, s2}}
	svg := c.SVG()
	for _, want := range []string{"<svg", "</svg>", "polyline", "AMPPM", "OOK-CT", "demo &lt;chart&gt;"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Fatal("SVG contains non-finite coordinates")
	}
	// Empty chart must not blow up.
	empty := Chart{Title: "empty"}.SVG()
	if !strings.Contains(empty, "</svg>") || strings.Contains(empty, "NaN") {
		t.Fatalf("empty chart broken")
	}
	// Flat series (zero y-range).
	var flat Series
	flat.Add(0, 5)
	flat.Add(1, 5)
	if f := (Chart{Series: []Series{flat}}).SVG(); strings.Contains(f, "NaN") {
		t.Fatal("flat chart produced NaN")
	}
}
