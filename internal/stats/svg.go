package stats

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders one or more series as a standalone SVG line chart, so the
// reproduced paper figures can be eyeballed without any plotting stack.
type Chart struct {
	Title          string
	XLabel, YLabel string
	Width, Height  int
	Series         []Series
	// YMin/YMax fix the y-range; both zero = auto.
	YMin, YMax float64
}

// chartPalette holds the line colors, cycled per series.
var chartPalette = []string{"#2563eb", "#dc2626", "#059669", "#d97706", "#7c3aed", "#0891b2"}

// SVG renders the chart.
func (c Chart) SVG() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 720
	}
	if h <= 0 {
		h = 420
	}
	const mLeft, mRight, mTop, mBottom = 64, 16, 36, 48
	pw, ph := float64(w-mLeft-mRight), float64(h-mTop-mBottom)

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, p := range s.Points {
			xmin, xmax = math.Min(xmin, p.T), math.Max(xmax, p.T)
			ymin, ymax = math.Min(ymin, p.V), math.Max(ymax, p.V)
		}
	}
	if math.IsInf(xmin, 1) {
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if c.YMin != 0 || c.YMax != 0 {
		ymin, ymax = c.YMin, c.YMax
	}
	if ymin == ymax {
		ymax = ymin + 1
	}
	if xmin == xmax {
		xmax = xmin + 1
	}
	// Pad the y-range slightly for readability.
	pad := (ymax - ymin) * 0.06
	ymin, ymax = ymin-pad, ymax+pad

	X := func(x float64) float64 { return float64(mLeft) + (x-xmin)/(xmax-xmin)*pw }
	Y := func(y float64) float64 { return float64(mTop) + (1-(y-ymin)/(ymax-ymin))*ph }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, w, h)
	fmt.Fprintf(&b, `<text x="%d" y="22" font-size="15" font-weight="bold">%s</text>`, mLeft, escape(c.Title))

	// Gridlines and ticks.
	for i := 0; i <= 5; i++ {
		gy := ymin + (ymax-ymin)*float64(i)/5
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#e5e7eb"/>`, mLeft, Y(gy), w-mRight, Y(gy))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end" fill="#374151">%s</text>`, mLeft-6, Y(gy)+4, fmtTick(gy))
	}
	for i := 0; i <= 6; i++ {
		gx := xmin + (xmax-xmin)*float64(i)/6
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle" fill="#374151">%s</text>`, X(gx), h-mBottom+18, fmtTick(gx))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#111827"/>`, mLeft, h-mBottom, w-mRight, h-mBottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#111827"/>`, mLeft, mTop, mLeft, h-mBottom)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" text-anchor="middle" fill="#111827">%s</text>`, mLeft+int(pw/2), h-10, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-size="12" text-anchor="middle" fill="#111827" transform="rotate(-90 16 %d)">%s</text>`, mTop+int(ph/2), mTop+int(ph/2), escape(c.YLabel))

	// Series.
	for i, s := range c.Series {
		color := chartPalette[i%len(chartPalette)]
		var pts []string
		for _, p := range s.Points {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", X(p.T), Y(p.V)))
		}
		if len(pts) > 0 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`, strings.Join(pts, " "), color)
		}
		// Legend.
		lx, ly := w-mRight-150, mTop+10+18*i
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`, lx, ly, lx+22, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" fill="#111827">%s</text>`, lx+28, ly+4, escape(s.Name))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 10000:
		return fmt.Sprintf("%.0fk", v/1000)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
