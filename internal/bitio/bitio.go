// Package bitio provides MSB-first bit readers and writers over byte
// slices. The VLC codecs consume payload bytes in symbol-sized bit groups
// (up to 63 bits per MPPM symbol), and the framer packs header fields at
// bit granularity; both use this package.
package bitio

import (
	"errors"
	"fmt"
)

// ErrShortRead reports an attempt to read past the end of the stream.
var ErrShortRead = errors.New("bitio: read past end of stream")

// Reader reads bit groups MSB-first from a byte slice.
type Reader struct {
	data []byte
	pos  int // bit position from the start
	n    int // total bits available
}

// NewReader returns a Reader over all 8·len(data) bits of data.
func NewReader(data []byte) *Reader {
	return &Reader{data: data, n: len(data) * 8}
}

// NewReaderBits returns a Reader over the first nbits bits of data.
// It panics if nbits exceeds the data length, as that is programmer error.
func NewReaderBits(data []byte, nbits int) *Reader {
	if nbits < 0 || nbits > len(data)*8 {
		panic(fmt.Sprintf("bitio: nbits %d outside data length %d bits", nbits, len(data)*8))
	}
	return &Reader{data: data, n: nbits}
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.n - r.pos }

// ReadBits reads the next n bits (0 ≤ n ≤ 64) as an unsigned integer with
// the first bit read in the most significant position.
func (r *Reader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("bitio: invalid read size %d", n)
	}
	if r.Remaining() < n {
		return 0, ErrShortRead
	}
	var v uint64
	for i := 0; i < n; i++ {
		byteIdx := r.pos / 8
		bit := r.data[byteIdx] >> (7 - uint(r.pos%8)) & 1
		v = v<<1 | uint64(bit)
		r.pos++
	}
	return v, nil
}

// ReadPadded reads up to n bits; if fewer remain, the value is zero-padded
// on the right (least significant side) as if the stream continued with
// zeros. It returns the number of real bits consumed. Reading from an
// exhausted stream returns (0, 0, nil).
func (r *Reader) ReadPadded(n int) (v uint64, consumed int, err error) {
	if n < 0 || n > 64 {
		return 0, 0, fmt.Errorf("bitio: invalid read size %d", n)
	}
	consumed = n
	if rem := r.Remaining(); rem < n {
		consumed = rem
	}
	v, err = r.ReadBits(consumed)
	if err != nil {
		return 0, 0, err
	}
	v <<= uint(n - consumed)
	return v, consumed, nil
}

// Writer accumulates bits MSB-first into a byte slice.
type Writer struct {
	data []byte
	n    int // bits written
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// Reset re-initializes the writer to accumulate into buf's backing array
// from the start (buf's length is ignored). With enough capacity the
// writer never allocates — the allocation-free decode paths recycle one
// buffer per frame slot this way. Reset(nil) drops the buffer reference.
func (w *Writer) Reset(buf []byte) {
	w.data = buf[:0]
	w.n = 0
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.n }

// WriteBits appends the low n bits of v, most significant first.
func (w *Writer) WriteBits(v uint64, n int) error {
	if n < 0 || n > 64 {
		return fmt.Errorf("bitio: invalid write size %d", n)
	}
	for i := n - 1; i >= 0; i-- {
		bit := byte(v >> uint(i) & 1)
		if w.n%8 == 0 {
			w.data = append(w.data, 0)
		}
		if bit == 1 {
			w.data[w.n/8] |= 1 << (7 - uint(w.n%8))
		}
		w.n++
	}
	return nil
}

// Bytes returns the written bits as a byte slice, zero-padded in the final
// byte. The slice aliases the writer's buffer.
func (w *Writer) Bytes() []byte { return w.data }
