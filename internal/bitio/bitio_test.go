package bitio

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestReadBitsBasic(t *testing.T) {
	r := NewReader([]byte{0b1011_0010, 0b0100_0001})
	got, err := r.ReadBits(3)
	if err != nil || got != 0b101 {
		t.Fatalf("ReadBits(3) = %b, %v", got, err)
	}
	got, err = r.ReadBits(8)
	if err != nil || got != 0b1_0010_010 {
		t.Fatalf("ReadBits(8) = %b, %v", got, err)
	}
	if r.Remaining() != 5 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	got, err = r.ReadBits(5)
	if err != nil || got != 0b0_0001 {
		t.Fatalf("ReadBits(5) = %b, %v", got, err)
	}
	if _, err := r.ReadBits(1); err != ErrShortRead {
		t.Fatalf("expected ErrShortRead, got %v", err)
	}
}

func TestReadBitsZeroAndBounds(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if v, err := r.ReadBits(0); err != nil || v != 0 {
		t.Fatalf("ReadBits(0) = %d, %v", v, err)
	}
	if _, err := r.ReadBits(65); err == nil {
		t.Fatal("ReadBits(65) should fail")
	}
	if _, err := r.ReadBits(-1); err == nil {
		t.Fatal("ReadBits(-1) should fail")
	}
}

func TestReadBits64(t *testing.T) {
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x23, 0x45, 0x67}
	r := NewReader(data)
	v, err := r.ReadBits(64)
	if err != nil || v != 0xDEADBEEF01234567 {
		t.Fatalf("ReadBits(64) = %x, %v", v, err)
	}
}

func TestNewReaderBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReaderBits([]byte{0}, 9)
}

func TestReadPadded(t *testing.T) {
	r := NewReaderBits([]byte{0b1100_0000}, 3) // bits: 110
	v, consumed, err := r.ReadPadded(5)
	if err != nil || consumed != 3 || v != 0b11000 {
		t.Fatalf("ReadPadded = %b, %d, %v", v, consumed, err)
	}
	v, consumed, err = r.ReadPadded(4)
	if err != nil || consumed != 0 || v != 0 {
		t.Fatalf("exhausted ReadPadded = %b, %d, %v", v, consumed, err)
	}
}

func TestWriterRoundTrip(t *testing.T) {
	w := NewWriter()
	if err := w.WriteBits(0b101, 3); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBits(0xFF, 8); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBits(0, 2); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 13 {
		t.Fatalf("Len = %d", w.Len())
	}
	r := NewReaderBits(w.Bytes(), w.Len())
	for _, c := range []struct {
		n    int
		want uint64
	}{{3, 0b101}, {8, 0xFF}, {2, 0}} {
		got, err := r.ReadBits(c.n)
		if err != nil || got != c.want {
			t.Fatalf("read back %d bits = %b, %v want %b", c.n, got, err, c.want)
		}
	}
}

func TestWriterInvalidSize(t *testing.T) {
	w := NewWriter()
	if err := w.WriteBits(0, 65); err == nil {
		t.Fatal("WriteBits(65) should fail")
	}
	if err := w.WriteBits(0, -1); err == nil {
		t.Fatal("WriteBits(-1) should fail")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, sizes []uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		w := NewWriter()
		var vals []uint64
		var ns []int
		for _, s := range sizes {
			n := int(s % 65)
			v := rng.Uint64()
			if n < 64 {
				v &= 1<<uint(n) - 1
			}
			if err := w.WriteBits(v, n); err != nil {
				return false
			}
			vals = append(vals, v)
			ns = append(ns, n)
		}
		r := NewReaderBits(w.Bytes(), w.Len())
		for i, n := range ns {
			got, err := r.ReadBits(n)
			if err != nil || got != vals[i] {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBytesPadding(t *testing.T) {
	w := NewWriter()
	_ = w.WriteBits(1, 1)
	if !bytes.Equal(w.Bytes(), []byte{0x80}) {
		t.Fatalf("Bytes = %x", w.Bytes())
	}
}
