package health

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"smartvlc/internal/telemetry"
)

// testConfig: 1000-slot buckets (8 ms), two extra resolutions at ×4, one
// frame-loss SLO with short windows so tests drive transitions quickly.
func testConfig() Config {
	return Config{
		BucketSlots: 1000,
		Levels:      3,
		Factor:      4,
		Objectives: []Objective{{
			Name: "loss", Metric: MetricFrameLoss, Kind: UpperBound,
			Target: 0.1, FastWindow: 3, SlowWindow: 6,
		}},
	}
}

const testBucketDur = 1000 * defaultTSlot // 8 ms

// feedBucket pours one bucket's worth of synthetic traffic in at the
// bucket's midpoint: frames received, a fraction bad, payload delivered
// for the good ones.
func feedBucket(m *Monitor, idx int, frames, bad int) {
	now := (float64(idx) + 0.5) * testBucketDur
	m.Tick(now)
	m.ObserveLevel(now, 0.5)
	for i := 0; i < frames; i++ {
		m.ObserveTx(now, 100, false)
	}
	ok := frames - bad
	m.ObserveRx(now, ok, bad, 0, ok*128)
	m.ObserveDelivered(now, int64(ok)*1024)
	m.ObserveAck(now, 0.01)
}

func sealThrough(m *Monitor, idx int) { m.Tick(float64(idx+1) * testBucketDur) }

func TestMonitorSealsAndDerives(t *testing.T) {
	m := NewMonitor(testConfig())
	feedBucket(m, 0, 10, 1)
	sealThrough(m, 0)
	s := m.Snapshot()
	if len(s.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(s.Series))
	}
	pts := s.Series[0].Points
	if len(pts) != 1 {
		t.Fatalf("finest points = %d, want 1", len(pts))
	}
	p := pts[0]
	if p.FramesTx != 10 || p.FramesOK != 9 || p.FramesBad != 1 {
		t.Errorf("counts: tx=%d ok=%d bad=%d", p.FramesTx, p.FramesOK, p.FramesBad)
	}
	if p.FrameLoss != 0.1 {
		t.Errorf("FrameLoss = %v, want 0.1", p.FrameLoss)
	}
	if p.WidthSlots != 1000 {
		t.Errorf("WidthSlots = %v, want 1000", p.WidthSlots)
	}
	wantGoodput := float64(9*1024) / 1000
	if p.Goodput != wantGoodput {
		t.Errorf("Goodput = %v, want %v", p.Goodput, wantGoodput)
	}
	if p.MeanLevel != 0.5 || p.MaxLevel != 0.5 {
		t.Errorf("level mean=%v max=%v", p.MeanLevel, p.MaxLevel)
	}
	if p.AckP95 <= 0 || p.AckP95 > 0.02 {
		t.Errorf("AckP95 = %v, want within the 10ms bucket", p.AckP95)
	}
}

// Downsampling: Factor⁴ finest buckets fold into one coarse point whose
// raw counts are the exact sums.
func TestMonitorDownsamples(t *testing.T) {
	m := NewMonitor(testConfig())
	for i := 0; i < 8; i++ {
		feedBucket(m, i, 10, i%2) // alternating 0/1 bad
	}
	sealThrough(m, 7)
	s := m.Snapshot()
	coarse := s.Series[1]
	if coarse.BucketSlots != 4000 {
		t.Fatalf("coarse BucketSlots = %d, want 4000", coarse.BucketSlots)
	}
	if len(coarse.Points) != 2 {
		t.Fatalf("coarse points = %d, want 2", len(coarse.Points))
	}
	p := coarse.Points[0]
	if p.FramesTx != 40 || p.FramesBad != 2 {
		t.Errorf("coarse counts: tx=%d bad=%d, want 40/2", p.FramesTx, p.FramesBad)
	}
	if p.FrameLoss != 2.0/40.0 {
		t.Errorf("coarse FrameLoss = %v, want %v", p.FrameLoss, 2.0/40.0)
	}
	if got, want := p.Goodput, float64(38*1024)/4000; got != want {
		t.Errorf("coarse Goodput = %v, want %v", got, want)
	}
	if len(s.Series[2].Points) != 0 {
		t.Errorf("coarsest ring should still be accumulating, has %d points", len(s.Series[2].Points))
	}
}

// A degrading link walks ok → warning → critical, and a recovering one
// returns to ok. Alert transitions carry the firing bucket's end time.
func TestSLOTransitionSequence(t *testing.T) {
	reg := telemetry.New()
	cfg := testConfig()
	cfg.Registry = reg
	var alerts []Transition
	cfg.OnAlert = func(tr Transition) { alerts = append(alerts, tr) }
	m := NewMonitor(cfg)

	idx := 0
	feed := func(n, frames, bad int) {
		for i := 0; i < n; i++ {
			feedBucket(m, idx, frames, bad)
			idx++
		}
		sealThrough(m, idx-1)
	}
	feed(6, 20, 0) // healthy warmup: loss 0
	feed(6, 20, 3) // loss 0.15: warn burn 1.5 once slow window catches up
	if m.State() != StateWarning {
		t.Fatalf("after sustained 15%% loss: state = %v, want warning", m.State())
	}
	feed(6, 20, 12) // loss 0.6: crit burn 6
	if m.State() != StateCritical {
		t.Fatalf("after sustained 60%% loss: state = %v, want critical", m.State())
	}
	feed(8, 20, 0) // recovery
	if m.State() != StateOK {
		t.Fatalf("after recovery: state = %v, want ok", m.State())
	}

	var seq []State
	for _, tr := range alerts {
		seq = append(seq, tr.To)
	}
	want := []State{StateWarning, StateCritical, StateOK}
	if len(seq) != len(want) {
		t.Fatalf("transitions = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", seq, want)
		}
	}
	for i := 1; i < len(alerts); i++ {
		if alerts[i].At <= alerts[i-1].At {
			t.Errorf("transition times not increasing: %v then %v", alerts[i-1].At, alerts[i].At)
		}
	}

	// Transitions also land in the snapshot, the registry event trace and
	// the transitions counter.
	s := m.Finish(float64(idx) * testBucketDur)
	if len(s.Transitions) != 3 {
		t.Errorf("snapshot transitions = %d, want 3", len(s.Transitions))
	}
	ts := reg.Snapshot()
	var sloEvents int
	for _, e := range ts.Events {
		if strings.HasPrefix(e.Kind, "slo/loss/") {
			sloEvents++
		}
	}
	if sloEvents != 3 {
		t.Errorf("slo/ events = %d, want 3", sloEvents)
	}
	var transCount int64
	for _, c := range ts.Counters {
		if c.Name == "health_transitions_total" {
			transCount += c.Value
		}
	}
	if transCount != 3 {
		t.Errorf("health_transitions_total = %d, want 3", transCount)
	}
}

// Before FastWindow buckets have sealed, no judgment: a link is never
// alerted on its first instants, even if they are terrible.
func TestSLOWarmup(t *testing.T) {
	m := NewMonitor(testConfig())
	feedBucket(m, 0, 20, 20)
	feedBucket(m, 1, 20, 20)
	sealThrough(m, 1)
	if m.State() != StateOK {
		t.Fatalf("state during warmup = %v, want ok", m.State())
	}
}

// Buckets where a metric is undefined (no frames at all) never change the
// alert state.
func TestSLOUndefinedWindowsHold(t *testing.T) {
	m := NewMonitor(testConfig())
	for i := 0; i < 8; i++ {
		feedBucket(m, i, 20, 10) // loss 0.5 → critical
	}
	sealThrough(m, 7)
	if m.State() != StateCritical {
		t.Fatalf("state = %v, want critical", m.State())
	}
	m.Tick(30 * testBucketDur) // long silence: empty buckets seal
	if m.State() != StateCritical {
		t.Errorf("state after silence = %v; undefined windows must hold the last state", m.State())
	}
}

// Identical observation streams produce byte-identical snapshots.
func TestSnapshotDeterminism(t *testing.T) {
	run := func() []byte {
		m := NewMonitor(testConfig())
		for i := 0; i < 20; i++ {
			feedBucket(m, i, 15+i%3, i%4)
		}
		s := m.Finish(20.3 * testBucketDur)
		j, err := s.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("two identical runs produced different health JSON")
	}
}

func TestFinishFlushesPartialAndFreezes(t *testing.T) {
	m := NewMonitor(testConfig())
	feedBucket(m, 0, 10, 0)
	sealThrough(m, 0)
	feedBucket(m, 1, 7, 0)
	now := 1.5 * testBucketDur
	s := m.Finish(now)
	pts := s.Series[0].Points
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2 (one sealed, one partial)", len(pts))
	}
	last := pts[1]
	if !last.Partial || last.End != now || last.FramesTx != 7 {
		t.Errorf("partial point = %+v", last)
	}
	if math.Abs(last.WidthSlots-500) > 1e-6 {
		t.Errorf("partial WidthSlots = %v, want ≈500", last.WidthSlots)
	}
	// Frozen: later observations and Finish calls change nothing.
	m.ObserveTx(99, 100, false)
	s2 := m.Finish(99)
	if len(s2.Series[0].Points) != 2 || s2.Series[0].Points[1].FramesTx != 7 {
		t.Error("monitor accepted observations after Finish")
	}
}

func TestRingEviction(t *testing.T) {
	cfg := testConfig()
	cfg.Capacity = 4
	m := NewMonitor(cfg)
	for i := 0; i < 6; i++ {
		feedBucket(m, i, 5, 0)
	}
	sealThrough(m, 5)
	sr := m.Snapshot().Series[0]
	if len(sr.Points) != 4 || sr.Dropped != 2 {
		t.Fatalf("points=%d dropped=%d, want 4/2", len(sr.Points), sr.Dropped)
	}
	if sr.Points[0].Index != 2 || sr.Points[3].Index != 5 {
		t.Errorf("retained indexes %d..%d, want 2..5", sr.Points[0].Index, sr.Points[3].Index)
	}
}

// Observations whose timestamp predates the open bucket (late
// side-channel ACKs) clamp into the open bucket instead of corrupting a
// sealed one.
func TestLateObservationClamps(t *testing.T) {
	m := NewMonitor(testConfig())
	m.Tick(2 * testBucketDur) // buckets 0 and 1 sealed empty
	m.ObserveAck(0.5*testBucketDur, 0.01)
	s := m.Finish(2.5 * testBucketDur)
	pts := s.Series[0].Points
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3", len(pts))
	}
	if pts[0].AckCount != 0 || pts[1].AckCount != 0 {
		t.Error("late ack mutated a sealed bucket")
	}
	if pts[2].AckCount != 1 {
		t.Errorf("open bucket AckCount = %d, want 1", pts[2].AckCount)
	}
}

func TestNDJSONStream(t *testing.T) {
	m := NewMonitor(testConfig())
	for i := 0; i < 10; i++ {
		feedBucket(m, i, 20, 15)
	}
	s := m.Finish(10 * testBucketDur)
	var buf bytes.Buffer
	if err := s.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	types := map[string]int{}
	for _, ln := range lines {
		var v struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(ln), &v); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", ln, err)
		}
		types[v.Type]++
	}
	if types["health"] != 1 {
		t.Errorf("header lines = %d, want 1", types["health"])
	}
	if types["point"] == 0 || types["objective"] != 1 || types["transition"] == 0 {
		t.Errorf("line mix = %v", types)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	m := NewMonitor(testConfig())
	for i := 0; i < 10; i++ {
		feedBucket(m, i, 20, 15)
	}
	s := m.Finish(10 * testBucketDur)
	j, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(j))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j, j2) {
		t.Fatal("snapshot JSON does not round-trip")
	}
	if got.State != StateCritical {
		t.Errorf("round-tripped state = %v", got.State)
	}
}

// The nil monitor is free: no allocations, no work, on every method.
func TestNilMonitorZeroCost(t *testing.T) {
	var m *Monitor
	allocs := testing.AllocsPerRun(100, func() {
		m.Tick(1)
		m.ObserveLevel(1, 0.5)
		m.ObserveTx(1, 100, false)
		m.ObserveRx(1, 1, 0, 0, 128)
		m.ObserveDelivered(1, 1024)
		m.ObserveAck(1, 0.01)
		if m.State() != StateOK {
			t.Fatal("nil state")
		}
		if m.Snapshot() != nil || m.Finish(1) != nil {
			t.Fatal("nil snapshot")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil monitor allocated %v per run", allocs)
	}
}
