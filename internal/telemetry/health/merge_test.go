package health

import (
	"bytes"
	"testing"
)

func TestMergeSumsAndNormalizes(t *testing.T) {
	mk := func(frames, bad, bits int) *Snapshot {
		m := NewMonitor(testConfig())
		for i := 0; i < 8; i++ {
			now := (float64(i) + 0.5) * testBucketDur
			m.Tick(now)
			m.ObserveLevel(now, 0.5)
			for j := 0; j < frames; j++ {
				m.ObserveTx(now, 100, false)
			}
			m.ObserveRx(now, frames-bad, bad, 0, (frames-bad)*128)
			m.ObserveDelivered(now, int64(bits))
			m.ObserveAck(now, 0.01)
		}
		return m.Finish(8 * testBucketDur)
	}
	a := mk(10, 1, 1000)
	b := mk(20, 4, 3000)
	got := Merge(a, b)
	if got.Sessions != 2 {
		t.Fatalf("Sessions = %d, want 2", got.Sessions)
	}
	p := got.Series[0].Points[0]
	if p.Links != 2 {
		t.Fatalf("Links = %d, want 2", p.Links)
	}
	if p.FramesTx != 30 || p.FramesBad != 5 {
		t.Errorf("merged counts tx=%d bad=%d, want 30/5", p.FramesTx, p.FramesBad)
	}
	// Loss is the ratio of merged counts, not the mean of ratios.
	if want := 5.0 / 30.0; p.FrameLoss != want {
		t.Errorf("merged FrameLoss = %v, want %v", p.FrameLoss, want)
	}
	// Goodput is per link: total bits over slots × links.
	if want := 4000.0 / (1000 * 2); p.Goodput != want {
		t.Errorf("merged Goodput = %v, want %v", p.Goodput, want)
	}
	if p.AckCount != 2 {
		t.Errorf("merged AckCount = %d, want 2", p.AckCount)
	}
	// Objectives re-evaluated over the merged series.
	if len(got.Objectives) != 1 || got.Objectives[0].Name != "loss" {
		t.Fatalf("objectives = %+v", got.Objectives)
	}
	if got.State != StateWarning {
		// merged loss 5/30 ≈ 0.167 vs target 0.1: burn 1.67 → warning
		t.Errorf("merged state = %v, want warning", got.State)
	}
}

func TestMergeSkipsIncompatible(t *testing.T) {
	a := NewMonitor(testConfig()).Finish(8 * testBucketDur)
	cfg := testConfig()
	cfg.BucketSlots = 2000
	b := NewMonitor(cfg).Finish(8 * testBucketDur)
	got := Merge(a, b)
	if got.Sessions != 1 || got.Skipped != 1 {
		t.Fatalf("sessions=%d skipped=%d, want 1/1", got.Sessions, got.Skipped)
	}
}

func TestMergeNilAndEmpty(t *testing.T) {
	if Merge() != nil || Merge(nil, nil) != nil {
		t.Fatal("merging nothing should return nil")
	}
	s := NewMonitor(testConfig()).Finish(testBucketDur)
	got := Merge(nil, s)
	if got == nil || got.Sessions != 1 {
		t.Fatal("single merge should behave as identity on sessions")
	}
}

// Merging in a different order produces byte-identical output (the fleet
// runner merges in config order; this pins that the merge itself is
// order-insensitive for aligned grids).
func TestMergeDeterministicAcrossOrder(t *testing.T) {
	mk := func(seedish int) *Snapshot {
		m := NewMonitor(testConfig())
		for i := 0; i < 10; i++ {
			feedBucket(m, i, 10+seedish, (i+seedish)%3)
		}
		return m.Finish(10 * testBucketDur)
	}
	a, b, c := mk(1), mk(2), mk(3)
	j1, err := Merge(a, b, c).JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := Merge(c, a, b).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("merge output depends on input order")
	}
}
