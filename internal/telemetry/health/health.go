// Package health is SmartVLC's deterministic link-health engine: windowed
// time-series rings sampled on the simulation clock, a declarative SLO
// engine with fast/slow burn-rate alerting, and a per-link state machine
// (ok → warning → critical) — the "is the link usable right now, and is
// it getting worse" view that post-hoc counters and span traces cannot
// give.
//
// The engine inherits the telemetry layer's two rules:
//
//   - Determinism. Every bucket boundary and alert transition is a pure
//     function of the observation stream and the simulation clock — never
//     wall time. All observations are fed from the sequential merge phase
//     of the sim loops (the same shard+Splice discipline that keeps span
//     traces worker-count invariant), so health series and SLO transitions
//     are byte-identical across seeds, worker counts and machines.
//
//   - Nil is the no-op default. Every method on a nil *Monitor returns
//     immediately, so sim hot paths carry the handle unconditionally and
//     pay only a nil check when health is off.
//
// Time is bucketed at a finest resolution of Config.BucketSlots slots
// (default 10 000 slots = 80 ms at the paper's 8 µs slot), then
// downsampled by Config.Factor into progressively coarser rings — a
// multi-resolution pyramid (10k/100k/1M slots by default) so a long run
// keeps both fine recent detail and coarse full-run history in fixed
// memory. SLOs are evaluated on the finest ring only; coarser rings exist
// for rendering and drill-down.
package health

import (
	"smartvlc/internal/telemetry"
)

// Config configures a Monitor. The zero value of every field selects a
// documented default, so `&health.Config{}` is a fully working setup.
type Config struct {
	// TSlotSeconds is the simulation slot duration used to convert slot
	// counts to seconds. Default 8e-6 (the paper's 8 µs slot).
	TSlotSeconds float64

	// BucketSlots is the finest bucket width in slots. Default 10 000
	// (80 ms — roughly eight default 128-byte frames), chosen so a single
	// bucket holds enough frames for its rates to be meaningful.
	BucketSlots int64

	// Levels is the number of ring resolutions (finest plus downsampled).
	// Default 3: BucketSlots, BucketSlots×Factor, BucketSlots×Factor².
	Levels int

	// Factor is the downsample ratio between adjacent resolutions.
	// Default 10.
	Factor int

	// Capacity is the maximum sealed points retained per ring; the oldest
	// are evicted (and counted in Series.Dropped). Default 1024.
	Capacity int

	// Objectives are the SLOs to evaluate; nil selects
	// DefaultObjectives().
	Objectives []Objective

	// Registry, when non-nil, receives one "slo/<objective>/<state>"
	// telemetry event and a health_transitions_total counter increment per
	// alert transition.
	Registry *telemetry.Registry

	// OnAlert, when non-nil, is called synchronously for every state
	// transition — the hook sim.Run uses to arm the flight recorder on
	// critical. Fleet runs sharing one Config share the callback, which is
	// then invoked concurrently from session workers.
	OnAlert func(Transition)

	// Link labels this monitor's transitions and counter series (e.g.
	// "rx2" for a broadcast receiver). Empty for a single link.
	Link string
}

// monitor defaults.
const (
	defaultTSlot       = 8e-6
	defaultBucketSlots = 10_000
	defaultLevels      = 3
	defaultFactor      = 10
	defaultCapacity    = 1024
	maxLevels          = 6
)

func (c Config) withDefaults() Config {
	if c.TSlotSeconds <= 0 {
		c.TSlotSeconds = defaultTSlot
	}
	if c.BucketSlots <= 0 {
		c.BucketSlots = defaultBucketSlots
	}
	if c.Levels <= 0 {
		c.Levels = defaultLevels
	}
	if c.Levels > maxLevels {
		c.Levels = maxLevels
	}
	if c.Factor < 2 {
		c.Factor = defaultFactor
	}
	if c.Capacity <= 0 {
		c.Capacity = defaultCapacity
	}
	if c.Objectives == nil {
		c.Objectives = DefaultObjectives()
	}
	// Normalize into a fresh slice: fleet sessions share the caller's
	// Config value (and thus its Objectives backing array), so in-place
	// normalization would race across session workers.
	objs := make([]Objective, len(c.Objectives))
	for i, o := range c.Objectives {
		objs[i] = o.withDefaults()
	}
	c.Objectives = objs
	return c
}

// acc accumulates raw observations for one open bucket. Raw counts only;
// every derived rate is computed at seal time (and recomputed on merge),
// so folding accs into coarser buckets is exact.
type acc struct {
	framesTx      int64
	framesRetx    int64
	framesOK      int64
	framesBad     int64
	symbols       int64
	symbolErrors  int64
	deliveredBits int64
	txSlots       int64

	levelSum float64
	levelN   int64
	maxLevel float64

	ackCount   int64
	ackSum     float64
	ackBuckets [64]int64
}

func (a *acc) reset() { *a = acc{} }

func (a *acc) empty() bool {
	return a.framesTx == 0 && a.framesOK == 0 && a.framesBad == 0 &&
		a.levelN == 0 && a.ackCount == 0 && a.deliveredBits == 0
}

// fold adds src into a — the downsampling step from a sealed fine bucket
// into its open coarse parent.
func (a *acc) fold(src *acc) {
	a.framesTx += src.framesTx
	a.framesRetx += src.framesRetx
	a.framesOK += src.framesOK
	a.framesBad += src.framesBad
	a.symbols += src.symbols
	a.symbolErrors += src.symbolErrors
	a.deliveredBits += src.deliveredBits
	a.txSlots += src.txSlots
	a.levelSum += src.levelSum
	a.levelN += src.levelN
	if src.maxLevel > a.maxLevel {
		a.maxLevel = src.maxLevel
	}
	a.ackCount += src.ackCount
	a.ackSum += src.ackSum
	for i, n := range src.ackBuckets {
		a.ackBuckets[i] += n
	}
}

// point seals the acc into a Point covering [start, end). widthSlots is
// passed exactly (not re-derived from the float seconds) so full buckets
// carry integral widths.
func (a *acc) point(index int64, start, end, widthSlots float64, targetFn func(float64) float64) Point {
	p := Point{
		Index:         index,
		Start:         start,
		End:           end,
		Links:         1,
		FramesTx:      a.framesTx,
		FramesRetx:    a.framesRetx,
		FramesOK:      a.framesOK,
		FramesBad:     a.framesBad,
		Symbols:       a.symbols,
		SymbolErrors:  a.symbolErrors,
		DeliveredBits: a.deliveredBits,
		TxSlots:       a.txSlots,
		LevelSum:      a.levelSum,
		LevelN:        a.levelN,
		MaxLevel:      a.maxLevel,
		AckCount:      a.ackCount,
		AckSum:        a.ackSum,
	}
	for i, n := range a.ackBuckets {
		if n > 0 {
			p.AckBuckets = append(p.AckBuckets, telemetry.Bucket{Index: i, Count: n})
		}
	}
	if targetFn != nil {
		p.GoodputTarget = targetFn(p.meanLevel())
	}
	p.WidthSlots = widthSlots
	p.derive()
	return p
}

// ring holds the most recent Capacity sealed points at one resolution.
type ring struct {
	pts     []Point
	dropped int64
	cap     int
}

func (r *ring) push(p Point) {
	if len(r.pts) >= r.cap {
		copy(r.pts, r.pts[1:])
		r.pts = r.pts[:len(r.pts)-1]
		r.dropped++
	}
	r.pts = append(r.pts, p)
}

// Monitor is a single-link health engine. It is single-goroutine by
// design (observations arrive from the sequential phase of the sim
// loops); a nil Monitor is a no-op on every method.
type Monitor struct {
	cfg      Config
	tslot    float64
	open     []acc   // open bucket per resolution
	openIdx  []int64 // index of the open bucket at each resolution
	rings    []ring
	evals    []*sloEval
	trans    []Transition
	targetFn func(level float64) float64
	finished bool
}

// NewMonitor builds a Monitor from cfg (zero fields take defaults).
func NewMonitor(cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{
		cfg:     cfg,
		tslot:   cfg.TSlotSeconds,
		open:    make([]acc, cfg.Levels),
		openIdx: make([]int64, cfg.Levels),
		rings:   make([]ring, cfg.Levels),
	}
	for k := range m.rings {
		m.rings[k].cap = cfg.Capacity
	}
	for _, o := range cfg.Objectives {
		m.evals = append(m.evals, newSLOEval(o))
		if o.Metric == MetricGoodput && o.TargetForLevel != nil && m.targetFn == nil {
			m.targetFn = o.TargetForLevel
		}
	}
	if m.targetFn == nil {
		// No per-level target: resolve the static goodput target (if any)
		// so points still carry one for rendering and merge.
		for _, o := range cfg.Objectives {
			if o.Metric == MetricGoodput {
				t := o.Target
				m.targetFn = func(float64) float64 { return t }
				break
			}
		}
	}
	return m
}

// widthSlots returns the bucket width in slots at resolution k.
func (m *Monitor) widthSlots(k int) int64 {
	w := m.cfg.BucketSlots
	for i := 0; i < k; i++ {
		w *= int64(m.cfg.Factor)
	}
	return w
}

// advance seals every finest bucket that has fully elapsed by now,
// cascading downsampled seals into the coarser rings. Observations with a
// timestamp before the open bucket's start (side-channel ACKs whose
// at-time predates the frame that sealed the bucket) are clamped into the
// open bucket — a deterministic rule, documented as part of the format.
func (m *Monitor) advance(now float64) {
	if m.finished {
		return
	}
	for now >= float64(m.openIdx[0]+1)*float64(m.cfg.BucketSlots)*m.tslot {
		m.sealLevel(0)
	}
}

func (m *Monitor) sealLevel(k int) {
	w := m.widthSlots(k)
	idx := m.openIdx[k]
	start := float64(idx*w) * m.tslot
	end := float64((idx+1)*w) * m.tslot
	p := m.open[k].point(idx, start, end, float64(w), m.targetFn)
	m.rings[k].push(p)
	if k == 0 {
		m.evaluate(p)
	}
	if k+1 < m.cfg.Levels {
		m.open[k+1].fold(&m.open[k])
	}
	m.open[k].reset()
	m.openIdx[k]++
	if k+1 < m.cfg.Levels && m.openIdx[k]%int64(m.cfg.Factor) == 0 {
		m.sealLevel(k + 1)
	}
}

// evaluate feeds one sealed finest point to every SLO evaluator and fires
// any resulting transitions.
func (m *Monitor) evaluate(p Point) {
	for _, e := range m.evals {
		if t, ok := e.push(p); ok {
			t.Link = m.cfg.Link
			m.trans = append(m.trans, t)
			if r := m.cfg.Registry; r != nil {
				r.Emit(t.At, "slo/"+t.Objective+"/"+t.To.String(), -1)
				labels := []string{"objective", t.Objective, "state", t.To.String()}
				if m.cfg.Link != "" {
					labels = append(labels, "link", m.cfg.Link)
				}
				r.Counter("health_transitions_total", labels...).Inc()
			}
			if m.cfg.OnAlert != nil {
				m.cfg.OnAlert(t)
			}
		}
	}
}

// Tick advances the bucket clock to now without recording anything — call
// it during idle stretches so empty buckets still seal and SLO windows
// see the silence.
func (m *Monitor) Tick(now float64) {
	if m == nil {
		return
	}
	m.advance(now)
}

// ObserveLevel records the dimming level in effect at now.
func (m *Monitor) ObserveLevel(now, level float64) {
	if m == nil || m.finished {
		return
	}
	m.advance(now)
	a := &m.open[0]
	a.levelSum += level
	a.levelN++
	if level > a.maxLevel {
		a.maxLevel = level
	}
}

// ObserveTx records one transmitted frame of the given airtime (slots);
// retx marks a retransmission.
func (m *Monitor) ObserveTx(now float64, slots int, retx bool) {
	if m == nil || m.finished {
		return
	}
	m.advance(now)
	a := &m.open[0]
	a.framesTx++
	a.txSlots += int64(slots)
	if retx {
		a.framesRetx++
	}
}

// ObserveRx records one receiver pass: accepted/rejected frame counts,
// symbol errors, and the caller's symbol-count denominator (the sim
// passes decoded payload bytes of accepted frames — the denominator the
// paper's Eq. 3 SER bound is checked against).
func (m *Monitor) ObserveRx(now float64, framesOK, framesBad, symbolErrors, symbols int) {
	if m == nil || m.finished {
		return
	}
	m.advance(now)
	a := &m.open[0]
	a.framesOK += int64(framesOK)
	a.framesBad += int64(framesBad)
	a.symbolErrors += int64(symbolErrors)
	a.symbols += int64(symbols)
}

// ObserveDelivered records bits of newly delivered (deduplicated) payload.
func (m *Monitor) ObserveDelivered(now float64, bits int64) {
	if m == nil || m.finished {
		return
	}
	m.advance(now)
	m.open[0].deliveredBits += bits
}

// ObserveAck records one end-to-end ACK latency (first transmission of a
// sequence number to its acknowledgment), in seconds.
func (m *Monitor) ObserveAck(now, latencySeconds float64) {
	if m == nil || m.finished {
		return
	}
	m.advance(now)
	a := &m.open[0]
	a.ackCount++
	a.ackSum += latencySeconds
	a.ackBuckets[telemetry.HistogramBucketIndex(latencySeconds)]++
}

// State returns the worst current SLO state across objectives.
func (m *Monitor) State() State {
	if m == nil {
		return StateOK
	}
	worst := StateOK
	for _, e := range m.evals {
		if e.state > worst {
			worst = e.state
		}
	}
	return worst
}

// Snapshot returns the sealed series so far (open partial buckets
// excluded), safe to call mid-run. Returns nil on a nil Monitor.
func (m *Monitor) Snapshot() *Snapshot {
	if m == nil {
		return nil
	}
	return m.buildSnapshot()
}

// Finish seals all fully elapsed buckets, flushes the open partial bucket
// at every resolution (marked Partial), and returns the final snapshot.
// The monitor then stops accepting observations; further Finish calls
// return the same series.
func (m *Monitor) Finish(now float64) *Snapshot {
	if m == nil {
		return nil
	}
	if !m.finished {
		m.advance(now)
		for k := 0; k < m.cfg.Levels; k++ {
			w := m.widthSlots(k)
			start := float64(m.openIdx[k]*w) * m.tslot
			if m.open[k].empty() || now <= start {
				continue
			}
			p := m.open[k].point(m.openIdx[k], start, now, (now-start)/m.tslot, m.targetFn)
			p.Partial = true
			m.rings[k].push(p)
		}
		m.finished = true
	}
	return m.buildSnapshot()
}

func (m *Monitor) buildSnapshot() *Snapshot {
	s := &Snapshot{
		TSlotSeconds: m.tslot,
		BucketSlots:  m.cfg.BucketSlots,
		Factor:       m.cfg.Factor,
		Sessions:     1,
		Link:         m.cfg.Link,
		State:        m.State(),
		Series:       make([]Series, m.cfg.Levels),
		Objectives:   make([]ObjectiveReport, 0, len(m.evals)),
		Transitions:  append([]Transition{}, m.trans...),
	}
	for k := range m.rings {
		s.Series[k] = Series{
			Resolution:  k,
			BucketSlots: m.widthSlots(k),
			Dropped:     m.rings[k].dropped,
			Points:      append([]Point{}, m.rings[k].pts...),
		}
	}
	for _, e := range m.evals {
		s.Objectives = append(s.Objectives, e.report())
	}
	return s
}
