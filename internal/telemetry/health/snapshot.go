package health

import (
	"encoding/json"
	"io"
	"sort"

	"smartvlc/internal/telemetry"
)

// Point is one sealed health bucket. Raw counts come first — they are
// what merging sums — and every rate below them is derived, recomputed
// from the merged counts by Merge so a fleet view never averages
// averages.
type Point struct {
	Index   int64   `json:"index"`
	Start   float64 `json:"start"` // seconds, sim clock
	End     float64 `json:"end"`
	Partial bool    `json:"partial,omitempty"`

	// Links is the number of links folded into this point (1 as sealed;
	// summed by Merge). Goodput is normalized per link.
	Links int64 `json:"links"`

	// WidthSlots is the bucket width in slots ((End-Start)/tslot), kept
	// explicit so consumers need no clock context to compute rates.
	WidthSlots float64 `json:"width_slots"`

	FramesTx      int64 `json:"frames_tx"`
	FramesRetx    int64 `json:"frames_retx"`
	FramesOK      int64 `json:"frames_ok"`
	FramesBad     int64 `json:"frames_bad"`
	Symbols       int64 `json:"symbols"`
	SymbolErrors  int64 `json:"symbol_errors"`
	DeliveredBits int64 `json:"delivered_bits"`
	TxSlots       int64 `json:"tx_slots"`

	LevelSum float64 `json:"level_sum"`
	LevelN   int64   `json:"level_n"`
	MaxLevel float64 `json:"level_max"`

	AckCount   int64              `json:"ack_count"`
	AckSum     float64            `json:"ack_sum"`
	AckBuckets []telemetry.Bucket `json:"ack_buckets,omitempty"`

	// GoodputTarget is the goodput objective's target resolved at this
	// bucket's mean dimming level, stored because target functions do not
	// survive serialization and Merge must re-evaluate without them.
	GoodputTarget float64 `json:"goodput_target"`

	// Derived rates (recomputed on merge).
	MeanLevel float64 `json:"level_mean"`
	SER       float64 `json:"ser"`
	FrameLoss float64 `json:"frame_loss"`
	Goodput   float64 `json:"goodput_bits_per_slot"`
	RetxRate  float64 `json:"retx_rate"`
	AckP50    float64 `json:"ack_p50"`
	AckP95    float64 `json:"ack_p95"`
	AckP99    float64 `json:"ack_p99"`
}

func (p *Point) meanLevel() float64 {
	if p.LevelN == 0 {
		return 0
	}
	return p.LevelSum / float64(p.LevelN)
}

func (p *Point) widthSlots() float64 { return p.WidthSlots }

// derive recomputes every rate field from the raw counts.
func (p *Point) derive() {
	p.MeanLevel = p.meanLevel()
	if p.Symbols > 0 {
		p.SER = float64(p.SymbolErrors) / float64(p.Symbols)
	} else {
		p.SER = 0
	}
	if all := p.FramesOK + p.FramesBad; all > 0 {
		p.FrameLoss = float64(p.FramesBad) / float64(all)
	} else {
		p.FrameLoss = 0
	}
	if p.WidthSlots > 0 && p.Links > 0 {
		p.Goodput = float64(p.DeliveredBits) / (p.WidthSlots * float64(p.Links))
	} else {
		p.Goodput = 0
	}
	if p.FramesTx > 0 {
		p.RetxRate = float64(p.FramesRetx) / float64(p.FramesTx)
	} else {
		p.RetxRate = 0
	}
	p.AckP50 = telemetry.QuantileOf(p.AckBuckets, p.AckCount, 0.50)
	p.AckP95 = telemetry.QuantileOf(p.AckBuckets, p.AckCount, 0.95)
	p.AckP99 = telemetry.QuantileOf(p.AckBuckets, p.AckCount, 0.99)
}

// Series is one resolution's retained points.
type Series struct {
	Resolution  int     `json:"resolution"`
	BucketSlots int64   `json:"bucket_slots"`
	Dropped     int64   `json:"dropped"`
	Points      []Point `json:"points"`
}

// Snapshot is a point-in-time export of a Monitor (or a merged fleet
// view). All ordering is canonical — series by resolution, points by
// index, transitions in firing order — so two snapshots of identically
// seeded runs marshal to byte-identical JSON regardless of worker count.
type Snapshot struct {
	TSlotSeconds float64           `json:"tslot_seconds"`
	BucketSlots  int64             `json:"bucket_slots"`
	Factor       int               `json:"factor"`
	Sessions     int               `json:"sessions"`
	Skipped      int               `json:"skipped,omitempty"` // merge inputs dropped as incompatible
	Link         string            `json:"link,omitempty"`
	State        State             `json:"state"`
	Series       []Series          `json:"series"`
	Objectives   []ObjectiveReport `json:"objectives"`
	Transitions  []Transition      `json:"transitions"`
}

// JSON marshals the snapshot as canonical indented JSON — the
// byte-identical export the determinism tests pin.
func (s *Snapshot) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteNDJSON streams the snapshot as newline-delimited JSON: a header
// line, then the finest series' points interleaved causally with the
// transitions they fired, then the coarser series, then the objective
// reports. This is the /health/stream wire format.
func (s *Snapshot) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	type headerLine struct {
		Type         string  `json:"type"`
		TSlotSeconds float64 `json:"tslot_seconds"`
		BucketSlots  int64   `json:"bucket_slots"`
		Factor       int     `json:"factor"`
		Sessions     int     `json:"sessions"`
		Link         string  `json:"link,omitempty"`
		State        State   `json:"state"`
	}
	if err := enc.Encode(headerLine{"health", s.TSlotSeconds, s.BucketSlots, s.Factor, s.Sessions, s.Link, s.State}); err != nil {
		return err
	}
	type pointLine struct {
		Type       string `json:"type"`
		Resolution int    `json:"resolution"`
		Point
	}
	type transitionLine struct {
		Type string `json:"type"`
		Transition
	}
	ti := 0
	if len(s.Series) > 0 {
		for _, p := range s.Series[0].Points {
			if err := enc.Encode(pointLine{"point", 0, p}); err != nil {
				return err
			}
			for ti < len(s.Transitions) && s.Transitions[ti].At <= p.End {
				if err := enc.Encode(transitionLine{"transition", s.Transitions[ti]}); err != nil {
					return err
				}
				ti++
			}
		}
	}
	for ; ti < len(s.Transitions); ti++ {
		if err := enc.Encode(transitionLine{"transition", s.Transitions[ti]}); err != nil {
			return err
		}
	}
	for _, sr := range s.Series[min(1, len(s.Series)):] {
		for _, p := range sr.Points {
			if err := enc.Encode(pointLine{"point", sr.Resolution, p}); err != nil {
				return err
			}
		}
	}
	type objectiveLine struct {
		Type string `json:"type"`
		ObjectiveReport
	}
	for _, o := range s.Objectives {
		if err := enc.Encode(objectiveLine{"objective", o}); err != nil {
			return err
		}
	}
	return nil
}

// ReadSnapshot parses a canonical JSON snapshot (the Snapshot.JSON /
// smartvlc-sim -health-out format).
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Merge folds per-link or per-session snapshots into one fleet view.
// Points are aligned by bucket index (all sim clocks start at zero), raw
// counts summed, Links accumulated so goodput stays per-link, dimming
// levels mean-weighted by sample count, ACK latency buckets summed so
// percentiles are recomputed over the merged distribution — never
// averaged. SLO objectives are then re-evaluated by replaying the merged
// finest series through the same incremental evaluator the live monitor
// uses, so merged alert transitions follow identical rules.
//
// Inputs whose grid (tslot, bucket width, factor, resolutions) or
// objective list disagrees with the first snapshot are skipped and
// counted in Skipped. Nil inputs are ignored; merging nothing returns
// nil.
func Merge(snaps ...*Snapshot) *Snapshot {
	var in []*Snapshot
	for _, s := range snaps {
		if s != nil {
			in = append(in, s)
		}
	}
	if len(in) == 0 {
		return nil
	}
	base := in[0]
	out := &Snapshot{
		TSlotSeconds: base.TSlotSeconds,
		BucketSlots:  base.BucketSlots,
		Factor:       base.Factor,
	}
	var compatible []*Snapshot
	for _, s := range in {
		if compatibleWith(s, base) {
			compatible = append(compatible, s)
			out.Sessions += s.Sessions
		} else {
			out.Skipped++
		}
	}
	for k := range base.Series {
		out.Series = append(out.Series, mergeSeries(k, compatible))
	}

	// Re-evaluate the SLOs over the merged finest series.
	evals := make([]*sloEval, 0, len(base.Objectives))
	for _, o := range base.Objectives {
		evals = append(evals, newSLOEval(o.Objective))
	}
	if len(out.Series) > 0 {
		for _, p := range out.Series[0].Points {
			if p.Partial {
				continue
			}
			for _, e := range evals {
				if t, ok := e.push(p); ok {
					out.Transitions = append(out.Transitions, t)
				}
			}
		}
	}
	if out.Transitions == nil {
		out.Transitions = []Transition{}
	}
	for _, e := range evals {
		r := e.report()
		out.Objectives = append(out.Objectives, r)
		if r.Final > out.State {
			out.State = r.Final
		}
	}
	return out
}

func compatibleWith(s, base *Snapshot) bool {
	if s.TSlotSeconds != base.TSlotSeconds || s.BucketSlots != base.BucketSlots ||
		s.Factor != base.Factor || len(s.Series) != len(base.Series) ||
		len(s.Objectives) != len(base.Objectives) {
		return false
	}
	for i := range s.Objectives {
		if s.Objectives[i].Name != base.Objectives[i].Name ||
			s.Objectives[i].Metric != base.Objectives[i].Metric {
			return false
		}
	}
	return true
}

func mergeSeries(k int, snaps []*Snapshot) Series {
	out := Series{
		Resolution:  k,
		BucketSlots: snaps[0].Series[k].BucketSlots,
	}
	byIdx := map[int64][]Point{}
	for _, s := range snaps {
		sr := s.Series[k]
		out.Dropped += sr.Dropped
		for _, p := range sr.Points {
			byIdx[p.Index] = append(byIdx[p.Index], p)
		}
	}
	idxs := make([]int64, 0, len(byIdx))
	for i := range byIdx {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	out.Points = make([]Point, 0, len(idxs))
	for _, i := range idxs {
		out.Points = append(out.Points, mergePoints(byIdx[i]))
	}
	return out
}

func mergePoints(pts []Point) Point {
	out := Point{Index: pts[0].Index, Start: pts[0].Start, End: pts[0].End}
	ack := map[int]int64{}
	var tgtWeighted, tgtPlain float64
	for _, p := range pts {
		if p.Start < out.Start {
			out.Start = p.Start
		}
		if p.End > out.End {
			out.End = p.End
		}
		if p.Partial {
			out.Partial = true
		}
		if p.WidthSlots > out.WidthSlots {
			out.WidthSlots = p.WidthSlots
		}
		out.Links += p.Links
		out.FramesTx += p.FramesTx
		out.FramesRetx += p.FramesRetx
		out.FramesOK += p.FramesOK
		out.FramesBad += p.FramesBad
		out.Symbols += p.Symbols
		out.SymbolErrors += p.SymbolErrors
		out.DeliveredBits += p.DeliveredBits
		out.TxSlots += p.TxSlots
		out.LevelSum += p.LevelSum
		out.LevelN += p.LevelN
		if p.MaxLevel > out.MaxLevel {
			out.MaxLevel = p.MaxLevel
		}
		out.AckCount += p.AckCount
		out.AckSum += p.AckSum
		for _, b := range p.AckBuckets {
			ack[b.Index] += b.Count
		}
		tgtWeighted += p.GoodputTarget * float64(p.LevelN)
		tgtPlain += p.GoodputTarget
	}
	for i := 0; i < 64; i++ {
		if n := ack[i]; n > 0 {
			out.AckBuckets = append(out.AckBuckets, telemetry.Bucket{Index: i, Count: n})
		}
	}
	// Level-weighted mean of the per-link resolved targets; exact when
	// links dim together, a documented approximation otherwise.
	if out.LevelN > 0 {
		out.GoodputTarget = tgtWeighted / float64(out.LevelN)
	} else if len(pts) > 0 {
		out.GoodputTarget = tgtPlain / float64(len(pts))
	}
	out.derive()
	return out
}
