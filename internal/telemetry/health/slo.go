package health

import (
	"encoding/json"
	"fmt"

	"smartvlc/internal/telemetry"
)

// Metric names a health signal an Objective can bound. Values are the
// JSON spellings used in snapshots.
type Metric string

const (
	// MetricSER is symbol errors / symbols over the window — the signal
	// the paper's Eq. 3 design bound (SER ≤ 5e-3 by default) constrains.
	MetricSER Metric = "ser"
	// MetricFrameLoss is CRC-rejected frames / received frames.
	MetricFrameLoss Metric = "frame_loss"
	// MetricGoodput is delivered payload bits per slot of elapsed link
	// time (not per transmitted slot), per link.
	MetricGoodput Metric = "goodput"
	// MetricAckP95 is the 95th-percentile end-to-end ACK latency in
	// seconds, from the window's merged log2 latency buckets.
	MetricAckP95 Metric = "ack_p95"
	// MetricRetxRate is retransmitted frames / transmitted frames.
	MetricRetxRate Metric = "retx_rate"
)

// Kind says which side of the target is healthy.
type Kind string

const (
	// UpperBound objectives are healthy while value ≤ target (SER, loss,
	// latency, retransmit rate). Burn = value/target.
	UpperBound Kind = "upper"
	// LowerBound objectives are healthy while value ≥ target (goodput).
	// Burn = target/value, +Inf (clamped to burnCap) when value is zero.
	LowerBound Kind = "lower"
)

// State is the alert state of an objective or link. Ordered: higher is
// worse. Marshals as its string name.
type State int

const (
	StateOK State = iota
	StateWarning
	StateCritical
)

func (s State) String() string {
	switch s {
	case StateWarning:
		return "warning"
	case StateCritical:
		return "critical"
	default:
		return "ok"
	}
}

// MarshalJSON encodes the state as its string name.
func (s State) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes a state from its string name.
func (s *State) UnmarshalJSON(b []byte) error {
	var v string
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch v {
	case "ok":
		*s = StateOK
	case "warning":
		*s = StateWarning
	case "critical":
		*s = StateCritical
	default:
		return fmt.Errorf("health: unknown state %q", v)
	}
	return nil
}

// Objective is one declarative SLO, evaluated with the SRE multi-window
// burn-rate rule: the state escalates only when BOTH the fast window
// (recent, catches onset quickly) and the slow window (sustained,
// suppresses blips) burn at or above the threshold, and de-escalates as
// soon as either drops below.
type Objective struct {
	Name   string  `json:"name"`
	Metric Metric  `json:"metric"`
	Kind   Kind    `json:"kind"`
	Target float64 `json:"target"`

	// TargetForLevel, when non-nil on a goodput objective, resolves the
	// target from the bucket's mean dimming level — the paper's envelope
	// rate is tent-shaped in the level, so a fixed bits/slot target would
	// be wrong at the dim and bright extremes. Resolved per bucket at seal
	// time and stored in Point.GoodputTarget (functions don't survive
	// serialization; merge re-uses the stored values).
	TargetForLevel func(level float64) float64 `json:"-"`

	// FastWindow and SlowWindow are window lengths in finest buckets.
	// Defaults 5 and 30 (0.4 s and 2.4 s at the default grid).
	FastWindow int `json:"fast_window"`
	SlowWindow int `json:"slow_window"`

	// WarnBurn and CritBurn are the burn-rate thresholds. Defaults 1
	// (consuming the budget exactly) and 2 (twice over).
	WarnBurn float64 `json:"warn_burn"`
	CritBurn float64 `json:"crit_burn"`
}

func (o Objective) withDefaults() Objective {
	if o.FastWindow <= 0 {
		o.FastWindow = 5
	}
	if o.SlowWindow < o.FastWindow {
		o.SlowWindow = 6 * o.FastWindow
	}
	if o.WarnBurn <= 0 {
		o.WarnBurn = 1
	}
	if o.CritBurn <= o.WarnBurn {
		o.CritBurn = 2 * o.WarnBurn
	}
	return o
}

// DefaultObjectives returns the stock SLO set, calibrated against the
// repo's healthy default operating point (level 0.5, 3 m, 400 lx:
// ≈0.76 bit/slot goodput, ≈1% frame loss, ACK p95 under two airtimes).
func DefaultObjectives() []Objective {
	return []Objective{
		{
			// The paper's Eq. 3 design bound: the AMPPM tables are built so
			// per-level SER stays ≤ 5e-3 (amppm.DefaultConstraints().SERBound);
			// this objective checks the live link against the same number.
			Name: "ser", Metric: MetricSER, Kind: UpperBound, Target: 5e-3,
		},
		{
			Name: "frame_loss", Metric: MetricFrameLoss, Kind: UpperBound, Target: 0.05,
		},
		{
			// Tent-shaped per-level target tracking the AMPPM envelope-rate
			// curve, which peaks at level 0.5 and falls toward both extremes.
			// 0.5·tent leaves ~1.5× margin at the healthy operating point.
			Name: "goodput", Metric: MetricGoodput, Kind: LowerBound, Target: 0.5,
			TargetForLevel: func(level float64) float64 {
				tent := level
				if 1-level < tent {
					tent = 1 - level
				}
				if tent < 0 {
					tent = 0
				}
				return 0.5 * 2 * tent
			},
		},
		{
			Name: "ack_p95", Metric: MetricAckP95, Kind: UpperBound, Target: 0.05,
		},
		{
			Name: "retx_rate", Metric: MetricRetxRate, Kind: UpperBound, Target: 0.3,
		},
	}
}

// burnCap bounds reported burn rates: a dead link's goodput burn is
// mathematically +Inf, which JSON cannot encode and no dashboard needs.
const burnCap = 1e6

// Transition records one alert state change of one objective.
type Transition struct {
	At        float64 `json:"at"` // sim-time seconds (sealing bucket's end)
	Link      string  `json:"link,omitempty"`
	Objective string  `json:"objective"`
	From      State   `json:"from"`
	To        State   `json:"to"`
	BurnFast  float64 `json:"burn_fast"`
	BurnSlow  float64 `json:"burn_slow"`
	Value     float64 `json:"value"`  // fast-window metric value
	Target    float64 `json:"target"` // fast-window resolved target
}

// ObjectiveReport is an objective's spec plus its evaluation outcome.
type ObjectiveReport struct {
	Objective
	Final State `json:"final"`
	// GoodBuckets / EvalBuckets is per-bucket SLI attainment: of the
	// finest buckets where the metric was defined, how many met the
	// target on their own.
	GoodBuckets int64   `json:"good_buckets"`
	EvalBuckets int64   `json:"eval_buckets"`
	WorstBurn   float64 `json:"worst_burn"`
	WorstAt     float64 `json:"worst_at"`
}

// sloEval incrementally evaluates one objective over a stream of sealed
// finest points. The same evaluator is replayed over merged points by
// Merge, so live and merged verdicts follow identical rules.
type sloEval struct {
	obj   Objective
	pts   []Point // last SlowWindow points
	state State

	good, total int64
	worstBurn   float64
	worstAt     float64
}

func newSLOEval(o Objective) *sloEval { return &sloEval{obj: o} }

// windowValue aggregates the metric over the last n points. ok is false
// when the metric is undefined there (no frames, no ACKs, no symbols) —
// undefined windows never change the alert state.
func (e *sloEval) windowValue(n int) (value, target float64, ok bool) {
	if n > len(e.pts) {
		n = len(e.pts)
	}
	w := e.pts[len(e.pts)-n:]
	target = e.obj.Target
	switch e.obj.Metric {
	case MetricSER:
		var errs, syms int64
		for _, p := range w {
			errs += p.SymbolErrors
			syms += p.Symbols
		}
		if syms == 0 {
			return 0, target, false
		}
		return float64(errs) / float64(syms), target, true
	case MetricFrameLoss:
		var bad, all int64
		for _, p := range w {
			bad += p.FramesBad
			all += p.FramesOK + p.FramesBad
		}
		if all == 0 {
			return 0, target, false
		}
		return float64(bad) / float64(all), target, true
	case MetricGoodput:
		var bits int64
		var slots, tsum float64
		for _, p := range w {
			bits += p.DeliveredBits
			slots += p.widthSlots() * float64(p.Links)
			tsum += p.GoodputTarget
		}
		if slots == 0 {
			return 0, target, false
		}
		if len(w) > 0 {
			target = tsum / float64(len(w))
		}
		return float64(bits) / slots, target, true
	case MetricAckP95:
		var count int64
		merged := map[int]int64{}
		for _, p := range w {
			count += p.AckCount
			for _, b := range p.AckBuckets {
				merged[b.Index] += b.Count
			}
		}
		if count == 0 {
			return 0, target, false
		}
		bs := make([]telemetry.Bucket, 0, len(merged))
		for i := 0; i < 64; i++ {
			if n := merged[i]; n > 0 {
				bs = append(bs, telemetry.Bucket{Index: i, Count: n})
			}
		}
		return telemetry.QuantileOf(bs, count, 0.95), target, true
	case MetricRetxRate:
		var retx, tx int64
		for _, p := range w {
			retx += p.FramesRetx
			tx += p.FramesTx
		}
		if tx == 0 {
			return 0, target, false
		}
		return float64(retx) / float64(tx), target, true
	}
	return 0, target, false
}

// burn converts a (value, target) pair into a burn rate per the
// objective's Kind, clamped to burnCap.
func (o Objective) burn(value, target float64) float64 {
	var b float64
	switch o.Kind {
	case LowerBound:
		if target <= 0 {
			return 0
		}
		if value <= 0 {
			return burnCap
		}
		b = target / value
	default: // UpperBound
		if target <= 0 {
			return burnCap
		}
		b = value / target
	}
	if b > burnCap {
		b = burnCap
	}
	return b
}

// push feeds one sealed finest point, returning a transition if the alert
// state changed. Evaluation waits until FastWindow points have sealed
// (warmup) so a link is never judged on its first instants.
func (e *sloEval) push(p Point) (Transition, bool) {
	e.pts = append(e.pts, p)
	if len(e.pts) > e.obj.SlowWindow {
		e.pts = e.pts[1:]
	}

	// Per-bucket attainment on the point itself.
	if v, t, ok := e.lastValue(); ok {
		e.total++
		if e.obj.burn(v, t) <= 1 {
			e.good++
		}
	}

	if len(e.pts) < e.obj.FastWindow {
		return Transition{}, false
	}
	fv, ft, fok := e.windowValue(e.obj.FastWindow)
	sv, st, sok := e.windowValue(e.obj.SlowWindow)
	if !fok || !sok {
		return Transition{}, false
	}
	bf := e.obj.burn(fv, ft)
	bs := e.obj.burn(sv, st)
	if bf > e.worstBurn {
		e.worstBurn = bf
		e.worstAt = p.End
	}
	next := StateOK
	switch {
	case bf >= e.obj.CritBurn && bs >= e.obj.CritBurn:
		next = StateCritical
	case bf >= e.obj.WarnBurn && bs >= e.obj.WarnBurn:
		next = StateWarning
	}
	if next == e.state {
		return Transition{}, false
	}
	t := Transition{
		At:        p.End,
		Objective: e.obj.Name,
		From:      e.state,
		To:        next,
		BurnFast:  bf,
		BurnSlow:  bs,
		Value:     fv,
		Target:    ft,
	}
	e.state = next
	return t, true
}

// lastValue is windowValue over just the newest point.
func (e *sloEval) lastValue() (float64, float64, bool) { return e.windowValue(1) }

func (e *sloEval) report() ObjectiveReport {
	return ObjectiveReport{
		Objective:   e.obj,
		Final:       e.state,
		GoodBuckets: e.good,
		EvalBuckets: e.total,
		WorstBurn:   e.worstBurn,
		WorstAt:     e.worstAt,
	}
}
