package telemetry

import (
	"bytes"
	"testing"
)

func sessionSnapshot(seed int64) *Snapshot {
	r := New()
	r.Counter("frames_total").Add(10 + seed)
	r.Counter("frames_total", "outcome", "bad").Add(seed)
	r.Gauge("goodput_bps").Set(float64(1000 * (seed + 1)))
	h := r.Histogram("airtime_slots")
	h.Observe(float64(4 * (seed + 1)))
	h.Observe(3)
	r.Emit(0.5, "frame/tx", seed)
	return r.Snapshot()
}

func TestMergeAggregates(t *testing.T) {
	m := Merge(sessionSnapshot(1), nil, sessionSnapshot(2))

	wantCounter := func(name, lk, lv string, want int64) {
		t.Helper()
		for _, c := range m.Counters {
			if c.Name != name {
				continue
			}
			if lk == "" && len(c.Labels) == 0 || len(c.Labels) == 1 && c.Labels[0].Key == lk && c.Labels[0].Value == lv {
				if c.Value != want {
					t.Errorf("%s{%s=%s} = %d, want %d", name, lk, lv, c.Value, want)
				}
				return
			}
		}
		t.Errorf("counter %s{%s=%s} missing", name, lk, lv)
	}
	wantCounter("frames_total", "", "", 11+12)
	wantCounter("frames_total", "outcome", "bad", 3)

	if len(m.Gauges) != 1 || m.Gauges[0].Value != (2000+3000)/2 {
		t.Fatalf("gauge mean: %+v", m.Gauges)
	}
	if len(m.Histograms) != 1 {
		t.Fatalf("histograms: %+v", m.Histograms)
	}
	h := m.Histograms[0]
	if h.Count != 4 || h.Sum != 8+3+12+3 {
		t.Fatalf("histogram count=%d sum=%v", h.Count, h.Sum)
	}
	var bucketTotal int64
	for _, b := range h.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != 4 {
		t.Fatalf("bucket occupancy %d", bucketTotal)
	}
	if len(m.Events) != 0 || m.EventsTotal != 2 {
		t.Fatalf("events must be elided with totals kept: %d events, total %d", len(m.Events), m.EventsTotal)
	}
}

// TestMergeSingleIdentity: merging one event-free snapshot is the
// identity — same series, same values, same canonical JSON.
func TestMergeSingleIdentity(t *testing.T) {
	r := New()
	r.Counter("frames_total").Add(7)
	r.Counter("frames_total", "outcome", "bad").Add(2)
	r.Gauge("goodput_bps").Set(1234.5)
	r.Histogram("airtime_slots").Observe(40)
	s := r.Snapshot()

	want, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Merge(s).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("single-snapshot merge is not the identity:\nwant %s\ngot  %s", want, got)
	}
}

// TestMergeEmptyList: Merge of an all-nil argument list behaves like
// Merge of nothing — the canonical empty snapshot.
func TestMergeEmptyList(t *testing.T) {
	m := Merge(nil, nil)
	if len(m.Counters) != 0 || len(m.Gauges) != 0 || len(m.Histograms) != 0 ||
		len(m.Events) != 0 || m.EventsTotal != 0 || m.EventsDropped != 0 {
		t.Fatalf("all-nil merge not empty: %+v", m)
	}
}

// TestMergeDisjointBuckets: histograms whose occupied buckets do not
// overlap merge into the sorted union with occupancies intact.
func TestMergeDisjointBuckets(t *testing.T) {
	a := New()
	a.Histogram("airtime_slots").Observe(1) // low bucket
	b := New()
	b.Histogram("airtime_slots").Observe(1e6) // high bucket
	b.Histogram("airtime_slots").Observe(1e6)

	m := Merge(a.Snapshot(), b.Snapshot())
	if len(m.Histograms) != 1 {
		t.Fatalf("histograms: %+v", m.Histograms)
	}
	h := m.Histograms[0]
	if h.Count != 3 || len(h.Buckets) != 2 {
		t.Fatalf("count %d, %d buckets, want 3 and 2: %+v", h.Count, len(h.Buckets), h.Buckets)
	}
	if h.Buckets[0].Index >= h.Buckets[1].Index {
		t.Fatalf("buckets not index-sorted: %+v", h.Buckets)
	}
	if h.Buckets[0].Count != 1 || h.Buckets[1].Count != 2 {
		t.Fatalf("bucket occupancies lost: %+v", h.Buckets)
	}
}

// TestMergeEventAccounting pins the elision contract: event sequences are
// dropped but both volume counters sum, including drops recorded by the
// per-session rings.
func TestMergeEventAccounting(t *testing.T) {
	r := New()
	r.Emit(0.1, "frame/tx", 0)
	r.Emit(0.2, "frame/tx", 1)
	m := Merge(
		r.Snapshot(),
		&Snapshot{EventsTotal: 10, EventsDropped: 3},
		&Snapshot{EventsTotal: 5, EventsDropped: 5,
			Events: []Event{{At: 1, Kind: "frame/tx"}}},
	)
	if len(m.Events) != 0 {
		t.Fatalf("events not elided: %+v", m.Events)
	}
	if m.EventsTotal != 2+10+5 {
		t.Fatalf("EventsTotal %d, want 17", m.EventsTotal)
	}
	if m.EventsDropped != 3+5 {
		t.Fatalf("EventsDropped %d, want 8", m.EventsDropped)
	}
}

// TestMergeCanonical: the merged snapshot must export byte-identically
// regardless of input construction history, and merging zero snapshots
// must yield the canonical empty snapshot.
func TestMergeCanonical(t *testing.T) {
	a, err := Merge(sessionSnapshot(3), sessionSnapshot(4)).JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Merge(sessionSnapshot(3), sessionSnapshot(4)).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("merge is not reproducible")
	}
	empty, err := Merge().JSON()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := (&Snapshot{Counters: []CounterSnapshot{}, Gauges: []GaugeSnapshot{}, Histograms: []HistogramSnapshot{}}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(empty, ref) {
		t.Fatalf("empty merge:\n%s", empty)
	}
}
