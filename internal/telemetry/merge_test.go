package telemetry

import (
	"bytes"
	"testing"
)

func sessionSnapshot(seed int64) *Snapshot {
	r := New()
	r.Counter("frames_total").Add(10 + seed)
	r.Counter("frames_total", "outcome", "bad").Add(seed)
	r.Gauge("goodput_bps").Set(float64(1000 * (seed + 1)))
	h := r.Histogram("airtime_slots")
	h.Observe(float64(4 * (seed + 1)))
	h.Observe(3)
	r.Emit(0.5, "frame/tx", seed)
	return r.Snapshot()
}

func TestMergeAggregates(t *testing.T) {
	m := Merge(sessionSnapshot(1), nil, sessionSnapshot(2))

	wantCounter := func(name, lk, lv string, want int64) {
		t.Helper()
		for _, c := range m.Counters {
			if c.Name != name {
				continue
			}
			if lk == "" && len(c.Labels) == 0 || len(c.Labels) == 1 && c.Labels[0].Key == lk && c.Labels[0].Value == lv {
				if c.Value != want {
					t.Errorf("%s{%s=%s} = %d, want %d", name, lk, lv, c.Value, want)
				}
				return
			}
		}
		t.Errorf("counter %s{%s=%s} missing", name, lk, lv)
	}
	wantCounter("frames_total", "", "", 11+12)
	wantCounter("frames_total", "outcome", "bad", 3)

	if len(m.Gauges) != 1 || m.Gauges[0].Value != (2000+3000)/2 {
		t.Fatalf("gauge mean: %+v", m.Gauges)
	}
	if len(m.Histograms) != 1 {
		t.Fatalf("histograms: %+v", m.Histograms)
	}
	h := m.Histograms[0]
	if h.Count != 4 || h.Sum != 8+3+12+3 {
		t.Fatalf("histogram count=%d sum=%v", h.Count, h.Sum)
	}
	var bucketTotal int64
	for _, b := range h.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != 4 {
		t.Fatalf("bucket occupancy %d", bucketTotal)
	}
	if len(m.Events) != 0 || m.EventsTotal != 2 {
		t.Fatalf("events must be elided with totals kept: %d events, total %d", len(m.Events), m.EventsTotal)
	}
}

// TestMergeCanonical: the merged snapshot must export byte-identically
// regardless of input construction history, and merging zero snapshots
// must yield the canonical empty snapshot.
func TestMergeCanonical(t *testing.T) {
	a, err := Merge(sessionSnapshot(3), sessionSnapshot(4)).JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Merge(sessionSnapshot(3), sessionSnapshot(4)).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("merge is not reproducible")
	}
	empty, err := Merge().JSON()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := (&Snapshot{Counters: []CounterSnapshot{}, Gauges: []GaugeSnapshot{}, Histograms: []HistogramSnapshot{}}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(empty, ref) {
		t.Fatalf("empty merge:\n%s", empty)
	}
}
