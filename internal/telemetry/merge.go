package telemetry

import "sort"

// Merge combines per-session snapshots into one fleet aggregate. The
// merge is a pure, sequential fold over the argument order, so as long as
// the caller passes the snapshots in a deterministic order (e.g. session
// index), the result is byte-identical no matter how many workers
// produced the inputs. Nil snapshots are skipped.
//
// Series semantics:
//
//   - Counters sum per (name, labels) series — a fleet-wide event count.
//   - Histograms sum bucket occupancies, counts and sums — the fleet
//     distribution is the union of the session distributions. Exemplar
//     reservoirs re-merge under the same deterministic total order the
//     sessions used; ties resolve to the exemplar from the
//     lowest-indexed snapshot (each merged exemplar's Shard records that
//     index).
//   - Gauges take the arithmetic mean over the sessions that carry the
//     series: a gauge is a level, not a flow, and the mean is the one
//     aggregate that is meaningful for both rates (mean session goodput)
//     and settings (mean dimming level). Merged gauges record how many
//     sessions they average over in Weight, and re-merging weights each
//     input by it — so Merge is associative: merging partial merges gives
//     the same per-session mean (and the same canonical bytes, when the
//     reconstructed sums regroup exactly) as one flat merge.
//   - Events are elided: each session's trace runs on its own simulated
//     clock, so interleaving them would juxtapose unrelated time axes.
//     EventsTotal and EventsDropped still sum, recording the volume.
//
// The elision contract: Merge drops per-session sequences (the Events
// ring here, and analogously the span trees of
// smartvlc/internal/telemetry/span) by design, never silently — the
// summed EventsTotal/EventsDropped make the elided volume visible, and
// the per-session snapshots remain intact on each session's own Result.
// Callers who need the sequences in fleet mode export them per session
// instead of merging: sim.FleetResult.WriteSessionTraces writes one span
// snapshot and one Chrome trace per session, named by session index.
func Merge(snaps ...*Snapshot) *Snapshot {
	out := &Snapshot{
		Counters:   []CounterSnapshot{},
		Gauges:     []GaugeSnapshot{},
		Histograms: []HistogramSnapshot{},
	}
	counters := map[string]*CounterSnapshot{}
	type gaugeAcc struct {
		snap GaugeSnapshot
		sum  float64 // session-weighted value sum
		n    int64   // sessions represented
	}
	gauges := map[string]*gaugeAcc{}
	type histAcc struct {
		snap    HistogramSnapshot
		buckets map[int]int64
		ex      map[int][]Exemplar
	}
	hists := map[string]*histAcc{}

	for si, s := range snaps {
		if s == nil {
			continue
		}
		for _, c := range s.Counters {
			k := c.Name + "\xff" + labelSig(c.Labels)
			if acc, ok := counters[k]; ok {
				acc.Value += c.Value
			} else {
				cc := c
				counters[k] = &cc
			}
		}
		for _, g := range s.Gauges {
			k := g.Name + "\xff" + labelSig(g.Labels)
			// An input that is itself a merge carries the session count it
			// averaged over; reconstruct its contribution by weighting.
			w := g.Weight
			if w <= 0 {
				w = 1
			}
			if acc, ok := gauges[k]; ok {
				acc.sum += g.Value * float64(w)
				acc.n += w
			} else {
				gauges[k] = &gaugeAcc{snap: g, sum: g.Value * float64(w), n: w}
			}
		}
		for _, h := range s.Histograms {
			k := h.Name + "\xff" + labelSig(h.Labels)
			acc, ok := hists[k]
			if !ok {
				acc = &histAcc{
					snap:    HistogramSnapshot{Name: h.Name, Labels: h.Labels},
					buckets: map[int]int64{},
				}
				hists[k] = acc
			}
			acc.snap.Count += h.Count
			acc.snap.Sum += h.Sum
			for _, b := range h.Buckets {
				acc.buckets[b.Index] += b.Count
			}
			// Exemplar reservoirs re-merge under the same total order the
			// sessions used, with each exemplar stamped with its source
			// snapshot's position so ties resolve lowest-shard-wins.
			for _, be := range h.Exemplars {
				if acc.ex == nil {
					acc.ex = map[int][]Exemplar{}
				}
				for _, e := range be.Exemplars {
					e.Shard = si
					acc.ex[be.Bucket] = insertExemplar(acc.ex[be.Bucket], e)
				}
			}
		}
		out.EventsTotal += s.EventsTotal
		out.EventsDropped += s.EventsDropped
	}

	for _, c := range counters {
		out.Counters = append(out.Counters, *c)
	}
	for _, g := range gauges {
		gs := g.snap
		gs.Value = g.sum / float64(g.n)
		gs.Weight = 0 // single-session mean serializes weightless
		if g.n > 1 {
			gs.Weight = g.n
		}
		out.Gauges = append(out.Gauges, gs)
	}
	for _, h := range hists {
		hs := h.snap
		idxs := make([]int, 0, len(h.buckets))
		for i := range h.buckets {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			hs.Buckets = append(hs.Buckets, Bucket{Index: i, Count: h.buckets[i]})
		}
		hs.Exemplars = exemplarSnapshot(h.ex)
		out.Histograms = append(out.Histograms, hs)
	}
	out.sortCanonical()
	return out
}
