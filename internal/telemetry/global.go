package telemetry

// The global registry holds process-wide metrics whose values depend on
// warm-up state shared across sessions — the planning, threshold, codec
// and sampler caches. Those counts are real and useful (the HTTP endpoint
// and cache-efficiency tests read them) but NOT deterministic per session:
// a second identically seeded run finds the caches already warm. Session
// registries (sim.Config.Telemetry) therefore never include them, which is
// what keeps session snapshots byte-identical across runs.
var global = New()

// Global returns the process-wide registry. It always exists, so
// package-level cache instrumentation can register counters at init time;
// the per-increment cost is one atomic add.
func Global() *Registry { return global }

// SlotClock converts a monotonically advancing slot index into the
// deterministic timestamps the telemetry layer requires: seconds =
// slots × TSlotSeconds. Emitters that count air time in slots (Stream,
// offline decoders) use it instead of wall time.
type SlotClock struct {
	// TSlotSeconds is the slot duration (the paper's prototype: 8 µs).
	TSlotSeconds float64
}

// At returns the deterministic time of the given slot index in seconds.
func (c SlotClock) At(slot int) float64 { return float64(slot) * c.TSlotSeconds }
