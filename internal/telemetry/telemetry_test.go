package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Help("x", "y")
	r.Counter("c").Inc()
	r.Counter("c").Add(5)
	r.Gauge("g").Set(3)
	r.Histogram("h").Observe(1)
	r.Emit(0, "e", 1)
	r.SetTraceCapacity(8)
	if got := r.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	if got := r.Gauge("g").Value(); got != 0 {
		t.Fatalf("nil gauge value = %v", got)
	}
	if got := r.Histogram("h").Count(); got != 0 {
		t.Fatalf("nil histogram count = %d", got)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Events) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", s)
	}
	if _, err := r.JSON(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
}

func TestSeriesIdentity(t *testing.T) {
	r := New()
	a := r.Counter("hits", "cache", "level")
	b := r.Counter("hits", "cache", "level")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := r.Counter("hits", "cache", "desc")
	if a == c {
		t.Fatal("different labels must return distinct counters")
	}
	// Label order must not matter: pairs are sorted.
	d := r.Counter("multi", "b", "2", "a", "1")
	e := r.Counter("multi", "a", "1", "b", "2")
	if d != e {
		t.Fatal("label pair order changed series identity")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("h")
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {-5, 0}, {1e-12, 0},
		{1, 31},     // (0.5, 1]
		{1.5, 32},   // (1, 2]
		{2, 32},     // boundary is inclusive
		{1024, 41},  // 2^10: (512, 1024]
		{1e300, 63}, // clamps to last bucket
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.v, got, c.want)
		}
		if c.want < histBuckets-1 {
			if b := histBound(c.want); c.v > b {
				t.Errorf("value %v above its bucket bound %v", c.v, b)
			}
		}
	}
	h.Observe(1)
	h.Observe(1.5)
	h.Observe(3)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-5.5) > 1e-12 {
		t.Fatalf("sum = %v", h.Sum())
	}
	if got := histBound(histBuckets - 1); !math.IsInf(got, 1) {
		t.Fatalf("last bound = %v, want +Inf", got)
	}
}

func TestTraceRingDropsOldest(t *testing.T) {
	r := New()
	r.SetTraceCapacity(4)
	for i := 0; i < 10; i++ {
		r.Emit(float64(i), "e", int64(i))
	}
	s := r.Snapshot()
	if s.EventsTotal != 10 || s.EventsDropped != 6 {
		t.Fatalf("total=%d dropped=%d", s.EventsTotal, s.EventsDropped)
	}
	if len(s.Events) != 4 {
		t.Fatalf("len(events) = %d", len(s.Events))
	}
	for i, e := range s.Events {
		if e.Seq != int64(6+i) {
			t.Fatalf("event %d seq = %d, want %d (oldest-first tail)", i, e.Seq, 6+i)
		}
	}
}

// TestConcurrentRegistry hammers one registry from many goroutines — the
// scenario of several sessions sharing a process registry. Run under
// `go test -race` (CI does) to assert race safety; the totals assert no
// lost updates.
func TestConcurrentRegistry(t *testing.T) {
	r := New()
	const workers = 16
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("ops_total", "worker", string(rune('a'+w%4)))
			shared := r.Counter("shared_total")
			g := r.Gauge("level")
			h := r.Histogram("lat")
			for i := 0; i < iters; i++ {
				c.Inc()
				shared.Add(2)
				g.Set(float64(i))
				h.Observe(float64(i % 17))
				r.Emit(float64(i), "tick", int64(w))
				if i%257 == 0 {
					_ = r.Snapshot() // concurrent snapshotting must be safe too
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != workers*iters*2 {
		t.Fatalf("shared_total = %d, want %d", got, workers*iters*2)
	}
	total := int64(0)
	for _, c := range r.Snapshot().Counters {
		if c.Name == "ops_total" {
			total += c.Value
		}
	}
	if total != workers*iters {
		t.Fatalf("sum ops_total = %d, want %d", total, workers*iters)
	}
	if got := r.Histogram("lat").Count(); got != workers*iters {
		t.Fatalf("hist count = %d, want %d", got, workers*iters)
	}
}

// TestPrometheusGolden pins the exact text exposition bytes for a small
// registry: HELP/TYPE headers, label escaping, cumulative histogram
// buckets with the +Inf terminator.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.Help("frames_total", "Frames by outcome.")
	r.Counter("frames_total", "outcome", "ok").Add(7)
	r.Counter("frames_total", "outcome", "bad").Add(2)
	r.Gauge("goodput_bps").Set(61440.5)
	r.Help("airtime_slots", "Frame air time in slots.")
	h := r.Histogram("airtime_slots")
	h.Observe(1)   // bucket 31 (le 1)
	h.Observe(1.5) // bucket 32 (le 2)
	h.Observe(2)   // bucket 32

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE frames_total counter
frames_total{outcome="bad"} 2
frames_total{outcome="ok"} 7
# TYPE goodput_bps gauge
goodput_bps 61440.5
# HELP airtime_slots Frame air time in slots.
# TYPE airtime_slots histogram
airtime_slots_bucket{le="1"} 1
airtime_slots_bucket{le="2"} 3
airtime_slots_bucket{le="+Inf"} 3
airtime_slots_sum 4.5
airtime_slots_count 3
`
	// frames_total HELP is emitted with its family header.
	wantWithHelp := "# HELP frames_total Frames by outcome.\n" + want
	if got := buf.String(); got != wantWithHelp {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, wantWithHelp)
	}
}

// TestSnapshotJSONDeterminism builds the same metric history twice, in
// different registration orders, and asserts byte-identical JSON.
func TestSnapshotJSONDeterminism(t *testing.T) {
	build := func(reverse bool) []byte {
		r := New()
		names := []string{"a_total", "b_total", "c_total"}
		if reverse {
			names = []string{"c_total", "b_total", "a_total"}
		}
		for i, n := range names {
			r.Counter(n, "k", "v").Add(int64(i + 1))
		}
		r.Gauge("g").Set(0.1 + 0.2) // float formatting must round-trip identically
		r.Histogram("h").Observe(3.14)
		r.Emit(1.5, "frame/tx", 1)
		r.Emit(2.5, "frame/ack", 1)
		b, err := r.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := build(false), build(true)
	// Counter values follow registration order in this construction, so
	// fix them up to the same values before comparing structure: instead,
	// simply assert that identical histories are identical and that the
	// reversed-registration registry still sorts series canonically.
	if !bytes.Equal(build(false), a) {
		t.Fatal("identical construction produced different JSON")
	}
	var sa, sb Snapshot
	if err := json.Unmarshal(a, &sa); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &sb); err != nil {
		t.Fatal(err)
	}
	for i, c := range sa.Counters {
		if sb.Counters[i].Name != c.Name {
			t.Fatalf("series order depends on registration order: %s vs %s", c.Name, sb.Counters[i].Name)
		}
	}
}
