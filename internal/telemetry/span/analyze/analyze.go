// Package analyze renders the human-readable post-mortem reports behind
// cmd/vlctrace: per-stage latency tables (with log2-histogram p50/p95/p99),
// critical paths, retransmit-chain summaries, worst-frame rankings and
// flight-bundle summaries. Extracting the rendering from the command makes
// the output testable against golden files; the command stays a thin
// loader around this package.
//
// All output is deterministic given the snapshot: stages sort by name,
// frames by the tree order, and times come from the simulated clock.
package analyze

import (
	"fmt"
	"io"
	"strings"

	"smartvlc/internal/telemetry"
	"smartvlc/internal/telemetry/flight"
	"smartvlc/internal/telemetry/span"
)

// Options parameterizes a report.
type Options struct {
	// Root is the frame-root span name: "frame" for sessions, "chunk" for
	// streams. Empty means "frame".
	Root string
	// Top bounds the slowest/worst-frame and retransmit-chain tables.
	// Zero or negative means 5.
	Top int
}

func (o Options) withDefaults() Options {
	if o.Root == "" {
		o.Root = "frame"
	}
	if o.Top <= 0 {
		o.Top = 5
	}
	return o
}

// StageQuantiles estimates p50/p95/p99 span duration per stage name by
// pushing the durations through the telemetry log2 histogram — the same
// estimator the link-health engine uses for ACK latency, so a trace
// post-mortem and a health dashboard quote comparable numbers. Keys match
// StageBreakdown names.
func StageQuantiles(spans []span.Span) map[string]Quantiles {
	hists := map[string]*telemetry.Histogram{}
	reg := telemetry.New()
	for _, s := range spans {
		h, ok := hists[s.Name]
		if !ok {
			h = reg.Histogram("analyze_stage", "stage", s.Name)
			hists[s.Name] = h
		}
		h.Observe(s.Duration())
	}
	out := make(map[string]Quantiles, len(hists))
	for name, h := range hists {
		out[name] = Quantiles{
			P50: h.Quantile(0.50),
			P95: h.Quantile(0.95),
			P99: h.Quantile(0.99),
		}
	}
	return out
}

// Quantiles holds the three report percentiles, in seconds.
type Quantiles struct {
	P50, P95, P99 float64
}

// Report writes the standard analysis of one span snapshot.
func Report(w io.Writer, snap *span.Snapshot, opt Options) {
	opt = opt.withDefaults()
	fmt.Fprintf(w, "spans: %d buffered, %d total, %d dropped\n\n", len(snap.Spans), snap.Total, snap.Dropped)

	quant := StageQuantiles(snap.Spans)
	fmt.Fprintln(w, "per-stage latency:")
	fmt.Fprintf(w, "  %-16s %8s %12s %12s %10s %10s %10s %12s %7s\n",
		"stage", "count", "total", "mean", "p50", "p95", "p99", "max", "errors")
	for _, st := range span.StageBreakdown(snap.Spans) {
		q := quant[st.Name]
		fmt.Fprintf(w, "  %-16s %8d %12s %12s %10s %10s %10s %12s %7d\n",
			st.Name, st.Count, Dur(st.Total), Dur(st.Mean),
			Dur(q.P50), Dur(q.P95), Dur(q.P99), Dur(st.Max), st.Errors)
	}

	tree := span.NewTree(snap.Spans)
	frames := tree.FrameRoots(opt.Root)
	fmt.Fprintf(w, "\n%s roots: %d\n", opt.Root, len(frames))
	if len(frames) == 0 {
		return
	}

	fmt.Fprintf(w, "\ncritical path of first %s (id %d, seq %d):\n", opt.Root, frames[0].ID, frames[0].Seq)
	for _, s := range tree.CriticalPath(frames[0].ID) {
		fmt.Fprintf(w, "  %-16s %12s  [%s → %s]\n", s.Name, Dur(s.Duration()), Dur(s.Start), Dur(s.End))
	}

	chains := tree.RetxChains(opt.Root)
	fmt.Fprintf(w, "\nretransmit chains: %d\n", len(chains))
	for i, c := range chains {
		if i >= opt.Top {
			fmt.Fprintf(w, "  … %d more\n", len(chains)-opt.Top)
			break
		}
		parts := make([]string, len(c.Roots))
		for j, r := range c.Roots {
			parts[j] = fmt.Sprintf("id %d @ %s", r.ID, Dur(r.Start))
		}
		fmt.Fprintf(w, "  seq %d: %d transmissions (%s)\n", c.Seq, len(c.Roots), strings.Join(parts, " → "))
	}

	fmt.Fprintf(w, "\ntop %d slowest %ss:\n", opt.Top, opt.Root)
	for _, s := range span.TopSlowest(frames, opt.Top) {
		fmt.Fprintf(w, "  id %-6d seq %-6d %12s  %s\n", s.ID, s.Seq, Dur(s.Duration()), attrSummary(s))
	}

	worst := tree.WorstFrames(opt.Root, opt.Top)
	if len(worst) > 0 {
		fmt.Fprintf(w, "\nworst %ss (decode failures in subtree):\n", opt.Root)
		for _, s := range worst {
			fmt.Fprintf(w, "  id %-6d seq %-6d %12s  %s\n", s.ID, s.Seq, Dur(s.Duration()), attrSummary(s))
		}
	}
}

// ReportBundle writes a flight bundle's trigger metadata and capture ring.
// It does not replay the captures — callers that want the replay verdict
// run Bundle.Replay themselves and pass the outcome to ReportReplay, which
// keeps this function free of PHY work (and testable without samples).
func ReportBundle(w io.Writer, dir string, b *flight.Bundle) {
	m := b.Meta
	fmt.Fprintf(w, "bundle: %s\n", dir)
	fmt.Fprintf(w, "trigger: %s (class %q) at seq %d, t=%s\n", m.Reason, m.Class, m.Seq, Dur(m.At))
	fmt.Fprintf(w, "link: scheme %s, level %g, threshold %d, seed %d, payload %dB, tslot %s\n",
		m.Scheme, m.Level, m.Threshold, m.Seed, m.PayloadBytes, Dur(m.TSlotSeconds))
	fmt.Fprintf(w, "captures: %d frames ringed\n", len(b.Captures))
	for _, c := range b.Captures {
		fmt.Fprintf(w, "  seq %-6d rx %d  t=%-12s level %-8g thr %-5d %6d slots %7d samples\n",
			c.Seq, c.Rx, Dur(c.Start), c.Level, c.Threshold, len(c.Slots), len(c.Samples))
	}
}

// ReportReplay writes the replay verdict line: the decode class the
// captured samples reproduced against the class recorded at trigger time.
func ReportReplay(w io.Writer, class, recorded string) {
	verdict := "MISMATCH"
	if class == recorded {
		verdict = "match"
	}
	fmt.Fprintf(w, "\nreplay of triggering frame: class %q (recorded %q) — %s\n", class, recorded, verdict)
}

// Dur renders seconds with a sensible unit for link-scale times.
func Dur(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-3 && s > -1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1 && s > -1:
		return fmt.Sprintf("%.3fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

// attrSummary renders a span's attributes compactly.
func attrSummary(s span.Span) string {
	if len(s.Attrs) == 0 {
		return ""
	}
	parts := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		parts[i] = a.Key + "=" + a.Value
	}
	return strings.Join(parts, " ")
}
