package analyze

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smartvlc/internal/telemetry/flight"
	"smartvlc/internal/telemetry/span"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureSnapshot builds a small deterministic span forest: three frame
// transmissions (the last two a retransmit chain of seq 7), each with
// tx/hunt/decode children, one decode failure.
func fixtureSnapshot() *span.Snapshot {
	ms := 1e-3
	spans := []span.Span{
		{ID: 1, Name: "frame", Seq: 3, Start: 0, End: 10 * ms},
		{ID: 2, Parent: 1, Name: "phy/tx", Seq: 3, Start: 0, End: 9 * ms},
		{ID: 3, Parent: 1, Name: "rx/hunt", Seq: 3, Start: 9 * ms, End: 9.2 * ms},
		{ID: 4, Parent: 1, Name: "rx/decode", Seq: 3, Start: 9.2 * ms, End: 10 * ms,
			Attrs: []span.Attr{{Key: "class", Value: "ok"}}},

		{ID: 5, Name: "frame", Seq: 7, Start: 10 * ms, End: 21 * ms},
		{ID: 6, Parent: 5, Name: "phy/tx", Seq: 7, Start: 10 * ms, End: 19 * ms},
		{ID: 7, Parent: 5, Name: "rx/hunt", Seq: 7, Start: 19 * ms, End: 19.4 * ms},
		{ID: 8, Parent: 5, Name: "rx/decode", Seq: 7, Start: 19.4 * ms, End: 21 * ms,
			Attrs: []span.Attr{{Key: "class", Value: "crc"}}},

		{ID: 9, Parent: 5, Name: "frame", Seq: 7, Start: 30 * ms, End: 40 * ms,
			Attrs: []span.Attr{{Key: "retx", Value: "1"}}},
		{ID: 10, Parent: 9, Name: "phy/tx", Seq: 7, Start: 30 * ms, End: 39 * ms},
		{ID: 11, Parent: 9, Name: "rx/hunt", Seq: 7, Start: 39 * ms, End: 39.1 * ms},
		{ID: 12, Parent: 9, Name: "rx/decode", Seq: 7, Start: 39.1 * ms, End: 40 * ms,
			Attrs: []span.Attr{{Key: "class", Value: "ok"}}},
	}
	return &span.Snapshot{Spans: spans, Total: int64(len(spans))}
}

func fixtureBundle() *flight.Bundle {
	return &flight.Bundle{
		Meta: flight.Meta{
			Reason: "slo_loss", Class: "crc", Seq: 7, At: 0.021,
			Seed: 42, Scheme: "amppm", Level: 0.5, Threshold: 61,
			TSlotSeconds: 8e-6, PayloadBytes: 128,
		},
		Captures: []flight.Capture{
			{Seq: 3, Rx: 0, Start: 0, Level: 0.5, Threshold: 61,
				Slots: make([]bool, 1200), Samples: make([]int, 9600)},
			{Seq: 7, Rx: 0, Start: 0.010, Level: 0.5, Threshold: 61,
				Slots: make([]bool, 1200), Samples: make([]int, 9600)},
		},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestReportGolden(t *testing.T) {
	var buf bytes.Buffer
	Report(&buf, fixtureSnapshot(), Options{})
	checkGolden(t, "report.golden", buf.Bytes())
}

func TestReportEmptyRootsGolden(t *testing.T) {
	var buf bytes.Buffer
	Report(&buf, fixtureSnapshot(), Options{Root: "chunk"})
	checkGolden(t, "report_chunk.golden", buf.Bytes())
}

func TestReportBundleGolden(t *testing.T) {
	var buf bytes.Buffer
	b := fixtureBundle()
	ReportBundle(&buf, "bundles/bundle-000", b)
	ReportReplay(&buf, "crc", b.Meta.Class)
	checkGolden(t, "bundle.golden", buf.Bytes())
}

func TestReportReplayMismatch(t *testing.T) {
	var buf bytes.Buffer
	ReportReplay(&buf, "ok", "crc")
	if !strings.Contains(buf.String(), "MISMATCH") {
		t.Fatalf("mismatch not flagged: %q", buf.String())
	}
}

func TestStageQuantilesOrdering(t *testing.T) {
	q := StageQuantiles(fixtureSnapshot().Spans)
	for _, name := range []string{"frame", "phy/tx", "rx/hunt", "rx/decode"} {
		v, ok := q[name]
		if !ok {
			t.Fatalf("no quantiles for %s", name)
		}
		if !(v.P50 <= v.P95 && v.P95 <= v.P99) {
			t.Fatalf("%s quantiles not monotone: %+v", name, v)
		}
		if v.P50 <= 0 || math.IsInf(v.P99, 0) {
			t.Fatalf("%s quantiles out of range: %+v", name, v)
		}
	}
	// All three frames last ~10-11 ms: the log2 estimate must land in the
	// right bucket neighborhood, not off by an order of magnitude.
	if f := q["frame"]; f.P50 < 5e-3 || f.P50 > 20e-3 {
		t.Fatalf("frame p50 %v outside [5ms, 20ms]", f.P50)
	}
}

func TestDur(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		8e-6:    "8.0µs",
		9.91e-3: "9.910ms",
		2.5:     "2.500s",
	}
	for in, want := range cases {
		if got := Dur(in); got != want {
			t.Errorf("Dur(%v) = %q, want %q", in, got, want)
		}
	}
}
