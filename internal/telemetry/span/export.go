package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Snapshot is a point-in-time copy of a collector: the buffered spans
// oldest-first plus volume accounting. Span order and IDs are record
// order and every timestamp is simulation time, so snapshots of
// identically seeded sessions marshal to byte-identical JSON.
type Snapshot struct {
	Spans   []Span `json:"spans"`
	Total   int64  `json:"total"`
	Dropped int64  `json:"dropped"`
}

// Snapshot captures the collector's current state. Returns an empty
// snapshot on a nil collector.
func (c *Collector) Snapshot() *Snapshot {
	s := &Snapshot{Spans: []Span{}}
	if c == nil {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.buf) < c.cap || c.next == 0 {
		s.Spans = append(s.Spans, c.buf...)
	} else {
		s.Spans = append(s.Spans, c.buf[c.next:]...)
		s.Spans = append(s.Spans, c.buf[:c.next]...)
	}
	s.Total = c.total
	s.Dropped = c.dropped
	return s
}

// JSON marshals the snapshot as canonical indented JSON: fixed field
// order, spans in record order — the byte-identical export the
// determinism tests pin.
func (s *Snapshot) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// traceFloat formats a float for the Chrome trace export: shortest form
// that round-trips, deterministic across runs.
func traceFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteChromeTrace writes the snapshot in the Chrome trace_event JSON
// format ("X" complete events, microsecond timestamps), loadable in
// Perfetto or chrome://tracing. Span identity, parent links, sequence
// numbers and attributes ride in each event's args, so ReadChromeTrace
// can reconstruct the span list from the file. The output is rendered
// field by field in span order and is byte-identical for identical
// snapshots.
func (s *Snapshot) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, sp := range s.Spans {
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		name, err := json.Marshal(sp.Name)
		if err != nil {
			return err
		}
		// Track (tid) selection: the receiver shard when the span carries
		// one, so multi-receiver sessions render one lane per receiver.
		tid := 0
		if rx, ok := sp.Attr("rx"); ok {
			if n, err := strconv.Atoi(rx); err == nil && n >= 0 {
				tid = n
			}
		}
		fmt.Fprintf(bw, `{"name":%s,"cat":"smartvlc","ph":"X","ts":%s,"dur":%s,"pid":1,"tid":%d,"args":{"id":%d,"parent":%d,"seq":%d`,
			name, traceFloat(sp.Start*1e6), traceFloat(sp.Duration()*1e6), tid, sp.ID, sp.Parent, sp.Seq)
		for _, a := range sp.Attrs {
			k, err := json.Marshal("a_" + a.Key)
			if err != nil {
				return err
			}
			v, err := json.Marshal(a.Value)
			if err != nil {
				return err
			}
			fmt.Fprintf(bw, ",%s:%s", k, v)
		}
		if _, err := bw.WriteString("}}"); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// chromeEvent is the subset of the trace_event schema the reader needs.
type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur"`
	Args map[string]interface{} `json:"args"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// MaxTraceEvents bounds how many events ReadChromeTrace accepts, so a
// corrupt or hostile file cannot exhaust memory downstream.
const MaxTraceEvents = 1 << 20

// ReadChromeTrace parses a Chrome trace_event JSON file produced by
// WriteChromeTrace (or any trace with "X" events) back into a span
// snapshot. Events without span args still round into spans — their
// IDs are synthesized from position — so foreign traces can be analyzed
// too. Attribute order is canonicalized by key.
func ReadChromeTrace(r io.Reader) (*Snapshot, error) {
	dec := json.NewDecoder(io.LimitReader(r, 1<<28))
	var f chromeFile
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("span: parse chrome trace: %w", err)
	}
	if len(f.TraceEvents) > MaxTraceEvents {
		return nil, fmt.Errorf("span: trace has %d events, limit %d", len(f.TraceEvents), MaxTraceEvents)
	}
	snap := &Snapshot{Spans: []Span{}}
	for i, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		sp := Span{
			ID:    ID(i + 1),
			Seq:   -1,
			Name:  ev.Name,
			Start: ev.Ts / 1e6,
			End:   (ev.Ts + ev.Dur) / 1e6,
		}
		keys := make([]string, 0, len(ev.Args))
		for k := range ev.Args {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v := ev.Args[k]
			switch k {
			case "id":
				if n, ok := v.(float64); ok {
					sp.ID = ID(n)
				}
			case "parent":
				if n, ok := v.(float64); ok {
					sp.Parent = ID(n)
				}
			case "seq":
				if n, ok := v.(float64); ok {
					sp.Seq = int64(n)
				}
			default:
				if len(k) > 2 && k[:2] == "a_" {
					if s, ok := v.(string); ok {
						sp.Attrs = append(sp.Attrs, Attr{Key: k[2:], Value: s})
					}
				}
			}
		}
		snap.Spans = append(snap.Spans, sp)
	}
	snap.Total = int64(len(snap.Spans))
	return snap, nil
}
