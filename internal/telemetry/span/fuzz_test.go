package span

import (
	"bytes"
	"testing"
)

// FuzzReadTrace hammers the Chrome-trace parser with arbitrary bytes: it
// must never panic, and whatever it accepts must re-export cleanly. The
// seed corpus includes a real WriteChromeTrace export so mutations
// explore the accepted grammar, not just the JSON error path.
func FuzzReadTrace(f *testing.F) {
	var valid bytes.Buffer
	if err := sampleSnapshot().WriteChromeTrace(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(`{"traceEvents":[]}`))
	f.Add([]byte(`{"traceEvents":[{"ph":"X","name":"frame","ts":1,"dur":2,"args":{"id":1,"seq":-3,"a_k":"v"}}]}`))
	f.Add([]byte(`{"traceEvents":[{"ph":"M"}],"displayTimeUnit":"ms"`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := ReadChromeTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		if snap == nil {
			t.Fatal("nil snapshot without error")
		}
		if snap.Total != int64(len(snap.Spans)) {
			t.Fatalf("total %d != %d spans", snap.Total, len(snap.Spans))
		}
		// Anything accepted must survive re-export and re-parse.
		var out bytes.Buffer
		if err := snap.WriteChromeTrace(&out); err != nil {
			t.Fatalf("re-export failed: %v", err)
		}
		if _, err := ReadChromeTrace(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
	})
}
