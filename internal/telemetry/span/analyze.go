package span

import "sort"

// StageStat aggregates all spans of one stage name.
type StageStat struct {
	// Name is the stage (span name).
	Name string
	// Count is how many spans carried the name.
	Count int
	// Total, Mean and Max summarize the span durations in seconds.
	Total, Mean, Max float64
	// Errors counts spans whose "class" attribute is set and not "ok"
	// (decode failures).
	Errors int
}

// StageBreakdown aggregates spans per stage name, sorted by name — the
// per-stage latency table a trace post-mortem starts from.
func StageBreakdown(spans []Span) []StageStat {
	byName := map[string]*StageStat{}
	for _, s := range spans {
		st, ok := byName[s.Name]
		if !ok {
			st = &StageStat{Name: s.Name}
			byName[s.Name] = st
		}
		d := s.Duration()
		st.Count++
		st.Total += d
		if d > st.Max {
			st.Max = d
		}
		if class, ok := s.Attr("class"); ok && class != "ok" {
			st.Errors++
		}
	}
	out := make([]StageStat, 0, len(byName))
	for _, st := range byName {
		st.Mean = st.Total / float64(st.Count)
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Tree indexes a span list for structural queries.
type Tree struct {
	byID     map[ID]Span
	children map[ID][]ID // record order
	roots    []ID        // spans whose parent is absent or another root's chain head
}

// NewTree indexes spans. A span whose Parent is 0 — or points at a span
// missing from the list (dropped from the ring) — is a root.
func NewTree(spans []Span) *Tree {
	t := &Tree{byID: make(map[ID]Span, len(spans)), children: map[ID][]ID{}}
	for _, s := range spans {
		t.byID[s.ID] = s
	}
	for _, s := range spans {
		if _, ok := t.byID[s.Parent]; s.Parent != 0 && ok {
			t.children[s.Parent] = append(t.children[s.Parent], s.ID)
		} else {
			t.roots = append(t.roots, s.ID)
		}
	}
	return t
}

// Span returns the indexed span by ID.
func (t *Tree) Span(id ID) (Span, bool) {
	s, ok := t.byID[id]
	return s, ok
}

// Children returns the direct children of a span in record order.
func (t *Tree) Children(id ID) []ID { return t.children[id] }

// Roots returns the root span IDs in record order.
func (t *Tree) Roots() []ID { return t.roots }

// FrameRoots returns the roots with the given name ("frame" in link
// sessions, "chunk" in streams) in record order — one per transmission.
func (t *Tree) FrameRoots(name string) []Span {
	var out []Span
	for _, id := range t.roots {
		if s := t.byID[id]; s.Name == name {
			out = append(out, s)
		}
	}
	// Retransmission roots parent onto the prior transmission's root, so
	// they are not in t.roots; collect them too.
	for _, s := range t.byID {
		if s.Name != name || s.Parent == 0 {
			continue
		}
		if p, ok := t.byID[s.Parent]; ok && p.Name == name {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CriticalPath returns the chain of spans from root to leaf that
// maximizes summed duration — the stages that bound the frame's
// end-to-end latency. Same-named chained roots (retransmissions) are not
// descended into, so the path stays within one transmission.
func (t *Tree) CriticalPath(root ID) []Span {
	s, ok := t.byID[root]
	if !ok {
		return nil
	}
	best := []Span{s}
	bestDur := -1.0
	for _, cid := range t.children[root] {
		c := t.byID[cid]
		if c.Name == s.Name {
			continue // retransmit chain link, not a stage
		}
		sub := t.CriticalPath(cid)
		d := 0.0
		for _, ss := range sub {
			d += ss.Duration()
		}
		if d > bestDur {
			bestDur = d
			best = append([]Span{s}, sub...)
		}
	}
	return best
}

// Chain is one retransmit chain: the transmissions of one sequence
// number, oldest first, linked parent→child through their root spans.
type Chain struct {
	Seq   int64
	Roots []Span
}

// RetxChains groups same-named roots into retransmit chains and returns
// only chains with more than one transmission, longest first (ties by
// sequence). rootName is the frame-root span name ("frame" or "chunk").
func (t *Tree) RetxChains(rootName string) []Chain {
	frames := t.FrameRoots(rootName) // sorted by ID
	isRetx := map[ID]bool{}          // frame roots that continue a chain
	for _, s := range frames {
		if p, ok := t.byID[s.Parent]; ok && p.Name == rootName {
			isRetx[s.ID] = true
		}
	}
	var chains []Chain
	for _, s := range frames {
		if isRetx[s.ID] {
			continue // not a chain head
		}
		chain := Chain{Seq: s.Seq, Roots: []Span{s}}
		cur := s.ID
		for {
			next := ID(0)
			for _, cid := range t.children[cur] {
				if c := t.byID[cid]; c.Name == rootName {
					next = cid
					break
				}
			}
			if next == 0 {
				break
			}
			chain.Roots = append(chain.Roots, t.byID[next])
			cur = next
		}
		if len(chain.Roots) > 1 {
			chains = append(chains, chain)
		}
	}
	sort.Slice(chains, func(i, j int) bool {
		if len(chains[i].Roots) != len(chains[j].Roots) {
			return len(chains[i].Roots) > len(chains[j].Roots)
		}
		return chains[i].Seq < chains[j].Seq
	})
	return chains
}

// TopSlowest returns the k longest-duration roots, slowest first (ties
// by ID, keeping the order deterministic).
func TopSlowest(roots []Span, k int) []Span {
	out := append([]Span(nil), roots...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Duration() != out[j].Duration() {
			return out[i].Duration() > out[j].Duration()
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// WorstFrames returns the k roots whose subtrees contain the most decode
// failures (spans with a non-"ok" "class" attribute), worst first; roots
// with no failures are excluded.
func (t *Tree) WorstFrames(rootName string, k int) []Span {
	type scored struct {
		s    Span
		errs int
	}
	var all []scored
	for _, root := range t.FrameRoots(rootName) {
		errs := 0
		var walk func(id ID)
		walk = func(id ID) {
			s := t.byID[id]
			if class, ok := s.Attr("class"); ok && class != "ok" {
				errs++
			}
			for _, cid := range t.children[id] {
				if c := t.byID[cid]; c.Name != rootName {
					walk(cid)
				}
			}
		}
		walk(root.ID)
		if errs > 0 {
			all = append(all, scored{root, errs})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].errs != all[j].errs {
			return all[i].errs > all[j].errs
		}
		return all[i].s.ID < all[j].s.ID
	})
	out := make([]Span, 0, k)
	for i := 0; i < len(all) && i < k; i++ {
		out = append(out, all[i].s)
	}
	return out
}
