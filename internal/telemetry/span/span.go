// Package span records per-frame causal spans: the stages one frame
// passes through on its way across the link (frame/build → frame/tx →
// frame/channel → phy/hunt → phy/decode → mac/ack | mac/retx), as a tree
// whose root is the frame's on-air interval and whose retransmissions are
// linked parent→child across roots. Spans carry attributes (dimming
// level, scheme, slot window, decode error class) so a throughput dip can
// be reconstructed frame by frame after the fact — the post-mortem
// evidence the flat event ring cannot provide.
//
// The package follows the two rules of the telemetry layer it extends:
//
//   - Determinism. All timestamps are simulation time; span IDs are
//     assigned in record order. Two identically seeded sessions produce
//     byte-identical snapshots and Chrome-trace exports — including
//     multi-receiver sessions on any worker count, because per-shard
//     spans are buffered (Buffer) and replayed in shard order (Splice).
//
//   - Nil is the no-op default. Every method on a nil *Collector or nil
//     *Buffer does nothing, so hot paths carry a span handle
//     unconditionally and pay one nil check when spans are off.
package span

import "sync"

// ID identifies a recorded span. 0 means "no span" (the nil-collector
// result and the zero Parent). Collector IDs are positive, assigned in
// record order; Buffer-local IDs are negative until spliced.
type ID int64

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one pipeline stage of one frame. Start and End are
// deterministic simulation time in seconds; a point-in-time marker has
// Start == End.
type Span struct {
	// ID is the collector-assigned identity (record order).
	ID ID `json:"id"`
	// Parent links the span into its frame's tree; for a retransmitted
	// frame's root span, Parent is the previous transmission's root,
	// chaining the retransmit history parent→child.
	Parent ID `json:"parent,omitempty"`
	// Seq is the frame or chunk sequence the span belongs to (-1 when the
	// emitter cannot attribute it, e.g. a noise decode).
	Seq int64 `json:"seq"`
	// Name is the stage name, e.g. "frame", "frame/tx", "phy/decode".
	Name string `json:"name"`
	// Start and End bound the stage in simulation seconds.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Attrs are optional annotations (sorted only if the emitter sorts
	// them; emit in a fixed order for determinism).
	Attrs []Attr `json:"attrs,omitempty"`
}

// Duration returns End - Start.
func (s Span) Duration() float64 { return s.End - s.Start }

// Attr returns the value of the named attribute and whether it exists.
func (s Span) Attr(key string) (string, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// DefaultCapacity bounds the span ring until SetCapacity overrides it.
// Once full, the oldest spans are dropped (and counted): long sessions
// keep the tail of the story, which is the part post-mortems need.
const DefaultCapacity = 1 << 14

// Collector accumulates spans in a bounded ring. The zero value is not
// usable; call NewCollector. A nil *Collector is the no-op default.
type Collector struct {
	mu      sync.Mutex
	buf     []Span
	next    int // ring write position once full
	cap     int
	nextID  ID
	total   int64
	dropped int64
}

// NewCollector returns an empty collector with the default capacity.
func NewCollector() *Collector {
	return &Collector{cap: DefaultCapacity}
}

// SetCapacity resizes the span ring, discarding spans already recorded;
// call it before the session starts. Zero or negative restores the
// default capacity.
func (c *Collector) SetCapacity(n int) {
	if c == nil {
		return
	}
	if n <= 0 {
		n = DefaultCapacity
	}
	c.mu.Lock()
	c.buf = nil
	c.cap = n
	c.next = 0
	c.nextID = 0
	c.total = 0
	c.dropped = 0
	c.mu.Unlock()
}

// Record assigns the next ID to s and stores it. The caller fills every
// field except ID; pass complete spans (Start and End both known) — the
// simulation computes stage boundaries synchronously, so there is no
// open-span bookkeeping to get wrong. Returns 0 on a nil collector.
func (c *Collector) Record(s Span) ID {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	id := c.record(s)
	c.mu.Unlock()
	return id
}

// record is Record without the lock; callers hold c.mu.
func (c *Collector) record(s Span) ID {
	if c.cap == 0 {
		c.cap = DefaultCapacity
	}
	c.nextID++
	s.ID = c.nextID
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, s)
	} else {
		c.buf[c.next] = s
		c.dropped++
	}
	c.next = (c.next + 1) % c.cap
	c.total++
	return s.ID
}

// Buffer accumulates spans on one shard (e.g. one receiver of a parallel
// broadcast fan-out) without touching the collector, so concurrent shards
// never contend or interleave. Spans recorded into a Buffer get local
// negative IDs; Collector.Splice later replays them in order, remapping
// the IDs — replaying the buffers in shard order reproduces the exact
// span sequence of a serial run, which is what keeps traces byte-
// identical for any worker count. A nil *Buffer is a no-op. A Buffer is
// single-goroutine; give each shard its own.
type Buffer struct {
	spans []Span
}

// Reset empties the buffer, retaining its storage.
func (b *Buffer) Reset() {
	if b != nil {
		b.spans = b.spans[:0]
	}
}

// Len returns the number of buffered spans.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	return len(b.spans)
}

// Spans returns a read-only view of the buffered spans, valid until the
// next Record or Reset.
func (b *Buffer) Spans() []Span {
	if b == nil {
		return nil
	}
	return b.spans
}

// Record stores a span under a buffer-local negative ID and returns it;
// Parent may reference an earlier local ID (negative), a collector ID
// (positive), or 0 to mean "attach to the splice parent".
func (b *Buffer) Record(s Span) ID {
	if b == nil {
		return 0
	}
	id := ID(-(len(b.spans) + 1))
	s.ID = id
	b.spans = append(b.spans, s)
	return id
}

// Splice replays a buffer's spans into the collector in record order:
// local (negative) IDs and parents are remapped to fresh collector IDs,
// a zero Parent becomes parent, a negative Seq becomes seq, and extra
// attributes are appended to every span (e.g. the receiver index of the
// shard). The buffer is reset afterwards. No-op on a nil collector.
func (c *Collector) Splice(b *Buffer, parent ID, seq int64, extra ...Attr) {
	if c == nil || b == nil {
		b.Reset()
		return
	}
	c.mu.Lock()
	idmap := make(map[ID]ID, len(b.spans))
	for _, s := range b.spans {
		local := s.ID
		if s.Parent == 0 {
			s.Parent = parent
		} else if s.Parent < 0 {
			s.Parent = idmap[s.Parent] // unmapped local parent → 0 (root)
		}
		if s.Seq < 0 {
			s.Seq = seq
		}
		if len(extra) > 0 {
			s.Attrs = append(append([]Attr{}, s.Attrs...), extra...)
		}
		idmap[local] = c.record(s)
	}
	c.mu.Unlock()
	b.Reset()
}
