package span

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestNilNoOp pins the package's nil contract: every method on a nil
// collector or buffer is a safe no-op, so hot paths can carry span
// handles unconditionally.
func TestNilNoOp(t *testing.T) {
	var c *Collector
	if id := c.Record(Span{Name: "x"}); id != 0 {
		t.Fatalf("nil collector Record returned %d, want 0", id)
	}
	c.SetCapacity(8)
	snap := c.Snapshot()
	if len(snap.Spans) != 0 || snap.Total != 0 || snap.Dropped != 0 {
		t.Fatalf("nil collector snapshot not empty: %+v", snap)
	}
	var b *Buffer
	if id := b.Record(Span{Name: "y"}); id != 0 {
		t.Fatalf("nil buffer Record returned %d, want 0", id)
	}
	b.Reset()
	if b.Len() != 0 || b.Spans() != nil {
		t.Fatal("nil buffer not empty")
	}
	c.Splice(b, 0, 0) // must not panic
	var buf Buffer
	buf.Record(Span{Name: "z"})
	c.Splice(&buf, 0, 0) // nil collector still resets the buffer
	if buf.Len() != 0 {
		t.Fatal("splice into nil collector did not reset buffer")
	}
}

// TestRingAccounting pins the bounded-ring semantics: oldest spans drop
// once the capacity is reached, and Total/Dropped keep the full count.
func TestRingAccounting(t *testing.T) {
	c := NewCollector()
	c.SetCapacity(4)
	for i := 0; i < 6; i++ {
		c.Record(Span{Name: "s", Seq: int64(i)})
	}
	snap := c.Snapshot()
	if snap.Total != 6 || snap.Dropped != 2 {
		t.Fatalf("total %d dropped %d, want 6 and 2", snap.Total, snap.Dropped)
	}
	if len(snap.Spans) != 4 {
		t.Fatalf("snapshot holds %d spans, want 4", len(snap.Spans))
	}
	for i, s := range snap.Spans {
		if want := ID(i + 3); s.ID != want {
			t.Fatalf("span %d has ID %d, want %d (oldest-first unwind)", i, s.ID, want)
		}
	}
}

// TestSpliceRemap pins the shard-replay contract: buffer-local negative
// IDs and parents are remapped to fresh collector IDs in record order,
// zero parents attach to the splice parent, negative sequences take the
// splice sequence, and extra attributes land on every span.
func TestSpliceRemap(t *testing.T) {
	c := NewCollector()
	root := c.Record(Span{Name: "frame", Seq: 7})

	var b Buffer
	hunt := b.Record(Span{Name: "phy/hunt", Seq: -1})
	b.Record(Span{Name: "phy/decode", Seq: -1, Parent: hunt})
	b.Record(Span{Name: "mac/note", Seq: 3, Parent: root})
	if hunt != -1 || b.Len() != 3 {
		t.Fatalf("buffer IDs not local-negative: hunt=%d len=%d", hunt, b.Len())
	}

	c.Splice(&b, root, 7, Attr{Key: "rx", Value: "2"})
	if b.Len() != 0 {
		t.Fatal("splice did not reset buffer")
	}
	snap := c.Snapshot()
	if len(snap.Spans) != 4 {
		t.Fatalf("collector holds %d spans, want 4", len(snap.Spans))
	}
	got := snap.Spans[1:]
	if got[0].ID != 2 || got[0].Parent != root || got[0].Seq != 7 {
		t.Fatalf("hunt remap wrong: %+v", got[0])
	}
	if got[1].Parent != got[0].ID {
		t.Fatalf("decode parent %d, want remapped hunt %d", got[1].Parent, got[0].ID)
	}
	if got[2].Parent != root || got[2].Seq != 3 {
		t.Fatalf("positive parent/seq must pass through: %+v", got[2])
	}
	for i, s := range got {
		if v, ok := s.Attr("rx"); !ok || v != "2" {
			t.Fatalf("span %d missing extra attr rx=2: %+v", i, s)
		}
	}
}

// sampleSnapshot builds a deterministic snapshot with a retransmit chain
// and a decode failure, shared by the export and analysis tests. Attrs
// are emitted in sorted key order so the Chrome round-trip (which
// canonicalizes by key) is an exact identity.
func sampleSnapshot() *Snapshot {
	c := NewCollector()
	f1 := c.Record(Span{Name: "frame", Seq: 1, Start: 0, End: 0.010,
		Attrs: []Attr{{Key: "level", Value: "0.5"}, {Key: "scheme", Value: "AMPPM"}}})
	c.Record(Span{Name: "frame/tx", Seq: 1, Parent: f1, Start: 0, End: 0.010})
	c.Record(Span{Name: "phy/decode", Seq: 1, Parent: f1, Start: 0.002, End: 0.009,
		Attrs: []Attr{{Key: "class", Value: "crc"}}})
	f2 := c.Record(Span{Name: "frame", Seq: 1, Parent: f1, Start: 0.012, End: 0.020,
		Attrs: []Attr{{Key: "level", Value: "0.5"}, {Key: "scheme", Value: "AMPPM"}}})
	c.Record(Span{Name: "frame/tx", Seq: 1, Parent: f2, Start: 0.012, End: 0.020})
	c.Record(Span{Name: "phy/decode", Seq: 1, Parent: f2, Start: 0.014, End: 0.019,
		Attrs: []Attr{{Key: "class", Value: "ok"}}})
	f3 := c.Record(Span{Name: "frame", Seq: 2, Start: 0.022, End: 0.030})
	c.Record(Span{Name: "phy/decode", Seq: 2, Parent: f3, Start: 0.024, End: 0.029,
		Attrs: []Attr{{Key: "class", Value: "ok"}}})
	return c.Snapshot()
}

// TestChromeTraceRoundTrip pins that WriteChromeTrace output parses back
// into the identical span list (IDs, parents, sequences, attributes).
func TestChromeTraceRoundTrip(t *testing.T) {
	snap := sampleSnapshot()
	var buf bytes.Buffer
	if err := snap.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Spans) != len(snap.Spans) {
		t.Fatalf("round-trip kept %d spans, want %d", len(got.Spans), len(snap.Spans))
	}
	for i := range snap.Spans {
		w, g := snap.Spans[i], got.Spans[i]
		if w.ID != g.ID || w.Parent != g.Parent || w.Seq != g.Seq || w.Name != g.Name {
			t.Fatalf("span %d identity changed:\nwrote %+v\nread  %+v", i, w, g)
		}
		if !reflect.DeepEqual(w.Attrs, g.Attrs) {
			t.Fatalf("span %d attrs changed:\nwrote %+v\nread  %+v", i, w.Attrs, g.Attrs)
		}
	}
}

// TestExportDeterminism pins that two identical recordings export
// byte-identical canonical JSON and Chrome traces.
func TestExportDeterminism(t *testing.T) {
	a, b := sampleSnapshot(), sampleSnapshot()
	ja, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatal("identical recordings produced different JSON")
	}
	var ca, cb bytes.Buffer
	if err := a.WriteChromeTrace(&ca); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteChromeTrace(&cb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
		t.Fatal("identical recordings produced different Chrome traces")
	}
	if !strings.Contains(ca.String(), `"ph":"X"`) {
		t.Fatal("trace has no complete events")
	}
}

func TestStageBreakdown(t *testing.T) {
	stats := StageBreakdown(sampleSnapshot().Spans)
	byName := map[string]StageStat{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	fr := byName["frame"]
	if fr.Count != 3 {
		t.Fatalf("frame count %d, want 3", fr.Count)
	}
	dec := byName["phy/decode"]
	if dec.Count != 3 || dec.Errors != 1 {
		t.Fatalf("phy/decode count %d errors %d, want 3 and 1", dec.Count, dec.Errors)
	}
	if dec.Max < dec.Mean || dec.Mean <= 0 {
		t.Fatalf("decode stats inconsistent: %+v", dec)
	}
	for i := 1; i < len(stats); i++ {
		if stats[i-1].Name >= stats[i].Name {
			t.Fatal("breakdown not sorted by stage name")
		}
	}
}

func TestTreeAndCriticalPath(t *testing.T) {
	snap := sampleSnapshot()
	tree := NewTree(snap.Spans)
	frames := tree.FrameRoots("frame")
	if len(frames) != 3 {
		t.Fatalf("found %d frame roots, want 3 (retransmission included)", len(frames))
	}
	path := tree.CriticalPath(frames[0].ID)
	if len(path) != 2 || path[0].Name != "frame" || path[1].Name != "frame/tx" {
		t.Fatalf("critical path wrong: %+v", path)
	}
}

func TestRetxChains(t *testing.T) {
	tree := NewTree(sampleSnapshot().Spans)
	chains := tree.RetxChains("frame")
	if len(chains) != 1 {
		t.Fatalf("found %d chains, want 1", len(chains))
	}
	c := chains[0]
	if c.Seq != 1 || len(c.Roots) != 2 {
		t.Fatalf("chain seq %d with %d roots, want seq 1 with 2", c.Seq, len(c.Roots))
	}
	if c.Roots[0].Start >= c.Roots[1].Start {
		t.Fatal("chain roots not oldest-first")
	}
}

func TestTopSlowestAndWorstFrames(t *testing.T) {
	snap := sampleSnapshot()
	tree := NewTree(snap.Spans)
	frames := tree.FrameRoots("frame")
	top := TopSlowest(frames, 2)
	if len(top) != 2 || top[0].Duration() < top[1].Duration() {
		t.Fatalf("TopSlowest order wrong: %+v", top)
	}
	worst := tree.WorstFrames("frame", 5)
	if len(worst) != 1 || worst[0].Seq != 1 || worst[0].ID != 1 {
		t.Fatalf("WorstFrames wrong (want only the crc-failing first transmission): %+v", worst)
	}
}
