package telemetry

import "math"

// HistogramBucketIndex returns the log2 bucket a value lands in — the
// same mapping Observe uses. Exported so consumers that keep their own
// sparse bucket arrays (the health engine's windowed ACK-latency rings)
// stay on the registry's grid and their counts can be folded back into
// Bucket slices losslessly.
func HistogramBucketIndex(v float64) int { return bucketIndex(v) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation inside the log2 bucket containing
// the target rank. Returns 0 on a nil or empty histogram.
//
// The estimate inherits the grid's resolution: exact for masses at bucket
// bounds, otherwise off by at most the containing bucket's width (a
// factor of two). That is the intended trade — the grid is what makes the
// histogram fixed-size and snapshots byte-identical.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	var bs []Bucket
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			bs = append(bs, Bucket{Index: i, Count: n})
		}
	}
	return QuantileOf(bs, h.count.Load(), q)
}

// Quantile estimates the q-quantile from a snapshot's sparse buckets,
// with the same interpolation as Histogram.Quantile.
func (hs HistogramSnapshot) Quantile(q float64) float64 {
	return QuantileOf(hs.Buckets, hs.Count, q)
}

// QuantileOf is the shared rank-interpolation kernel over sparse log2
// buckets (sorted by Index, as snapshots store them). count is the total
// number of observations; q is clamped to [0, 1]. Returns 0 when there is
// nothing to rank.
//
// The target rank q·count is located in the cumulative bucket counts; the
// result interpolates linearly between the containing bucket's lower and
// upper bound. The last bucket's upper bound is +Inf, so a rank landing
// there returns the bucket's finite lower bound — a deliberate
// under-estimate rather than an unusable infinity.
func QuantileOf(buckets []Bucket, count int64, q float64) float64 {
	if count <= 0 || len(buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := q * float64(count)
	cum := float64(0)
	for _, b := range buckets {
		next := cum + float64(b.Count)
		if next >= target {
			lo := float64(0)
			if b.Index > 0 {
				lo = histBound(b.Index - 1)
			}
			hi := histBound(b.Index)
			if math.IsInf(hi, 1) {
				return lo
			}
			frac := (target - cum) / float64(b.Count)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	// count exceeded the bucket sum (concurrent writers mid-snapshot):
	// fall back to the top of the highest occupied bucket.
	last := buckets[len(buckets)-1]
	if hi := histBound(last.Index); !math.IsInf(hi, 1) {
		return hi
	}
	if last.Index > 0 {
		return histBound(last.Index - 1)
	}
	return 0
}
