package vlog

import (
	"bytes"
	"strings"
	"testing"
)

func TestRecordOrderAndIDs(t *testing.T) {
	l := New(Debug)
	for i := 0; i < 5; i++ {
		l.Record(Record{At: float64(i), Level: Info, Stage: "test", Seq: int64(i)})
	}
	s := l.Snapshot()
	if s.Total != 5 || s.Dropped != 0 || len(s.Records) != 5 {
		t.Fatalf("total=%d dropped=%d len=%d", s.Total, s.Dropped, len(s.Records))
	}
	for i, r := range s.Records {
		if r.ID != int64(i+1) || r.Seq != int64(i) {
			t.Fatalf("record %d: id=%d seq=%d", i, r.ID, r.Seq)
		}
	}
}

func TestRingDropsOldest(t *testing.T) {
	l := New(Debug)
	l.SetCapacity(4)
	for i := 0; i < 10; i++ {
		l.Record(Record{Level: Info, Seq: int64(i)})
	}
	s := l.Snapshot()
	if s.Total != 10 || s.Dropped != 6 {
		t.Fatalf("total=%d dropped=%d", s.Total, s.Dropped)
	}
	if len(s.Records) != 4 {
		t.Fatalf("len=%d", len(s.Records))
	}
	for i, r := range s.Records {
		if r.Seq != int64(6+i) {
			t.Fatalf("record %d: seq=%d, want %d (oldest-first tail)", i, r.Seq, 6+i)
		}
		if r.ID != int64(7+i) {
			t.Fatalf("record %d: id=%d, want %d", i, r.ID, 7+i)
		}
	}
}

func TestLevelFilter(t *testing.T) {
	l := New(Warn)
	if l.Enabled(Info) {
		t.Fatal("Info enabled on a Warn logger")
	}
	if !l.Enabled(Error) {
		t.Fatal("Error disabled on a Warn logger")
	}
	l.Record(Record{Level: Debug})
	l.Record(Record{Level: Warn})
	l.Record(Record{Level: Error})
	if s := l.Snapshot(); s.Total != 2 {
		t.Fatalf("total=%d, want 2", s.Total)
	}
}

func TestNilSafety(t *testing.T) {
	var l *Logger
	if l.Enabled(Error) {
		t.Fatal("nil logger enabled")
	}
	if id := l.Record(Record{Level: Error}); id != 0 {
		t.Fatalf("nil record id=%d", id)
	}
	l.SetCapacity(8)
	var b *Buffer
	if b.Enabled(Error) {
		t.Fatal("nil buffer enabled")
	}
	b.Record(Record{Level: Error})
	b.Reset()
	if b.Len() != 0 || b.Records() != nil {
		t.Fatal("nil buffer not empty")
	}
	l.Splice(b, 1, 2, "rx0") // must not panic
	s := l.Snapshot()
	if len(s.Records) != 0 || s.Total != 0 {
		t.Fatal("nil snapshot not empty")
	}
	if _, err := s.JSON(); err != nil {
		t.Fatal(err)
	}
}

func TestSpliceFillsCorrelationKeys(t *testing.T) {
	l := New(Debug)
	var b Buffer
	b.Arm(l.Min())
	b.Record(Record{At: 1, Level: Warn, Stage: "phy/decode", Seq: -1})
	b.Record(Record{At: 2, Level: Info, Stage: "mac/ack", Seq: 9, Span: 3, Shard: "rx7"})
	l.Splice(&b, 42, 5, "rx1")
	if b.Len() != 0 {
		t.Fatal("buffer not reset after splice")
	}
	s := l.Snapshot()
	if len(s.Records) != 2 {
		t.Fatalf("len=%d", len(s.Records))
	}
	r0, r1 := s.Records[0], s.Records[1]
	if r0.Span != 42 || r0.Seq != 5 || r0.Shard != "rx1" {
		t.Fatalf("defaults not filled: %+v", r0)
	}
	if r1.Span != 3 || r1.Seq != 9 || r1.Shard != "rx7" {
		t.Fatalf("explicit keys overwritten: %+v", r1)
	}
}

func TestBufferLevelFilter(t *testing.T) {
	var b Buffer
	b.Arm(Warn)
	b.Record(Record{Level: Debug})
	b.Record(Record{Level: Error})
	if b.Len() != 1 {
		t.Fatalf("len=%d, want 1", b.Len())
	}
	if b.Enabled(Info) {
		t.Fatal("Info enabled on a Warn buffer")
	}
}

// TestSpliceOrderMatchesSerial pins the worker-invariance contract: a
// shard buffer spliced after direct records reproduces the exact record
// sequence of a serial run that interleaved them in the same order.
func TestSpliceOrderMatchesSerial(t *testing.T) {
	direct := New(Debug)
	direct.Record(Record{At: 1, Level: Info, Stage: "a", Seq: 0})
	direct.Record(Record{At: 2, Level: Info, Stage: "b", Seq: 0, Shard: "rx0"})
	direct.Record(Record{At: 3, Level: Info, Stage: "c", Seq: 0, Shard: "rx1"})

	sharded := New(Debug)
	sharded.Record(Record{At: 1, Level: Info, Stage: "a", Seq: 0})
	var b0, b1 Buffer
	b0.Arm(sharded.Min())
	b1.Arm(sharded.Min())
	// Shards record "concurrently"; splice replays in shard order.
	b1.Record(Record{At: 3, Level: Info, Stage: "c", Seq: -1})
	b0.Record(Record{At: 2, Level: Info, Stage: "b", Seq: -1})
	sharded.Splice(&b0, 0, 0, "rx0")
	sharded.Splice(&b1, 0, 0, "rx1")

	dj, err := direct.Snapshot().NDJSON()
	if err != nil {
		t.Fatal(err)
	}
	sj, err := sharded.Snapshot().NDJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dj, sj) {
		t.Fatalf("serial vs sharded NDJSON differ:\n%s\nvs\n%s", dj, sj)
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	l := New(Debug)
	l.Record(Record{At: 0.25, Level: Warn, Stage: "phy/decode", Msg: "preamble miss", Seq: 3, Span: 7,
		Scheme: "AMPPM", Dim: "0.5", Attrs: []Attr{{Key: "class", Value: "ser"}}})
	l.Record(Record{At: 0.5, Level: Error, Stage: "sim/slo", Msg: "critical", Seq: -1})
	snap := l.Snapshot()
	nd, err := snap.NDJSON()
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(nd, []byte{'\n'}); n != 2 {
		t.Fatalf("%d lines, want 2:\n%s", n, nd)
	}
	back, err := ParseNDJSON(bytes.NewReader(nd))
	if err != nil {
		t.Fatal(err)
	}
	nd2, err := back.NDJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(nd, nd2) {
		t.Fatalf("round trip differs:\n%s\nvs\n%s", nd, nd2)
	}
	if back.Total != 2 {
		t.Fatalf("parsed total=%d", back.Total)
	}
}

func TestParseNDJSONRejectsGarbage(t *testing.T) {
	if _, err := ParseNDJSON(strings.NewReader("{\"id\":1}\nnot json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestTail(t *testing.T) {
	l := New(Debug)
	for i := 0; i < 6; i++ {
		l.Record(Record{Level: Info, Seq: int64(i)})
	}
	s := l.Snapshot()
	tl := s.Tail(2)
	if len(tl.Records) != 2 || tl.Records[0].Seq != 4 || tl.Records[1].Seq != 5 {
		t.Fatalf("tail wrong: %+v", tl.Records)
	}
	if tl.Total != 6 {
		t.Fatalf("tail total=%d, want 6 (accounting carries over)", tl.Total)
	}
	if all := s.Tail(0); len(all.Records) != 6 {
		t.Fatalf("tail(0) len=%d", len(all.Records))
	}
	if all := s.Tail(100); len(all.Records) != 6 {
		t.Fatalf("tail(100) len=%d", len(all.Records))
	}
}

func TestMergeConfigOrder(t *testing.T) {
	a := New(Debug)
	a.Record(Record{At: 5, Level: Info, Stage: "a"})
	b := New(Debug)
	b.Record(Record{At: 1, Level: Info, Stage: "b"})
	b.Record(Record{At: 2, Level: Info, Stage: "b"})
	m := Merge(a.Snapshot(), nil, b.Snapshot())
	if len(m.Records) != 3 || m.Total != 3 {
		t.Fatalf("len=%d total=%d", len(m.Records), m.Total)
	}
	// Config order, not time order: session a's record leads.
	if m.Records[0].Stage != "a" || m.Records[1].Stage != "b" {
		t.Fatalf("merge order wrong: %+v", m.Records)
	}
	for i, r := range m.Records {
		if r.ID != int64(i+1) {
			t.Fatalf("merged id %d at %d", r.ID, i)
		}
	}
	if e := Merge(); len(e.Records) != 0 || e.Total != 0 {
		t.Fatal("empty merge not empty")
	}
}

// TestDisabledZeroAllocs pins the zero-cost-off contract: a nil logger,
// a level-filtered logger behind Enabled, and a nil shard buffer must
// all cost zero allocations per call at the call-site pattern the hot
// paths use.
func TestDisabledZeroAllocs(t *testing.T) {
	var nilLogger *Logger
	if n := testing.AllocsPerRun(100, func() {
		if nilLogger.Enabled(Warn) {
			nilLogger.Record(Record{Level: Warn, Stage: "phy/decode", Msg: "x", Seq: 1})
		}
	}); n != 0 {
		t.Fatalf("nil logger: %v allocs/op", n)
	}
	quiet := New(Error)
	if n := testing.AllocsPerRun(100, func() {
		if quiet.Enabled(Debug) {
			quiet.Record(Record{Level: Debug, Stage: "phy/decode", Msg: "x", Seq: 1})
		}
	}); n != 0 {
		t.Fatalf("level-filtered logger: %v allocs/op", n)
	}
	var nilBuf *Buffer
	if n := testing.AllocsPerRun(100, func() {
		if nilBuf.Enabled(Warn) {
			nilBuf.Record(Record{Level: Warn, Stage: "phy/hunt", Seq: -1})
		}
	}); n != 0 {
		t.Fatalf("nil buffer: %v allocs/op", n)
	}
	var armedBuf Buffer
	armedBuf.Arm(Error)
	if n := testing.AllocsPerRun(100, func() {
		if armedBuf.Enabled(Debug) {
			armedBuf.Record(Record{Level: Debug, Stage: "phy/hunt", Seq: -1})
		}
	}); n != 0 {
		t.Fatalf("level-filtered buffer: %v allocs/op", n)
	}
}

func TestLevelStrings(t *testing.T) {
	for _, lv := range []Level{Debug, Info, Warn, Error} {
		got, ok := ParseLevel(lv.String())
		if !ok || got != lv {
			t.Fatalf("ParseLevel(%q) = %v, %v", lv.String(), got, ok)
		}
	}
	if _, ok := ParseLevel("loud"); ok {
		t.Fatal("ParseLevel accepted garbage")
	}
	if Level(42).String() != "unknown" {
		t.Fatal("out-of-range level string")
	}
}

func TestConsoleFormat(t *testing.T) {
	var buf bytes.Buffer
	c := NewConsole(&buf, Info)
	c.Emit(Record{At: 0.001234, Level: Warn, Stage: "phy/decode", Msg: "preamble miss", Seq: 12,
		Scheme: "AMPPM", Dim: "0.5", Attrs: []Attr{{Key: "class", Value: "ser"}}})
	c.Emit(Record{At: 0, Level: Debug, Stage: "quiet", Seq: -1, Msg: "filtered"})
	c.Emit(Record{At: 2, Level: Error, Stage: "sim/slo", Shard: "rx1", Seq: -1, Msg: "critical"})
	want := "[   0.001234s] WARN  phy/decode seq=12: preamble miss (scheme=AMPPM dim=0.5 class=ser)\n" +
		"[   2.000000s] ERROR sim/slo rx1: critical\n"
	if buf.String() != want {
		t.Fatalf("console output:\n%q\nwant:\n%q", buf.String(), want)
	}
}
