package vlog

import (
	"fmt"
	"io"
	"os"
	"strings"
)

// Console renders records as human-readable, sim-clock-stamped lines —
// the handler the examples dogfood instead of the stdlib log package,
// so example output shares the vocabulary of every other export. It is
// a renderer, not a sink: pair it with a Logger (render its snapshot
// with Dump) or emit directly for one-off program messages.
type Console struct {
	w   io.Writer
	min Level
}

// NewConsole returns a console handler writing records at or above min
// to w. A nil w selects os.Stderr.
func NewConsole(w io.Writer, min Level) *Console {
	if w == nil {
		w = os.Stderr
	}
	return &Console{w: w, min: min}
}

// Emit renders one record as a single line:
//
//	[   0.001234s] WARN  phy/decode seq=12: preamble miss (class=ser)
//
// Records below the console's minimum level are dropped.
func (c *Console) Emit(r Record) {
	if c == nil || r.Level < c.min {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "[%11.6fs] %-5s %s", r.At, strings.ToUpper(r.Level.String()), r.Stage)
	if r.Shard != "" {
		fmt.Fprintf(&b, " %s", r.Shard)
	}
	if r.Seq >= 0 {
		fmt.Fprintf(&b, " seq=%d", r.Seq)
	}
	fmt.Fprintf(&b, ": %s", r.Msg)
	extras := make([]string, 0, len(r.Attrs)+2)
	if r.Scheme != "" {
		extras = append(extras, "scheme="+r.Scheme)
	}
	if r.Dim != "" {
		extras = append(extras, "dim="+r.Dim)
	}
	for _, a := range r.Attrs {
		extras = append(extras, a.Key+"="+a.Value)
	}
	if len(extras) > 0 {
		fmt.Fprintf(&b, " (%s)", strings.Join(extras, " "))
	}
	b.WriteByte('\n')
	io.WriteString(c.w, b.String())
}

// Dump renders every record of a snapshot through Emit, in record
// order. Nil snapshots render nothing.
func (c *Console) Dump(s *Snapshot) {
	if c == nil || s == nil {
		return
	}
	for _, r := range s.Records {
		c.Emit(r)
	}
}

// Errorf emits a one-off Error record at sim time zero — the program-
// lifecycle path (setup failures before any session clock exists).
func (c *Console) Errorf(stage, format string, args ...interface{}) {
	if c == nil {
		return
	}
	c.Emit(Record{Level: Error, Stage: stage, Seq: -1, Msg: fmt.Sprintf(format, args...)})
}

// Fatalf is Errorf followed by os.Exit(1) — the examples' replacement
// for stdlib log.Fatal.
func (c *Console) Fatalf(stage, format string, args ...interface{}) {
	c.Errorf(stage, format, args...)
	os.Exit(1)
}
