// Package vlog is the logging pillar of the telemetry layer: leveled,
// structured records of what the link *decided* — why a decode failed,
// when ARQ gave up on a window, which SLO crossed into critical — each
// carrying the correlation keys (frame sequence, span ID, stage, scheme,
// dimming level, receiver shard) that join a log line against the span
// tree, the histogram exemplars and the stage profile of the same frame.
//
// The package follows the two rules every other pillar obeys:
//
//   - Determinism. All timestamps are simulation time; record IDs are
//     assigned in record order. Two identically seeded sessions produce
//     byte-identical NDJSON snapshots — including multi-receiver
//     sessions on any worker count or GOMAXPROCS, because per-shard
//     records are buffered (Buffer) and replayed in shard order
//     (Splice), the same contract as span.Buffer.
//
//   - Nil is the no-op default. Every method on a nil *Logger or nil
//     *Buffer does nothing, and Enabled reports false on nil, so hot
//     paths guard record construction behind one branch and pay zero
//     allocations when logging is off.
package vlog

import "sync"

// Level orders record severity. The zero value is Debug, so the zero
// Logger min-level keeps everything; raise it to thin the ring.
type Level int

const (
	// Debug records per-frame narration (clean decodes, chunk attempts).
	Debug Level = iota
	// Info records session lifecycle and recoverable decisions.
	Info
	// Warn records degradation: decode errors, retransmits, SLO warnings.
	Warn
	// Error records failures: chunk exhaustion, critical SLO burns.
	Error
)

// String returns the canonical lower-case level name used in exports.
func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	}
	return "unknown"
}

// ParseLevel maps a canonical level name back to its Level.
func ParseLevel(s string) (Level, bool) {
	switch s {
	case "debug":
		return Debug, true
	case "info":
		return Info, true
	case "warn":
		return Warn, true
	case "error":
		return Error, true
	}
	return 0, false
}

// Attr is one key/value annotation on a record, for the cold paths
// (SLO burn context, fleet indices) that don't fit the scalar fields.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Record is one structured log line. At is deterministic simulation
// time in seconds; the scalar fields are the correlation keys shared
// with spans, exemplars and prof stages, so joins need no parsing.
type Record struct {
	// ID is the logger-assigned identity (record order).
	ID int64 `json:"id"`
	// At is the simulation time of the decision, in seconds.
	At float64 `json:"at"`
	// Level is the record severity.
	Level Level `json:"level"`
	// Stage names the pipeline stage that emitted the record, using the
	// span stage vocabulary ("phy/decode", "mac/ack", "sim/slo", ...).
	Stage string `json:"stage"`
	// Msg is the human-readable one-liner.
	Msg string `json:"msg"`
	// Seq is the frame or chunk sequence the record belongs to (-1 when
	// the emitter cannot attribute it; a shard-buffered -1 is filled in
	// by Splice).
	Seq int64 `json:"seq"`
	// Span is the collector ID of the frame's root span (0 = none; a
	// shard-buffered 0 is filled in by Splice once the root is known).
	Span int64 `json:"span,omitempty"`
	// Shard is the receiver shard ("rx0", "rx1", ...) for broadcast
	// records; empty on single-receiver paths (filled in by Splice).
	Shard string `json:"shard,omitempty"`
	// Scheme and Dim carry the modulation scheme and dimming level in
	// force when the record was emitted, when the emitter knows them.
	Scheme string `json:"scheme,omitempty"`
	Dim    string `json:"dim,omitempty"`
	// Attrs are optional annotations; emit in a fixed order for
	// determinism.
	Attrs []Attr `json:"attrs,omitempty"`
}

// Attr returns the value of the named attribute and whether it exists.
func (r Record) Attr(key string) (string, bool) {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// DefaultCapacity bounds the record ring until SetCapacity overrides it.
// Once full, the oldest records are dropped (and counted): long sessions
// keep the tail of the story, which is the part incident drills need.
const DefaultCapacity = 1 << 14

// Logger accumulates records in a bounded ring, keeping only those at or
// above its minimum level. The zero value is not usable; call New. A nil
// *Logger is the no-op default: Enabled reports false and Record does
// nothing, so an unarmed hot path costs one branch and zero allocations.
type Logger struct {
	mu      sync.Mutex
	min     Level
	buf     []Record
	next    int // ring write position once full
	cap     int
	nextID  int64
	total   int64
	dropped int64
}

// New returns an empty logger keeping records at or above min, with the
// default ring capacity.
func New(min Level) *Logger {
	return &Logger{min: min, cap: DefaultCapacity}
}

// Min returns the logger's minimum level (Debug on nil — callers only
// consult it through Enabled or to arm shard buffers, and a nil logger
// arms nothing).
func (l *Logger) Min() Level {
	if l == nil {
		return Debug
	}
	return l.min
}

// Enabled reports whether records at the given level would be kept.
// False on a nil logger — the one branch a disabled call site pays.
func (l *Logger) Enabled(v Level) bool {
	return l != nil && v >= l.min
}

// SetCapacity resizes the record ring, discarding records already
// recorded; call it before the session starts. Zero or negative restores
// the default capacity.
func (l *Logger) SetCapacity(n int) {
	if l == nil {
		return
	}
	if n <= 0 {
		n = DefaultCapacity
	}
	l.mu.Lock()
	l.buf = nil
	l.cap = n
	l.next = 0
	l.nextID = 0
	l.total = 0
	l.dropped = 0
	l.mu.Unlock()
}

// Record assigns the next ID to r and stores it, if r.Level clears the
// minimum. The caller fills every field except ID. Returns 0 on a nil
// logger or a filtered level. Callers should guard record construction
// with Enabled so a filtered call allocates nothing.
func (l *Logger) Record(r Record) int64 {
	if l == nil || r.Level < l.min {
		return 0
	}
	l.mu.Lock()
	id := l.record(r)
	l.mu.Unlock()
	return id
}

// record is Record without the lock or level check; callers hold l.mu.
func (l *Logger) record(r Record) int64 {
	if l.cap == 0 {
		l.cap = DefaultCapacity
	}
	l.nextID++
	r.ID = l.nextID
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, r)
	} else {
		l.buf[l.next] = r
		l.dropped++
	}
	l.next = (l.next + 1) % l.cap
	l.total++
	return r.ID
}

// Buffer accumulates records on one shard (e.g. one receiver of a
// parallel broadcast fan-out) without touching the logger, so concurrent
// shards never contend or interleave. Logger.Splice later replays them
// in shard order, which is what keeps NDJSON snapshots byte-identical
// for any worker count. A Buffer carries its own minimum level (copied
// from the logger when the shard is armed) so shard paths filter at
// record time exactly like direct logger writes. A nil *Buffer is a
// no-op. A Buffer is single-goroutine; give each shard its own.
type Buffer struct {
	min  Level
	recs []Record
}

// Arm sets the buffer's minimum level, mirroring the logger it will be
// spliced into.
func (b *Buffer) Arm(min Level) {
	if b != nil {
		b.min = min
	}
}

// Enabled reports whether records at the given level would be kept.
// False on a nil buffer.
func (b *Buffer) Enabled(v Level) bool {
	return b != nil && v >= b.min
}

// Reset empties the buffer, retaining its storage and minimum level.
func (b *Buffer) Reset() {
	if b != nil {
		b.recs = b.recs[:0]
	}
}

// Len returns the number of buffered records.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	return len(b.recs)
}

// Records returns a read-only view of the buffered records, valid until
// the next Record or Reset.
func (b *Buffer) Records() []Record {
	if b == nil {
		return nil
	}
	return b.recs
}

// Record buffers r if its level clears the buffer's minimum.
func (b *Buffer) Record(r Record) {
	if b == nil || r.Level < b.min {
		return
	}
	b.recs = append(b.recs, r)
}

// Splice replays a buffer's records into the logger in record order,
// filling in the correlation keys the shard could not know: a zero Span
// becomes spanID (the frame's root span), a negative Seq becomes seq,
// and an empty Shard becomes shard. The buffer is reset afterwards —
// also on a nil logger, so an unarmed splice still clears shard state.
// Levels are not re-checked: the buffer filtered at record time against
// the same minimum.
func (l *Logger) Splice(b *Buffer, spanID int64, seq int64, shard string) {
	if l == nil || b == nil {
		b.Reset()
		return
	}
	l.mu.Lock()
	for _, r := range b.recs {
		if r.Span == 0 {
			r.Span = spanID
		}
		if r.Seq < 0 {
			r.Seq = seq
		}
		if r.Shard == "" {
			r.Shard = shard
		}
		l.record(r)
	}
	l.mu.Unlock()
	b.Reset()
}
