package vlog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Snapshot is a point-in-time copy of a logger: the buffered records
// oldest-first plus volume accounting. Record order and IDs are record
// order and every timestamp is simulation time, so snapshots of
// identically seeded sessions marshal to byte-identical JSON and NDJSON.
type Snapshot struct {
	Records []Record `json:"records"`
	Total   int64    `json:"total"`
	Dropped int64    `json:"dropped"`
}

// Snapshot captures the logger's current state. Returns an empty
// snapshot on a nil logger.
func (l *Logger) Snapshot() *Snapshot {
	s := &Snapshot{Records: []Record{}}
	if l == nil {
		return s
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) < l.cap || l.next == 0 {
		s.Records = append(s.Records, l.buf...)
	} else {
		s.Records = append(s.Records, l.buf[l.next:]...)
		s.Records = append(s.Records, l.buf[:l.next]...)
	}
	s.Total = l.total
	s.Dropped = l.dropped
	return s
}

// JSON marshals the snapshot as canonical indented JSON: fixed field
// order, records in record order — the byte-identical export the
// determinism tests pin.
func (s *Snapshot) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteNDJSON writes the records one JSON object per line, in record
// order — the canonical stream form served by /logs/stream and stored
// in flight bundles as logs.ndjson. Field order is the Record struct
// order, so identical snapshots produce byte-identical output.
func (s *Snapshot) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range s.Records {
		b, err := json.Marshal(&s.Records[i])
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// NDJSON returns WriteNDJSON's output as a byte slice.
func (s *Snapshot) NDJSON() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.WriteNDJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// MaxNDJSONRecords bounds how many records ParseNDJSON accepts, so a
// corrupt or hostile file cannot exhaust memory downstream.
const MaxNDJSONRecords = 1 << 20

// ParseNDJSON reads an NDJSON record stream (as written by WriteNDJSON)
// back into a snapshot. Blank lines are skipped; Total is the record
// count (per-ring drop accounting does not survive the stream form).
func ParseNDJSON(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Records: []Record{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if len(snap.Records) >= MaxNDJSONRecords {
			return nil, fmt.Errorf("vlog: stream has more than %d records", MaxNDJSONRecords)
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("vlog: parse ndjson line %d: %w", len(snap.Records)+1, err)
		}
		snap.Records = append(snap.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("vlog: read ndjson: %w", err)
	}
	snap.Total = int64(len(snap.Records))
	return snap, nil
}

// Tail returns a snapshot holding the last n records (all of them when
// n <= 0 or n >= len). Total and Dropped carry over unchanged, so a
// flight-bundle tail still reports how much the session ring saw and
// shed before the trigger.
func (s *Snapshot) Tail(n int) *Snapshot {
	out := &Snapshot{Records: []Record{}, Total: s.Total, Dropped: s.Dropped}
	recs := s.Records
	if n > 0 && n < len(recs) {
		recs = recs[len(recs)-n:]
	}
	out.Records = append(out.Records, recs...)
	return out
}

// Merge folds per-session snapshots into one, concatenating records in
// argument (config) order and reassigning IDs sequentially so the
// merged stream reads like one session's. The elision contract matches
// the other pillars: per-session ring capacity is NOT re-applied — each
// session already shed its own overflow (summed into Dropped) — and the
// session boundary itself is elided, so joins against a specific
// session's spans should use that session's own retained snapshot, not
// the merge. Nil snapshots are skipped; merging nothing returns an
// empty snapshot.
func Merge(snaps ...*Snapshot) *Snapshot {
	out := &Snapshot{Records: []Record{}}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		out.Records = append(out.Records, s.Records...)
		out.Total += s.Total
		out.Dropped += s.Dropped
	}
	for i := range out.Records {
		out.Records[i].ID = int64(i + 1)
	}
	return out
}
