package analyze

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"smartvlc/internal/telemetry"
	"smartvlc/internal/telemetry/span"
	"smartvlc/internal/telemetry/vlog"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureLogs builds a small deterministic log snapshot: a session start,
// two frames (seq 3 clean, seq 7 a crc failure retransmitted), an SLO
// warning and the flight trigger record.
func fixtureLogs() *vlog.Snapshot {
	ms := 1e-3
	recs := []vlog.Record{
		{ID: 1, At: 0, Level: vlog.Info, Stage: "sim/session", Msg: "session start", Seq: -1,
			Scheme: "AMPPM", Dim: "0.5",
			Attrs: []vlog.Attr{{Key: "seed", Value: "42"}, {Key: "window", Value: "8"}}},
		{ID: 2, At: 9.2 * ms, Level: vlog.Debug, Stage: "phy/decode", Msg: "frame decoded",
			Seq: 3, Span: 1, Attrs: []vlog.Attr{{Key: "slots", Value: "1200"}, {Key: "sym_errs", Value: "0"}}},
		{ID: 3, At: 19.4 * ms, Level: vlog.Warn, Stage: "phy/decode", Msg: "frame: crc mismatch",
			Seq: 7, Span: 5, Attrs: []vlog.Attr{{Key: "class", Value: "crc"}}},
		{ID: 4, At: 20 * ms, Level: vlog.Warn, Stage: "sim/slo",
			Msg: "slo frame_loss: ok -> warning", Seq: -1, Scheme: "AMPPM", Dim: "0.5",
			Attrs: []vlog.Attr{{Key: "burn_fast", Value: "14.2"}, {Key: "value", Value: "0.33"}}},
		{ID: 5, At: 21 * ms, Level: vlog.Warn, Stage: "sim/flight",
			Msg: "flight bundle triggered: decode", Seq: 7, Span: 5, Scheme: "AMPPM", Dim: "0.5",
			Attrs: []vlog.Attr{{Key: "class", Value: "crc"}}},
		{ID: 6, At: 30 * ms, Level: vlog.Warn, Stage: "mac/retx",
			Msg: "ack timeout, retransmitting", Seq: 7,
			Attrs: []vlog.Attr{{Key: "age_s", Value: "0.02"}, {Key: "in_flight", Value: "1"}}},
		{ID: 7, At: 39.1 * ms, Level: vlog.Debug, Stage: "phy/decode", Msg: "frame decoded",
			Seq: 7, Span: 9, Shard: "rx0",
			Attrs: []vlog.Attr{{Key: "slots", Value: "1200"}, {Key: "sym_errs", Value: "2"}}},
	}
	return &vlog.Snapshot{Records: recs, Total: 9, Dropped: 2}
}

// fixtureSpans mirrors the span/analyze fixture shape: two transmissions
// of seq 7 (the second chained as a retransmit) plus the clean seq 3.
func fixtureSpans() *span.Snapshot {
	ms := 1e-3
	spans := []span.Span{
		{ID: 1, Name: "frame", Seq: 3, Start: 0, End: 10 * ms},
		{ID: 4, Parent: 1, Name: "phy/decode", Seq: 3, Start: 9.2 * ms, End: 10 * ms,
			Attrs: []span.Attr{{Key: "class", Value: "ok"}}},
		{ID: 5, Name: "frame", Seq: 7, Start: 10 * ms, End: 21 * ms},
		{ID: 8, Parent: 5, Name: "phy/decode", Seq: 7, Start: 19.4 * ms, End: 21 * ms,
			Attrs: []span.Attr{{Key: "class", Value: "crc"}}},
		{ID: 9, Parent: 5, Name: "frame", Seq: 7, Start: 30 * ms, End: 40 * ms,
			Attrs: []span.Attr{{Key: "retx", Value: "1"}}},
		{ID: 12, Parent: 9, Name: "phy/decode", Seq: 7, Start: 39.1 * ms, End: 40 * ms,
			Attrs: []span.Attr{{Key: "class", Value: "ok"}}},
	}
	return &span.Snapshot{Spans: spans, Total: int64(len(spans))}
}

func fixtureMetrics() *telemetry.Snapshot {
	return &telemetry.Snapshot{
		Histograms: []telemetry.HistogramSnapshot{{
			Name:   "mac_ack_latency_seconds",
			Labels: []telemetry.Label{{Key: "scheme", Value: "AMPPM"}},
			Count:  2, Sum: 0.05,
			Exemplars: []telemetry.BucketExemplars{{
				Bucket: 12,
				Exemplars: []telemetry.Exemplar{
					{Value: 0.04, At: 0.04, Seq: 7, Span: 9},
					{Value: 0.01, At: 0.01, Seq: 3, Span: 1},
				},
			}},
		}},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestReportGolden(t *testing.T) {
	var buf bytes.Buffer
	Report(&buf, fixtureLogs(), Options{})
	checkGolden(t, "report.golden", buf.Bytes())
}

func TestReportFilteredGolden(t *testing.T) {
	var buf bytes.Buffer
	Report(&buf, fixtureLogs(), Options{MinLevel: vlog.Warn, Stage: "phy", Tail: 1})
	checkGolden(t, "report_filtered.golden", buf.Bytes())
}

func TestJoinGolden(t *testing.T) {
	var buf bytes.Buffer
	Join(&buf, JoinInput{Logs: fixtureLogs(), Spans: fixtureSpans(), Metrics: fixtureMetrics()}, Options{})
	checkGolden(t, "join.golden", buf.Bytes())
}

func TestFilterSeq(t *testing.T) {
	recs := Filter(fixtureLogs().Records, Options{Seq: 7, FilterSeq: true})
	if len(recs) != 4 {
		t.Fatalf("seq filter kept %d records, want 4", len(recs))
	}
	for _, r := range recs {
		if r.Seq != 7 {
			t.Fatalf("seq filter leaked %+v", r)
		}
	}
}

func TestFilterStagePrefix(t *testing.T) {
	recs := Filter(fixtureLogs().Records, Options{Stage: "sim"})
	if len(recs) != 3 {
		t.Fatalf("stage prefix kept %d records, want 3", len(recs))
	}
	if got := Filter(fixtureLogs().Records, Options{Stage: "sim/slo"}); len(got) != 1 {
		t.Fatalf("exact stage kept %d records, want 1", len(got))
	}
	// "si" is not a path prefix of "sim/..." — no partial-segment matches.
	if got := Filter(fixtureLogs().Records, Options{Stage: "si"}); len(got) != 0 {
		t.Fatalf("partial segment matched %d records, want 0", len(got))
	}
}

func TestJoinDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	in := JoinInput{Logs: fixtureLogs(), Spans: fixtureSpans(), Metrics: fixtureMetrics()}
	Join(&a, in, Options{})
	Join(&b, in, Options{})
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("join output not deterministic")
	}
}
