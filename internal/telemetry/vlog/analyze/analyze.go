// Package analyze renders the human-readable log reports behind
// cmd/vlclog: filtered tails of NDJSON log snapshots, per-level/per-stage
// summaries, and the joined incident timeline that interleaves a flight
// bundle's log tail with its span tree and histogram-exemplar
// breadcrumbs on the shared simulation clock. Extracting the rendering
// from the command makes the output testable against golden files; the
// command stays a thin loader around this package.
//
// All output is deterministic given the inputs: events sort by simulated
// time with a fixed kind order on ties (span roots first, then log
// records, then exemplars) and record order within a kind.
package analyze

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"smartvlc/internal/telemetry"
	"smartvlc/internal/telemetry/span"
	"smartvlc/internal/telemetry/vlog"
)

// Options parameterizes a filtered tail.
type Options struct {
	// MinLevel drops records below this severity.
	MinLevel vlog.Level
	// Stage, when non-empty, keeps only records whose stage matches
	// exactly or lives under it ("phy" keeps "phy/decode" and "phy/hunt").
	Stage string
	// Seq, when FilterSeq is set, keeps only records of this sequence
	// number.
	Seq int64
	// FilterSeq enables the Seq filter (Seq 0 and -1 are both meaningful
	// record values, so presence needs its own bit).
	FilterSeq bool
	// Tail, when positive, keeps only the last Tail records after
	// filtering.
	Tail int
}

// matches reports whether one record passes the filter.
func (o Options) matches(r vlog.Record) bool {
	if r.Level < o.MinLevel {
		return false
	}
	if o.Stage != "" && r.Stage != o.Stage && !strings.HasPrefix(r.Stage, o.Stage+"/") {
		return false
	}
	if o.FilterSeq && r.Seq != o.Seq {
		return false
	}
	return true
}

// Filter returns the records passing the filter, in record order,
// truncated to the trailing Options.Tail when set.
func Filter(recs []vlog.Record, opt Options) []vlog.Record {
	var out []vlog.Record
	for _, r := range recs {
		if opt.matches(r) {
			out = append(out, r)
		}
	}
	if opt.Tail > 0 && len(out) > opt.Tail {
		out = out[len(out)-opt.Tail:]
	}
	return out
}

// Report writes the filtered tail of one log snapshot: a header with the
// ring totals and the per-level census of the records shown, then the
// matching records in console format.
func Report(w io.Writer, snap *vlog.Snapshot, opt Options) {
	recs := Filter(snap.Records, opt)
	fmt.Fprintf(w, "logs: %d buffered, %d total, %d dropped; showing %d\n",
		len(snap.Records), snap.Total, snap.Dropped, len(recs))
	counts := map[vlog.Level]int{}
	for _, r := range recs {
		counts[r.Level]++
	}
	parts := make([]string, 0, 4)
	for lv := vlog.Debug; lv <= vlog.Error; lv++ {
		if counts[lv] > 0 {
			parts = append(parts, fmt.Sprintf("%s %d", lv, counts[lv]))
		}
	}
	if len(parts) > 0 {
		fmt.Fprintf(w, "levels: %s\n", strings.Join(parts, ", "))
	}
	fmt.Fprintln(w)
	c := vlog.NewConsole(w, vlog.Debug)
	for _, r := range recs {
		c.Emit(r)
	}
}

// JoinInput is the material of one joined incident timeline — typically
// the three correlated files of one flight bundle. Any field may be nil;
// its events are then simply absent.
type JoinInput struct {
	// Logs is the structured log tail (bundle logs.ndjson).
	Logs *vlog.Snapshot
	// Spans is the span snapshot (bundle spans.json).
	Spans *span.Snapshot
	// Metrics is the telemetry snapshot whose histogram exemplars become
	// breadcrumbs (bundle metrics.json).
	Metrics *telemetry.Snapshot
}

// event is one timeline entry. Ties at equal time sort by kind (span
// roots open the frame before its log records narrate it, exemplars
// trail as breadcrumbs), then by source order within a kind.
type event struct {
	at   float64
	kind int // 0 span root, 1 log record, 2 exemplar
	idx  int
	text string
}

// Join writes the merged incident timeline of logs, span trees and
// exemplar breadcrumbs, sorted on the shared simulation clock. The log
// filter applies to log records only; spans and exemplars always show.
func Join(w io.Writer, in JoinInput, opt Options) {
	var events []event

	if in.Spans != nil {
		tree := span.NewTree(in.Spans.Spans)
		for _, id := range tree.Roots() {
			s, _ := tree.Span(id)
			var b strings.Builder
			renderSpan(&b, tree, id, 0)
			events = append(events, event{at: s.Start, kind: 0, idx: len(events), text: b.String()})
		}
	}
	if in.Logs != nil {
		var b strings.Builder
		c := vlog.NewConsole(&b, vlog.Debug)
		for _, r := range Filter(in.Logs.Records, Options{MinLevel: opt.MinLevel, Stage: opt.Stage, Seq: opt.Seq, FilterSeq: opt.FilterSeq}) {
			b.Reset()
			c.Emit(r)
			events = append(events, event{at: r.At, kind: 1, idx: len(events), text: b.String()})
		}
	}
	if in.Metrics != nil {
		for _, h := range in.Metrics.Histograms {
			name := seriesName(h)
			for _, be := range h.Exemplars {
				for _, e := range be.Exemplars {
					text := fmt.Sprintf("[%11.6fs] EXEMPLAR %s = %g seq=%d", e.At, name, e.Value, e.Seq)
					if e.Span != 0 {
						text += fmt.Sprintf(" span=%d", e.Span)
					}
					events = append(events, event{at: e.At, kind: 2, idx: len(events), text: text + "\n"})
				}
			}
		}
	}

	sort.SliceStable(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		if events[i].kind != events[j].kind {
			return events[i].kind < events[j].kind
		}
		return events[i].idx < events[j].idx
	})

	fmt.Fprintf(w, "joined timeline: %d events\n\n", len(events))
	for _, e := range events {
		io.WriteString(w, e.text)
	}
}

// renderSpan writes one span subtree, depth-first in record order.
func renderSpan(b *strings.Builder, tree *span.Tree, id span.ID, depth int) {
	s, ok := tree.Span(id)
	if !ok {
		return
	}
	if depth == 0 {
		fmt.Fprintf(b, "[%11.6fs] SPAN  %s id=%d seq=%d dur=%s%s\n",
			s.Start, s.Name, s.ID, s.Seq, Dur(s.Duration()), attrSummary(s))
	} else {
		fmt.Fprintf(b, "%*s%s id=%d dur=%s%s\n",
			14+2*depth, "", s.Name, s.ID, Dur(s.Duration()), attrSummary(s))
	}
	for _, c := range tree.Children(id) {
		renderSpan(b, tree, c, depth+1)
	}
}

// seriesName renders a histogram's identity with its labels, matching
// the exposition formats' series naming.
func seriesName(h telemetry.HistogramSnapshot) string {
	if len(h.Labels) == 0 {
		return h.Name
	}
	parts := make([]string, len(h.Labels))
	for i, l := range h.Labels {
		parts[i] = l.Key + "=" + l.Value
	}
	return h.Name + "{" + strings.Join(parts, ",") + "}"
}

// Dur renders seconds with a sensible unit for link-scale times.
func Dur(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-3 && s > -1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1 && s > -1:
		return fmt.Sprintf("%.3fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

// attrSummary renders a span's attributes compactly, leading space
// included.
func attrSummary(s span.Span) string {
	if len(s.Attrs) == 0 {
		return ""
	}
	parts := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		parts[i] = a.Key + "=" + a.Value
	}
	return " " + strings.Join(parts, " ")
}
