package telemetry

import "sync"

// Event is one frame-lifecycle trace point. At is simulation time in
// seconds (slot index × tslot) or whatever deterministic clock the
// emitter uses — never wall time, so traces from identically seeded runs
// are byte-identical.
type Event struct {
	// At is the deterministic timestamp in seconds.
	At float64 `json:"at"`
	// Kind names the lifecycle stage, e.g. "frame/build", "frame/tx",
	// "frame/decode", "frame/bad", "frame/ack", "chunk/tx", "chunk/ok".
	Kind string `json:"kind"`
	// Seq identifies the frame or chunk the event belongs to (-1 when the
	// emitter cannot attribute it, e.g. a noise decode).
	Seq int64 `json:"seq"`
}

// trace is a bounded ring buffer of events. Once full, the oldest events
// are overwritten and counted as dropped — long sessions keep the tail of
// the story, which is the part post-mortems need.
type trace struct {
	mu      sync.Mutex
	buf     []Event
	next    int   // write position
	total   int64 // events ever emitted
	dropped int64
	cap     int
}

// SetTraceCapacity resizes the event ring. Events already recorded are
// discarded; call it before the session starts. Zero or negative restores
// the default capacity.
func (r *Registry) SetTraceCapacity(n int) {
	if r == nil {
		return
	}
	if n <= 0 {
		n = DefaultTraceCapacity
	}
	r.trace.mu.Lock()
	r.trace.buf = make([]Event, 0, n)
	r.trace.cap = n
	r.trace.next = 0
	r.trace.total = 0
	r.trace.dropped = 0
	r.trace.mu.Unlock()
}

// Emit appends one event to the trace ring at deterministic time at.
// No-op on a nil registry.
func (r *Registry) Emit(at float64, kind string, seq int64) {
	if r == nil {
		return
	}
	t := &r.trace
	t.mu.Lock()
	if t.cap == 0 {
		t.cap = DefaultTraceCapacity
		t.buf = make([]Event, 0, t.cap)
	}
	e := Event{At: at, Kind: kind, Seq: seq}
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
		t.dropped++
	}
	t.next = (t.next + 1) % t.cap
	t.total++
	t.mu.Unlock()
}

// events returns the buffered events oldest-first plus the total and
// dropped counts, all read under one lock acquisition — a snapshot must
// see a consistent (events, total, dropped) triple even while another
// goroutine is emitting, so total cannot be read separately afterwards.
func (t *trace) events() ([]Event, int64, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) == 0 {
		return nil, t.total, t.dropped
	}
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) < t.cap {
		out = append(out, t.buf...)
	} else {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	}
	return out, t.total, t.dropped
}
