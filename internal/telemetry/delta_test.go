package telemetry

import (
	"bytes"
	"testing"
)

// TestDeltaNilPrevIsFull pins the base case: the delta against nil is the
// full snapshot, minus the elided exemplars and events.
func TestDeltaNilPrevIsFull(t *testing.T) {
	r := New()
	r.Counter("a_total").Add(3)
	r.Gauge("g").Set(1.5)
	r.Histogram("h").Observe(2)
	r.Emit(0.1, "ev", 1)

	d := r.Delta(nil)
	if len(d.Counters) != 1 || d.Counters[0].Value != 3 {
		t.Fatalf("counters = %+v", d.Counters)
	}
	if len(d.Gauges) != 1 || d.Gauges[0].Value != 1.5 {
		t.Fatalf("gauges = %+v", d.Gauges)
	}
	if len(d.Histograms) != 1 || d.Histograms[0].Count != 1 {
		t.Fatalf("histograms = %+v", d.Histograms)
	}
	if len(d.Events) != 0 || d.EventsTotal != 1 {
		t.Fatalf("events elided but total kept: %d events, total %d", len(d.Events), d.EventsTotal)
	}
}

// TestDeltaIncrements drives a registry through two windows and checks
// the second delta carries exactly the increments: moved series with
// their differences, unmoved series dropped, gauges at current levels.
func TestDeltaIncrements(t *testing.T) {
	r := New()
	moved := r.Counter("moved_total")
	idle := r.Counter("idle_total")
	h := r.Histogram("lat")
	g := r.Gauge("level")

	moved.Add(2)
	idle.Add(5)
	h.Observe(1)
	g.Set(0.25)
	prev := r.Snapshot()

	moved.Add(7)
	h.Observe(1)
	h.Observe(1024)
	g.Set(0.75)
	d := r.Delta(prev)

	if len(d.Counters) != 1 || d.Counters[0].Name != "moved_total" || d.Counters[0].Value != 7 {
		t.Fatalf("counters = %+v (idle series must be dropped)", d.Counters)
	}
	if len(d.Gauges) != 1 || d.Gauges[0].Value != 0.75 {
		t.Fatalf("gauges = %+v", d.Gauges)
	}
	if len(d.Histograms) != 1 {
		t.Fatalf("histograms = %+v", d.Histograms)
	}
	hd := d.Histograms[0]
	if hd.Count != 2 || hd.Sum != 1025 {
		t.Fatalf("hist delta count=%d sum=%g", hd.Count, hd.Sum)
	}
	var total int64
	for _, b := range hd.Buckets {
		total += b.Count
	}
	if total != 2 {
		t.Fatalf("bucket increments sum to %d, want 2", total)
	}
	if len(hd.Exemplars) != 0 {
		t.Fatalf("delta carries exemplars: %+v", hd.Exemplars)
	}
}

// TestDeltaRecomposes pins the algebra the streaming fold depends on:
// summing a run's delta sequence reproduces the final counter and
// histogram totals exactly.
func TestDeltaRecomposes(t *testing.T) {
	r := New()
	c := r.Counter("c_total")
	h := r.Histogram("h")

	var prev *Snapshot
	sumC, sumN := int64(0), int64(0)
	for w := 1; w <= 5; w++ {
		for i := 0; i < w; i++ {
			c.Add(int64(w))
			h.Observe(float64(w))
		}
		cur := r.Snapshot()
		d := SnapshotDelta(cur, prev)
		prev = cur
		for _, cs := range d.Counters {
			sumC += cs.Value
		}
		for _, hs := range d.Histograms {
			sumN += hs.Count
		}
	}
	final := r.Snapshot()
	if sumC != final.Counters[0].Value {
		t.Fatalf("summed counter deltas %d != final %d", sumC, final.Counters[0].Value)
	}
	if sumN != final.Histograms[0].Count {
		t.Fatalf("summed histogram deltas %d != final %d", sumN, final.Histograms[0].Count)
	}
}

// TestDeltaByteIdentical: identical op sequences on two registries
// produce byte-identical delta JSON — the canonical-form contract.
func TestDeltaByteIdentical(t *testing.T) {
	mk := func() []byte {
		r := New()
		r.Counter("a_total", "k", "v").Add(1)
		r.Histogram("h").Observe(3)
		prev := r.Snapshot()
		r.Counter("a_total", "k", "v").Add(41)
		r.Counter("b_total").Inc()
		r.Histogram("h").Observe(9)
		r.Gauge("g").Set(0.5)
		b, err := r.Delta(prev).JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := mk(), mk(); !bytes.Equal(a, b) {
		t.Fatalf("delta JSON diverges:\n%s\nvs\n%s", a, b)
	}
}

// TestDeltaCounterReset pins the restart semantics: a counter that moved
// backwards (prev from another life of the registry) contributes its
// current absolute value, like Prometheus rate() on a counter reset.
func TestDeltaCounterReset(t *testing.T) {
	old := New()
	old.Counter("c_total").Add(100)
	old.Histogram("h").Observe(1)
	old.Histogram("h").Observe(1)
	prev := old.Snapshot()

	r := New()
	r.Counter("c_total").Add(4)
	r.Histogram("h").Observe(2)
	d := r.Delta(prev)
	if len(d.Counters) != 1 || d.Counters[0].Value != 4 {
		t.Fatalf("reset counter delta = %+v, want current value 4", d.Counters)
	}
	if len(d.Histograms) != 1 || d.Histograms[0].Count != 1 {
		t.Fatalf("reset histogram delta = %+v, want current count 1", d.Histograms)
	}
}
