package telemetry

// Delta captures the registry's current state and returns the increment
// since prev — the building block of streaming aggregation (see
// smartvlc/internal/telemetry/agg). prev must be an earlier Snapshot of
// the same registry (or nil, which makes the delta the full snapshot).
//
// Delta semantics per series kind:
//
//   - Counters carry Value(now) − Value(prev). Counters are monotone, so
//     the increments are non-negative; series that did not move are
//     dropped, keeping deltas sparse.
//   - Histograms carry per-bucket occupancy increments plus the count and
//     sum increments. Series with no new observations are dropped.
//     Exemplar reservoirs are elided: a reservoir is a top-K over the
//     whole run, not a flow, so it has no meaningful increment.
//   - Gauges carry their current value unchanged — a gauge is a level,
//     not a flow, and "the level during this window" is the current
//     reading. Every gauge present now is included.
//   - Events are elided like in Merge; EventsTotal and EventsDropped
//     carry their increments so the elided volume stays visible.
//
// The result is canonically sorted, so two identically seeded sessions
// produce byte-identical delta sequences for the same flush schedule —
// the invariant the fleet aggregator's determinism rests on.
//
// If a counter or histogram moved backwards relative to prev (prev from a
// different registry, or a registry reset), the delta falls back to the
// current absolute value for that series — restart semantics, matching
// how Prometheus rate() treats counter resets.
func (r *Registry) Delta(prev *Snapshot) *Snapshot {
	return SnapshotDelta(r.Snapshot(), prev)
}

// SnapshotDelta computes the increment from prev to cur (see
// Registry.Delta for the per-kind semantics). Both snapshots are left
// untouched; a nil prev yields cur's own series (minus exemplars and
// events). Useful when the caller already holds the current snapshot and
// wants to keep it as the next delta's base without snapshotting twice.
func SnapshotDelta(cur, prev *Snapshot) *Snapshot {
	out := &Snapshot{
		Counters:   []CounterSnapshot{},
		Gauges:     []GaugeSnapshot{},
		Histograms: []HistogramSnapshot{},
	}
	if cur == nil {
		return out
	}

	prevCounters := map[string]int64{}
	type prevHist struct {
		count   int64
		sum     float64
		buckets map[int]int64
	}
	prevHists := map[string]*prevHist{}
	if prev != nil {
		for _, c := range prev.Counters {
			prevCounters[c.Name+"\xff"+labelSig(c.Labels)] = c.Value
		}
		for _, h := range prev.Histograms {
			ph := &prevHist{count: h.Count, sum: h.Sum, buckets: map[int]int64{}}
			for _, b := range h.Buckets {
				ph.buckets[b.Index] = b.Count
			}
			prevHists[h.Name+"\xff"+labelSig(h.Labels)] = ph
		}
	}

	for _, c := range cur.Counters {
		d := c.Value - prevCounters[c.Name+"\xff"+labelSig(c.Labels)]
		if d < 0 {
			d = c.Value // counter reset: restart semantics
		}
		if d == 0 {
			continue
		}
		out.Counters = append(out.Counters, CounterSnapshot{Name: c.Name, Labels: c.Labels, Value: d})
	}

	// Gauges are levels: the delta carries the current readings verbatim.
	out.Gauges = append(out.Gauges, cur.Gauges...)

	for _, h := range cur.Histograms {
		ph := prevHists[h.Name+"\xff"+labelSig(h.Labels)]
		if ph == nil {
			ph = &prevHist{buckets: map[int]int64{}}
		}
		dCount := h.Count - ph.count
		dSum := h.Sum - ph.sum
		if dCount < 0 {
			dCount, dSum = h.Count, h.Sum
			ph.buckets = map[int]int64{}
		}
		if dCount == 0 {
			continue
		}
		hs := HistogramSnapshot{Name: h.Name, Labels: h.Labels, Count: dCount, Sum: dSum}
		for _, b := range h.Buckets {
			if d := b.Count - ph.buckets[b.Index]; d > 0 {
				hs.Buckets = append(hs.Buckets, Bucket{Index: b.Index, Count: d})
			}
		}
		out.Histograms = append(out.Histograms, hs)
	}

	if prev != nil {
		out.EventsTotal = cur.EventsTotal - prev.EventsTotal
		out.EventsDropped = cur.EventsDropped - prev.EventsDropped
		if out.EventsTotal < 0 {
			out.EventsTotal = cur.EventsTotal
		}
		if out.EventsDropped < 0 {
			out.EventsDropped = cur.EventsDropped
		}
	} else {
		out.EventsTotal = cur.EventsTotal
		out.EventsDropped = cur.EventsDropped
	}

	out.sortCanonical()
	return out
}
