package prof

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"smartvlc/internal/telemetry"
)

// TestNilIsNoOp pins the nil-safety contract for profiler and stage.
func TestNilIsNoOp(t *testing.T) {
	var p *Profiler
	st := p.Stage("phy.tx", "pam4", "0.50", "")
	if st != nil {
		t.Fatal("nil profiler returned non-nil stage")
	}
	st.Ops(1)
	st.Samples(2)
	st.Slots(3)
	st.Symbols(4)
	st.Bytes(5)
	st.Allocs(6)
	p.Publish(nil)
	if got := p.Snapshot(); len(got.Series) != 0 {
		t.Fatalf("nil profiler snapshot has %d series", len(got.Series))
	}
}

// TestNilStageZeroAllocs pins the hot-path cost of disabled profiling.
func TestNilStageZeroAllocs(t *testing.T) {
	var st *Stage
	if n := testing.AllocsPerRun(100, func() {
		st.Ops(1)
		st.Samples(480)
		st.Slots(32)
	}); n != 0 {
		t.Fatalf("nil stage adders allocate %v per run, want 0", n)
	}
}

// TestSnapshotCanonicalAndElided: creation order must not matter, and
// zero-cost series must not appear.
func TestSnapshotCanonicalAndElided(t *testing.T) {
	build := func(reverse bool) []byte {
		p := New()
		keys := [][4]string{
			{"phy.tx", "pam4", "0.50", ""},
			{"phy.decode", "pam4", "0.50", ""},
			{"mac.frame", "opwm", "0.75", "rx1"},
		}
		if reverse {
			keys[0], keys[2] = keys[2], keys[0]
		}
		for _, k := range keys {
			st := p.Stage(k[0], k[1], k[2], k[3])
			st.Ops(1)
			st.Samples(10)
		}
		p.Stage("idle", "pam4", "0.50", "") // created, never added to
		b, err := p.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := build(false), build(true)
	if !bytes.Equal(a, b) {
		t.Fatalf("creation order changed snapshot JSON:\n%s\nvs\n%s", a, b)
	}
	if strings.Contains(string(a), `"idle"`) {
		t.Fatalf("zero-cost series not elided:\n%s", a)
	}
}

// TestConcurrentAddsMatchSerial: atomic adds commute, so hammering one
// stage from many goroutines must equal the serial total.
func TestConcurrentAddsMatchSerial(t *testing.T) {
	p := New()
	st := p.Stage("phy.hunt", "pam4", "0.50", "")
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				st.Ops(1)
				st.Samples(480)
			}
		}()
	}
	wg.Wait()
	s := p.Snapshot()
	if len(s.Series) != 1 {
		t.Fatalf("got %d series, want 1", len(s.Series))
	}
	if s.Series[0].Ops != workers*iters || s.Series[0].Samples != workers*iters*480 {
		t.Fatalf("counts %+v, want ops=%d samples=%d", s.Series[0].Counts, workers*iters, workers*iters*480)
	}
}

// TestOverflowBucket: past the limit, new keys collapse into the shared
// overflow series instead of growing the map.
func TestOverflowBucket(t *testing.T) {
	p := NewLimited(2)
	p.Stage("a", "", "", "").Ops(1)
	p.Stage("b", "", "", "").Ops(1)
	o1 := p.Stage("c", "", "", "")
	o2 := p.Stage("d", "", "", "")
	if o1 != o2 {
		t.Fatal("overflow keys got distinct stages")
	}
	o1.Ops(5)
	s := p.Snapshot()
	if len(s.Series) != 3 {
		t.Fatalf("got %d series, want 2 admitted + overflow", len(s.Series))
	}
	var overflow *Series
	for i := range s.Series {
		if s.Series[i].Stage == OverflowStage {
			overflow = &s.Series[i]
		}
	}
	if overflow == nil || overflow.Ops != 5 {
		t.Fatalf("overflow series missing or wrong: %+v", s.Series)
	}
	// An admitted key keeps resolving to its own stage after overflow.
	if p.Stage("a", "", "", "") == o1 {
		t.Fatal("admitted key resolved to overflow stage")
	}
}

// TestLevelLabel pins the two-decimal quantization.
func TestLevelLabel(t *testing.T) {
	cases := map[float64]string{0: "0.00", 0.5: "0.50", 0.499: "0.50", 0.494: "0.49", 1: "1.00", 0.125: "0.13"}
	for in, want := range cases {
		if got := LevelLabel(in); got != want {
			t.Errorf("LevelLabel(%v) = %q, want %q", in, got, want)
		}
	}
}

// TestMergeSums: merging snapshots sums cost vectors per key and keeps
// canonical order; merge of identical inputs is byte-deterministic.
func TestMergeSums(t *testing.T) {
	mk := func(ops int64) *Snapshot {
		p := New()
		st := p.Stage("phy.tx", "pam4", "0.50", "")
		st.Ops(ops)
		st.Slots(ops * 10)
		p.Stage("phy.decode", "pam4", "0.50", "").Bytes(7)
		return p.Snapshot()
	}
	m := Merge(mk(2), nil, mk(3))
	if len(m.Series) != 2 {
		t.Fatalf("merged %d series, want 2", len(m.Series))
	}
	var tx *Series
	for i := range m.Series {
		if m.Series[i].Stage == "phy.tx" {
			tx = &m.Series[i]
		}
	}
	if tx == nil || tx.Ops != 5 || tx.Slots != 50 {
		t.Fatalf("merged tx %+v, want ops=5 slots=50", m.Series)
	}
	j1, _ := Merge(mk(2), mk(3)).JSON()
	j2, _ := Merge(mk(2), mk(3)).JSON()
	if !bytes.Equal(j1, j2) {
		t.Fatal("repeated merge produced different JSON")
	}
}

// TestDiffAndTopRegression: diff covers both sides' keys; TopRegression
// names the series with the largest relative growth.
func TestDiffAndTopRegression(t *testing.T) {
	mk := func(huntSamples, decodeOps int64) *Snapshot {
		p := New()
		p.Stage("phy.hunt", "pam4", "0.50", "").Samples(huntSamples)
		if decodeOps > 0 {
			p.Stage("phy.decode", "pam4", "0.50", "").Ops(decodeOps)
		}
		return p.Snapshot()
	}
	a, b := mk(1000, 0), mk(1100, 50)
	deltas := Diff(a, b)
	if len(deltas) != 2 {
		t.Fatalf("diff has %d rows, want 2", len(deltas))
	}
	// phy.decode is new in b → fully grown → the top samples regression
	// is still phy.hunt (decode has no samples).
	top, ok := TopRegression(deltas, MetricSamples)
	if !ok || top.Stage != "phy.hunt" {
		t.Fatalf("top samples regression %+v ok=%v, want phy.hunt", top, ok)
	}
	top, ok = TopRegression(deltas, MetricOps)
	if !ok || top.Stage != "phy.decode" {
		t.Fatalf("top ops regression %+v ok=%v, want phy.decode", top, ok)
	}
	if _, ok := TopRegression(Diff(a, a), MetricSamples); ok {
		t.Fatal("identical snapshots reported a regression")
	}
	// Zero-delta diff: every row unchanged.
	for _, d := range Diff(b, b) {
		if d.Changed() {
			t.Fatalf("self-diff row changed: %+v", d)
		}
	}
}

// TestWriteFolded pins the collapsed-stack line format and metric
// selection.
func TestWriteFolded(t *testing.T) {
	p := New()
	st := p.Stage("phy.hunt", "pam4", "0.50", "")
	st.Samples(480)
	st.Ops(1)
	p.Stage("phy;odd stage", "", "", "rx1").Samples(7)
	var buf bytes.Buffer
	if err := p.Snapshot().WriteFolded(&buf, MetricSamples); err != nil {
		t.Fatal(err)
	}
	want := "pam4;0.50;phy.hunt 480\n(scheme);(level);phy_odd_stage;rx1 7\n"
	if buf.String() != want {
		t.Fatalf("folded mismatch:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
	buf.Reset()
	if err := p.Snapshot().WriteFolded(&buf, MetricBytes); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("bytes-metric folded output not empty:\n%s", buf.String())
	}
}

// TestParseSnapshotRoundTrip: JSON → ParseSnapshot is the identity.
func TestParseSnapshotRoundTrip(t *testing.T) {
	p := New()
	p.Stage("phy.tx", "pam4", "0.50", "").Ops(3)
	s := p.Snapshot()
	b, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("round trip changed bytes:\n%s\nvs\n%s", b, b2)
	}
}

// TestPublishMirrorsToRegistry: totals land as labeled prof_*_total
// counters so telemetry.Merge carries stage costs across the fleet.
func TestPublishMirrorsToRegistry(t *testing.T) {
	p := New()
	st := p.Stage("phy.tx", "pam4", "0.50", "rx2")
	st.Ops(3)
	st.Samples(900)
	reg := telemetry.New()
	p.Publish(reg)
	snap := reg.Snapshot()
	found := map[string]int64{}
	for _, c := range snap.Counters {
		found[c.Name] = c.Value
		want := map[string]string{"stage": "phy.tx", "scheme": "pam4", "level": "0.50", "shard": "rx2"}
		for _, l := range c.Labels {
			if want[l.Key] != l.Value {
				t.Fatalf("counter %s label %s=%q, want %q", c.Name, l.Key, l.Value, want[l.Key])
			}
		}
	}
	if found["prof_ops_total"] != 3 || found["prof_samples_total"] != 900 {
		t.Fatalf("published counters %+v, want ops 3 samples 900", found)
	}
	if _, ok := found["prof_bytes_total"]; ok {
		t.Fatal("zero dimension published a counter")
	}
}
