package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"smartvlc/internal/telemetry"
)

// JSON marshals the snapshot as canonical indented JSON — fixed field
// order, canonical series order, trailing newline — the byte-identical
// export the determinism tests pin.
func (s *Snapshot) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseSnapshot decodes a snapshot previously written by JSON and
// restores canonical order (tolerating hand-edited inputs).
func ParseSnapshot(b []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, err
	}
	if s.Series == nil {
		s.Series = []Series{}
	}
	s.sortCanonical()
	return &s, nil
}

// WriteFolded writes the snapshot in collapsed-stack format — one
// "scheme;level;stage[;shard] weight" line per series, weighted by the
// chosen metric — loadable by speedscope, flamegraph.pl and pprof's
// folded importer. Zero-weight series are elided.
func (s *Snapshot) WriteFolded(w io.Writer, m Metric) error {
	for _, se := range s.Series {
		v := se.Counts.Get(m)
		if v == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", se.Key.frames(), v); err != nil {
			return err
		}
	}
	return nil
}

// Merge combines per-session snapshots into one aggregate by summing
// each key's cost vector. Like telemetry.Merge it is a pure sequential
// fold, so a deterministic argument order yields byte-identical output
// no matter how many workers produced the inputs. Nil snapshots are
// skipped.
func Merge(snaps ...*Snapshot) *Snapshot {
	acc := map[Key]*Counts{}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for _, se := range s.Series {
			c, ok := acc[se.Key]
			if !ok {
				c = &Counts{}
				acc[se.Key] = c
			}
			c.add(se.Counts)
		}
	}
	out := &Snapshot{Series: make([]Series, 0, len(acc))}
	for k, c := range acc {
		out.Series = append(out.Series, Series{Key: k, Counts: *c})
	}
	out.sortCanonical()
	return out
}

// Delta is one key's cost in two snapshots being compared. A key absent
// from one side contributes a zero Counts there.
type Delta struct {
	Key
	A Counts `json:"a"`
	B Counts `json:"b"`
}

// Diff compares two snapshots key by key, returning one Delta per key
// present in either, in canonical order. Keys with identical cost
// vectors on both sides are included — callers filter with Changed —
// so the output is a complete side-by-side table.
func Diff(a, b *Snapshot) []Delta {
	keys := map[Key]*Delta{}
	if a != nil {
		for _, se := range a.Series {
			keys[se.Key] = &Delta{Key: se.Key, A: se.Counts}
		}
	}
	if b != nil {
		for _, se := range b.Series {
			d, ok := keys[se.Key]
			if !ok {
				d = &Delta{Key: se.Key}
				keys[se.Key] = d
			}
			d.B = se.Counts
		}
	}
	out := make([]Delta, 0, len(keys))
	for _, d := range keys {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool { return keyLess(out[i].Key, out[j].Key) })
	return out
}

// Changed reports whether the two sides differ in any dimension.
func (d Delta) Changed() bool { return d.A != d.B }

// TopRegression returns the delta with the largest relative growth of
// metric m from A to B (new keys count as fully grown), or false when
// nothing grew. It is the "name the stage responsible" primitive behind
// vlcprof diff and benchguard -trend.
func TopRegression(deltas []Delta, m Metric) (Delta, bool) {
	best := -1
	var bestGrowth float64
	for i, d := range deltas {
		a, b := d.A.Get(m), d.B.Get(m)
		if b <= a {
			continue
		}
		growth := float64(b-a) / float64(max64(a, 1))
		if best < 0 || growth > bestGrowth {
			best, bestGrowth = i, growth
		}
	}
	if best < 0 {
		return Delta{}, false
	}
	return deltas[best], true
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Publish mirrors the profiler's totals into a telemetry registry as
// labeled counters (prof_ops_total, prof_samples_total, prof_slots_total,
// prof_symbols_total, prof_bytes_total, prof_allocs_total; labels stage,
// scheme, level, shard). Called once at session finalization, before the
// registry snapshot is taken, so fleet aggregation inherits stage costs
// through telemetry.Merge with no profiler-specific plumbing. No-op when
// either side is nil.
func (p *Profiler) Publish(reg *telemetry.Registry) {
	if p == nil || reg == nil {
		return
	}
	s := p.Snapshot()
	for _, se := range s.Series {
		labels := []string{"stage", se.Stage, "scheme", se.Scheme, "level", se.Level, "shard", se.Shard}
		for _, m := range Metrics() {
			if v := se.Counts.Get(m); v != 0 {
				reg.Counter("prof_"+string(m)+"_total", labels...).Add(v)
			}
		}
	}
}
