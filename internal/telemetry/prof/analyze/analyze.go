// Package analyze renders the human-readable cost reports behind
// cmd/vlcprof: top-k stage tables, per-dimming-level cost curves, profile
// diffs and bench-history trend reports. Extracting the rendering from
// the command makes the output testable against pinned strings; the
// command stays a thin loader around this package.
//
// All output is deterministic given the inputs: series arrive in the
// snapshot's canonical order and every aggregation sorts its keys.
package analyze

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"smartvlc/internal/bench"
	"smartvlc/internal/telemetry/prof"
)

// Options parameterizes a report.
type Options struct {
	// Metric selects the cost dimension. Empty means samples.
	Metric prof.Metric
	// Top bounds the top-k tables. Zero or negative means 10.
	Top int
}

func (o Options) withDefaults() Options {
	if o.Metric == "" {
		o.Metric = prof.MetricSamples
	}
	if o.Top <= 0 {
		o.Top = 10
	}
	return o
}

// stageKey aggregates series across levels and shards: the unit of the
// top-k table.
type stageKey struct{ Stage, Scheme string }

// ReportTop writes the top-k stages by the selected metric, aggregated
// across dimming levels and shards, with each stage's share of the total.
func ReportTop(w io.Writer, snap *prof.Snapshot, opt Options) {
	opt = opt.withDefaults()
	agg := map[stageKey]int64{}
	var total int64
	for _, s := range snap.Series {
		v := s.Counts.Get(opt.Metric)
		if v == 0 {
			continue
		}
		agg[stageKey{s.Key.Stage, s.Key.Scheme}] += v
		total += v
	}
	fmt.Fprintf(w, "top stages by %s (%d series, total %d):\n", opt.Metric, len(snap.Series), total)
	if total == 0 {
		fmt.Fprintln(w, "  (no cost recorded)")
		return
	}
	keys := make([]stageKey, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if agg[keys[i]] != agg[keys[j]] {
			return agg[keys[i]] > agg[keys[j]]
		}
		if keys[i].Stage != keys[j].Stage {
			return keys[i].Stage < keys[j].Stage
		}
		return keys[i].Scheme < keys[j].Scheme
	})
	if len(keys) > opt.Top {
		keys = keys[:opt.Top]
	}
	for _, k := range keys {
		name := k.Stage
		if k.Scheme != "" {
			name += " (" + k.Scheme + ")"
		}
		fmt.Fprintf(w, "  %-28s %14d  %5.1f%%\n", name, agg[k], 100*float64(agg[k])/float64(total))
	}
}

// ReportLevels writes each stage's cost curve across dimming levels: the
// per-level view behind the paper's tent-shaped capacity envelope, on the
// cost axis instead of the throughput axis. Shards are summed per level.
func ReportLevels(w io.Writer, snap *prof.Snapshot, opt Options) {
	opt = opt.withDefaults()
	type curve struct {
		levels map[string]int64
		max    int64
	}
	curves := map[stageKey]*curve{}
	for _, s := range snap.Series {
		v := s.Counts.Get(opt.Metric)
		if v == 0 {
			continue
		}
		k := stageKey{s.Key.Stage, s.Key.Scheme}
		c := curves[k]
		if c == nil {
			c = &curve{levels: map[string]int64{}}
			curves[k] = c
		}
		c.levels[s.Key.Level] += v
		if c.levels[s.Key.Level] > c.max {
			c.max = c.levels[s.Key.Level]
		}
	}
	fmt.Fprintf(w, "per-level %s by stage:\n", opt.Metric)
	if len(curves) == 0 {
		fmt.Fprintln(w, "  (no cost recorded)")
		return
	}
	keys := make([]stageKey, 0, len(curves))
	for k := range curves {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Stage != keys[j].Stage {
			return keys[i].Stage < keys[j].Stage
		}
		return keys[i].Scheme < keys[j].Scheme
	})
	for _, k := range keys {
		c := curves[k]
		name := k.Stage
		if k.Scheme != "" {
			name += " (" + k.Scheme + ")"
		}
		fmt.Fprintf(w, "  %s:\n", name)
		levels := make([]string, 0, len(c.levels))
		for l := range c.levels {
			levels = append(levels, l)
		}
		sort.Strings(levels)
		for _, l := range levels {
			v := c.levels[l]
			bar := ""
			if c.max > 0 {
				bar = strings.Repeat("#", int(24*v/c.max))
			}
			label := l
			if label == "" {
				label = "(none)"
			}
			fmt.Fprintf(w, "    level %-6s %14d  %s\n", label, v, bar)
		}
	}
}

// ReportDiff writes the changed series between two profiles and names the
// top regression by relative growth of the selected metric. Identical
// profiles report a zero delta explicitly — the determinism check
// `vlcprof diff a.json b.json` on two same-seed runs rests on that line.
func ReportDiff(w io.Writer, a, b *prof.Snapshot, opt Options) {
	opt = opt.withDefaults()
	deltas := prof.Diff(a, b)
	var changed []prof.Delta
	for _, d := range deltas {
		if d.Changed() {
			changed = append(changed, d)
		}
	}
	if len(changed) == 0 {
		fmt.Fprintf(w, "profiles identical: zero delta across %d series\n", len(deltas))
		return
	}
	fmt.Fprintf(w, "%d of %d series changed:\n", len(changed), len(deltas))
	show := changed
	if len(show) > opt.Top {
		show = show[:opt.Top]
	}
	for _, d := range show {
		name := d.Key.Stage
		if d.Key.Scheme != "" || d.Key.Level != "" {
			name += " (" + d.Key.Scheme + " @ " + d.Key.Level + ")"
		}
		if d.Key.Shard != "" {
			name += " [" + d.Key.Shard + "]"
		}
		va, vb := d.A.Get(opt.Metric), d.B.Get(opt.Metric)
		fmt.Fprintf(w, "  %-40s %s %d -> %d (%+d)\n", name, opt.Metric, va, vb, vb-va)
	}
	if len(changed) > len(show) {
		fmt.Fprintf(w, "  ... %d more\n", len(changed)-len(show))
	}
	if worst, ok := prof.TopRegression(deltas, opt.Metric); ok {
		va, vb := worst.A.Get(opt.Metric), worst.B.Get(opt.Metric)
		growth := 100 * float64(vb-va) / float64(max64(va, 1))
		fmt.Fprintf(w, "top regression: %s %s %d -> %d (%+.1f%%)\n",
			describeKey(worst.Key), opt.Metric, va, vb, growth)
	} else {
		fmt.Fprintf(w, "no %s regression: every changed series shrank or moved other metrics\n", opt.Metric)
	}
}

// ReportHistory compares the newest full bench-history record against the
// rolling median of the records before it and names the regressing stage.
// tolerance is the fractional slowdown allowed (0.05 = 5%); window bounds
// the median (0 = all prior full records). It returns true when some
// benchmark regressed beyond tolerance — callers gate on it.
func ReportHistory(w io.Writer, recs []bench.Record, window int, tolerance float64) bool {
	full := make([]bench.Record, 0, len(recs))
	for _, r := range recs {
		if !r.Quick {
			full = append(full, r)
		}
	}
	if len(full) < 2 {
		fmt.Fprintf(w, "history has %d full record(s); need at least 2 for a trend\n", len(full))
		return false
	}
	last, prior := full[len(full)-1], full[:len(full)-1]
	id := last.SHA
	if id == "" {
		id = fmt.Sprintf("record %d", len(full)-1)
	}
	fmt.Fprintf(w, "trend: %s vs rolling median of %d prior run(s), tolerance %.0f%%:\n",
		id, len(prior), tolerance*100)
	regressed := false
	worstName, worstRatio := "", 0.0
	for _, name := range bench.Names([]bench.Record{last}) {
		cur := last.NsPerOp[name]
		med, ok := bench.RollingMedian(prior, name, window)
		if !ok || cur <= 0 {
			fmt.Fprintf(w, "  %-28s %12.0f ns/op  (no prior runs)\n", name, cur)
			continue
		}
		ratio := cur/med - 1
		mark := ""
		if ratio > tolerance {
			regressed = true
			mark = "  REGRESSED"
			if ratio > worstRatio {
				worstName, worstRatio = name, ratio
			}
		}
		fmt.Fprintf(w, "  %-28s %12.0f ns/op  median %12.0f  %+6.1f%%%s\n", name, cur, med, ratio*100, mark)
	}
	if len(last.SessionsPerSec) > 0 {
		names := make([]string, 0, len(last.SessionsPerSec))
		for n := range last.SessionsPerSec {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintln(w, "session throughput (newest run):")
		for _, n := range names {
			fmt.Fprintf(w, "  %-28s %12.1f sessions/sec\n", n, last.SessionsPerSec[n])
		}
	}
	if regressed {
		stage := bench.StageFor(worstName)
		if stage == "" {
			stage = "(unmapped)"
		}
		fmt.Fprintf(w, "regressing stage: %s (via %s, %+.1f%% vs median)\n", stage, worstName, worstRatio*100)
	} else {
		fmt.Fprintln(w, "no benchmark regressed beyond tolerance")
	}
	return regressed
}

func describeKey(k prof.Key) string {
	name := k.Stage
	if k.Scheme != "" || k.Level != "" {
		name += " (" + k.Scheme + " @ " + k.Level + ")"
	}
	if k.Shard != "" {
		name += " [" + k.Shard + "]"
	}
	return name
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
