package analyze

import (
	"strings"
	"testing"

	"smartvlc/internal/bench"
	"smartvlc/internal/telemetry/prof"
)

// sampleSnapshot builds a small profile by exercising a real profiler, so
// the tests cover the same series shapes the sim emits.
func sampleSnapshot(t *testing.T) *prof.Snapshot {
	t.Helper()
	p := prof.New()
	hunt := p.Stage("phy.hunt", "pam4", "0.50", "")
	hunt.Ops(10)
	hunt.Samples(4000)
	dec25 := p.Stage("phy.decode", "pam4", "0.25", "")
	dec25.Ops(10)
	dec25.Samples(1000)
	dec25.Slots(200)
	dec50 := p.Stage("phy.decode", "pam4", "0.50", "")
	dec50.Ops(10)
	dec50.Samples(3000)
	dec50.Slots(500)
	mac := p.Stage("mac.frame", "pam4", "0.50", "")
	mac.Ops(10)
	mac.Bytes(1300)
	return p.Snapshot()
}

func TestReportTopPinned(t *testing.T) {
	var b strings.Builder
	ReportTop(&b, sampleSnapshot(t), Options{Top: 2})
	want := "top stages by samples (4 series, total 8000):\n" +
		"  phy.decode (pam4)                      4000   50.0%\n" +
		"  phy.hunt (pam4)                        4000   50.0%\n"
	if b.String() != want {
		t.Fatalf("report mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestReportLevelsPinned(t *testing.T) {
	var b strings.Builder
	ReportLevels(&b, sampleSnapshot(t), Options{Metric: prof.MetricSlots})
	want := "per-level slots by stage:\n" +
		"  phy.decode (pam4):\n" +
		"    level 0.25              200  #########\n" +
		"    level 0.50              500  ########################\n"
	if b.String() != want {
		t.Fatalf("report mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestReportDiffZeroDelta(t *testing.T) {
	a, b := sampleSnapshot(t), sampleSnapshot(t)
	var out strings.Builder
	ReportDiff(&out, a, b, Options{})
	want := "profiles identical: zero delta across 4 series\n"
	if out.String() != want {
		t.Fatalf("zero-delta report = %q, want %q", out.String(), want)
	}
}

func TestReportDiffNamesRegression(t *testing.T) {
	a := sampleSnapshot(t)
	p := prof.New()
	hunt := p.Stage("phy.hunt", "pam4", "0.50", "")
	hunt.Ops(10)
	hunt.Samples(9000) // was 4000: the regression to name
	b := prof.Merge(a, p.Snapshot())
	var out strings.Builder
	ReportDiff(&out, a, b, Options{})
	got := out.String()
	if !strings.Contains(got, "1 of 4 series changed") {
		t.Fatalf("missing changed count:\n%s", got)
	}
	if !strings.Contains(got, "top regression: phy.hunt (pam4 @ 0.50) samples 4000 -> 13000 (+225.0%)") {
		t.Fatalf("missing top-regression line:\n%s", got)
	}
}

func TestReportHistoryTrend(t *testing.T) {
	recs := []bench.Record{
		{SHA: "a1", NsPerOp: map[string]float64{"receiver_hunt": 100, "phy_transmit": 50}},
		{SHA: "a2", NsPerOp: map[string]float64{"receiver_hunt": 102, "phy_transmit": 51}},
		{Quick: true, NsPerOp: map[string]float64{"receiver_hunt": 9999}},
		{SHA: "a3", NsPerOp: map[string]float64{"receiver_hunt": 130, "phy_transmit": 50}},
	}
	var out strings.Builder
	if !ReportHistory(&out, recs, 0, 0.05) {
		t.Fatalf("29%% hunt slowdown not flagged:\n%s", out.String())
	}
	got := out.String()
	if !strings.Contains(got, "REGRESSED") || !strings.Contains(got, "regressing stage: phy.hunt (via receiver_hunt") {
		t.Fatalf("trend report missing stage naming:\n%s", got)
	}

	// Within tolerance: no regression, no gate.
	out.Reset()
	recs[3].NsPerOp["receiver_hunt"] = 103
	if ReportHistory(&out, recs, 0, 0.05) {
		t.Fatalf("3%% drift flagged as regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "no benchmark regressed beyond tolerance") {
		t.Fatalf("missing all-clear line:\n%s", out.String())
	}

	// Too little history for a trend.
	out.Reset()
	if ReportHistory(&out, recs[:1], 0, 0.05) {
		t.Fatal("single-record history gated")
	}
}
