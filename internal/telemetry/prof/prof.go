// Package prof is SmartVLC's deterministic stage profiler: a bounded set
// of cost counters accumulated per (stage, scheme, level, shard) that
// attributes *simulated work* — samples processed, slots scanned, symbols
// decoded, payload bytes, scratch-buffer growth events — to the pipeline
// stage that spent it.
//
// It is the sim-domain twin of a CPU profile. Wall-clock profiles (pprof,
// enabled by -pprof-addr) answer "where did the host CPU go"; the stage
// profiler answers "where did the *simulated* work go", in units that are
// byte-identical per (seed, config) across worker counts and machines.
// The two are joined by pprof goroutine labels carrying the same
// stage/scheme/level dimensions, so a flame graph and a stage profile
// line up frame for frame.
//
// Determinism has one load-bearing property: every cost is an atomic
// integer add, and integer adds commute. Workers hammering the same Stage
// handle concurrently therefore produce the same totals as a serial run,
// with no sharding needed for correctness — the Shard dimension exists
// for *attribution* (e.g. broadcast receiver index), not for avoiding
// contention.
//
// Cardinality is bounded: a Profiler admits at most its configured number
// of distinct series; past the limit, new keys collapse into a shared
// overflow series (stage "_overflow") so a runaway label can never OOM
// the profiler — it shows up as overflow volume instead.
//
// Like the telemetry package, nil is the no-op default: every method on a
// nil *Profiler or nil *Stage does nothing and allocates nothing, so hot
// paths carry Stage handles unconditionally.
package prof

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Key identifies one profiled series. Stage names the pipeline stage
// ("phy.tx", "phy.hunt", "phy.decode", "mac.frame", "stream.chunk", ...);
// Scheme and Level are the modulation scheme and quantized dimming level
// (LevelLabel); Shard attributes work to a sub-unit such as a broadcast
// receiver ("rx3") and is empty for single-receiver sessions.
type Key struct {
	Stage  string `json:"stage"`
	Scheme string `json:"scheme,omitempty"`
	Level  string `json:"level,omitempty"`
	Shard  string `json:"shard,omitempty"`
}

// OverflowStage is the stage name of the shared series that absorbs
// every key past the profiler's cardinality limit.
const OverflowStage = "_overflow"

// DefaultMaxSeries bounds a New()-constructed profiler. stages × schemes
// × quantized levels in a realistic sweep stays well under this; the
// limit exists to make the worst case (a label built from unbounded
// input) overflow visibly instead of growing without bound.
const DefaultMaxSeries = 512

// LevelLabel quantizes a dimming level to two decimals for use as the
// Level key dimension, giving at most 101 distinct values over [0,1] —
// the cardinality budget that keeps stage×scheme×level bounded.
func LevelLabel(level float64) string {
	return strconv.FormatFloat(float64(int(level*100+0.5))/100, 'f', 2, 64)
}

// Counts is the cost vector of one series. All units are sim-domain:
//
//   - Ops: stage invocations (frames transmitted, hunts run, parses
//     attempted, chunks cut).
//   - Samples: PHY samples produced or scanned.
//   - Slots: modulation slots built or consumed.
//   - Symbols: modulation symbols encoded or decoded.
//   - Bytes: payload bytes through the stage.
//   - Allocs: deterministic allocation events (scratch-buffer growth),
//     not Go allocator calls — the sim-domain proxy that is identical
//     across runs where runtime.MemStats is not.
type Counts struct {
	Ops     int64 `json:"ops,omitempty"`
	Samples int64 `json:"samples,omitempty"`
	Slots   int64 `json:"slots,omitempty"`
	Symbols int64 `json:"symbols,omitempty"`
	Bytes   int64 `json:"bytes,omitempty"`
	Allocs  int64 `json:"allocs,omitempty"`
}

// Metric names one Counts dimension for folded export and diffing.
type Metric string

// The six cost dimensions.
const (
	MetricOps     Metric = "ops"
	MetricSamples Metric = "samples"
	MetricSlots   Metric = "slots"
	MetricSymbols Metric = "symbols"
	MetricBytes   Metric = "bytes"
	MetricAllocs  Metric = "allocs"
)

// Metrics lists all cost dimensions in canonical order.
func Metrics() []Metric {
	return []Metric{MetricOps, MetricSamples, MetricSlots, MetricSymbols, MetricBytes, MetricAllocs}
}

// Get returns the named dimension (0 for an unknown metric).
func (c Counts) Get(m Metric) int64 {
	switch m {
	case MetricOps:
		return c.Ops
	case MetricSamples:
		return c.Samples
	case MetricSlots:
		return c.Slots
	case MetricSymbols:
		return c.Symbols
	case MetricBytes:
		return c.Bytes
	case MetricAllocs:
		return c.Allocs
	}
	return 0
}

// add accumulates o into c.
func (c *Counts) add(o Counts) {
	c.Ops += o.Ops
	c.Samples += o.Samples
	c.Slots += o.Slots
	c.Symbols += o.Symbols
	c.Bytes += o.Bytes
	c.Allocs += o.Allocs
}

// IsZero reports whether every dimension is zero.
func (c Counts) IsZero() bool { return c == Counts{} }

// Stage is the per-series accumulator handed to hot paths. All adders
// are lock-free atomic adds; the nil Stage is a no-op, so instrumented
// code carries handles unconditionally and pays one nil check (zero
// allocations) when profiling is off.
type Stage struct {
	key     Key
	ops     atomic.Int64
	samples atomic.Int64
	slots   atomic.Int64
	symbols atomic.Int64
	bytes   atomic.Int64
	allocs  atomic.Int64
}

// Ops records n stage invocations. No-op on nil.
func (s *Stage) Ops(n int64) {
	if s != nil {
		s.ops.Add(n)
	}
}

// Samples records n PHY samples. No-op on nil.
func (s *Stage) Samples(n int64) {
	if s != nil {
		s.samples.Add(n)
	}
}

// Slots records n modulation slots. No-op on nil.
func (s *Stage) Slots(n int64) {
	if s != nil {
		s.slots.Add(n)
	}
}

// Symbols records n modulation symbols. No-op on nil.
func (s *Stage) Symbols(n int64) {
	if s != nil {
		s.symbols.Add(n)
	}
}

// Bytes records n payload bytes. No-op on nil.
func (s *Stage) Bytes(n int64) {
	if s != nil {
		s.bytes.Add(n)
	}
}

// Allocs records n deterministic allocation events. No-op on nil.
func (s *Stage) Allocs(n int64) {
	if s != nil {
		s.allocs.Add(n)
	}
}

// counts reads the current cost vector.
func (s *Stage) counts() Counts {
	return Counts{
		Ops:     s.ops.Load(),
		Samples: s.samples.Load(),
		Slots:   s.slots.Load(),
		Symbols: s.symbols.Load(),
		Bytes:   s.bytes.Load(),
		Allocs:  s.allocs.Load(),
	}
}

// Profiler owns a bounded set of Stage series. The nil Profiler is the
// no-op default: Stage() on it returns a nil *Stage.
type Profiler struct {
	mu       sync.Mutex
	series   map[Key]*Stage
	limit    int
	overflow *Stage
}

// New returns a profiler bounded at DefaultMaxSeries.
func New() *Profiler { return NewLimited(DefaultMaxSeries) }

// NewLimited returns a profiler admitting at most limit distinct series
// (minimum 1) before collapsing new keys into the overflow series.
func NewLimited(limit int) *Profiler {
	if limit < 1 {
		limit = 1
	}
	return &Profiler{series: map[Key]*Stage{}, limit: limit}
}

// Stage returns the accumulator for (stage, scheme, level, shard),
// creating it on first use. Past the cardinality limit it returns the
// shared overflow stage. Handles are cached by callers at session setup,
// not fetched per frame — this method takes a mutex. Returns nil on a
// nil profiler.
func (p *Profiler) Stage(stage, scheme, level, shard string) *Stage {
	if p == nil {
		return nil
	}
	k := Key{Stage: stage, Scheme: scheme, Level: level, Shard: shard}
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.series[k]; ok {
		return s
	}
	if len(p.series) >= p.limit {
		if p.overflow == nil {
			p.overflow = &Stage{key: Key{Stage: OverflowStage}}
		}
		return p.overflow
	}
	s := &Stage{key: k}
	p.series[k] = s
	return s
}

// keyLess orders keys canonically: stage, then scheme, level, shard.
func keyLess(a, b Key) bool {
	if a.Stage != b.Stage {
		return a.Stage < b.Stage
	}
	if a.Scheme != b.Scheme {
		return a.Scheme < b.Scheme
	}
	if a.Level != b.Level {
		return a.Level < b.Level
	}
	return a.Shard < b.Shard
}

// Series is one (key, cost vector) row of a snapshot.
type Series struct {
	Key
	Counts
}

// Snapshot is a point-in-time copy of a profiler: every non-zero series
// in canonical key order. Identically seeded sessions produce
// byte-identical snapshots regardless of worker count, because every
// accumulator is a commuting atomic add and the export order is total.
type Snapshot struct {
	Series []Series `json:"series"`
}

// Snapshot captures the profiler's current state. Returns an empty
// snapshot on a nil profiler. Zero-cost series (created but never added
// to) are elided so handle pre-registration does not change exports.
func (p *Profiler) Snapshot() *Snapshot {
	s := &Snapshot{Series: []Series{}}
	if p == nil {
		return s
	}
	p.mu.Lock()
	stages := make([]*Stage, 0, len(p.series)+1)
	for _, st := range p.series {
		stages = append(stages, st)
	}
	if p.overflow != nil {
		stages = append(stages, p.overflow)
	}
	p.mu.Unlock()
	for _, st := range stages {
		c := st.counts()
		if c.IsZero() {
			continue
		}
		s.Series = append(s.Series, Series{Key: st.key, Counts: c})
	}
	s.sortCanonical()
	return s
}

// sortCanonical imposes the canonical key order.
func (s *Snapshot) sortCanonical() {
	sort.Slice(s.Series, func(i, j int) bool { return keyLess(s.Series[i].Key, s.Series[j].Key) })
}

// frames renders the folded stack of a key, root to leaf:
// scheme;level;stage with shard appended when present. Separator and
// semicolon characters inside names are replaced with '_' to keep the
// folded format parseable.
func (k Key) frames() string {
	var b strings.Builder
	writeFrame := func(f, fallback string) {
		if f == "" {
			f = fallback
		}
		b.WriteString(strings.Map(func(r rune) rune {
			if r == ';' || r == ' ' || r == '\n' {
				return '_'
			}
			return r
		}, f))
	}
	writeFrame(k.Scheme, "(scheme)")
	b.WriteByte(';')
	writeFrame(k.Level, "(level)")
	b.WriteByte(';')
	writeFrame(k.Stage, "(stage)")
	if k.Shard != "" {
		b.WriteByte(';')
		writeFrame(k.Shard, "")
	}
	return b.String()
}
