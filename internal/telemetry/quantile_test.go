package telemetry

import (
	"math"
	"testing"
)

// A point mass at 5.0 lands in bucket (4, 8]; the quantile interpolates
// linearly across that bucket by rank.
func TestQuantilePointMass(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	for i := 0; i < 100; i++ {
		h.Observe(5.0)
	}
	cases := []struct{ q, want float64 }{
		{0, 4},   // rank 0 → bucket lower bound
		{0.5, 6}, // mid-bucket
		{0.95, 7.8},
		{1, 8}, // rank N → bucket upper bound
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// A bimodal distribution: 90 observations of 1.0 (bucket (0.5, 1]) and 10
// of 100.0 (bucket (64, 128]). p50 ranks into the low mode, p95/p99 into
// the high one.
func TestQuantileBimodalP50P95P99(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	for i := 0; i < 90; i++ {
		h.Observe(1.0)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100.0)
	}
	cases := []struct{ q, want float64 }{
		{0.50, 0.5 + 0.5*(50.0/90.0)}, // rank 50 of 90 in (0.5, 1]
		{0.95, 96},                    // rank 95: 5 of 10 into (64, 128]
		{0.99, 121.6},                 // rank 99: 9 of 10 into (64, 128]
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// Ranks landing in the unbounded last bucket return its finite lower
// bound instead of +Inf.
func TestQuantileInfBucket(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	h.Observe(math.MaxFloat64)
	want := math.Ldexp(1, 31) // lower bound of the last bucket
	if got := h.Quantile(1); got != want {
		t.Errorf("Quantile(1) = %v, want %v", got, want)
	}
	if got := h.Quantile(0.5); got != want {
		t.Errorf("Quantile(0.5) = %v, want %v", got, want)
	}
}

func TestQuantileNilAndEmpty(t *testing.T) {
	var h *Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("nil Quantile = %v, want 0", got)
	}
	r := New()
	if got := r.Histogram("empty").Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	if got := QuantileOf(nil, 0, 0.5); got != 0 {
		t.Errorf("QuantileOf(nil) = %v, want 0", got)
	}
}

// The snapshot-side QuantileOf must agree with the live histogram.
func TestQuantileSnapshotAgrees(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	for _, v := range []float64{0.001, 0.004, 0.004, 0.02, 0.02, 0.02, 0.5, 3, 3, 70} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hs := snap.Histograms[0]
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		if live, fromSnap := h.Quantile(q), hs.Quantile(q); live != fromSnap {
			t.Errorf("q=%v: live %v != snapshot %v", q, live, fromSnap)
		}
	}
}

func TestQuantileMonotonic(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 0.003)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile not monotonic: q=%v gave %v after %v", q, got, prev)
		}
		prev = got
	}
}

// HistogramBucketIndex must agree with where Observe puts values, so
// external sparse-bucket accumulators stay on the registry grid.
func TestHistogramBucketIndexMatchesObserve(t *testing.T) {
	for _, v := range []float64{0, -1, 1e-12, 0.5, 1, 1.5, 2, 5, 1024, math.MaxFloat64} {
		r := New()
		h := r.Histogram("x")
		h.Observe(v)
		bs := r.Snapshot().Histograms[0].Buckets
		if len(bs) != 1 {
			t.Fatalf("v=%v: %d buckets occupied", v, len(bs))
		}
		if got := HistogramBucketIndex(v); got != bs[0].Index {
			t.Errorf("HistogramBucketIndex(%v) = %d, Observe used %d", v, got, bs[0].Index)
		}
	}
}
