package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CounterSnapshot is one counter series at snapshot time.
type CounterSnapshot struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
}

// GaugeSnapshot is one gauge series at snapshot time. Weight is the
// number of session snapshots behind Value when the snapshot came out of
// Merge (absent or 0 means 1, a single session): carrying it lets a
// re-merge reconstruct each side's contribution and compute the true
// per-session mean, which is what makes Merge associative.
type GaugeSnapshot struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
	Weight int64   `json:"weight,omitempty"`
}

// Bucket is one occupied histogram bucket: Index identifies the log2
// bucket (upper bound HistogramBucketBound(Index)); Count is its
// occupancy. Only occupied buckets appear in snapshots, keeping them
// sparse. The bound itself is not stored because the last bucket's bound
// is +Inf, which JSON cannot encode.
type Bucket struct {
	Index int   `json:"i"`
	Count int64 `json:"n"`
}

// BucketExemplars is the exemplar reservoir of one occupied bucket,
// sorted by exemplarLess (largest value first).
type BucketExemplars struct {
	Bucket    int        `json:"i"`
	Exemplars []Exemplar `json:"ex"`
}

// HistogramSnapshot is one histogram series at snapshot time.
type HistogramSnapshot struct {
	Name      string            `json:"name"`
	Labels    []Label           `json:"labels,omitempty"`
	Count     int64             `json:"count"`
	Sum       float64           `json:"sum"`
	Buckets   []Bucket          `json:"buckets,omitempty"`
	Exemplars []BucketExemplars `json:"exemplars,omitempty"`
}

// HistogramBucketBound returns the inclusive upper bound of log2 bucket i,
// +Inf for the last bucket. Exported so snapshot consumers can recover the
// bucket grid.
func HistogramBucketBound(i int) float64 { return histBound(i) }

// Snapshot is a point-in-time copy of a registry: every series, sorted by
// name then label signature, plus the buffered event trace. Because all
// ordering is canonical and every timestamp is deterministic, two
// snapshots of identically seeded sessions marshal to byte-identical
// JSON.
type Snapshot struct {
	Counters      []CounterSnapshot   `json:"counters"`
	Gauges        []GaugeSnapshot     `json:"gauges"`
	Histograms    []HistogramSnapshot `json:"histograms"`
	Events        []Event             `json:"events,omitempty"`
	EventsTotal   int64               `json:"events_total"`
	EventsDropped int64               `json:"events_dropped"`
}

// exemplarSnapshot flattens per-bucket reservoirs into the canonical
// sorted-by-bucket form used in snapshots. Returns nil when empty.
func exemplarSnapshot(ex map[int][]Exemplar) []BucketExemplars {
	if len(ex) == 0 {
		return nil
	}
	out := make([]BucketExemplars, 0, len(ex))
	for i, list := range ex {
		out = append(out, BucketExemplars{Bucket: i, Exemplars: list})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Bucket < out[b].Bucket })
	return out
}

// labelSig renders labels for sorting and Prometheus label blocks.
func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "=" + l.Value
	}
	return strings.Join(parts, ",")
}

// Snapshot captures the registry's current state. Returns an empty
// snapshot on a nil registry. Concurrent writers may land increments
// during the capture; within one single-threaded session (the
// deterministic case) the snapshot is exact.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   []CounterSnapshot{},
		Gauges:     []GaugeSnapshot{},
		Histograms: []HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	for _, c := range counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: c.name, Labels: c.labels, Value: c.v.Load()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: g.name, Labels: g.labels, Value: g.Value()})
	}
	for _, h := range hists {
		hs := HistogramSnapshot{Name: h.name, Labels: h.labels, Count: h.count.Load(), Sum: h.Sum()}
		for i := 0; i < histBuckets; i++ {
			if n := h.buckets[i].Load(); n > 0 {
				hs.Buckets = append(hs.Buckets, Bucket{Index: i, Count: n})
			}
		}
		hs.Exemplars = exemplarSnapshot(h.exemplars())
		s.Histograms = append(s.Histograms, hs)
	}
	s.sortCanonical()
	// One locked read for the whole triple: reading total after a separate
	// events() call would let a concurrent Emit land in between, producing
	// a snapshot whose EventsTotal disagrees with its event list.
	s.Events, s.EventsTotal, s.EventsDropped = r.trace.events()
	return s
}

// sortCanonical imposes the canonical series order — by name, then label
// signature — that makes snapshot exports byte-comparable.
func (s *Snapshot) sortCanonical() {
	sort.Slice(s.Counters, func(i, j int) bool {
		if s.Counters[i].Name != s.Counters[j].Name {
			return s.Counters[i].Name < s.Counters[j].Name
		}
		return labelSig(s.Counters[i].Labels) < labelSig(s.Counters[j].Labels)
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		if s.Gauges[i].Name != s.Gauges[j].Name {
			return s.Gauges[i].Name < s.Gauges[j].Name
		}
		return labelSig(s.Gauges[i].Labels) < labelSig(s.Gauges[j].Labels)
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		if s.Histograms[i].Name != s.Histograms[j].Name {
			return s.Histograms[i].Name < s.Histograms[j].Name
		}
		return labelSig(s.Histograms[i].Labels) < labelSig(s.Histograms[j].Labels)
	})
}

// JSON marshals the snapshot as canonical indented JSON: fixed field
// order, sorted series, shortest-round-trip float formatting — the
// byte-identical export the determinism tests pin.
func (s *Snapshot) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// JSON is shorthand for Snapshot().JSON(). On a nil registry it returns
// the empty snapshot's JSON.
func (r *Registry) JSON() ([]byte, error) { return r.Snapshot().JSON() }

// promFloat formats a float for the text exposition: shortest form that
// round-trips, +Inf spelled the Prometheus way.
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promLabels renders a {k="v",...} block, with extra appended last (used
// for histogram le labels). Returns "" for no labels.
func promLabels(labels []Label, extra ...string) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		writeLabelPair(&b, l.Key, l.Value)
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if b.Len() > 1 {
			b.WriteByte(',')
		}
		writeLabelPair(&b, extra[i], extra[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// writeLabelPair emits k="escaped-v". The quotes are written manually:
// escapeLabel already produces exposition-format escapes, so feeding its
// output through %q would escape the escapes (\ → \\\\, " → \\").
func writeLabelPair(b *strings.Builder, k, v string) {
	b.WriteString(k)
	b.WriteString(`="`)
	b.WriteString(escapeLabel(v))
	b.WriteByte('"')
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers per family, series sorted
// canonically, histograms with cumulative le buckets.
func (s *Snapshot) WritePrometheus(w io.Writer, help map[string]string) error {
	seen := map[string]bool{}
	header := func(name, typ string) error {
		if seen[name] {
			return nil
		}
		seen[name] = true
		if h, ok := help[name]; ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, h); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
		return err
	}
	for _, c := range s.Counters {
		if err := header(c.Name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", c.Name, promLabels(c.Labels), c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := header(g.Name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", g.Name, promLabels(g.Labels), promFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if err := header(h.Name, "histogram"); err != nil {
			return err
		}
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			le := promFloat(HistogramBucketBound(b.Index))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.Name, promLabels(h.Labels, "le", le), cum); err != nil {
				return err
			}
		}
		if len(h.Buckets) == 0 || h.Buckets[len(h.Buckets)-1].Index != histBuckets-1 {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.Name, promLabels(h.Labels, "le", "+Inf"), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", h.Name, promLabels(h.Labels), promFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", h.Name, promLabels(h.Labels), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// omFamily strips the _total suffix counters carry by convention: in
// OpenMetrics the family is named without it and the sample re-adds it.
func omFamily(name string) string { return strings.TrimSuffix(name, "_total") }

// omExemplar renders the OpenMetrics exemplar suffix for a bucket line:
// " # {seq=\"..\",span=\"..\",shard=\"..\"} value timestamp". Span and
// shard labels are omitted when zero. The timestamp is the exemplar's
// simulation time, which keeps the exposition deterministic.
func omExemplar(ex Exemplar) string {
	var b strings.Builder
	b.WriteString(" # {")
	writeLabelPair(&b, "seq", strconv.FormatInt(ex.Seq, 10))
	if ex.Span != 0 {
		b.WriteByte(',')
		writeLabelPair(&b, "span", strconv.FormatInt(ex.Span, 10))
	}
	if ex.Shard != 0 {
		b.WriteByte(',')
		writeLabelPair(&b, "shard", strconv.Itoa(ex.Shard))
	}
	b.WriteString("} ")
	b.WriteString(promFloat(ex.Value))
	b.WriteByte(' ')
	b.WriteString(promFloat(ex.At))
	return b.String()
}

// WriteOpenMetrics writes the snapshot in the OpenMetrics text format:
// like the Prometheus 0.0.4 exposition but with counter families named
// without their _total suffix, histogram bucket lines carrying exemplars
// (each occupied bucket's top reservoir entry), and a terminating # EOF.
// Classic WritePrometheus stays exemplar-free because the 0.0.4 format
// has no exemplar syntax.
func (s *Snapshot) WriteOpenMetrics(w io.Writer, help map[string]string) error {
	seen := map[string]bool{}
	header := func(family, typ string) error {
		if seen[family] {
			return nil
		}
		seen[family] = true
		if h, ok := help[family]; ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", family, h); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, typ)
		return err
	}
	for _, c := range s.Counters {
		fam := omFamily(c.Name)
		if err := header(fam, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_total%s %d\n", fam, promLabels(c.Labels), c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := header(g.Name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", g.Name, promLabels(g.Labels), promFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if err := header(h.Name, "histogram"); err != nil {
			return err
		}
		exByBucket := make(map[int]Exemplar, len(h.Exemplars))
		for _, be := range h.Exemplars {
			if len(be.Exemplars) > 0 {
				exByBucket[be.Bucket] = be.Exemplars[0]
			}
		}
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			le := promFloat(HistogramBucketBound(b.Index))
			suffix := ""
			if ex, ok := exByBucket[b.Index]; ok {
				suffix = omExemplar(ex)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", h.Name, promLabels(h.Labels, "le", le), cum, suffix); err != nil {
				return err
			}
		}
		if len(h.Buckets) == 0 || h.Buckets[len(h.Buckets)-1].Index != histBuckets-1 {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.Name, promLabels(h.Labels, "le", "+Inf"), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", h.Name, promLabels(h.Labels), promFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", h.Name, promLabels(h.Labels), h.Count); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

// WriteOpenMetrics snapshots the registry and writes the OpenMetrics
// exposition. On a nil registry it writes only the # EOF terminator.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "# EOF\n")
		return err
	}
	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()
	return r.Snapshot().WriteOpenMetrics(w, help)
}

// WritePrometheus snapshots the registry and writes the text exposition.
// On a nil registry it writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()
	return r.Snapshot().WritePrometheus(w, help)
}

// ParseSnapshot loads a snapshot written as canonical JSON (Snapshot.JSON,
// a -metrics-out file or the /metrics.json endpoint).
func ParseSnapshot(b []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("telemetry snapshot: %w", err)
	}
	return &s, nil
}

// WriteExemplars renders the snapshot's histogram exemplars as a
// drill-down table: one block per exemplar-bearing histogram series, one
// row per reservoir entry with the observation value, the sim-clock
// timestamp and the frame breadcrumbs — sequence number, root span ID
// (jump into vlctrace) and merge shard — that identify the frame behind
// a bucket's tail. Series and rows keep the snapshot's canonical order,
// so the report is deterministic.
func (s *Snapshot) WriteExemplars(w io.Writer) error {
	any := false
	for _, h := range s.Histograms {
		if len(h.Exemplars) == 0 {
			continue
		}
		name := h.Name
		if sig := labelSig(h.Labels); sig != "" {
			name += "{" + sig + "}"
		}
		if any {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		any = true
		if _, err := fmt.Fprintf(w, "%s\n", name); err != nil {
			return err
		}
		for _, be := range h.Exemplars {
			bound := "+Inf"
			if b := HistogramBucketBound(be.Bucket); !math.IsInf(b, 1) {
				bound = strconv.FormatFloat(b, 'g', -1, 64)
			}
			for _, ex := range be.Exemplars {
				line := fmt.Sprintf("  le %-10s value=%s at=%s seq=%d",
					bound, promFloat(ex.Value), promFloat(ex.At), ex.Seq)
				if ex.Span != 0 {
					line += fmt.Sprintf(" span=%d", ex.Span)
				}
				if ex.Shard != 0 {
					line += fmt.Sprintf(" shard=%d", ex.Shard)
				}
				if _, err := fmt.Fprintln(w, line); err != nil {
					return err
				}
			}
		}
	}
	if !any {
		_, err := fmt.Fprintln(w, "no exemplars recorded (arm telemetry and rerun)")
		return err
	}
	return nil
}
