package telemetry

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestPromLabelEscaping pins the exposition-spec escapes: backslash
// becomes \\, double quote becomes \", newline becomes \n — exactly
// once. The old code fed escapeLabel output through %q, double-escaping
// every sequence.
func TestPromLabelEscaping(t *testing.T) {
	r := New()
	r.Counter("weird_total", "path", `a\b"c`+"\n"+`d`).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `weird_total{path="a\\b\"c\nd"} 1` + "\n"
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("exposition missing spec-escaped label:\n--- got ---\n%s--- want line ---\n%s", buf.String(), want)
	}
	for _, bad := range []string{`\\\\`, `\\"`} {
		if strings.Contains(buf.String(), bad) {
			t.Fatalf("exposition still double-escapes (%q present):\n%s", bad, buf.String())
		}
	}
}

// TestExemplarReservoirOrderInvariant attaches the same exemplar multiset
// in shuffled orders and asserts identical reservoirs: the reservoir is
// the top-K under a total order, so insertion order must not matter.
func TestExemplarReservoirOrderInvariant(t *testing.T) {
	exs := []Exemplar{
		{At: 1.0, Seq: 1},
		{At: 2.0, Seq: 2},
		{At: 3.0, Seq: 3},
		{At: 4.0, Seq: 4},
	}
	vals := []float64{1.1, 1.9, 1.5, 1.2} // all land in bucket 32 (le 2)
	build := func(order []int) []BucketExemplars {
		r := New()
		h := r.Histogram("lat")
		for _, i := range order {
			h.ObserveExemplar(vals[i], exs[i])
		}
		return r.Snapshot().Histograms[0].Exemplars
	}
	ref := build([]int{0, 1, 2, 3})
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		order := rng.Perm(len(exs))
		if got := build(order); !reflect.DeepEqual(got, ref) {
			t.Fatalf("order %v: reservoir %+v, want %+v", order, got, ref)
		}
	}
	// The reservoir keeps the top ExemplarsPerBucket values.
	if len(ref) != 1 || len(ref[0].Exemplars) != ExemplarsPerBucket {
		t.Fatalf("reservoir shape %+v, want 1 bucket with %d exemplars", ref, ExemplarsPerBucket)
	}
	if ref[0].Exemplars[0].Value != 1.9 || ref[0].Exemplars[1].Value != 1.5 {
		t.Fatalf("reservoir kept %+v, want values 1.9 then 1.5", ref[0].Exemplars)
	}
}

// TestAttachExemplarDoesNotCount verifies that AttachExemplar files an
// exemplar without changing count/sum/buckets — the contract that lets
// call sites attach context to values Observed elsewhere.
func TestAttachExemplarDoesNotCount(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	h.Observe(0.5)
	h.AttachExemplar(0.5, Exemplar{At: 1.25, Seq: 9, Span: 42})
	hs := r.Snapshot().Histograms[0]
	if hs.Count != 1 || hs.Sum != 0.5 {
		t.Fatalf("count=%d sum=%v after attach, want 1 and 0.5", hs.Count, hs.Sum)
	}
	if len(hs.Exemplars) != 1 || len(hs.Exemplars[0].Exemplars) != 1 {
		t.Fatalf("exemplars %+v, want one bucket with one exemplar", hs.Exemplars)
	}
	ex := hs.Exemplars[0].Exemplars[0]
	if ex.Value != 0.5 || ex.Seq != 9 || ex.Span != 42 || ex.At != 1.25 {
		t.Fatalf("exemplar %+v, want value 0.5 seq 9 span 42 at 1.25", ex)
	}
	if hs.Exemplars[0].Bucket != bucketIndex(0.5) {
		t.Fatalf("exemplar bucket %d, want %d", hs.Exemplars[0].Bucket, bucketIndex(0.5))
	}
}

// TestNilHistogramExemplarNoOp pins the nil-is-no-op contract for the new
// methods.
func TestNilHistogramExemplarNoOp(t *testing.T) {
	var h *Histogram
	h.ObserveExemplar(1, Exemplar{})
	h.AttachExemplar(1, Exemplar{})
	if h.exemplars() != nil {
		t.Fatal("nil histogram returned exemplars")
	}
}

// TestMergeExemplarsLowestShardWins merges snapshots whose reservoirs
// carry an identical (value, at, seq) exemplar and asserts the survivor
// comes from the lowest-indexed snapshot, with Shard recording the
// source index.
func TestMergeExemplarsLowestShardWins(t *testing.T) {
	mk := func(seq int64) *Snapshot {
		r := New()
		r.Histogram("lat", "rx", "0").ObserveExemplar(1.5, Exemplar{At: 2.0, Seq: seq, Span: seq * 10})
		return r.Snapshot()
	}
	// Same value/at/seq in both: the tie must resolve to snapshot 0.
	a, b := mk(7), mk(7)
	b.Histograms[0].Exemplars[0].Exemplars[0].Span = 999 // distinguish the copies
	m := Merge(a, b)
	if len(m.Histograms) != 1 {
		t.Fatalf("merged %d histograms, want 1", len(m.Histograms))
	}
	exs := m.Histograms[0].Exemplars
	if len(exs) != 1 || len(exs[0].Exemplars) != 2 {
		t.Fatalf("merged exemplars %+v, want one bucket with 2 entries", exs)
	}
	first := exs[0].Exemplars[0]
	if first.Shard != 0 || first.Span != 70 {
		t.Fatalf("tie broke to %+v, want shard 0 (span 70)", first)
	}
	if exs[0].Exemplars[1].Shard != 1 {
		t.Fatalf("second exemplar %+v, want shard 1", exs[0].Exemplars[1])
	}

	// Merge is order-deterministic: same inputs, same bytes.
	j1, err := Merge(mk(7), mk(8)).JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := Merge(mk(7), mk(8)).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("repeated merge produced different JSON")
	}
}

// TestOpenMetricsGolden pins the OpenMetrics exposition: counter family
// named without _total, bucket exemplar suffix, and the # EOF terminator.
func TestOpenMetricsGolden(t *testing.T) {
	r := New()
	r.Help("frames", "Frames by outcome.")
	r.Counter("frames_total", "outcome", "ok").Add(3)
	r.Gauge("goodput_bps").Set(100)
	h := r.Histogram("lat")
	h.ObserveExemplar(1.5, Exemplar{At: 2.25, Seq: 11, Span: 5})
	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP frames Frames by outcome.
# TYPE frames counter
frames_total{outcome="ok"} 3
# TYPE goodput_bps gauge
goodput_bps 100
# TYPE lat histogram
lat_bucket{le="2"} 1 # {seq="11",span="5"} 1.5 2.25
lat_bucket{le="+Inf"} 1
lat_sum 1.5
lat_count 1
# EOF
`
	if got := buf.String(); got != want {
		t.Fatalf("openmetrics mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHostileLabelExemplarExposition runs a label value containing every
// character the exposition format escapes — backslash, double quote,
// newline — through the histogram paths of BOTH expositions: the classic
// 0.0.4 bucket/sum/count lines and the OpenMetrics bucket line that also
// carries the `# {...}` exemplar suffix. The golden pins each escape
// exactly once and the suffix landing after the escaped label block, so a
// hostile label can never break a bucket line into two scrape lines or
// swallow the exemplar.
func TestHostileLabelExemplarExposition(t *testing.T) {
	hostile := `a\b"c` + "\n" + `d`
	r := New()
	h := r.Histogram("lat", "path", hostile)
	h.ObserveExemplar(1.5, Exemplar{At: 2.25, Seq: 11, Span: 5})

	var om bytes.Buffer
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	wantOM := `# TYPE lat histogram
lat_bucket{path="a\\b\"c\nd",le="2"} 1 # {seq="11",span="5"} 1.5 2.25
lat_bucket{path="a\\b\"c\nd",le="+Inf"} 1
lat_sum{path="a\\b\"c\nd"} 1.5
lat_count{path="a\\b\"c\nd"} 1
# EOF
`
	if got := om.String(); got != wantOM {
		t.Fatalf("openmetrics hostile-label mismatch:\n--- got ---\n%s--- want ---\n%s", got, wantOM)
	}

	var classic bytes.Buffer
	if err := r.WritePrometheus(&classic); err != nil {
		t.Fatal(err)
	}
	wantClassic := `# TYPE lat histogram
lat_bucket{path="a\\b\"c\nd",le="2"} 1
lat_bucket{path="a\\b\"c\nd",le="+Inf"} 1
lat_sum{path="a\\b\"c\nd"} 1.5
lat_count{path="a\\b\"c\nd"} 1
`
	if got := classic.String(); got != wantClassic {
		t.Fatalf("classic hostile-label mismatch:\n--- got ---\n%s--- want ---\n%s", got, wantClassic)
	}
	// Every non-comment exposition line must be a single line: a raw
	// newline leaking through a label value would split one.
	for _, body := range []string{om.String(), classic.String()} {
		for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
			if line == "" {
				t.Fatalf("hostile label split an exposition line:\n%s", body)
			}
		}
	}
}

// TestClassicExpositionHasNoExemplars keeps the 0.0.4 exposition pure:
// exemplar syntax is OpenMetrics-only.
func TestClassicExpositionHasNoExemplars(t *testing.T) {
	r := New()
	r.Histogram("lat").ObserveExemplar(1.5, Exemplar{Seq: 1})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "#  {") || strings.Contains(buf.String(), "} 1.5 ") {
		t.Fatalf("classic exposition leaked exemplar syntax:\n%s", buf.String())
	}
}

// TestParseSnapshotRoundTrip pins the JSON round trip behind the viewer
// commands: parse(JSON(snapshot)) re-marshals byte-identically,
// exemplars included.
func TestParseSnapshotRoundTrip(t *testing.T) {
	r := New()
	r.Counter("frames_total").Add(2)
	r.Histogram("lat").ObserveExemplar(1.5, Exemplar{At: 2.25, Seq: 11, Span: 5})
	snap := r.Snapshot()
	j, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSnapshot(j)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j, j2) {
		t.Fatalf("round trip not identity:\n--- first ---\n%s--- second ---\n%s", j, j2)
	}
	if _, err := ParseSnapshot([]byte("{broken")); err == nil {
		t.Fatal("malformed snapshot accepted")
	}
}

// TestWriteExemplarsGolden pins the drill-down report: one block per
// exemplar-bearing histogram (label signature included), one row per
// reservoir entry with bucket bound, value, sim time and the frame
// breadcrumbs; zero span/shard fields stay silent; exemplar-free
// snapshots say so instead of printing nothing.
func TestWriteExemplarsGolden(t *testing.T) {
	r := New()
	r.Histogram("plain") // occupied buckets but no exemplars -> skipped
	r.Histogram("plain").Observe(1)
	h := r.Histogram("lat", "scheme", "amppm")
	h.ObserveExemplar(1.5, Exemplar{At: 2.25, Seq: 11, Span: 5})
	h.ObserveExemplar(900, Exemplar{At: 3.5, Seq: 12})
	var buf bytes.Buffer
	if err := r.Snapshot().WriteExemplars(&buf); err != nil {
		t.Fatal(err)
	}
	want := `lat{scheme=amppm}
  le 2          value=1.5 at=2.25 seq=11 span=5
  le 1024       value=900 at=3.5 seq=12
`
	if got := buf.String(); got != want {
		t.Fatalf("exemplar report mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	buf.Reset()
	if err := New().Snapshot().WriteExemplars(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no exemplars") {
		t.Fatalf("empty report missing notice: %q", buf.String())
	}
}
