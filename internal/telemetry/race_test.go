package telemetry

import (
	"sync"
	"testing"
)

// TestSnapshotEmitRace is the regression test for the Snapshot data race:
// EventsTotal used to be read in a second lock acquisition after the
// event list, so a concurrent Emit could land in between and the snapshot
// would report a total that disagreed with its own event list (and, under
// the race detector, an unsynchronized read). The whole
// (events, total, dropped) triple must come from one locked read, making
// total == buffered + dropped an invariant of every snapshot. Run with
// -race.
func TestSnapshotEmitRace(t *testing.T) {
	r := New()
	r.SetTraceCapacity(64) // small ring so drops happen during the test
	const emitters, perEmitter = 4, 500

	var emitWG, snapWG sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < emitters; g++ {
		emitWG.Add(1)
		go func(g int) {
			defer emitWG.Done()
			for i := 0; i < perEmitter; i++ {
				r.Emit(float64(i), "frame/tx", int64(g))
			}
		}(g)
	}
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			if got := int64(len(s.Events)) + s.EventsDropped; got != s.EventsTotal {
				t.Errorf("inconsistent snapshot: %d buffered + %d dropped != total %d",
					len(s.Events), s.EventsDropped, s.EventsTotal)
				return
			}
		}
	}()
	emitWG.Wait()
	close(stop)
	snapWG.Wait()

	s := r.Snapshot()
	if s.EventsTotal != emitters*perEmitter {
		t.Fatalf("EventsTotal %d, want %d", s.EventsTotal, emitters*perEmitter)
	}
	if int64(len(s.Events))+s.EventsDropped != s.EventsTotal {
		t.Fatalf("final snapshot inconsistent: %d + %d != %d",
			len(s.Events), s.EventsDropped, s.EventsTotal)
	}
}
