package telemetry

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

// randomRegistry builds a registry from a seeded PCG: a random subset of
// counter, gauge and histogram series with random integer-valued
// observations. Integer values keep every float sum exact, so regrouping
// a merge cannot differ by rounding — the property under test is the
// merge algebra, not float associativity. Histograms use plain Observe
// (no exemplars): exemplar Shard stamps record merge-argument positions,
// which nested merges necessarily renumber.
func randomRegistry(rng *rand.Rand) *Registry {
	r := New()
	counters := []string{"frames_total", "timeouts_total", "delivered_bytes_total"}
	for _, name := range counters {
		if rng.IntN(4) > 0 {
			r.Counter(name).Add(rng.Int64N(10_000))
		}
		if rng.IntN(2) == 0 {
			r.Counter(name, "outcome", "bad").Add(rng.Int64N(100))
		}
	}
	for _, name := range []string{"goodput_bps", "dimming_level"} {
		if rng.IntN(4) > 0 {
			r.Gauge(name).Set(float64(rng.Int64N(100_000)))
		}
	}
	for _, name := range []string{"ack_latency", "airtime_slots"} {
		h := r.Histogram(name)
		for i := rng.IntN(8); i > 0; i-- {
			h.Observe(float64(rng.Int64N(1 << 20)))
		}
	}
	return r
}

// TestMergePropertyAssociative: for randomized registries a, b, c the
// canonical bytes of merge(a, merge(b, c)), merge(merge(a, b), c) and the
// flat merge(a, b, c) all agree — the property that lets fleet runners
// fold partial merges (per-worker, per-repeat) in any grouping without
// changing the published aggregate.
func TestMergePropertyAssociative(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewPCG(seed, 17))
		a := randomRegistry(rng).Snapshot()
		b := randomRegistry(rng).Snapshot()
		c := randomRegistry(rng).Snapshot()

		left, err := Merge(a, Merge(b, c)).JSON()
		if err != nil {
			t.Fatal(err)
		}
		right, err := Merge(Merge(a, b), c).JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(left, right) {
			t.Fatalf("seed %d: merge(a, merge(b,c)) != merge(merge(a,b), c)\nleft  %s\nright %s", seed, left, right)
		}
		flat, err := Merge(a, b, c).JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(left, flat) {
			t.Fatalf("seed %d: nested merge != flat merge(a,b,c)\nnested %s\nflat   %s", seed, left, flat)
		}
	}
}

// TestMergePropertyIdentity: merging one randomized snapshot reproduces
// it byte for byte, and the empty snapshot is a unit on either side.
func TestMergePropertyIdentity(t *testing.T) {
	empty := New().Snapshot()
	for seed := uint64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewPCG(seed, 23))
		s := randomRegistry(rng).Snapshot()
		want, err := s.JSON()
		if err != nil {
			t.Fatal(err)
		}
		for label, m := range map[string]*Snapshot{
			"merge(s)":        Merge(s),
			"merge(s, empty)": Merge(s, empty),
			"merge(empty, s)": Merge(empty, s),
		} {
			got, err := m.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d: %s is not the identity\nwant %s\ngot  %s", seed, label, want, got)
			}
		}
	}
}

// TestMergeWeightedReMerge pins the gauge weighting concretely: a
// two-session merge re-merged with a third session must yield the true
// three-session mean, not the mean of means, and record weight 3.
func TestMergeWeightedReMerge(t *testing.T) {
	snap := func(v float64) *Snapshot {
		r := New()
		r.Gauge("goodput_bps").Set(v)
		return r.Snapshot()
	}
	m := Merge(Merge(snap(10), snap(20)), snap(100))
	if len(m.Gauges) != 1 {
		t.Fatalf("gauges: %+v", m.Gauges)
	}
	g := m.Gauges[0]
	if want := (10.0 + 20 + 100) / 3; g.Value != want {
		t.Errorf("re-merged mean %v, want %v (mean of means would be %v)", g.Value, want, (15.0+100)/2)
	}
	if g.Weight != 3 {
		t.Errorf("weight %d, want 3", g.Weight)
	}
}
