package agg

import (
	"encoding/json"
	"io"

	"smartvlc/internal/telemetry"
)

// Point is one sealed fleet window (or a coarser rollup of Factor of
// them). Raw counts come first — they are exact sums over sessions and
// windows — and every rate below them is derived from the counts, never
// an average of averages.
type Point struct {
	Index   int64   `json:"index"`
	Start   float64 `json:"start"` // seconds, sim clock
	End     float64 `json:"end"`
	Partial bool    `json:"partial,omitempty"`
	// Sessions is the number of sessions contributing deltas (max over
	// constituents on rollup points).
	Sessions int `json:"sessions"`

	FramesTx       int64 `json:"frames_tx"`
	FramesOK       int64 `json:"frames_ok"`
	FramesBad      int64 `json:"frames_bad"`
	SymbolErrors   int64 `json:"symbol_errors"`
	Symbols        int64 `json:"symbols"`
	Timeouts       int64 `json:"timeouts"`
	Acks           int64 `json:"acks"`
	DeliveredBytes int64 `json:"delivered_bytes"`

	LevelSum float64 `json:"level_sum"`
	LevelN   int64   `json:"level_n"`

	AckCount   int64              `json:"ack_count"`
	AckSum     float64            `json:"ack_sum"`
	AckBuckets []telemetry.Bucket `json:"ack_buckets,omitempty"`

	// Derived rates (recomputed from the raw counts above).
	MeanLevel  float64 `json:"level_mean"`
	SER        float64 `json:"ser"`
	FrameLoss  float64 `json:"frame_loss"`
	BurnRate   float64 `json:"burn_rate"`
	GoodputBps float64 `json:"goodput_bps"`
	AckP50     float64 `json:"ack_p50"`
	AckP95     float64 `json:"ack_p95"`
	AckP99     float64 `json:"ack_p99"`
}

// fill copies the accumulated raw counts into the point and derives its
// rates. Goodput normalizes by the point's covered sim time, so rollup
// points report the same fleet bit rate their constituents did.
func (p *Point) fill(r *raw) {
	p.FramesTx = r.framesTx
	p.FramesOK = r.framesOK
	p.FramesBad = r.framesBad
	p.SymbolErrors = r.symbolErrors
	p.Symbols = r.symbols
	p.Timeouts = r.timeouts
	p.Acks = r.acks
	p.DeliveredBytes = r.deliveredBytes
	p.LevelSum = r.levelSum
	p.LevelN = r.levelN
	p.AckCount = r.ackCount
	p.AckSum = r.ackSum
	p.AckBuckets = sparseBuckets(&r.ackBuckets)

	if p.LevelN > 0 {
		p.MeanLevel = p.LevelSum / float64(p.LevelN)
	}
	if p.Symbols > 0 {
		p.SER = float64(p.SymbolErrors) / float64(p.Symbols)
	}
	if all := p.FramesOK + p.FramesBad; all > 0 {
		p.FrameLoss = float64(p.FramesBad) / float64(all)
	}
	if p.FramesTx > 0 {
		p.BurnRate = float64(p.Timeouts) / float64(p.FramesTx)
	}
	if width := p.End - p.Start; width > 0 {
		p.GoodputBps = float64(p.DeliveredBytes) * 8 / width
	}
	p.AckP50 = telemetry.QuantileOf(p.AckBuckets, p.AckCount, 0.50)
	p.AckP95 = telemetry.QuantileOf(p.AckBuckets, p.AckCount, 0.95)
	p.AckP99 = telemetry.QuantileOf(p.AckBuckets, p.AckCount, 0.99)
}

// Series is one pyramid resolution's retained points.
type Series struct {
	Resolution    int     `json:"resolution"`
	WindowSeconds float64 `json:"window_seconds"`
	Dropped       int64   `json:"dropped"`
	Points        []Point `json:"points"`
}

// SessionStat is one row of a worst-sessions table: a session's
// cumulative raw counts over its sealed windows plus the rates derived
// from them.
type SessionStat struct {
	Session int    `json:"session"`
	Seed    uint64 `json:"seed"`
	Scheme  string `json:"scheme,omitempty"`
	Windows int64  `json:"windows"`
	Done    bool   `json:"done,omitempty"`

	FramesTx       int64 `json:"frames_tx"`
	FramesOK       int64 `json:"frames_ok"`
	FramesBad      int64 `json:"frames_bad"`
	SymbolErrors   int64 `json:"symbol_errors"`
	Symbols        int64 `json:"symbols"`
	Timeouts       int64 `json:"timeouts"`
	DeliveredBytes int64 `json:"delivered_bytes"`

	SER        float64 `json:"ser"`
	BurnRate   float64 `json:"burn_rate"`
	AckP95     float64 `json:"ack_p95"`
	GoodputBps float64 `json:"goodput_bps"`
}

// Snapshot is a point-in-time export of an Aggregator — the live /fleet
// view and the final FleetResult.Agg artifact. All ordering is canonical
// (series by resolution, points by index, tables by rank), so two
// identically seeded fleets export byte-identical JSON for any worker
// count; see the package comment for what "point in time" means live.
type Snapshot struct {
	WindowSeconds float64  `json:"window_seconds"`
	Factor        int      `json:"factor"`
	Sessions      int      `json:"sessions"`
	Done          int      `json:"done"`
	SealedWindows int64    `json:"sealed_windows"`
	Series        []Series `json:"series"`

	// Worst-sessions tables, each ranked worst-first with the session
	// index as the total-order tie-break: symbol error rate, ARQ timeout
	// burn rate, and ACK latency p95. Sessions without the relevant
	// denominator are excluded from the respective table.
	TopSER  []SessionStat `json:"top_ser"`
	TopBurn []SessionStat `json:"top_burn"`
	TopAck  []SessionStat `json:"top_ack_p95"`
}

// Snapshot exports the aggregator's current state: every sealed point,
// the open (partial) rollup groups, and the worst-sessions tables over
// the sealed windows.
func (a *Aggregator) Snapshot() *Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := &Snapshot{
		WindowSeconds: a.cfg.WindowSeconds,
		Factor:        a.cfg.Factor,
		Sessions:      len(a.sessions),
		Done:          a.done,
		SealedWindows: a.sealed,
	}
	for k := range a.levels {
		lv := &a.levels[k]
		ser := Series{
			Resolution:    k,
			WindowSeconds: lv.width,
			Dropped:       lv.dropped,
			Points:        append([]Point(nil), lv.ring...),
		}
		if lv.openN > 0 {
			p := lv.open
			p.Partial = true
			r := lv.openRaw
			p.fill(&r)
			ser.Points = append(ser.Points, p)
		}
		s.Series = append(s.Series, ser)
	}

	stats := make([]SessionStat, len(a.sessions))
	for i, ss := range a.sessions {
		stats[i] = ss.stats(a.cfg.WindowSeconds)
	}
	s.TopSER = selectTop(stats, a.cfg.K,
		func(st *SessionStat) (float64, bool) { return st.SER, st.Symbols > 0 })
	s.TopBurn = selectTop(stats, a.cfg.K,
		func(st *SessionStat) (float64, bool) { return st.BurnRate, st.FramesTx > 0 })
	s.TopAck = selectTop(stats, a.cfg.K,
		func(st *SessionStat) (float64, bool) { return st.AckP95, st.AckP95 > 0 })
	return s
}

// JSON marshals the snapshot as canonical indented JSON — the
// byte-identical export the determinism tests pin.
func (s *Snapshot) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteNDJSON streams the snapshot as newline-delimited JSON: a header
// line, the finest series' points, the coarser series, then the
// worst-sessions tables one row per line. This is the /fleet/stream
// wire format.
func (s *Snapshot) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	type headerLine struct {
		Type          string  `json:"type"`
		WindowSeconds float64 `json:"window_seconds"`
		Factor        int     `json:"factor"`
		Sessions      int     `json:"sessions"`
		Done          int     `json:"done"`
		SealedWindows int64   `json:"sealed_windows"`
	}
	if err := enc.Encode(headerLine{"fleet", s.WindowSeconds, s.Factor, s.Sessions, s.Done, s.SealedWindows}); err != nil {
		return err
	}
	type pointLine struct {
		Type       string `json:"type"`
		Resolution int    `json:"resolution"`
		Point
	}
	for _, sr := range s.Series {
		for _, p := range sr.Points {
			if err := enc.Encode(pointLine{"point", sr.Resolution, p}); err != nil {
				return err
			}
		}
	}
	type worstLine struct {
		Type   string `json:"type"`
		Metric string `json:"metric"`
		Rank   int    `json:"rank"`
		SessionStat
	}
	tables := []struct {
		metric string
		rows   []SessionStat
	}{
		{"ser", s.TopSER},
		{"burn", s.TopBurn},
		{"ack_p95", s.TopAck},
	}
	for _, t := range tables {
		for i, row := range t.rows {
			if err := enc.Encode(worstLine{"worst", t.metric, i + 1, row}); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadSnapshot parses a canonical JSON snapshot (the Snapshot.JSON /
// smartvlc-sim -agg-out / GET /fleet format).
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}
