// Package agg is SmartVLC's streaming fleet aggregator: it folds
// per-session telemetry deltas into fleet-wide time-series rollups and a
// worst-sessions table while the fleet is still running.
//
// The determinism contract extends the rest of the observability stack
// to the live view. Each session flushes a delta snapshot
// (telemetry.Registry.Delta) at its own sim-clock window boundaries, so
// the flush schedule is a pure function of (config, seed) — never of
// goroutine scheduling. The aggregator seals fleet window w only once
// every session has delivered window w (or finished), and folds the
// deltas in config order. Sealed windows, the rollup pyramid built from
// them and the worst-session tables are therefore byte-identical for any
// worker count and GOMAXPROCS. What varies with scheduling is only *when*
// a live observer sees a window seal — never its contents.
//
// Aggregated state is bounded: deltas are reduced to fixed-size raw
// counts on arrival, each pyramid level retains at most Capacity points
// (evictions are counted in Series.Dropped), and per-session totals are
// one small struct per session.
package agg

import (
	"fmt"
	"sync"

	"smartvlc/internal/telemetry"
)

// Config parameterizes an Aggregator. The zero value selects the
// defaults noted per field.
type Config struct {
	// WindowSeconds is the aggregation window width on the simulation
	// clock (default 0.1). Sessions flush deltas at multiples of it;
	// attribution granularity is one window, so keep it comfortably above
	// a frame's airtime.
	WindowSeconds float64
	// Levels is the downsampling pyramid depth (default 3, max 6): level
	// k aggregates Factor^k windows per point.
	Levels int
	// Factor is the per-level downsampling factor (default 10).
	Factor int
	// Capacity bounds each level's retained points (default 512); older
	// points are dropped (and counted) once a level overflows.
	Capacity int
	// K bounds the worst-sessions tables (default 8).
	K int
}

func (c Config) withDefaults() Config {
	if c.WindowSeconds <= 0 {
		c.WindowSeconds = 0.1
	}
	if c.Levels <= 0 {
		c.Levels = 3
	}
	if c.Levels > 6 {
		c.Levels = 6
	}
	if c.Factor < 2 {
		c.Factor = 10
	}
	if c.Capacity <= 0 {
		c.Capacity = 512
	}
	if c.K <= 0 {
		c.K = 8
	}
	return c
}

// SessionMeta identifies one fleet session to the aggregator. Index is
// the config-order position (the fold order and the top-K tie-break);
// PayloadBytes recovers the symbol-count denominator of the paper's
// Eq. 3 SER bound from the per-frame metrics.
type SessionMeta struct {
	Index        int
	Seed         uint64
	Scheme       string
	PayloadBytes int
}

// raw is one window's (or one session's cumulative) reduced counts —
// everything a delta snapshot contributes to the fold, in fixed size.
type raw struct {
	framesTx, framesOK, framesBad int64
	symbolErrors, symbols         int64
	timeouts, acks                int64
	deliveredBytes                int64
	ackCount                      int64
	ackSum                        float64
	ackBuckets                    [64]int64
	levelSum                      float64
	levelN                        int64
}

func (r *raw) add(o *raw) {
	r.framesTx += o.framesTx
	r.framesOK += o.framesOK
	r.framesBad += o.framesBad
	r.symbolErrors += o.symbolErrors
	r.symbols += o.symbols
	r.timeouts += o.timeouts
	r.acks += o.acks
	r.deliveredBytes += o.deliveredBytes
	r.ackCount += o.ackCount
	r.ackSum += o.ackSum
	for i, n := range o.ackBuckets {
		r.ackBuckets[i] += n
	}
	r.levelSum += o.levelSum
	r.levelN += o.levelN
}

// sub subtracts o fieldwise — turning two cumulative reads into the
// increment between them. Gauge fields are subtracted too; the caller
// re-imposes current-value semantics on them (see Feed.flush).
func (r *raw) sub(o *raw) {
	r.framesTx -= o.framesTx
	r.framesOK -= o.framesOK
	r.framesBad -= o.framesBad
	r.symbolErrors -= o.symbolErrors
	r.symbols -= o.symbols
	r.timeouts -= o.timeouts
	r.acks -= o.acks
	r.deliveredBytes -= o.deliveredBytes
	r.ackCount -= o.ackCount
	r.ackSum -= o.ackSum
	for i, n := range o.ackBuckets {
		r.ackBuckets[i] -= n
	}
	r.levelSum -= o.levelSum
	r.levelN -= o.levelN
}

// extract reduces a delta snapshot to raw counts. Unknown series are
// ignored — the aggregator rolls up the link KPIs, the full delta stays
// available to callers that want more.
func extract(d *telemetry.Snapshot, meta SessionMeta) raw {
	var r raw
	for _, c := range d.Counters {
		switch c.Name {
		case "sim_frames_tx_total":
			r.framesTx += c.Value
		case "phy_rx_frames_total":
			for _, l := range c.Labels {
				if l.Key == "outcome" {
					switch l.Value {
					case "ok":
						r.framesOK += c.Value
					case "bad":
						r.framesBad += c.Value
					}
				}
			}
		case "phy_rx_symbol_errors_total":
			r.symbolErrors += c.Value
		case "mac_timeouts_total":
			r.timeouts += c.Value
		case "mac_acks_received_total":
			r.acks += c.Value
		case "sim_delivered_bytes_total":
			r.deliveredBytes += c.Value
		}
	}
	for _, h := range d.Histograms {
		if h.Name != "mac_ack_latency_seconds" {
			continue
		}
		r.ackCount += h.Count
		r.ackSum += h.Sum
		for _, b := range h.Buckets {
			if b.Index >= 0 && b.Index < len(r.ackBuckets) {
				r.ackBuckets[b.Index] += b.Count
			}
		}
	}
	for _, g := range d.Gauges {
		if g.Name == "sim_dimming_level" {
			r.levelSum += g.Value
			r.levelN++
		}
	}
	// Symbol-count proxy: decoded payload bytes of accepted frames — the
	// same denominator the health monitor uses for the Eq. 3 SER bound.
	r.symbols = r.framesOK * int64(meta.PayloadBytes)
	return r
}

// pending is one delivered-but-unsealed window contribution.
type pending struct {
	raw     raw
	partial bool
}

// sessionState is the aggregator's per-session bookkeeping: the windows
// delivered but not yet sealed fleet-wide, and the cumulative totals
// behind the worst-sessions tables.
type sessionState struct {
	meta    SessionMeta
	fed     bool
	next    int64 // next window index this session will deliver
	done    bool
	pending []pending
	cum     raw
	windows int64 // windows folded into cum
}

// level is one pyramid resolution: a bounded ring of sealed points plus
// the open accumulation of the next coarser group.
type level struct {
	width   float64 // seconds per point at this resolution
	ring    []Point
	dropped int64
	open    Point
	openRaw raw
	openN   int
}

// Aggregator folds per-session deltas into fleet windows. Create one
// with New, register every session with Feed, and read live or final
// state with Snapshot. All methods are safe for concurrent use — the
// sessions call their feeds from worker goroutines while an observer
// snapshots.
type Aggregator struct {
	mu       sync.Mutex
	cfg      Config
	sessions []*sessionState
	done     int
	sealed   int64 // fleet windows sealed so far (== next window to seal)
	levels   []level
}

// New returns an aggregator for a fleet of n sessions with the given
// config. Every one of the n sessions must be registered via Feed and
// must deliver windows (the sim run loop does this when Config.Watch is
// set) — a fleet window only seals once all sessions have reported it.
func New(cfg Config, n int) (*Aggregator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("agg: fleet of %d sessions", n)
	}
	cfg = cfg.withDefaults()
	a := &Aggregator{cfg: cfg, sessions: make([]*sessionState, n)}
	for i := range a.sessions {
		a.sessions[i] = &sessionState{}
	}
	w := cfg.WindowSeconds
	for k := 0; k < cfg.Levels; k++ {
		a.levels = append(a.levels, level{width: w})
		w *= float64(cfg.Factor)
	}
	return a, nil
}

// WindowSeconds returns the resolved aggregation window width.
func (a *Aggregator) WindowSeconds() float64 { return a.cfg.WindowSeconds }

// Feed registers session meta.Index and returns its delta feed. Each
// session index must be registered exactly once.
func (a *Aggregator) Feed(meta SessionMeta) (*Feed, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if meta.Index < 0 || meta.Index >= len(a.sessions) {
		return nil, fmt.Errorf("agg: session index %d out of range [0,%d)", meta.Index, len(a.sessions))
	}
	s := a.sessions[meta.Index]
	if s.fed {
		return nil, fmt.Errorf("agg: session %d registered twice", meta.Index)
	}
	s.fed = true
	s.meta = meta
	return &Feed{agg: a, meta: meta}, nil
}

// observe ingests one window contribution from a session. Sessions
// deliver windows consecutively, so the contribution is appended at the
// session's cursor; sealing advances as far as the slowest session
// allows.
func (a *Aggregator) observe(idx int, r raw, partial, done bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.sessions[idx]
	if s.done {
		return
	}
	s.pending = append(s.pending, pending{raw: r, partial: partial})
	s.next++
	if done {
		s.done = true
		a.done++
	}
	a.advance()
}

// advance seals every fleet window all sessions have reported. Folding
// runs in config (session index) order, which is what makes the sealed
// contents independent of worker scheduling.
func (a *Aggregator) advance() {
	for {
		w := a.sealed
		live := false
		for _, s := range a.sessions {
			if !s.done && s.next <= w {
				return
			}
			if len(s.pending) > 0 {
				live = true
			}
		}
		if !live {
			return // every remaining session finished; nothing left to seal
		}
		var sum raw
		p := Point{
			Index: w,
			Start: float64(w) * a.cfg.WindowSeconds,
			End:   float64(w+1) * a.cfg.WindowSeconds,
		}
		for _, s := range a.sessions {
			if len(s.pending) == 0 {
				continue // finished before this window
			}
			c := s.pending[0]
			s.pending = s.pending[1:]
			sum.add(&c.raw)
			s.cum.add(&c.raw)
			s.windows++
			p.Sessions++
			if c.partial {
				p.Partial = true
			}
		}
		p.fill(&sum)
		a.seal(0, p)
		a.sealed++
	}
}

// seal pushes a finished point into level k's ring and cascades it into
// the open accumulation of level k+1, sealing that level too whenever a
// full group of Factor points completes.
func (a *Aggregator) seal(k int, p Point) {
	lv := &a.levels[k]
	if len(lv.ring) == a.cfg.Capacity {
		copy(lv.ring, lv.ring[1:])
		lv.ring = lv.ring[:len(lv.ring)-1]
		lv.dropped++
	}
	lv.ring = append(lv.ring, p)
	if k+1 >= len(a.levels) {
		return
	}
	up := &a.levels[k+1]
	up.absorb(p, a.cfg.Factor)
	if up.openN == a.cfg.Factor {
		q := up.open
		q.fill(&up.openRaw)
		up.open, up.openRaw, up.openN = Point{}, raw{}, 0
		a.seal(k+1, q)
	}
	// Incomplete coarser groups stay open; Snapshot renders them as
	// Partial points without sealing, so the grid never commits a group
	// it might still extend.
}

// absorb folds one finer point into the level's open accumulation. Raw
// counts come back from the point's own raw fields, so the coarser point
// is an exact sum, never an average of averages.
func (lv *level) absorb(p Point, factor int) {
	if lv.openN == 0 {
		lv.open = Point{Index: p.Index / int64(factor), Start: p.Start, End: p.End}
	}
	if p.Start < lv.open.Start {
		lv.open.Start = p.Start
	}
	if p.End > lv.open.End {
		lv.open.End = p.End
	}
	lv.open.Sessions = max(lv.open.Sessions, p.Sessions)
	if p.Partial {
		lv.open.Partial = true
	}
	lv.openRaw.add(&raw{
		framesTx: p.FramesTx, framesOK: p.FramesOK, framesBad: p.FramesBad,
		symbolErrors: p.SymbolErrors, symbols: p.Symbols,
		timeouts: p.Timeouts, acks: p.Acks,
		deliveredBytes: p.DeliveredBytes,
		ackCount:       p.AckCount, ackSum: p.AckSum,
		levelSum: p.LevelSum, levelN: p.LevelN,
	})
	for _, b := range p.AckBuckets {
		if b.Index >= 0 && b.Index < len(lv.openRaw.ackBuckets) {
			lv.openRaw.ackBuckets[b.Index] += b.Count
		}
	}
	lv.openN++
}

// stats derives a session's current worst-session row from its
// cumulative totals. elapsed is the sim time covered by its folded
// windows.
func (s *sessionState) stats(windowSeconds float64) SessionStat {
	st := SessionStat{
		Session: s.meta.Index, Seed: s.meta.Seed, Scheme: s.meta.Scheme,
		Windows: s.windows, Done: s.done,
		FramesTx: s.cum.framesTx, FramesOK: s.cum.framesOK, FramesBad: s.cum.framesBad,
		SymbolErrors: s.cum.symbolErrors, Symbols: s.cum.symbols,
		Timeouts: s.cum.timeouts, DeliveredBytes: s.cum.deliveredBytes,
	}
	if s.cum.symbols > 0 {
		st.SER = float64(s.cum.symbolErrors) / float64(s.cum.symbols)
	}
	if s.cum.framesTx > 0 {
		st.BurnRate = float64(s.cum.timeouts) / float64(s.cum.framesTx)
	}
	if s.cum.ackCount > 0 {
		st.AckP95 = telemetry.QuantileOf(sparseBuckets(&s.cum.ackBuckets), s.cum.ackCount, 0.95)
	}
	if elapsed := float64(s.windows) * windowSeconds; elapsed > 0 {
		st.GoodputBps = float64(s.cum.deliveredBytes) * 8 / elapsed
	}
	return st
}

// sparseBuckets converts a dense bucket array to the sparse sorted form
// telemetry.QuantileOf consumes.
func sparseBuckets(b *[64]int64) []telemetry.Bucket {
	var out []telemetry.Bucket // nil when empty, so omitempty JSON round-trips
	for i, n := range b {
		if n > 0 {
			out = append(out, telemetry.Bucket{Index: i, Count: n})
		}
	}
	return out
}

// Feed is one session's delta channel into the aggregator. The sim run
// loop drives it: Tick at every frame boundary, Finish once at session
// end. A nil feed is the usual zero-cost no-op. Feeds are not safe for
// concurrent use — each belongs to exactly one session goroutine — but
// different feeds of one aggregator may run concurrently.
//
// Each flush contributes exactly what extracting a telemetry.Registry
// Delta would (see extract) — counter and histogram increments since the
// previous flush, the gauge's current value — but reads the KPI series
// directly through cached handles instead of materializing a full
// snapshot, so the per-window cost is a handful of atomic loads rather
// than a copy-and-sort of the whole registry.
type Feed struct {
	agg    *Aggregator
	meta   SessionMeta
	window int64
	prev   raw // cumulative series values at the previous flush
	done   bool

	// KPI series handles, looked up lazily without creating (a series
	// appears in the registry only on the session's first use of it, and
	// creating it here would perturb the canonical telemetry snapshot).
	framesTx, framesOK, framesBad *telemetry.Counter
	symbolErrors, timeouts, acks  *telemetry.Counter
	delivered                     *telemetry.Counter
	dim                           *telemetry.Gauge
	ackLatency                    *telemetry.Histogram
}

// Aggregator returns the aggregator this feed delivers to (nil on a nil
// feed) — how fleet runners reach the shared rollup behind the feeds
// they were handed.
func (f *Feed) Aggregator() *Aggregator {
	if f == nil {
		return nil
	}
	return f.agg
}

// WindowSeconds returns the feed's flush interval (0 on nil, letting
// callers branch cheaply).
func (f *Feed) WindowSeconds() float64 {
	if f == nil {
		return 0
	}
	return f.agg.cfg.WindowSeconds
}

// Tick flushes the session's delta once the sim clock crosses the next
// window boundary. Activity since the previous flush is attributed to
// the first unflushed window; boundaries skipped in one jump (idle
// stretches longer than a window) emit empty windows so the fleet grid
// never stalls. No-op on nil.
func (f *Feed) Tick(now float64, reg *telemetry.Registry) {
	if f == nil || f.done {
		return
	}
	w := f.agg.cfg.WindowSeconds
	if now < float64(f.window+1)*w {
		return
	}
	f.flush(reg, false, false)
	for now >= float64(f.window+1)*w {
		f.agg.observe(f.meta.Index, raw{}, false, false)
		f.window++
	}
}

// Finish flushes the final (partial) window and marks the session done,
// releasing the fleet windows it was holding open. No-op on nil; calling
// it twice is safe.
func (f *Feed) Finish(now float64, reg *telemetry.Registry) {
	if f == nil || f.done {
		return
	}
	f.flush(reg, true, true)
	f.done = true
}

func (f *Feed) flush(reg *telemetry.Registry, partial, done bool) {
	cur := f.read(reg)
	d := cur
	d.sub(&f.prev)
	f.prev = cur
	// Gauges carry the current level verbatim, never a difference —
	// matching the Registry.Delta contract the fold is defined against.
	d.levelSum, d.levelN = cur.levelSum, cur.levelN
	d.symbols = d.framesOK * int64(f.meta.PayloadBytes)
	f.agg.observe(f.meta.Index, d, partial, done)
	f.window++
}

// read loads the KPI series' current cumulative values. Handles still
// missing are re-looked-up, since a series only exists after the session
// first touches it; nil handles read as zero.
func (f *Feed) read(reg *telemetry.Registry) raw {
	if f.framesTx == nil {
		f.framesTx = reg.LookupCounter("sim_frames_tx_total")
	}
	if f.framesOK == nil {
		f.framesOK = reg.LookupCounter("phy_rx_frames_total", "outcome", "ok")
	}
	if f.framesBad == nil {
		f.framesBad = reg.LookupCounter("phy_rx_frames_total", "outcome", "bad")
	}
	if f.symbolErrors == nil {
		f.symbolErrors = reg.LookupCounter("phy_rx_symbol_errors_total")
	}
	if f.timeouts == nil {
		f.timeouts = reg.LookupCounter("mac_timeouts_total")
	}
	if f.acks == nil {
		f.acks = reg.LookupCounter("mac_acks_received_total")
	}
	if f.delivered == nil {
		f.delivered = reg.LookupCounter("sim_delivered_bytes_total")
	}
	if f.dim == nil {
		f.dim = reg.LookupGauge("sim_dimming_level")
	}
	if f.ackLatency == nil {
		f.ackLatency = reg.LookupHistogram("mac_ack_latency_seconds")
	}
	var r raw
	r.framesTx = f.framesTx.Value()
	r.framesOK = f.framesOK.Value()
	r.framesBad = f.framesBad.Value()
	r.symbolErrors = f.symbolErrors.Value()
	r.timeouts = f.timeouts.Value()
	r.acks = f.acks.Value()
	r.deliveredBytes = f.delivered.Value()
	r.ackCount = f.ackLatency.Count()
	r.ackSum = f.ackLatency.Sum()
	f.ackLatency.BucketCounts(&r.ackBuckets)
	if f.dim != nil {
		r.levelSum = f.dim.Value()
		r.levelN = 1
	}
	return r
}
