package agg

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"smartvlc/internal/telemetry"
)

// feedSession drives one session's feed through a scripted run: each
// step adds activity to the registry and ticks the feed at the given sim
// time. It mirrors what the sim run loop does when Config.Watch is set.
type step struct {
	now      float64
	framesTx int64
	framesOK int64
	symErrs  int64
	timeouts int64
	bytes    int64
	ackLat   float64
}

func drive(t *testing.T, f *Feed, reg *telemetry.Registry, steps []step, finish float64) {
	t.Helper()
	for _, st := range steps {
		if st.framesTx > 0 {
			reg.Counter("sim_frames_tx_total").Add(st.framesTx)
		}
		if st.framesOK > 0 {
			reg.Counter("phy_rx_frames_total", "outcome", "ok").Add(st.framesOK)
		}
		if st.symErrs > 0 {
			reg.Counter("phy_rx_symbol_errors_total").Add(st.symErrs)
		}
		if st.timeouts > 0 {
			reg.Counter("mac_timeouts_total").Add(st.timeouts)
		}
		if st.bytes > 0 {
			reg.Counter("sim_delivered_bytes_total").Add(st.bytes)
		}
		if st.ackLat > 0 {
			reg.Counter("mac_acks_received_total").Inc()
			reg.Histogram("mac_ack_latency_seconds").Observe(st.ackLat)
		}
		f.Tick(st.now, reg)
	}
	f.Finish(finish, reg)
}

// TestSealWaitsForSlowestSession pins the barrier semantics: a fleet
// window seals only once every session has delivered it, and the sealed
// point is the exact config-order sum of the contributions.
func TestSealWaitsForSlowestSession(t *testing.T) {
	a, err := New(Config{WindowSeconds: 0.1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	f0, err := a.Feed(SessionMeta{Index: 0, PayloadBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	f1, err := a.Feed(SessionMeta{Index: 1, PayloadBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	r0, r1 := telemetry.New(), telemetry.New()

	r0.Counter("sim_frames_tx_total").Add(5)
	f0.Tick(0.15, r0) // session 0 delivers window 0
	if s := a.Snapshot(); s.SealedWindows != 0 {
		t.Fatalf("sealed %d windows before session 1 reported", s.SealedWindows)
	}

	r1.Counter("sim_frames_tx_total").Add(3)
	f1.Tick(0.15, r1) // now both have window 0
	s := a.Snapshot()
	if s.SealedWindows != 1 {
		t.Fatalf("sealed = %d, want 1", s.SealedWindows)
	}
	p := s.Series[0].Points[0]
	if p.FramesTx != 8 || p.Sessions != 2 || p.Index != 0 {
		t.Fatalf("window 0 = %+v", p)
	}

	// A finished session stops holding windows open.
	f0.Finish(0.32, r0)
	r1.Counter("sim_frames_tx_total").Add(1)
	f1.Tick(0.35, r1)
	f1.Finish(0.38, r1)
	s = a.Snapshot()
	if s.Done != 2 {
		t.Fatalf("done = %d, want 2", s.Done)
	}
	var total int64
	for _, p := range s.Series[0].Points {
		total += p.FramesTx
	}
	if total != 9 {
		t.Fatalf("frames across sealed windows = %d, want 9", total)
	}
}

// TestPyramidExactRollup seals enough fine windows to cascade two levels
// and checks coarser points are exact sums with exact time bounds, and
// that incomplete groups surface as Partial points without sealing.
func TestPyramidExactRollup(t *testing.T) {
	a, err := New(Config{WindowSeconds: 0.1, Levels: 3, Factor: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := a.Feed(SessionMeta{Index: 0, PayloadBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()

	// Deliver 5 windows: one frame-tx per window boundary crossing.
	for w := 0; w < 5; w++ {
		reg.Counter("sim_frames_tx_total").Inc()
		f.Tick(float64(w)*0.1+0.15, reg)
	}
	s := a.Snapshot()
	if s.SealedWindows != 5 {
		t.Fatalf("sealed = %d, want 5", s.SealedWindows)
	}
	lv1 := s.Series[1]
	// Two full groups of 2 sealed, window 4 still open at level 1.
	if len(lv1.Points) != 3 {
		t.Fatalf("level 1 points = %d, want 2 sealed + 1 open", len(lv1.Points))
	}
	if lv1.Points[0].FramesTx != 2 || lv1.Points[0].Start != 0 || lv1.Points[0].End != 0.2 {
		t.Fatalf("level 1 point 0 = %+v", lv1.Points[0])
	}
	if !lv1.Points[2].Partial || lv1.Points[2].FramesTx != 1 {
		t.Fatalf("open level-1 group = %+v, want partial with 1 frame", lv1.Points[2])
	}
	lv2 := s.Series[2]
	// Window 4 is still open at level 1, so it has not cascaded up yet:
	// level 2 holds exactly the one sealed group of 4 windows.
	if len(lv2.Points) != 1 {
		t.Fatalf("level 2 points = %d, want 1 sealed", len(lv2.Points))
	}
	if lv2.Points[0].FramesTx != 4 || lv2.Points[0].End != 0.4 {
		t.Fatalf("level 2 point 0 = %+v", lv2.Points[0])
	}
}

// TestCapacityEviction fills a level past Capacity and checks the ring
// stays bounded with evictions counted.
func TestCapacityEviction(t *testing.T) {
	a, err := New(Config{WindowSeconds: 0.1, Levels: 1, Capacity: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := a.Feed(SessionMeta{Index: 0})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	for w := 0; w < 10; w++ {
		f.Tick(float64(w)*0.1+0.15, reg)
	}
	s := a.Snapshot()
	lv := s.Series[0]
	if len(lv.Points) != 4 || lv.Dropped != 6 {
		t.Fatalf("ring len %d dropped %d, want 4 and 6", len(lv.Points), lv.Dropped)
	}
	if lv.Points[0].Index != 6 || lv.Points[3].Index != 9 {
		t.Fatalf("ring holds windows %d..%d, want 6..9", lv.Points[0].Index, lv.Points[3].Index)
	}
}

// TestTopKOrdering pins the worst-first ranking, the session-index
// tie-break, the K bound, and the eligibility filters.
func TestTopKOrdering(t *testing.T) {
	stats := []SessionStat{
		{Session: 0, SER: 0.5, Symbols: 10, FramesTx: 1},
		{Session: 1, SER: 0.9, Symbols: 10, FramesTx: 1},
		{Session: 2, SER: 0.9, Symbols: 10, FramesTx: 1},
		{Session: 3, SER: 0.1, Symbols: 10, FramesTx: 1},
		{Session: 4, SER: 0.0, Symbols: 0, FramesTx: 1}, // ineligible: no symbols
	}
	got := selectTop(stats, 3, func(st *SessionStat) (float64, bool) { return st.SER, st.Symbols > 0 })
	want := []int{1, 2, 0} // 0.9 (tie → index asc), then 0.5
	if len(got) != 3 {
		t.Fatalf("top-K len = %d, want 3", len(got))
	}
	for i, w := range want {
		if got[i].Session != w {
			t.Fatalf("rank %d = session %d, want %d (full: %+v)", i, got[i].Session, w, got)
		}
	}
	// K larger than the eligible population returns everyone eligible.
	all := selectTop(stats, 10, func(st *SessionStat) (float64, bool) { return st.SER, st.Symbols > 0 })
	if len(all) != 4 {
		t.Fatalf("eligible rows = %d, want 4", len(all))
	}
}

// TestDeterministicAcrossArrivalOrder drives the same two sessions in
// opposite interleavings and checks the snapshots are byte-identical —
// the scheduling-independence contract.
func TestDeterministicAcrossArrivalOrder(t *testing.T) {
	script0 := []step{{now: 0.15, framesTx: 4, framesOK: 3, symErrs: 2, bytes: 96, ackLat: 0.01}, {now: 0.25, framesTx: 2, timeouts: 1}}
	script1 := []step{{now: 0.15, framesTx: 6, framesOK: 6, bytes: 192, ackLat: 0.02}, {now: 0.25, framesTx: 1, symErrs: 5, framesOK: 1, bytes: 32}}

	run := func(firstSession int) []byte {
		a, err := New(Config{WindowSeconds: 0.1, Factor: 2, K: 4}, 2)
		if err != nil {
			t.Fatal(err)
		}
		f0, err := a.Feed(SessionMeta{Index: 0, Seed: 11, Scheme: "am-ppm", PayloadBytes: 32})
		if err != nil {
			t.Fatal(err)
		}
		f1, err := a.Feed(SessionMeta{Index: 1, Seed: 12, Scheme: "am-ppm", PayloadBytes: 32})
		if err != nil {
			t.Fatal(err)
		}
		r0, r1 := telemetry.New(), telemetry.New()
		if firstSession == 0 {
			drive(t, f0, r0, script0, 0.3)
			drive(t, f1, r1, script1, 0.3)
		} else {
			drive(t, f1, r1, script1, 0.3)
			drive(t, f0, r0, script0, 0.3)
		}
		b, err := a.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(0), run(1)
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshot depends on arrival order:\n%s\nvs\n%s", a, b)
	}
}

// TestSnapshotRoundTrip pins the JSON and NDJSON exports: ReadSnapshot
// inverts JSON(), and the NDJSON stream carries a typed header, every
// point, and the ranked worst rows.
func TestSnapshotRoundTrip(t *testing.T) {
	a, err := New(Config{WindowSeconds: 0.1, Factor: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	f0, _ := a.Feed(SessionMeta{Index: 0, Seed: 1, PayloadBytes: 32})
	f1, _ := a.Feed(SessionMeta{Index: 1, Seed: 2, PayloadBytes: 32})
	r0, r1 := telemetry.New(), telemetry.New()
	drive(t, f0, r0, []step{{now: 0.15, framesTx: 3, framesOK: 2, symErrs: 1, bytes: 64, ackLat: 0.01}}, 0.2)
	drive(t, f1, r1, []step{{now: 0.15, framesTx: 2, framesOK: 2, bytes: 64, timeouts: 1}}, 0.2)

	s := a.Snapshot()
	b, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip diverged:\n%+v\nvs\n%+v", s, back)
	}

	var nd bytes.Buffer
	if err := s.WriteNDJSON(&nd); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(nd.String()), "\n")
	var header struct {
		Type     string `json:"type"`
		Sessions int    `json:"sessions"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatal(err)
	}
	if header.Type != "fleet" || header.Sessions != 2 {
		t.Fatalf("header = %+v", header)
	}
	kinds := map[string]int{}
	for _, ln := range lines {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(ln), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", ln, err)
		}
		kinds[probe.Type]++
	}
	var points int
	for _, sr := range s.Series {
		points += len(sr.Points)
	}
	if kinds["point"] != points {
		t.Fatalf("NDJSON has %d point lines, snapshot has %d points", kinds["point"], points)
	}
	if kinds["worst"] != len(s.TopSER)+len(s.TopBurn)+len(s.TopAck) {
		t.Fatalf("NDJSON worst lines = %d", kinds["worst"])
	}
}

// TestFeedValidation pins the registration errors and nil-feed no-ops.
func TestFeedValidation(t *testing.T) {
	if _, err := New(Config{}, 0); err == nil {
		t.Fatal("New accepted an empty fleet")
	}
	a, err := New(Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Feed(SessionMeta{Index: 1}); err == nil {
		t.Fatal("Feed accepted an out-of-range index")
	}
	if _, err := a.Feed(SessionMeta{Index: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Feed(SessionMeta{Index: 0}); err == nil {
		t.Fatal("Feed accepted a duplicate registration")
	}
	var nilFeed *Feed
	nilFeed.Tick(1, nil)   // must not panic
	nilFeed.Finish(1, nil) // must not panic
	if nilFeed.WindowSeconds() != 0 {
		t.Fatal("nil feed window != 0")
	}
}

// TestIdleGapEmitsEmptyWindows checks a session that jumps several
// window widths in one tick back-fills empty windows so the fleet grid
// keeps advancing.
func TestIdleGapEmitsEmptyWindows(t *testing.T) {
	a, err := New(Config{WindowSeconds: 0.1, Levels: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := a.Feed(SessionMeta{Index: 0})
	reg := telemetry.New()
	reg.Counter("sim_frames_tx_total").Add(2)
	f.Tick(0.55, reg) // crosses boundaries 0.1..0.5 in one jump
	s := a.Snapshot()
	if s.SealedWindows != 5 {
		t.Fatalf("sealed = %d, want 5", s.SealedWindows)
	}
	if s.Series[0].Points[0].FramesTx != 2 {
		t.Fatalf("activity not attributed to first unflushed window: %+v", s.Series[0].Points[0])
	}
	for _, p := range s.Series[0].Points[1:] {
		if p.FramesTx != 0 {
			t.Fatalf("back-filled window %d not empty: %+v", p.Index, p)
		}
	}
}

// TestFlushMatchesGenericDelta pins the Feed's direct-read fast path to
// the contract it is defined against: each flush must contribute exactly
// what extracting a generic telemetry.SnapshotDelta between the same two
// registry states would. Two aggregators consume the same scripted run —
// one through the feed, one through snapshot deltas fed straight to
// observe — and must publish byte-identical snapshots.
func TestFlushMatchesGenericDelta(t *testing.T) {
	steps := []step{
		{now: 0.04, framesTx: 3, framesOK: 2, symErrs: 5, bytes: 96, ackLat: 0.004},
		{now: 0.12, framesTx: 2, framesOK: 2, timeouts: 1, bytes: 64, ackLat: 0.02},
		{now: 0.31, framesTx: 4, framesOK: 3, symErrs: 1, bytes: 128, ackLat: 0.001},
	}
	meta := SessionMeta{Index: 0, Seed: 9, Scheme: "AMPPM", PayloadBytes: 32}

	fast, err := New(Config{WindowSeconds: 0.1, Levels: 2, Factor: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	feed, err := fast.Feed(meta)
	if err != nil {
		t.Fatal(err)
	}
	regA := telemetry.New()
	regA.Gauge("sim_dimming_level").Set(0.5)
	drive(t, feed, regA, steps, 0.35)

	// Reference path: full snapshots, generic deltas, extract.
	slow, err := New(Config{WindowSeconds: 0.1, Levels: 2, Factor: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := slow.Feed(meta); err != nil {
		t.Fatal(err)
	}
	regB := telemetry.New()
	regB.Gauge("sim_dimming_level").Set(0.5)
	var prev *telemetry.Snapshot
	window := int64(0)
	flush := func(partial, done bool) {
		cur := regB.Snapshot()
		slow.observe(meta.Index, extract(telemetry.SnapshotDelta(cur, prev), meta), partial, done)
		prev = cur
		window++
	}
	for _, st := range steps {
		if st.framesTx > 0 {
			regB.Counter("sim_frames_tx_total").Add(st.framesTx)
		}
		if st.framesOK > 0 {
			regB.Counter("phy_rx_frames_total", "outcome", "ok").Add(st.framesOK)
		}
		if st.symErrs > 0 {
			regB.Counter("phy_rx_symbol_errors_total").Add(st.symErrs)
		}
		if st.timeouts > 0 {
			regB.Counter("mac_timeouts_total").Add(st.timeouts)
		}
		if st.bytes > 0 {
			regB.Counter("sim_delivered_bytes_total").Add(st.bytes)
		}
		if st.ackLat > 0 {
			regB.Counter("mac_acks_received_total").Inc()
			regB.Histogram("mac_ack_latency_seconds").Observe(st.ackLat)
		}
		if st.now >= float64(window+1)*0.1 {
			flush(false, false)
			for st.now >= float64(window+1)*0.1 {
				slow.observe(meta.Index, raw{}, false, false)
				window++
			}
		}
	}
	flush(true, true)

	got, err := fast.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	want, err := slow.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fast-path aggregation diverged from generic-delta reference:\nfast %s\nref  %s", got, want)
	}
}
