package agg

// selectTop returns the K worst rows by the given score, ranked
// score-descending with the session index ascending as the total-order
// tie-break. score also reports whether the row is eligible (has the
// relevant denominator); ineligible rows never appear. Selection is
// bounded: one pass with an insertion-sorted K-slot buffer, so a 100k
// session fleet costs O(n·K) with no per-snapshot allocation beyond the
// result.
func selectTop(stats []SessionStat, k int, score func(*SessionStat) (float64, bool)) []SessionStat {
	out := make([]SessionStat, 0, k)
	worse := func(a, b *SessionStat) bool {
		sa, _ := score(a)
		sb, _ := score(b)
		if sa != sb {
			return sa > sb
		}
		return a.Session < b.Session
	}
	for i := range stats {
		st := &stats[i]
		if _, ok := score(st); !ok {
			continue
		}
		if len(out) == k {
			if !worse(st, &out[k-1]) {
				continue
			}
			out = out[:k-1]
		}
		pos := len(out)
		for pos > 0 && worse(st, &out[pos-1]) {
			pos--
		}
		out = append(out, SessionStat{})
		copy(out[pos+1:], out[pos:])
		out[pos] = *st
	}
	return out
}
