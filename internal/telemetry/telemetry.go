// Package telemetry is SmartVLC's deterministic observability layer: a
// race-safe metrics registry (atomic counters, gauges, log-bucketed
// histograms) plus a bounded ring-buffer event tracer, exportable as
// Prometheus text exposition or canonical JSON.
//
// Two rules distinguish it from a general-purpose metrics library:
//
//   - Determinism. Timestamps are simulation time (slot index × tslot) or
//     whatever clock the caller injects — never wall time. Two sessions
//     with identical config and seed therefore produce byte-identical
//     snapshots, which is asserted by tests and makes metrics diffable
//     across runs, machines and CI.
//
//   - Nil is the no-op default. Every method on a nil *Registry, *Counter,
//     *Gauge, *Histogram or *TxMetrics-style holder is a cheap no-op, so
//     hot paths carry instrument handles unconditionally and pay only a
//     nil check (zero allocations) when telemetry is off.
//
// Instrument handles are created once (Registry.Counter et al. memoize by
// name+labels) and then operated lock-free via atomics, so one registry
// can be hammered from concurrent sessions.
package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair attached to a metric series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Registry holds a set of metric series and an event trace. The zero
// value is not usable; call New. A nil *Registry is the no-op default:
// every method on it (and on the nil handles it returns) does nothing.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
	trace    trace
}

// DefaultTraceCapacity bounds the event ring buffer until SetTraceCapacity
// overrides it. Once full, the oldest events are dropped (and counted).
const DefaultTraceCapacity = 4096

// New returns an empty registry with the default trace capacity.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		help:     map[string]string{},
	}
}

// Help attaches Prometheus HELP text to a metric family name.
func (r *Registry) Help(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = text
	r.mu.Unlock()
}

// seriesKey builds the registry map key for a name and sorted labels.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0xff)
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// makeLabels converts variadic k1,v1,k2,v2 pairs into sorted labels.
// An odd trailing key is ignored.
func makeLabels(pairs []string) []Label {
	n := len(pairs) / 2
	if n == 0 {
		return nil
	}
	ls := make([]Label, 0, n)
	for i := 0; i+1 < len(pairs); i += 2 {
		ls = append(ls, Label{Key: pairs[i], Value: pairs[i+1]})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// Counter is a monotonically increasing integer series. The nil Counter
// is a no-op.
type Counter struct {
	v      atomic.Int64
	name   string
	labels []Label
}

// Counter returns the counter series for name and optional label pairs
// (k1, v1, k2, v2, ...), creating it on first use. Returns nil on a nil
// registry.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	ls := makeLabels(labelPairs)
	k := seriesKey(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{name: name, labels: ls}
		r.counters[k] = c
	}
	return c
}

// LookupCounter returns the counter series for name and label pairs only
// if it already exists — nil otherwise, and on a nil registry. Unlike
// Counter it never creates the series, so observers (the fleet
// aggregation feed, tests) can poll for a series the session may not
// have touched yet without perturbing the registry's canonical snapshot.
func (r *Registry) LookupCounter(name string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	k := seriesKey(name, makeLabels(labelPairs))
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[k]
}

// Add increments the counter by n. No-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 series holding the latest observed value. The nil
// Gauge is a no-op.
type Gauge struct {
	bits   atomic.Uint64
	name   string
	labels []Label
}

// Gauge returns the gauge series for name and optional label pairs,
// creating it on first use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	ls := makeLabels(labelPairs)
	k := seriesKey(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{name: name, labels: ls}
		r.gauges[k] = g
	}
	return g
}

// LookupGauge returns the gauge series only if it already exists — nil
// otherwise, and on a nil registry. Never creates the series.
func (r *Registry) LookupGauge(name string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	k := seriesKey(name, makeLabels(labelPairs))
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[k]
}

// Set stores v as the gauge's current value. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the fixed bucket count of every histogram: bucket i
// covers (2^(i-32), 2^(i-31)] so the base-2 grid spans ~4.7e-10 .. 2^31
// with bucket 0 absorbing everything smaller (including zero) and the
// last bucket everything larger.
const histBuckets = 64

// histBound returns bucket i's inclusive upper bound.
func histBound(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return math.Ldexp(1, i-31)
}

// Exemplar links one histogram observation back to the frame that caused
// it: the span ID of the frame's root span (0 when spans are off), the
// frame sequence number, and the simulation timestamp. A p99 bucket's
// exemplar is the jump-off point into the span tree or flight bundle of
// the offending frame. Shard is assigned by Merge (the position of the
// source snapshot in the merge order); per-session snapshots carry 0.
type Exemplar struct {
	Value float64 `json:"value"`
	At    float64 `json:"at"`
	Seq   int64   `json:"seq"`
	Span  int64   `json:"span,omitempty"`
	Shard int     `json:"shard,omitempty"`
}

// ExemplarsPerBucket bounds each bucket's exemplar reservoir. The
// reservoir keeps the top entries under exemplarLess's total order, so
// its final contents are independent of insertion order — the property
// that keeps snapshots byte-identical across worker counts.
const ExemplarsPerBucket = 2

// exemplarLess is the total order of exemplar reservoirs: larger values
// first (the tail of a bucket is what a drill-down wants), then earlier
// simulation time, then lower sequence, then lower shard — the
// lowest-shard-wins tiebreak of Merge.
func exemplarLess(a, b Exemplar) bool {
	if a.Value != b.Value {
		return a.Value > b.Value
	}
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	return a.Shard < b.Shard
}

// insertExemplar merges ex into a sorted reservoir, keeping at most
// ExemplarsPerBucket entries. Because the reservoir is the top-K of a
// multiset under a total order, the result does not depend on the order
// in which exemplars arrive.
func insertExemplar(list []Exemplar, ex Exemplar) []Exemplar {
	pos := len(list)
	for i, e := range list {
		if exemplarLess(ex, e) {
			pos = i
			break
		}
	}
	if pos >= ExemplarsPerBucket {
		return list
	}
	list = append(list, Exemplar{})
	copy(list[pos+1:], list[pos:])
	list[pos] = ex
	if len(list) > ExemplarsPerBucket {
		list = list[:ExemplarsPerBucket]
	}
	return list
}

// Histogram is a log2-bucketed distribution with atomic buckets, count
// and sum, plus an optional deterministic exemplar reservoir per bucket.
// The nil Histogram is a no-op.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
	name    string
	labels  []Label

	// exemplar reservoirs, lazily allocated on the first attach; Observe
	// never touches them, so the exemplar-free hot path stays lock-free.
	exMu sync.Mutex
	ex   map[int][]Exemplar
}

// Histogram returns the histogram series for name and optional label
// pairs, creating it on first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	ls := makeLabels(labelPairs)
	k := seriesKey(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{name: name, labels: ls}
		r.hists[k] = h
	}
	return h
}

// LookupHistogram returns the histogram series only if it already exists
// — nil otherwise, and on a nil registry. Never creates the series.
func (r *Registry) LookupHistogram(name string, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	k := seriesKey(name, makeLabels(labelPairs))
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hists[k]
}

// bucketIndex maps a value to its log2 bucket.
func bucketIndex(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	f, e := math.Frexp(v) // v = f·2^e, f ∈ [0.5, 1)
	ceil := e
	if f == 0.5 {
		ceil = e - 1
	}
	idx := ceil + 31
	if idx < 0 {
		return 0
	}
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// Observe records one value. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value and attaches an exemplar for it in
// the same bucket. No-op on nil.
func (h *Histogram) ObserveExemplar(v float64, ex Exemplar) {
	if h == nil {
		return
	}
	h.Observe(v)
	h.AttachExemplar(v, ex)
}

// AttachExemplar files ex into the reservoir of the bucket that v maps
// to, without recording an observation — for call sites where the value
// was already Observed elsewhere (e.g. inside the MAC) and only the
// caller knows the span/seq context. ex.Value is forced to v so the
// exemplar always matches its bucket. No-op on nil.
func (h *Histogram) AttachExemplar(v float64, ex Exemplar) {
	if h == nil {
		return
	}
	ex.Value = v
	i := bucketIndex(v)
	h.exMu.Lock()
	if h.ex == nil {
		h.ex = map[int][]Exemplar{}
	}
	h.ex[i] = insertExemplar(h.ex[i], ex)
	h.exMu.Unlock()
}

// exemplars returns a copy of the per-bucket reservoirs (nil when none).
func (h *Histogram) exemplars() map[int][]Exemplar {
	if h == nil {
		return nil
	}
	h.exMu.Lock()
	defer h.exMu.Unlock()
	if len(h.ex) == 0 {
		return nil
	}
	out := make(map[int][]Exemplar, len(h.ex))
	for i, list := range h.ex {
		out[i] = append([]Exemplar(nil), list...)
	}
	return out
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// NumHistogramBuckets is the fixed bucket count of every histogram,
// exported for callers that mirror the dense bucket grid (e.g. the fleet
// aggregation fold).
const NumHistogramBuckets = histBuckets

// BucketCounts copies the current bucket occupancies into dst, one slot
// per log2 bucket. No-op on nil (dst is left untouched).
func (h *Histogram) BucketCounts(dst *[NumHistogramBuckets]int64) {
	if h == nil {
		return
	}
	for i := range dst {
		dst[i] = h.buckets[i].Load()
	}
}
