package flight

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"smartvlc/internal/amppm"
	"smartvlc/internal/frame"
	"smartvlc/internal/optics"
	"smartvlc/internal/photon"
	"smartvlc/internal/phy"
	"smartvlc/internal/scheme"
	"smartvlc/internal/telemetry/span"
	"smartvlc/internal/telemetry/vlog"
)

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	r.Observe(Capture{Seq: 1})
	dir, err := r.Trigger(Meta{Reason: "decode"}, nil, nil, nil)
	if err != nil || dir != "" {
		t.Fatalf("nil Trigger = (%q, %v), want no-op", dir, err)
	}
	if r.Bundles() != nil || r.Triggers() != 0 {
		t.Fatal("nil recorder has state")
	}
	if r.Config() != (Config{}) {
		t.Fatal("nil recorder config not zero")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted empty Dir")
	}
	r, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := r.Config()
	if cfg.Depth != DefaultDepth || cfg.MaxBundles != DefaultMaxBundles {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

// TestRingAndBundleRoundTrip pins the capture ring (bounded, oldest
// evicted, deep-copied) and the bundle write/read round trip.
func TestRingAndBundleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, err := New(Config{Dir: dir, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	slots := []bool{true, false, true}
	samples := []int{4, 0, 7, 1}
	for i := 0; i < 5; i++ {
		r.Observe(Capture{Seq: int64(i), Start: float64(i), Level: 0.5, Threshold: 2,
			Slots: slots, Samples: samples})
	}
	// The recorder must own its data: mutating the caller's buffers after
	// Observe (as the session loop's recycling does) must not leak in.
	slots[0] = false
	samples[0] = -99

	meta := Meta{Reason: "decode", Class: "crc", Seq: 4, At: 4, Seed: 9,
		Scheme: "AMPPM", Level: 0.5, Threshold: 2, TSlotSeconds: 8e-6, PayloadBytes: 64}
	spans := &span.Snapshot{Spans: []span.Span{{ID: 1, Seq: 4, Name: "frame"}}, Total: 1}
	lg := vlog.New(vlog.Debug)
	for i := 0; i < 4; i++ {
		lg.Record(vlog.Record{At: float64(i), Level: vlog.Warn, Stage: "phy/decode",
			Msg: "crc mismatch", Seq: int64(i + 1)})
	}
	bdir, err := r.Trigger(meta, spans, nil, lg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(bdir) != "bundle-000-decode" {
		t.Fatalf("bundle dir %q", bdir)
	}

	b, err := ReadBundle(bdir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Meta != meta {
		t.Fatalf("meta round trip:\nwrote %+v\nread  %+v", meta, b.Meta)
	}
	if b.Spans == nil || len(b.Spans.Spans) != 1 || b.Spans.Spans[0].Name != "frame" {
		t.Fatalf("spans round trip: %+v", b.Spans)
	}
	if b.Metrics != nil {
		t.Fatal("metrics.json was omitted but read back non-nil")
	}
	if b.Logs == nil || len(b.Logs.Records) != 4 {
		t.Fatalf("logs round trip: %+v", b.Logs)
	}
	if got := b.Logs.Records[3]; got.Msg != "crc mismatch" || got.Seq != 4 || got.Level != vlog.Warn {
		t.Fatalf("last log record %+v", got)
	}
	if len(b.Captures) != 3 {
		t.Fatalf("ring kept %d captures, want depth 3", len(b.Captures))
	}
	for i, c := range b.Captures {
		if want := int64(i + 2); c.Seq != want {
			t.Fatalf("capture %d seq %d, want %d (oldest-first)", i, c.Seq, want)
		}
		if len(c.Slots) != 3 || !c.Slots[0] || len(c.Samples) != 4 || c.Samples[0] != 4 {
			t.Fatalf("capture %d data corrupted (deep copy broken?): %+v", i, c)
		}
	}
	if d := b.SlotSeconds - 8e-6; d > 1e-12 || d < -1e-12 {
		t.Fatalf("slot seconds %g", b.SlotSeconds)
	}
}

// TestLogTailTruncation pins the bundle log tail: only the last
// Config.LogTail records land in logs.ndjson, and the trailing record —
// the one explaining the trigger — survives.
func TestLogTailTruncation(t *testing.T) {
	r, err := New(Config{Dir: t.TempDir(), LogTail: 3})
	if err != nil {
		t.Fatal(err)
	}
	r.Observe(Capture{Seq: 0})
	lg := vlog.New(vlog.Debug)
	for i := 0; i < 10; i++ {
		lg.Record(vlog.Record{At: float64(i), Level: vlog.Info, Stage: "sim/session",
			Msg: "tick", Seq: int64(i)})
	}
	lg.Record(vlog.Record{At: 10, Level: vlog.Warn, Stage: "sim/flight",
		Msg: "flight bundle triggered: decode", Seq: 10})
	bdir, err := r.Trigger(Meta{Reason: "decode"}, nil, nil, lg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadBundle(bdir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Logs == nil || len(b.Logs.Records) != 3 {
		t.Fatalf("tail kept %d records, want 3", len(b.Logs.Records))
	}
	last := b.Logs.Records[2]
	if last.Stage != "sim/flight" || last.Seq != 10 {
		t.Fatalf("tail does not end with the trigger record: %+v", last)
	}
}

// TestMaxBundlesCap pins that triggers past the cap are counted but write
// nothing.
func TestMaxBundlesCap(t *testing.T) {
	dir := t.TempDir()
	r, err := New(Config{Dir: dir, MaxBundles: 2})
	if err != nil {
		t.Fatal(err)
	}
	r.Observe(Capture{Seq: 0})
	for i := 0; i < 5; i++ {
		if _, err := r.Trigger(Meta{Reason: "hunt"}, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Triggers(); got != 5 {
		t.Fatalf("triggers %d, want 5", got)
	}
	if got := r.Bundles(); len(got) != 2 {
		t.Fatalf("%d bundles written, want 2", len(got))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d directories on disk, want 2", len(entries))
	}
}

// TestReplayClasses pins the offline replay: a real transmitted frame
// replays to "ok", a noise-only window replays to "hunt" — both through
// the real receiver pipeline.
func TestReplayClasses(t *testing.T) {
	sch, err := scheme.NewAMPPM(amppm.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	codec, err := sch.CodecFor(0.5)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := frame.Build(codec, []byte("flight recorder replay test"))
	if err != nil {
		t.Fatal(err)
	}
	slots := frame.AppendIdle(nil, codec.Level(), 32)
	slots = append(slots, fs...)
	slots = frame.AppendIdle(slots, codec.Level(), 32)

	ch, err := photon.DefaultLinkBudget().ChannelAt(optics.Aligned(3, 0), 8000)
	if err != nil {
		t.Fatal(err)
	}
	link := phy.DefaultLink(ch)
	rng := rand.New(rand.NewPCG(1, 2))
	samples := link.Transmit(rng, slots)
	rx := phy.NewReceiver(ch, sch.Factory())

	r, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	r.Observe(Capture{Seq: 0, Level: 0.5, Threshold: rx.Threshold(), Slots: slots, Samples: samples})
	bdir, err := r.Trigger(Meta{Reason: "ser", Class: "ok", Scheme: "AMPPM",
		Level: 0.5, Threshold: rx.Threshold(), TSlotSeconds: 8e-6}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadBundle(bdir)
	if err != nil {
		t.Fatal(err)
	}
	class, err := b.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if class != "ok" {
		t.Fatalf("clean frame replayed to class %q, want ok", class)
	}

	// A window with no light at all never locks: class "hunt".
	class, err = b.ReplayCapture(Capture{Threshold: rx.Threshold(), Samples: make([]int, 4000)})
	if err != nil {
		t.Fatal(err)
	}
	if class != "hunt" {
		t.Fatalf("noise window replayed to class %q, want hunt", class)
	}
}

func TestReplayUnknownScheme(t *testing.T) {
	b := &Bundle{Meta: Meta{Scheme: "nope"}, Captures: []Capture{{}}}
	if _, err := b.Replay(); err == nil {
		t.Fatal("unknown scheme did not error")
	}
}
