package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"smartvlc/internal/amppm"
	"smartvlc/internal/phy"
	"smartvlc/internal/scheme"
	"smartvlc/internal/telemetry"
	"smartvlc/internal/telemetry/span"
	"smartvlc/internal/telemetry/vlog"
	"smartvlc/internal/vlcdump"
)

// Bundle is a flight-recorder bundle read back from disk.
type Bundle struct {
	// Dir is the bundle directory.
	Dir string
	// Meta is the decoded trigger metadata.
	Meta Meta
	// Spans is the span snapshot at trigger time (nil if absent).
	Spans *span.Snapshot
	// Metrics is the telemetry snapshot at trigger time (nil if absent).
	Metrics *telemetry.Snapshot
	// Logs is the structured log tail before the trigger (nil if absent).
	Logs *vlog.Snapshot
	// Captures is the frame ring, oldest first; the last capture is the
	// frame that fired the trigger.
	Captures []Capture
	// SlotSeconds is the slot duration from the capture header.
	SlotSeconds float64
}

// ReadBundle loads a bundle directory written by Recorder.Trigger.
func ReadBundle(dir string) (*Bundle, error) {
	b := &Bundle{Dir: dir}
	mb, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	if err := json.Unmarshal(mb, &b.Meta); err != nil {
		return nil, fmt.Errorf("flight: parse meta.json: %w", err)
	}
	if sb, err := os.ReadFile(filepath.Join(dir, "spans.json")); err == nil {
		var snap span.Snapshot
		if err := json.Unmarshal(sb, &snap); err != nil {
			return nil, fmt.Errorf("flight: parse spans.json: %w", err)
		}
		b.Spans = &snap
	}
	if tb, err := os.ReadFile(filepath.Join(dir, "metrics.json")); err == nil {
		var snap telemetry.Snapshot
		if err := json.Unmarshal(tb, &snap); err != nil {
			return nil, fmt.Errorf("flight: parse metrics.json: %w", err)
		}
		b.Metrics = &snap
	}
	if lf, err := os.Open(filepath.Join(dir, "logs.ndjson")); err == nil {
		snap, err := vlog.ParseNDJSON(lf)
		lf.Close()
		if err != nil {
			return nil, fmt.Errorf("flight: parse logs.ndjson: %w", err)
		}
		b.Logs = snap
	}
	f, err := os.Open(filepath.Join(dir, "capture.vlcd"))
	if err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	defer f.Close()
	r, err := vlcdump.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	b.SlotSeconds = r.SlotSeconds
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("flight: %w", err)
		}
		switch rec.Kind {
		case vlcdump.KindNote:
			var n captureNote
			if err := json.Unmarshal([]byte(rec.Note), &n); err != nil {
				return nil, fmt.Errorf("flight: parse capture note: %w", err)
			}
			b.Captures = append(b.Captures, Capture{
				Seq: n.Seq, Rx: n.Rx, Start: n.Start, Level: n.Level, Threshold: n.Threshold,
			})
		case vlcdump.KindSlots:
			if len(b.Captures) == 0 {
				return nil, fmt.Errorf("flight: slots record before capture note")
			}
			b.Captures[len(b.Captures)-1].Slots = rec.Slots
		case vlcdump.KindSamples:
			if len(b.Captures) == 0 {
				return nil, fmt.Errorf("flight: samples record before capture note")
			}
			b.Captures[len(b.Captures)-1].Samples = rec.Samples
		}
	}
	return b, nil
}

// schemeFor rebuilds a modulation scheme from its recorded name, using
// the paper's parameters (MPPM and OPPM run at N = 20 everywhere in this
// repository). A mismatched N surfaces as a descriptor error at replay —
// a different class than the live run, which the comparison flags.
func schemeFor(name string) (scheme.Scheme, error) {
	switch name {
	case "AMPPM":
		return scheme.NewAMPPM(amppm.DefaultConstraints())
	case "OOK-CT":
		return scheme.NewOOKCT(), nil
	case "VPPM":
		return scheme.NewVPPM(), nil
	case "MPPM":
		return scheme.NewMPPM(20)
	case "OPPM":
		return scheme.NewOPPM(20)
	default:
		return nil, fmt.Errorf("flight: unknown scheme %q", name)
	}
}

// Replay pushes the triggering capture's samples back through the real
// receiver pipeline — same threshold, same codec factory — and returns
// the decode error class it reproduces: one of the bounded decode classes,
// "ok" for a clean decode, or "hunt" when the preamble is never found.
// Comparing the result with Meta.Class verifies the bundle reproduces the
// live anomaly.
func (b *Bundle) Replay() (string, error) {
	if len(b.Captures) == 0 {
		return "", fmt.Errorf("flight: bundle has no captures")
	}
	c := b.Captures[len(b.Captures)-1]
	return b.ReplayCapture(c)
}

// ReplayCapture replays one capture through the receiver and classifies
// the outcome (see Replay).
func (b *Bundle) ReplayCapture(c Capture) (string, error) {
	sch, err := schemeFor(b.Meta.Scheme)
	if err != nil {
		return "", err
	}
	rx := phy.NewReceiverWithThreshold(c.Threshold, sch.Factory())
	tslot := b.SlotSeconds
	if tslot <= 0 {
		tslot = b.Meta.TSlotSeconds
	}
	var buf span.Buffer
	rx.SetSpanWindow(&buf, c.Start, tslot/float64(phy.Oversample))
	rx.Process(c.Samples)
	return DecodeClass(buf.Spans()), nil
}

// DecodeClass extracts the decode outcome from a receiver span sequence:
// the "class" attribute of the last "phy/decode" span, or "hunt" when the
// receiver never locked (no decode span at all). The session loop uses
// the same extraction at record time, so live and replayed classes are
// directly comparable.
func DecodeClass(spans []span.Span) string {
	class := "hunt"
	for _, s := range spans {
		if s.Name != "phy/decode" {
			continue
		}
		if c, ok := s.Attr("class"); ok {
			class = c
		}
	}
	return class
}
