// Package flight implements the anomaly flight recorder: a small ring of
// recent per-frame captures (transmitted slot waveform + received sample
// window) that is dumped to disk as a diagnostic bundle when the session
// loop observes an anomaly — a decode failure, a symbol-error burst, an
// ACK timeout or a preamble-hunt miss.
//
// A bundle directory holds everything needed to reproduce the decode
// offline:
//
//	bundle-<n>-<reason>/
//	  meta.json     trigger reason + class, seed, scheme, level, threshold
//	  spans.json    span snapshot at trigger time (causal frame trees)
//	  metrics.json  telemetry snapshot at trigger time
//	  logs.ndjson   tail of the structured log ring before the trigger
//	  capture.vlcd  ring of recent frames (vlcdump: note + slots + samples)
//
// ReadBundle and (*Bundle).Replay push the recorded samples back through
// the real receiver pipeline, so the decode error class observed live can
// be compared class-for-class with an offline replay (cmd/vlctrace does
// exactly that).
package flight

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"smartvlc/internal/telemetry"
	"smartvlc/internal/telemetry/span"
	"smartvlc/internal/telemetry/vlog"
	"smartvlc/internal/vlcdump"
)

// Defaults for Config zero fields.
const (
	// DefaultDepth is the capture-ring depth: how many recent frames a
	// bundle replays back from the trigger.
	DefaultDepth = 8
	// DefaultMaxBundles caps how many bundles one recorder writes, so a
	// systematically failing link cannot fill the disk.
	DefaultMaxBundles = 4
	// DefaultLogTail is how many log records a bundle's logs.ndjson keeps
	// (the last N before the trigger).
	DefaultLogTail = 256
)

// Config parameterizes a Recorder.
type Config struct {
	// Dir is the directory bundles are written into (created if absent).
	// Required.
	Dir string
	// Depth is the capture-ring depth (frames retained before a trigger).
	// Zero means DefaultDepth.
	Depth int
	// MaxBundles caps bundle writes per recorder; further triggers are
	// counted but dropped. Zero means DefaultMaxBundles.
	MaxBundles int
	// SERThreshold, when positive, also triggers a bundle on any frame
	// that decodes with at least this many symbol errors — the "almost
	// lost it" case worth a post-mortem even though CRC passed.
	SERThreshold int
	// LogTail bounds how many trailing log records a bundle's logs.ndjson
	// retains. Zero means DefaultLogTail.
	LogTail int
}

// Capture is one frame's raw I/O as seen by the session loop: the slot
// waveform handed to the transmitter and the sample window the receiver
// processed.
type Capture struct {
	// Seq is the MAC frame sequence number.
	Seq int64
	// Rx identifies the receiver in multi-receiver sessions (0 otherwise).
	Rx int
	// Start is the frame's transmit time in simulation seconds.
	Start float64
	// Level is the dimming level the frame was built for.
	Level float64
	// Threshold is the receiver's detection threshold for this frame.
	Threshold int
	// Slots is the transmitted slot waveform (frame + idle gap).
	Slots []bool
	// Samples is the receiver-side photon-count window.
	Samples []int
}

// captureNote is the JSON annotation preceding each capture's records in
// the bundle's vlcdump stream.
type captureNote struct {
	Seq       int64   `json:"seq"`
	Rx        int     `json:"rx"`
	Start     float64 `json:"start"`
	Level     float64 `json:"level"`
	Threshold int     `json:"threshold"`
}

// Meta describes why a bundle was written and how to rebuild the decode.
type Meta struct {
	// Reason is the trigger: "decode", "ser", "ack_timeout" or "hunt".
	Reason string `json:"reason"`
	// Class is the decode error class at trigger time ("ok" for triggers
	// that fire on successfully decoded frames, e.g. SER bursts).
	Class string `json:"class"`
	// Seq is the sequence number of the triggering frame.
	Seq int64 `json:"seq"`
	// At is the trigger time in simulation seconds.
	At float64 `json:"at"`
	// Seed is the session RNG seed.
	Seed uint64 `json:"seed"`
	// Scheme is the modulation scheme name (scheme.Scheme.Name()).
	Scheme string `json:"scheme"`
	// Level is the dimming level of the triggering frame.
	Level float64 `json:"level"`
	// Threshold is the receiver detection threshold at trigger time.
	Threshold int `json:"threshold"`
	// TSlotSeconds is the slot duration (8 µs for the prototype).
	TSlotSeconds float64 `json:"tslot_seconds"`
	// PayloadBytes is the session's frame payload size.
	PayloadBytes int `json:"payload_bytes"`
}

// Recorder buffers recent captures and writes trigger bundles. All
// methods are nil-safe no-ops on a nil receiver, mirroring the rest of
// the telemetry layer.
type Recorder struct {
	cfg Config

	mu        sync.Mutex
	ring      []Capture
	next      int
	triggered int64 // triggers seen, including ones dropped by MaxBundles
	bundles   []string
}

// New validates the configuration, creates the bundle directory and
// returns a recorder.
func New(cfg Config) (*Recorder, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("flight: Config.Dir is required")
	}
	if cfg.Depth <= 0 {
		cfg.Depth = DefaultDepth
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = DefaultMaxBundles
	}
	if cfg.LogTail <= 0 {
		cfg.LogTail = DefaultLogTail
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	return &Recorder{cfg: cfg}, nil
}

// Config returns the recorder's effective configuration (defaults
// applied). The zero Config is returned on a nil recorder.
func (r *Recorder) Config() Config {
	if r == nil {
		return Config{}
	}
	return r.cfg
}

// Observe pushes one frame capture into the ring, deep-copying the slot
// and sample slices — the session loop recycles its buffers after every
// frame, so the capture must own its data.
func (r *Recorder) Observe(c Capture) {
	if r == nil {
		return
	}
	c.Slots = append([]bool(nil), c.Slots...)
	c.Samples = append([]int(nil), c.Samples...)
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) < r.cfg.Depth {
		r.ring = append(r.ring, c)
		r.next = len(r.ring) % r.cfg.Depth
		return
	}
	r.ring[r.next] = c
	r.next = (r.next + 1) % r.cfg.Depth
}

// captures returns the ring contents oldest-first. Caller holds r.mu.
func (r *Recorder) captures() []Capture {
	if len(r.ring) < r.cfg.Depth {
		return append([]Capture(nil), r.ring...)
	}
	out := append([]Capture(nil), r.ring[r.next:]...)
	return append(out, r.ring[:r.next]...)
}

// Trigger writes a diagnostic bundle for an observed anomaly and returns
// the bundle directory. Once MaxBundles bundles exist the trigger is
// still counted but no bundle is written (dir == ""). spans, metrics and
// logs may be nil; the corresponding files are then omitted. Only the
// last Config.LogTail records of logs land in logs.ndjson — the tail of
// the story leading up to the trigger.
func (r *Recorder) Trigger(meta Meta, spans *span.Snapshot, metrics *telemetry.Snapshot, logs *vlog.Snapshot) (string, error) {
	if r == nil {
		return "", nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.triggered++
	if len(r.bundles) >= r.cfg.MaxBundles {
		return "", nil
	}
	dir := filepath.Join(r.cfg.Dir, fmt.Sprintf("bundle-%03d-%s", len(r.bundles), meta.Reason))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("flight: %w", err)
	}
	mb, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return "", fmt.Errorf("flight: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), append(mb, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("flight: %w", err)
	}
	if spans != nil {
		sb, err := spans.JSON()
		if err != nil {
			return "", fmt.Errorf("flight: %w", err)
		}
		if err := os.WriteFile(filepath.Join(dir, "spans.json"), sb, 0o644); err != nil {
			return "", fmt.Errorf("flight: %w", err)
		}
	}
	if metrics != nil {
		tb, err := metrics.JSON()
		if err != nil {
			return "", fmt.Errorf("flight: %w", err)
		}
		if err := os.WriteFile(filepath.Join(dir, "metrics.json"), tb, 0o644); err != nil {
			return "", fmt.Errorf("flight: %w", err)
		}
	}
	if logs != nil {
		lb, err := logs.Tail(r.cfg.LogTail).NDJSON()
		if err != nil {
			return "", fmt.Errorf("flight: %w", err)
		}
		if err := os.WriteFile(filepath.Join(dir, "logs.ndjson"), lb, 0o644); err != nil {
			return "", fmt.Errorf("flight: %w", err)
		}
	}
	if err := r.writeCapture(filepath.Join(dir, "capture.vlcd"), meta.TSlotSeconds); err != nil {
		return "", err
	}
	r.bundles = append(r.bundles, dir)
	return dir, nil
}

// writeCapture dumps the ring to a vlcdump stream: per capture one note
// (the JSON header), one slots record and one samples record. Caller
// holds r.mu.
func (r *Recorder) writeCapture(path string, slotSeconds float64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	defer f.Close()
	w, err := vlcdump.NewWriter(f, slotSeconds)
	if err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	for _, c := range r.captures() {
		note, err := json.Marshal(captureNote{Seq: c.Seq, Rx: c.Rx, Start: c.Start, Level: c.Level, Threshold: c.Threshold})
		if err != nil {
			return fmt.Errorf("flight: %w", err)
		}
		if err := w.WriteNote(string(note)); err != nil {
			return fmt.Errorf("flight: %w", err)
		}
		if err := w.WriteSlots(c.Slots); err != nil {
			return fmt.Errorf("flight: %w", err)
		}
		if err := w.WriteSamples(c.Samples); err != nil {
			return fmt.Errorf("flight: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	return f.Close()
}

// Bundles returns the directories written so far, oldest first.
func (r *Recorder) Bundles() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.bundles...)
}

// Triggers returns how many anomalies fired, including triggers dropped
// once MaxBundles was reached.
func (r *Recorder) Triggers() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.triggered
}
