package amppm

import (
	"math"
	"testing"
	"testing/quick"

	"smartvlc/internal/mppm"
)

func TestSuperSymbolArithmetic(t *testing.T) {
	// Paper §4.1.2 example: one S(10,0.1) plus one S(10,0.2) gives a
	// super-symbol of 20 slots at level 0.15.
	s := SuperSymbol{S1: mppm.S(10, 0.1), M1: 1, S2: mppm.S(10, 0.2), M2: 1}
	if s.Slots() != 20 {
		t.Fatalf("Slots = %d", s.Slots())
	}
	if got := s.Level(); math.Abs(got-0.15) > 1e-12 {
		t.Fatalf("Level = %v", got)
	}
	// Three S(10,0.2) plus one S(10,0.1): level (3·2+1)/40 = 0.175.
	s = SuperSymbol{S1: mppm.S(10, 0.1), M1: 1, S2: mppm.S(10, 0.2), M2: 3}
	if got := s.Level(); math.Abs(got-0.175) > 1e-12 {
		t.Fatalf("Level = %v", got)
	}
	if s.Bits() != mppm.S(10, 0.1).Bits()+3*mppm.S(10, 0.2).Bits() {
		t.Fatalf("Bits = %d", s.Bits())
	}
}

func TestSuperSymbolSingle(t *testing.T) {
	s := SuperSymbol{S1: mppm.S(20, 0.5), M1: 2}
	if s.Slots() != 40 || s.Level() != 0.5 {
		t.Fatalf("single-pattern super: %v slots, level %v", s.Slots(), s.Level())
	}
	if s.M2 != 0 {
		t.Fatal("expected M2 = 0")
	}
}

func TestSuperSymbolSERDoesNotGrowWithMultiplexing(t *testing.T) {
	// Multiplexing must leave the per-symbol SER untouched; the combined
	// probability of at least one symbol error grows, but per-symbol error
	// equals the constituent SER.
	p1, p2 := 9e-5, 8e-5
	a := mppm.S(10, 0.1)
	single := a.SER(p1, p2)
	s := SuperSymbol{S1: a, M1: 4}
	combined := s.SER(p1, p2)
	want := 1 - math.Pow(1-single, 4)
	if math.Abs(combined-want) > 1e-12 {
		t.Fatalf("SER = %v want %v", combined, want)
	}
}

func TestSuperSymbolValid(t *testing.T) {
	good := SuperSymbol{S1: mppm.S(10, 0.5), M1: 1}
	if !good.Valid() {
		t.Fatal("expected valid")
	}
	bad := []SuperSymbol{
		{S1: mppm.Pattern{N: 0, K: 0}, M1: 1},
		{S1: mppm.S(10, 0.5), M1: 0},
		{S1: mppm.S(10, 0.5), M1: 256},
		{S1: mppm.S(10, 0.5), M1: 1, S2: mppm.Pattern{N: 5, K: 9}, M2: 1},
		{S1: mppm.S(10, 0.5), M1: 1, M2: -1},
	}
	for i, s := range bad {
		if s.Valid() {
			t.Errorf("case %d should be invalid: %v", i, s)
		}
	}
}

func TestSelectExactVertex(t *testing.T) {
	tab := defaultTable(t)
	v := tab.Vertices()[len(tab.Vertices())/2]
	s, err := tab.Select(v.Level)
	if err != nil {
		t.Fatal(err)
	}
	if s.M2 != 0 || s.S1 != v.Pattern {
		t.Fatalf("Select(vertex level) = %v, want single %v", s, v.Pattern)
	}
}

func TestSelectAchievesFineResolution(t *testing.T) {
	tab := defaultTable(t)
	// Paper §6.1: Nmax = 500 slots, so dimming resolution ≈ 1/500 = 0.002.
	// Demand 0.004 worst case over a fine sweep of [0.05, 0.95].
	worst := 0.0
	for i := 0; i <= 900; i++ {
		level := 0.05 + 0.9*float64(i)/900
		s, err := tab.Select(level)
		if err != nil {
			t.Fatalf("Select(%v): %v", level, err)
		}
		if s.Slots() > tab.Constraints().NMax() {
			t.Fatalf("Select(%v) = %v exceeds Nmax", level, s)
		}
		if e := math.Abs(s.Level() - level); e > worst {
			worst = e
		}
	}
	if worst > 0.004 {
		t.Fatalf("worst dimming error %v, want ≤ 0.004", worst)
	}
}

func TestSelectRateOnEnvelopeChord(t *testing.T) {
	tab := defaultTable(t)
	// The selected super-symbol's rate should be close to the envelope
	// interpolation at the achieved level (slightly below is possible due
	// to integer multiplicities).
	for _, level := range []float64{0.1, 0.18, 0.33, 0.5, 0.62, 0.7, 0.9} {
		s, err := tab.Select(level)
		if err != nil {
			t.Fatal(err)
		}
		env := tab.EnvelopeRateAt(s.Level())
		if s.NormalizedRate() > env+1e-9 {
			t.Fatalf("level %v: super rate %v above envelope %v", level, s.NormalizedRate(), env)
		}
		if s.NormalizedRate() < env-0.02 {
			t.Fatalf("level %v: super rate %v far below envelope %v", level, s.NormalizedRate(), env)
		}
	}
}

func TestSelectBeatsFixedMPPM(t *testing.T) {
	// AMPPM must dominate the paper's MPPM baseline (fixed N=20) at every
	// one of the 17 evaluation levels.
	tab := defaultTable(t)
	for i := 0; i <= 16; i++ {
		level := 0.1 + 0.05*float64(i)
		s, err := tab.Select(level)
		if err != nil {
			t.Fatal(err)
		}
		k := int(math.Round(level * 20))
		baseline := (mppm.Pattern{N: 20, K: k}).NormalizedRate()
		if s.NormalizedRate() < baseline-1e-9 {
			t.Fatalf("level %v: AMPPM %v below MPPM20 %v", level, s.NormalizedRate(), baseline)
		}
	}
}

func TestSelectOutOfRange(t *testing.T) {
	tab := defaultTable(t)
	if _, err := tab.Select(-0.01); err == nil {
		t.Fatal("expected error below range")
	}
	if _, err := tab.Select(1.01); err == nil {
		t.Fatal("expected error above range")
	}
}

func TestSelectPropertyFlickerSafe(t *testing.T) {
	tab := defaultTable(t)
	cons := tab.Constraints()
	f := func(raw uint16) bool {
		level := float64(raw) / math.MaxUint16
		s, err := tab.Select(level)
		if err != nil {
			return false
		}
		return s.RepetitionHz(cons.SlotSeconds) >= cons.FlickerHz-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDescriptorRoundTrip(t *testing.T) {
	tab := defaultTable(t)
	for _, level := range []float64{0.1, 0.15, 0.175, 0.5, 0.524, 0.77, 0.9} {
		s, err := tab.Select(level)
		if err != nil {
			t.Fatal(err)
		}
		d, err := tab.Descriptor(s)
		if err != nil {
			t.Fatalf("Descriptor(%v): %v", s, err)
		}
		got, err := tab.ParseDescriptor(d)
		if err != nil {
			t.Fatalf("ParseDescriptor: %v", err)
		}
		if got != s {
			t.Fatalf("round trip: got %v want %v", got, s)
		}
	}
}

func TestDescriptorRejectsForeignPattern(t *testing.T) {
	tab := defaultTable(t)
	s := SuperSymbol{S1: mppm.Pattern{N: 63, K: 31}, M1: 1} // not a vertex
	if _, err := tab.Descriptor(s); err == nil {
		t.Fatal("expected error for non-vertex pattern")
	}
}

func TestParseDescriptorRejectsGarbage(t *testing.T) {
	tab := defaultTable(t)
	bad := [][DescriptorSize]byte{
		{255, 1, 0, 0}, // vertex index out of range
		{0, 0, 0, 0},   // m1 = 0
	}
	for _, d := range bad {
		if _, err := tab.ParseDescriptor(d); err == nil {
			t.Errorf("ParseDescriptor(%v) should fail", d)
		}
	}
}

func TestResolutionReporting(t *testing.T) {
	tab := defaultTable(t)
	if r := tab.Resolution(200); r > 0.004 {
		t.Fatalf("Resolution = %v", r)
	}
}
