// Package amppm implements Adaptive Multiple Pulse Position Modulation,
// the core contribution of the SmartVLC paper (CoNEXT'17).
//
// AMPPM starts from MPPM symbol patterns S(N, l) and adds three mechanisms:
//
//  1. Constraint pruning (paper §4.2, steps 1–2): the super-symbol length is
//     capped at Nmax = f_tx/f_th so its repetition rate stays above the
//     Type-I flicker threshold, and patterns whose symbol error rate
//     (paper Eq. 3) exceeds a bound are discarded.
//  2. Envelope construction (step 3): among the surviving (dimming level,
//     normalized rate) points, a slope walk from the peak near l = 0.5
//     finds the upper concave envelope — the best achievable rate at every
//     dimming level.
//  3. Super-symbol multiplexing (step 4): any target level between two
//     envelope vertices is reached by concatenating m1 symbols of the left
//     vertex pattern with m2 symbols of the right vertex pattern, giving
//     semi-continuous dimming without increasing the symbol error rate
//     (each constituent symbol is decoded independently).
package amppm

import (
	"fmt"
)

// Constraints holds the link parameters that determine which symbol
// patterns AMPPM may use. The defaults mirror the paper's prototype.
type Constraints struct {
	// SlotSeconds is tslot, the minimum ON/OFF switching period of the LED
	// driver. The paper's Philips LED limits this to 8 µs (f_tx = 125 kHz).
	SlotSeconds float64

	// FlickerHz is f_th, the minimum super-symbol repetition frequency that
	// avoids Type-I flicker. The paper's user study found 250 Hz safe
	// (IEEE 802.15.7 specifies 200 Hz).
	FlickerHz float64

	// P1 is the probability of decoding an OFF slot incorrectly, P2 the
	// probability of decoding an ON slot incorrectly. The paper measures
	// 9e-5 and 8e-5 at its worst-case operating point (3.6 m, bright
	// ambient).
	P1, P2 float64

	// SERBound is the symbol-error-rate upper bound used to prune patterns
	// (paper §4.2 step 2). The paper states 0.001 but the patterns it
	// actually deploys (MPPM N=20, envelope N up to 21, measured AMPPM
	// rates at l=0.1) require a looser bound under Eq. 3; see DESIGN.md.
	SERBound float64

	// MinN and MaxN bound the per-symbol slot count searched. MaxN is
	// additionally clamped by the SER bound and by Nmax.
	MinN, MaxN int
}

// DefaultConstraints returns the paper's prototype parameters.
func DefaultConstraints() Constraints {
	return Constraints{
		SlotSeconds: 8e-6,
		FlickerHz:   250,
		P1:          9e-5,
		P2:          8e-5,
		SERBound:    5e-3,
		MinN:        2,
		MaxN:        64,
	}
}

// Validate checks the constraints for internal consistency.
func (c Constraints) Validate() error {
	switch {
	case c.SlotSeconds <= 0:
		return fmt.Errorf("amppm: SlotSeconds %v must be positive", c.SlotSeconds)
	case c.FlickerHz <= 0:
		return fmt.Errorf("amppm: FlickerHz %v must be positive", c.FlickerHz)
	case c.P1 < 0 || c.P1 >= 1 || c.P2 < 0 || c.P2 >= 1:
		return fmt.Errorf("amppm: slot error probabilities P1=%v P2=%v outside [0,1)", c.P1, c.P2)
	case c.SERBound <= 0 || c.SERBound > 1:
		return fmt.Errorf("amppm: SERBound %v outside (0,1]", c.SERBound)
	case c.MinN < 1 || c.MaxN < c.MinN:
		return fmt.Errorf("amppm: invalid N range [%d, %d]", c.MinN, c.MaxN)
	}
	if c.NMax() < c.MinN {
		return fmt.Errorf("amppm: flicker cap Nmax=%d below MinN=%d", c.NMax(), c.MinN)
	}
	return nil
}

// TxHz returns the slot rate f_tx = 1/tslot.
func (c Constraints) TxHz() float64 { return 1 / c.SlotSeconds }

// NMax returns the flicker-driven cap on super-symbol length in slots,
// Nmax = f_tx / f_th (paper Eq. 4). With the default parameters this is
// 125000/250 = 500 slots.
func (c Constraints) NMax() int {
	return int(c.TxHz() / c.FlickerHz)
}
