package amppm

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"smartvlc/internal/mppm"
)

// Vertex is one point of the throughput envelope: a symbol pattern together
// with its exact dimming level and normalized data rate (bits per slot).
type Vertex struct {
	Pattern mppm.Pattern
	Level   float64
	Rate    float64
}

// Table holds the outcome of AMPPM's offline planning stage for one set of
// link constraints: the SER-pruned pattern set and the throughput envelope.
// Both transmitter and receiver derive the same Table from the shared link
// constants, which lets the frame header refer to envelope vertices by
// index. A Table is immutable after construction and safe for concurrent
// use.
type Table struct {
	cons     Constraints
	patterns []mppm.Pattern // all valid data-bearing patterns after pruning
	vertices []Vertex       // envelope, strictly increasing in Level

	// selCache memoizes Select results by target level: the session loop
	// asks for the same quantized dimming levels over and over, and the
	// multiplicity search is far more expensive than a map hit. Bounded
	// by selCacheMax so adversarial level streams cannot grow it without
	// limit.
	selCache sync.Map // float64 → SuperSymbol
	selSize  atomic.Int64
}

const selCacheMax = 1 << 14

// tableCache memoizes NewTable by its Constraints: every scheme instance
// and every experiment point derives the identical planning table from
// the shared link constants, and the SER enumeration plus slope walk is
// by far the most expensive part of constructing one. Tables are
// immutable, so sharing one instance across callers is safe.
var tableCache sync.Map // Constraints → *Table

// NewTable runs steps 1–3 of paper §4.2: computes Nmax, prunes patterns by
// the SER bound, and builds the envelope with the slope walk. Results are
// memoized per Constraints value; callers receive a shared immutable
// Table. Safe for concurrent use.
func NewTable(cons Constraints) (*Table, error) {
	if v, ok := tableCache.Load(cons); ok {
		tableCacheHits.Inc()
		return v.(*Table), nil
	}
	tableCacheMisses.Inc()
	start := time.Now()
	t, err := buildTable(cons)
	if err != nil {
		return nil, err
	}
	tableBuildMicros.Observe(float64(time.Since(start).Microseconds()))
	v, _ := tableCache.LoadOrStore(cons, t)
	return v.(*Table), nil
}

// buildTable is the uncached planning stage.
func buildTable(cons Constraints) (*Table, error) {
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	t := &Table{cons: cons}
	t.patterns = enumerate(cons)
	if len(t.patterns) == 0 {
		return nil, fmt.Errorf("amppm: no pattern satisfies SER bound %v", cons.SERBound)
	}
	points := bestPerLevel(t.patterns)
	// Zero-rate anchors let super-symbols interpolate all the way to the
	// dimming extremes: an all-OFF or all-ON filler slot carries no data
	// but is a legitimate multiplexing partner.
	points = addAnchor(points, Vertex{Pattern: mppm.Pattern{N: 1, K: 0}, Level: 0, Rate: 0})
	points = addAnchor(points, Vertex{Pattern: mppm.Pattern{N: 1, K: 1}, Level: 1, Rate: 0})
	sort.Slice(points, func(i, j int) bool { return points[i].Level < points[j].Level })
	t.vertices = slopeWalk(points)
	return t, nil
}

// enumerate lists every data-bearing pattern S(N,K) allowed by the
// constraints: MinN ≤ N ≤ min(MaxN, Nmax, mppm.MaxStreamN), 1 ≤ K ≤ N−1,
// SER ≤ bound. The mppm.MaxStreamN clamp keeps every pattern encodable by
// the streaming (uint64) codec.
func enumerate(cons Constraints) []mppm.Pattern {
	maxN := cons.MaxN
	if nm := cons.NMax(); nm < maxN {
		maxN = nm
	}
	if maxN > mppm.MaxStreamN {
		maxN = mppm.MaxStreamN
	}
	// Counted capacity: the candidate grid has exactly sum_{n}(n-1) cells,
	// so one allocation holds every surviving pattern.
	cells := 0
	for n := cons.MinN; n <= maxN; n++ {
		cells += n - 1
	}
	if cells < 0 {
		cells = 0
	}
	out := make([]mppm.Pattern, 0, cells)
	for n := cons.MinN; n <= maxN; n++ {
		for k := 1; k < n; k++ {
			if mppm.SER(n, k, cons.P1, cons.P2) > cons.SERBound {
				continue
			}
			p := mppm.Pattern{N: n, K: k}
			if p.Bits() == 0 {
				continue
			}
			out = append(out, p)
		}
	}
	return out
}

// bestPerLevel reduces the pattern set to one point per distinct dimming
// level: the highest normalized rate, with ties going to the shortest
// symbol (lower latency, finer super-symbol granularity).
func bestPerLevel(patterns []mppm.Pattern) []Vertex {
	type key struct{ num, den int }
	best := make(map[key]Vertex, len(patterns))
	for _, p := range patterns {
		g := gcd(p.K, p.N)
		k := key{p.K / g, p.N / g}
		v := Vertex{Pattern: p, Level: p.DimmingLevel(), Rate: p.NormalizedRate()}
		cur, ok := best[k]
		if !ok || v.Rate > cur.Rate || (v.Rate == cur.Rate && p.N < cur.Pattern.N) {
			best[k] = v
		}
	}
	out := make([]Vertex, 0, len(best))
	for _, v := range best {
		out = append(out, v)
	}
	return out
}

func addAnchor(points []Vertex, a Vertex) []Vertex {
	for _, p := range points {
		if p.Level == a.Level {
			return points // a data-bearing pattern at the extreme wins
		}
	}
	return append(points, a)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// slopeWalk implements paper §4.2 step 3: starting from the highest-rate
// point (the one nearest l = 0.5 on ties), repeatedly hop to the candidate
// with the gentlest descent — maximum slope going right, minimum slope
// going left — until the dimming extremes are reached. The result is the
// upper concave envelope of the point set. points must be sorted by Level
// with distinct levels.
func slopeWalk(points []Vertex) []Vertex {
	peak := 0
	for i, p := range points {
		cur := points[peak]
		switch {
		case p.Rate > cur.Rate:
			peak = i
		case p.Rate == cur.Rate && abs(p.Level-0.5) < abs(cur.Level-0.5):
			peak = i
		case p.Rate == cur.Rate && abs(p.Level-0.5) == abs(cur.Level-0.5) && p.Level > cur.Level:
			// Exact symmetric tie (e.g. S(21,10) vs S(21,11)): the paper's
			// Fig. 9 starts from the brighter twin, S(21, 0.524).
			peak = i
		}
	}

	// At each hop choose the gentlest descent; on slope ties keep the
	// nearest point, so every point lying on the hull becomes a vertex —
	// collinear vertices are desirable interpolation partners because they
	// allow shorter super-symbols.
	right := make([]Vertex, 0, len(points)-1-peak)
	for i := peak; i < len(points)-1; {
		cur := points[i]
		next := -1
		bestSlope := 0.0
		for j := i + 1; j < len(points); j++ {
			s := (points[j].Rate - cur.Rate) / (points[j].Level - cur.Level)
			if next == -1 || s > bestSlope+1e-12 {
				next, bestSlope = j, s
			}
		}
		right = append(right, points[next])
		i = next
	}

	left := make([]Vertex, 0, peak)
	for i := peak; i > 0; {
		cur := points[i]
		next := -1
		bestSlope := 0.0
		for j := i - 1; j >= 0; j-- {
			s := (points[j].Rate - cur.Rate) / (points[j].Level - cur.Level)
			if next == -1 || s < bestSlope-1e-12 {
				next, bestSlope = j, s
			}
		}
		left = append(left, points[next])
		i = next
	}

	env := make([]Vertex, 0, len(left)+1+len(right))
	for i := len(left) - 1; i >= 0; i-- {
		env = append(env, left[i])
	}
	env = append(env, points[peak])
	env = append(env, right...)
	return env
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Constraints returns the constraints the table was built from.
func (t *Table) Constraints() Constraints { return t.cons }

// Patterns returns all SER-valid data-bearing patterns (paper Fig. 8's
// "below the upper bound" set). The slice is shared; do not modify.
func (t *Table) Patterns() []mppm.Pattern { return t.patterns }

// Vertices returns the envelope vertices in increasing dimming-level order.
// The slice is shared; do not modify.
func (t *Table) Vertices() []Vertex { return t.vertices }

// LevelRange returns the dimming levels spanned by the envelope.
func (t *Table) LevelRange() (lo, hi float64) {
	return t.vertices[0].Level, t.vertices[len(t.vertices)-1].Level
}

// EnvelopeRateAt returns the normalized data rate (bits/slot) the envelope
// achieves at the given dimming level, interpolating linearly along the
// segment between the bracketing vertices. Levels outside the envelope
// span return 0.
func (t *Table) EnvelopeRateAt(level float64) float64 {
	vs := t.vertices
	if level < vs[0].Level || level > vs[len(vs)-1].Level {
		return 0
	}
	i := sort.Search(len(vs), func(i int) bool { return vs[i].Level >= level })
	if vs[i].Level == level {
		return vs[i].Rate
	}
	a, b := vs[i-1], vs[i]
	f := (level - a.Level) / (b.Level - a.Level)
	return a.Rate + f*(b.Rate-a.Rate)
}

// BestSingleRateAt returns the best normalized rate achievable at the given
// level with a single fixed pattern (no multiplexing) whose dimming level
// matches the target within tol. This is the "without multiplexing" curve
// of paper Fig. 9; it returns 0 when no pattern lands on the level.
func (t *Table) BestSingleRateAt(level, tol float64) float64 {
	best := 0.0
	for _, p := range t.patterns {
		if abs(p.DimmingLevel()-level) <= tol {
			if r := p.NormalizedRate(); r > best {
				best = r
			}
		}
	}
	return best
}
