package amppm

import "smartvlc/internal/telemetry"

// Planning-cache efficiency counters live on the process-global telemetry
// registry: both caches (the per-Constraints table cache and each table's
// Select cache) outlive individual sessions, so their hit rates are
// process properties and never enter deterministic session snapshots.
var (
	tableCacheHits    = telemetry.Global().Counter("amppm_table_cache_total", "result", "hit")
	tableCacheMisses  = telemetry.Global().Counter("amppm_table_cache_total", "result", "miss")
	selectCacheHits   = telemetry.Global().Counter("amppm_select_cache_total", "result", "hit")
	selectCacheMisses = telemetry.Global().Counter("amppm_select_cache_total", "result", "miss")
	// tableBuildMicros observes the wall-clock cost of each uncached
	// planning run in microseconds. Wall time is fine here: the global
	// registry is a process property, not part of any deterministic
	// session snapshot.
	tableBuildMicros = telemetry.Global().Histogram("amppm_table_build_micros")
)

// TableCacheStats reports cumulative hit/miss counts of the NewTable
// memoization (one shared table per Constraints value).
func TableCacheStats() (hits, misses int64) {
	return tableCacheHits.Value(), tableCacheMisses.Value()
}

// SelectCacheStats reports cumulative hit/miss counts of Table.Select's
// per-level memoization, summed over all tables in the process.
func SelectCacheStats() (hits, misses int64) {
	return selectCacheHits.Value(), selectCacheMisses.Value()
}
