package amppm

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"smartvlc/internal/bitio"
	"smartvlc/internal/mppm"
)

func roundTrip(t *testing.T, sc *SuperCodec, data []byte) []bool {
	t.Helper()
	slots, err := sc.AppendStream(nil, bitio.NewReader(data))
	if err != nil {
		t.Fatalf("AppendStream: %v", err)
	}
	if got := sc.SlotsForBits(len(data) * 8); got != len(slots) {
		t.Fatalf("SlotsForBits = %d, stream = %d", got, len(slots))
	}
	w := bitio.NewWriter()
	se, err := sc.DecodeBits(slots, len(data)*8, w)
	if err != nil || se != 0 {
		t.Fatalf("DecodeBits err=%v symbolErrors=%d", err, se)
	}
	if !bytes.Equal(w.Bytes()[:len(data)], data) {
		t.Fatal("payload mismatch")
	}
	return slots
}

func TestSuperCodecRoundTrip(t *testing.T) {
	tab := defaultTable(t)
	rng := rand.New(rand.NewPCG(3, 14))
	for _, level := range []float64{0.1, 0.15, 0.3, 0.5, 0.52, 0.7, 0.9} {
		s, err := tab.Select(level)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := NewSuperCodec(s)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 128)
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		roundTrip(t, sc, data)
	}
}

func TestSuperCodecDutyCycleNearLevel(t *testing.T) {
	tab := defaultTable(t)
	rng := rand.New(rand.NewPCG(5, 5))
	for _, level := range []float64{0.15, 0.45, 0.81} {
		s, err := tab.Select(level)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := NewSuperCodec(s)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 2048)
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		slots := roundTrip(t, sc, data)
		on := 0
		for _, sl := range slots {
			if sl {
				on++
			}
		}
		duty := float64(on) / float64(len(slots))
		// Every symbol has a fixed ON count regardless of data, so the
		// duty matches the super-symbol level up to the truncated tail
		// (less than one schedule period over the whole stream).
		if math.Abs(duty-s.Level()) > 0.01 {
			t.Fatalf("level %v: duty %v vs super level %v", level, duty, s.Level())
		}
	}
}

func TestSuperCodecTailShorterThanFullPeriod(t *testing.T) {
	// A 1-byte payload must not cost a whole super-symbol when the
	// schedule is long — this is the padding fix that keeps AMPPM ahead
	// of fixed MPPM at frame scale.
	tab := defaultTable(t)
	s, err := tab.Select(0.62)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewSuperCodec(s)
	if err != nil {
		t.Fatal(err)
	}
	if sc.SlotsPerSuper() < 100 {
		t.Skipf("super-symbol too small (%d slots) for this check", sc.SlotsPerSuper())
	}
	n := sc.SlotsForBits(8)
	if n >= sc.SlotsPerSuper() {
		t.Fatalf("1 byte costs %d slots, full period is %d", n, sc.SlotsPerSuper())
	}
}

func TestSuperCodecEfficiencyNearEnvelope(t *testing.T) {
	// For a 130-byte frame body, slots-per-bit must stay within 7% of the
	// super-symbol's nominal rate at every evaluation level.
	tab := defaultTable(t)
	for i := 0; i <= 16; i++ {
		level := 0.1 + 0.05*float64(i)
		s, err := tab.Select(level)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := NewSuperCodec(s)
		if err != nil {
			t.Fatal(err)
		}
		bits := 130 * 8
		slots := sc.SlotsForBits(bits)
		eff := float64(bits) / float64(slots)
		if eff < s.NormalizedRate()*0.93 {
			t.Errorf("level %v: stream rate %v vs nominal %v", level, eff, s.NormalizedRate())
		}
	}
}

func TestSuperCodecFlagsCorruptSymbols(t *testing.T) {
	tab := defaultTable(t)
	s, err := tab.Select(0.5)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewSuperCodec(s)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	slots, err := sc.AppendStream(nil, bitio.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	slots[0] = !slots[0] // corrupt one slot -> wrong ON count in symbol 1
	w := bitio.NewWriter()
	se, err := sc.DecodeBits(slots, len(data)*8, w)
	if err != nil {
		t.Fatal(err)
	}
	if se == 0 {
		t.Fatal("expected a symbol error to be counted")
	}
}

func TestSuperCodecTruncatedStream(t *testing.T) {
	tab := defaultTable(t)
	s, _ := tab.Select(0.5)
	sc, _ := NewSuperCodec(s)
	if _, err := sc.DecodeBits(make([]bool, 3), 64, bitio.NewWriter()); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestSuperCodecAnchorMix(t *testing.T) {
	// Near the dimming extremes the super-symbol mixes a data pattern with
	// zero-rate anchor symbols; the codec must still round-trip.
	tab := defaultTable(t)
	s, err := tab.Select(0.03)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewSuperCodec(s)
	if err != nil {
		t.Fatal(err)
	}
	if sc.BitsPerSuper() == 0 {
		t.Skip("level too extreme to carry data with current constraints")
	}
	roundTrip(t, sc, []byte{0x42, 0x99})
}

func TestSlotsForBits(t *testing.T) {
	sc, err := NewSuperCodec(SuperSymbol{S1: mppm.Pattern{N: 10, K: 5}, M1: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 7 bits per symbol, 10 slots per symbol.
	if got := sc.SlotsForBits(7); got != 10 {
		t.Fatalf("SlotsForBits(7) = %d", got)
	}
	if got := sc.SlotsForBits(8); got != 20 {
		t.Fatalf("SlotsForBits(8) = %d", got)
	}
	if got := sc.SlotsForBits(0); got != 0 {
		t.Fatalf("SlotsForBits(0) = %d", got)
	}
}

func TestSuperCodecProperty(t *testing.T) {
	tab := defaultTable(t)
	f := func(seed uint64, levelRaw uint16, n uint8) bool {
		level := 0.08 + float64(levelRaw)/65535*0.84
		s, err := tab.Select(level)
		if err != nil {
			return false
		}
		sc, err := NewSuperCodec(s)
		if err != nil || sc.BitsPerSuper() == 0 {
			return false
		}
		rng := rand.New(rand.NewPCG(seed, 77))
		data := make([]byte, int(n)+1)
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		slots, err := sc.AppendStream(nil, bitio.NewReader(data))
		if err != nil {
			return false
		}
		w := bitio.NewWriter()
		se, err := sc.DecodeBits(slots, len(data)*8, w)
		if err != nil || se != 0 {
			return false
		}
		return bytes.Equal(w.Bytes()[:len(data)], data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSelect(b *testing.B) {
	tab, err := NewTable(DefaultConstraints())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tab.Select(0.1 + float64(i%800)/1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuperCodecEncode128B(b *testing.B) {
	tab, _ := NewTable(DefaultConstraints())
	s, _ := tab.Select(0.3)
	sc, _ := NewSuperCodec(s)
	data := bytes.Repeat([]byte{0xA7}, 128)
	var slots []bool
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		slots, err = sc.AppendStream(slots[:0], bitio.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNewTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewTable(DefaultConstraints()); err != nil {
			b.Fatal(err)
		}
	}
}
