package amppm

import (
	"math"
	"sort"
	"testing"

	"smartvlc/internal/mppm"
)

func defaultTable(t *testing.T) *Table {
	t.Helper()
	tab, err := NewTable(DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestConstraintsDefaults(t *testing.T) {
	c := DefaultConstraints()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.TxHz(); math.Abs(got-125000) > 1e-6 {
		t.Fatalf("TxHz = %v", got)
	}
	// Paper §6.1: Nmax = 125000/250 = 500.
	if got := c.NMax(); got != 500 {
		t.Fatalf("NMax = %d want 500", got)
	}
}

func TestConstraintsValidate(t *testing.T) {
	bad := []func(*Constraints){
		func(c *Constraints) { c.SlotSeconds = 0 },
		func(c *Constraints) { c.FlickerHz = -1 },
		func(c *Constraints) { c.P1 = 1 },
		func(c *Constraints) { c.P2 = -0.1 },
		func(c *Constraints) { c.SERBound = 0 },
		func(c *Constraints) { c.SERBound = 1.5 },
		func(c *Constraints) { c.MinN = 0 },
		func(c *Constraints) { c.MaxN = 1; c.MinN = 5 },
		func(c *Constraints) { c.FlickerHz = 1e9 }, // NMax < MinN
	}
	for i, mut := range bad {
		c := DefaultConstraints()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestEnumerateRespectsSERBound(t *testing.T) {
	cons := DefaultConstraints()
	tab := defaultTable(t)
	if len(tab.Patterns()) == 0 {
		t.Fatal("no patterns")
	}
	for _, p := range tab.Patterns() {
		if ser := p.SER(cons.P1, cons.P2); ser > cons.SERBound {
			t.Fatalf("pattern %v has SER %v above bound", p, ser)
		}
		if p.Bits() == 0 {
			t.Fatalf("pattern %v carries no data", p)
		}
		if p.N > cons.MaxN || p.N < cons.MinN {
			t.Fatalf("pattern %v outside N range", p)
		}
	}
	// Paper Fig. 8: S(50, 0.3) and S(30, 0.4) are above a tight bound.
	// With the default bound 5e-3 the SER ordering must still hold:
	// SER(S(50,0.3)) > SER(S(30,0.4)).
	if mppm.SER(50, 15, cons.P1, cons.P2) <= mppm.SER(30, 12, cons.P1, cons.P2) {
		t.Fatal("SER ordering violated")
	}
}

func TestEnvelopeSpansFullDimmingRange(t *testing.T) {
	tab := defaultTable(t)
	lo, hi := tab.LevelRange()
	if lo != 0 || hi != 1 {
		t.Fatalf("LevelRange = [%v, %v], want [0, 1] via anchors", lo, hi)
	}
}

func TestEnvelopeIsUpperConcaveHull(t *testing.T) {
	tab := defaultTable(t)
	vs := tab.Vertices()
	if len(vs) < 3 {
		t.Fatalf("too few vertices: %d", len(vs))
	}
	// Strictly increasing levels.
	for i := 1; i < len(vs); i++ {
		if vs[i].Level <= vs[i-1].Level {
			t.Fatalf("levels not increasing at %d: %v then %v", i, vs[i-1].Level, vs[i].Level)
		}
	}
	// Concavity: slopes non-increasing.
	prev := math.Inf(1)
	for i := 1; i < len(vs); i++ {
		s := (vs[i].Rate - vs[i-1].Rate) / (vs[i].Level - vs[i-1].Level)
		if s > prev+1e-9 {
			t.Fatalf("slope increases at vertex %d: %v after %v", i, s, prev)
		}
		prev = s
	}
	// Dominance: every valid pattern lies on or below the envelope.
	for _, p := range tab.Patterns() {
		env := tab.EnvelopeRateAt(p.DimmingLevel())
		if p.NormalizedRate() > env+1e-9 {
			t.Fatalf("pattern %v (rate %v) above envelope (%v)", p, p.NormalizedRate(), env)
		}
	}
}

// TestSlopeWalkMatchesMonotoneChain verifies the paper's slope walk against
// an independent upper-concave-hull construction (Andrew monotone chain).
func TestSlopeWalkMatchesMonotoneChain(t *testing.T) {
	tab := defaultTable(t)
	points := bestPerLevel(tab.Patterns())
	points = addAnchor(points, Vertex{Pattern: mppm.Pattern{N: 1, K: 0}, Level: 0, Rate: 0})
	points = addAnchor(points, Vertex{Pattern: mppm.Pattern{N: 1, K: 1}, Level: 1, Rate: 0})
	sort.Slice(points, func(i, j int) bool { return points[i].Level < points[j].Level })

	walk := slopeWalk(points)
	hull := upperHull(points)
	// The walk may keep collinear points the strict hull drops, so compare
	// the interpolated envelopes on a dense grid instead of vertex lists.
	for i := 0; i <= 1000; i++ {
		l := float64(i) / 1000
		w := interpolate(walk, l)
		h := interpolate(hull, l)
		if math.Abs(w-h) > 1e-9 {
			t.Fatalf("envelopes differ at l=%v: walk %v hull %v", l, w, h)
		}
	}
	// Every walk vertex must lie on the hull polyline.
	for _, v := range walk {
		if math.Abs(v.Rate-interpolate(hull, v.Level)) > 1e-9 {
			t.Fatalf("walk vertex %v off the hull", v)
		}
	}
}

func interpolate(vs []Vertex, level float64) float64 {
	if level < vs[0].Level || level > vs[len(vs)-1].Level {
		return 0
	}
	for i := 1; i < len(vs); i++ {
		if level <= vs[i].Level {
			a, b := vs[i-1], vs[i]
			if a.Level == level {
				return a.Rate
			}
			f := (level - a.Level) / (b.Level - a.Level)
			return a.Rate + f*(b.Rate-a.Rate)
		}
	}
	return vs[len(vs)-1].Rate
}

// upperHull is an independent O(n) upper concave hull over points sorted by
// Level (Andrew monotone chain), used only as a test oracle.
func upperHull(points []Vertex) []Vertex {
	var h []Vertex
	for _, p := range points {
		for len(h) >= 2 {
			a, b := h[len(h)-2], h[len(h)-1]
			// Pop b if it is on or below segment a–p.
			cross := (b.Level-a.Level)*(p.Rate-a.Rate) - (b.Rate-a.Rate)*(p.Level-a.Level)
			if cross >= -1e-15 {
				h = h[:len(h)-1]
			} else {
				break
			}
		}
		h = append(h, p)
	}
	return h
}

func TestFig9EnvelopeRegion(t *testing.T) {
	// Reproduce the conditions of paper Fig. 9: restrict patterns to
	// N ∈ [10, 21] and look at levels 0.5–0.7. The found vertices around
	// l≈0.52 and l≈0.57 have N=21 in the paper.
	cons := DefaultConstraints()
	cons.MinN, cons.MaxN = 10, 21
	cons.SERBound = 0.99 // paper Fig. 9 shows the full N range unpruned
	tab, err := NewTable(cons)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's named peak S(21, 0.524) = S(21,11) must be an envelope
	// vertex, with rate 18/21 ≈ 0.857 (floor(log2 C(21,11)) = 18).
	found := false
	for _, v := range tab.Vertices() {
		if v.Pattern.N == 21 && v.Pattern.K == 11 {
			found = true
			if math.Abs(v.Rate-18.0/21) > 1e-9 {
				t.Fatalf("S(21,11) rate = %v want 18/21", v.Rate)
			}
		}
	}
	if !found {
		t.Fatalf("envelope misses the paper's peak S(21, 0.524); vertices: %v", tab.Vertices())
	}
	// Envelope at any level must dominate the best single pattern there.
	for l := 0.5; l <= 0.7; l += 0.01 {
		if tab.EnvelopeRateAt(l)+1e-9 < tab.BestSingleRateAt(l, 0.005) {
			t.Fatalf("envelope below single-pattern rate at %v", l)
		}
	}
}

func TestBestSingleRateAt(t *testing.T) {
	tab := defaultTable(t)
	// Exactly at l=0.5 many patterns qualify; rate must be positive and
	// below or equal the envelope.
	r := tab.BestSingleRateAt(0.5, 1e-9)
	if r <= 0 || r > tab.EnvelopeRateAt(0.5) {
		t.Fatalf("BestSingleRateAt(0.5) = %v", r)
	}
	if got := tab.BestSingleRateAt(0.5001, 1e-9); got != 0 {
		t.Fatalf("off-grid level should have no single pattern, got %v", got)
	}
}

func TestEnvelopeRateOutside(t *testing.T) {
	tab := defaultTable(t)
	if tab.EnvelopeRateAt(-0.1) != 0 || tab.EnvelopeRateAt(1.1) != 0 {
		t.Fatal("outside-range rate should be 0")
	}
}

func TestNewTableErrors(t *testing.T) {
	cons := DefaultConstraints()
	cons.SlotSeconds = -1
	if _, err := NewTable(cons); err == nil {
		t.Fatal("expected validation error")
	}
	cons = DefaultConstraints()
	cons.SERBound = 1e-9 // nothing survives
	if _, err := NewTable(cons); err == nil {
		t.Fatal("expected empty-table error")
	}
}

// BenchmarkTableConstruction measures the full offline planning stage —
// SER enumeration, per-level reduction and the slope walk — bypassing the
// NewTable memo so construction cost itself is what is timed.
func BenchmarkTableConstruction(b *testing.B) {
	cons := DefaultConstraints()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := buildTable(cons)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.vertices) < 3 {
			b.Fatal("degenerate envelope")
		}
	}
}

// BenchmarkTableMemoized measures the cached NewTable path that every
// scheme instance and experiment point actually hits.
func BenchmarkTableMemoized(b *testing.B) {
	cons := DefaultConstraints()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewTable(cons); err != nil {
			b.Fatal(err)
		}
	}
}
