package amppm

import (
	"fmt"

	"smartvlc/internal/mppm"
)

// MaxMultiplicity caps m1 and m2 so a super-symbol descriptor fits the
// 4-byte Pattern field of the frame header (paper Table 1).
const MaxMultiplicity = 255

// SuperSymbol is paper §4.2's composition <S1(N1,l1), m1, S2(N2,l2), m2>:
// m1 symbols of pattern S1 followed by m2 symbols of pattern S2 (Fig. 7).
// A single-pattern super-symbol has M2 = 0.
type SuperSymbol struct {
	S1 mppm.Pattern
	M1 int
	S2 mppm.Pattern
	M2 int
}

// Valid reports whether the super-symbol is well-formed.
func (s SuperSymbol) Valid() bool {
	if !s.S1.Valid() || s.M1 < 1 || s.M1 > MaxMultiplicity || s.M2 < 0 || s.M2 > MaxMultiplicity {
		return false
	}
	if s.M2 > 0 && !s.S2.Valid() {
		return false
	}
	return true
}

// Slots returns Nsuper = m1·N1 + m2·N2.
func (s SuperSymbol) Slots() int {
	n := s.M1 * s.S1.N
	if s.M2 > 0 {
		n += s.M2 * s.S2.N
	}
	return n
}

// Level returns the super-symbol dimming level
// (l1·m1·N1 + l2·m2·N2) / Nsuper.
func (s SuperSymbol) Level() float64 {
	on := s.M1 * s.S1.K
	if s.M2 > 0 {
		on += s.M2 * s.S2.K
	}
	return float64(on) / float64(s.Slots())
}

// Bits returns the data bits carried per super-symbol.
func (s SuperSymbol) Bits() int {
	b := s.M1 * s.S1.Bits()
	if s.M2 > 0 {
		b += s.M2 * s.S2.Bits()
	}
	return b
}

// NormalizedRate returns bits per slot.
func (s SuperSymbol) NormalizedRate() float64 {
	return float64(s.Bits()) / float64(s.Slots())
}

// Rate returns bit/s for the given slot duration, before error losses.
func (s SuperSymbol) Rate(tslotSeconds float64) float64 {
	if tslotSeconds <= 0 {
		return 0
	}
	return float64(s.Bits()) / (float64(s.Slots()) * tslotSeconds)
}

// RepetitionHz returns how often the super-symbol repeats; this must stay
// at or above the Type-I flicker threshold f_th.
func (s SuperSymbol) RepetitionHz(tslotSeconds float64) float64 {
	return 1 / (float64(s.Slots()) * tslotSeconds)
}

// SER returns the probability that at least one constituent symbol of the
// super-symbol decodes incorrectly. Constituents are decoded independently,
// which is why multiplexing does not raise the per-symbol error rate
// (paper §4.1.2).
func (s SuperSymbol) SER(p1, p2 float64) float64 {
	ok := 1.0
	ok *= pow1m(s.S1.SER(p1, p2), s.M1)
	if s.M2 > 0 {
		ok *= pow1m(s.S2.SER(p1, p2), s.M2)
	}
	return 1 - ok
}

func pow1m(p float64, m int) float64 {
	v := 1.0
	for i := 0; i < m; i++ {
		v *= 1 - p
	}
	return v
}

// String implements fmt.Stringer.
func (s SuperSymbol) String() string {
	if s.M2 == 0 {
		return fmt.Sprintf("<%v × %d>", s.S1, s.M1)
	}
	return fmt.Sprintf("<%v × %d, %v × %d>", s.S1, s.M1, s.S2, s.M2)
}

// Select performs step 4 of paper §4.2: it returns the super-symbol that
// reaches the target dimming level as closely as possible while maximizing
// throughput, under the flicker cap Nmax and the descriptor limits. The
// chosen constituents are always envelope vertices bracketing the target.
// Results are memoized per level; safe for concurrent use.
func (t *Table) Select(level float64) (SuperSymbol, error) {
	if v, ok := t.selCache.Load(level); ok {
		selectCacheHits.Inc()
		return v.(SuperSymbol), nil
	}
	selectCacheMisses.Inc()
	s, err := t.selectUncached(level)
	if err != nil {
		return s, err
	}
	if t.selSize.Load() < selCacheMax {
		if _, loaded := t.selCache.LoadOrStore(level, s); !loaded {
			t.selSize.Add(1)
		}
	}
	return s, nil
}

func (t *Table) selectUncached(level float64) (SuperSymbol, error) {
	lo, hi := t.LevelRange()
	if level < lo || level > hi {
		return SuperSymbol{}, fmt.Errorf("amppm: level %.4f outside supported range [%.4f, %.4f]", level, lo, hi)
	}
	vs := t.vertices
	// Locate the bracketing segment [a, b].
	j := 0
	for j < len(vs) && vs[j].Level < level {
		j++
	}
	if j < len(vs) && vs[j].Level == level {
		return SuperSymbol{S1: vs[j].Pattern, M1: 1}, nil
	}
	a, b := vs[j-1], vs[j]

	nmax := t.cons.NMax()
	best := SuperSymbol{}
	bestErr := 2.0
	consider := func(c SuperSymbol) {
		if !c.Valid() || c.Slots() > nmax {
			return
		}
		e := abs(c.Level() - level)
		switch {
		case e < bestErr-1e-12:
		case e <= bestErr+1e-12 && c.NormalizedRate() > best.NormalizedRate()+1e-12:
		case e <= bestErr+1e-12 && c.NormalizedRate() >= best.NormalizedRate()-1e-12 && c.Slots() < best.Slots():
		default:
			return
		}
		best, bestErr = c, e
	}
	// A target just off a vertex may be served best by the vertex alone.
	consider(SuperSymbol{S1: a.Pattern, M1: 1})
	consider(SuperSymbol{S1: b.Pattern, M1: 1})
	// For each m1, the ideal m2 solves
	//   m1·N1·(level − l1) = m2·N2·(l2 − level),
	// so only its floor/ceil neighbours can be optimal.
	n1, l1 := a.Pattern.N, a.Level
	n2, l2 := b.Pattern.N, b.Level
	for m1 := 1; m1 <= MaxMultiplicity && m1*n1 < nmax; m1++ {
		ideal := float64(m1) * float64(n1) * (level - l1) / (float64(n2) * (l2 - level))
		if ideal > float64(nmax) {
			ideal = float64(nmax) // cap: anything larger cannot fit anyway
		}
		m2cap := (nmax - m1*n1) / n2 // largest m2 that fits the flicker cap
		for _, m2 := range []int{int(ideal), int(ideal) + 1, m2cap} {
			if m2 < 1 {
				m2 = 1
			}
			consider(SuperSymbol{S1: a.Pattern, M1: m1, S2: b.Pattern, M2: m2})
		}
	}
	if !best.Valid() {
		// Degenerate constraints (e.g. Nmax too small to fit one of each
		// pattern): fall back to the nearer vertex.
		if level-a.Level <= b.Level-level {
			return SuperSymbol{S1: a.Pattern, M1: 1}, nil
		}
		return SuperSymbol{S1: b.Pattern, M1: 1}, nil
	}
	return best, nil
}

// Resolution returns the worst-case dimming error |achieved − target| over
// a sweep of nSteps levels across the supported range. The paper's
// multiplexing argument (§4.1.2) predicts this shrinks roughly like
// 1/Nmax.
func (t *Table) Resolution(nSteps int) float64 {
	lo, hi := t.LevelRange()
	worst := 0.0
	for i := 0; i <= nSteps; i++ {
		level := lo + (hi-lo)*float64(i)/float64(nSteps)
		s, err := t.Select(level)
		if err != nil {
			continue
		}
		if e := abs(s.Level() - level); e > worst {
			worst = e
		}
	}
	return worst
}
