package amppm

import (
	"math"
	"testing"
)

// TestEnvelopeRateAtVertices checks the interpolation at exact vertex
// levels: the envelope must return each vertex's own rate (no off-by-one
// in the bracketing search), the extreme anchors included.
func TestEnvelopeRateAtVertices(t *testing.T) {
	tab, err := NewTable(DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range tab.Vertices() {
		if got := tab.EnvelopeRateAt(v.Level); got != v.Rate {
			t.Errorf("vertex %d (level %v): EnvelopeRateAt = %v, want %v", i, v.Level, got, v.Rate)
		}
	}

	lo, hi := tab.LevelRange()
	if got := tab.EnvelopeRateAt(lo); got != tab.Vertices()[0].Rate {
		t.Errorf("EnvelopeRateAt(lo=%v) = %v, want first vertex rate", lo, got)
	}
	if got := tab.EnvelopeRateAt(hi); got != tab.Vertices()[len(tab.Vertices())-1].Rate {
		t.Errorf("EnvelopeRateAt(hi=%v) = %v, want last vertex rate", hi, got)
	}

	// Just outside the span: zero, not an extrapolation.
	for _, level := range []float64{lo - 1e-9, hi + 1e-9, -0.5, 1.5} {
		if got := tab.EnvelopeRateAt(level); got != 0 {
			t.Errorf("EnvelopeRateAt(%v) = %v, want 0 outside the envelope", level, got)
		}
	}

	// Mid-segment values interpolate between the bracketing vertices.
	vs := tab.Vertices()
	for i := 0; i+1 < len(vs); i++ {
		mid := (vs[i].Level + vs[i+1].Level) / 2
		got := tab.EnvelopeRateAt(mid)
		lo, hi := math.Min(vs[i].Rate, vs[i+1].Rate), math.Max(vs[i].Rate, vs[i+1].Rate)
		if got < lo-1e-12 || got > hi+1e-12 {
			t.Errorf("EnvelopeRateAt(%v) = %v outside segment [%v, %v]", mid, got, lo, hi)
		}
	}
}

// TestNewTableMemoized checks the Constraints-keyed memo returns a shared
// instance for equal constraints and distinct ones otherwise.
func TestNewTableMemoized(t *testing.T) {
	a, err := NewTable(DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTable(DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("NewTable returned distinct tables for identical constraints")
	}
	cons := DefaultConstraints()
	cons.SERBound *= 2
	c, err := NewTable(cons)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("NewTable conflated distinct constraints")
	}
}
