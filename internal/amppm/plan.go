package amppm

import (
	"errors"
	"fmt"

	"smartvlc/internal/mppm"
)

// DescriptorSize is the size of the frame header's Pattern field in bytes
// (paper Table 1).
const DescriptorSize = 4

// ErrBadDescriptor reports a Pattern field that does not name valid
// envelope vertices, typically due to channel corruption.
var ErrBadDescriptor = errors.New("amppm: invalid super-symbol descriptor")

// Descriptor encodes a super-symbol into the 4-byte Pattern field of the
// frame header: vertex index and multiplicity for each constituent. Both
// ends derive the same envelope from the shared link constraints, so vertex
// indices are unambiguous. A single-pattern super-symbol sets m2 = 0.
func (t *Table) Descriptor(s SuperSymbol) ([DescriptorSize]byte, error) {
	var d [DescriptorSize]byte
	i1 := t.vertexIndex(s.S1)
	if i1 < 0 || !s.Valid() {
		return d, fmt.Errorf("amppm: super-symbol %v not expressible: %w", s, ErrBadDescriptor)
	}
	d[0] = byte(i1)
	d[1] = byte(s.M1)
	if s.M2 > 0 {
		i2 := t.vertexIndex(s.S2)
		if i2 < 0 {
			return d, fmt.Errorf("amppm: super-symbol %v not expressible: %w", s, ErrBadDescriptor)
		}
		d[2] = byte(i2)
		d[3] = byte(s.M2)
	}
	return d, nil
}

// ParseDescriptor decodes a Pattern field back into a super-symbol,
// validating vertex indices, multiplicities and the flicker cap.
func (t *Table) ParseDescriptor(d [DescriptorSize]byte) (SuperSymbol, error) {
	i1, m1 := int(d[0]), int(d[1])
	i2, m2 := int(d[2]), int(d[3])
	if i1 >= len(t.vertices) || m1 < 1 {
		return SuperSymbol{}, ErrBadDescriptor
	}
	s := SuperSymbol{S1: t.vertices[i1].Pattern, M1: m1}
	if m2 > 0 {
		if i2 >= len(t.vertices) {
			return SuperSymbol{}, ErrBadDescriptor
		}
		s.S2 = t.vertices[i2].Pattern
		s.M2 = m2
	}
	if !s.Valid() || s.Slots() > t.cons.NMax() {
		return SuperSymbol{}, ErrBadDescriptor
	}
	return s, nil
}

func (t *Table) vertexIndex(p mppm.Pattern) int {
	for i, v := range t.vertices {
		if v.Pattern == p {
			return i
		}
	}
	return -1
}
