package amppm

import (
	"fmt"

	"smartvlc/internal/bitio"
	"smartvlc/internal/mppm"
)

// SuperCodec modulates a bit stream as a cyclic schedule of super-symbols:
// m1 S1-symbols followed by m2 S2-symbols (paper Fig. 7), repeating. The
// stream may stop at any symbol boundary once the payload is exhausted —
// only whole symbols are emitted, so the decoder can walk the same
// schedule — which keeps the tail overhead below one symbol instead of one
// whole super-symbol. Constituent symbols are encoded and decoded
// independently with the combinadic codec, so multiplexing leaves the
// per-symbol error rate untouched (paper §4.1.2).
type SuperCodec struct {
	super  SuperSymbol
	c1, c2 *mppm.Codec

	// bitsPerSuper and slotsPerSuper cache SuperSymbol.Bits/Slots: the
	// receiver sizes and decodes every frame through them, so they must
	// not recompute binomials per call.
	bitsPerSuper  int
	slotsPerSuper int
}

// NewSuperCodec builds a codec for the super-symbol. It returns an error
// if a constituent pattern exceeds the uint64 codec range, which cannot
// happen for patterns produced by a Table.
func NewSuperCodec(s SuperSymbol) (*SuperCodec, error) {
	if !s.Valid() {
		return nil, fmt.Errorf("amppm: invalid super-symbol %v", s)
	}
	sc := &SuperCodec{super: s, c1: mppm.CodecFor(s.S1)}
	if !sc.c1.Fast() {
		return nil, fmt.Errorf("amppm: pattern %v too large for streaming codec", s.S1)
	}
	if s.M2 > 0 {
		sc.c2 = mppm.CodecFor(s.S2)
		if !sc.c2.Fast() {
			return nil, fmt.Errorf("amppm: pattern %v too large for streaming codec", s.S2)
		}
	}
	sc.bitsPerSuper = s.Bits()
	sc.slotsPerSuper = s.Slots()
	return sc, nil
}

// Super returns the super-symbol this codec modulates.
func (sc *SuperCodec) Super() SuperSymbol { return sc.super }

// BitsPerSuper returns the data bits carried by one full schedule period.
func (sc *SuperCodec) BitsPerSuper() int { return sc.bitsPerSuper }

// SlotsPerSuper returns the slot length of one full schedule period.
func (sc *SuperCodec) SlotsPerSuper() int { return sc.slotsPerSuper }

// symbolAt returns the codec of the i-th symbol in the cyclic schedule.
func (sc *SuperCodec) symbolAt(i int) *mppm.Codec {
	period := sc.super.M1 + sc.super.M2
	if i%period < sc.super.M1 {
		return sc.c1
	}
	return sc.c2
}

// SlotsForBits returns the exact number of slots the schedule needs to
// carry nbits data bits (the final symbol zero-padded internally).
// Zero-bit anchor symbols inside the schedule are included on the way.
func (sc *SuperCodec) SlotsForBits(nbits int) int {
	if nbits <= 0 {
		return 0
	}
	if sc.BitsPerSuper() == 0 {
		return 0
	}
	slots, bits := 0, 0
	for i := 0; bits < nbits; i++ {
		c := sc.symbolAt(i)
		slots += c.Pattern().N
		bits += c.Bits()
	}
	return slots
}

// SymbolsForBits returns the number of constituent symbols the schedule
// walks to carry nbits data bits — the "symbols decoded" unit of the
// stage profiler. Zero-bit anchor symbols inside the schedule are
// included, matching SlotsForBits.
func (sc *SuperCodec) SymbolsForBits(nbits int) int {
	if nbits <= 0 || sc.BitsPerSuper() == 0 {
		return 0
	}
	symbols, bits := 0, 0
	for i := 0; bits < nbits; i++ {
		bits += sc.symbolAt(i).Bits()
		symbols++
	}
	return symbols
}

// AppendStream encodes all bits remaining in r onto dst, following the
// schedule and stopping at the first symbol boundary that exhausts the
// reader.
func (sc *SuperCodec) AppendStream(dst []bool, r *bitio.Reader) ([]bool, error) {
	if sc.BitsPerSuper() == 0 {
		if r.Remaining() > 0 {
			return nil, fmt.Errorf("amppm: super-symbol %v carries no data", sc.super)
		}
		return dst, nil
	}
	for i := 0; r.Remaining() > 0; i++ {
		c := sc.symbolAt(i)
		v, _, err := r.ReadPadded(c.Bits())
		if err != nil {
			return nil, err
		}
		n := c.Pattern().N
		start := len(dst)
		for j := 0; j < n; j++ {
			dst = append(dst, false)
		}
		if _, err := c.Encode(v, dst[start:]); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// DecodeBits walks the schedule over slots and writes nbits decoded bits
// into w. Corrupt constituent symbols (wrong ON count or out-of-range
// rank) decode as zero bits and are counted in symbolErrors; the frame
// CRC makes the final call, mirroring the paper's receiver.
func (sc *SuperCodec) DecodeBits(slots []bool, nbits int, w *bitio.Writer) (symbolErrors int, err error) {
	if nbits <= 0 {
		return 0, nil
	}
	if sc.BitsPerSuper() == 0 {
		return 0, fmt.Errorf("amppm: super-symbol %v carries no data", sc.super)
	}
	off, bits := 0, 0
	for i := 0; bits < nbits; i++ {
		c := sc.symbolAt(i)
		n := c.Pattern().N
		if off+n > len(slots) {
			return symbolErrors, fmt.Errorf("amppm: slot stream truncated at symbol %d", i)
		}
		v, derr := c.Decode(slots[off : off+n])
		off += n
		if derr != nil {
			symbolErrors++
			v = 0
		}
		if werr := w.WriteBits(v, c.Bits()); werr != nil {
			return symbolErrors, werr
		}
		bits += c.Bits()
	}
	return symbolErrors, nil
}
