// Package mac implements the link layer of SmartVLC: a sliding-window ARQ
// whose acknowledgements and ambient-light reports travel over the
// prototype's ESP8266 Wi-Fi side channel (paper §5.1 — the photodiode
// downlink is VLC, the uplink is Wi-Fi because mobile nodes lack a strong
// enough LED).
package mac

import (
	"math/rand/v2"

	"smartvlc/internal/telemetry/span"
)

// MessageKind discriminates side-channel messages.
type MessageKind int

// Side-channel message kinds.
const (
	// KindAck acknowledges one VLC frame by sequence number.
	KindAck MessageKind = iota
	// KindAmbientReport carries the receiver's sensed ambient level, used
	// by the transmitter's dimming controller (paper Fig. 2).
	KindAmbientReport
)

// Message is one side-channel datagram.
type Message struct {
	// At is the delivery time in seconds (stamped by the channel).
	At float64
	// Kind selects the payload field.
	Kind MessageKind
	// From identifies the sending receiver in multi-receiver sessions.
	From int
	// Seq is the acknowledged frame sequence (KindAck).
	Seq uint16
	// Lux is the reported ambient illuminance (KindAmbientReport).
	Lux float64
}

// SideChannel is the simulated Wi-Fi uplink: per-message latency with
// jitter and independent loss. Delivery order follows delivery time, which
// may reorder messages — receivers must tolerate that, as with real UDP
// datagrams.
type SideChannel struct {
	// LatencySeconds is the base one-way delay (ESP8266 over a busy office
	// WLAN: a few milliseconds).
	LatencySeconds float64
	// JitterSeconds is the uniform extra delay bound.
	JitterSeconds float64
	// LossProb is the independent drop probability.
	LossProb float64
	// Metrics, when non-nil, counts sent and dropped datagrams. Nil (the
	// default) is a no-op.
	Metrics *Metrics
	// Spans, when non-nil, records one "mac/side" span per Send covering
	// the datagram's flight time (Start == End with outcome "dropped" for
	// lost datagrams). Send must be called in deterministic order — the
	// session loops replay buffered sends sequentially — so the spans are
	// byte-identical across identically seeded runs.
	Spans *span.Collector

	rng   *rand.Rand
	queue []Message
	out   []Message
}

// NewSideChannel builds a channel with its own deterministic RNG stream.
func NewSideChannel(latency, jitter, loss float64, rng *rand.Rand) *SideChannel {
	return &SideChannel{LatencySeconds: latency, JitterSeconds: jitter, LossProb: loss, rng: rng}
}

// Reset returns the channel to its just-constructed state for the given
// parameters, keeping the queue and receive scratch capacity so a renting
// arena pays no per-session allocations. Metrics and Spans are cleared,
// matching a fresh channel.
func (s *SideChannel) Reset(latency, jitter, loss float64, rng *rand.Rand) {
	s.LatencySeconds = latency
	s.JitterSeconds = jitter
	s.LossProb = loss
	s.Metrics = nil
	s.Spans = nil
	s.rng = rng
	s.queue = s.queue[:0]
}

// Send enqueues a message at time now; it may silently drop it.
func (s *SideChannel) Send(now float64, m Message) {
	if s.LossProb > 0 && s.rng.Float64() < s.LossProb {
		s.Metrics.onSideDropped()
		if s.Spans != nil {
			s.Spans.Record(span.Span{
				Name: "mac/side", Seq: sideSeq(m), Start: now, End: now,
				Attrs: []span.Attr{{Key: "kind", Value: kindName(m.Kind)}, {Key: "outcome", Value: "dropped"}},
			})
		}
		return
	}
	s.Metrics.onSideSent()
	d := s.LatencySeconds
	if s.JitterSeconds > 0 {
		d += s.rng.Float64() * s.JitterSeconds
	}
	m.At = now + d
	if s.Spans != nil {
		s.Spans.Record(span.Span{
			Name: "mac/side", Seq: sideSeq(m), Start: now, End: m.At,
			Attrs: []span.Attr{{Key: "kind", Value: kindName(m.Kind)}, {Key: "outcome", Value: "delivered"}},
		})
	}
	s.queue = append(s.queue, m)
}

// sideSeq attributes a side-channel span to a frame sequence: only ACKs
// carry one.
func sideSeq(m Message) int64 {
	if m.Kind == KindAck {
		return int64(m.Seq)
	}
	return -1
}

// kindName labels a message kind for span attributes.
func kindName(k MessageKind) string {
	switch k {
	case KindAck:
		return "ack"
	case KindAmbientReport:
		return "ambient"
	default:
		return "other"
	}
}

// Receive removes and returns all messages delivered by time now, in
// delivery order. The returned slice aliases the channel's scratch buffer
// and is valid until the next Receive call.
func (s *SideChannel) Receive(now float64) []Message {
	sortByAt(s.queue)
	n := 0
	for n < len(s.queue) && s.queue[n].At <= now {
		n++
	}
	s.out = append(s.out[:0], s.queue[:n]...)
	s.queue = s.queue[:copy(s.queue, s.queue[n:])]
	return s.out
}

// sortByAt stable-sorts messages by delivery time. It is a binary
// insertion sort — stable, so ties keep enqueue order exactly as
// sort.SliceStable with an At-less comparator would — chosen because the
// queue is nearly sorted (jitter only reorders neighbors) and because it
// avoids the comparator closure the sort package would allocate on a path
// Receive hits every simulated frame.
func sortByAt(q []Message) {
	for i := 1; i < len(q); i++ {
		m := q[i]
		lo, hi := 0, i
		for lo < hi {
			mid := (lo + hi) / 2
			if q[mid].At <= m.At {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		copy(q[lo+1:i+1], q[lo:i])
		q[lo] = m
	}
}

// Pending returns the number of undelivered messages.
func (s *SideChannel) Pending() int { return len(s.queue) }
