package mac

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"

	"smartvlc/internal/telemetry/prof"
)

// SeqBytes is the per-frame MAC overhead: a 2-byte sequence number
// prepended to the application payload.
const SeqBytes = 2

// Sender is a sliding-window ARQ transmitter. Frames carry a sequence
// number; unacknowledged frames are retransmitted after a timeout.
// Payload content is deterministic per sequence number, so a
// retransmission is bit-identical to the original.
type Sender struct {
	// Window is the maximum number of unacknowledged frames in flight.
	Window int
	// TimeoutSeconds triggers retransmission of an unacked frame.
	TimeoutSeconds float64
	// PayloadBytes is the application payload per frame (128 in the
	// paper's evaluation), excluding the sequence header.
	PayloadBytes int
	// Metrics, when non-nil, records timeouts, window occupancy and ACK
	// arrivals. Nil (the default) is a no-op.
	Metrics *Metrics
	// Prof, when non-nil, attributes MAC framing cost (frames emitted,
	// payload bytes) to the owning stage profiler series. Nil is a no-op.
	Prof *prof.Stage

	rng      *rand.Rand
	nextSeq  uint16
	inflight map[uint16]float64 // seq -> last transmission time
	firstTx  map[uint16]float64 // seq -> first transmission time (until acked)

	// Stats.
	framesSent   int
	retransmits  int
	ackedPayload int64
	acked        map[uint16]bool
}

// NewSender builds an ARQ sender.
func NewSender(window, payloadBytes int, timeout float64, rng *rand.Rand) (*Sender, error) {
	if window < 1 {
		return nil, fmt.Errorf("mac: window %d < 1", window)
	}
	if payloadBytes < 1 || payloadBytes > 65000 {
		return nil, fmt.Errorf("mac: payload %d bytes out of range", payloadBytes)
	}
	if timeout <= 0 {
		return nil, fmt.Errorf("mac: timeout %v must be positive", timeout)
	}
	return &Sender{
		Window:         window,
		TimeoutSeconds: timeout,
		PayloadBytes:   payloadBytes,
		rng:            rng,
		inflight:       map[uint16]float64{},
		firstTx:        map[uint16]float64{},
		acked:          map[uint16]bool{},
	}, nil
}

// payloadFor deterministically generates the frame body for a sequence
// number: the 2-byte seq followed by pseudo-random application bytes.
func (s *Sender) payloadFor(seq uint16) []byte {
	body := make([]byte, SeqBytes+s.PayloadBytes)
	binary.BigEndian.PutUint16(body, seq)
	r := rand.New(rand.NewPCG(0x5eedf00d, uint64(seq)))
	for i := SeqBytes; i < len(body); i++ {
		body[i] = byte(r.Uint64())
	}
	return body
}

// NextFrame returns the next frame body to transmit at time now:
// a timed-out retransmission if any, else a new frame if the window
// allows. ok is false when the sender must idle.
func (s *Sender) NextFrame(now float64) (seq uint16, body []byte, ok bool) {
	s.Metrics.observeWindow(len(s.inflight))
	// Oldest timed-out frame first.
	found := false
	var oldest uint16
	var oldestAt float64
	for q, at := range s.inflight {
		if now-at >= s.TimeoutSeconds && (!found || at < oldestAt) {
			oldest, oldestAt, found = q, at, true
		}
	}
	if found {
		s.inflight[oldest] = now
		s.framesSent++
		s.retransmits++
		s.Metrics.onTimeout()
		body := s.payloadFor(oldest)
		s.Prof.Ops(1)
		s.Prof.Bytes(int64(len(body)))
		return oldest, body, true
	}
	if len(s.inflight) >= s.Window {
		s.Metrics.onStall()
		return 0, nil, false
	}
	seq = s.nextSeq
	s.nextSeq++
	s.inflight[seq] = now
	s.firstTx[seq] = now
	s.framesSent++
	body = s.payloadFor(seq)
	s.Prof.Ops(1)
	s.Prof.Bytes(int64(len(body)))
	return seq, body, true
}

// OnAck processes an acknowledgement without a timestamp: bookkeeping
// only, no latency is recorded. Callers that know the arrival time should
// use OnAckAt.
func (s *Sender) OnAck(seq uint16) {
	s.Metrics.onAck()
	delete(s.inflight, seq)
	delete(s.firstTx, seq)
	if !s.acked[seq] {
		s.acked[seq] = true
		s.ackedPayload += int64(s.PayloadBytes)
	}
}

// OnAckAt processes an acknowledgement arriving at time at and returns
// the end-to-end latency from the sequence number's FIRST transmission —
// the delay the application experienced, retransmissions included. ok is
// false for duplicate ACKs (latency already reported) and for sequence
// numbers this sender never sent.
func (s *Sender) OnAckAt(seq uint16, at float64) (latency float64, ok bool) {
	s.Metrics.onAck()
	delete(s.inflight, seq)
	if first, seen := s.firstTx[seq]; seen {
		latency, ok = at-first, true
		delete(s.firstTx, seq)
		s.Metrics.observeAckLatency(latency)
	}
	if !s.acked[seq] {
		s.acked[seq] = true
		s.ackedPayload += int64(s.PayloadBytes)
	}
	return latency, ok
}

// Stats snapshot.
func (s *Sender) FramesSent() int     { return s.framesSent }
func (s *Sender) Retransmits() int    { return s.retransmits }
func (s *Sender) AckedPayload() int64 { return s.ackedPayload }
func (s *Sender) InFlight() int       { return len(s.inflight) }
func (s *Sender) FrameBytes() int     { return SeqBytes + s.PayloadBytes }
func (s *Sender) UniqueAcked() int    { return len(s.acked) }

// Receiver is the ARQ peer: it validates the deterministic payload,
// deduplicates by sequence number, and produces acknowledgements.
type Receiver struct {
	payloadBytes int
	seen         map[uint16]bool
	delivered    int64
	duplicates   int
	corrupt      int
}

// NewReceiverSide builds the receiver-side ARQ state.
func NewReceiverSide(payloadBytes int) *Receiver {
	return &Receiver{payloadBytes: payloadBytes, seen: map[uint16]bool{}}
}

// OnFrame processes a decoded frame body and returns the sequence to
// acknowledge. Frames whose payload does not match the deterministic
// generator are counted as corrupt and not acknowledged (they passed CRC
// by a fluke, which at 2^-16 residual probability does happen in long
// runs).
func (r *Receiver) OnFrame(body []byte) (seq uint16, ackIt bool) {
	if len(body) != SeqBytes+r.payloadBytes {
		r.corrupt++
		return 0, false
	}
	seq = binary.BigEndian.Uint16(body)
	want := (&Sender{PayloadBytes: r.payloadBytes}).payloadFor(seq)
	for i := range body {
		if body[i] != want[i] {
			r.corrupt++
			return 0, false
		}
	}
	if r.seen[seq] {
		r.duplicates++
		return seq, true // re-ack: the previous ACK may have been lost
	}
	r.seen[seq] = true
	r.delivered += int64(r.payloadBytes)
	return seq, true
}

// Stats snapshot.
func (r *Receiver) DeliveredPayload() int64 { return r.delivered }
func (r *Receiver) Duplicates() int         { return r.duplicates }
func (r *Receiver) Corrupt() int            { return r.corrupt }
