package mac

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"strconv"

	"smartvlc/internal/telemetry/prof"
	"smartvlc/internal/telemetry/vlog"
)

// SeqBytes is the per-frame MAC overhead: a 2-byte sequence number
// prepended to the application payload.
const SeqBytes = 2

// seqWords sizes the per-seq bitmaps: one bit per point of the 16-bit
// sequence space, 1024 words of 64 bits = 8 KB. Bitmaps replace the
// seq-keyed maps the ARQ state used to grow without bound — a long-lived
// session now holds a fixed 8 KB per side instead of one map entry per
// frame ever sent.
const seqWords = 1 << 16 / 64

// seqBitmap is a fixed-size set over the 16-bit sequence space.
type seqBitmap [seqWords]uint64

func (m *seqBitmap) has(seq uint16) bool { return m[seq>>6]&(1<<(seq&63)) != 0 }
func (m *seqBitmap) set(seq uint16)      { m[seq>>6] |= 1 << (seq & 63) }
func (m *seqBitmap) clear(seq uint16)    { m[seq>>6] &^= 1 << (seq & 63) }
func (m *seqBitmap) reset()              { *m = seqBitmap{} }

// payloadSeed keys the deterministic per-seq payload generator. Sender
// and Receiver must derive the body from the same stream so validation
// can regenerate it instead of carrying it.
const payloadSeed = 0x5eedf00d

// appendPayloadFor writes the deterministic frame body for a sequence
// number into dst[:0]: the 2-byte seq followed by pseudo-random
// application bytes. pcg is caller-owned scratch (reseeded here), which
// keeps the generation allocation-free; the draws are bit-identical to
// rand.New(rand.NewPCG(payloadSeed, seq)) because (*rand.Rand).Uint64
// delegates straight to its source.
func appendPayloadFor(dst []byte, pcg *rand.PCG, seq uint16, payloadBytes int) []byte {
	n := SeqBytes + payloadBytes
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	binary.BigEndian.PutUint16(dst, seq)
	pcg.Seed(payloadSeed, uint64(seq))
	for i := SeqBytes; i < n; i++ {
		dst[i] = byte(pcg.Uint64())
	}
	return dst
}

// flight is one unacknowledged frame: its sequence number, the last
// transmission time (drives the retransmit timeout) and the first (drives
// the end-to-end ACK latency). The sender keeps at most Window of these
// in a compact slice — the in-flight set IS the window, so a slice scan
// beats a map both in locality and in not allocating.
type flight struct {
	seq     uint16
	lastTx  float64
	firstTx float64
}

// Sender is a sliding-window ARQ transmitter. Frames carry a sequence
// number; unacknowledged frames are retransmitted after a timeout.
// Payload content is deterministic per sequence number, so a
// retransmission is bit-identical to the original.
//
// All bookkeeping is windowed over the 16-bit sequence space: the
// in-flight set is a ≤Window slice and the acked set an 8 KB bitmap, so
// steady-state memory is constant no matter how long the session runs.
// When the sequence counter wraps and a number is reissued, its acked
// bit is cleared first, so the new incarnation's payload counts toward
// goodput — the old map kept the stale entry and silently undercounted
// any session past 65536 frames.
type Sender struct {
	// Window is the maximum number of unacknowledged frames in flight.
	Window int
	// TimeoutSeconds triggers retransmission of an unacked frame.
	TimeoutSeconds float64
	// PayloadBytes is the application payload per frame (128 in the
	// paper's evaluation), excluding the sequence header.
	PayloadBytes int
	// Metrics, when non-nil, records timeouts, window occupancy and ACK
	// arrivals. Nil (the default) is a no-op.
	Metrics *Metrics
	// Prof, when non-nil, attributes MAC framing cost (frames emitted,
	// payload bytes) to the owning stage profiler series. Nil is a no-op.
	Prof *prof.Stage
	// Log, when non-nil, receives structured records for the ARQ
	// decisions: a Warn per timeout retransmission, a Debug per
	// window-full stall and per accepted ACK. The sender runs on the
	// session's main goroutine, so it writes the logger directly —
	// records interleave deterministically with the spliced shard logs.
	// Nil (the default) is a no-op.
	Log *vlog.Logger

	rng      *rand.Rand
	nextSeq  uint16
	inflight []flight // ≤ Window entries, insertion order

	payloadBuf []byte
	payloadPCG rand.PCG

	// Stats.
	framesSent   int
	retransmits  int
	ackedPayload int64
	acked        seqBitmap
	uniqueAcked  int
}

// NewSender builds an ARQ sender.
func NewSender(window, payloadBytes int, timeout float64, rng *rand.Rand) (*Sender, error) {
	s := &Sender{}
	if err := s.Reset(window, payloadBytes, timeout, rng); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset returns the sender to its just-constructed state for the given
// parameters, reusing the in-flight slice and payload scratch. A renting
// arena calls this instead of NewSender so warm sessions start with zero
// MAC allocations. Metrics and Prof are cleared, matching a fresh sender.
func (s *Sender) Reset(window, payloadBytes int, timeout float64, rng *rand.Rand) error {
	if window < 1 {
		return fmt.Errorf("mac: window %d < 1", window)
	}
	if payloadBytes < 1 || payloadBytes > 65000 {
		return fmt.Errorf("mac: payload %d bytes out of range", payloadBytes)
	}
	if timeout <= 0 {
		return fmt.Errorf("mac: timeout %v must be positive", timeout)
	}
	s.Window = window
	s.TimeoutSeconds = timeout
	s.PayloadBytes = payloadBytes
	s.Metrics = nil
	s.Prof = nil
	s.Log = nil
	s.rng = rng
	s.nextSeq = 0
	s.inflight = s.inflight[:0]
	s.framesSent = 0
	s.retransmits = 0
	s.ackedPayload = 0
	s.acked.reset()
	s.uniqueAcked = 0
	return nil
}

// payloadFor deterministically generates the frame body for a sequence
// number. The returned slice is the sender's scratch buffer, valid until
// the next payloadFor / NextFrame call.
func (s *Sender) payloadFor(seq uint16) []byte {
	s.payloadBuf = appendPayloadFor(s.payloadBuf, &s.payloadPCG, seq, s.PayloadBytes)
	return s.payloadBuf
}

// NextFrame returns the next frame body to transmit at time now:
// a timed-out retransmission if any, else a new frame if the window
// allows. ok is false when the sender must idle. The body aliases the
// sender's scratch buffer and is valid until the next call.
func (s *Sender) NextFrame(now float64) (seq uint16, body []byte, ok bool) {
	s.Metrics.observeWindow(len(s.inflight))
	// Oldest timed-out frame first.
	found := false
	oldest := -1
	var oldestAt float64
	for i := range s.inflight {
		if at := s.inflight[i].lastTx; now-at >= s.TimeoutSeconds && (!found || at < oldestAt) {
			oldest, oldestAt, found = i, at, true
		}
	}
	if found {
		f := &s.inflight[oldest]
		age := now - f.lastTx
		f.lastTx = now
		s.framesSent++
		s.retransmits++
		s.Metrics.onTimeout()
		if s.Log.Enabled(vlog.Warn) {
			s.Log.Record(vlog.Record{
				At: now, Level: vlog.Warn, Stage: "mac/retx",
				Msg: "ack timeout, retransmitting", Seq: int64(f.seq),
				Attrs: []vlog.Attr{
					{Key: "age_s", Value: strconv.FormatFloat(age, 'g', -1, 64)},
					{Key: "in_flight", Value: strconv.Itoa(len(s.inflight))},
				},
			})
		}
		body := s.payloadFor(f.seq)
		s.Prof.Ops(1)
		s.Prof.Bytes(int64(len(body)))
		return f.seq, body, true
	}
	if len(s.inflight) >= s.Window {
		s.Metrics.onStall()
		if s.Log.Enabled(vlog.Debug) {
			s.Log.Record(vlog.Record{
				At: now, Level: vlog.Debug, Stage: "mac/window",
				Msg: "window full, sender idle", Seq: -1,
				Attrs: []vlog.Attr{{Key: "in_flight", Value: strconv.Itoa(len(s.inflight))}},
			})
		}
		return 0, nil, false
	}
	seq = s.nextSeq
	s.nextSeq++
	// Reissuing a wrapped sequence number starts a fresh incarnation: its
	// previous acked bit must not swallow the new frame's goodput.
	s.acked.clear(seq)
	s.inflight = append(s.inflight, flight{seq: seq, lastTx: now, firstTx: now})
	s.framesSent++
	body = s.payloadFor(seq)
	s.Prof.Ops(1)
	s.Prof.Bytes(int64(len(body)))
	return seq, body, true
}

// takeFlight removes and returns the in-flight entry for seq, preserving
// insertion order. ok is false when seq is not in flight (duplicate ACK).
func (s *Sender) takeFlight(seq uint16) (f flight, ok bool) {
	for i := range s.inflight {
		if s.inflight[i].seq == seq {
			f = s.inflight[i]
			s.inflight = append(s.inflight[:i], s.inflight[i+1:]...)
			return f, true
		}
	}
	return flight{}, false
}

// recordAck marks seq acknowledged, crediting its payload once per
// incarnation.
func (s *Sender) recordAck(seq uint16) {
	if !s.acked.has(seq) {
		s.acked.set(seq)
		s.uniqueAcked++
		s.ackedPayload += int64(s.PayloadBytes)
	}
}

// OnAck processes an acknowledgement without a timestamp: bookkeeping
// only, no latency is recorded. Callers that know the arrival time should
// use OnAckAt.
func (s *Sender) OnAck(seq uint16) {
	s.Metrics.onAck()
	s.takeFlight(seq)
	s.recordAck(seq)
}

// OnAckAt processes an acknowledgement arriving at time at and returns
// the end-to-end latency from the sequence number's FIRST transmission —
// the delay the application experienced, retransmissions included. ok is
// false for duplicate ACKs (latency already reported) and for sequence
// numbers this sender never sent.
func (s *Sender) OnAckAt(seq uint16, at float64) (latency float64, ok bool) {
	s.Metrics.onAck()
	if f, found := s.takeFlight(seq); found {
		latency, ok = at-f.firstTx, true
		s.Metrics.observeAckLatency(latency)
		if s.Log.Enabled(vlog.Debug) {
			s.Log.Record(vlog.Record{
				At: at, Level: vlog.Debug, Stage: "mac/ack",
				Msg: "ack accepted", Seq: int64(seq),
				Attrs: []vlog.Attr{{Key: "latency_s", Value: strconv.FormatFloat(latency, 'g', -1, 64)}},
			})
		}
	}
	s.recordAck(seq)
	return latency, ok
}

// Stats snapshot.
func (s *Sender) FramesSent() int     { return s.framesSent }
func (s *Sender) Retransmits() int    { return s.retransmits }
func (s *Sender) AckedPayload() int64 { return s.ackedPayload }
func (s *Sender) InFlight() int       { return len(s.inflight) }
func (s *Sender) FrameBytes() int     { return SeqBytes + s.PayloadBytes }

// UniqueAcked counts acknowledged frame incarnations. Within the first
// 65536 frames this equals the number of distinct acked sequence numbers;
// past a wrap each reissue counts again, which is the delivered-frame
// count a long-lived session actually wants.
func (s *Sender) UniqueAcked() int { return s.uniqueAcked }

// Receiver is the ARQ peer: it validates the deterministic payload,
// deduplicates by sequence number, and produces acknowledgements.
//
// Deduplication is windowed like the sender's bookkeeping: a seen bitmap
// plus a head cursor that clears reissued sequence numbers as the head
// advances past them, so memory stays fixed and wrapped sessions count
// redelivered incarnations as fresh payload rather than duplicates.
type Receiver struct {
	payloadBytes int
	seen         seqBitmap
	head         uint16
	headSet      bool
	delivered    int64
	duplicates   int
	corrupt      int

	wantBuf []byte
	wantPCG rand.PCG
}

// NewReceiverSide builds the receiver-side ARQ state.
func NewReceiverSide(payloadBytes int) *Receiver {
	r := &Receiver{}
	r.Reset(payloadBytes)
	return r
}

// Reset returns the receiver to its just-constructed state, reusing the
// validation scratch, so an arena can rent it across sessions.
func (r *Receiver) Reset(payloadBytes int) {
	r.payloadBytes = payloadBytes
	r.seen.reset()
	r.head = 0
	r.headSet = false
	r.delivered = 0
	r.duplicates = 0
	r.corrupt = 0
}

// advanceHead moves the dedup window head forward to seq, clearing the
// seen bits of every sequence number the head passes: those numbers are
// now a full 2^16 behind the sender and their next appearance is a new
// incarnation. Signed 16-bit distance tells forward from backward, the
// same arithmetic the sender's window implies (in-order delivery keeps
// |seq-head| far below 2^15).
func (r *Receiver) advanceHead(seq uint16) {
	if !r.headSet {
		r.head, r.headSet = seq, true
		return
	}
	d := int16(seq - r.head)
	for ; d > 0; d-- {
		r.head++
		r.seen.clear(r.head)
	}
}

// OnFrame processes a decoded frame body and returns the sequence to
// acknowledge. Frames whose payload does not match the deterministic
// generator are counted as corrupt and not acknowledged (they passed CRC
// by a fluke, which at 2^-16 residual probability does happen in long
// runs).
func (r *Receiver) OnFrame(body []byte) (seq uint16, ackIt bool) {
	if len(body) != SeqBytes+r.payloadBytes {
		r.corrupt++
		return 0, false
	}
	seq = binary.BigEndian.Uint16(body)
	r.wantBuf = appendPayloadFor(r.wantBuf, &r.wantPCG, seq, r.payloadBytes)
	for i := range body {
		if body[i] != r.wantBuf[i] {
			r.corrupt++
			return 0, false
		}
	}
	r.advanceHead(seq)
	if r.seen.has(seq) {
		r.duplicates++
		return seq, true // re-ack: the previous ACK may have been lost
	}
	r.seen.set(seq)
	r.delivered += int64(r.payloadBytes)
	return seq, true
}

// Stats snapshot.
func (r *Receiver) DeliveredPayload() int64 { return r.delivered }
func (r *Receiver) Duplicates() int         { return r.duplicates }
func (r *Receiver) Corrupt() int            { return r.corrupt }
