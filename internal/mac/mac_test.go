package mac

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"smartvlc/internal/telemetry"
)

func TestSideChannelDelivery(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	sc := NewSideChannel(0.002, 0, 0, rng)
	sc.Send(0.0, Message{Kind: KindAck, Seq: 1})
	sc.Send(0.001, Message{Kind: KindAck, Seq: 2})
	if got := sc.Receive(0.0015); len(got) != 0 {
		t.Fatalf("early delivery: %v", got)
	}
	got := sc.Receive(0.0025)
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("first delivery: %v", got)
	}
	got = sc.Receive(0.004)
	if len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("second delivery: %v", got)
	}
	if sc.Pending() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestSideChannelLoss(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	sc := NewSideChannel(0.001, 0, 0.5, rng)
	for i := 0; i < 1000; i++ {
		sc.Send(0, Message{Seq: uint16(i)})
	}
	got := sc.Receive(1)
	if len(got) < 400 || len(got) > 600 {
		t.Fatalf("loss rate off: delivered %d of 1000", len(got))
	}
}

func TestSideChannelJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	sc := NewSideChannel(0.001, 0.004, 0, rng)
	for i := 0; i < 200; i++ {
		sc.Send(0, Message{Seq: uint16(i)})
	}
	if got := sc.Receive(0.0009); len(got) != 0 {
		t.Fatal("delivered before base latency")
	}
	if got := sc.Receive(0.0051); len(got) != 200 {
		t.Fatalf("not all delivered after max jitter: %d", len(got))
	}
}

func TestSenderWindowLimits(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	s, err := NewSender(3, 16, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint16
	for i := 0; i < 3; i++ {
		seq, body, ok := s.NextFrame(0)
		if !ok || len(body) != 18 {
			t.Fatalf("frame %d: ok=%v len=%d", i, ok, len(body))
		}
		seqs = append(seqs, seq)
	}
	if _, _, ok := s.NextFrame(0.01); ok {
		t.Fatal("window overrun")
	}
	s.OnAck(seqs[0])
	if _, _, ok := s.NextFrame(0.02); !ok {
		t.Fatal("window did not reopen after ack")
	}
	if s.InFlight() != 3 {
		t.Fatalf("inflight %d", s.InFlight())
	}
}

func TestSenderRetransmitsAfterTimeout(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	s, _ := NewSender(1, 16, 0.05, rng)
	seq0, body0, _ := s.NextFrame(0)
	if _, _, ok := s.NextFrame(0.01); ok {
		t.Fatal("premature frame")
	}
	seq1, body1, ok := s.NextFrame(0.06)
	if !ok || seq1 != seq0 {
		t.Fatalf("expected retransmission of %d, got %d ok=%v", seq0, seq1, ok)
	}
	if string(body0) != string(body1) {
		t.Fatal("retransmission differs from original")
	}
	if s.Retransmits() != 1 {
		t.Fatalf("retransmits %d", s.Retransmits())
	}
}

func TestAckAccounting(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	s, _ := NewSender(8, 100, 0.05, rng)
	seq, _, _ := s.NextFrame(0)
	s.OnAck(seq)
	s.OnAck(seq) // duplicate ack counts once
	if s.AckedPayload() != 100 {
		t.Fatalf("acked payload %d", s.AckedPayload())
	}
	if s.UniqueAcked() != 1 {
		t.Fatalf("unique acked %d", s.UniqueAcked())
	}
}

func TestAckLatencyFromFirstTransmission(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 7))
	s, _ := NewSender(8, 100, 0.05, rng)
	seq, _, _ := s.NextFrame(0.010)
	// Timed-out retransmission must NOT reset the latency origin.
	rseq, _, _ := s.NextFrame(0.070)
	if rseq != seq {
		t.Fatalf("expected retransmission of %d, got %d", seq, rseq)
	}
	lat, ok := s.OnAckAt(seq, 0.090)
	if !ok {
		t.Fatal("first ack should report latency")
	}
	if want := 0.090 - 0.010; math.Abs(lat-want) > 1e-12 {
		t.Fatalf("latency %v, want %v", lat, want)
	}
	// Duplicate ACK: no second latency sample, accounting unchanged.
	if _, ok := s.OnAckAt(seq, 0.120); ok {
		t.Fatal("duplicate ack reported a latency")
	}
	if s.AckedPayload() != 100 || s.UniqueAcked() != 1 {
		t.Fatalf("acked payload %d unique %d", s.AckedPayload(), s.UniqueAcked())
	}
	// Unknown sequence numbers report nothing.
	if _, ok := s.OnAckAt(9999, 0.2); ok {
		t.Fatal("unknown seq reported a latency")
	}
}

func TestAckLatencyMetricsHistogram(t *testing.T) {
	reg := telemetry.New()
	rng := rand.New(rand.NewPCG(6, 8))
	s, _ := NewSender(8, 100, 0.05, rng)
	s.Metrics = NewMetrics(reg)
	seq, _, _ := s.NextFrame(0)
	s.OnAckAt(seq, 0.025)
	h := reg.Histogram("mac_ack_latency_seconds")
	if h.Count() != 1 || math.Abs(h.Sum()-0.025) > 1e-12 {
		t.Fatalf("ack latency histogram count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestReceiverValidatesAndDedups(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	s, _ := NewSender(8, 32, 0.05, rng)
	r := NewReceiverSide(32)
	seq, body, _ := s.NextFrame(0)

	got, ack := r.OnFrame(body)
	if !ack || got != seq {
		t.Fatalf("OnFrame: %d %v", got, ack)
	}
	if r.DeliveredPayload() != 32 {
		t.Fatalf("delivered %d", r.DeliveredPayload())
	}
	// Duplicate re-acks but does not double count.
	if _, ack := r.OnFrame(body); !ack {
		t.Fatal("duplicate should re-ack")
	}
	if r.DeliveredPayload() != 32 || r.Duplicates() != 1 {
		t.Fatalf("dup accounting: %d %d", r.DeliveredPayload(), r.Duplicates())
	}
	// Corrupted payload that slipped past CRC is rejected.
	bad := append([]byte(nil), body...)
	bad[10] ^= 0xFF
	if _, ack := r.OnFrame(bad); ack {
		t.Fatal("corrupt frame acked")
	}
	if r.Corrupt() != 1 {
		t.Fatalf("corrupt count %d", r.Corrupt())
	}
	if _, ack := r.OnFrame(bad[:5]); ack {
		t.Fatal("short frame acked")
	}
}

func TestSenderValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	if _, err := NewSender(0, 10, 1, rng); err == nil {
		t.Fatal("window 0 accepted")
	}
	if _, err := NewSender(1, 0, 1, rng); err == nil {
		t.Fatal("payload 0 accepted")
	}
	if _, err := NewSender(1, 10, 0, rng); err == nil {
		t.Fatal("timeout 0 accepted")
	}
}

func TestEndToEndARQConvergesUnderLoss(t *testing.T) {
	// Run the ARQ over a lossy abstract link (30% frame loss, 10% ack
	// loss): all frames eventually deliver exactly once.
	rng := rand.New(rand.NewPCG(9, 9))
	s, _ := NewSender(4, 8, 0.02, rng)
	r := NewReceiverSide(8)
	sc := NewSideChannel(0.001, 0.001, 0.1, rng)

	now := 0.0
	target := int64(8 * 200)
	for i := 0; i < 20000 && s.AckedPayload() < target; i++ {
		if _, body, ok := s.NextFrame(now); ok {
			if rng.Float64() > 0.3 { // frame survives VLC link
				if seq, ackIt := r.OnFrame(body); ackIt {
					sc.Send(now, Message{Kind: KindAck, Seq: seq})
				}
			}
		}
		now += 0.005
		for _, m := range sc.Receive(now) {
			if m.Kind == KindAck {
				s.OnAck(m.Seq)
			}
		}
	}
	if s.AckedPayload() < target {
		t.Fatalf("ARQ failed to deliver: %d of %d", s.AckedPayload(), target)
	}
	if r.DeliveredPayload() < target {
		t.Fatalf("receiver delivered %d", r.DeliveredPayload())
	}
	if s.Retransmits() == 0 {
		t.Fatal("expected retransmissions under loss")
	}
}

func TestPayloadDeterminism(t *testing.T) {
	f := func(seq uint16) bool {
		a := (&Sender{PayloadBytes: 64}).payloadFor(seq)
		b := (&Sender{PayloadBytes: 64}).payloadFor(seq)
		if len(a) != 66 {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVLCUplinkSerializesMessages(t *testing.T) {
	u := NewVLCUplink(10e3, 100, 2.5, 2.0) // 10 ms per message
	u.Send(0, Message{Seq: 1})
	u.Send(0, Message{Seq: 2}) // queued behind the first
	if got := u.Receive(0.005); len(got) != 0 {
		t.Fatalf("early delivery: %v", got)
	}
	got := u.Receive(0.0101)
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("first: %v", got)
	}
	got = u.Receive(0.0201)
	if len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("second (serialized): %v", got)
	}
	if u.Pending() != 0 {
		t.Fatal("pending")
	}
}

func TestVLCUplinkOutOfRangeDropsEverything(t *testing.T) {
	u := NewVLCUplink(10e3, 100, 2.0, 3.5)
	u.Send(0, Message{Seq: 1})
	if u.Pending() != 0 {
		t.Fatal("out-of-range message queued")
	}
	if got := u.Receive(10); len(got) != 0 {
		t.Fatalf("delivered: %v", got)
	}
}

func TestVLCUplinkIdleGapResetsClock(t *testing.T) {
	u := NewVLCUplink(10e3, 100, 2.5, 1.0)
	u.Send(0, Message{Seq: 1})
	u.Send(5, Message{Seq: 2}) // long idle: starts immediately at t=5
	got := u.Receive(5.011)
	if len(got) != 2 {
		t.Fatalf("deliveries: %v", got)
	}
	if got[1].At < 5.0099 || got[1].At > 5.0101 {
		t.Fatalf("second delivery at %v", got[1].At)
	}
}

// TestLongSessionWindowedBookkeeping drives a sender/receiver pair
// through more cycles than the 16-bit sequence space holds. The windowed
// ring/bitmap bookkeeping must keep goodput accounting exact across the
// wrap (each reissued sequence number is a new incarnation and earns
// payload credit again) — the regime where the old map-based bookkeeping
// both grew without bound and undercounted goodput after seq reuse.
func TestLongSessionWindowedBookkeeping(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	s, err := NewSender(8, 4, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReceiverSide(4)
	const cycles = 70000 // > 65536: wraps the sequence space
	now := 0.0
	for i := 0; i < cycles; i++ {
		seq, body, ok := s.NextFrame(now)
		if !ok {
			t.Fatalf("cycle %d: window closed with no frames in flight", i)
		}
		gotSeq, ackIt := r.OnFrame(body)
		if !ackIt || gotSeq != seq {
			t.Fatalf("cycle %d: receiver seq=%d ackIt=%v, want seq=%d", i, gotSeq, ackIt, seq)
		}
		s.OnAck(seq)
		now += 0.001
	}
	if s.UniqueAcked() != cycles {
		t.Fatalf("unique acked %d, want %d", s.UniqueAcked(), cycles)
	}
	if s.AckedPayload() != int64(cycles)*4 {
		t.Fatalf("acked payload %d, want %d", s.AckedPayload(), int64(cycles)*4)
	}
	if r.DeliveredPayload() != int64(cycles)*4 {
		t.Fatalf("delivered payload %d, want %d", r.DeliveredPayload(), int64(cycles)*4)
	}
	if r.Duplicates() != 0 || s.Retransmits() != 0 {
		t.Fatalf("dups %d retransmits %d on a clean pipe", r.Duplicates(), s.Retransmits())
	}

	// Steady state is allocation-free: the flight ring, payload scratch
	// and seq bitmaps are all fixed-size, so the heap stops growing with
	// traffic once the pair is warm.
	allocs := testing.AllocsPerRun(1000, func() {
		seq, body, ok := s.NextFrame(now)
		if !ok {
			t.Fatal("window closed")
		}
		if _, ackIt := r.OnFrame(body); !ackIt {
			t.Fatal("frame rejected")
		}
		s.OnAck(seq)
		now += 0.001
	})
	if allocs != 0 {
		t.Fatalf("send/deliver/ack cycle allocates %v times, want 0", allocs)
	}
}
