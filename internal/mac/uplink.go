package mac

import "math"

// Uplink abstracts the return channel that carries ACKs and ambient
// reports from receivers to the transmitter. The paper's prototype uses
// Wi-Fi (SideChannel); its future-work section anticipates a VLC uplink
// once mobile nodes carry capable LEDs — VLCUplink models that.
type Uplink interface {
	// Send enqueues a message at time now; it may be dropped.
	Send(now float64, m Message)
	// Receive returns all messages delivered by time now, in order.
	Receive(now float64) []Message
	// Pending returns the number of undelivered messages.
	Pending() int
}

// SideChannel implements Uplink.
var _ Uplink = (*SideChannel)(nil)

// VLCUplink is a serialized low-rate optical return link: a small LED on
// the mobile node. Unlike Wi-Fi it has no contention jitter, but it is
// half-duplex-serial — messages queue behind each other at AckBits/BitRate
// per message — and it only works within its own (short) range.
type VLCUplink struct {
	// BitRate is the uplink PHY rate; mobile-node LEDs are far weaker
	// than the luminaire (e.g. 10 kbps).
	BitRate float64
	// MessageBits is the on-air size of one ACK/report frame, including
	// its own preamble and CRC.
	MessageBits int
	// RangeM is the uplink's maximum distance; beyond it every message is
	// lost — the field-of-view problem the paper cites as the reason it
	// used Wi-Fi.
	RangeM float64
	// DistanceM is the current link distance.
	DistanceM float64
	// Metrics, when non-nil, counts sent and dropped (out-of-range)
	// messages. Nil (the default) is a no-op.
	Metrics *Metrics

	lastFree float64
	queue    []Message
	out      []Message
}

// NewVLCUplink returns an uplink with the given PHY rate and range at the
// current distance. Typical values: 10 kbps, 96-bit messages, 2.0 m range.
func NewVLCUplink(bitRate float64, messageBits int, rangeM, distanceM float64) *VLCUplink {
	return &VLCUplink{BitRate: bitRate, MessageBits: messageBits, RangeM: rangeM, DistanceM: distanceM}
}

// Reset returns the uplink to its just-constructed state for the given
// parameters, keeping queue and scratch capacity for a renting arena.
func (u *VLCUplink) Reset(bitRate float64, messageBits int, rangeM, distanceM float64) {
	u.BitRate = bitRate
	u.MessageBits = messageBits
	u.RangeM = rangeM
	u.DistanceM = distanceM
	u.Metrics = nil
	u.lastFree = 0
	u.queue = u.queue[:0]
}

// Send implements Uplink.
func (u *VLCUplink) Send(now float64, m Message) {
	if u.DistanceM > u.RangeM || u.BitRate <= 0 {
		u.Metrics.onSideDropped()
		return // out of range: the weak LED cannot reach the luminaire
	}
	u.Metrics.onSideSent()
	start := math.Max(now, u.lastFree)
	airtime := float64(u.MessageBits) / u.BitRate
	u.lastFree = start + airtime
	m.At = u.lastFree
	u.queue = append(u.queue, m)
}

// Receive implements Uplink. Messages are already in delivery order
// because the channel is serial. The returned slice aliases the uplink's
// scratch buffer and is valid until the next Receive call.
func (u *VLCUplink) Receive(now float64) []Message {
	n := 0
	for n < len(u.queue) && u.queue[n].At <= now {
		n++
	}
	u.out = append(u.out[:0], u.queue[:n]...)
	u.queue = u.queue[:copy(u.queue, u.queue[n:])]
	return u.out
}

// Pending implements Uplink.
func (u *VLCUplink) Pending() int { return len(u.queue) }
