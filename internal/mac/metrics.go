package mac

import "smartvlc/internal/telemetry"

// Metrics instruments the ARQ sender and the side channel. A nil *Metrics
// (the default) is a no-op, so the MAC carries a handle unconditionally
// and pays one nil check when telemetry is off.
type Metrics struct {
	// Timeouts counts retransmissions triggered by ACK timeout.
	Timeouts *telemetry.Counter
	// WindowOccupancy observes the in-flight frame count at every
	// NextFrame decision — the ARQ window pressure distribution.
	WindowOccupancy *telemetry.Histogram
	// WindowStalls counts NextFrame calls refused because the window was
	// full (the LED idles at the dimming level).
	WindowStalls *telemetry.Counter
	// AcksReceived counts acknowledgements processed by the sender.
	AcksReceived *telemetry.Counter
	// SideSent and SideDropped count side-channel datagrams accepted and
	// lost (the simulated Wi-Fi uplink drops independently per message).
	SideSent, SideDropped *telemetry.Counter
	// AckLatency observes the first-transmission→ACK delay per sequence
	// number (seconds), recorded once per unique sequence in OnAckAt.
	AckLatency *telemetry.Histogram
}

// NewMetrics builds the MAC instrument handles on a registry. Returns nil
// on a nil registry — the no-op default.
func NewMetrics(r *telemetry.Registry) *Metrics {
	if r == nil {
		return nil
	}
	r.Help("mac_timeouts_total", "ARQ retransmissions triggered by ACK timeout.")
	r.Help("mac_window_occupancy", "In-flight frames observed at each NextFrame decision.")
	r.Help("mac_side_messages_total", "Side-channel datagrams by outcome (sent vs dropped).")
	r.Help("mac_ack_latency_seconds", "First transmission to ACK delay per unique sequence number.")
	return &Metrics{
		Timeouts:        r.Counter("mac_timeouts_total"),
		WindowOccupancy: r.Histogram("mac_window_occupancy"),
		WindowStalls:    r.Counter("mac_window_stalls_total"),
		AcksReceived:    r.Counter("mac_acks_received_total"),
		SideSent:        r.Counter("mac_side_messages_total", "outcome", "sent"),
		SideDropped:     r.Counter("mac_side_messages_total", "outcome", "dropped"),
		AckLatency:      r.Histogram("mac_ack_latency_seconds"),
	}
}

func (m *Metrics) onTimeout() {
	if m != nil {
		m.Timeouts.Inc()
	}
}

func (m *Metrics) observeWindow(inflight int) {
	if m != nil {
		m.WindowOccupancy.Observe(float64(inflight))
	}
}

func (m *Metrics) onStall() {
	if m != nil {
		m.WindowStalls.Inc()
	}
}

func (m *Metrics) onAck() {
	if m != nil {
		m.AcksReceived.Inc()
	}
}

func (m *Metrics) observeAckLatency(lat float64) {
	if m != nil {
		m.AckLatency.Observe(lat)
	}
}

func (m *Metrics) onSideSent() {
	if m != nil {
		m.SideSent.Inc()
	}
}

func (m *Metrics) onSideDropped() {
	if m != nil {
		m.SideDropped.Inc()
	}
}
