package light

import (
	"fmt"
	"math"
)

// Controller implements paper §4.3: it keeps the total illumination
// I_sum = I_led + I_ambient constant by retargeting the LED whenever the
// ambient contribution changes, moving there through the configured
// Stepper so no step is perceivable.
//
// All intensities are normalized: 1.0 is the LED at full brightness, and
// ambient light is expressed in the same units (AmbientFullLux maps lux to
// this scale).
type Controller struct {
	// TargetSum is the desired constant total illumination, in LED units.
	TargetSum float64
	// MinLevel and MaxLevel clamp the LED's operating range; the paper
	// evaluates dimming levels in [0.1, 0.9].
	MinLevel, MaxLevel float64
	// Deadband suppresses retargeting for ambient changes whose required
	// LED correction is below this threshold, mimicking the paper's goal
	// of minimizing the number of adaptations.
	Deadband float64
	// Stepper plans the flicker-free path to each new target.
	Stepper Stepper
	// Metrics, when non-nil, records steps, retargets and the perceived-
	// domain error. Nil (the default) is a no-op.
	Metrics *Metrics

	level       float64
	initialized bool
	adjustments int
	retargets   int
}

// NewController returns a controller starting at the level required for
// zero ambient light.
func NewController(targetSum float64, stepper Stepper) (*Controller, error) {
	if targetSum <= 0 || targetSum > 2 {
		return nil, fmt.Errorf("light: implausible target sum %v", targetSum)
	}
	if stepper == nil {
		return nil, fmt.Errorf("light: nil stepper")
	}
	return &Controller{
		TargetSum: targetSum,
		MinLevel:  0.1,
		MaxLevel:  0.9,
		Deadband:  1e-4,
		Stepper:   stepper,
	}, nil
}

// Level returns the LED's current measured-domain level.
func (c *Controller) Level() float64 { return c.level }

// Adjustments returns the cumulative number of brightness steps taken —
// the quantity plotted in paper Fig. 19(c). Every step costs a
// super-symbol re-selection and wears the driver, so fewer is better.
func (c *Controller) Adjustments() int { return c.adjustments }

// Retargets returns how many times the target changed by more than the
// deadband.
func (c *Controller) Retargets() int { return c.retargets }

// Required returns the clamped LED level needed for a given ambient
// contribution (paper Eq. 5: ΔI_led = −ΔI_amb).
func (c *Controller) Required(ambient float64) float64 {
	return math.Min(c.MaxLevel, math.Max(c.MinLevel, c.TargetSum-ambient))
}

// Observe processes a new ambient reading and returns the flicker-free
// step plan toward the new required level (empty when within the
// deadband). The controller's level advances through the entire plan; the
// caller applies the steps at its own pace (one per super-symbol boundary,
// in the transmitter).
func (c *Controller) Observe(ambient float64) []float64 {
	target := c.Required(ambient)
	if !c.initialized {
		c.initialized = true
		c.level = target
		c.Metrics.onInit(target)
		c.Metrics.observeError(c.level, target)
		return []float64{target}
	}
	if math.Abs(target-c.level) <= c.Deadband {
		c.Metrics.observeError(c.level, target)
		return nil
	}
	plan := c.Stepper.Plan(c.level, target)
	prev := c.level
	for _, step := range plan {
		c.Metrics.onStep(prev, step)
		prev = step
	}
	c.level = target
	c.adjustments += len(plan)
	c.retargets++
	c.Metrics.onRetarget()
	c.Metrics.observeError(c.level, target)
	return plan
}

// StepToward is the incremental variant used by the live transmitter: it
// recomputes the target for the latest ambient reading and advances the
// LED by at most ONE stepper step (one step per super-symbol/frame
// boundary keeps each change imperceptible while the target may still be
// moving). It returns the new level and whether a step was taken.
func (c *Controller) StepToward(ambient float64) (float64, bool) {
	target := c.Required(ambient)
	if !c.initialized {
		c.initialized = true
		c.level = target
		c.Metrics.onInit(target)
		c.Metrics.observeError(c.level, target)
		return c.level, true
	}
	next, stepped := c.Stepper.StepFrom(c.level, target)
	if !stepped {
		c.Metrics.observeError(c.level, target)
		return c.level, false
	}
	c.Metrics.onStep(c.level, next)
	c.level = next
	c.adjustments++
	c.Metrics.observeError(c.level, target)
	return c.level, true
}
