package light

import (
	"fmt"
	"math"
)

// DefaultTauP is the perception-domain step size that the paper's user
// study (Table 2) found invisible to all 20 subjects under every ambient
// condition and viewing manner: 0.003 of the full perceived range.
const DefaultTauP = 0.003

// stepHysteresis is the anti-hunting margin of StepFrom: a step is taken
// only once the remaining distance exceeds this many steps. Without it,
// sensor noise comparable to one step makes the controller oscillate,
// inflating the adjustment counts the paper wants minimized.
const stepHysteresis = 1.5

// Stepper plans the intermediate LED levels of a brightness adaptation so
// that no single step is perceivable (Type-II flicker, paper §2.2).
//
// The LED only ever moves in whole steps of the stepper's grid: the
// "existing method" baseline uses a fixed measured-domain step τ, while
// SmartVLC uses a fixed perceived-domain step τ_p. Quantizing to whole
// steps is what makes the adjustment counts of paper Fig. 19(c)
// comparable — each adjustment costs a super-symbol re-selection
// regardless of its size.
type Stepper interface {
	// Name identifies the stepper in experiment output.
	Name() string
	// Plan returns the measured-domain levels visited when moving from cur
	// to target, excluding cur and including target. An empty plan means
	// cur already equals target.
	Plan(cur, target float64) []float64
	// StepFrom advances cur by exactly one full step toward target and
	// reports whether a step was warranted; it returns cur unchanged when
	// the remaining distance is below one step.
	StepFrom(cur, target float64) (float64, bool)
}

// MeasuredStepper is the paper's "existing method" baseline: a fixed step
// τ in the measured domain. To be safe it must use the step size that is
// imperceptible at the most sensitive point of the operating range, which
// wastes steps everywhere else.
type MeasuredStepper struct {
	// Tau is the fixed measured-domain step.
	Tau float64
}

// SafeMeasuredStepper returns the measured stepper whose fixed τ is safe
// across [minLevel, 1]: since dIp = dIm / (2·sqrt(Im)), the constraint
// dIp ≤ tauP is tightest at minLevel, giving τ = 2·tauP·sqrt(minLevel).
func SafeMeasuredStepper(tauP, minLevel float64) MeasuredStepper {
	if minLevel < 1e-6 {
		minLevel = 1e-6
	}
	return MeasuredStepper{Tau: 2 * tauP * math.Sqrt(minLevel)}
}

// Name implements Stepper.
func (s MeasuredStepper) Name() string { return "fixed-measured" }

// Plan implements Stepper.
func (s MeasuredStepper) Plan(cur, target float64) []float64 {
	if s.Tau <= 0 {
		panic(fmt.Sprintf("light: non-positive step %v", s.Tau))
	}
	return planLinear(cur, target, s.Tau, func(x float64) float64 { return x })
}

// StepFrom implements Stepper.
func (s MeasuredStepper) StepFrom(cur, target float64) (float64, bool) {
	if s.Tau <= 0 {
		panic(fmt.Sprintf("light: non-positive step %v", s.Tau))
	}
	d := target - cur
	switch {
	case d >= stepHysteresis*s.Tau:
		return cur + s.Tau, true
	case d <= -stepHysteresis*s.Tau:
		return cur - s.Tau, true
	default:
		return cur, false
	}
}

// PerceivedStepper is SmartVLC's method: a fixed step τp in the perceived
// domain, which translates to a variable measured-domain step — large when
// the LED is bright, small when dim — halving the number of adjustments
// (paper Fig. 19(c)) while staying exactly at the perception limit.
type PerceivedStepper struct {
	// TauP is the fixed perceived-domain step.
	TauP float64
}

// Name implements Stepper.
func (s PerceivedStepper) Name() string { return "smartvlc-perceived" }

// Plan implements Stepper.
func (s PerceivedStepper) Plan(cur, target float64) []float64 {
	if s.TauP <= 0 {
		panic(fmt.Sprintf("light: non-positive step %v", s.TauP))
	}
	return planLinear(ToPerceived(cur), ToPerceived(target), s.TauP, ToMeasured)
}

// StepFrom implements Stepper.
func (s PerceivedStepper) StepFrom(cur, target float64) (float64, bool) {
	if s.TauP <= 0 {
		panic(fmt.Sprintf("light: non-positive step %v", s.TauP))
	}
	pc, pt := ToPerceived(cur), ToPerceived(target)
	d := pt - pc
	switch {
	case d >= stepHysteresis*s.TauP:
		return ToMeasured(pc + s.TauP), true
	case d <= -stepHysteresis*s.TauP:
		return ToMeasured(pc - s.TauP), true
	default:
		return cur, false
	}
}

// planLinear walks from a to b in steps of tau (in the walk's own domain)
// and maps each visited point through conv into the measured domain.
func planLinear(a, b, tau float64, conv func(float64) float64) []float64 {
	if a == b {
		return nil
	}
	var out []float64
	if b > a {
		for x := a + tau; x < b; x += tau {
			out = append(out, conv(x))
		}
	} else {
		for x := a - tau; x > b; x -= tau {
			out = append(out, conv(x))
		}
	}
	return append(out, conv(b))
}
