package light

import (
	"math"

	"smartvlc/internal/telemetry"
)

// Metrics instruments the smart-lighting controller. A nil *Metrics (the
// default) is a no-op.
type Metrics struct {
	// Adjustments counts brightness steps taken (paper Fig. 19c's y axis).
	Adjustments *telemetry.Counter
	// Retargets counts target changes beyond the deadband (Observe path).
	Retargets *telemetry.Counter
	// Level tracks the LED's current measured-domain level.
	Level *telemetry.Gauge
	// StepPerceived observes each step's magnitude in the perceived
	// domain — the quantity the flicker threshold bounds, so the whole
	// distribution sitting below the perception limit is the controller's
	// correctness claim.
	StepPerceived *telemetry.Histogram
	// PerceivedError tracks |perceived(target) − perceived(level)| after
	// each observation: how far the room currently is from the constant-
	// illumination goal, in the domain users actually see.
	PerceivedError *telemetry.Gauge
}

// NewMetrics builds the controller instrument handles on a registry.
// Returns nil on a nil registry — the no-op default.
func NewMetrics(r *telemetry.Registry) *Metrics {
	if r == nil {
		return nil
	}
	r.Help("light_adjustments_total", "Cumulative LED brightness steps (paper Fig. 19c).")
	r.Help("light_step_perceived", "Per-step magnitude in the perceived domain.")
	r.Help("light_perceived_error", "Distance from the illumination target in the perceived domain.")
	return &Metrics{
		Adjustments:    r.Counter("light_adjustments_total"),
		Retargets:      r.Counter("light_retargets_total"),
		Level:          r.Gauge("light_led_level"),
		StepPerceived:  r.Histogram("light_step_perceived"),
		PerceivedError: r.Gauge("light_perceived_error"),
	}
}

// onInit records the initialization jump to the first required level,
// which the controller does not count as an adjustment (the LED turns on
// at that level; nothing visible steps).
func (m *Metrics) onInit(level float64) {
	if m != nil {
		m.Level.Set(level)
	}
}

func (m *Metrics) onStep(from, to float64) {
	if m == nil {
		return
	}
	m.Adjustments.Inc()
	m.Level.Set(to)
	m.StepPerceived.Observe(math.Abs(ToPerceived(to) - ToPerceived(from)))
}

func (m *Metrics) onRetarget() {
	if m != nil {
		m.Retargets.Inc()
	}
}

func (m *Metrics) observeError(level, target float64) {
	if m != nil {
		m.PerceivedError.Set(math.Abs(ToPerceived(target) - ToPerceived(level)))
	}
}
