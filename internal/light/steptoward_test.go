package light

import (
	"math"
	"testing"
)

func TestStepTowardConvergesOneStepAtATime(t *testing.T) {
	c, err := NewController(1.0, PerceivedStepper{TauP: DefaultTauP})
	if err != nil {
		t.Fatal(err)
	}
	c.StepToward(0.5) // initialize at 0.5
	if c.Level() != 0.5 {
		t.Fatalf("init level %v", c.Level())
	}
	// Ambient drops to 0.3 -> target 0.7; each call moves at most tauP in
	// the perceived domain.
	steps := 0
	prev := c.Level()
	for {
		lvl, stepped := c.StepToward(0.3)
		if !stepped {
			break
		}
		dIp := math.Abs(ToPerceived(lvl) - ToPerceived(prev))
		if dIp > DefaultTauP+1e-9 {
			t.Fatalf("step %v exceeds tauP", dIp)
		}
		prev = lvl
		steps++
		if steps > 10000 {
			t.Fatal("did not converge")
		}
	}
	// Whole-step quantization leaves a residual below one step
	// (≈ 2·τp·sqrt(0.7) ≈ 0.005 in the measured domain).
	if math.Abs(c.Level()-0.7) > 0.006 {
		t.Fatalf("converged to %v", c.Level())
	}
	if c.Adjustments() != steps {
		t.Fatalf("adjustments %d, steps %d", c.Adjustments(), steps)
	}
}

func TestStepTowardTracksMovingTarget(t *testing.T) {
	c, _ := NewController(1.0, PerceivedStepper{TauP: DefaultTauP})
	c.StepToward(0.5)
	// Ambient ramps; the level must follow monotonically downward.
	prev := c.Level()
	for a := 0.5; a <= 0.8; a += 0.01 {
		lvl, _ := c.StepToward(a)
		if lvl > prev+1e-12 {
			t.Fatalf("level moved away from target: %v after %v", lvl, prev)
		}
		prev = lvl
	}
}

func TestStepTowardDeadband(t *testing.T) {
	c, _ := NewController(1.0, PerceivedStepper{TauP: DefaultTauP})
	c.StepToward(0.5)
	if _, stepped := c.StepToward(0.5 + c.Deadband/2); stepped {
		t.Fatal("stepped inside deadband")
	}
}
