// Package light implements the smart-lighting half of SmartVLC: ambient
// light traces, the perception-domain model of human brightness response,
// the two adaptation steppers compared in paper Fig. 19(c), and the
// controller that keeps ambient + LED illumination constant (paper §4.3).
package light

import "math"

// ToPerceived converts a measured (photometric) intensity in [0, 1] to the
// perceived brightness in [0, 1]. The paper (citing the IESNA handbook)
// uses Ip = 100·sqrt(Im/100) on a 0–100 scale, i.e. a square root:
// human eyes are far more sensitive to absolute changes in dim light.
func ToPerceived(measured float64) float64 {
	if measured <= 0 {
		return 0
	}
	if measured >= 1 {
		return 1
	}
	return math.Sqrt(measured)
}

// ToMeasured is the inverse of ToPerceived.
func ToMeasured(perceived float64) float64 {
	if perceived <= 0 {
		return 0
	}
	if perceived >= 1 {
		return 1
	}
	return perceived * perceived
}
