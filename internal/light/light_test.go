package light

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPerceptionRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		im := float64(raw) / 65535
		back := ToMeasured(ToPerceived(im))
		return math.Abs(back-im) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if ToPerceived(-0.5) != 0 || ToPerceived(1.5) != 1 {
		t.Fatal("clamping broken")
	}
	if ToMeasured(-1) != 0 || ToMeasured(2) != 1 {
		t.Fatal("clamping broken")
	}
}

func TestPerceptionMatchesPaperFormula(t *testing.T) {
	// Paper: Ip = 100·sqrt(Im/100) on a 0–100 scale. At Im = 25 % the
	// perceived brightness is 50 %.
	if got := ToPerceived(0.25); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ToPerceived(0.25) = %v", got)
	}
}

func TestPerceivedStepperStepsAreImperceptible(t *testing.T) {
	s := PerceivedStepper{TauP: DefaultTauP}
	plan := s.Plan(0.1, 0.9)
	cur := 0.1
	for _, next := range plan {
		dIp := math.Abs(ToPerceived(next) - ToPerceived(cur))
		if dIp > DefaultTauP+1e-9 {
			t.Fatalf("perceived step %v exceeds tauP", dIp)
		}
		cur = next
	}
	if math.Abs(cur-0.9) > 1e-12 {
		t.Fatalf("plan does not end at target: %v", cur)
	}
}

func TestMeasuredStepperStepsAreImperceptibleInRange(t *testing.T) {
	s := SafeMeasuredStepper(DefaultTauP, 0.1)
	plan := s.Plan(0.1, 0.9)
	cur := 0.1
	for _, next := range plan {
		dIp := math.Abs(ToPerceived(next) - ToPerceived(cur))
		if dIp > DefaultTauP+1e-9 {
			t.Fatalf("perceived step %v exceeds tauP at level %v", dIp, cur)
		}
		cur = next
	}
}

// TestFig19cStepCountHalved pins the paper's headline adaptation result:
// over the same sweep, the perception-domain stepper needs about half the
// adjustments of the safe fixed measured-domain stepper.
func TestFig19cStepCountHalved(t *testing.T) {
	measured := SafeMeasuredStepper(DefaultTauP, 0.1)
	perceived := PerceivedStepper{TauP: DefaultTauP}
	nm := len(measured.Plan(0.1, 0.9))
	np := len(perceived.Plan(0.1, 0.9))
	ratio := float64(np) / float64(nm)
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("perceived/measured step ratio = %v (np=%d, nm=%d), paper reports ≈0.5", ratio, np, nm)
	}
}

func TestPlanDirectionality(t *testing.T) {
	s := PerceivedStepper{TauP: 0.01}
	down := s.Plan(0.9, 0.1)
	for i := 1; i < len(down); i++ {
		if down[i] >= down[i-1] {
			t.Fatal("downward plan not monotone")
		}
	}
	if len(s.Plan(0.5, 0.5)) != 0 {
		t.Fatal("no-op plan should be empty")
	}
	up := s.Plan(0.1, 0.11)
	if len(up) == 0 || math.Abs(up[len(up)-1]-0.11) > 1e-12 {
		t.Fatalf("small move plan wrong: %v", up)
	}
}

func TestStepperPanicsOnBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MeasuredStepper{Tau: 0}.Plan(0, 1)
}

func TestControllerHoldsSumConstant(t *testing.T) {
	c, err := NewController(1.0, PerceivedStepper{TauP: DefaultTauP})
	if err != nil {
		t.Fatal(err)
	}
	// Ambient values chosen so the required LED level stays inside the
	// [0.1, 0.9] operating range; clamping outside it is tested separately.
	for _, ambient := range []float64{0.15, 0.2, 0.5, 0.8, 0.3} {
		c.Observe(ambient)
		sum := c.Level() + ambient
		if math.Abs(sum-1.0) > 1e-9 {
			t.Fatalf("ambient %v: sum %v", ambient, sum)
		}
	}
}

func TestControllerClampsToOperatingRange(t *testing.T) {
	c, _ := NewController(1.0, PerceivedStepper{TauP: DefaultTauP})
	c.Observe(0.99) // would need LED at 0.01 < MinLevel
	if c.Level() != 0.1 {
		t.Fatalf("level %v, want clamp at 0.1", c.Level())
	}
	c.Observe(0.0) // would need 1.0 > MaxLevel
	if c.Level() != 0.9 {
		t.Fatalf("level %v, want clamp at 0.9", c.Level())
	}
}

func TestControllerDeadbandSuppressesJitter(t *testing.T) {
	c, _ := NewController(1.0, PerceivedStepper{TauP: DefaultTauP})
	c.Observe(0.5)
	base := c.Adjustments()
	for i := 0; i < 100; i++ {
		if plan := c.Observe(0.5 + 1e-6*float64(i%2)); len(plan) != 0 {
			t.Fatal("deadband failed to suppress jitter")
		}
	}
	if c.Adjustments() != base {
		t.Fatal("adjustments counted inside deadband")
	}
}

func TestControllerCountsAdjustments(t *testing.T) {
	c, _ := NewController(1.0, PerceivedStepper{TauP: DefaultTauP})
	c.Observe(0.1) // initializes at 0.9
	if c.Adjustments() != 0 {
		t.Fatal("initialization should not count")
	}
	plan := c.Observe(0.3) // move 0.9 -> 0.7
	if len(plan) == 0 || c.Adjustments() != len(plan) {
		t.Fatalf("adjustments %d, plan %d", c.Adjustments(), len(plan))
	}
	if c.Retargets() != 1 {
		t.Fatalf("retargets %d", c.Retargets())
	}
}

func TestNewControllerValidation(t *testing.T) {
	if _, err := NewController(0, PerceivedStepper{TauP: 1}); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := NewController(1, nil); err == nil {
		t.Fatal("nil stepper accepted")
	}
}

func TestBlindPullEndpointsAndMonotonicity(t *testing.T) {
	b := BlindPull{StartLux: 50, EndLux: 8000, Duration: 67}
	if got := b.LuxAt(0); math.Abs(got-50) > 1 {
		t.Fatalf("start %v", got)
	}
	if got := b.LuxAt(67); math.Abs(got-8000) > 1 {
		t.Fatalf("end %v", got)
	}
	if b.LuxAt(-5) != b.LuxAt(0) || b.LuxAt(100) != b.LuxAt(67) {
		t.Fatal("clamping outside duration broken")
	}
	prev := -1.0
	for ts := 0.0; ts <= 67; ts += 0.5 {
		v := b.LuxAt(ts)
		if v < prev {
			t.Fatalf("wobble-free blind pull must be monotone, dropped at %v", ts)
		}
		prev = v
	}
}

func TestBlindPullWobbleBounded(t *testing.T) {
	plain := BlindPull{StartLux: 50, EndLux: 8000, Duration: 67}
	wobbly := BlindPull{StartLux: 50, EndLux: 8000, Duration: 67, WobbleFraction: 0.05}
	for ts := 0.0; ts <= 67; ts += 0.1 {
		d := math.Abs(wobbly.LuxAt(ts) - plain.LuxAt(ts))
		if d > 0.05*7950*0.5+1e-9 {
			t.Fatalf("wobble %v out of bounds at %v", d, ts)
		}
		if wobbly.LuxAt(ts) < 0 {
			t.Fatal("negative lux")
		}
	}
}

func TestCloudsStayWithinRange(t *testing.T) {
	c := Clouds{BaseLux: 9000, DipFraction: 0.6, PeriodSeconds: 30}
	minSeen := math.Inf(1)
	for ts := 0.0; ts < 600; ts += 0.25 {
		v := c.LuxAt(ts)
		if v > 9000+1e-9 || v < 9000*(1-0.6)-1e-9 {
			t.Fatalf("clouds out of range: %v", v)
		}
		minSeen = math.Min(minSeen, v)
	}
	if minSeen > 9000*0.6 {
		t.Fatalf("clouds never dip meaningfully: min %v", minSeen)
	}
	if (Clouds{BaseLux: 100}).LuxAt(5) != 100 {
		t.Fatal("zero period should be constant")
	}
}

func TestDayCycle(t *testing.T) {
	d := DayCycle{PeakLux: 10000, DayLengthSeconds: 36000}
	if d.LuxAt(0) != 0 || d.LuxAt(36000) > 1e-9 {
		t.Fatal("day must start and end dark")
	}
	if got := d.LuxAt(18000); math.Abs(got-10000) > 1e-6 {
		t.Fatalf("midday %v", got)
	}
	if d.LuxAt(-1) != 0 || d.LuxAt(40000) != 0 {
		t.Fatal("outside day should be dark")
	}
}

func TestStepsTrace(t *testing.T) {
	s := Steps{Levels: []float64{10, 20, 30}, StepSeconds: 5}
	cases := map[float64]float64{0: 10, 4.9: 10, 5: 20, 12: 30, 100: 30}
	for ts, want := range cases {
		if got := s.LuxAt(ts); got != want {
			t.Fatalf("LuxAt(%v) = %v want %v", ts, got, want)
		}
	}
	if (Steps{}).LuxAt(1) != 0 {
		t.Fatal("empty steps")
	}
}

func TestNormalize(t *testing.T) {
	if Normalize(250, 500) != 0.5 {
		t.Fatal("normalize")
	}
	if Normalize(1, 0) != 0 {
		t.Fatal("zero full-LED lux should not divide")
	}
}

func TestPaperAmbientConstants(t *testing.T) {
	if !(L1Lux > L2Lux && L2Lux > L3Lux) {
		t.Fatal("ambient condition ordering broken")
	}
	if L3Lux < 12 || L3Lux > 21 {
		t.Fatal("L3 outside the paper's measured band")
	}
}
