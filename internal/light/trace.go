package light

import (
	"math"
)

// Trace is a deterministic ambient-light time series in lux.
type Trace interface {
	// LuxAt returns the ambient illuminance at time t (seconds).
	LuxAt(t float64) float64
}

// The paper's three measured ambient conditions (§6.3).
const (
	// L1Lux: sunny day, ceiling lights on (paper: 8900–9760 lux).
	L1Lux = 9300.0
	// L2Lux: sunny day, ceiling lights off (7960–8200 lux).
	L2Lux = 8080.0
	// L3Lux: blind down, lights off (12–21 lux).
	L3Lux = 16.0
)

// Static is a constant ambient level (paper Fig. 13(a): blind fixed).
type Static struct{ Lux float64 }

// LuxAt implements Trace.
func (s Static) LuxAt(float64) float64 { return s.Lux }

// BlindPull models the motorized window blind moving at constant speed
// (paper Fig. 13(b)): illuminance ramps from StartLux to EndLux over
// Duration seconds. Real rooms do not brighten perfectly linearly with
// blind position (the paper notes this in Fig. 19(a)), so the ramp blends
// a linear term with a smooth nonlinearity and a small deterministic
// wobble from moving clouds.
type BlindPull struct {
	StartLux, EndLux float64
	Duration         float64
	// WobbleFraction adds a bounded deterministic fluctuation (0 disables;
	// 0.05 reproduces the paper's non-smooth throughput trace).
	WobbleFraction float64
}

// LuxAt implements Trace.
func (b BlindPull) LuxAt(t float64) float64 {
	if b.Duration <= 0 {
		return b.EndLux
	}
	x := t / b.Duration
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	// Blend linear with smoothstep: sunlight grows slowly when the blind
	// barely opens and faster midway.
	s := x * x * (3 - 2*x)
	f := 0.65*x + 0.35*s
	lux := b.StartLux + (b.EndLux-b.StartLux)*f
	if b.WobbleFraction > 0 {
		span := math.Abs(b.EndLux - b.StartLux)
		w := math.Sin(2*math.Pi*t/7.3) * math.Sin(2*math.Pi*t/2.9)
		lux += b.WobbleFraction * span * 0.5 * w * s
	}
	if lux < 0 {
		return 0
	}
	return lux
}

// Clouds is a sunny baseline with deterministic passing clouds — the
// paper's motivating Dutch sky ("heavy and moving clouds"). The dips are
// products of incommensurate sinusoids, so the trace never repeats within
// an experiment.
type Clouds struct {
	BaseLux float64
	// DipFraction is the deepest cloud attenuation (0..1).
	DipFraction float64
	// PeriodSeconds is the dominant cloud passage period.
	PeriodSeconds float64
}

// LuxAt implements Trace.
func (c Clouds) LuxAt(t float64) float64 {
	if c.PeriodSeconds <= 0 {
		return c.BaseLux
	}
	p := c.PeriodSeconds
	// Raised products of sinusoids give occasional deep dips.
	a := 0.5 * (1 + math.Sin(2*math.Pi*t/p))
	b := 0.5 * (1 + math.Sin(2*math.Pi*t/(p*0.37)+1.1))
	dip := c.DipFraction * a * b
	return c.BaseLux * (1 - dip)
}

// DayCycle is a dawn-to-dusk bell over DayLengthSeconds with optional
// clouds, used by the office-day example.
type DayCycle struct {
	PeakLux          float64
	DayLengthSeconds float64
	Clouds           *Clouds
}

// LuxAt implements Trace.
func (d DayCycle) LuxAt(t float64) float64 {
	if d.DayLengthSeconds <= 0 {
		return 0
	}
	x := t / d.DayLengthSeconds
	if x < 0 || x > 1 {
		return 0
	}
	bell := math.Sin(math.Pi * x)
	lux := d.PeakLux * bell * bell
	if d.Clouds != nil && d.Clouds.PeriodSeconds > 0 {
		frac := d.Clouds.LuxAt(t) / d.Clouds.BaseLux
		lux *= frac
	}
	return lux
}

// Steps is a piecewise-constant trace: Levels[i] applies from
// i·StepSeconds to (i+1)·StepSeconds; the last level holds afterwards.
type Steps struct {
	Levels      []float64
	StepSeconds float64
}

// LuxAt implements Trace.
func (s Steps) LuxAt(t float64) float64 {
	if len(s.Levels) == 0 {
		return 0
	}
	if s.StepSeconds <= 0 || t < 0 {
		return s.Levels[0]
	}
	i := int(t / s.StepSeconds)
	if i >= len(s.Levels) {
		i = len(s.Levels) - 1
	}
	return s.Levels[i]
}

// Normalize converts lux to the controller's normalized units given the
// lux value that equals one full LED (the illuminance the LED itself
// contributes to the work area at full power).
func Normalize(lux, fullLEDLux float64) float64 {
	if fullLEDLux <= 0 {
		return 0
	}
	return lux / fullLEDLux
}
