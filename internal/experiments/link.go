package experiments

import (
	"fmt"

	"smartvlc/internal/amppm"
	"smartvlc/internal/optics"
	"smartvlc/internal/parallel"
	"smartvlc/internal/scheme"
	"smartvlc/internal/sim"
	"smartvlc/internal/stats"
)

// The figure sweeps fan out one fully seeded simulation per index over
// parallel.ForEach. Determinism audit for the fan-out:
//
//   - Ordering: every body writes only rows[i]; the tables are built from
//     rows afterwards on the caller's goroutine, in index order, and the
//     lowest-index error wins (parallel.ForEach's contract). Nothing
//     observable depends on scheduling.
//   - RNG independence: no RNG state crosses indices — each sim.Run call
//     derives its streams from cfg.Seed alone. The seed maps are
//     collision-free within each figure: Fig15 uses Seed*1000+{i, 100+i,
//     200+i} with i < 17; Fig16 uses Seed*10000 + uint64(d*100)*10 + i
//     with distinct d per index and i < 3; Fig17 uses Seed*20000 +
//     uint64(ang*10) + i with angles 2° (20 units) apart and i < 3.

// LinkOptions tune the measured-throughput experiments. Zero values take
// the paper's settings; SecondsPerPoint trades precision for runtime.
type LinkOptions struct {
	// SecondsPerPoint is the simulated air time per data point
	// (default 0.6 s; each paper point is a 30 s run).
	SecondsPerPoint float64
	// Seed makes runs reproducible.
	Seed uint64
}

func (o LinkOptions) seconds() float64 {
	if o.SecondsPerPoint > 0 {
		return o.SecondsPerPoint
	}
	return 0.6
}

// Schemes builds the three evaluation schemes exactly as the paper
// configures them: AMPPM with default constraints, OOK-CT, and MPPM with
// N = 20.
func Schemes() (a *scheme.AMPPM, o *scheme.OOKCT, m *scheme.MPPM, err error) {
	a, err = scheme.NewAMPPM(amppm.DefaultConstraints())
	if err != nil {
		return nil, nil, nil, err
	}
	m, err = scheme.NewMPPM(20)
	if err != nil {
		return nil, nil, nil, err
	}
	return a, scheme.NewOOKCT(), m, nil
}

// Fig15Row is one dimming level of Fig. 15.
type Fig15Row struct {
	Level                  float64
	AMPPM, OOKCT, MPPMKbps float64
}

// Fig15Result carries the rows plus the summary the paper quotes in §6.2.
type Fig15Result struct {
	Rows []Fig15Row
	// Average and maximum relative improvement of AMPPM over each
	// baseline across the 17 levels.
	AvgOverOOKCT, MaxOverOOKCT float64
	AvgOverMPPM, MaxOverMPPM   float64
}

// Fig15 reproduces paper Fig. 15: throughput vs dimming level for AMPPM,
// OOK-CT and MPPM(N=20) at 3 m with 128-byte payloads, over the paper's
// 17 levels 0.1, 0.15, …, 0.9.
func Fig15(opt LinkOptions) (Fig15Result, stats.Table, error) {
	a, o, m, err := Schemes()
	if err != nil {
		return Fig15Result{}, stats.Table{}, err
	}
	run := func(s scheme.Scheme, level float64, seed uint64) (float64, error) {
		cfg := sim.DefaultConfig(s)
		cfg.FixedLevel = level
		cfg.Seed = opt.Seed*1000 + seed
		r, err := sim.Run(cfg, opt.seconds())
		if err != nil {
			return 0, err
		}
		return r.GoodputBps / 1000, nil
	}
	var res Fig15Result
	t := stats.Table{
		Title:   "Fig. 15 — throughput (kbps) vs dimming level, 3 m, 128 B payload",
		Headers: []string{"level", "AMPPM", "OOK-CT", "MPPM(N=20)"},
	}
	rows := make([]Fig15Row, 17)
	err = parallel.ForEach(0, 17, func(i int) error {
		level := 0.1 + 0.05*float64(i)
		row := Fig15Row{Level: level}
		var err error
		if row.AMPPM, err = run(a, level, uint64(i)); err != nil {
			return fmt.Errorf("AMPPM level %v: %w", level, err)
		}
		if row.OOKCT, err = run(o, level, uint64(100+i)); err != nil {
			return fmt.Errorf("OOK-CT level %v: %w", level, err)
		}
		if row.MPPMKbps, err = run(m, level, uint64(200+i)); err != nil {
			return fmt.Errorf("MPPM level %v: %w", level, err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return res, t, err
	}
	var sumO, sumM, maxO, maxM float64
	for _, row := range rows {
		res.Rows = append(res.Rows, row)
		t.AddRow(row.Level, row.AMPPM, row.OOKCT, row.MPPMKbps)
		if row.OOKCT > 0 {
			g := row.AMPPM/row.OOKCT - 1
			sumO += g
			if g > maxO {
				maxO = g
			}
		}
		if row.MPPMKbps > 0 {
			g := row.AMPPM/row.MPPMKbps - 1
			sumM += g
			if g > maxM {
				maxM = g
			}
		}
	}
	n := float64(len(res.Rows))
	res.AvgOverOOKCT, res.MaxOverOOKCT = sumO/n, maxO
	res.AvgOverMPPM, res.MaxOverMPPM = sumM/n, maxM
	return res, t, nil
}

// Fig16Row is one distance point for one dimming level.
type Fig16Row struct {
	DistanceM float64
	Kbps      map[float64]float64 // by dimming level
}

// Fig16 reproduces paper Fig. 16: throughput vs distance at dimming
// levels 0.18, 0.5 and 0.7. The paper observes a flat plateau out to
// 3.6 m, a sharp collapse beyond, and no dependence on the dimming level.
func Fig16(opt LinkOptions) ([]Fig16Row, stats.Table, error) {
	a, _, _, err := Schemes()
	if err != nil {
		return nil, stats.Table{}, err
	}
	levels := []float64{0.18, 0.5, 0.7}
	t := stats.Table{
		Title:   "Fig. 16 — throughput (kbps) vs distance",
		Headers: []string{"distance_m", "l=0.18", "l=0.5", "l=0.7"},
	}
	var distances []float64
	for d := 0.5; d <= 5.01; d += 0.25 {
		distances = append(distances, d)
	}
	rows := make([]Fig16Row, len(distances))
	err = parallel.ForEach(0, len(distances), func(j int) error {
		d := distances[j]
		row := Fig16Row{DistanceM: d, Kbps: map[float64]float64{}}
		for i, level := range levels {
			cfg := sim.DefaultConfig(a)
			cfg.Geometry = optics.Aligned(d, 0)
			cfg.FixedLevel = level
			cfg.Seed = opt.Seed*10000 + uint64(d*100)*10 + uint64(i)
			r, err := sim.Run(cfg, opt.seconds())
			if err != nil {
				return err
			}
			row.Kbps[level] = r.GoodputBps / 1000
		}
		rows[j] = row
		return nil
	})
	if err != nil {
		return nil, t, err
	}
	for _, row := range rows {
		t.AddRow(row.DistanceM, row.Kbps[0.18], row.Kbps[0.5], row.Kbps[0.7])
	}
	return rows, t, nil
}

// Fig17Row is one incidence angle point for one distance.
type Fig17Row struct {
	AngleDeg float64
	Kbps     map[float64]float64 // by distance
}

// Fig17 reproduces paper Fig. 17: throughput vs incidence angle at
// distances 1.3, 2.3 and 3.3 m. Longer distances have smaller cut-off
// angles because they sit closer to the link budget's edge.
func Fig17(opt LinkOptions) ([]Fig17Row, stats.Table, error) {
	a, _, _, err := Schemes()
	if err != nil {
		return nil, stats.Table{}, err
	}
	distances := []float64{1.3, 2.3, 3.3}
	t := stats.Table{
		Title:   "Fig. 17 — throughput (kbps) vs incidence angle",
		Headers: []string{"angle_deg", "d=1.3m", "d=2.3m", "d=3.3m"},
	}
	var angles []float64
	for ang := 0.0; ang <= 16.01; ang += 2 {
		angles = append(angles, ang)
	}
	rows := make([]Fig17Row, len(angles))
	err = parallel.ForEach(0, len(angles), func(j int) error {
		ang := angles[j]
		row := Fig17Row{AngleDeg: ang, Kbps: map[float64]float64{}}
		for i, d := range distances {
			cfg := sim.DefaultConfig(a)
			cfg.Geometry = optics.Aligned(d, ang)
			cfg.FixedLevel = 0.5
			cfg.Seed = opt.Seed*20000 + uint64(ang*10) + uint64(i)
			r, err := sim.Run(cfg, opt.seconds())
			if err != nil {
				return err
			}
			row.Kbps[d] = r.GoodputBps / 1000
		}
		rows[j] = row
		return nil
	})
	if err != nil {
		return nil, t, err
	}
	for _, row := range rows {
		t.AddRow(row.AngleDeg, row.Kbps[1.3], row.Kbps[2.3], row.Kbps[3.3])
	}
	return rows, t, nil
}
