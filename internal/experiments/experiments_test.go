package experiments

import (
	"math"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

func TestFig4ShapeMatchesPaper(t *testing.T) {
	tbl := Fig4()
	if len(tbl.Rows) == 0 || len(tbl.Headers) != 6 {
		t.Fatalf("table shape: %v", tbl.Headers)
	}
	// SER grows with N at every level: compare the N=10 and N=120 columns.
	for _, row := range tbl.Rows {
		small, err1 := parseF(row[1])
		big, err2 := parseF(row[5])
		if err1 != nil || err2 != nil {
			t.Fatalf("bad row %v", row)
		}
		if big <= small {
			t.Fatalf("SER(N=120) %v not above SER(N=10) %v at level %s", big, small, row[0])
		}
	}
}

func parseF(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}

func TestFig6MultiplexingAddsLevels(t *testing.T) {
	before, after, tbl := Fig6()
	if len(before) != 9 {
		t.Fatalf("before has %d levels", len(before))
	}
	if len(after) <= len(before) {
		t.Fatalf("after (%d) not finer than before (%d)", len(after), len(before))
	}
	if len(tbl.Rows) != len(before)+len(after) {
		t.Fatalf("table rows %d", len(tbl.Rows))
	}
	// Multiplexed levels must land within 0.005 of each 0.025 grid point.
	for _, r := range after {
		if r.Rate < 0 || r.Rate > 1 {
			t.Fatalf("rate %v", r.Rate)
		}
	}
}

func TestFig8NamedPatternsAbandoned(t *testing.T) {
	// The paper's Fig. 8 uses a tight bound under which S(50, 0.3) and
	// S(30, 0.4) are abandoned. Their SERs are ~4.4e-3 and ~2.6e-3, so a
	// bound of 2.5e-3 separates them from, e.g., S(30, 0.1).
	rows, tbl := Fig8(2.5e-3)
	if len(tbl.Rows) != len(rows) {
		t.Fatal("table mismatch")
	}
	byName := map[string]Fig8Row{}
	for _, r := range rows {
		byName[r.Pattern.String()] = r
	}
	if r := byName["S(50, 0.300)"]; r.Kept {
		t.Fatalf("S(50,0.3) should be abandoned (SER %v)", r.SER)
	}
	if r := byName["S(30, 0.400)"]; r.Kept {
		t.Fatalf("S(30,0.4) should be abandoned (SER %v)", r.SER)
	}
	if r := byName["S(10, 0.500)"]; !r.Kept {
		t.Fatalf("S(10,0.5) should be kept (SER %v)", r.SER)
	}
}

func TestFig9EnvelopeDominatesSinglePatterns(t *testing.T) {
	rows, _ := Fig9()
	if len(rows) < 30 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.EnvelopeRate+1e-9 < r.SingleRate {
			t.Fatalf("envelope %v below single %v at %v", r.EnvelopeRate, r.SingleRate, r.Level)
		}
		if r.EnvelopeRate < 0.7 || r.EnvelopeRate > 0.9 {
			t.Fatalf("envelope rate %v out of Fig. 9's plotted band", r.EnvelopeRate)
		}
	}
}

func TestFig10PerceivedTakesFewerSteps(t *testing.T) {
	rows, tbl := Fig10(0.2, 0.8)
	if len(rows) == 0 || len(tbl.Rows) != len(rows) {
		t.Fatal("empty fig10")
	}
	// Count real steps: the measured plan is the longer one by ~2x.
	mSteps := 0
	pSteps := 0
	prevM, prevP := -1.0, -1.0
	for _, r := range rows {
		if r.MeasuredDomainLevel != prevM {
			mSteps++
			prevM = r.MeasuredDomainLevel
		}
		if r.PerceivedDomainLevel != prevP {
			pSteps++
			prevP = r.PerceivedDomainLevel
		}
	}
	ratio := float64(pSteps) / float64(mSteps)
	if ratio > 0.75 {
		t.Fatalf("perceived/measured step ratio %v (p=%d m=%d)", ratio, pSteps, mSteps)
	}
}

func TestTable2Rendered(t *testing.T) {
	ind, dir := Table2()
	if len(ind.Rows) != 5 || len(dir.Rows) != 5 {
		t.Fatalf("rows: %d %d", len(ind.Rows), len(dir.Rows))
	}
	// First direct row (res 0.003) must be all zeros; last all 100.
	for c := 1; c <= 3; c++ {
		if dir.Rows[0][c] != "0" {
			t.Fatalf("direct 0.003 col %d = %s", c, dir.Rows[0][c])
		}
		if dir.Rows[4][c] != "100" {
			t.Fatalf("direct 0.007 col %d = %s", c, dir.Rows[4][c])
		}
	}
	if !strings.Contains(ind.Render(), "L3") {
		t.Fatal("render missing header")
	}
}

func TestFig15ReproducesHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("link sweep")
	}
	res, tbl, err := Fig15(LinkOptions{SecondsPerPoint: 0.4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 17 || len(tbl.Rows) != 17 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		// AMPPM never loses to MPPM (paper: wins at all 17 levels).
		if r.AMPPM < r.MPPMKbps*0.97 {
			t.Errorf("level %v: AMPPM %v < MPPM %v", r.Level, r.AMPPM, r.MPPMKbps)
		}
	}
	// Extremes: AMPPM far above OOK-CT (paper: up to +170%).
	first, last := res.Rows[0], res.Rows[16]
	if first.AMPPM < first.OOKCT*1.5 || last.AMPPM < last.OOKCT*1.5 {
		t.Errorf("extremes: %+v %+v", first, last)
	}
	// Near 0.5 OOK-CT is competitive (paper: slightly better).
	mid := res.Rows[8]
	if math.Abs(mid.Level-0.5) > 1e-9 {
		t.Fatalf("mid level %v", mid.Level)
	}
	if mid.OOKCT < mid.AMPPM*0.9 {
		t.Errorf("mid: OOK-CT %v should be close to AMPPM %v", mid.OOKCT, mid.AMPPM)
	}
	// Headline averages in the right bands (paper: +40% and +12%).
	if res.AvgOverOOKCT < 0.2 || res.AvgOverOOKCT > 0.9 {
		t.Errorf("avg over OOK-CT %v", res.AvgOverOOKCT)
	}
	if res.AvgOverMPPM < 0.03 || res.AvgOverMPPM > 0.3 {
		t.Errorf("avg over MPPM %v", res.AvgOverMPPM)
	}
}

func TestFig19DynamicShape(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamic run")
	}
	res, err := Fig19(Fig19Options{Duration: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Sum stays near 1 after settling. The controller's worst transient
	// excursion ranges roughly 0.05-0.07 across seeds, so the band must
	// clear that spread — it guards "regulation works", not one stream.
	for i, p := range res.Sum.Points {
		if i < 2 {
			continue
		}
		if math.Abs(p.V-1.0) > 0.08 {
			t.Fatalf("sum at %v = %v", p.T, p.V)
		}
	}
	// SmartVLC adjusts about half as often.
	ratio := float64(res.SmartVLCAdjustments) / float64(res.ExistingAdjustments)
	if ratio < 0.35 || ratio > 0.65 {
		t.Fatalf("adjustment ratio %v", ratio)
	}
	a, b, c := Fig19Tables(res)
	if len(a.Rows) == 0 || len(b.Rows) == 0 || len(c.Rows) == 0 {
		t.Fatal("empty tables")
	}
}

func TestFig16DistanceCliffShape(t *testing.T) {
	if testing.Short() {
		t.Skip("link sweep")
	}
	rows, tbl, err := Fig16(LinkOptions{SecondsPerPoint: 0.25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(tbl.Rows) || len(rows) < 15 {
		t.Fatalf("rows %d", len(rows))
	}
	byDist := map[float64]Fig16Row{}
	for _, r := range rows {
		byDist[r.DistanceM] = r
	}
	for _, level := range []float64{0.18, 0.5, 0.7} {
		// Plateau: 1 m within 15% of 3 m (paper: flat to 3.6 m).
		near, mid := byDist[1.0].Kbps[level], byDist[3.0].Kbps[level]
		if mid < near*0.85 {
			t.Errorf("level %v: no plateau (1m %v vs 3m %v)", level, near, mid)
		}
		// Collapse: 4.5 m at most 10% of 3 m.
		if far := byDist[4.5].Kbps[level]; far > mid*0.1 {
			t.Errorf("level %v: no cliff (4.5m %v vs 3m %v)", level, far, mid)
		}
	}
	// Dimming level does not set the range: all three levels alive at
	// 3.25 m and dead at 4.75 m.
	for _, level := range []float64{0.18, 0.5, 0.7} {
		if byDist[3.25].Kbps[level] < 10 {
			t.Errorf("level %v dead at 3.25 m", level)
		}
		if byDist[4.75].Kbps[level] > 1 {
			t.Errorf("level %v alive at 4.75 m", level)
		}
	}
}

func TestFig17AngleCutoffShape(t *testing.T) {
	if testing.Short() {
		t.Skip("link sweep")
	}
	rows, _, err := Fig17(LinkOptions{SecondsPerPoint: 0.25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cutoff := func(d float64) float64 {
		ref := rows[0].Kbps[d]
		last := -1.0
		for _, r := range rows {
			if r.Kbps[d] > ref/2 {
				last = r.AngleDeg
			}
		}
		return last
	}
	c13, c23, c33 := cutoff(1.3), cutoff(2.3), cutoff(3.3)
	// Longer distance → smaller cut-off angle (paper Fig. 17).
	if !(c33 < c23 && c23 <= c13) {
		t.Fatalf("cutoffs not shrinking with distance: %v %v %v", c13, c23, c33)
	}
	// 1.3 m stays usable through the whole plotted sweep.
	if c13 < 16 {
		t.Fatalf("1.3 m cut off at %v°, paper shows flat to 16°", c13)
	}
	if c33 > 12 {
		t.Fatalf("3.3 m cutoff %v°, paper shows ≈6–8°", c33)
	}
}

// TestFig4MonteCarloAgreesWithEq3 validates the analytic SER model that
// everything in AMPPM's planning rests on: Monte-Carlo symbol error rates
// through the simulated Poisson channel must match Eq. 3 within sampling
// error.
func TestFig4MonteCarloAgreesWithEq3(t *testing.T) {
	const symbols = 300000
	rows, tbl, err := Fig4MonteCarlo(symbols, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(rows) || len(rows) == 0 {
		t.Fatal("empty result")
	}
	for _, r := range rows {
		// Expected symbol errors and a 5-sigma binomial band.
		exp := r.AnalyticSER * float64(symbols)
		got := r.MeasuredSER * float64(symbols)
		sigma := math.Sqrt(exp)
		if math.Abs(got-exp) > 5*sigma+3 {
			t.Errorf("%v: measured %v symbol errors, Eq.3 predicts %v (±%v)",
				r.Pattern, got, exp, sigma)
		}
	}
}

// TestFig4MonteCarloWorkerInvariant pins the sharded Monte-Carlo to the
// engine's contract: measured rates are identical for every worker count
// and GOMAXPROCS, including a budget that doesn't divide evenly into
// shards.
func TestFig4MonteCarloWorkerInvariant(t *testing.T) {
	const symbols = 12500 // 2.5 shards of 5000
	run := func(workers int) []Fig4MCRow {
		rows, _, err := Fig4MonteCarloWorkers(symbols, 17, workers)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		ref := run(1)
		for _, workers := range []int{2, 4, runtime.NumCPU()} {
			got := run(workers)
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("GOMAXPROCS=%d workers=%d: Monte-Carlo rows diverge from serial:\n%+v\nvs\n%+v",
					procs, workers, got, ref)
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}
