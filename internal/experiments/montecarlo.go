package experiments

import (
	"math/rand/v2"

	"smartvlc/internal/mppm"
	"smartvlc/internal/optics"
	"smartvlc/internal/photon"
	"smartvlc/internal/stats"
)

// Fig4MCRow compares Eq. 3's analytic symbol error rate against the rate
// measured by pushing symbols through the Poisson detection channel.
type Fig4MCRow struct {
	Pattern          mppm.Pattern
	AnalyticSER      float64 // Eq. 3 with the channel's own P1/P2
	MeasuredSER      float64
	MeasuredP1       float64
	MeasuredP2       float64
	AnalyticP1       float64
	AnalyticP2       float64
	SymbolsSimulated int
}

// Fig4MonteCarlo validates the paper's analytical SER model (Eq. 3, the
// basis of Fig. 4 and of AMPPM's pattern pruning) against the simulated
// channel at the calibrated worst-case operating point (3.6 m, bright
// ambient): slot errors are drawn from the Poisson detector and symbol
// errors counted directly. Model and simulation must agree for the
// envelope construction to be trustworthy.
func Fig4MonteCarlo(symbols int, seed uint64) ([]Fig4MCRow, stats.Table, error) {
	t := stats.Table{
		Title: "Fig. 4 cross-check — Eq. 3 vs Monte-Carlo channel (3.6 m, 9700 lux)",
		Headers: []string{"pattern", "P1 meas", "P1 analytic", "P2 meas", "P2 analytic",
			"SER meas", "SER Eq.3"},
	}
	full, err := photon.DefaultLinkBudget().ChannelAt(optics.Aligned(3.6, 0), 9700)
	if err != nil {
		return nil, t, err
	}
	// Detection happens through the receiver's 3-of-4-sample window.
	ch := full.Scaled(0.75)
	thr := ch.OptimalThreshold()
	p1a, p2a := ch.ErrorProbs(thr)

	rng := rand.New(rand.NewPCG(seed, 0xF16A))
	var rows []Fig4MCRow
	for _, p := range []mppm.Pattern{{N: 10, K: 5}, {N: 20, K: 10}, {N: 30, K: 9}, {N: 50, K: 25}} {
		codec := mppm.NewCodec(p)
		mask := uint64(1)<<uint(codec.Bits()) - 1
		cw := make([]bool, p.N)
		symErrs, offSlots, onSlots, offErrs, onErrs := 0, 0, 0, 0, 0
		for s := 0; s < symbols; s++ {
			v := rng.Uint64() & mask
			if _, err := codec.Encode(v, cw); err != nil {
				return nil, t, err
			}
			bad := false
			for _, on := range cw {
				intensity := 0.0
				if on {
					intensity = 1
					onSlots++
				} else {
					offSlots++
				}
				count := ch.SampleCount(rng, intensity, 1)
				decided := count >= thr
				if decided != on {
					bad = true
					if on {
						onErrs++
					} else {
						offErrs++
					}
				}
			}
			if bad {
				symErrs++
			}
		}
		row := Fig4MCRow{
			Pattern:          p,
			AnalyticSER:      p.SER(p1a, p2a),
			MeasuredSER:      float64(symErrs) / float64(symbols),
			MeasuredP1:       float64(offErrs) / float64(offSlots),
			MeasuredP2:       float64(onErrs) / float64(onSlots),
			AnalyticP1:       p1a,
			AnalyticP2:       p2a,
			SymbolsSimulated: symbols,
		}
		rows = append(rows, row)
		t.AddRow(p.String(), row.MeasuredP1, row.AnalyticP1, row.MeasuredP2, row.AnalyticP2,
			row.MeasuredSER, row.AnalyticSER)
	}
	return rows, t, nil
}
