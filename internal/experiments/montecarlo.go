package experiments

import (
	"smartvlc/internal/mppm"
	"smartvlc/internal/optics"
	"smartvlc/internal/parallel"
	"smartvlc/internal/photon"
	"smartvlc/internal/stats"
)

// Fig4MCRow compares Eq. 3's analytic symbol error rate against the rate
// measured by pushing symbols through the Poisson detection channel.
type Fig4MCRow struct {
	Pattern          mppm.Pattern
	AnalyticSER      float64 // Eq. 3 with the channel's own P1/P2
	MeasuredSER      float64
	MeasuredP1       float64
	MeasuredP2       float64
	AnalyticP1       float64
	AnalyticP2       float64
	SymbolsSimulated int
}

// fig4ShardSymbols is the fixed Monte-Carlo shard size. The shard
// geometry — and with it each shard's RNG stream — depends only on the
// symbol budget, never on the worker count, so measured rates are
// identical on every machine.
const fig4ShardSymbols = 5000

// fig4Patterns are the codebooks the cross-check sweeps (as in Fig. 4).
var fig4Patterns = []mppm.Pattern{{N: 10, K: 5}, {N: 20, K: 10}, {N: 30, K: 9}, {N: 50, K: 25}}

// fig4Tally accumulates one shard's error counts. Integer sums commute,
// so folding the tallies in shard order reproduces the serial totals.
type fig4Tally struct {
	symErrs, offSlots, onSlots, offErrs, onErrs int
}

func (t *fig4Tally) add(o fig4Tally) {
	t.symErrs += o.symErrs
	t.offSlots += o.offSlots
	t.onSlots += o.onSlots
	t.offErrs += o.offErrs
	t.onErrs += o.onErrs
}

// Fig4MonteCarlo validates the paper's analytical SER model (Eq. 3, the
// basis of Fig. 4 and of AMPPM's pattern pruning) against the simulated
// channel at the calibrated worst-case operating point (3.6 m, bright
// ambient): slot errors are drawn from the Poisson detector and symbol
// errors counted directly. Model and simulation must agree for the
// envelope construction to be trustworthy. Runs on GOMAXPROCS workers;
// see Fig4MonteCarloWorkers for the worker-invariance contract.
func Fig4MonteCarlo(symbols int, seed uint64) ([]Fig4MCRow, stats.Table, error) {
	return Fig4MonteCarloWorkers(symbols, seed, 0)
}

// Fig4MonteCarloWorkers is Fig4MonteCarlo with an explicit worker count
// (workers < 1 selects GOMAXPROCS). The symbol budget is split into
// fixed-size shards, each drawing from its own PCG stream salted by
// (pattern, shard); shard tallies merge in shard order. Results are
// therefore bit-identical for every worker count and GOMAXPROCS.
func Fig4MonteCarloWorkers(symbols int, seed uint64, workers int) ([]Fig4MCRow, stats.Table, error) {
	t := stats.Table{
		Title: "Fig. 4 cross-check — Eq. 3 vs Monte-Carlo channel (3.6 m, 9700 lux)",
		Headers: []string{"pattern", "P1 meas", "P1 analytic", "P2 meas", "P2 analytic",
			"SER meas", "SER Eq.3"},
	}
	full, err := photon.DefaultLinkBudget().ChannelAt(optics.Aligned(3.6, 0), 9700)
	if err != nil {
		return nil, t, err
	}
	// Detection happens through the receiver's 3-of-4-sample window.
	ch := full.Scaled(0.75)
	thr := ch.OptimalThreshold()
	p1a, p2a := ch.ErrorProbs(thr)

	// Flatten (pattern × shard) into one job list so small budgets still
	// fill every worker.
	shards := parallel.Split(symbols, fig4ShardSymbols)
	type job struct{ pi, si int }
	jobs := make([]job, 0, len(fig4Patterns)*len(shards))
	for pi := range fig4Patterns {
		for si := range shards {
			jobs = append(jobs, job{pi, si})
		}
	}
	tallies, err := parallel.Map(workers, len(jobs), func(k int) (fig4Tally, error) {
		j := jobs[k]
		p := fig4Patterns[j.pi]
		// Salt spacing 1<<16 shards per pattern: ~327M symbols headroom.
		rng := parallel.RNG(seed, 0xF16A0000+uint64(j.pi)<<16, shards[j.si].Index)
		codec := mppm.NewCodec(p)
		mask := uint64(1)<<uint(codec.Bits()) - 1
		cw := make([]bool, p.N)
		var tal fig4Tally
		for s := 0; s < shards[j.si].Count; s++ {
			v := rng.Uint64() & mask
			if _, err := codec.Encode(v, cw); err != nil {
				return fig4Tally{}, err
			}
			bad := false
			for _, on := range cw {
				intensity := 0.0
				if on {
					intensity = 1
					tal.onSlots++
				} else {
					tal.offSlots++
				}
				count := ch.SampleCount(rng, intensity, 1)
				decided := count >= thr
				if decided != on {
					bad = true
					if on {
						tal.onErrs++
					} else {
						tal.offErrs++
					}
				}
			}
			if bad {
				tal.symErrs++
			}
		}
		return tal, nil
	})
	if err != nil {
		return nil, t, err
	}

	var rows []Fig4MCRow
	for pi, p := range fig4Patterns {
		var tal fig4Tally
		for si := range shards {
			tal.add(tallies[pi*len(shards)+si])
		}
		row := Fig4MCRow{
			Pattern:          p,
			AnalyticSER:      p.SER(p1a, p2a),
			MeasuredSER:      float64(tal.symErrs) / float64(symbols),
			MeasuredP1:       float64(tal.offErrs) / float64(tal.offSlots),
			MeasuredP2:       float64(tal.onErrs) / float64(tal.onSlots),
			AnalyticP1:       p1a,
			AnalyticP2:       p2a,
			SymbolsSimulated: symbols,
		}
		rows = append(rows, row)
		t.AddRow(p.String(), row.MeasuredP1, row.AnalyticP1, row.MeasuredP2, row.AnalyticP2,
			row.MeasuredSER, row.AnalyticSER)
	}
	return rows, t, nil
}
