package experiments

import (
	"smartvlc/internal/light"
	"smartvlc/internal/sim"
	"smartvlc/internal/stats"
)

// Fig19Result carries the three panels of paper Fig. 19, produced from a
// dynamic blind-pull run: the per-second throughput (a), the light
// intensity traces (b), and the cumulative adaptation counts for both
// stepping methods (c).
type Fig19Result struct {
	// Throughput is the per-second goodput series (Fig. 19a), bps.
	Throughput stats.Series
	// Ambient, LED and Sum are normalized intensities (Fig. 19b).
	Ambient, LED, Sum stats.Series
	// SmartVLCAdjust and ExistingAdjust are cumulative adjustment counts
	// (Fig. 19c).
	SmartVLCAdjust, ExistingAdjust stats.Series
	// Final counts, for the 50 %-reduction headline.
	SmartVLCAdjustments, ExistingAdjustments int
}

// Fig19Options tune the dynamic experiment. The paper's blind pull takes
// 67 s; Duration can shorten it for tests while keeping the same ambient
// span and speed profile shape.
type Fig19Options struct {
	Duration float64 // default 67 s
	Seed     uint64
}

func (o Fig19Options) duration() float64 {
	if o.Duration > 0 {
		return o.Duration
	}
	return 67
}

// Fig19 runs the dynamic scenario of paper §6.3: the window blind is
// pulled up at constant speed for ~67 s while the transmitter adapts the
// LED to hold the total illumination constant, with AMPPM re-selecting
// super-symbols at every dimming step.
func Fig19(opt Fig19Options) (Fig19Result, error) {
	a, _, _, err := Schemes()
	if err != nil {
		return Fig19Result{}, err
	}
	dur := opt.duration()
	// Blind pull from near-dark to bright: the LED sweeps ~0.9 → ~0.1.
	trace := light.BlindPull{
		StartLux:       50,
		EndLux:         450,
		Duration:       dur,
		WobbleFraction: 0.05,
	}

	base := sim.DefaultConfig(a)
	base.Trace = trace
	base.FullLEDLux = 500
	base.TargetSum = 1.0
	base.Seed = opt.Seed + 7

	smart := base
	smart.Stepper = light.PerceivedStepper{TauP: light.DefaultTauP}
	rs, err := sim.Run(smart, dur)
	if err != nil {
		return Fig19Result{}, err
	}

	existing := base
	existing.Stepper = light.SafeMeasuredStepper(light.DefaultTauP, 0.1)
	re, err := sim.Run(existing, dur)
	if err != nil {
		return Fig19Result{}, err
	}

	return Fig19Result{
		Throughput:          rs.Throughput,
		Ambient:             rs.Ambient,
		LED:                 rs.LED,
		Sum:                 rs.Sum,
		SmartVLCAdjust:      rs.AdjustCum,
		ExistingAdjust:      re.AdjustCum,
		SmartVLCAdjustments: rs.Adjustments,
		ExistingAdjustments: re.Adjustments,
	}, nil
}

// Fig19Tables renders the result as the three printable panels.
func Fig19Tables(r Fig19Result) (a, b, c stats.Table) {
	a = stats.Table{
		Title:   "Fig. 19(a) — throughput during the blind pull",
		Headers: []string{"second", "throughput_kbps"},
	}
	for _, p := range r.Throughput.Points {
		a.AddRow(p.T, p.V/1000)
	}
	b = stats.Table{
		Title:   "Fig. 19(b) — normalized light intensities",
		Headers: []string{"t_s", "ambient", "led", "sum"},
	}
	for i := range r.Ambient.Points {
		b.AddRow(r.Ambient.Points[i].T, r.Ambient.Points[i].V, r.LED.Points[i].V, r.Sum.Points[i].V)
	}
	c = stats.Table{
		Title:   "Fig. 19(c) — cumulative adaptation adjustments",
		Headers: []string{"t_s", "existing", "smartvlc"},
	}
	for i := range r.SmartVLCAdjust.Points {
		c.AddRow(r.SmartVLCAdjust.Points[i].T, r.ExistingAdjust.Points[i].V, r.SmartVLCAdjust.Points[i].V)
	}
	return a, b, c
}
