// Package experiments regenerates every table and figure of the SmartVLC
// paper's evaluation from this repository's implementation. Each runner
// returns structured rows plus a rendered stats.Table, so the same code
// feeds cmd/smartvlc-figures, the benchmark harness in bench_test.go, and
// EXPERIMENTS.md.
package experiments

import (
	"fmt"

	"smartvlc/internal/amppm"
	"smartvlc/internal/flicker"
	"smartvlc/internal/light"
	"smartvlc/internal/mppm"
	"smartvlc/internal/stats"
)

// PaperP1 and PaperP2 are the slot error probabilities the paper measured
// at its worst-case operating point and uses throughout its analysis.
const (
	PaperP1 = 9e-5
	PaperP2 = 8e-5
)

// Fig4 reproduces paper Fig. 4: MPPM symbol error rate (Eq. 3) as a
// function of the dimming level for several symbol lengths N.
func Fig4() stats.Table {
	ns := []int{10, 30, 50, 80, 120}
	t := stats.Table{Title: "Fig. 4 — MPPM SER vs dimming level (P1=9e-5, P2=8e-5)"}
	t.Headers = []string{"level"}
	for _, n := range ns {
		t.Headers = append(t.Headers, fmt.Sprintf("N=%d", n))
	}
	for l := 0.05; l <= 0.951; l += 0.05 {
		cells := []interface{}{l}
		for _, n := range ns {
			k := int(l*float64(n) + 0.5)
			cells = append(cells, mppm.SER(n, k, PaperP1, PaperP2))
		}
		t.AddRow(cells...)
	}
	return t
}

// Fig6Row is one point of Fig. 6.
type Fig6Row struct {
	Level float64
	Rate  float64 // normalized data rate, bits/slot
}

// Fig6 reproduces paper Fig. 6: the dimming levels N=10 MPPM supports
// before multiplexing (9 discrete points) and the semi-continuous levels
// available after multiplexing.
func Fig6() (before, after []Fig6Row, tbl stats.Table) {
	for k := 1; k <= 9; k++ {
		p := mppm.Pattern{N: 10, K: k}
		before = append(before, Fig6Row{Level: p.DimmingLevel(), Rate: p.NormalizedRate()})
	}
	cons := amppm.DefaultConstraints()
	cons.MinN, cons.MaxN = 10, 10
	cons.SERBound = 0.99 // Fig. 6 illustrates multiplexing, not pruning
	table, err := amppm.NewTable(cons)
	if err != nil {
		panic(err) // constraints are fixed and valid by construction
	}
	for l := 0.1; l <= 0.901; l += 0.025 {
		s, err := table.Select(l)
		if err != nil {
			continue
		}
		after = append(after, Fig6Row{Level: s.Level(), Rate: s.NormalizedRate()})
	}
	tbl = stats.Table{
		Title:   "Fig. 6 — dimming levels before/after multiplexing (N=10)",
		Headers: []string{"set", "level", "normalized rate"},
	}
	for _, r := range before {
		tbl.AddRow("before", r.Level, r.Rate)
	}
	for _, r := range after {
		tbl.AddRow("after", r.Level, r.Rate)
	}
	return before, after, tbl
}

// Fig8Row is one symbol pattern of Fig. 8 with its SER and pruning
// verdict.
type Fig8Row struct {
	Pattern mppm.Pattern
	SER     float64
	Kept    bool
}

// Fig8 reproduces paper Fig. 8: symbol patterns below/above the SER upper
// bound. The paper's example names S(50, 0.3) and S(30, 0.4) as abandoned.
func Fig8(bound float64) ([]Fig8Row, stats.Table) {
	var rows []Fig8Row
	t := stats.Table{
		Title:   fmt.Sprintf("Fig. 8 — patterns vs SER bound %.4g", bound),
		Headers: []string{"pattern", "level", "SER", "kept"},
	}
	for _, n := range []int{10, 30, 50} {
		for k := 1; k < n; k++ {
			p := mppm.Pattern{N: n, K: k}
			ser := p.SER(PaperP1, PaperP2)
			r := Fig8Row{Pattern: p, SER: ser, Kept: ser <= bound}
			rows = append(rows, r)
			t.AddRow(p.String(), p.DimmingLevel(), ser, fmt.Sprintf("%v", r.Kept))
		}
	}
	return rows, t
}

// Fig9Row is one envelope point of Fig. 9.
type Fig9Row struct {
	Level        float64
	EnvelopeRate float64
	SingleRate   float64 // best fixed pattern at this exact level (0 if none)
}

// Fig9 reproduces paper Fig. 9: the slope-walk envelope over patterns with
// N in [10, 21] between dimming levels 0.5 and 0.7, against the
// "without multiplexing" step curve.
func Fig9() ([]Fig9Row, stats.Table) {
	cons := amppm.DefaultConstraints()
	cons.MinN, cons.MaxN = 10, 21
	cons.SERBound = 0.99
	table, err := amppm.NewTable(cons)
	if err != nil {
		panic(err)
	}
	var rows []Fig9Row
	t := stats.Table{
		Title:   "Fig. 9 — envelope (AMPPM) vs best single pattern, N in [10,21]",
		Headers: []string{"level", "AMPPM envelope", "single pattern"},
	}
	for l := 0.50; l <= 0.701; l += 0.005 {
		r := Fig9Row{
			Level:        l,
			EnvelopeRate: table.EnvelopeRateAt(l),
			SingleRate:   table.BestSingleRateAt(l, 0.0025),
		}
		rows = append(rows, r)
		t.AddRow(r.Level, r.EnvelopeRate, r.SingleRate)
	}
	return rows, t
}

// Fig10Row is one adaptation step in Fig. 10.
type Fig10Row struct {
	Step                 int
	MeasuredDomainLevel  float64 // the "existing method" trajectory
	PerceivedDomainLevel float64 // SmartVLC's trajectory
}

// Fig10 reproduces paper Fig. 10: the same brightness transition executed
// with a fixed measured-domain step (left plot) and a fixed
// perceived-domain step (right plot). The perceived-domain trajectory
// takes larger measured steps at high brightness.
func Fig10(from, to float64) ([]Fig10Row, stats.Table) {
	measured := light.SafeMeasuredStepper(light.DefaultTauP, min(from, to))
	perceived := light.PerceivedStepper{TauP: light.DefaultTauP}
	pm := measured.Plan(from, to)
	pp := perceived.Plan(from, to)
	n := len(pm)
	if len(pp) > n {
		n = len(pp)
	}
	rows := make([]Fig10Row, n)
	t := stats.Table{
		Title:   fmt.Sprintf("Fig. 10 — adaptation %0.2f → %0.2f: measured vs perceived stepping", from, to),
		Headers: []string{"step", "measured-domain", "perceived-domain"},
	}
	for i := 0; i < n; i++ {
		r := Fig10Row{Step: i + 1, MeasuredDomainLevel: to, PerceivedDomainLevel: to}
		if i < len(pm) {
			r.MeasuredDomainLevel = pm[i]
		}
		if i < len(pp) {
			r.PerceivedDomainLevel = pp[i]
		}
		rows[i] = r
		t.AddRow(r.Step, r.MeasuredDomainLevel, r.PerceivedDomainLevel)
	}
	return rows, t
}

// Table2 reproduces paper Table 2: the fraction of the 20-subject panel
// perceiving flicker at each dimming resolution under the three ambient
// conditions, for both viewing manners.
func Table2() (indirect, direct stats.Table) {
	p := flicker.NewPopulation(20)
	conds := []struct {
		name string
		c    flicker.Condition
	}{{"L1", flicker.L1}, {"L2", flicker.L2}, {"L3", flicker.L3}}

	indirect = stats.Table{
		Title:   "Table 2(a) — perception under indirect viewing (% of 20 subjects)",
		Headers: []string{"resolution", "L1", "L2", "L3"},
	}
	for _, res := range []float64{0.04, 0.05, 0.06, 0.07, 0.08} {
		cells := []interface{}{res}
		for _, c := range conds {
			cells = append(cells, 100*p.PerceivingFraction(res, flicker.Indirect, c.c))
		}
		indirect.AddRow(cells...)
	}
	direct = stats.Table{
		Title:   "Table 2(b) — perception under direct viewing (% of 20 subjects)",
		Headers: []string{"resolution", "L1", "L2", "L3"},
	}
	for _, res := range []float64{0.003, 0.004, 0.005, 0.006, 0.007} {
		cells := []interface{}{res}
		for _, c := range conds {
			cells = append(cells, 100*p.PerceivingFraction(res, flicker.Direct, c.c))
		}
		direct.AddRow(cells...)
	}
	return indirect, direct
}
