package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-5) = %d", got)
	}
}

func TestSplitGeometry(t *testing.T) {
	if s := Split(0, 10); s != nil {
		t.Fatalf("Split(0) = %v", s)
	}
	cases := []struct {
		total, size int
		counts      []int
	}{
		{10, 10, []int{10}},
		{10, 4, []int{4, 4, 2}},
		{9, 3, []int{3, 3, 3}},
		{5, 100, []int{5}},
		{7, 0, []int{7}}, // size<=0 means one shard
	}
	for _, c := range cases {
		shards := Split(c.total, c.size)
		if len(shards) != len(c.counts) {
			t.Fatalf("Split(%d,%d): %d shards, want %d", c.total, c.size, len(shards), len(c.counts))
		}
		next := 0
		for i, sh := range shards {
			if sh.Index != i || sh.Start != next || sh.Count != c.counts[i] {
				t.Fatalf("Split(%d,%d)[%d] = %+v, want start %d count %d", c.total, c.size, i, sh, next, c.counts[i])
			}
			next += sh.Count
		}
		if next != c.total {
			t.Fatalf("Split(%d,%d) covers %d items", c.total, c.size, next)
		}
	}
}

func TestRNGStreams(t *testing.T) {
	a1, a2 := RNG(7, 100, 0), RNG(7, 100, 0)
	for i := 0; i < 64; i++ {
		if a1.Uint64() != a2.Uint64() {
			t.Fatal("identical (seed,salt,shard) does not reproduce the stream")
		}
	}
	// Sibling shards must diverge immediately-ish.
	c1, c2 := RNG(7, 100, 0), RNG(7, 100, 1)
	diverged := false
	for i := 0; i < 8; i++ {
		if c1.Uint64() != c2.Uint64() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("sibling shards share a stream")
	}
}

func TestMapOrderPreserved(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		got, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestForEachLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	ran := make([]atomic.Bool, 10)
	err := ForEach(4, 10, func(i int) error {
		ran[i].Store(true)
		switch i {
		case 3:
			return errB
		case 2:
			return errA
		}
		return nil
	})
	if err != errA {
		t.Fatalf("got %v, want lowest-index error %v", err, errA)
	}
	for i := range ran {
		if !ran[i].Load() {
			t.Fatalf("index %d skipped after sibling error", i)
		}
	}
}

func TestPoolReuseAndRun(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	if p.Workers() != 4 {
		t.Fatalf("workers %d", p.Workers())
	}
	var total atomic.Int64
	for round := 0; round < 50; round++ {
		p.Run(8, func(i int) { total.Add(int64(i)) })
	}
	if got := total.Load(); got != 50*28 {
		t.Fatalf("sum %d, want %d", got, 50*28)
	}
	out := make([]int, 16)
	if err := p.ForEach(16, func(i int) error { out[i] = i + 1; return nil }); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if err := p.ForEach(4, func(i int) error {
		if i == 1 {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	}); err == nil || err.Error() != "boom 1" {
		t.Fatalf("pool error propagation: %v", err)
	}
	p.Close() // idempotent
}

// TestShardedSumWorkerInvariant is the engine's core contract in
// miniature: a sharded Monte-Carlo accumulation merged in shard order
// must produce identical results for every worker count and GOMAXPROCS.
func TestShardedSumWorkerInvariant(t *testing.T) {
	run := func(workers int) []uint64 {
		shards := Split(100000, 1337)
		sums, err := Map(workers, len(shards), func(i int) (uint64, error) {
			rng := RNG(42, 0xABCD, shards[i].Index)
			var s uint64
			for k := 0; k < shards[i].Count; k++ {
				s += rng.Uint64() >> 32
			}
			return s, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return sums
	}
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		ref := run(1)
		for _, workers := range []int{2, 4, 9} {
			got := run(workers)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("GOMAXPROCS=%d workers=%d: shard %d sum %d != serial %d",
						procs, workers, i, got[i], ref[i])
				}
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}
