// Package parallel is SmartVLC's deterministic parallel execution
// engine: a bounded worker pool plus the two primitives that keep
// concurrent simulation bit-reproducible —
//
//   - Sharded RNG streams. Every unit of parallel work draws from its own
//     rand/v2 PCG stream derived from (seed, salt, shardIndex), never from
//     a stream shared with a sibling, so the random numbers a shard
//     consumes are a function of the shard's identity alone — not of which
//     worker ran it or in what order.
//
//   - Order-preserving merge. ForEach/Map index results by the item's
//     position and callers fold them back together in index order, so the
//     merged output is byte-identical for every worker count (including
//     the serial workers=1 path) and for every GOMAXPROCS.
//
// Work distribution (which worker picks up which index) is intentionally
// left nondeterministic — only wall-clock time may depend on it. Shard
// partitioning, by contrast, must never depend on the worker count: use
// Split, whose geometry is a function of the workload size alone.
package parallel

import (
	"context"
	"math/rand/v2"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

// Do runs fn under pprof goroutine labels (k1, v1, k2, v2, ...), so
// wall-clock CPU profiles attribute the work to the same dimensions the
// deterministic stage profiler uses (session, stage, scheme, level).
// Callers on a profiling-off fast path should guard the call themselves:
// building the label set allocates.
func Do(fn func(), labelPairs ...string) {
	pprof.Do(context.Background(), pprof.Labels(labelPairs...), func(context.Context) { fn() })
}

// LabelContext pre-builds a goroutine-label context for SetLabels. Hot
// loops that switch labels per phase build one context per label set up
// front and switch with SetLabels, which allocates nothing.
func LabelContext(labelPairs ...string) context.Context {
	return pprof.WithLabels(context.Background(), pprof.Labels(labelPairs...))
}

// SetLabels applies a pre-built label context to the calling goroutine.
func SetLabels(ctx context.Context) { pprof.SetGoroutineLabels(ctx) }

// Workers resolves a requested worker count: values below 1 select
// GOMAXPROCS, everything else passes through.
func Workers(requested int) int {
	if requested >= 1 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// RNG returns the deterministic rand stream for one shard of a workload:
// a PCG generator seeded with (seed, salt+shard). Distinct salts keep
// unrelated workloads of the same session on disjoint streams; distinct
// shard indices keep siblings independent. Callers must ensure their salt
// spacing exceeds the shard count.
func RNG(seed, salt uint64, shard int) *rand.Rand {
	return rand.New(PCG(seed, salt, shard))
}

// PCG returns the concrete generator behind RNG's stream for the shard.
// Shards that feed the PHY fast path keep both views of one generator:
// the Rand for scalar draws, the PCG for the inlined sampler twins —
// they stay in lockstep on the shared state.
func PCG(seed, salt uint64, shard int) *rand.PCG {
	return rand.NewPCG(seed, salt+uint64(shard))
}

// ReseedPCG rewinds an existing generator onto the stream PCG would
// return for (seed, salt, shard). A reusable arena reseeds its retained
// generators instead of allocating fresh ones; the derivation lives here
// so the two can never drift apart.
func ReseedPCG(p *rand.PCG, seed, salt uint64, shard int) {
	p.Seed(seed, salt+uint64(shard))
}

// Shard is one contiguous span of a sharded workload.
type Shard struct {
	// Index is the shard number — the RNG stream selector.
	Index int
	// Start is the first item of the span.
	Start int
	// Count is the number of items in the span.
	Count int
}

// Split partitions total items into shards of at most size items each.
// The partition depends only on (total, size) — never on the worker count
// or GOMAXPROCS — which is what makes sharded Monte-Carlo results
// machine-independent: each shard owns a fixed slice of the budget and a
// fixed RNG stream no matter how many workers drain the shard queue.
func Split(total, size int) []Shard {
	if total <= 0 {
		return nil
	}
	if size <= 0 {
		size = total
	}
	shards := make([]Shard, 0, (total+size-1)/size)
	for start := 0; start < total; start += size {
		n := size
		if start+n > total {
			n = total - start
		}
		shards = append(shards, Shard{Index: len(shards), Start: start, Count: n})
	}
	return shards
}

// firstError returns the lowest-index error, so the reported failure is
// deterministic even when several shards fail concurrently.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEach runs fn(0), …, fn(n-1) across at most workers goroutines
// (workers < 1 selects GOMAXPROCS) and waits for all of them. Every index
// runs even if an earlier one fails — indices are independent by contract
// — and the returned error is the lowest-index failure. With one worker
// the indices run in order on the calling goroutine.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	errs := make([]error, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
		return firstError(errs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return firstError(errs)
}

// Map runs fn for every index across at most workers goroutines and
// returns the results in index order — the order-preserving merge. On
// error the lowest-index failure is returned and the results are
// discarded.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapWorker is Map with per-worker rented state: each worker goroutine
// calls rent() once before draining indices, passes the rented value to
// every fn it runs, and hands it to release() when it finishes (release
// may be nil). With one worker everything runs on the calling goroutine
// with a single rented value. The determinism contract is unchanged —
// rented state must never influence results, only amortize their cost
// (scratch buffers, warm session arenas) — and the index→worker
// assignment remains intentionally nondeterministic.
func MapWorker[S, T any](workers, n int, rent func() S, release func(S), fn func(i int, s S) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	out := make([]T, n)
	errs := make([]error, n)
	body := func(s S, next func() int) {
		for {
			i := next()
			if i >= n {
				break
			}
			out[i], errs[i] = fn(i, s)
		}
		if release != nil {
			release(s)
		}
	}
	if w == 1 {
		i := 0
		body(rent(), func() int { i++; return i - 1 })
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				body(rent(), func() int { return int(next.Add(1)) - 1 })
			}()
		}
		wg.Wait()
	}
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// Pool is a persistent bounded worker pool for hot loops that fan out
// many times (e.g. once per simulated frame window): the workers are
// spawned once, so each fan-out costs channel handoffs instead of
// goroutine creation. A Pool must be Closed when the loop ends. Fan-outs
// must not be nested (a job must not call back into its own pool's
// ForEach/Run — with all workers busy that deadlocks).
type Pool struct {
	workers int
	jobs    chan poolJob
	close   sync.Once
}

type poolJob struct {
	idx  int
	run  func(i int) error
	errs []error // nil for Run jobs
	wg   *sync.WaitGroup
}

// NewPool starts a pool with the resolved worker count (requested < 1
// selects GOMAXPROCS).
func NewPool(requested int) *Pool { return NewPoolLabeled(requested) }

// NewPoolLabeled is NewPool with pprof goroutine labels applied to every
// worker for its lifetime, so CPU profiles attribute pooled work (e.g.
// broadcast PHY shards) to the owning session instead of an anonymous
// goroutine. Labels are set once at spawn — the per-job hot path is
// untouched.
func NewPoolLabeled(requested int, labelPairs ...string) *Pool {
	w := Workers(requested)
	p := &Pool{workers: w, jobs: make(chan poolJob, w)}
	for i := 0; i < w; i++ {
		go func() {
			if len(labelPairs) > 0 {
				pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(), pprof.Labels(labelPairs...)))
			}
			for j := range p.jobs {
				err := j.run(j.idx)
				if j.errs != nil {
					j.errs[j.idx] = err
				}
				j.wg.Done()
			}
		}()
	}
	return p
}

// Workers returns the resolved worker count.
func (p *Pool) Workers() int { return p.workers }

// Close releases the pool's workers. Idempotent; the pool must not be
// used afterwards.
func (p *Pool) Close() { p.close.Do(func() { close(p.jobs) }) }

// ForEach runs fn(0), …, fn(n-1) on the pool and waits; semantics match
// the package-level ForEach.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		p.jobs <- poolJob{idx: i, run: fn, errs: errs, wg: &wg}
	}
	wg.Wait()
	return firstError(errs)
}

// Run is ForEach for infallible bodies: no error slice is allocated, so a
// per-frame fan-out costs one WaitGroup and n channel sends.
func (p *Pool) Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	body := func(i int) error { fn(i); return nil }
	for i := 0; i < n; i++ {
		p.jobs <- poolJob{idx: i, run: body, wg: &wg}
	}
	wg.Wait()
}
