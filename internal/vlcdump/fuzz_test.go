package vlcdump

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the capture reader: it must never
// panic, never allocate unboundedly, and always terminate.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 8e-6)
	_ = w.WriteNote("seed")
	_ = w.WriteSlots([]bool{true, false, true, true})
	_ = w.WriteSamples([]int{5, 9, 2})
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("VLCD\x01\x00\x00\x00\x00\x00"))
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			rec, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if len(rec.Slots) > maxElems || len(rec.Samples) > maxElems {
				t.Fatal("record exceeds element cap")
			}
		}
	})
}

// FuzzRoundTrip writes fuzz-derived records and requires exact recovery.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{0xA5, 0x3C}, []byte{1, 2, 200})
	f.Fuzz(func(t *testing.T, slotBits, sampleBytes []byte) {
		slots := make([]bool, len(slotBits)*8)
		for i := range slots {
			slots[i] = slotBits[i/8]>>(7-uint(i%8))&1 == 1
		}
		samples := make([]int, len(sampleBytes))
		for i, b := range sampleBytes {
			samples[i] = int(b) * 17
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 8e-6)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteSlots(slots); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteSamples(samples); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := r.Next()
		if err != nil || len(rec.Slots) != len(slots) {
			t.Fatalf("slots: %v", err)
		}
		for i := range slots {
			if rec.Slots[i] != slots[i] {
				t.Fatal("slot mismatch")
			}
		}
		rec, err = r.Next()
		if err != nil || len(rec.Samples) != len(samples) {
			t.Fatalf("samples: %v", err)
		}
		for i := range samples {
			if rec.Samples[i] != samples[i] {
				t.Fatal("sample mismatch")
			}
		}
	})
}
