// Package vlcdump defines a small capture format for SmartVLC waveforms —
// the VLC analogue of pcap. A capture holds slot waveforms (what the
// transmitter drove onto the LED) and/or photon-count sample streams
// (what the receiver's ADC saw), so link problems can be recorded once
// and replayed through the decoder offline.
//
// Layout (all integers little-endian):
//
//	header : magic "VLCD" | version u8 | reserved u8 | tslot_ns u32
//	record : kind u8 | payload
//	  kind 1 (slots)   : count u32 | first u8 | uvarint run lengths,
//	                     alternating values starting at `first`
//	  kind 2 (samples) : count u32 | uvarint zigzag deltas
//	  kind 3 (note)    : len u16 | utf-8 bytes
//
// Slot waveforms are run-length encoded (VLC waveforms have long ON/OFF
// runs in compensation and idle fields); sample streams are delta coded.
package vlcdump

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Magic identifies a capture stream.
const Magic = "VLCD"

// Version is the current format version.
const Version = 1

// RecordKind discriminates capture records.
type RecordKind uint8

// Record kinds.
const (
	// KindSlots is a transmitter slot waveform.
	KindSlots RecordKind = 1
	// KindSamples is a receiver photon-count sample stream.
	KindSamples RecordKind = 2
	// KindNote is a free-form annotation.
	KindNote RecordKind = 3
)

// Record is one decoded capture record; exactly one payload field is set
// according to Kind.
type Record struct {
	Kind    RecordKind
	Slots   []bool
	Samples []int
	Note    string
}

// Format errors.
var (
	ErrBadMagic   = errors.New("vlcdump: bad magic")
	ErrBadVersion = errors.New("vlcdump: unsupported version")
	ErrCorrupt    = errors.New("vlcdump: corrupt record")
)

// Writer writes a capture stream.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter writes the header and returns a Writer. SlotSeconds is the
// slot duration recorded in the header (8 µs for the paper's prototype).
func NewWriter(w io.Writer, slotSeconds float64) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	hdr := []byte{Version, 0, 0, 0, 0, 0}
	binary.LittleEndian.PutUint32(hdr[2:], uint32(slotSeconds*1e9))
	if _, err := bw.Write(hdr); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

func (w *Writer) setErr(err error) error {
	if w.err == nil {
		w.err = err
	}
	return w.err
}

// WriteSlots appends a slot-waveform record.
func (w *Writer) WriteSlots(slots []bool) error {
	if w.err != nil {
		return w.err
	}
	if err := w.w.WriteByte(byte(KindSlots)); err != nil {
		return w.setErr(err)
	}
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(slots)))
	if _, err := w.w.Write(n[:]); err != nil {
		return w.setErr(err)
	}
	first := byte(0)
	if len(slots) > 0 && slots[0] {
		first = 1
	}
	if err := w.w.WriteByte(first); err != nil {
		return w.setErr(err)
	}
	var buf [binary.MaxVarintLen64]byte
	i := 0
	for i < len(slots) {
		v := slots[i]
		run := 0
		for i < len(slots) && slots[i] == v {
			run++
			i++
		}
		k := binary.PutUvarint(buf[:], uint64(run))
		if _, err := w.w.Write(buf[:k]); err != nil {
			return w.setErr(err)
		}
	}
	return nil
}

// WriteSamples appends a sample-stream record.
func (w *Writer) WriteSamples(samples []int) error {
	if w.err != nil {
		return w.err
	}
	if err := w.w.WriteByte(byte(KindSamples)); err != nil {
		return w.setErr(err)
	}
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(samples)))
	if _, err := w.w.Write(n[:]); err != nil {
		return w.setErr(err)
	}
	var buf [binary.MaxVarintLen64]byte
	prev := 0
	for _, s := range samples {
		d := int64(s - prev)
		prev = s
		k := binary.PutVarint(buf[:], d)
		if _, err := w.w.Write(buf[:k]); err != nil {
			return w.setErr(err)
		}
	}
	return nil
}

// WriteNote appends an annotation record.
func (w *Writer) WriteNote(note string) error {
	if w.err != nil {
		return w.err
	}
	if len(note) > 1<<16-1 {
		return w.setErr(fmt.Errorf("vlcdump: note too long"))
	}
	if err := w.w.WriteByte(byte(KindNote)); err != nil {
		return w.setErr(err)
	}
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], uint16(len(note)))
	if _, err := w.w.Write(n[:]); err != nil {
		return w.setErr(err)
	}
	if _, err := w.w.WriteString(note); err != nil {
		return w.setErr(err)
	}
	return nil
}

// Flush flushes buffered output; call it before closing the underlying
// writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader reads a capture stream.
type Reader struct {
	r *bufio.Reader
	// SlotSeconds is the slot duration from the header.
	SlotSeconds float64
}

// maxElems bounds a single record's element count (1<<28 slots ≈ 35
// minutes of air time) so corrupt counts cannot exhaust memory.
const maxElems = 1 << 28

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 10)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(hdr[:4]) != Magic {
		return nil, ErrBadMagic
	}
	if hdr[4] != Version {
		return nil, ErrBadVersion
	}
	tslotNs := binary.LittleEndian.Uint32(hdr[6:])
	return &Reader{r: br, SlotSeconds: float64(tslotNs) * 1e-9}, nil
}

// Next reads the next record, or io.EOF at the end of the capture.
func (r *Reader) Next() (Record, error) {
	kind, err := r.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, err
	}
	switch RecordKind(kind) {
	case KindSlots:
		return r.readSlots()
	case KindSamples:
		return r.readSamples()
	case KindNote:
		return r.readNote()
	default:
		return Record{}, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, kind)
	}
}

func (r *Reader) readCount() (int, error) {
	var n [4]byte
	if _, err := io.ReadFull(r.r, n[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	c := binary.LittleEndian.Uint32(n[:])
	if c > maxElems {
		return 0, fmt.Errorf("%w: count %d too large", ErrCorrupt, c)
	}
	return int(c), nil
}

func (r *Reader) readSlots() (Record, error) {
	count, err := r.readCount()
	if err != nil {
		return Record{}, err
	}
	first, err := r.r.ReadByte()
	if err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	slots := make([]bool, 0, count)
	v := first == 1
	for len(slots) < count {
		run, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Record{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if run == 0 || run > uint64(count-len(slots)) {
			return Record{}, fmt.Errorf("%w: bad run length %d", ErrCorrupt, run)
		}
		for i := uint64(0); i < run; i++ {
			slots = append(slots, v)
		}
		v = !v
	}
	return Record{Kind: KindSlots, Slots: slots}, nil
}

func (r *Reader) readSamples() (Record, error) {
	count, err := r.readCount()
	if err != nil {
		return Record{}, err
	}
	samples := make([]int, 0, count)
	prev := int64(0)
	for len(samples) < count {
		d, err := binary.ReadVarint(r.r)
		if err != nil {
			return Record{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		prev += d
		if prev < 0 || prev > 1<<30 {
			return Record{}, fmt.Errorf("%w: sample %d out of range", ErrCorrupt, prev)
		}
		samples = append(samples, int(prev))
	}
	return Record{Kind: KindSamples, Samples: samples}, nil
}

func (r *Reader) readNote() (Record, error) {
	var n [2]byte
	if _, err := io.ReadFull(r.r, n[:]); err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	buf := make([]byte, binary.LittleEndian.Uint16(n[:]))
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return Record{Kind: KindNote, Note: string(buf)}, nil
}
