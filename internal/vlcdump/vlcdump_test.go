package vlcdump

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestRoundTripAllKinds(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 8e-6)
	if err != nil {
		t.Fatal(err)
	}
	slots := []bool{true, true, false, true, false, false, false}
	samples := []int{10, 12, 9, 300, 0, 4095}
	if err := w.WriteNote("test capture"); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSlots(slots); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSamples(samples); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The header stores nanoseconds, so expect ns-rounded equality.
	if math.Abs(r.SlotSeconds-8e-6) > 1e-9 {
		t.Fatalf("SlotSeconds = %v", r.SlotSeconds)
	}
	rec, err := r.Next()
	if err != nil || rec.Kind != KindNote || rec.Note != "test capture" {
		t.Fatalf("note: %+v %v", rec, err)
	}
	rec, err = r.Next()
	if err != nil || rec.Kind != KindSlots {
		t.Fatalf("slots: %+v %v", rec, err)
	}
	for i := range slots {
		if rec.Slots[i] != slots[i] {
			t.Fatalf("slot %d mismatch", i)
		}
	}
	rec, err = r.Next()
	if err != nil || rec.Kind != KindSamples {
		t.Fatalf("samples: %+v %v", rec, err)
	}
	for i := range samples {
		if rec.Samples[i] != samples[i] {
			t.Fatalf("sample %d mismatch", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nSlots, nSamples uint16) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		slots := make([]bool, nSlots)
		for i := range slots {
			slots[i] = rng.Uint64()%3 == 0
		}
		samples := make([]int, nSamples)
		for i := range samples {
			samples[i] = int(rng.Uint64() % 4096)
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 8e-6)
		if err != nil {
			return false
		}
		if w.WriteSlots(slots) != nil || w.WriteSamples(samples) != nil || w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		rec, err := r.Next()
		if err != nil || len(rec.Slots) != len(slots) {
			return false
		}
		for i := range slots {
			if rec.Slots[i] != slots[i] {
				return false
			}
		}
		rec, err = r.Next()
		if err != nil || len(rec.Samples) != len(samples) {
			return false
		}
		for i := range samples {
			if rec.Samples[i] != samples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCompressionOnRuns(t *testing.T) {
	// A waveform with long runs (compensation fields) compresses far
	// below one bit per slot.
	slots := make([]bool, 100000)
	for i := 50000; i < 100000; i++ {
		slots[i] = true
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 8e-6)
	if err := w.WriteSlots(slots); err != nil {
		t.Fatal(err)
	}
	_ = w.Flush()
	if buf.Len() > 64 {
		t.Fatalf("RLE failed: %d bytes for 100k slots in 2 runs", buf.Len())
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("nope"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("magic: %v", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte("VLCD\x09\x00\x00\x00\x00\x00"))); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("version: %v", err)
	}
	// Unknown record kind.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 8e-6)
	_ = w.Flush()
	buf.WriteByte(99)
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("kind: %v", err)
	}
}

func TestReaderRejectsTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 8e-6)
	_ = w.WriteSlots(make([]bool, 100))
	_ = w.Flush()
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated: %v", err)
	}
}

func TestReaderRejectsHugeCount(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 8e-6)
	_ = w.Flush()
	buf.WriteByte(byte(KindSlots))
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // count = 4 billion
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge count: %v", err)
	}
}

func TestEmptyRecords(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 8e-6)
	_ = w.WriteSlots(nil)
	_ = w.WriteSamples(nil)
	_ = w.Flush()
	r, _ := NewReader(&buf)
	rec, err := r.Next()
	if err != nil || len(rec.Slots) != 0 {
		t.Fatalf("empty slots: %v %v", rec, err)
	}
	rec, err = r.Next()
	if err != nil || len(rec.Samples) != 0 {
		t.Fatalf("empty samples: %v %v", rec, err)
	}
}

// TestGoldenFormat pins the on-disk byte layout so future changes cannot
// silently break captures written by older versions.
func TestGoldenFormat(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 8e-6)
	_ = w.WriteNote("hi")
	_ = w.WriteSlots([]bool{true, true, false})
	_ = w.WriteSamples([]int{7, 5})
	_ = w.Flush()
	want := []byte{
		'V', 'L', 'C', 'D', // magic
		1, 0, // version, reserved
		0x40, 0x1F, 0, 0, // tslot 8000 ns LE
		3, 2, 0, 'h', 'i', // note record
		1, 3, 0, 0, 0, 1, 2, 1, // slots: count=3, first=1, runs 2,1
		2, 2, 0, 0, 0, 14, 3, // samples: count=2, zigzag(+7)=14, zigzag(-2)=3
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("format drift:\n got % x\nwant % x", buf.Bytes(), want)
	}
}
