package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLEDStepRise(t *testing.T) {
	l := LED{RiseSeconds: 2e-6, FallSeconds: 2e-6}
	// After half the rise time from 0, intensity is 0.5.
	got := l.Step(0, 1, 1e-6)
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Step = %v", got)
	}
	// Never overshoots.
	if got := l.Step(0.9, 1, 1e-5); got != 1 {
		t.Fatalf("overshoot: %v", got)
	}
	if got := l.Step(0.3, 0, 1e-6); math.Abs(got-(0.3-0.5)) > 1e-12 && got != 0 {
		t.Fatalf("fall step = %v", got)
	}
	if got := l.Step(0.8, 0, 0.4e-6); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("fall step = %v", got)
	}
}

func TestLEDStepInstantWhenZeroSlew(t *testing.T) {
	l := LED{}
	if l.Step(0, 1, 1e-9) != 1 || l.Step(1, 0, 1e-9) != 0 {
		t.Fatal("zero-slew LED should switch instantly")
	}
	if l.Step(0.5, 1, 0) != 0.5 {
		t.Fatal("zero dt should not move")
	}
}

func TestLEDStepBounded(t *testing.T) {
	l := DefaultLED()
	f := func(curRaw, dtRaw uint16, up bool) bool {
		cur := float64(curRaw) / 65535
		dt := float64(dtRaw) / 65535 * 1e-5
		target := 0.0
		if up {
			target = 1
		}
		next := l.Step(cur, target, dt)
		if next < 0 || next > 1 {
			return false
		}
		// Moves toward target, never past it.
		if up {
			return next >= cur && next <= 1
		}
		return next <= cur && next >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinSlotMatchesPaper(t *testing.T) {
	// The default LED must be consistent with the paper's tslot = 8 µs
	// choice: the minimum supported slot is at most 8 µs, and not absurdly
	// smaller (otherwise the 8 µs bottleneck story wouldn't hold).
	l := DefaultLED()
	min := l.MinSlotSeconds()
	if min > 8e-6 {
		t.Fatalf("MinSlotSeconds %v exceeds the paper's 8 µs", min)
	}
	if min < 2e-6 {
		t.Fatalf("MinSlotSeconds %v implausibly fast for this LED", min)
	}
}

func TestFilterConverges(t *testing.T) {
	f := NewFilter(OPT101())
	// Feed a constant; output converges to it.
	var out float64
	for i := 0; i < 1000; i++ {
		out = f.Step(3.7, 1e-5)
	}
	if math.Abs(out-3.7) > 1e-6 {
		t.Fatalf("filter did not converge: %v", out)
	}
	if f.Output() != out {
		t.Fatal("Output() mismatch")
	}
}

func TestFilterFirstSampleInitializes(t *testing.T) {
	f := NewFilter(OPT101())
	if got := f.Step(5, 1e-6); got != 5 {
		t.Fatalf("first sample = %v", got)
	}
}

func TestFilterSpeedDifference(t *testing.T) {
	// SFH206K must track a step much faster than OPT101 — the reason the
	// paper uses different photodiodes at the two ends.
	fast := NewFilter(SFH206K())
	slow := NewFilter(OPT101())
	fast.Step(0, 1e-6)
	slow.Step(0, 1e-6)
	dt := 2e-6 // one RX sample period
	f := fast.Step(1, dt)
	s := slow.Step(1, dt)
	if f < 0.99 {
		t.Fatalf("SFH206K too slow: %v after one sample", f)
	}
	if s > 0.05 {
		t.Fatalf("OPT101 too fast: %v after one sample", s)
	}
}

func TestADCQuantize(t *testing.T) {
	a := DefaultADC()
	if a.Quantize(-5) != 0 {
		t.Fatal("negative count")
	}
	if a.Quantize(100) != 100 {
		t.Fatal("in-range count altered")
	}
	if a.Quantize(10000) != 4095 {
		t.Fatal("saturation")
	}
	unbounded := ADC{SampleRateHz: 1, MaxCode: 0}
	if unbounded.Quantize(10000) != 10000 {
		t.Fatal("MaxCode=0 should disable saturation")
	}
}

func TestClockDrift(t *testing.T) {
	c := Clock{NominalHz: 500e3, OffsetPPM: 25}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.EffectiveHz(); math.Abs(got-500e3*1.000025) > 1e-6 {
		t.Fatalf("EffectiveHz = %v", got)
	}
	// Drift accumulates to one slot (8 µs) in 1/(125k*25e-6) slot times.
	period := c.TickSeconds()
	nominal := 1 / 500e3
	driftPerTick := math.Abs(period - nominal)
	ticksPerSlotSlip := nominal / driftPerTick / 4 // 4 ticks per slot
	if ticksPerSlotSlip < 5000 || ticksPerSlotSlip > 50000 {
		t.Fatalf("slip after %v slots, expected ~10k (per-frame resync is enough)", ticksPerSlotSlip)
	}
	bad := Clock{NominalHz: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero clock accepted")
	}
	if !math.IsInf(bad.TickSeconds(), 1) {
		t.Fatal("zero clock period should be +Inf")
	}
}
