// Package hw models the prototype hardware of the SmartVLC paper: the
// Philips LED's finite switching speed, the two photodiode front-ends
// (TI OPT101 at the transmitter for ambient sensing, OSRAM SFH206K at the
// receiver for data), the ADS7883 ADC, and the BeagleBone Black PRU clock
// domains whose independent oscillators drift relative to each other.
//
// These models are what make the simulation exercise the same failure
// modes as the paper's testbed: the LED slew bounds tslot at 8 µs, the
// PRU drift is why the receiver oversamples 4× and re-syncs on every
// frame, and the OPT101's slow response low-passes the ambient readings
// that drive dimming adaptation.
package hw

import (
	"fmt"
	"math"
)

// LED models the luminaire's electro-optical switching behaviour: the
// emitted intensity slews linearly between 0 and 1 with finite rise and
// fall times. The paper removed the lamp's AC-DC converter precisely
// because it slowed these transitions; the residual LED+driver slew is
// what limits tslot to 8 µs.
type LED struct {
	// RiseSeconds and FallSeconds are the 0→1 and 1→0 transition times.
	RiseSeconds float64
	FallSeconds float64
}

// DefaultLED returns the disassembled Philips 4.7 W lamp driven by the
// 20N06L MOSFET: ~2 µs transitions, i.e. a quarter of the 8 µs slot.
func DefaultLED() LED {
	return LED{RiseSeconds: 2e-6, FallSeconds: 2e-6}
}

// Step advances the emitted intensity from cur toward target (0 or 1) over
// dt seconds and returns the new intensity.
func (l LED) Step(cur, target, dt float64) float64 {
	if dt <= 0 {
		return cur
	}
	if target > cur {
		if l.RiseSeconds <= 0 {
			return target
		}
		next := cur + dt/l.RiseSeconds
		return math.Min(next, target)
	}
	if l.FallSeconds <= 0 {
		return target
	}
	next := cur - dt/l.FallSeconds
	return math.Max(next, target)
}

// MinSlotSeconds returns the shortest slot that still reaches at least
// 90 % of the target intensity swing within the slot, the criterion the
// paper used when settling on tslot = 8 µs ("the minimal time slot the LED
// supports, under which the transmitted signals are not distorted too
// much").
func (l LED) MinSlotSeconds() float64 {
	worst := math.Max(l.RiseSeconds, l.FallSeconds)
	return worst / 0.9 * 2
}

// Photodiode is a first-order front-end: a responsivity-normalized sensor
// whose output follows the input with time constant TauSeconds.
type Photodiode struct {
	// Name identifies the part.
	Name string
	// TauSeconds is the first-order response time constant.
	TauSeconds float64
}

// OPT101 is the transmitter-side ambient sensor: high sensitivity but slow
// (the paper uses it only for ambient light, not data).
func OPT101() Photodiode { return Photodiode{Name: "OPT101", TauSeconds: 7e-6 * 20} }

// SFH206K is the receiver-side data photodiode: fast enough that its
// response is negligible at the 2 µs sample period.
func SFH206K() Photodiode { return Photodiode{Name: "SFH206K", TauSeconds: 20e-9} }

// Filter is a running first-order low-pass for the photodiode.
type Filter struct {
	pd  Photodiode
	out float64
	set bool
}

// NewFilter returns a filter for the photodiode.
func NewFilter(pd Photodiode) *Filter { return &Filter{pd: pd} }

// Reset returns the filter to its just-constructed state for the given
// photodiode, so a reusable arena can rent the same Filter across
// sessions without retaining state from the previous one.
func (f *Filter) Reset(pd Photodiode) {
	f.pd = pd
	f.out, f.set = 0, false
}

// Step feeds an input sample observed for dt seconds and returns the
// filtered output.
func (f *Filter) Step(in, dt float64) float64 {
	if !f.set {
		f.out, f.set = in, true
		return f.out
	}
	if f.pd.TauSeconds <= 0 {
		f.out = in
		return f.out
	}
	alpha := 1 - math.Exp(-dt/f.pd.TauSeconds)
	f.out += alpha * (in - f.out)
	return f.out
}

// Output returns the current filter output.
func (f *Filter) Output() float64 { return f.out }

// ADC models the ADS7883: a saturating quantizer sampling photon counts.
type ADC struct {
	// SampleRateHz is the conversion rate; the ADS7883 supports up to
	// 3 MHz, the paper samples at 500 kHz (4× the slot rate).
	SampleRateHz float64
	// MaxCode is the saturation count (12-bit converter → 4095).
	MaxCode int
}

// DefaultADC returns the paper's receiver configuration.
func DefaultADC() ADC { return ADC{SampleRateHz: 500e3, MaxCode: 4095} }

// Quantize clamps a photon count to the converter range.
func (a ADC) Quantize(count int) int {
	if count < 0 {
		return 0
	}
	if a.MaxCode > 0 && count > a.MaxCode {
		return a.MaxCode
	}
	return count
}

// QuantizeAll clamps a whole column of photon counts in place — the
// batched transmit pipeline quantizes its sample column in one pass
// instead of a call per sample.
func (a ADC) QuantizeAll(counts []int) {
	max := a.MaxCode
	for i, c := range counts {
		if c < 0 {
			counts[i] = 0
		} else if max > 0 && c > max {
			counts[i] = max
		}
	}
}

// Clock is a PRU timebase: a nominal rate plus a fixed fractional error.
// The transmitter's and receiver's PRUs run from independent oscillators
// ("they could be hardly perfectly synchronized due to the hardware
// artifact"), so slot timing drifts across long frames unless the
// receiver re-synchronizes.
type Clock struct {
	// NominalHz is the intended tick rate.
	NominalHz float64
	// OffsetPPM is the oscillator error in parts per million; BBB PRU
	// crystals are specified around ±25 ppm.
	OffsetPPM float64
}

// EffectiveHz returns the true tick rate.
func (c Clock) EffectiveHz() float64 {
	return c.NominalHz * (1 + c.OffsetPPM*1e-6)
}

// TickSeconds returns the true tick period.
func (c Clock) TickSeconds() float64 {
	hz := c.EffectiveHz()
	if hz <= 0 {
		return math.Inf(1)
	}
	return 1 / hz
}

// Validate rejects non-physical clocks.
func (c Clock) Validate() error {
	if c.EffectiveHz() <= 0 {
		return fmt.Errorf("hw: clock rate %v Hz not positive", c.EffectiveHz())
	}
	return nil
}
