package optics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReceivedPowerInverseSquare(t *testing.T) {
	e, r := DefaultEmitter(), DefaultReceiver()
	p1 := ReceivedPower(e, r, Aligned(1, 0))
	p2 := ReceivedPower(e, r, Aligned(2, 0))
	if math.Abs(p1/p2-4) > 1e-9 {
		t.Fatalf("inverse square violated: %v", p1/p2)
	}
}

func TestReceivedPowerOnAxisFormula(t *testing.T) {
	e := Emitter{PowerWatts: 1, LambertianOrder: 1}
	r := Receiver{AreaM2: 1e-4, FoVDeg: 90}
	got := ReceivedPower(e, r, Aligned(2, 0))
	want := 1.0 * 2 / (2 * math.Pi * 4) * 1e-4
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("ReceivedPower = %v want %v", got, want)
	}
}

func TestReceivedPowerAngleRolloff(t *testing.T) {
	e, r := DefaultEmitter(), DefaultReceiver()
	prev := math.Inf(1)
	for _, a := range []float64{0, 4, 8, 12, 16, 20} {
		p := ReceivedPower(e, r, Aligned(2, a))
		if p >= prev {
			t.Fatalf("power not decreasing with angle at %v°", a)
		}
		prev = p
	}
	// Half-power semi-angle for m=30 is about 12.2°; the emission term
	// cos^m alone should halve there.
	hp := HalfPowerSemiAngleDeg(30)
	if math.Abs(hp-12.23) > 0.1 {
		t.Fatalf("half power angle = %v", hp)
	}
}

func TestFieldOfViewCutoff(t *testing.T) {
	e := DefaultEmitter()
	r := Receiver{AreaM2: 1e-6, FoVDeg: 30}
	if p := ReceivedPower(e, r, Aligned(1, 31)); p != 0 {
		t.Fatalf("outside FoV power = %v", p)
	}
	if p := ReceivedPower(e, r, Aligned(1, 29)); p <= 0 {
		t.Fatalf("inside FoV power = %v", p)
	}
}

func TestDegenerateGeometry(t *testing.T) {
	e, r := DefaultEmitter(), DefaultReceiver()
	if p := ReceivedPower(e, r, Geometry{DistanceM: 0}); p != 0 {
		t.Fatal("zero distance should give zero power")
	}
	if p := ReceivedPower(e, r, Geometry{DistanceM: 1, IrradianceDeg: 95}); p != 0 {
		t.Fatal("behind the LED should give zero power")
	}
	if err := (Geometry{DistanceM: 0}).Validate(); err == nil {
		t.Fatal("Validate should reject zero distance")
	}
	if err := Aligned(1, 0).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLambertianOrderRoundTrip(t *testing.T) {
	f := func(raw uint8) bool {
		hp := 5 + float64(raw)/255*60 // 5..65 degrees
		m := LambertianOrderFor(hp)
		back := HalfPowerSemiAngleDeg(m)
		return math.Abs(back-hp) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerNonNegativeProperty(t *testing.T) {
	e, r := DefaultEmitter(), DefaultReceiver()
	f := func(dRaw, aRaw uint16) bool {
		d := float64(dRaw)/1000 + 0.01
		a := float64(aRaw) / 65535 * 180
		p := ReceivedPower(e, r, Aligned(d, a))
		return p >= 0 && !math.IsNaN(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
