// Package optics models free-space propagation between the LED luminaire
// and the photodiode with the generalized Lambertian model standard in VLC
// (Komine & Nakagawa 2004, the paper's reference [18]):
//
//	Pr = Pt · (m+1)/(2π·d²) · cos^m(φ) · A · cos(ψ),   ψ ≤ ψ_FoV
//
// where m is the Lambertian order of the LED, φ the irradiance angle at the
// LED, ψ the incidence angle at the receiver, d the distance and A the
// photodiode's effective collection area. This package substitutes for the
// paper's physical 3.6 m office link; the constants in DefaultLink are
// calibrated so the decode cliff sits at the paper's 3.6 m.
package optics

import (
	"fmt"
	"math"
)

// Emitter describes the LED as an optical source.
type Emitter struct {
	// PowerWatts is the radiated optical power while the LED is ON.
	// The paper drives a Philips 4.7 W luminaire; roughly a third of the
	// electrical power leaves as light.
	PowerWatts float64
	// LambertianOrder is m = −ln 2 / ln cos(Φ½) where Φ½ is the half-power
	// semi-angle. The paper's luminaire with its optics is fairly
	// directional; m = 30 (Φ½ ≈ 12°) reproduces the angle cut-offs of
	// paper Fig. 17.
	LambertianOrder float64
}

// Receiver describes the photodiode front-end geometry.
type Receiver struct {
	// AreaM2 is the effective collection area in m² (photodiode area times
	// any concentrator gain).
	AreaM2 float64
	// FoVDeg is the half-angle field of view; light beyond it contributes
	// nothing.
	FoVDeg float64
}

// Geometry is the pose of the receiver relative to the emitter.
type Geometry struct {
	// DistanceM is the line-of-sight distance in meters.
	DistanceM float64
	// IrradianceDeg is φ, the angle between the LED beam axis and the
	// receiver direction.
	IrradianceDeg float64
	// IncidenceDeg is ψ, the angle between the photodiode normal and the
	// incoming ray.
	IncidenceDeg float64
}

// Aligned returns the on-axis geometry at distance d, with both tilt
// angles equal to angleDeg — the paper's Fig. 17 setup, where the receiver
// is swept on an arc of constant distance so the irradiance and incidence
// angles move together.
func Aligned(d, angleDeg float64) Geometry {
	return Geometry{DistanceM: d, IrradianceDeg: angleDeg, IncidenceDeg: angleDeg}
}

// Validate reports obviously broken parameters.
func (g Geometry) Validate() error {
	if g.DistanceM <= 0 {
		return fmt.Errorf("optics: distance %v must be positive", g.DistanceM)
	}
	return nil
}

// ReceivedPower returns the optical power (W) collected by the photodiode.
// It is zero outside the receiver's field of view or beyond 90° irradiance.
func ReceivedPower(e Emitter, r Receiver, g Geometry) float64 {
	if g.DistanceM <= 0 {
		return 0
	}
	phi := g.IrradianceDeg * math.Pi / 180
	psi := g.IncidenceDeg * math.Pi / 180
	if math.Abs(g.IncidenceDeg) > r.FoVDeg {
		return 0
	}
	cphi, cpsi := math.Cos(phi), math.Cos(psi)
	if cphi <= 0 || cpsi <= 0 {
		return 0
	}
	m := e.LambertianOrder
	gain := (m + 1) / (2 * math.Pi * g.DistanceM * g.DistanceM)
	return e.PowerWatts * gain * math.Pow(cphi, m) * r.AreaM2 * cpsi
}

// HalfPowerSemiAngleDeg returns Φ½ for a Lambertian order m.
func HalfPowerSemiAngleDeg(m float64) float64 {
	return math.Acos(math.Pow(2, -1/m)) * 180 / math.Pi
}

// LambertianOrderFor returns m for a half-power semi-angle in degrees.
func LambertianOrderFor(halfPowerDeg float64) float64 {
	return -math.Ln2 / math.Log(math.Cos(halfPowerDeg*math.Pi/180))
}

// DefaultEmitter and DefaultReceiver reproduce the paper's prototype:
// a directional Philips luminaire and an OSRAM SFH206K photodiode
// (7.02 mm² active area) behind a simple aperture.
func DefaultEmitter() Emitter {
	return Emitter{PowerWatts: 1.6, LambertianOrder: 30}
}

// DefaultReceiver returns the SFH206K-like receiver front-end.
func DefaultReceiver() Receiver {
	return Receiver{AreaM2: 7.02e-6, FoVDeg: 60}
}
