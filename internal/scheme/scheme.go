// Package scheme adapts the four modulation schemes (AMPPM and the
// baselines OOK-CT, fixed-N MPPM, VPPM) to the frame layer's PayloadCodec
// interface, so the same framer, PHY and MAC run any of them — exactly the
// comparison setup of the paper's evaluation (§6.2).
//
// A Scheme picks a transmitter-side codec for a target dimming level and
// provides the factory that rebuilds the matching receiver-side codec from
// the 4-byte Pattern field of the frame header.
package scheme

import (
	"fmt"

	"smartvlc/internal/frame"
)

// Scheme is one dimmable modulation scheme.
type Scheme interface {
	// Name returns the scheme's evaluation label ("AMPPM", "OOK-CT", ...).
	Name() string
	// CodecFor returns the payload codec to use at a target dimming level.
	// The codec's Level() reports the exactly achieved level, which may
	// differ from the target by the scheme's dimming resolution.
	CodecFor(level float64) (frame.PayloadCodec, error)
	// Factory rebuilds a receiver codec from a frame's Pattern field.
	Factory() frame.CodecFactory
	// LevelRange returns the dimming levels the scheme supports.
	LevelRange() (lo, hi float64)
}

// ErrLevelUnsupported reports a requested dimming level outside a
// scheme's range.
var ErrLevelUnsupported = fmt.Errorf("scheme: dimming level unsupported")
