package scheme

import (
	"fmt"

	"smartvlc/internal/frame"
	"smartvlc/internal/vppm"
)

// VPPM is the IEEE 802.15.7 baseline: binary PPM with dimming in the
// pulse width. One bit per symbol makes it strictly slower than MPPM
// (paper footnote 5), so the paper compares against it only analytically;
// it is included here for the ablation benches.
type VPPM struct {
	// SymbolSlots is the symbol length in slots.
	SymbolSlots int
}

// NewVPPM returns the baseline with the default symbol length.
func NewVPPM() *VPPM { return &VPPM{SymbolSlots: vppm.DefaultSymbolSlots} }

// Name implements Scheme.
func (v *VPPM) Name() string { return "VPPM" }

// LevelRange implements Scheme.
func (v *VPPM) LevelRange() (float64, float64) {
	n := float64(v.SymbolSlots)
	return 1 / n, (n - 1) / n
}

// CodecFor implements Scheme.
func (v *VPPM) CodecFor(level float64) (frame.PayloadCodec, error) {
	c, err := vppm.NewCodec(v.SymbolSlots, level)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrLevelUnsupported, err)
	}
	return v.wrap(c)
}

func (v *VPPM) wrap(c *vppm.Codec) (frame.PayloadCodec, error) {
	if c.SymbolSlots() > 255 || c.PulseWidth() > 255 {
		return nil, fmt.Errorf("scheme: VPPM symbol %d too long for descriptor", c.SymbolSlots())
	}
	var d [frame.PatternBytes]byte
	d[0], d[1] = byte(c.SymbolSlots()), byte(c.PulseWidth())
	return &vppmCodec{c: c, desc: d}, nil
}

// Factory implements Scheme.
func (v *VPPM) Factory() frame.CodecFactory {
	return func(d [frame.PatternBytes]byte) (frame.PayloadCodec, error) {
		n, w := int(d[0]), int(d[1])
		if n != v.SymbolSlots || w < 1 || w >= n || d[2] != 0 || d[3] != 0 {
			return nil, fmt.Errorf("scheme: invalid VPPM descriptor %v", d)
		}
		c, err := vppm.NewCodec(n, float64(w)/float64(n))
		if err != nil {
			return nil, err
		}
		return v.wrap(c)
	}
}

type vppmCodec struct {
	c    *vppm.Codec
	desc [frame.PatternBytes]byte
}

func (c *vppmCodec) Level() float64 { return c.c.DimmingLevel() }

func (c *vppmCodec) Descriptor() [frame.PatternBytes]byte { return c.desc }

func (c *vppmCodec) PayloadSlots(nbytes int) int {
	return nbytes * 8 * c.c.SymbolSlots()
}

func (c *vppmCodec) AppendPayload(dst []bool, data []byte) ([]bool, error) {
	return c.c.AppendBits(dst, data, len(data)*8)
}

func (c *vppmCodec) DecodePayload(slots []bool, nbytes int) ([]byte, int, error) {
	out, err := c.c.DecodeBits(slots, nbytes*8)
	return out, 0, err
}
