package scheme

import (
	"fmt"
	"math"

	"smartvlc/internal/amppm"
	"smartvlc/internal/frame"
	"smartvlc/internal/mppm"
)

// MPPM is the compensation-free baseline of the paper (§2.1): a fixed
// symbol length N for all dimming levels, so only the N−1 levels K/N are
// reachable. The paper's evaluation uses N = 20, chosen so the symbol
// error rate stays below the bound.
type MPPM struct {
	// N is the fixed symbol length in slots.
	N int
}

// NewMPPM returns the baseline with the paper's N.
func NewMPPM(n int) (*MPPM, error) {
	if n < 2 || n > mppm.MaxStreamN {
		return nil, fmt.Errorf("scheme: MPPM N=%d outside [2, %d]", n, mppm.MaxStreamN)
	}
	return &MPPM{N: n}, nil
}

// Name implements Scheme.
func (m *MPPM) Name() string { return "MPPM" }

// LevelRange implements Scheme.
func (m *MPPM) LevelRange() (float64, float64) {
	return 1 / float64(m.N), float64(m.N-1) / float64(m.N)
}

// CodecFor implements Scheme. The target level is rounded to the nearest
// supported K/N — the coarse step-wise dimming that motivates AMPPM.
func (m *MPPM) CodecFor(level float64) (frame.PayloadCodec, error) {
	k := int(math.Round(level * float64(m.N)))
	if k < 1 {
		k = 1
	}
	if k > m.N-1 {
		k = m.N - 1
	}
	return m.codec(k)
}

func (m *MPPM) codec(k int) (frame.PayloadCodec, error) {
	sc, err := amppm.NewSuperCodec(amppm.SuperSymbol{S1: mppm.Pattern{N: m.N, K: k}, M1: 1})
	if err != nil {
		return nil, err
	}
	if sc.BitsPerSuper() == 0 {
		return nil, fmt.Errorf("%w: S(%d,%d) carries no data", ErrLevelUnsupported, m.N, k)
	}
	var d [frame.PatternBytes]byte
	d[0], d[1] = byte(m.N), byte(k)
	return &amppmCodec{sc: sc, desc: d}, nil
}

// Factory implements Scheme.
func (m *MPPM) Factory() frame.CodecFactory {
	return func(d [frame.PatternBytes]byte) (frame.PayloadCodec, error) {
		n, k := int(d[0]), int(d[1])
		if n != m.N || k < 1 || k >= n || d[2] != 0 || d[3] != 0 {
			return nil, fmt.Errorf("scheme: invalid MPPM descriptor %v", d)
		}
		return m.codec(k)
	}
}
