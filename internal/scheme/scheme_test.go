package scheme

import (
	"bytes"
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"smartvlc/internal/amppm"
	"smartvlc/internal/frame"
)

func allSchemes(t *testing.T) []Scheme {
	t.Helper()
	a, err := NewAMPPM(amppm.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMPPM(20)
	if err != nil {
		t.Fatal(err)
	}
	return []Scheme{a, m, NewOOKCT(), NewVPPM()}
}

func TestSchemesFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 12))
	for _, s := range allSchemes(t) {
		for _, level := range []float64{0.1, 0.15, 0.3, 0.5, 0.7, 0.9} {
			codec, err := s.CodecFor(level)
			if err != nil {
				t.Fatalf("%s CodecFor(%v): %v", s.Name(), level, err)
			}
			payload := make([]byte, 128)
			for i := range payload {
				payload[i] = byte(rng.Uint64())
			}
			slots, err := frame.Build(codec, payload)
			if err != nil {
				t.Fatalf("%s level %v: Build: %v", s.Name(), level, err)
			}
			res, err := frame.Parse(slots, s.Factory())
			if err != nil {
				t.Fatalf("%s level %v: Parse: %v", s.Name(), level, err)
			}
			if !bytes.Equal(res.Payload, payload) {
				t.Fatalf("%s level %v: payload mismatch", s.Name(), level)
			}
			if res.SlotsConsumed != len(slots) {
				t.Fatalf("%s level %v: consumed %d of %d", s.Name(), level, res.SlotsConsumed, len(slots))
			}
		}
	}
}

func TestSchemesAchievedLevelAccuracy(t *testing.T) {
	for _, s := range allSchemes(t) {
		lo, hi := s.LevelRange()
		if lo >= hi {
			t.Fatalf("%s: bad level range [%v, %v]", s.Name(), lo, hi)
		}
		worst := 0.0
		for _, level := range []float64{0.1, 0.18, 0.33, 0.5, 0.62, 0.9} {
			codec, err := s.CodecFor(level)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if e := math.Abs(codec.Level() - level); e > worst {
				worst = e
			}
		}
		// AMPPM and OOK-CT achieve fine resolution; MPPM N=20 and VPPM
		// N=10 are limited by 1/(2N).
		var bound float64
		switch s.Name() {
		case "AMPPM":
			bound = 0.004
		case "OOK-CT":
			bound = 0.0001
		case "MPPM":
			bound = 0.025
		case "VPPM":
			bound = 0.05
		}
		if worst > bound {
			t.Errorf("%s: worst level error %v exceeds %v", s.Name(), worst, bound)
		}
	}
}

func TestSchemeWaveformDutyMatchesLevel(t *testing.T) {
	// The slot waveform of a whole frame must average to the codec's
	// level closely — that is the illumination contract.
	rng := rand.New(rand.NewPCG(9, 9))
	for _, s := range allSchemes(t) {
		for _, level := range []float64{0.2, 0.5, 0.8} {
			codec, err := s.CodecFor(level)
			if err != nil {
				t.Fatal(err)
			}
			payload := make([]byte, 256)
			for i := range payload {
				payload[i] = byte(rng.Uint64())
			}
			slots, err := frame.Build(codec, payload)
			if err != nil {
				t.Fatal(err)
			}
			on := 0
			for _, sl := range slots {
				if sl {
					on++
				}
			}
			duty := float64(on) / float64(len(slots))
			// OOK-CT's data portion depends on payload content, so allow
			// a looser band there.
			tol := 0.01
			if s.Name() == "OOK-CT" {
				tol = 0.03
			}
			if math.Abs(duty-codec.Level()) > tol {
				t.Errorf("%s level %v: frame duty %v vs codec level %v", s.Name(), level, duty, codec.Level())
			}
		}
	}
}

func TestAMPPMOutperformsBaselinesInSlots(t *testing.T) {
	// Fewer slots per frame = higher throughput. At the extreme dimming
	// levels AMPPM must beat both baselines (paper Fig. 15); near 0.5
	// OOK-CT may win slightly.
	schemes := allSchemes(t)
	a, m, o := schemes[0], schemes[1], schemes[2]
	slotsFor := func(s Scheme, level float64) int {
		c, err := s.CodecFor(level)
		if err != nil {
			t.Fatal(err)
		}
		return frame.Slots(c, 128)
	}
	for _, level := range []float64{0.1, 0.9} {
		sa, sm, so := slotsFor(a, level), slotsFor(m, level), slotsFor(o, level)
		if sa >= sm {
			t.Errorf("level %v: AMPPM %d slots vs MPPM %d", level, sa, sm)
		}
		if sa >= so {
			t.Errorf("level %v: AMPPM %d slots vs OOK-CT %d", level, sa, so)
		}
	}
	// Near 0.5, OOK-CT's almost-zero overhead wins (paper's observation).
	if slotsFor(o, 0.5) >= slotsFor(a, 0.5) {
		t.Errorf("level 0.5: OOK-CT should be at least as compact")
	}
}

func TestFactoriesRejectGarbageDescriptors(t *testing.T) {
	for _, s := range allSchemes(t) {
		if _, err := s.Factory()([frame.PatternBytes]byte{0xFF, 0xFF, 0xFF, 0xFF}); err == nil {
			t.Errorf("%s: garbage descriptor accepted", s.Name())
		}
	}
}

func TestCodecForOutOfRange(t *testing.T) {
	a, _ := NewAMPPM(amppm.DefaultConstraints())
	if _, err := a.CodecFor(-0.2); !errors.Is(err, ErrLevelUnsupported) {
		t.Fatalf("err = %v", err)
	}
	o := NewOOKCT()
	if _, err := o.CodecFor(0); !errors.Is(err, ErrLevelUnsupported) {
		t.Fatalf("err = %v", err)
	}
	v := NewVPPM()
	if _, err := v.CodecFor(0.01); !errors.Is(err, ErrLevelUnsupported) {
		t.Fatalf("err = %v", err)
	}
}

func TestNewMPPMValidation(t *testing.T) {
	if _, err := NewMPPM(1); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := NewMPPM(200); err == nil {
		t.Fatal("N=200 accepted")
	}
}

func TestMPPMQuantizesToGrid(t *testing.T) {
	m, _ := NewMPPM(20)
	c, err := m.CodecFor(0.13)
	if err != nil {
		t.Fatal(err)
	}
	// 0.13 * 20 = 2.6 -> K=3 -> level 0.15.
	if math.Abs(c.Level()-0.15) > 1e-12 {
		t.Fatalf("level %v", c.Level())
	}
	// Extreme targets clamp to K=1 / K=N-1.
	c, _ = m.CodecFor(0.001)
	if math.Abs(c.Level()-0.05) > 1e-12 {
		t.Fatalf("clamped level %v", c.Level())
	}
}

func TestDescriptorRoundTripAllSchemes(t *testing.T) {
	for _, s := range allSchemes(t) {
		c, err := s.CodecFor(0.37)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := s.Factory()(c.Descriptor())
		if err != nil {
			t.Fatalf("%s: factory: %v", s.Name(), err)
		}
		if c2.Level() != c.Level() {
			t.Fatalf("%s: levels differ after descriptor round trip: %v vs %v", s.Name(), c2.Level(), c.Level())
		}
		if c2.PayloadSlots(130) != c.PayloadSlots(130) {
			t.Fatalf("%s: payload slots differ", s.Name())
		}
	}
}

func TestOPPMScheme(t *testing.T) {
	o, err := NewOPPM(20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOPPM(2); err == nil {
		t.Fatal("N=2 accepted")
	}
	codec, err := o.CodecFor(0.3)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("overlapping ppm baseline frame")
	slots, err := frame.Build(codec, payload)
	if err != nil {
		t.Fatal(err)
	}
	res, err := frame.Parse(slots, o.Factory())
	if err != nil || !bytes.Equal(res.Payload, payload) {
		t.Fatalf("round trip: %v", err)
	}
	// Descriptor round trip.
	c2, err := o.Factory()(codec.Descriptor())
	if err != nil || c2.Level() != codec.Level() {
		t.Fatalf("descriptor: %v", err)
	}
	if _, err := o.Factory()([frame.PatternBytes]byte{99, 1, 0, 0}); err == nil {
		t.Fatal("foreign descriptor accepted")
	}
}

// TestSchemeRateOrdering pins the rate hierarchy the paper's related-work
// discussion implies at l = 0.5: AMPPM ≥ MPPM > OPPM > VPPM.
func TestSchemeRateOrdering(t *testing.T) {
	a, err := NewAMPPM(amppm.DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewMPPM(20)
	o, _ := NewOPPM(20)
	v := NewVPPM()
	slotsFor := func(s Scheme) int {
		c, err := s.CodecFor(0.5)
		if err != nil {
			t.Fatal(err)
		}
		return c.PayloadSlots(130)
	}
	sa, sm, so, sv := slotsFor(a), slotsFor(m), slotsFor(o), slotsFor(v)
	if !(sa <= sm && sm < so && so < sv) {
		t.Fatalf("slot costs: AMPPM=%d MPPM=%d OPPM=%d VPPM=%d", sa, sm, so, sv)
	}
}
