package scheme

import (
	"fmt"

	"smartvlc/internal/amppm"
	"smartvlc/internal/bitio"
	"smartvlc/internal/frame"
)

// AMPPM is the paper's scheme: adaptive super-symbols selected from the
// throughput envelope.
type AMPPM struct {
	table *amppm.Table
}

// NewAMPPM builds the scheme from link constraints (both sides must use
// identical constraints so their envelope vertex tables agree).
func NewAMPPM(cons amppm.Constraints) (*AMPPM, error) {
	t, err := amppm.NewTable(cons)
	if err != nil {
		return nil, err
	}
	return &AMPPM{table: t}, nil
}

// Table exposes the planning table (for inspection tools and experiments).
func (a *AMPPM) Table() *amppm.Table { return a.table }

// Name implements Scheme.
func (a *AMPPM) Name() string { return "AMPPM" }

// LevelRange implements Scheme.
func (a *AMPPM) LevelRange() (float64, float64) { return a.table.LevelRange() }

// CodecFor implements Scheme.
func (a *AMPPM) CodecFor(level float64) (frame.PayloadCodec, error) {
	s, err := a.table.Select(level)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrLevelUnsupported, err)
	}
	return a.codecForSuper(s)
}

func (a *AMPPM) codecForSuper(s amppm.SuperSymbol) (frame.PayloadCodec, error) {
	sc, err := amppm.NewSuperCodec(s)
	if err != nil {
		return nil, err
	}
	if sc.BitsPerSuper() == 0 {
		return nil, fmt.Errorf("%w: super-symbol %v carries no data", ErrLevelUnsupported, s)
	}
	desc, err := a.table.Descriptor(s)
	if err != nil {
		return nil, err
	}
	return &amppmCodec{sc: sc, desc: desc}, nil
}

// Factory implements Scheme.
func (a *AMPPM) Factory() frame.CodecFactory {
	return func(d [frame.PatternBytes]byte) (frame.PayloadCodec, error) {
		s, err := a.table.ParseDescriptor(d)
		if err != nil {
			return nil, err
		}
		return a.codecForSuper(s)
	}
}

type amppmCodec struct {
	sc   *amppm.SuperCodec
	desc [frame.PatternBytes]byte
}

func (c *amppmCodec) Level() float64 { return c.sc.Super().Level() }

func (c *amppmCodec) Descriptor() [frame.PatternBytes]byte { return c.desc }

func (c *amppmCodec) PayloadSlots(nbytes int) int {
	return c.sc.SlotsForBits(nbytes * 8)
}

func (c *amppmCodec) AppendPayload(dst []bool, data []byte) ([]bool, error) {
	return c.sc.AppendStream(dst, bitio.NewReader(data))
}

func (c *amppmCodec) DecodePayload(slots []bool, nbytes int) ([]byte, int, error) {
	w := bitio.NewWriter()
	symErrs, err := c.sc.DecodeBits(slots, nbytes*8, w)
	if err != nil {
		return nil, symErrs, err
	}
	out := w.Bytes()
	if len(out) < nbytes {
		return nil, symErrs, fmt.Errorf("scheme: amppm decoded %d bytes, need %d", len(out), nbytes)
	}
	return out[:nbytes], symErrs, nil
}
