package scheme

import (
	"fmt"
	"sync"
	"sync/atomic"

	"smartvlc/internal/amppm"
	"smartvlc/internal/bitio"
	"smartvlc/internal/frame"
	"smartvlc/internal/telemetry"
)

// Codec-cache efficiency counters on the process-global registry, summed
// over all AMPPM instances (per-instance numbers come from CacheStats).
var (
	codecCacheHits   = telemetry.Global().Counter("scheme_codec_cache_total", "result", "hit")
	codecCacheMisses = telemetry.Global().Counter("scheme_codec_cache_total", "result", "miss")
)

// maxCodecCache bounds each of the AMPPM codec caches. Genuine traffic
// touches a few dozen levels and descriptors; the caps only matter when
// channel corruption synthesizes many distinct-but-valid descriptors, in
// which case extra codecs are simply built uncached.
const maxCodecCache = 1 << 12

// AMPPM is the paper's scheme: adaptive super-symbols selected from the
// throughput envelope.
//
// An AMPPM is safe for concurrent use: the planning table is immutable
// and the codec caches are lock-protected. Codecs themselves are
// stateless after construction and may be shared freely.
type AMPPM struct {
	table *amppm.Table

	mu      sync.RWMutex
	byLevel map[float64]frame.PayloadCodec
	byDesc  map[[frame.PatternBytes]byte]frame.PayloadCodec

	cacheHits, cacheMisses atomic.Int64
}

// CodecCacheStats reports this instance's cumulative codec-cache hit and
// miss counts, across both the per-level (CodecFor) and per-descriptor
// (Factory) caches.
func (a *AMPPM) CodecCacheStats() (hits, misses int64) {
	return a.cacheHits.Load(), a.cacheMisses.Load()
}

func (a *AMPPM) onCacheHit() {
	a.cacheHits.Add(1)
	codecCacheHits.Inc()
}

func (a *AMPPM) onCacheMiss() {
	a.cacheMisses.Add(1)
	codecCacheMisses.Inc()
}

// NewAMPPM builds the scheme from link constraints (both sides must use
// identical constraints so their envelope vertex tables agree).
func NewAMPPM(cons amppm.Constraints) (*AMPPM, error) {
	t, err := amppm.NewTable(cons)
	if err != nil {
		return nil, err
	}
	return &AMPPM{
		table:   t,
		byLevel: map[float64]frame.PayloadCodec{},
		byDesc:  map[[frame.PatternBytes]byte]frame.PayloadCodec{},
	}, nil
}

// Table exposes the planning table (for inspection tools and experiments).
func (a *AMPPM) Table() *amppm.Table { return a.table }

// Name implements Scheme.
func (a *AMPPM) Name() string { return "AMPPM" }

// LevelRange implements Scheme.
func (a *AMPPM) LevelRange() (float64, float64) { return a.table.LevelRange() }

// CodecFor implements Scheme. Codecs are memoized per dimming level, so
// the per-frame lookup the session loop performs is a map hit.
func (a *AMPPM) CodecFor(level float64) (frame.PayloadCodec, error) {
	a.mu.RLock()
	c, ok := a.byLevel[level]
	a.mu.RUnlock()
	if ok {
		a.onCacheHit()
		return c, nil
	}
	a.onCacheMiss()
	s, err := a.table.Select(level)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrLevelUnsupported, err)
	}
	c, err = a.codecForSuper(s)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	if cached, ok := a.byLevel[level]; ok {
		c = cached // keep one canonical codec per level
	} else if len(a.byLevel) < maxCodecCache {
		a.byLevel[level] = c
	}
	a.mu.Unlock()
	return c, nil
}

func (a *AMPPM) codecForSuper(s amppm.SuperSymbol) (frame.PayloadCodec, error) {
	sc, err := amppm.NewSuperCodec(s)
	if err != nil {
		return nil, err
	}
	if sc.BitsPerSuper() == 0 {
		return nil, fmt.Errorf("%w: super-symbol %v carries no data", ErrLevelUnsupported, s)
	}
	desc, err := a.table.Descriptor(s)
	if err != nil {
		return nil, err
	}
	return &amppmCodec{sc: sc, desc: desc}, nil
}

// Factory implements Scheme. Reconstructed codecs are memoized per
// descriptor: the receiver invokes the factory for every frame header it
// parses, and rebuilding the constituent combinadic codecs each time
// dominates the parse cost.
func (a *AMPPM) Factory() frame.CodecFactory {
	return func(d [frame.PatternBytes]byte) (frame.PayloadCodec, error) {
		a.mu.RLock()
		c, ok := a.byDesc[d]
		a.mu.RUnlock()
		if ok {
			a.onCacheHit()
			return c, nil
		}
		a.onCacheMiss()
		s, err := a.table.ParseDescriptor(d)
		if err != nil {
			return nil, err
		}
		c, err = a.codecForSuper(s)
		if err != nil {
			return nil, err
		}
		a.mu.Lock()
		if cached, ok := a.byDesc[d]; ok {
			c = cached
		} else if len(a.byDesc) < maxCodecCache {
			a.byDesc[d] = c
		}
		a.mu.Unlock()
		return c, nil
	}
}

type amppmCodec struct {
	sc   *amppm.SuperCodec
	desc [frame.PatternBytes]byte
}

func (c *amppmCodec) Level() float64 { return c.sc.Super().Level() }

func (c *amppmCodec) Descriptor() [frame.PatternBytes]byte { return c.desc }

func (c *amppmCodec) PayloadSlots(nbytes int) int {
	return c.sc.SlotsForBits(nbytes * 8)
}

// PayloadSymbols returns the constituent symbols a payload of nbytes
// walks through the schedule — the optional interface the stage profiler
// probes to count symbols encoded/decoded. Codecs are shared and cached
// across sessions, so this is pure metadata with no per-session state.
func (c *amppmCodec) PayloadSymbols(nbytes int) int {
	return c.sc.SymbolsForBits(nbytes * 8)
}

func (c *amppmCodec) AppendPayload(dst []bool, data []byte) ([]bool, error) {
	return c.sc.AppendStream(dst, bitio.NewReader(data))
}

func (c *amppmCodec) DecodePayload(slots []bool, nbytes int) ([]byte, int, error) {
	return c.AppendDecodedPayload(nil, slots, nbytes)
}

// writerPool recycles bit writers for AppendDecodedPayload: codecs are
// shared across goroutines through the caches above, so the decode
// scratch cannot live on the codec itself.
var writerPool = sync.Pool{New: func() any { return bitio.NewWriter() }}

// AppendDecodedPayload implements frame.PayloadAppender: the decoded
// body lands in dst's backing array (grown only when the capacity is
// short), so the receiver's steady state decodes without allocating.
func (c *amppmCodec) AppendDecodedPayload(dst []byte, slots []bool, nbytes int) ([]byte, int, error) {
	w := writerPool.Get().(*bitio.Writer)
	w.Reset(dst)
	symErrs, err := c.sc.DecodeBits(slots, nbytes*8, w)
	out := w.Bytes()
	w.Reset(nil) // drop the buffer reference before pooling the writer
	writerPool.Put(w)
	if err != nil {
		return out, symErrs, err
	}
	if len(out) < nbytes {
		return out, symErrs, fmt.Errorf("scheme: amppm decoded %d bytes, need %d", len(out), nbytes)
	}
	return out[:nbytes], symErrs, nil
}
