package scheme

import (
	"fmt"

	"smartvlc/internal/bitio"
	"smartvlc/internal/frame"
	"smartvlc/internal/oppm"
)

// OPPM is the overlapping-PPM baseline from the paper's related work
// (reference [8]): compensation-free like MPPM, but strictly fewer bits
// per symbol at every level — included for the ablation benches.
type OPPM struct {
	// SymbolSlots is the fixed symbol length N.
	SymbolSlots int
}

// NewOPPM returns the baseline with symbol length n.
func NewOPPM(n int) (*OPPM, error) {
	if n < 4 || n > 255 {
		return nil, fmt.Errorf("scheme: OPPM N=%d outside [4, 255]", n)
	}
	return &OPPM{SymbolSlots: n}, nil
}

// Name implements Scheme.
func (o *OPPM) Name() string { return "OPPM" }

// LevelRange implements Scheme.
func (o *OPPM) LevelRange() (float64, float64) {
	n := float64(o.SymbolSlots)
	return 1 / n, (n - 1) / n
}

// CodecFor implements Scheme.
func (o *OPPM) CodecFor(level float64) (frame.PayloadCodec, error) {
	c, err := oppm.ForLevel(o.SymbolSlots, level)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrLevelUnsupported, err)
	}
	return o.wrap(c)
}

func (o *OPPM) wrap(c *oppm.Codec) (frame.PayloadCodec, error) {
	if c.Bits() == 0 {
		return nil, fmt.Errorf("%w: OPPM(%d,%d) carries no data", ErrLevelUnsupported, c.SymbolSlots(), c.PulseWidth())
	}
	var d [frame.PatternBytes]byte
	d[0], d[1] = byte(c.SymbolSlots()), byte(c.PulseWidth())
	return &oppmCodec{c: c, desc: d}, nil
}

// Factory implements Scheme.
func (o *OPPM) Factory() frame.CodecFactory {
	return func(d [frame.PatternBytes]byte) (frame.PayloadCodec, error) {
		n, w := int(d[0]), int(d[1])
		if n != o.SymbolSlots || d[2] != 0 || d[3] != 0 {
			return nil, fmt.Errorf("scheme: invalid OPPM descriptor %v", d)
		}
		c, err := oppm.NewCodec(n, w)
		if err != nil {
			return nil, err
		}
		return o.wrap(c)
	}
}

type oppmCodec struct {
	c    *oppm.Codec
	desc [frame.PatternBytes]byte
}

func (c *oppmCodec) Level() float64 { return c.c.DimmingLevel() }

func (c *oppmCodec) Descriptor() [frame.PatternBytes]byte { return c.desc }

func (c *oppmCodec) PayloadSlots(nbytes int) int { return c.c.SlotsForBits(nbytes * 8) }

func (c *oppmCodec) AppendPayload(dst []bool, data []byte) ([]bool, error) {
	return c.c.AppendStream(dst, bitio.NewReader(data))
}

func (c *oppmCodec) DecodePayload(slots []bool, nbytes int) ([]byte, int, error) {
	w := bitio.NewWriter()
	se, err := c.c.DecodeBits(slots, nbytes*8, w)
	if err != nil {
		return nil, se, err
	}
	return w.Bytes()[:nbytes], se, nil
}
