package scheme

import (
	"fmt"

	"smartvlc/internal/frame"
	"smartvlc/internal/ookct"
)

// OOKCT is the compensation-based baseline (§2.1): plain on-off keying
// plus compensation runs. It reaches any dimming level but its slot
// efficiency collapses to min(2l, 2(1−l)).
type OOKCT struct {
	// UnitDataSlots is the encoding-unit size (data slots between
	// compensation runs).
	UnitDataSlots int
}

// NewOOKCT returns the baseline with the default unit size.
func NewOOKCT() *OOKCT { return &OOKCT{UnitDataSlots: ookct.DefaultUnitDataSlots} }

// Name implements Scheme.
func (o *OOKCT) Name() string { return "OOK-CT" }

// LevelRange implements Scheme. OOK-CT supports any level in (0,1); the
// range is clamped to the paper's evaluated band for comparability.
func (o *OOKCT) LevelRange() (float64, float64) { return 0.05, 0.95 }

// levelQuantum is the dimming quantization of the descriptor encoding:
// the level is carried as a uint16 in units of 1/10000, so transmitter
// and receiver agree bit-exactly on the compensation layout.
const levelQuantum = 10000

// CodecFor implements Scheme.
func (o *OOKCT) CodecFor(level float64) (frame.PayloadCodec, error) {
	q := int(level*levelQuantum + 0.5)
	return o.codec(q)
}

func (o *OOKCT) codec(q int) (frame.PayloadCodec, error) {
	if q <= 0 || q >= levelQuantum {
		return nil, fmt.Errorf("%w: OOK-CT level quantum %d", ErrLevelUnsupported, q)
	}
	level := float64(q) / levelQuantum
	if _, err := ookct.NewModulator(level, o.UnitDataSlots); err != nil {
		return nil, err
	}
	unit := o.UnitDataSlots
	if unit <= 0 {
		unit = ookct.DefaultUnitDataSlots
	}
	if unit > 255 {
		return nil, fmt.Errorf("scheme: OOK-CT unit %d exceeds descriptor byte", unit)
	}
	var d [frame.PatternBytes]byte
	d[0], d[1] = byte(q>>8), byte(q)
	d[2] = byte(unit)
	return &ookctCodec{level: level, quantum: q, unit: unit, desc: d}, nil
}

// Factory implements Scheme.
func (o *OOKCT) Factory() frame.CodecFactory {
	return func(d [frame.PatternBytes]byte) (frame.PayloadCodec, error) {
		if d[3] != 0 || d[2] == 0 {
			return nil, fmt.Errorf("scheme: invalid OOK-CT descriptor %v", d)
		}
		q := int(d[0])<<8 | int(d[1])
		oo := &OOKCT{UnitDataSlots: int(d[2])}
		return oo.codec(q)
	}
}

type ookctCodec struct {
	level   float64
	quantum int
	unit    int
	desc    [frame.PatternBytes]byte
}

func (c *ookctCodec) Level() float64 { return c.level }

func (c *ookctCodec) Descriptor() [frame.PatternBytes]byte { return c.desc }

func (c *ookctCodec) PayloadSlots(nbytes int) int {
	n, err := ookct.StreamLength(c.level, c.unit, nbytes*8)
	if err != nil {
		return 0
	}
	return n
}

func (c *ookctCodec) AppendPayload(dst []bool, data []byte) ([]bool, error) {
	m, err := ookct.NewModulator(c.level, c.unit)
	if err != nil {
		return nil, err
	}
	return m.AppendBits(dst, data, len(data)*8)
}

func (c *ookctCodec) DecodePayload(slots []bool, nbytes int) ([]byte, int, error) {
	d, err := ookct.NewDemodulator(c.level, c.unit)
	if err != nil {
		return nil, 0, err
	}
	out, err := d.DecodeBits(slots, nbytes*8)
	if err != nil {
		return nil, 0, err
	}
	return out, 0, nil
}
