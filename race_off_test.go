//go:build !race

package smartvlc

// raceEnabled gates the AllocsPerRun tests: under the race detector
// sync.Pool intentionally drops items, so steady-state allocation counts
// are not meaningful there.
const raceEnabled = false
