module smartvlc

go 1.24
