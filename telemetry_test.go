package smartvlc

import (
	"bytes"
	"strings"
	"testing"

	"smartvlc/internal/photon"
	"smartvlc/internal/phy"
	"smartvlc/internal/scheme"
)

func TestDeliverStatsSurfacesReceiverOutcome(t *testing.T) {
	sys := newSystem(t)
	slots, err := sys.BuildFrame(0.5, []byte("telemetry probe"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.DeliverStats(Aligned(3, 0), 500, 7, slots)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesOK != 1 || len(rep.Payloads) != 1 {
		t.Fatalf("clean link: FramesOK=%d payloads=%d", rep.FramesOK, len(rep.Payloads))
	}
	if string(rep.Payloads[0]) != "telemetry probe" {
		t.Fatalf("payload %q", rep.Payloads[0])
	}
	if rep.Threshold <= 0 {
		t.Fatalf("threshold %d not surfaced", rep.Threshold)
	}

	// Deliver must agree with DeliverStats (it is now a thin wrapper).
	got, err := sys.Deliver(Aligned(3, 0), 500, 7, slots)
	if err != nil || len(got) != 1 || !bytes.Equal(got[0], rep.Payloads[0]) {
		t.Fatalf("Deliver diverged from DeliverStats: %v, %v", got, err)
	}
}

func TestDeliverRecordsIntoRegistry(t *testing.T) {
	sys := newSystem(t)
	reg := NewTelemetry()
	sys.SetTelemetry(reg)
	if sys.Telemetry() != reg {
		t.Fatal("Telemetry() does not return the attached registry")
	}
	slots, err := sys.BuildFrame(0.5, []byte("counted"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := sys.DeliverStats(Aligned(3, 0), 500, uint64(i), slots); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	find := func(name, k, v string) int64 {
		for _, c := range snap.Counters {
			if c.Name != name {
				continue
			}
			if k == "" && len(c.Labels) == 0 {
				return c.Value
			}
			if len(c.Labels) == 1 && c.Labels[0].Key == k && c.Labels[0].Value == v {
				return c.Value
			}
		}
		return 0
	}
	if n := find("phy_tx_frames_total", "", ""); n != 3 {
		t.Errorf("phy_tx_frames_total=%d, want 3", n)
	}
	if n := find("phy_rx_frames_total", "outcome", "ok"); n != 3 {
		t.Errorf("phy_rx_frames_total{outcome=ok}=%d, want 3", n)
	}

	// The same snapshot must render as Prometheus exposition too.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `phy_rx_frames_total{outcome="ok"} 3`) {
		t.Fatalf("exposition missing rx counter:\n%s", sb.String())
	}
}

// TestRepeatedLevelSessionHitsCaches is the ISSUE's cache-effectiveness
// criterion: a session that stays at one dimming level and one operating
// point must hit the PR 1 memoization caches (codec, super-symbol select,
// photon sampler, receiver threshold) on >90% of lookups.
func TestRepeatedLevelSessionHitsCaches(t *testing.T) {
	sys := newSystem(t)
	sch := sys.Scheme().(*scheme.AMPPM)

	ch0, cm0 := sch.CodecCacheStats()
	sh0, sm0 := photon.SamplerCacheStats()
	th0, tm0 := phy.ThresholdCacheStats()

	st, err := sys.OpenStream(Aligned(3, 0), 500, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write(bytes.Repeat([]byte{0xA5}, 8192)); err != nil {
		t.Fatal(err)
	}

	rate := func(what string, h0, m0, h1, m1 int64) float64 {
		t.Helper()
		hits, misses := h1-h0, m1-m0
		if hits+misses == 0 {
			t.Fatalf("%s cache never consulted", what)
		}
		r := float64(hits) / float64(hits+misses)
		t.Logf("%s: %d hits / %d misses (%.1f%%)", what, hits, misses, 100*r)
		return r
	}
	ch1, cm1 := sch.CodecCacheStats()
	sh1, sm1 := photon.SamplerCacheStats()
	th1, tm1 := phy.ThresholdCacheStats()
	if r := rate("codec", ch0, cm0, ch1, cm1); r <= 0.9 {
		t.Errorf("codec cache hit rate %.2f ≤ 0.9", r)
	}
	if r := rate("sampler", sh0, sm0, sh1, sm1); r <= 0.9 {
		t.Errorf("sampler cache hit rate %.2f ≤ 0.9", r)
	}
	if r := rate("threshold", th0, tm0, th1, tm1); r <= 0.9 {
		t.Errorf("threshold cache hit rate %.2f ≤ 0.9", r)
	}
}

func TestStreamTelemetry(t *testing.T) {
	sys := newSystem(t)
	st, err := sys.OpenStream(Aligned(3, 0), 500, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Telemetry() != nil {
		t.Fatal("telemetry snapshot present before SetTelemetry")
	}
	st.SetTelemetry(NewTelemetry())
	data := bytes.Repeat([]byte{0x3C}, 2048)
	if _, err := st.Write(data); err != nil {
		t.Fatal(err)
	}
	snap := st.Telemetry()
	if snap == nil {
		t.Fatal("no snapshot after instrumented writes")
	}
	stats := st.Stats()
	var frames, delivered int64
	for _, c := range snap.Counters {
		switch c.Name {
		case "stream_frames_tx_total":
			frames = c.Value
		case "stream_delivered_bytes_total":
			delivered = c.Value
		}
	}
	if frames != int64(stats.FramesSent) {
		t.Errorf("stream_frames_tx_total=%d, Stats().FramesSent=%d", frames, stats.FramesSent)
	}
	if delivered != stats.DeliveredBytes {
		t.Errorf("stream_delivered_bytes_total=%d, Stats().DeliveredBytes=%d", delivered, stats.DeliveredBytes)
	}
	// Chunk events carry the stream's own sim clock: monotone, ≥ 0, and
	// bounded by the total airtime.
	var sawTx, sawDeliver bool
	prev := -1.0
	for _, e := range snap.Events {
		if e.At < prev || e.At > st.AirtimeSeconds() {
			t.Fatalf("event %q at %v outside [%v, %v]", e.Kind, e.At, prev, st.AirtimeSeconds())
		}
		prev = e.At
		switch e.Kind {
		case "chunk/tx":
			sawTx = true
		case "chunk/deliver":
			sawDeliver = true
		}
	}
	if !sawTx || !sawDeliver {
		t.Fatalf("chunk lifecycle incomplete: tx=%v deliver=%v", sawTx, sawDeliver)
	}
}
