package smartvlc

import (
	"io"

	"smartvlc/internal/phy"
	"smartvlc/internal/telemetry"
	"smartvlc/internal/telemetry/flight"
	"smartvlc/internal/telemetry/health"
	"smartvlc/internal/telemetry/span"
	"smartvlc/internal/telemetry/vlog"
)

// Telemetry re-exports, so applications never import internal packages.
type (
	// Telemetry is a deterministic, race-safe metrics registry: counters,
	// gauges, log-bucketed histograms and a bounded event trace. All
	// timestamps are simulated time; two identically-seeded sessions
	// produce byte-identical snapshots.
	Telemetry = telemetry.Registry
	// TelemetrySnapshot is a canonical point-in-time export of a registry,
	// serializable as JSON or Prometheus text exposition.
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetryEvent is one frame-lifecycle trace entry.
	TelemetryEvent = telemetry.Event

	// Span is one causal pipeline stage of one frame or chunk.
	Span = span.Span
	// SpanCollector accumulates causal frame spans; attach one via
	// SessionConfig.Spans, System.SetSpans or Stream.SetSpans. Nil is the
	// zero-cost no-op default everywhere.
	SpanCollector = span.Collector
	// SpanSnapshot is a canonical export of a collector, serializable as
	// JSON or as a Chrome trace_event file (WriteChromeTrace) that opens
	// in Perfetto.
	SpanSnapshot = span.Snapshot

	// FlightRecorder is the anomaly flight recorder: it rings recent frame
	// captures and dumps diagnostic bundles on decode failures, hunt
	// misses, symbol-error bursts and ACK timeouts.
	FlightRecorder = flight.Recorder
	// FlightConfig parameterizes NewFlightRecorder.
	FlightConfig = flight.Config
	// FlightBundle is a diagnostic bundle read back with ReadFlightBundle;
	// its Replay method pushes the captured samples through the receiver
	// again and reports the reproduced decode error class.
	FlightBundle = flight.Bundle

	// HealthConfig parameterizes a link-health monitor: time-series bucket
	// width, downsampling pyramid depth, and the SLO objectives to burn
	// against. Pass one via SessionConfig.Health or Stream.SetHealth.
	HealthConfig = health.Config
	// HealthMonitor aggregates link observations into sim-clock time-series
	// buckets and evaluates SLO burn rates. A nil monitor is a no-op.
	HealthMonitor = health.Monitor
	// HealthObjective is one declarative SLO (metric, target, burn-rate
	// thresholds over fast/slow windows).
	HealthObjective = health.Objective
	// HealthSnapshot is a canonical export of a monitor: multi-resolution
	// series, per-objective attainment reports and state transitions.
	HealthSnapshot = health.Snapshot
	// HealthTransition is one SLO state change (ok/warning/critical) with
	// the burn rates that caused it.
	HealthTransition = health.Transition
	// HealthObjectiveReport is an objective's spec plus its evaluation
	// outcome (final state, per-bucket attainment, worst burn).
	HealthObjectiveReport = health.ObjectiveReport
	// HealthPoint is one sealed time-series bucket: raw link counts plus
	// the rates derived from them.
	HealthPoint = health.Point
	// HealthSeries is one resolution's retained points.
	HealthSeries = health.Series
	// HealthState is an SLO state: HealthOK, HealthWarning, HealthCritical.
	HealthState = health.State

	// Logger is a deterministic structured logger: leveled records on the
	// simulation clock in a bounded ring, each carrying the correlation
	// keys (seq, span, stage, scheme, dim, shard) that join it against the
	// other telemetry pillars. Attach one via SessionConfig.Logs or
	// Stream.SetLog; nil is the zero-cost no-op default.
	Logger = vlog.Logger
	// LogLevel orders record severity: LogDebug, LogInfo, LogWarn, LogError.
	LogLevel = vlog.Level
	// LogRecord is one structured log line.
	LogRecord = vlog.Record
	// LogAttr is one key/value annotation on a log record.
	LogAttr = vlog.Attr
	// LogSnapshot is a canonical export of a logger, serializable as
	// indented JSON or NDJSON (one record per line).
	LogSnapshot = vlog.Snapshot
	// LogConsole renders log records or snapshots human-readably to a
	// writer — the vlog-native replacement for the stdlib log package in
	// the examples.
	LogConsole = vlog.Console
)

// Health states, ordered by severity.
const (
	HealthOK       = health.StateOK
	HealthWarning  = health.StateWarning
	HealthCritical = health.StateCritical
)

// Log levels, ordered by severity.
const (
	LogDebug = vlog.Debug
	LogInfo  = vlog.Info
	LogWarn  = vlog.Warn
	LogError = vlog.Error
)

// NewLogger returns an empty structured logger keeping records at or
// above min, for SessionConfig.Logs or Stream.SetLog.
func NewLogger(min LogLevel) *Logger { return vlog.New(min) }

// NewLogConsole returns a console renderer for log records writing to w
// (os.Stderr when nil), emitting records at or above min.
func NewLogConsole(w io.Writer, min LogLevel) *LogConsole { return vlog.NewConsole(w, min) }

// MergeLogs concatenates per-session log snapshots in argument order,
// reassigning record IDs; nil snapshots are skipped. Ring capacity is NOT
// re-applied and the session boundary is elided — recover it from the
// "sim/session" records. RunFleet applies this to its sessions already.
func MergeLogs(snaps ...*LogSnapshot) *LogSnapshot { return vlog.Merge(snaps...) }

// ParseLogNDJSON loads a log snapshot written as NDJSON
// (LogSnapshot.NDJSON), e.g. a flight bundle's logs.ndjson or the
// smartvlc-sim -log-out artifact.
func ParseLogNDJSON(r io.Reader) (*LogSnapshot, error) { return vlog.ParseNDJSON(r) }

// ParseLogLevel maps a canonical level name ("debug", "info", "warn",
// "error") to its LogLevel.
func ParseLogLevel(s string) (LogLevel, bool) { return vlog.ParseLevel(s) }

// NewSpanCollector returns an empty span collector for SessionConfig.Spans,
// System.SetSpans or Stream.SetSpans.
func NewSpanCollector() *SpanCollector { return span.NewCollector() }

// NewFlightRecorder arms an anomaly flight recorder writing bundles under
// cfg.Dir; pass it via SessionConfig.Flight.
func NewFlightRecorder(cfg FlightConfig) (*FlightRecorder, error) { return flight.New(cfg) }

// ReadFlightBundle loads a flight-recorder bundle directory.
func ReadFlightBundle(dir string) (*FlightBundle, error) { return flight.ReadBundle(dir) }

// NewTelemetry returns an empty registry to pass to SessionConfig.Telemetry,
// System.SetTelemetry or Stream.SetTelemetry. A nil registry everywhere is
// a no-op and keeps the hot paths allocation-free.
func NewTelemetry() *Telemetry { return telemetry.New() }

// MergeTelemetry combines per-session snapshots into one fleet-level
// aggregate: counters and histogram occupancies sum, gauges average over
// the sessions carrying them, and event traces are elided (their volume
// counters still sum). The fold is sequential over the argument order, so
// passing snapshots in session order yields a deterministic result; nil
// snapshots are skipped. RunFleet applies this to its sessions already.
func MergeTelemetry(snaps ...*TelemetrySnapshot) *TelemetrySnapshot {
	return telemetry.Merge(snaps...)
}

// ParseTelemetrySnapshot loads a snapshot written as canonical JSON
// (TelemetrySnapshot.JSON), e.g. the smartvlc-sim -metrics-out artifact
// or its /metrics.json endpoint. Use Snapshot.WriteExemplars for the
// exemplar drill-down vlctop and vlctrace render.
func ParseTelemetrySnapshot(b []byte) (*TelemetrySnapshot, error) {
	return telemetry.ParseSnapshot(b)
}

// DefaultHealthObjectives returns the paper-derived SLO set: symbol error
// rate against the Eq. 3 design bound, frame loss, goodput against the
// tent-shaped per-dimming-level envelope rate, ACK latency p95 and
// retransmission rate.
func DefaultHealthObjectives() []HealthObjective { return health.DefaultObjectives() }

// MergeHealth combines per-link health snapshots into one aggregate: raw
// counts sum per time bucket, rates are recomputed from the merged counts
// (never averaged averages), goodput normalizes per link, and the SLOs are
// re-evaluated over the merged series. The fold is deterministic in
// argument order; nil snapshots are skipped. RunBroadcast and RunFleet
// apply this to their receivers and sessions already.
func MergeHealth(snaps ...*HealthSnapshot) *HealthSnapshot { return health.Merge(snaps...) }

// ReadHealthSnapshot loads a health snapshot written as canonical JSON
// (Snapshot.JSON), e.g. the smartvlc-sim -health-out artifact.
func ReadHealthSnapshot(r io.Reader) (*HealthSnapshot, error) { return health.ReadSnapshot(r) }

// GlobalTelemetry returns the process-wide registry holding cache
// hit/miss counters for the memoized planners and samplers. Its contents
// depend on process warm-up order, so it is deliberately kept out of
// per-session snapshots.
func GlobalTelemetry() *Telemetry { return telemetry.Global() }

// SetTelemetry attaches a registry to the System's one-shot physical path
// (Deliver/DeliverStats). Call it before sharing the System across
// goroutines; the registry itself is race-safe, the attachment is not.
func (s *System) SetTelemetry(r *Telemetry) {
	s.reg = r
	s.txm = phy.NewTxMetrics(r)
	s.rxm = phy.NewRxMetrics(r)
}

// Telemetry returns the registry attached with SetTelemetry (nil by
// default).
func (s *System) Telemetry() *Telemetry { return s.reg }

// SetSpans attaches a span collector to the System's one-shot physical
// path: each DeliverStats call records a "deliver" root span with the
// receiver's hunt/decode children, timed from the start of the delivered
// waveform. Like SetTelemetry, attach before sharing the System across
// goroutines; the collector itself is race-safe.
func (s *System) SetSpans(c *SpanCollector) { s.spans = c }

// DeliverReport is the full outcome of one Deliver call: every cleanly
// decoded payload plus the receiver statistics Deliver alone discards.
type DeliverReport struct {
	// Payloads holds the payload of each frame that decoded cleanly, in
	// arrival order.
	Payloads [][]byte
	// FramesOK counts frames that passed all checks.
	FramesOK int
	// FramesBad counts preamble hits that failed header, sync, length or
	// CRC validation.
	FramesBad int
	// SymbolErrors sums constituent symbol anomalies across good frames.
	SymbolErrors int
	// Errors tallies parse failures by error text (nil when none).
	Errors map[string]int
	// Threshold is the receiver's photon-count decision threshold for
	// this channel.
	Threshold int
}
