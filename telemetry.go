package smartvlc

import (
	"smartvlc/internal/phy"
	"smartvlc/internal/telemetry"
)

// Telemetry re-exports, so applications never import internal packages.
type (
	// Telemetry is a deterministic, race-safe metrics registry: counters,
	// gauges, log-bucketed histograms and a bounded event trace. All
	// timestamps are simulated time; two identically-seeded sessions
	// produce byte-identical snapshots.
	Telemetry = telemetry.Registry
	// TelemetrySnapshot is a canonical point-in-time export of a registry,
	// serializable as JSON or Prometheus text exposition.
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetryEvent is one frame-lifecycle trace entry.
	TelemetryEvent = telemetry.Event
)

// NewTelemetry returns an empty registry to pass to SessionConfig.Telemetry,
// System.SetTelemetry or Stream.SetTelemetry. A nil registry everywhere is
// a no-op and keeps the hot paths allocation-free.
func NewTelemetry() *Telemetry { return telemetry.New() }

// MergeTelemetry combines per-session snapshots into one fleet-level
// aggregate: counters and histogram occupancies sum, gauges average over
// the sessions carrying them, and event traces are elided (their volume
// counters still sum). The fold is sequential over the argument order, so
// passing snapshots in session order yields a deterministic result; nil
// snapshots are skipped. RunFleet applies this to its sessions already.
func MergeTelemetry(snaps ...*TelemetrySnapshot) *TelemetrySnapshot {
	return telemetry.Merge(snaps...)
}

// GlobalTelemetry returns the process-wide registry holding cache
// hit/miss counters for the memoized planners and samplers. Its contents
// depend on process warm-up order, so it is deliberately kept out of
// per-session snapshots.
func GlobalTelemetry() *Telemetry { return telemetry.Global() }

// SetTelemetry attaches a registry to the System's one-shot physical path
// (Deliver/DeliverStats). Call it before sharing the System across
// goroutines; the registry itself is race-safe, the attachment is not.
func (s *System) SetTelemetry(r *Telemetry) {
	s.reg = r
	s.txm = phy.NewTxMetrics(r)
	s.rxm = phy.NewRxMetrics(r)
}

// Telemetry returns the registry attached with SetTelemetry (nil by
// default).
func (s *System) Telemetry() *Telemetry { return s.reg }

// DeliverReport is the full outcome of one Deliver call: every cleanly
// decoded payload plus the receiver statistics Deliver alone discards.
type DeliverReport struct {
	// Payloads holds the payload of each frame that decoded cleanly, in
	// arrival order.
	Payloads [][]byte
	// FramesOK counts frames that passed all checks.
	FramesOK int
	// FramesBad counts preamble hits that failed header, sync, length or
	// CRC validation.
	FramesBad int
	// SymbolErrors sums constituent symbol anomalies across good frames.
	SymbolErrors int
	// Errors tallies parse failures by error text (nil when none).
	Errors map[string]int
	// Threshold is the receiver's photon-count decision threshold for
	// this channel.
	Threshold int
}
