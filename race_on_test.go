//go:build race

package smartvlc

const raceEnabled = true
