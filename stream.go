package smartvlc

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"

	"smartvlc/internal/frame"
	"smartvlc/internal/telemetry"
	"smartvlc/internal/telemetry/health"
	"smartvlc/internal/telemetry/span"
	"smartvlc/internal/telemetry/vlog"
)

// Stream is a reliable, ordered byte pipe over a simulated SmartVLC link,
// implementing io.Writer and io.Reader: bytes written at the transmitter
// side come out of Read at the receiver side, carried by AMPPM frames
// over the optical channel with per-chunk retransmission.
//
// A Stream is synchronous and single-threaded: Write drives the channel
// simulation to completion before returning, and Read drains what has
// been delivered so far (returning io.EOF when the buffer is empty).
// The dimming level may change between writes — mid-stream adaptation is
// exactly what AMPPM is for.
type Stream struct {
	sys      *System
	geometry Geometry
	ambient  float64
	level    float64
	seed     uint64

	// MaxAttempts bounds retransmissions per chunk before Write fails.
	MaxAttempts int
	// ChunkBytes is the payload per frame (header adds 2 bytes).
	ChunkBytes int

	rx    bytes.Buffer
	chunk uint32

	// Reused per-chunk buffers: the synchronous Write loop would otherwise
	// allocate a frame body and slot waveform per attempt.
	body    []byte
	slotBuf []bool

	// Stats.
	framesSent     int
	retries        int
	airtimeSlots   int
	bytesDelivered int64
	attemptCounts  []int64 // attemptCounts[k]: chunks delivered on attempt k+1

	// Telemetry (nil by default — no-op). The stream's clock is its own
	// cumulative airtime, so identically-seeded streams trace identically.
	reg      *telemetry.Registry
	clock    telemetry.SlotClock
	framesC  *telemetry.Counter
	retriesC *telemetry.Counter
	deliverC *telemetry.Counter
	attemptH *telemetry.Histogram

	// Spans (nil by default — no-op): one "chunk" root per chunk with a
	// "chunk/tx" child per attempt, on the same simulated clock.
	spans   *span.Collector
	spanBuf span.Buffer

	// Health (nil by default — no-op): a link-health monitor sampled on
	// the stream's airtime clock. See SetHealth.
	mon *health.Monitor

	// Logs (nil by default — no-op): structured chunk-lifecycle records on
	// the stream's airtime clock. See SetLog.
	log *vlog.Logger
}

// OpenStream returns a byte pipe over the given link operating point at
// an initial dimming level.
func (s *System) OpenStream(g Geometry, ambientLux, level float64, seed uint64) (*Stream, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	lo, hi := s.LevelRange()
	if level < lo || level > hi {
		return nil, fmt.Errorf("smartvlc: level %v outside [%v, %v]", level, lo, hi)
	}
	return &Stream{
		sys:         s,
		geometry:    g,
		ambient:     ambientLux,
		level:       level,
		seed:        seed,
		MaxAttempts: 20,
		ChunkBytes:  126,
	}, nil
}

// SetTelemetry attaches a metrics registry to the stream. Chunk
// lifecycle events are stamped with the stream's simulated clock
// (cumulative airtime slots × tslot), never wall time. Call before the
// first Write; a nil registry restores the no-op default.
func (st *Stream) SetTelemetry(r *telemetry.Registry) {
	st.reg = r
	st.clock = telemetry.SlotClock{TSlotSeconds: tslotSeconds}
	st.framesC = r.Counter("stream_frames_tx_total")
	st.retriesC = r.Counter("stream_retries_total")
	st.deliverC = r.Counter("stream_delivered_bytes_total")
	r.Help("stream_chunk_attempts", "Transmission attempts needed per delivered chunk.")
	st.attemptH = r.Histogram("stream_chunk_attempts")
}

// SetSpans attaches a span collector to the stream: each chunk records a
// "chunk" root span (attributes: dimming level, attempts, payload bytes)
// with one "chunk/tx" child per transmission attempt, timed on the
// stream's simulated clock. Call before the first Write; nil restores
// the no-op default.
func (st *Stream) SetSpans(c *span.Collector) {
	st.spans = c
	st.clock = telemetry.SlotClock{TSlotSeconds: tslotSeconds}
}

// Telemetry returns the snapshot of the attached registry, or nil when
// none was attached.
func (st *Stream) Telemetry() *TelemetrySnapshot {
	if st.reg == nil {
		return nil
	}
	return st.reg.Snapshot()
}

// SetLog attaches a structured logger to the stream: each chunk records
// its transmission attempts (Debug), its delivery (Debug, with attempt
// count and payload bytes) or its exhaustion (Error), stamped on the
// stream's airtime clock — so identically-seeded streams log
// byte-identically. The stream is single-threaded, so records go to the
// logger directly in program order. Call before the first Write; nil
// restores the no-op default.
func (st *Stream) SetLog(l *vlog.Logger) {
	st.log = l
	st.clock = telemetry.SlotClock{TSlotSeconds: tslotSeconds}
}

// Logs returns the snapshot of the attached logger, or nil when none was
// attached.
func (st *Stream) Logs() *vlog.Snapshot {
	if st.log == nil {
		return nil
	}
	return st.log.Snapshot()
}

// SetHealth attaches a link-health monitor to the stream. Time-series
// buckets are sealed on the stream's airtime clock (cumulative airtime
// slots × tslot), so identically-seeded streams produce byte-identical
// health snapshots. Frame loss here counts failed chunk attempts, ACK
// latency is the first-attempt→delivery delay per chunk, and symbol
// counts are not available at this layer (SER windows stay undefined and
// hold their state). Call before the first Write; nil restores the no-op
// default.
func (st *Stream) SetHealth(cfg *health.Config) {
	if cfg == nil {
		st.mon = nil
		return
	}
	hc := *cfg
	if hc.TSlotSeconds <= 0 {
		hc.TSlotSeconds = tslotSeconds
	}
	if hc.Registry == nil {
		hc.Registry = st.reg
	}
	st.clock = telemetry.SlotClock{TSlotSeconds: tslotSeconds}
	st.mon = health.NewMonitor(hc)
}

// Health seals completed buckets up to the stream's current airtime and
// returns the health snapshot, or nil when no monitor is attached. The
// snapshot covers sealed buckets only; the monitor keeps running, so the
// stream can keep writing and Health can be polled between writes.
func (st *Stream) Health() *health.Snapshot {
	if st.mon == nil {
		return nil
	}
	st.mon.Tick(st.clock.At(st.airtimeSlots))
	return st.mon.Snapshot()
}

// FinishHealth flushes partial buckets at the stream's current airtime
// and returns the final frozen snapshot (nil without a monitor). Further
// writes are no longer observed.
func (st *Stream) FinishHealth() *health.Snapshot {
	if st.mon == nil {
		return nil
	}
	return st.mon.Finish(st.clock.At(st.airtimeSlots))
}

// SetLevel changes the dimming level for subsequent writes.
func (st *Stream) SetLevel(level float64) error {
	lo, hi := st.sys.LevelRange()
	if level < lo || level > hi {
		return fmt.Errorf("smartvlc: level %v outside [%v, %v]", level, lo, hi)
	}
	st.level = level
	return nil
}

// Level returns the current dimming level.
func (st *Stream) Level() float64 { return st.level }

// Write segments p into frames and pushes them through the optical
// channel, retransmitting lost chunks until everything is delivered (or
// MaxAttempts is exceeded). It returns the number of bytes accepted.
func (st *Stream) Write(p []byte) (int, error) {
	written := 0
	for len(p) > 0 {
		n := st.ChunkBytes
		if n > len(p) {
			n = len(p)
		}
		if err := st.sendChunk(p[:n]); err != nil {
			return written, err
		}
		p = p[n:]
		written += n
	}
	return written, nil
}

func (st *Stream) sendChunk(data []byte) error {
	body := append(st.body[:0], 0, 0, 0, 0)
	binary.BigEndian.PutUint32(body, st.chunk)
	body = append(body, data...)
	st.body = body
	st.chunk++

	codec, err := st.sys.sch.CodecFor(st.level)
	if err != nil {
		return err
	}
	chunkStart := st.clock.At(st.airtimeSlots)
	st.mon.Tick(chunkStart)
	st.mon.ObserveLevel(chunkStart, st.level)
	st.spanBuf.Reset()
	for attempt := 0; attempt < st.MaxAttempts; attempt++ {
		slots, err := frame.BuildAppend(st.slotBuf[:0], codec, body)
		if err != nil {
			return err
		}
		st.slotBuf = slots
		st.framesSent++
		st.framesC.Inc()
		st.mon.Tick(st.clock.At(st.airtimeSlots))
		st.mon.ObserveTx(st.clock.At(st.airtimeSlots), len(slots), attempt > 0)
		st.reg.Emit(st.clock.At(st.airtimeSlots), "chunk/tx", int64(st.chunk-1))
		if st.spans != nil {
			st.spanBuf.Record(span.Span{
				Name: "chunk/tx", Seq: -1,
				Start: st.clock.At(st.airtimeSlots), End: st.clock.At(st.airtimeSlots + len(slots)),
				Attrs: []span.Attr{{Key: "attempt", Value: strconv.Itoa(attempt + 1)}},
			})
		}
		if attempt > 0 && st.log.Enabled(vlog.Debug) {
			st.log.Record(vlog.Record{
				At: st.clock.At(st.airtimeSlots), Level: vlog.Debug, Stage: "stream/chunk",
				Msg: "chunk retransmitted", Seq: int64(st.chunk - 1),
				Dim:   strconv.FormatFloat(st.level, 'g', -1, 64),
				Attrs: []vlog.Attr{{Key: "attempt", Value: strconv.Itoa(attempt + 1)}},
			})
		}
		st.airtimeSlots += len(slots)
		st.seed++
		payloads, err := st.sys.Deliver(st.geometry, st.ambient, st.seed, slots)
		if err != nil {
			return err
		}
		for _, pl := range payloads {
			if len(pl) >= 4 && bytes.Equal(pl[:4], body[:4]) {
				st.rx.Write(pl[4:])
				st.bytesDelivered += int64(len(pl) - 4)
				st.deliverC.Add(int64(len(pl) - 4))
				st.attemptH.Observe(float64(attempt + 1))
				deliverAt := st.clock.At(st.airtimeSlots)
				st.mon.ObserveRx(deliverAt, 1, 0, 0, 0)
				st.mon.ObserveDelivered(deliverAt, int64(len(pl)-4)*8)
				st.mon.ObserveAck(deliverAt, deliverAt-chunkStart)
				st.reg.Emit(st.clock.At(st.airtimeSlots), "chunk/deliver", int64(st.chunk-1))
				for len(st.attemptCounts) <= attempt {
					st.attemptCounts = append(st.attemptCounts, 0)
				}
				st.attemptCounts[attempt]++
				if st.log.Enabled(vlog.Debug) {
					st.log.Record(vlog.Record{
						At: deliverAt, Level: vlog.Debug, Stage: "stream/chunk",
						Msg: "chunk delivered", Seq: int64(st.chunk - 1),
						Dim: strconv.FormatFloat(st.level, 'g', -1, 64),
						Attrs: []vlog.Attr{
							{Key: "attempts", Value: strconv.Itoa(attempt + 1)},
							{Key: "bytes", Value: strconv.Itoa(len(pl) - 4)},
						},
					})
				}
				st.recordChunkSpan(chunkStart, attempt+1, len(pl)-4, "ok")
				return nil
			}
		}
		st.retries++
		st.retriesC.Inc()
		st.mon.ObserveRx(st.clock.At(st.airtimeSlots), 0, 1, 0, 0)
	}
	if st.log.Enabled(vlog.Error) {
		st.log.Record(vlog.Record{
			At: st.clock.At(st.airtimeSlots), Level: vlog.Error, Stage: "stream/chunk",
			Msg: "chunk undeliverable, attempts exhausted", Seq: int64(st.chunk - 1),
			Dim:   strconv.FormatFloat(st.level, 'g', -1, 64),
			Attrs: []vlog.Attr{{Key: "attempts", Value: strconv.Itoa(st.MaxAttempts)}},
		})
	}
	st.recordChunkSpan(chunkStart, st.MaxAttempts, 0, "failed")
	return fmt.Errorf("smartvlc: chunk %d undeliverable after %d attempts", st.chunk-1, st.MaxAttempts)
}

// recordChunkSpan closes one chunk's span tree: the "chunk" root over the
// whole (re)transmission history, with the buffered per-attempt children
// spliced underneath.
func (st *Stream) recordChunkSpan(start float64, attempts, deliveredBytes int, outcome string) {
	if st.spans == nil {
		return
	}
	seq := int64(st.chunk - 1)
	root := st.spans.Record(span.Span{
		Name: "chunk", Seq: seq, Start: start, End: st.clock.At(st.airtimeSlots),
		Attrs: []span.Attr{
			{Key: "level", Value: strconv.FormatFloat(st.level, 'g', -1, 64)},
			{Key: "attempts", Value: strconv.Itoa(attempts)},
			{Key: "bytes", Value: strconv.Itoa(deliveredBytes)},
			{Key: "outcome", Value: outcome},
		},
	})
	st.spans.Splice(&st.spanBuf, root, seq)
}

// Read drains delivered bytes; it returns io.EOF once the buffer is
// empty (more bytes may appear after further writes).
func (st *Stream) Read(p []byte) (int, error) {
	if st.rx.Len() == 0 {
		return 0, io.EOF
	}
	return st.rx.Read(p)
}

// Buffered returns how many delivered bytes await Read.
func (st *Stream) Buffered() int { return st.rx.Len() }

// tslotSeconds is the paper's slot time (tslot = 8 µs, f_tx = 125 kHz).
const tslotSeconds = 8e-6

// AirtimeSeconds returns the total simulated air time spent, including
// retransmissions.
func (st *Stream) AirtimeSeconds() float64 { return float64(st.airtimeSlots) * tslotSeconds }

// StreamStats summarizes a stream's transmission history.
type StreamStats struct {
	// FramesSent counts every frame put on the air, retransmissions
	// included.
	FramesSent int
	// Retries counts attempts that did not deliver their chunk.
	Retries int
	// AirtimeSlots is the cumulative on-air length in slots.
	AirtimeSlots int
	// DeliveredBytes is the unique payload delivered to the read side.
	DeliveredBytes int64
	// ChunkAttempts is the per-chunk attempt histogram:
	// ChunkAttempts[k] chunks were delivered on attempt k+1.
	ChunkAttempts []int64
}

// Stats returns the stream's transmission statistics.
func (st *Stream) Stats() StreamStats {
	return StreamStats{
		FramesSent:     st.framesSent,
		Retries:        st.retries,
		AirtimeSlots:   st.airtimeSlots,
		DeliveredBytes: st.bytesDelivered,
		ChunkAttempts:  append([]int64(nil), st.attemptCounts...),
	}
}

// LegacyStats returns frames sent, retransmissions, and delivered bytes.
//
// Deprecated: use Stats, which also reports airtime and the per-chunk
// attempt histogram.
func (st *Stream) LegacyStats() (frames, retries int, delivered int64) {
	return st.framesSent, st.retries, st.bytesDelivered
}
